// Command messexp reproduces the paper's tables and figures. Each
// experiment renders a structured report: tables, ASCII curve figures and
// reproduction notes.
//
// Usage:
//
//	messexp -list
//	messexp -run fig2
//	messexp -run all -scale full -outdir results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/mess-sim/mess"
)

func main() {
	var (
		run    = flag.String("run", "", "experiment id (fig2 … fig18, table1, tablespeed, openpiton-bug) or \"all\"")
		scale  = flag.String("scale", "quick", "quick (scaled platforms, coarse sweeps) or full (paper configurations)")
		outdir = flag.String("outdir", "", "also write each report to <outdir>/<id>.txt")
		list   = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range mess.Experiments() {
			fmt.Printf("  %-14s %-10s %s\n", e.ID, e.Paper, e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}

	var s mess.ExperimentScale
	switch *scale {
	case "quick":
		s = mess.ScaleQuick
	case "full":
		s = mess.ScaleFull
	default:
		fatal(fmt.Errorf("unknown scale %q", *scale))
	}

	ids := []string{*run}
	if *run == "all" {
		ids = ids[:0]
		for _, e := range mess.Experiments() {
			ids = append(ids, e.ID)
		}
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fatal(err)
		}
	}

	failed := 0
	for _, id := range ids {
		start := time.Now()
		res, err := mess.RunExperiment(id, s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "messexp: %s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Printf("\n")
		if err := res.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Printf("(%s in %s at %s scale)\n", id, time.Since(start).Round(time.Millisecond), s)

		if *outdir != "" {
			path := filepath.Join(*outdir, id+".txt")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := res.Render(f); err != nil {
				f.Close()
				fatal(err)
			}
			f.Close()
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "messexp:", err)
	os.Exit(1)
}
