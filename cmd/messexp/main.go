// Command messexp reproduces the paper's tables and figures. Each
// experiment renders a structured report: tables, ASCII curve figures and
// reproduction notes.
//
// All experiments in one invocation share a single characterization
// service, so `-run all` performs each unique characterization exactly
// once; with -cache-dir the curves additionally persist across
// invocations, and with -cache-url (or $MESS_CURVE_URL) they are shared
// with the whole fleet through a cmd/messcurved curve server.
//
// Usage:
//
//	messexp -list
//	messexp -run fig2
//	messexp -run all -scale full -outdir results/ [-cache-dir ~/.cache/mess]
//	messexp -run all -cache-url http://curves.internal:9400
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/mess-sim/mess"
	"github.com/mess-sim/mess/internal/cli"
	"github.com/mess-sim/mess/internal/telemetry"
)

func main() {
	var (
		run      = flag.String("run", "", "experiment id (fig2 … fig18, table1, tablespeed, openpiton-bug) or \"all\"")
		scale    = flag.String("scale", "quick", "quick (scaled platforms, coarse sweeps) or full (paper configurations)")
		outdir   = flag.String("outdir", "", "also write each report to <outdir>/<id>.txt")
		list     = flag.Bool("list", false, "list experiments and exit")
		cacheDir = flag.String("cache-dir", "", "persist curve families under this directory")
		cacheMax = flag.Int("cache-max-mb", 0, "bound the curve cache size in MiB (0 = unbounded); LRU eviction")
		cacheURL = flag.String("cache-url", "", cli.CurveURLUsage)
		shards   = flag.Int("shards", 0, "engines per measurement point for every characterization (≥2 shards the DRAM channels; execution-only, results are byte-identical)")
		timeout  = flag.Duration("timeout", 0, cli.TimeoutUsage)
	)
	tel := cli.TelemetryFlags().WithTrace()
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range mess.Experiments() {
			fmt.Printf("  %-14s %-10s %s\n", e.ID, e.Paper, e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}

	s := cli.MustScale(*scale)

	ids := []string{*run}
	if *run == "all" {
		ids = ids[:0]
		for _, e := range mess.Experiments() {
			ids = append(ids, e.ID)
		}
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			cli.Fatal(err)
		}
	}

	ctx, stop := cli.Context(*timeout)
	defer stop()
	svc := cli.Service(*cacheDir, *cacheMax, *cacheURL, tel.Set())
	// Progress and failure reporting go through the structured logger: each
	// slog record is written with a single atomic Write, so interleaved
	// output from concurrent characterizations never shears a line — and
	// -log-json makes the run machine-parseable for CI.
	log := tel.Set().Logger()
	track := tel.Set().Trace().NewTrack("messexp", "experiments")
	failed := 0
	for _, id := range ids {
		if ctx.Err() != nil {
			// Cancelled (SIGINT or -timeout): stop cleanly instead of
			// burning through — and failing — every remaining experiment.
			log.Error("run cancelled", "cause", ctx.Err())
			failed++
			break
		}
		start := time.Now()
		log.Info("experiment starting", "experiment", id, "scale", s.String())
		sp := tel.Set().Trace().Begin(track, "experiment "+id)
		res, err := mess.RunExperimentShardedContext(ctx, svc, id, s, *shards)
		if err != nil {
			sp.End(telemetry.String("outcome", "error"))
			log.Error("experiment failed", "experiment", id, "err", err,
				"duration", time.Since(start).Round(time.Millisecond).String())
			failed++
			continue
		}
		sp.End(telemetry.String("outcome", "ok"))
		fmt.Printf("\n")
		if err := res.Render(os.Stdout); err != nil {
			cli.Fatal(err)
		}
		log.Info("experiment done", "experiment", id, "scale", s.String(),
			"duration", time.Since(start).Round(time.Millisecond).String())

		if *outdir != "" {
			path := filepath.Join(*outdir, id+".txt")
			f, err := os.Create(path)
			if err != nil {
				cli.Fatal(err)
			}
			if err := res.Render(f); err != nil {
				f.Close()
				cli.Fatal(err)
			}
			f.Close()
		}
	}
	cli.PrintStats(svc)
	if err := tel.WriteTrace(); err != nil {
		cli.Fatal(err)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
