// Command messexp reproduces the paper's tables and figures. Each
// experiment renders a structured report: tables, ASCII curve figures and
// reproduction notes.
//
// All experiments in one invocation share a single characterization
// service, so `-run all` performs each unique characterization exactly
// once; with -cache-dir the curves additionally persist across
// invocations, and with -cache-url (or $MESS_CURVE_URL) they are shared
// with the whole fleet through a cmd/messcurved curve server.
//
// Usage:
//
//	messexp -list
//	messexp -run fig2
//	messexp -run all -scale full -outdir results/ [-cache-dir ~/.cache/mess]
//	messexp -run all -cache-url http://curves.internal:9400
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/mess-sim/mess"
	"github.com/mess-sim/mess/internal/cli"
)

func main() {
	var (
		run      = flag.String("run", "", "experiment id (fig2 … fig18, table1, tablespeed, openpiton-bug) or \"all\"")
		scale    = flag.String("scale", "quick", "quick (scaled platforms, coarse sweeps) or full (paper configurations)")
		outdir   = flag.String("outdir", "", "also write each report to <outdir>/<id>.txt")
		list     = flag.Bool("list", false, "list experiments and exit")
		cacheDir = flag.String("cache-dir", "", "persist curve families under this directory")
		cacheMax = flag.Int("cache-max-mb", 0, "bound the curve cache size in MiB (0 = unbounded); LRU eviction")
		cacheURL = flag.String("cache-url", "", cli.CurveURLUsage)
		timeout  = flag.Duration("timeout", 0, cli.TimeoutUsage)
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range mess.Experiments() {
			fmt.Printf("  %-14s %-10s %s\n", e.ID, e.Paper, e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}

	s := cli.MustScale(*scale)

	ids := []string{*run}
	if *run == "all" {
		ids = ids[:0]
		for _, e := range mess.Experiments() {
			ids = append(ids, e.ID)
		}
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			cli.Fatal(err)
		}
	}

	ctx, stop := cli.Context(*timeout)
	defer stop()
	svc := cli.Service(*cacheDir, *cacheMax, *cacheURL)
	failed := 0
	for _, id := range ids {
		if ctx.Err() != nil {
			// Cancelled (SIGINT or -timeout): stop cleanly instead of
			// burning through — and failing — every remaining experiment.
			fmt.Fprintf(os.Stderr, "messexp: cancelled: %v\n", ctx.Err())
			failed++
			break
		}
		start := time.Now()
		res, err := mess.RunExperimentShardedContext(ctx, svc, id, s, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "messexp: %s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Printf("\n")
		if err := res.Render(os.Stdout); err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("(%s in %s at %s scale)\n", id, time.Since(start).Round(time.Millisecond), s)

		if *outdir != "" {
			path := filepath.Join(*outdir, id+".txt")
			f, err := os.Create(path)
			if err != nil {
				cli.Fatal(err)
			}
			if err := res.Render(f); err != nil {
				f.Close()
				cli.Fatal(err)
			}
			f.Close()
		}
	}
	cli.PrintStats(svc)
	if failed > 0 {
		os.Exit(1)
	}
}
