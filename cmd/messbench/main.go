// Command messbench runs the Mess benchmark against a simulated platform
// and emits its bandwidth–latency curve family: an ASCII figure, derived
// metrics, and optionally the release-format CSV.
//
// With -cache-dir the curve family persists under the directory keyed by
// its content fingerprint, so re-running the same characterization loads
// it instead of simulating. With -cache-url (or $MESS_CURVE_URL) the
// family is shared fleet-wide through a cmd/messcurved curve server —
// fetched if any machine already produced it, uploaded otherwise.
//
// Usage:
//
//	messbench -platform "Intel Skylake" [-full] [-out curves.csv] [-cache-dir ~/.cache/mess]
//	messbench -platform "Intel Skylake" -cache-url http://curves.internal:9400
//	messbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/mess-sim/mess"
	"github.com/mess-sim/mess/internal/charz"
	"github.com/mess-sim/mess/internal/cli"
)

func main() {
	var (
		name     = flag.String("platform", "Intel Skylake", "platform to characterize (see -list)")
		list     = flag.Bool("list", false, "list available platforms and exit")
		full     = flag.Bool("full", false, "run the full sweep (dense mixes and pacing; slower)")
		out      = flag.String("out", "", "write the curve family as CSV to this file")
		cacheDir = flag.String("cache-dir", "", "persist curve families under this directory")
		cacheMax = flag.Int("cache-max-mb", 0, "bound the curve cache size in MiB (0 = unbounded); LRU eviction")
		cacheURL = flag.String("cache-url", "", cli.CurveURLUsage)
		timeout  = flag.Duration("timeout", 0, cli.TimeoutUsage)
	)
	tel := cli.TelemetryFlags()
	flag.Parse()

	if *list {
		for _, p := range mess.Platforms() {
			fmt.Println(" ", p.String())
		}
		return
	}

	spec := cli.MustPlatform(*name)
	opt := mess.QuickBenchmarkOptions()
	if *full {
		opt = mess.BenchmarkOptions{}
	}

	ctx, stop := cli.Context(*timeout)
	defer stop()
	svc := cli.Service(*cacheDir, *cacheMax, *cacheURL, tel.Set())
	fmt.Printf("characterizing %s ...\n", spec.String())
	start := time.Now()
	art, err := svc.CharacterizeContext(ctx, charz.Request{Spec: spec, Options: opt})
	if err != nil {
		cli.Fatal(err)
	}
	points := 0
	for _, c := range art.Family.Curves {
		points += len(c.Points)
	}
	switch art.Source {
	case charz.SourceDisk, charz.SourceRemote:
		fmt.Printf("loaded from %s cache (%s) in %s (%d curve points)\n\n",
			art.Source, art.Key.Short(), time.Since(start).Round(time.Millisecond), points)
	default:
		fmt.Printf("done in %s (%d curve points)\n\n",
			time.Since(start).Round(time.Millisecond), points)
	}

	if err := mess.PlotCurves(os.Stdout, art.Family, 76, 22); err != nil {
		cli.Fatal(err)
	}
	m := art.Family.Metrics()
	fmt.Printf("\n%s\n", m.String())

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			cli.Fatal(err)
		}
		defer f.Close()
		if err := mess.WriteCurvesCSV(f, art.Family); err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("curves written to %s\n", *out)
	}
}
