// Command messbench runs the Mess benchmark against a simulated platform
// and emits its bandwidth–latency curve family: an ASCII figure, derived
// metrics, and optionally the release-format CSV.
//
// Usage:
//
//	messbench -platform "Intel Skylake" [-full] [-out curves.csv]
//	messbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/mess-sim/mess"
)

func main() {
	var (
		name = flag.String("platform", "Intel Skylake", "platform to characterize (see -list)")
		list = flag.Bool("list", false, "list available platforms and exit")
		full = flag.Bool("full", false, "run the full sweep (dense mixes and pacing; slower)")
		out  = flag.String("out", "", "write the curve family as CSV to this file")
	)
	flag.Parse()

	if *list {
		for _, p := range mess.Platforms() {
			fmt.Println(" ", p.String())
		}
		return
	}

	spec, err := mess.PlatformByName(*name)
	if err != nil {
		fatal(err)
	}
	opt := mess.QuickBenchmarkOptions()
	if *full {
		opt = mess.BenchmarkOptions{}
	}

	fmt.Printf("characterizing %s ...\n", spec.String())
	start := time.Now()
	res, err := mess.Characterize(spec, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("done in %s (%d measurement points)\n\n", time.Since(start).Round(time.Millisecond), len(res.Samples))

	if err := mess.PlotCurves(os.Stdout, res.Family, 76, 22); err != nil {
		fatal(err)
	}
	m := res.Family.Metrics()
	fmt.Printf("\n%s\n", m.String())

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := mess.WriteCurvesCSV(f, res.Family); err != nil {
			fatal(err)
		}
		fmt.Printf("curves written to %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "messbench:", err)
	os.Exit(1)
}
