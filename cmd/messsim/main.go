// Command messsim compares memory models under an unchanged CPU side: it
// characterizes each model with the Mess benchmark (bandwidth–latency
// curves) and optionally evaluates workload IPC error against the detailed
// reference model — the Sec. IV/V methodology as a tool.
//
// The reference and per-model characterizations flow through one
// characterization service; with -cache-dir they persist across runs, and
// with -cache-url (or $MESS_CURVE_URL) they are shared across machines
// via a cmd/messcurved curve server.
//
// Usage:
//
//	messsim -platform "Intel Skylake" -models fixed,md1,mess
//	messsim -platform "Amazon Graviton 3" -ipc -models fixed,internal-ddr,ramulator2,mess
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"github.com/mess-sim/mess"
	"github.com/mess-sim/mess/internal/bench"
	"github.com/mess-sim/mess/internal/charz"
	"github.com/mess-sim/mess/internal/cli"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/memmodel"
	"github.com/mess-sim/mess/internal/plot"
	"github.com/mess-sim/mess/internal/sim"
	"github.com/mess-sim/mess/internal/workloads"
)

func main() {
	var (
		name     = flag.String("platform", "Intel Skylake", "platform (CPU side) to evaluate under")
		models   = flag.String("models", "fixed,md1,internal-ddr,dramsim3,ramulator,mess", "comma-separated model kinds")
		ipc      = flag.Bool("ipc", false, "run the workload IPC-error evaluation instead of curves")
		full     = flag.Bool("full", false, "use the full benchmark sweep")
		cacheDir = flag.String("cache-dir", "", "persist curve families under this directory")
		cacheMax = flag.Int("cache-max-mb", 0, "bound the curve cache size in MiB (0 = unbounded); LRU eviction")
		cacheURL = flag.String("cache-url", "", cli.CurveURLUsage)
		shards   = flag.Int("shards", 1, "engines per measurement point for the reference characterization (≥2 shards the DRAM channels; execution-only, results are byte-identical)")
		timeout  = flag.Duration("timeout", 0, cli.TimeoutUsage)
	)
	tel := cli.TelemetryFlags()
	flag.Parse()

	spec := cli.MustPlatform(*name)

	opt := bench.QuickOptions()
	if *full {
		opt = bench.Options{}
	}
	opt.Shards = *shards

	ctx, stop := cli.Context(*timeout)
	defer stop()
	svc := cli.Service(*cacheDir, *cacheMax, *cacheURL, tel.Set())
	fmt.Printf("reference characterization of %s ...\n", spec.Name)
	refArt, err := svc.CharacterizeContext(ctx, charz.Request{Spec: spec, Options: opt})
	if err != nil {
		cli.Fatal(err)
	}
	refFam := refArt.Family

	kinds := parseKinds(*models)
	if *ipc {
		runIPC(spec, refFam, kinds)
		return
	}

	fmt.Println("\n== reference (detailed DRAM model) ==")
	if err := plot.CurveFamily(os.Stdout, refFam, 72, 18); err != nil {
		cli.Fatal(err)
	}
	for _, kind := range kinds {
		kind := kind
		o := opt
		o.Backend = func(eng *sim.Engine) mem.Backend {
			m, err := memmodel.New(kind, eng, spec, refFam)
			if err != nil {
				panic(err)
			}
			return m
		}
		art, err := svc.CharacterizeContext(ctx, charz.Request{Spec: spec, Options: o, Tag: "model:" + string(kind)})
		if err != nil {
			cli.Fatal(err)
		}
		fam := art.Family
		fam.Label = spec.Name + " + " + string(kind)
		fmt.Printf("\n== %s ==\n", fam.Label)
		if err := plot.CurveFamily(os.Stdout, fam, 72, 18); err != nil {
			cli.Fatal(err)
		}
		fmt.Println(fam.Metrics().String())
	}
	cli.PrintStats(svc)
}

func runIPC(spec mess.Platform, refFam *mess.Family, kinds []memmodel.Kind) {
	refResults, err := workloads.EvalSuite(spec, workloads.Options{})
	if err != nil {
		cli.Fatal(err)
	}
	header := []string{"model"}
	for _, b := range refResults {
		header = append(header, b.Name)
	}
	header = append(header, "average")
	var rows [][]string
	for _, kind := range kinds {
		kind := kind
		o := workloads.Options{Backend: func(eng *sim.Engine) mem.Backend {
			m, err := memmodel.New(kind, eng, spec, refFam)
			if err != nil {
				panic(err)
			}
			return m
		}}
		got, err := workloads.EvalSuite(spec, o)
		if err != nil {
			cli.Fatal(err)
		}
		row := []string{string(kind)}
		sum := 0.0
		for i := range refResults {
			e := math.Abs(got[i].IPC-refResults[i].IPC) / refResults[i].IPC
			sum += e
			row = append(row, fmt.Sprintf("%.1f%%", 100*e))
		}
		row = append(row, fmt.Sprintf("%.1f%%", 100*sum/float64(len(refResults))))
		rows = append(rows, row)
	}
	fmt.Println("\nabsolute IPC error vs reference platform:")
	if err := plot.Table(os.Stdout, header, rows); err != nil {
		cli.Fatal(err)
	}
}

func parseKinds(s string) []memmodel.Kind {
	var out []memmodel.Kind
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		out = append(out, memmodel.Kind(part))
	}
	return out
}
