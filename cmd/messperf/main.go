// Command messperf runs the repository's hot-path performance suite and
// writes the results as a JSON trajectory artifact (BENCH_sim.json by
// default), so kernel and simulator speed is tracked across changes the
// same way the figures track accuracy.
//
// It measures three layers, using the canonical workloads of
// internal/perfload (shared with the root -bench=Kernel benchmarks, so the
// gate and the trajectory always measure the same thing):
//
//   - the event kernel: schedule/fire throughput on the wheel and overflow
//     paths, cancel churn, and timer re-arming;
//   - the memory models: events/sec of the detailed DRAM reference model
//     and the Mess analytical simulator under closed-loop load;
//   - the framework: wall-clock of a Quick-scale characterization and of
//     the fig2 experiment (full benchmark sweeps on fresh services, no
//     caches).
//
// Usage:
//
//	messperf [-out BENCH_sim.json] [-kernel-events 4000000] [-model-events 300000] [-skip-fig2]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/mess-sim/mess"
	"github.com/mess-sim/mess/internal/cli"
	"github.com/mess-sim/mess/internal/perfload"
)

// Result is one measured quantity of the suite.
type Result struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	WallMs       float64 `json:"wall_ms"`
	Ops          int     `json:"ops"`
}

// Report is the BENCH_sim.json schema.
type Report struct {
	Schema     string   `json:"schema"`
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Results    []Result `json:"results"`
}

func measure(name string, ops int, run func()) Result {
	start := time.Now()
	run()
	el := time.Since(start)
	r := Result{Name: name, WallMs: float64(el.Nanoseconds()) / 1e6, Ops: ops}
	if ops > 0 {
		r.NsPerOp = float64(el.Nanoseconds()) / float64(ops)
		r.EventsPerSec = float64(ops) / el.Seconds()
	}
	return r
}

// modelThroughput drives perfload's closed request loop against a memory
// model and reports completions/sec.
func modelThroughput(name string, n int, mk func(eng *mess.Engine) mess.MemBackend) Result {
	eng := mess.NewEngine()
	model := mk(eng)
	return measure(name, n, func() { perfload.ClosedLoop(eng, model, n) })
}

func main() {
	var (
		out          = flag.String("out", "BENCH_sim.json", "write the JSON report here")
		kernelEvents = flag.Int("kernel-events", 4_000_000, "events per kernel micro-measurement")
		modelEvents  = flag.Int("model-events", 300_000, "requests per model measurement")
		skipFig2     = flag.Bool("skip-fig2", false, "skip the Quick-scale fig2 characterization")
	)
	flag.Parse()

	rep := Report{
		Schema:     "mess-perf/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	add := func(r Result) {
		rep.Results = append(rep.Results, r)
		if r.EventsPerSec > 0 {
			fmt.Printf("%-28s %10.1f ns/op %12.0f events/s %10.1f ms\n", r.Name, r.NsPerOp, r.EventsPerSec, r.WallMs)
		} else {
			fmt.Printf("%-28s %38s %10.1f ms\n", r.Name, "", r.WallMs)
		}
	}
	kernel := func(name string, load func(*mess.Engine, int)) {
		eng := mess.NewEngine()
		n := *kernelEvents
		add(measure("kernel/"+name, n, func() { load(eng, n) }))
	}

	kernel("schedule_fire", perfload.ScheduleFire)
	kernel("wheel_dense", perfload.WheelDense)
	kernel("far_horizon", perfload.FarHorizon)
	kernel("schedule_cancel", perfload.Cancel)
	kernel("timer_rearm", perfload.TimerRearm)

	add(modelThroughput("model/dram_reference", *modelEvents, func(eng *mess.Engine) mess.MemBackend {
		m, err := mess.NewMemoryModel(mess.ModelReference, eng, mess.Skylake(), nil)
		if err != nil {
			cli.Fatal(err)
		}
		return m
	}))

	// The Mess analytical simulator needs a curve family; its production is
	// itself the framework-level measurement (a Quick characterization on a
	// fresh service = the full sweep, uncached).
	spec := mess.Skylake()
	spec.Cores = 8
	spec.DRAM.Channels = 3
	var fam *mess.Family
	add(measure("framework/characterize_quick", 0, func() {
		svc := mess.NewCharacterizationService(mess.CharacterizationConfig{})
		art, err := svc.Characterize(mess.CharacterizationRequest{Spec: spec, Options: mess.QuickBenchmarkOptions()})
		if err != nil {
			cli.Fatal(err)
		}
		fam = art.Family
	}))
	add(modelThroughput("model/mess_simulator", *modelEvents, func(eng *mess.Engine) mess.MemBackend {
		return mess.NewSimulator(eng, mess.SimulatorConfig{Family: fam})
	}))

	if !*skipFig2 {
		add(measure("framework/fig2_quick", 0, func() {
			svc := mess.NewCharacterizationService(mess.CharacterizationConfig{})
			if _, err := mess.RunExperimentWith(svc, "fig2", mess.ScaleQuick); err != nil {
				cli.Fatal(err)
			}
		}))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		cli.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		cli.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
