// Command messperf runs the repository's hot-path performance suite and
// writes the results as a JSON trajectory artifact (BENCH_sim.json by
// default), so kernel and simulator speed is tracked across changes the
// same way the figures track accuracy.
//
// It measures three layers, using the canonical workloads of
// internal/perfload (shared with the root -bench=Kernel benchmarks, so the
// gate and the trajectory always measure the same thing):
//
//   - the event kernel: schedule/fire throughput on the wheel and overflow
//     paths, cancel churn, and timer re-arming;
//   - the memory models: events/sec and allocs/op of the detailed DRAM
//     reference model and the Mess analytical simulator under closed-loop
//     load (the zero-allocation request-lifecycle claim is a tracked
//     artifact: allocs_per_op on these rows must stay ≈ 0);
//   - the framework: wall-clock of a Quick-scale characterization and of
//     the fig2 experiment (full benchmark sweeps on fresh services, no
//     caches), plus the sharded counterparts of the DRAM closed loop, the
//     fig2 sweep and a single fully-loaded sweep point — the same
//     simulations on per-channel shard engines advanced concurrently
//     (byte-identical results; the rows track the wall-clock win). Sharded
//     rows record the gomaxprocs they ran at, since their numbers are
//     meaningless without it. -shards picks the engine count (0 = auto:
//     GOMAXPROCS capped at channels+1; 1 = disable the sharded rows).
//     Since v4 the framework layer also measures the trace-replay pair:
//     one fig6-class trace captured on the Quick-scaled platform, replayed
//     in full (framework/fig6_replay) and through the phase-clustered
//     sampler (framework/fig6_replay_sampled). The sampled row carries
//     divergence_pct and speedup_x — deterministic accuracy numbers that
//     -max-divergence and -min-speedup turn into hard gates (CI runs with
//     -max-divergence 5 -min-speedup 5); -skip-replay disables the pair.
//     Since v5 the sharded rows gain an in-run A/B against the PR-6 global
//     barrier (model/dram_sharded_global couples every shard through the
//     group-wide minimum window, exactly what the barrier did before
//     per-pair lookahead horizons), device-shard rows for the CXL expander
//     (model/cxl vs model/cxl_sharded), a second sharded sweep point on
//     the 8-channel Graviton 3 model (framework/fig4_point{,_sharded}),
//     and barrier statistics (windows, avg_window_ns, parks) on every
//     sharded row.
//
// With -cpuprofile/-memprofile, messperf writes pprof profiles covering
// exactly the measured region (every benchmark, none of the report or
// gate machinery) — the intended way to hunt barrier or kernel hot spots
// on a machine where a row regressed.
//
// With -best-of N, every measurement is taken N times and only the best
// sample (highest events/sec; lowest wall-clock for wall-only rows) is
// recorded and gated. Single runs on shared CI runners carry scheduling
// noise well above the 10% previous-run gate; the best of N is a far more
// stable estimator of what the code can do on that machine, so CI runs
// with -best-of 3.
//
// With -gate, messperf additionally compares the fresh results against a
// baseline artifact and exits nonzero when any kernel benchmark's
// events/sec dropped by more than -gate-drop, or when any result's
// allocs_per_op rose above its baseline (a machine-independent check:
// 0 → ≥1 allocs/op fails anywhere). -gate-prev layers a second, tighter
// gate over the same measurement: CI always enforces the committed
// BENCH_sim.json at the loose 30% (an absolute cross-machine floor that a
// chain of small regressions cannot ratchet away) and, when the previous
// successful run of the branch left an artifact, additionally enforces it
// at 10% — successive runs share a runner class, so that bound tracks
// real drift.
//
// Usage:
//
//	messperf [-out BENCH_sim.json] [-kernel-events 4000000] [-model-events 300000]
//	         [-best-of 3] [-skip-fig2] [-gate BENCH_sim.json] [-gate-drop 0.30]
//	         [-max-divergence 5] [-min-speedup 5] [-skip-replay]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"runtime/pprof"

	"github.com/mess-sim/mess"
	"github.com/mess-sim/mess/internal/bench"
	"github.com/mess-sim/mess/internal/cli"
	"github.com/mess-sim/mess/internal/cxl"
	"github.com/mess-sim/mess/internal/dram"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/memmodel"
	"github.com/mess-sim/mess/internal/perfload"
	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/sim"
	"github.com/mess-sim/mess/internal/trace"
)

// Schema identifies the BENCH_sim.json format. v2 added allocs_per_op to
// every op-counted result; v3 added the sharded-execution rows
// (model/dram_sharded, framework/fig2_quick_sharded, framework/fig2_point,
// framework/fig2_point_sharded) and per-result gomaxprocs; v4 added the
// trace-replay pair (framework/fig6_replay, framework/fig6_replay_sampled)
// with the sampled row's divergence_pct and speedup_x accuracy fields; v5
// added the global-coupling A/B row (model/dram_sharded_global), the CXL
// device-shard pair (model/cxl, model/cxl_sharded), the Graviton 3 sweep
// point pair (framework/fig4_point, framework/fig4_point_sharded) and the
// barrier-statistics fields (windows, avg_window_ns, parks) on sharded
// rows; v6 added the top-level telemetry block — a snapshot of the run's
// internal metrics registry (bench sweep-point, sim window/barrier and
// charz source counters), so the trajectory records not only how fast the
// suite ran but how much simulation work it did.
const Schema = "mess-perf/v6"

// Result is one measured quantity of the suite. AllocsPerOp follows the
// `go test -benchmem` convention (total mallocs / ops, truncated): the
// zero-allocation hot-path claim reads as a literal 0, while Mallocs keeps
// the raw count so sub-integer drift (pool warmup, wheel-bucket growth)
// stays visible in the trajectory.
type Result struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	AllocsPerOp  *int64  `json:"allocs_per_op,omitempty"` // nil for wall-clock-only rows
	Mallocs      uint64  `json:"mallocs,omitempty"`
	WallMs       float64 `json:"wall_ms"`
	Ops          int     `json:"ops"`
	// GOMAXPROCS is set on rows whose wall-clock depends on host
	// parallelism (the sharded-execution rows); zero elsewhere.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// Windows, AvgWindowNs and Parks are set on sharded rows: conservative
	// windows the barrier executed, the mean home-shard window width, and
	// how often a waiting party escalated past spinning and yielding to a
	// blocking park. They contextualize the wall-clock columns — a sharded
	// row that got slower with the same window count parked more (host
	// contention), one whose windows shrank hit a tighter lookahead path.
	Windows     uint64  `json:"windows,omitempty"`
	AvgWindowNs float64 `json:"avg_window_ns,omitempty"`
	Parks       uint64  `json:"parks,omitempty"`
	// DivergencePct and SpeedupX are set on the sampled-replay row only:
	// the reconstruction's worst-case bandwidth/latency deviation from the
	// full replay of the same trace, and the record-count reduction the
	// sampling achieved. Both are deterministic per trace (unlike the
	// wall-clock columns), so they can be gated as hard bounds.
	DivergencePct float64 `json:"divergence_pct,omitempty"`
	SpeedupX      float64 `json:"speedup_x,omitempty"`
}

// Report is the BENCH_sim.json schema.
type Report struct {
	Schema     string   `json:"schema"`
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	BestOf     int      `json:"best_of,omitempty"`
	Results    []Result `json:"results"`
	// Telemetry is the run's internal metrics registry, flattened
	// (histograms appear as _count/_sum). Work counters — sweep points,
	// conservative windows, cross-shard messages — contextualize the
	// wall-clock rows: a row that slowed down while its work counters held
	// steady regressed, one whose counters moved measured different work.
	// Volatile by construction, so never gated.
	Telemetry map[string]float64 `json:"telemetry,omitempty"`
}

// better reports whether a is a better sample of the same measurement
// than b: more events/sec for op-counted rows, less wall-clock for
// wall-only ones. Under -best-of, "best" is the right statistic — the
// minimum of a latency-like measurement estimates the noise floor, where
// the mean smears scheduler interference into the trajectory.
func better(a, b Result) bool {
	if a.Ops > 0 && b.Ops > 0 {
		return a.EventsPerSec > b.EventsPerSec
	}
	return a.WallMs < b.WallMs
}

func measure(name string, ops int, run func()) Result {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	run()
	el := time.Since(start)
	runtime.ReadMemStats(&m1)
	r := Result{Name: name, WallMs: float64(el.Nanoseconds()) / 1e6, Ops: ops}
	if ops > 0 {
		r.NsPerOp = float64(el.Nanoseconds()) / float64(ops)
		r.EventsPerSec = float64(ops) / el.Seconds()
		// Mallocs is a cumulative allocation count (GC never decreases
		// it), so the delta is exactly what the run allocated.
		r.Mallocs = m1.Mallocs - m0.Mallocs
		allocs := int64(r.Mallocs) / int64(ops)
		r.AllocsPerOp = &allocs
	}
	return r
}

// modelThroughput drives perfload's closed request loop against a memory
// model and reports completions/sec and allocations/op. A short warmup run
// first brings the engine's event pool, the model's queues and the wheel
// buckets to steady state, so the measured window reflects the sustained
// access path rather than cold-start growth.
func modelThroughput(name string, n int, pattern perfload.LoopPattern, mk func(eng *mess.Engine) mess.MemBackend) Result {
	eng := mess.NewEngine()
	model := mk(eng)
	drv := perfload.NewClosedLoopPattern(eng, model, pattern)
	warm := n / 4
	if warm > 50_000 {
		warm = 50_000
	}
	drv.Run(warm)
	return measure(name, n, func() { drv.Run(n) })
}

// gate compares fresh results against a baseline artifact and fails on two
// kinds of regression:
//
//   - a kernel benchmark losing more than maxDrop of its events/sec. This
//     is a same-class-machine comparison: the committed baseline and the
//     runner differ, so the bound is deliberately loose — it catches
//     order-of-magnitude breakage (an accidental O(n) queue, a lost fast
//     path), not percent-level drift. Model and framework rows are
//     trajectory-only for the same reason.
//   - any result whose allocs_per_op integer rose above its baseline. This
//     check is machine-independent (allocation counts do not depend on the
//     runner), so a hot path regressing from 0 to ≥1 allocs/op fails
//     anywhere.
func gate(fresh Report, baselinePath string, maxDrop float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("gate: read baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("gate: parse baseline: %w", err)
	}
	baseline := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r
	}
	var failures []string
	for _, r := range fresh.Results {
		was, ok := baseline[r.Name]
		if !ok {
			continue // new benchmark: no trajectory yet
		}
		if r.GOMAXPROCS != was.GOMAXPROCS {
			// Rows that record their gomaxprocs (the sharded ones) are
			// only comparable between runs at the same parallelism: a
			// 2-vCPU runner gating against a 16-vCPU baseline would read
			// host topology as a code regression. Skip, don't fail.
			fmt.Printf("gate %-28s skipped: gomaxprocs %d (fresh) vs %d (baseline), not comparable\n",
				r.Name, r.GOMAXPROCS, was.GOMAXPROCS)
			continue
		}
		if strings.HasPrefix(r.Name, "kernel/") && r.EventsPerSec > 0 && was.EventsPerSec > 0 {
			drop := 1 - r.EventsPerSec/was.EventsPerSec
			status := "ok"
			if drop > maxDrop {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s: %.0f -> %.0f events/s (%.0f%% drop > %.0f%% allowed)",
					r.Name, was.EventsPerSec, r.EventsPerSec, 100*drop, 100*maxDrop))
			}
			fmt.Printf("gate %-28s %12.0f -> %12.0f events/s  %+6.1f%%  %s\n",
				r.Name, was.EventsPerSec, r.EventsPerSec, -100*drop, status)
		}
		if r.AllocsPerOp != nil && was.AllocsPerOp != nil && *r.AllocsPerOp > *was.AllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: %d -> %d allocs/op",
				r.Name, *was.AllocsPerOp, *r.AllocsPerOp))
			fmt.Printf("gate %-28s %12d -> %12d allocs/op  FAIL\n", r.Name, *was.AllocsPerOp, *r.AllocsPerOp)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("gate: regression vs %s:\n  %s",
			baselinePath, strings.Join(failures, "\n  "))
	}
	return nil
}

func main() {
	var (
		out          = flag.String("out", "BENCH_sim.json", "write the JSON report here")
		kernelEvents = flag.Int("kernel-events", 4_000_000, "events per kernel micro-measurement")
		modelEvents  = flag.Int("model-events", 300_000, "requests per model measurement")
		bestOfN      = flag.Int("best-of", 1, "take each measurement N times and keep the best (suppresses single-run runner noise)")
		skipFig2     = flag.Bool("skip-fig2", false, "skip the Quick-scale fig2 characterization")
		gateAgainst  = flag.String("gate", "", "baseline BENCH_sim.json to gate kernel events/sec against")
		gateDrop     = flag.Float64("gate-drop", 0.30, "maximum tolerated fractional events/sec drop per kernel benchmark")
		gatePrev     = flag.String("gate-prev", "", "additional baseline (the previous CI run's artifact) gated at -gate-prev-drop")
		gatePrevDrop = flag.Float64("gate-prev-drop", 0.10, "maximum tolerated fractional events/sec drop vs -gate-prev")
		shardsFlag   = flag.Int("shards", 0, "engines for the sharded rows (0 = auto: GOMAXPROCS capped at channels+1; 1 = skip sharded rows)")
		skipReplay   = flag.Bool("skip-replay", false, "skip the fig6 trace-replay rows")
		maxDiverge   = flag.Float64("max-divergence", 0, "fail when the sampled replay diverges from the full replay by more than this percentage (0 = no gate)")
		minSpeedup   = flag.Float64("min-speedup", 0, "fail when the sampled replay's record-count speedup is below this factor (0 = no gate)")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the measured region here")
		memProfile   = flag.String("memprofile", "", "write a heap profile taken at the end of the measured region here")
	)
	tel := cli.TelemetryFlags()
	flag.Parse()

	// One registry spans every framework-layer measurement; its snapshot
	// lands in the report's telemetry block so the trajectory records the
	// amount of simulation work behind the wall-clock rows.
	set := tel.Set()

	// shardsFor resolves the shard count for a platform with the given
	// channel count; below 2 the sharded rows are skipped.
	shardsFor := func(channels int) int {
		n := *shardsFlag
		if n == 0 {
			n = runtime.GOMAXPROCS(0)
		}
		if m := channels + 1; n > m {
			n = m
		}
		if n < 2 {
			return 0
		}
		return n
	}

	if *bestOfN < 1 {
		*bestOfN = 1
	}
	rep := Report{
		Schema:     Schema,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BestOf:     *bestOfN,
	}
	// best re-takes a whole measurement (engine construction, warmup and
	// all) -best-of times and keeps the best sample, so every recorded row
	// is comparably the machine's noise floor.
	best := func(f func() Result) Result {
		r := f()
		for i := 1; i < *bestOfN; i++ {
			if s := f(); better(s, r) {
				r = s
			}
		}
		return r
	}
	add := func(r Result) {
		rep.Results = append(rep.Results, r)
		if r.EventsPerSec > 0 {
			var allocs int64
			if r.AllocsPerOp != nil {
				allocs = *r.AllocsPerOp
			}
			fmt.Printf("%-28s %10.1f ns/op %12.0f events/s %6d allocs/op %10.1f ms\n",
				r.Name, r.NsPerOp, r.EventsPerSec, allocs, r.WallMs)
		} else if r.SpeedupX > 0 {
			fmt.Printf("%-28s %32s divergence %5.2f%% %6.1f× %8.1f ms\n",
				r.Name, "", r.DivergencePct, r.SpeedupX, r.WallMs)
		} else {
			fmt.Printf("%-28s %49s %10.1f ms\n", r.Name, "", r.WallMs)
		}
	}
	// The profile window covers exactly the measurements: it opens here,
	// after flag handling and report setup, and closes (below) before the
	// report is marshalled and the gates run, so kernel and barrier hot
	// spots are not diluted by artifact bookkeeping.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			cli.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			cli.Fatal(err)
		}
	}
	kernel := func(name string, load func(*mess.Engine, int)) {
		add(best(func() Result {
			eng := mess.NewEngine()
			n := *kernelEvents
			// Warm the engine first (event pool, wheel buckets, overflow
			// array): without it, short -kernel-events runs measure mostly
			// cold-start growth and are not comparable with a baseline
			// taken at a different event count.
			load(eng, n/8)
			return measure("kernel/"+name, n, func() { load(eng, n) })
		}))
	}

	kernel("schedule_fire", perfload.ScheduleFire)
	kernel("wheel_dense", perfload.WheelDense)
	kernel("far_horizon", perfload.FarHorizon)
	kernel("schedule_cancel", perfload.Cancel)
	kernel("timer_rearm", perfload.TimerRearm)

	// The detailed DRAM model is measured under three traffic regimes: the
	// historical reference pattern (hit-friendly streams), a mapper-
	// defeating random walk (row-miss-dominated) and a 2:1 read/write mix
	// (write-queue drains) — the scheduler regressions each can hide from
	// the others.
	mkReference := func(eng *mess.Engine) mess.MemBackend {
		m, err := mess.NewMemoryModel(mess.ModelReference, eng, mess.Skylake(), nil)
		if err != nil {
			cli.Fatal(err)
		}
		return m
	}
	modelBest := func(name string, pattern perfload.LoopPattern, mk func(eng *mess.Engine) mess.MemBackend) {
		add(best(func() Result { return modelThroughput(name, *modelEvents, pattern, mk) }))
	}
	modelBest("model/dram_reference", perfload.PatternReference, mkReference)
	modelBest("model/dram_random", perfload.PatternRandom, mkReference)
	modelBest("model/dram_mixed", perfload.PatternMixed, mkReference)

	// shardStats folds the group's barrier statistics into a sharded row;
	// every sharded row also records its gomaxprocs, since neither its
	// wall-clock nor its park count means anything without it.
	shardStats := func(r Result, group *mess.ShardGroup) Result {
		s := group.Stats()
		r.GOMAXPROCS = runtime.GOMAXPROCS(0)
		r.Windows = s.Windows
		r.AvgWindowNs = s.AvgWindow.Nanoseconds()
		r.Parks = s.Parks
		return r
	}

	// The sharded counterpart of model/dram_reference: the same detailed
	// DRAM system with channels spread over concurrently advancing shard
	// engines, driven through the timed hand-off (the cross-shard hop is
	// the home shard's lookahead). Results are byte-identical to the
	// single-engine row; the measurement is the wall-clock win. The
	// _global variant runs the identical simulation with the group coupled
	// through the PR-6 group-wide minimum window instead of per-pair
	// horizons — the in-run A/B that prices the barrier change itself,
	// immune to runner drift.
	if full := mess.Skylake(); shardsFor(full.DRAM.Channels) >= 2 {
		n := shardsFor(full.DRAM.Channels)
		hop := full.CacheConfig().OnChipLatency / 2
		shardedDRAM := func(name string, global bool) {
			add(best(func() Result {
				group := mess.NewShardGroup(n)
				defer group.Close()
				group.SetGlobalCoupling(global)
				backend := dram.NewSharded(group, full.DRAM, 0)
				drv := perfload.NewShardedClosedLoop(group, backend, hop, perfload.PatternReference)
				warm := *modelEvents / 4
				if warm > 50_000 {
					warm = 50_000
				}
				drv.Run(warm)
				return shardStats(measure(name, *modelEvents, func() { drv.Run(*modelEvents) }), group)
			}))
		}
		shardedDRAM("model/dram_sharded", false)
		shardedDRAM("model/dram_sharded_global", true)
	}

	// The CXL expander under the same closed loop: unsharded (TimedOn
	// carries the host hop on the device's own engine) vs the device on
	// its own shard. The device's 70 ns propagation is the shard's
	// outbound lookahead — windows far wider than the DRAM channels get
	// from burst-quantum coupling, so this pair isolates what the barrier
	// costs when the model itself is cheap.
	{
		ccfg := cxl.Default()
		chop := mess.Skylake().CacheConfig().OnChipLatency / 2
		warm := *modelEvents / 4
		if warm > 50_000 {
			warm = 50_000
		}
		add(best(func() Result {
			eng := mess.NewEngine()
			dev := cxl.New(eng, ccfg)
			drv := perfload.NewTimedClosedLoop(eng, &mem.TimedOn{Eng: eng, Inner: dev}, chop, perfload.PatternReference)
			drv.Run(warm)
			return measure("model/cxl", *modelEvents, func() { drv.Run(*modelEvents) })
		}))
		if shardsFor(1) >= 2 {
			add(best(func() Result {
				group := mess.NewShardGroup(2)
				defer group.Close()
				sh, _ := cxl.NewShardedExpander(group, 0, 1, ccfg, chop)
				drv := perfload.NewShardedClosedLoop(group, sh, chop, perfload.PatternReference)
				drv.Run(warm)
				return shardStats(measure("model/cxl_sharded", *modelEvents, func() { drv.Run(*modelEvents) }), group)
			}))
		}
	}

	// The Mess analytical simulator needs a curve family; its production is
	// itself the framework-level measurement (a Quick characterization on a
	// fresh service = the full sweep, uncached).
	spec := mess.Skylake()
	spec.Cores = 8
	spec.DRAM.Channels = 3
	var fam *mess.Family
	add(best(func() Result {
		return measure("framework/characterize_quick", 0, func() {
			svc := mess.NewCharacterizationService(mess.CharacterizationConfig{Telemetry: set})
			art, err := svc.Characterize(mess.CharacterizationRequest{Spec: spec, Options: mess.QuickBenchmarkOptions()})
			if err != nil {
				cli.Fatal(err)
			}
			fam = art.Family
		})
	}))
	modelBest("model/mess_simulator", perfload.PatternReference, func(eng *mess.Engine) mess.MemBackend {
		return mess.NewSimulator(eng, mess.SimulatorConfig{Family: fam})
	})

	if !*skipFig2 {
		add(best(func() Result {
			return measure("framework/fig2_quick", 0, func() {
				svc := mess.NewCharacterizationService(mess.CharacterizationConfig{Telemetry: set})
				if _, err := mess.RunExperimentWith(svc, "fig2", mess.ScaleQuick); err != nil {
					cli.Fatal(err)
				}
			})
		}))
		// Quick-scaled Skylake characterizes 3 channels; the sharded sweep
		// runs the same 22 jobs with each measurement point sharded. The
		// sweep-level win is bounded by the home shard (cores and cache
		// stay serial), so the single-point rows below are the headline
		// speedup numbers.
		if n := shardsFor(3); n >= 2 {
			add(best(func() Result {
				r := measure("framework/fig2_quick_sharded", 0, func() {
					svc := mess.NewCharacterizationService(mess.CharacterizationConfig{Telemetry: set})
					if _, err := mess.RunExperimentSharded(svc, "fig2", mess.ScaleQuick, n); err != nil {
						cli.Fatal(err)
					}
				})
				r.GOMAXPROCS = runtime.GOMAXPROCS(0)
				return r
			}))
		}
	}

	// One fully-loaded fig2 sweep point (all generators unpaced, 0% stores)
	// on the Quick-scaled Skylake, unsharded vs sharded — the cleanest A/B
	// of the sharded engine's single-point wall-clock.
	point := mess.Skylake()
	point.Cores = 12
	point.DRAM.Channels = 3
	popt := mess.QuickBenchmarkOptions()
	popt.Telemetry = set
	add(best(func() Result {
		return measure("framework/fig2_point", 0, func() {
			if _, err := bench.MeasurePoint(point, popt, bench.Mix{}, 0); err != nil {
				cli.Fatal(err)
			}
		})
	}))
	if n := shardsFor(point.DRAM.Channels); n >= 2 {
		sopt := popt
		sopt.Shards = n
		add(best(func() Result {
			r := measure("framework/fig2_point_sharded", 0, func() {
				if _, err := bench.MeasurePoint(point, sopt, bench.Mix{}, 0); err != nil {
					cli.Fatal(err)
				}
			})
			r.GOMAXPROCS = runtime.GOMAXPROCS(0)
			return r
		}))
	}

	// The same A/B on the 8-channel gem5 Graviton 3 model (cores scaled
	// down so the point stays Quick-sized): with 8 channel shards the
	// per-pair horizons have the most coupling to avoid — channels never
	// talk to each other, so only the 2(n−1) home edges constrain the
	// windows, where the PR-6 global minimum coupled all n(n−1).
	fig4 := platform.Gem5Graviton3()
	fig4.Cores = 12
	add(best(func() Result {
		return measure("framework/fig4_point", 0, func() {
			if _, err := bench.MeasurePoint(fig4, popt, bench.Mix{}, 0); err != nil {
				cli.Fatal(err)
			}
		})
	}))
	if n := shardsFor(fig4.DRAM.Channels); n >= 2 {
		sopt := popt
		sopt.Shards = n
		add(best(func() Result {
			r := measure("framework/fig4_point_sharded", 0, func() {
				if _, err := bench.MeasurePoint(fig4, sopt, bench.Mix{}, 0); err != nil {
					cli.Fatal(err)
				}
			})
			r.GOMAXPROCS = runtime.GOMAXPROCS(0)
			return r
		}))
	}

	// The fig6-class trace-replay pair: one mid-pressure trace (40% stores,
	// 16 ns pacing) is captured once on the same Quick-scaled Skylake, then
	// replayed in full (framework/fig6_replay) and through the
	// phase-clustered sampler (framework/fig6_replay_sampled). The sampled
	// row additionally records how far its reconstructed estimates diverge
	// from the full replay and what fraction of the records it avoided
	// simulating; both numbers are deterministic per trace, so
	// -max-divergence / -min-speedup can gate them as hard accuracy bounds
	// next to the (noisy, trajectory-only) wall-clock columns.
	if !*skipReplay {
		topt := bench.QuickOptions()
		topt.Mixes = []bench.Mix{{StorePercent: 40}}
		topt.PacesNs = []float64{16}
		topt.Parallelism = 1
		// Sampling pays off only when the trace holds many windows of a
		// span long enough for queueing to reach steady state (~µs); the
		// default Quick measure window would yield barely a dozen.
		topt.Measure = 192 * sim.Microsecond
		var cap *trace.Capture
		topt.Backend = func(eng *sim.Engine) mem.Backend {
			cap = trace.NewCapture(eng, dram.New(eng, point.DRAM), 400_000)
			return cap
		}
		if _, err := bench.Run(point, topt); err != nil {
			cli.Fatal(err)
		}
		tr := &cap.T
		mkReplay := func(eng *sim.Engine) mem.Backend { return memmodel.NewDRAMsim3Like(eng, point) }
		var full trace.ReplayResult
		add(best(func() Result {
			return measure("framework/fig6_replay", 0, func() {
				eng := sim.New()
				full = trace.Replay(eng, mkReplay(eng), tr)
			})
		}))
		mapper := dram.NewMapper(&point.DRAM)
		add(best(func() Result {
			var sam *trace.SampledResult
			r := measure("framework/fig6_replay_sampled", 0, func() {
				var err error
				sam, err = trace.Sampled(mkReplay, tr, trace.SampleConfig{
					Span:    2 * sim.Microsecond,
					BankRow: mapper.BankRow,
				})
				if err != nil {
					cli.Fatal(err)
				}
			})
			r.DivergencePct = sam.DivergencePct(full)
			r.SpeedupX = sam.SpeedupX
			return r
		}))
	}

	// End of the measured region: stop the CPU profile and snapshot the
	// heap before any report or gate work allocates on top of it.
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
		fmt.Printf("wrote %s\n", *cpuProfile)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			cli.Fatal(err)
		}
		runtime.GC() // settle accumulators so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			cli.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *memProfile)
	}

	rep.Telemetry = set.Registry().Snapshot()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		cli.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		cli.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)

	// Both gates see the same fresh results — one measurement, two bounds.
	for _, g := range []struct {
		path string
		drop float64
	}{{*gateAgainst, *gateDrop}, {*gatePrev, *gatePrevDrop}} {
		if g.path == "" {
			continue
		}
		if err := gate(rep, g.path, g.drop); err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("gate passed: no kernel benchmark dropped more than %.0f%% vs %s\n", 100*g.drop, g.path)
	}

	// The sampled-replay accuracy gate needs no baseline: divergence and
	// speedup are absolute, deterministic properties of this build against
	// its own full replay.
	if *maxDiverge > 0 || *minSpeedup > 0 {
		for _, r := range rep.Results {
			if r.Name != "framework/fig6_replay_sampled" {
				continue
			}
			if *maxDiverge > 0 && r.DivergencePct > *maxDiverge {
				cli.Fatal(fmt.Errorf("gate: sampled replay diverges %.2f%% from the full replay (> %.1f%% allowed)",
					r.DivergencePct, *maxDiverge))
			}
			if *minSpeedup > 0 && r.SpeedupX < *minSpeedup {
				cli.Fatal(fmt.Errorf("gate: sampled replay simulated too much of the trace: %.1f× speedup (< %.1f× required)",
					r.SpeedupX, *minSpeedup))
			}
			fmt.Printf("gate passed: sampled replay divergence %.2f%%, speedup %.1f×\n",
				r.DivergencePct, r.SpeedupX)
		}
	}
}
