// Command messtrace captures memory traces from a Mess benchmark run and
// replays them through standalone memory models — the paper's trace-driven
// methodology (Sec. IV-D) as a tool.
//
// Replay runs either in full (every record simulated) or sampled: the
// trace is cut into fixed-span windows, each window fingerprinted with an
// access vector, the vectors clustered, and only one representative window
// (plus probes) per behaviour cluster is simulated; full-trace bandwidth
// and latency are reconstructed as cluster-weighted sums with error bars.
// Sampled replay is deterministic — same trace and settings, same result.
//
// Sampling needs a trace long enough to hold many µs-span windows —
// capture with a few hundred µs of measured time (-measure-us) when the
// trace is destined for -sampled replay.
//
// Usage:
//
//	messtrace -platform "Intel Skylake" -capture trace.txt -stores 40 -pace 8
//	messtrace -platform "Intel Skylake" -capture trace.txt -measure-us 400 -limit 0
//	messtrace -replay trace.txt -model dramsim3 -platform "Intel Skylake"
//	messtrace -replay trace.txt -model dramsim3 -sampled -compare-full
//	messtrace -replay trace.txt -sampled -windows 96 -clusters 8 -probes 2 -warmup 0.5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/mess-sim/mess"
	"github.com/mess-sim/mess/internal/bench"
	"github.com/mess-sim/mess/internal/cli"
	"github.com/mess-sim/mess/internal/dram"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/memmodel"
	"github.com/mess-sim/mess/internal/sim"
	"github.com/mess-sim/mess/internal/trace"
)

func main() {
	var (
		name    = flag.String("platform", "Intel Skylake", "platform whose configuration to use")
		capture = flag.String("capture", "", "capture a trace from a benchmark point into this file")
		stores  = flag.Int("stores", 0, "capture: kernel store percentage")
		pace    = flag.Float64("pace", 8, "capture: generator pacing in ns/op")
		replay  = flag.String("replay", "", "replay this trace file")
		model   = flag.String("model", "dramsim3", "replay: memory model kind")
		limit   = flag.Int("limit", 200000, "capture: maximum records")
		measUs  = flag.Int("measure-us", 15, "capture: measured window in µs (captures destined for -sampled replay want hundreds: sampling needs many µs-span windows)")

		sampled  = flag.Bool("sampled", false, "replay: sample one window per behaviour cluster instead of every record")
		windows  = flag.Int("windows", 0, "sampled: target window count (0 = default)")
		clusters = flag.Int("clusters", 0, "sampled: behaviour cluster count (0 = default)")
		probes   = flag.Int("probes", 0, "sampled: extra windows replayed per cluster for error bars (0 = default)")
		warmup   = flag.Float64("warmup", 0, "sampled: warm-up prefix as a fraction of the window span (0 = default)")
		compare  = flag.Bool("compare-full", false, "sampled: also run the full replay and report the divergence")
		timeout  = flag.Duration("timeout", 0, cli.TimeoutUsage)
	)
	flag.Parse()

	spec := cli.MustPlatform(*name)

	ctx, stop := cli.Context(*timeout)
	defer stop()

	switch {
	case *capture != "":
		doCapture(ctx, spec, *capture, *stores, *pace, *limit, *measUs)
	case *replay != "":
		cfg := trace.SampleConfig{
			Windows: *windows, Clusters: *clusters, Probes: *probes,
			WarmupFrac: *warmup,
		}
		doReplay(spec, *replay, memmodel.Kind(*model), *sampled, *compare, cfg)
	default:
		fmt.Println("use -capture <file> or -replay <file>; see -h")
	}
}

func doCapture(ctx context.Context, spec mess.Platform, path string, stores int, pace float64, limit, measUs int) {
	var cap *trace.Capture
	opt := bench.QuickOptions()
	opt.Mixes = []bench.Mix{{StorePercent: stores}}
	opt.PacesNs = []float64{pace}
	opt.Parallelism = 1
	if measUs > 0 {
		opt.Measure = sim.Time(measUs) * sim.Microsecond
	}
	opt.Backend = func(eng *sim.Engine) mem.Backend {
		cap = trace.NewCapture(eng, dram.New(eng, spec.DRAM), limit)
		return cap
	}
	res, err := bench.RunContext(ctx, spec, opt)
	if err != nil {
		cli.Fatal(err)
	}
	s := res.Samples[0]
	fmt.Printf("captured %d records at %.1f GB/s (read ratio %.2f, latency %.0f ns)\n",
		len(cap.T.Records), s.BWGBs, s.RdRatio, s.LatNs)

	f, err := os.Create(path)
	if err != nil {
		cli.Fatal(err)
	}
	defer f.Close()
	if err := cap.T.Save(f); err != nil {
		cli.Fatal(err)
	}
	fmt.Printf("trace written to %s\n", path)
}

func doReplay(spec mess.Platform, path string, kind memmodel.Kind, sampled, compare bool, cfg trace.SampleConfig) {
	f, err := os.Open(path)
	if err != nil {
		cli.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		cli.Fatal(err)
	}

	mk := func(eng *sim.Engine) mem.Backend {
		m, err := memmodel.New(kind, eng, spec, nil)
		if err != nil {
			cli.Fatal(err)
		}
		return m
	}
	if !sampled {
		eng := sim.New()
		res := trace.Replay(eng, mk(eng), tr)
		fmt.Printf("replayed %d records through %s:\n", len(tr.Records), kind)
		fmt.Printf("  bandwidth:        %.1f GB/s\n", res.BWGBs)
		fmt.Printf("  mean read latency: %.1f ns (controller level)\n", res.ReadLatNs)
		fmt.Printf("  read ratio:       %.2f\n", res.ReadRatio)
		return
	}

	mapper := dram.NewMapper(&spec.DRAM)
	cfg.BankRow = mapper.BankRow
	sam, err := trace.Sampled(mk, tr, cfg)
	if err != nil {
		cli.Fatal(err)
	}
	fmt.Printf("sampled replay of %d records through %s (%d of %d windows simulated, %.1f× speedup):\n",
		sam.TotalRecords, kind, len(sam.Clusters), len(sam.Windows), sam.SpeedupX)
	fmt.Printf("  bandwidth:        %.1f ± %.1f GB/s\n", sam.Estimate.BWGBs, sam.BWErrGBs)
	fmt.Printf("  mean read latency: %.1f ± %.1f ns (controller level)\n", sam.Estimate.ReadLatNs, sam.LatErrNs)
	fmt.Printf("  read ratio:       %.2f\n", sam.Estimate.ReadRatio)
	for i := range sam.Clusters {
		c := &sam.Clusters[i]
		fmt.Printf("  cluster %d: %d windows (%.0f%% of time), %.1f GB/s, %.1f ns, stretch %.3f\n",
			i, c.Windows, 100*c.Weight, c.BWGBs, c.ReadLatNs, c.Stretch)
	}
	if compare {
		eng := sim.New()
		full := trace.Replay(eng, mk(eng), tr)
		fmt.Printf("full replay: %.1f GB/s, %.1f ns → divergence %.2f%%\n",
			full.BWGBs, full.ReadLatNs, sam.DivergencePct(full))
	}
}
