// Command messtrace captures memory traces from a Mess benchmark run and
// replays them through standalone memory models — the paper's trace-driven
// methodology (Sec. IV-D) as a tool.
//
// Usage:
//
//	messtrace -platform "Intel Skylake" -capture trace.txt -stores 40 -pace 8
//	messtrace -replay trace.txt -model dramsim3 -platform "Intel Skylake"
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/mess-sim/mess"
	"github.com/mess-sim/mess/internal/bench"
	"github.com/mess-sim/mess/internal/cli"
	"github.com/mess-sim/mess/internal/dram"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/memmodel"
	"github.com/mess-sim/mess/internal/sim"
	"github.com/mess-sim/mess/internal/trace"
)

func main() {
	var (
		name    = flag.String("platform", "Intel Skylake", "platform whose configuration to use")
		capture = flag.String("capture", "", "capture a trace from a benchmark point into this file")
		stores  = flag.Int("stores", 0, "capture: kernel store percentage")
		pace    = flag.Float64("pace", 8, "capture: generator pacing in ns/op")
		replay  = flag.String("replay", "", "replay this trace file")
		model   = flag.String("model", "dramsim3", "replay: memory model kind")
		limit   = flag.Int("limit", 200000, "capture: maximum records")
	)
	flag.Parse()

	spec := cli.MustPlatform(*name)

	switch {
	case *capture != "":
		doCapture(spec, *capture, *stores, *pace, *limit)
	case *replay != "":
		doReplay(spec, *replay, memmodel.Kind(*model))
	default:
		fmt.Println("use -capture <file> or -replay <file>; see -h")
	}
}

func doCapture(spec mess.Platform, path string, stores int, pace float64, limit int) {
	var cap *trace.Capture
	opt := bench.QuickOptions()
	opt.Mixes = []bench.Mix{{StorePercent: stores}}
	opt.PacesNs = []float64{pace}
	opt.Parallelism = 1
	opt.Backend = func(eng *sim.Engine) mem.Backend {
		cap = trace.NewCapture(eng, dram.New(eng, spec.DRAM), limit)
		return cap
	}
	res, err := bench.Run(spec, opt)
	if err != nil {
		cli.Fatal(err)
	}
	s := res.Samples[0]
	fmt.Printf("captured %d records at %.1f GB/s (read ratio %.2f, latency %.0f ns)\n",
		len(cap.T.Records), s.BWGBs, s.RdRatio, s.LatNs)

	f, err := os.Create(path)
	if err != nil {
		cli.Fatal(err)
	}
	defer f.Close()
	if err := cap.T.Save(f); err != nil {
		cli.Fatal(err)
	}
	fmt.Printf("trace written to %s\n", path)
}

func doReplay(spec mess.Platform, path string, kind memmodel.Kind) {
	f, err := os.Open(path)
	if err != nil {
		cli.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		cli.Fatal(err)
	}

	eng := sim.New()
	m, err := memmodel.New(kind, eng, spec, nil)
	if err != nil {
		cli.Fatal(err)
	}
	res := trace.Replay(eng, m, tr)
	fmt.Printf("replayed %d records through %s:\n", len(tr.Records), kind)
	fmt.Printf("  bandwidth:        %.1f GB/s\n", res.BWGBs)
	fmt.Printf("  mean read latency: %.1f ns (controller level)\n", res.ReadLatNs)
	fmt.Printf("  read ratio:       %.2f\n", res.ReadRatio)
}
