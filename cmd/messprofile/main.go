// Command messprofile demonstrates Mess application profiling: it runs the
// HPCG proxy on a simulated platform, samples the memory-bandwidth counters
// per window, positions every window on the platform's bandwidth–latency
// curves, and reports the stress-score timeline (the Extrae/Paraver
// pipeline of Sec. VI).
//
// With -replay-trace it instead profiles a captured memory trace (see
// messtrace -capture): the trace is windowed, each window fingerprinted by
// its memory-access vector and clustered into behaviour phases, and one
// representative window per phase is replayed through the platform's
// detailed DRAM model — the sampled-simulation pipeline, reporting the
// phase breakdown plus reconstructed whole-trace bandwidth and latency
// with error bars.
//
// Usage:
//
//	messprofile -platform "Intel Cascade Lake" [-trace profile.prv] [-cache-dir ~/.cache/mess]
//	messprofile -platform "Intel Cascade Lake" -cache-url http://curves.internal:9400
//	messprofile -platform "Intel Skylake" -replay-trace trace.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/mess-sim/mess"
	"github.com/mess-sim/mess/internal/bench"
	"github.com/mess-sim/mess/internal/charz"
	"github.com/mess-sim/mess/internal/cli"
	"github.com/mess-sim/mess/internal/dram"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/plot"
	"github.com/mess-sim/mess/internal/profile"
	"github.com/mess-sim/mess/internal/sim"
	"github.com/mess-sim/mess/internal/trace"
	"github.com/mess-sim/mess/internal/workloads"
)

func main() {
	var (
		name     = flag.String("platform", "Intel Cascade Lake", "platform to profile on")
		out      = flag.String("trace", "", "write the Paraver-flavoured trace to this file")
		durUs    = flag.Int("duration-us", 2000, "simulated application duration in microseconds")
		cacheDir = flag.String("cache-dir", "", "persist curve families under this directory")
		cacheMax = flag.Int("cache-max-mb", 0, "bound the curve cache size in MiB (0 = unbounded); LRU eviction")
		cacheURL = flag.String("cache-url", "", cli.CurveURLUsage)
		replay   = flag.String("replay-trace", "", "profile this captured memory trace by behaviour-phase clustering instead of running the HPCG proxy")
		timeout  = flag.Duration("timeout", 0, cli.TimeoutUsage)
	)
	tel := cli.TelemetryFlags()
	flag.Parse()

	spec := cli.MustPlatform(*name)

	if *replay != "" {
		profileTrace(spec, *replay, tel)
		return
	}

	ctx, stop := cli.Context(*timeout)
	defer stop()
	svc := cli.Service(*cacheDir, *cacheMax, *cacheURL, tel.Set())
	fmt.Printf("characterizing %s for the profiling curves ...\n", spec.Name)
	ref, err := svc.CharacterizeContext(ctx, charz.Request{Spec: spec, Options: bench.QuickOptions()})
	if err != nil {
		cli.Fatal(err)
	}

	fmt.Println("running the HPCG proxy with the window sampler ...")
	app := workloads.NewPhasedApp(spec, workloads.HPCGPhases(), nil)
	sampler := profile.NewSampler(app.Eng, app.Counting, 10*sim.Microsecond)
	sampler.Start()
	app.Run(sim.Time(*durUs) * sim.Microsecond)
	sampler.Stop()

	var spans []profile.PhaseSpan
	for _, e := range app.Events() {
		spans = append(spans, profile.PhaseSpan{Name: e.Name, Start: e.Start, End: e.End, MPI: e.MPI})
	}
	p := profile.Build("HPCG proxy on "+spec.Name, ref.Family, sampler.Windows(), spans, mess.DefaultStressWeights)

	m := ref.Family.Metrics()
	fmt.Printf("\nprofile: %d windows; saturation onset %.0f GB/s\n", len(p.Samples), m.SatBWLowGBs)
	fmt.Printf("windows in the saturated area: %.0f%%\n", 100*p.SaturatedFraction())
	fmt.Printf("maximum stress score: %.2f\n\n", p.MaxStress())

	order, byPhase := p.MeanStressByPhase()
	var rows [][]string
	for _, ph := range order {
		rows = append(rows, []string{ph, fmt.Sprintf("%.2f", byPhase[ph])})
	}
	if err := plot.Table(os.Stdout, []string{"phase", "mean stress"}, rows); err != nil {
		cli.Fatal(err)
	}

	fmt.Println("\ntimeline (first 25 windows):")
	var trows [][]string
	for i, s := range p.Samples {
		if i == 25 {
			break
		}
		phase := s.Phase
		if s.MPI {
			phase += " (MPI)"
		}
		trows = append(trows, []string{
			fmt.Sprintf("%.0f–%.0f µs", s.Start.Seconds()*1e6, s.End.Seconds()*1e6),
			phase,
			fmt.Sprintf("%.1f", s.BWGBs),
			fmt.Sprintf("%.0f", s.LatencyNs),
			fmt.Sprintf("%.2f", s.Stress),
		})
	}
	if err := plot.Table(os.Stdout, []string{"window", "phase", "BW [GB/s]", "latency [ns]", "stress"}, trows); err != nil {
		cli.Fatal(err)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			cli.Fatal(err)
		}
		defer f.Close()
		if err := p.WriteTrace(f); err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("\ntrace written to %s\n", *out)
	}
}

// profileTrace is the sampled-replay profiling mode: cluster a captured
// trace's windows by access-vector and report the phase breakdown plus the
// reconstructed whole-trace estimates.
func profileTrace(spec mess.Platform, path string, tel *cli.Telemetry) {
	f, err := os.Open(path)
	if err != nil {
		cli.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		cli.Fatal(err)
	}

	mapper := dram.NewMapper(&spec.DRAM)
	mk := func(eng *sim.Engine) mem.Backend { return dram.New(eng, spec.DRAM) }
	res, err := trace.Sampled(mk, tr, trace.SampleConfig{BankRow: mapper.BankRow, Telemetry: tel.Set()})
	if err != nil {
		cli.Fatal(err)
	}

	fmt.Printf("phase-cluster profile of %s on %s (%d records, %d windows of %.2f µs):\n",
		path, spec.Name, res.TotalRecords, len(res.Windows), res.WindowSpan.Seconds()*1e6)
	var rows [][]string
	for i := range res.Clusters {
		c := &res.Clusters[i]
		if c.Windows == 0 {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("phase %d", i),
			fmt.Sprintf("%d", c.Windows),
			fmt.Sprintf("%.0f%%", 100*c.Weight),
			fmt.Sprintf("%.1f", c.BWGBs),
			fmt.Sprintf("%.1f", c.ReadLatNs),
			fmt.Sprintf("%.3f", c.Stretch),
			fmt.Sprintf("%.2f", c.Centroid.RowHit),
			fmt.Sprintf("%.2f", c.Centroid.ReadFrac),
		})
	}
	if err := plot.Table(os.Stdout,
		[]string{"phase", "windows", "time", "BW [GB/s]", "latency [ns]", "stretch", "row-hit*", "read*"}, rows); err != nil {
		cli.Fatal(err)
	}
	fmt.Println("(* centroid coordinates, min-max normalized over this trace)")
	fmt.Printf("\nreconstructed estimates (%.1f× fewer records simulated):\n", res.SpeedupX)
	fmt.Printf("  bandwidth:        %.1f ± %.1f GB/s\n", res.Estimate.BWGBs, res.BWErrGBs)
	fmt.Printf("  mean read latency: %.1f ± %.1f ns\n", res.Estimate.ReadLatNs, res.LatErrNs)
}
