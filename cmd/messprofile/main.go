// Command messprofile demonstrates Mess application profiling: it runs the
// HPCG proxy on a simulated platform, samples the memory-bandwidth counters
// per window, positions every window on the platform's bandwidth–latency
// curves, and reports the stress-score timeline (the Extrae/Paraver
// pipeline of Sec. VI).
//
// Usage:
//
//	messprofile -platform "Intel Cascade Lake" [-trace profile.prv] [-cache-dir ~/.cache/mess]
//	messprofile -platform "Intel Cascade Lake" -cache-url http://curves.internal:9400
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/mess-sim/mess"
	"github.com/mess-sim/mess/internal/bench"
	"github.com/mess-sim/mess/internal/charz"
	"github.com/mess-sim/mess/internal/cli"
	"github.com/mess-sim/mess/internal/plot"
	"github.com/mess-sim/mess/internal/profile"
	"github.com/mess-sim/mess/internal/sim"
	"github.com/mess-sim/mess/internal/workloads"
)

func main() {
	var (
		name     = flag.String("platform", "Intel Cascade Lake", "platform to profile on")
		out      = flag.String("trace", "", "write the Paraver-flavoured trace to this file")
		durUs    = flag.Int("duration-us", 2000, "simulated application duration in microseconds")
		cacheDir = flag.String("cache-dir", "", "persist curve families under this directory")
		cacheMax = flag.Int("cache-max-mb", 0, "bound the curve cache size in MiB (0 = unbounded); LRU eviction")
		cacheURL = flag.String("cache-url", "", cli.CurveURLUsage)
	)
	flag.Parse()

	spec := cli.MustPlatform(*name)

	svc := cli.Service(*cacheDir, *cacheMax, *cacheURL)
	fmt.Printf("characterizing %s for the profiling curves ...\n", spec.Name)
	ref, err := svc.Characterize(charz.Request{Spec: spec, Options: bench.QuickOptions()})
	if err != nil {
		cli.Fatal(err)
	}

	fmt.Println("running the HPCG proxy with the window sampler ...")
	app := workloads.NewPhasedApp(spec, workloads.HPCGPhases(), nil)
	sampler := profile.NewSampler(app.Eng, app.Counting, 10*sim.Microsecond)
	sampler.Start()
	app.Run(sim.Time(*durUs) * sim.Microsecond)
	sampler.Stop()

	var spans []profile.PhaseSpan
	for _, e := range app.Events() {
		spans = append(spans, profile.PhaseSpan{Name: e.Name, Start: e.Start, End: e.End, MPI: e.MPI})
	}
	p := profile.Build("HPCG proxy on "+spec.Name, ref.Family, sampler.Windows(), spans, mess.DefaultStressWeights)

	m := ref.Family.Metrics()
	fmt.Printf("\nprofile: %d windows; saturation onset %.0f GB/s\n", len(p.Samples), m.SatBWLowGBs)
	fmt.Printf("windows in the saturated area: %.0f%%\n", 100*p.SaturatedFraction())
	fmt.Printf("maximum stress score: %.2f\n\n", p.MaxStress())

	order, byPhase := p.MeanStressByPhase()
	var rows [][]string
	for _, ph := range order {
		rows = append(rows, []string{ph, fmt.Sprintf("%.2f", byPhase[ph])})
	}
	if err := plot.Table(os.Stdout, []string{"phase", "mean stress"}, rows); err != nil {
		cli.Fatal(err)
	}

	fmt.Println("\ntimeline (first 25 windows):")
	var trows [][]string
	for i, s := range p.Samples {
		if i == 25 {
			break
		}
		phase := s.Phase
		if s.MPI {
			phase += " (MPI)"
		}
		trows = append(trows, []string{
			fmt.Sprintf("%.0f–%.0f µs", s.Start.Seconds()*1e6, s.End.Seconds()*1e6),
			phase,
			fmt.Sprintf("%.1f", s.BWGBs),
			fmt.Sprintf("%.0f", s.LatencyNs),
			fmt.Sprintf("%.2f", s.Stress),
		})
	}
	if err := plot.Table(os.Stdout, []string{"window", "phase", "BW [GB/s]", "latency [ns]", "stress"}, trows); err != nil {
		cli.Fatal(err)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			cli.Fatal(err)
		}
		defer f.Close()
		if err := p.WriteTrace(f); err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("\ntrace written to %s\n", *out)
	}
}
