// Command messcurved serves a fleet-shared Mess curve store over HTTP, so
// every machine in a fleet — CI runners, developer laptops, simulation
// farms — performs each characterization once globally instead of once per
// machine. Curve families are content-addressed by their charz fingerprint
// and immutable, which makes the server a pure cache: no invalidation, no
// coordination, and losing it costs a re-simulation, never correctness.
//
// # Usage
//
// Start a server fronting a (sharded, optionally size-bounded) on-disk
// store, with an in-memory hot tier in front of it:
//
//	messcurved -addr :9400 -dir /var/cache/mess-curves -max-mb 4096
//
// Point the tools at it with -cache-url, or fleet-wide with the
// MESS_CURVE_URL environment variable (a down server is fail-soft: the
// tools silently fall back to their local tiers):
//
//	messexp -run all -cache-url http://curves.internal:9400
//	export MESS_CURVE_URL=http://curves.internal:9400
//	messbench -platform "Intel Skylake"
//
// # Protocol
//
//	GET  /v1/curves/{key}   curve family as release-format CSV
//	                        (gzip when accepted; strong ETag; 304 on
//	                        If-None-Match; 404 when absent)
//	PUT  /v1/curves/{key}   upload a family (gzip accepted; the
//	                        Content-SHA256 header, when present, is
//	                        verified against the decompressed CSV;
//	                        concurrent PUTs of one key are collapsed by
//	                        per-key singleflight)
//	GET  /v1/stats          JSON counters: hits, misses, revalidations,
//	                        puts, put_dedups, bad_puts, bytes_in,
//	                        bytes_out, store_bytes, evictions
//	GET  /healthz           liveness probe
//
// {key} is the 64-digit lowercase-hex charz fingerprint. The same CSVs are
// valid messbench/messexp artifacts, so a store directory can be inspected
// (or seeded) with ordinary files.
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting.
//
// # Failure modes
//
// The store is a pure content-addressed cache, so every failure degrades to
// a re-simulation on some client — never to a wrong curve. The modes worth
// knowing when operating one:
//
//   - Server down or unreachable: clients fail soft. Each tool treats a
//     remote error as a miss, falls back to its local tiers, re-simulates
//     if it must, and trips a short client-side circuit breaker so a dead
//     server is not re-dialled on every lookup.
//   - Slow or stalled peers: ReadHeaderTimeout/ReadTimeout bound how long a
//     client may take to deliver a request, WriteTimeout bounds a download,
//     and IdleTimeout reaps idle keep-alive connections — a misbehaving
//     peer costs one connection for minutes, not a goroutine forever.
//   - Corrupt upload: the Content-SHA256 header (sent by the Go client) is
//     verified against the decompressed CSV and a mismatch is rejected with
//     422 before anything is stored; unparsable CSV is rejected the same
//     way. Corruption on the wire cannot enter the store.
//   - Corrupt download: clients verify the body against the strong ETag
//     (the hex SHA-256 of the canonical CSV) and treat a mismatch as a
//     miss, then repair the entry by re-uploading the re-simulated family.
//   - Corrupt entry on disk: an unreadable file is quarantined (renamed
//     *.bad) on first load, so the key reads as a clean miss and heals via
//     the next upload; quarantined and orphaned temp files older than an
//     hour are swept by the size-bound GC.
//   - Client gives up mid-upload: the decoded family is persisted under a
//     detached context, so concurrent uploaders of the same key (collapsed
//     by singleflight) still observe the completed save.
//   - Crash mid-write: entries are written to a temp file and renamed into
//     place, so a torn write leaves only a *.tmp orphan, never a half
//     entry under a valid key.
//
// # Metrics
//
// GET /metrics exposes the server's counters in Prometheus text format
// (append ?format=json for an expvar-style JSON document). The store
// counters mirror /v1/stats under stable metric names:
//
//	mess_curved_hits_total            GETs answered from the store
//	mess_curved_misses_total          GETs answered 404
//	mess_curved_revalidations_total   GETs answered 304 via If-None-Match
//	mess_curved_puts_total            uploads persisted
//	mess_curved_put_dedups_total      uploads collapsed by singleflight
//	mess_curved_bad_puts_total        uploads rejected (422)
//	mess_curved_bytes_in_total        request body bytes (decompressed)
//	mess_curved_bytes_out_total       response body bytes
//	mess_curved_store_bytes           on-disk store size (gauge)
//	mess_curved_store_evictions       LRU evictions so far (gauge)
//
// plus HTTP-level series from the middleware: mess_curved_request_seconds
// (latency histogram) and mess_curved_inflight_requests (gauge). Scraping
// /metrics is read-only and allocation-light; pointing a Prometheus at a
// production curve server is the intended way to watch fleet hit rates.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/mess-sim/mess/internal/charz"
	"github.com/mess-sim/mess/internal/cli"
	"github.com/mess-sim/mess/internal/curvestore"
)

func main() {
	var (
		addr    = flag.String("addr", ":9400", "listen address")
		dir     = flag.String("dir", "mess-curves", "curve store directory (created if needed; sharded by key prefix)")
		maxMB   = flag.Int("max-mb", 0, "bound the on-disk store size in MiB (0 = unbounded); LRU eviction")
		hot     = flag.Int("hot-entries", 256, "in-memory hot-tier entries in front of the disk store (0 disables)")
		maxBody = flag.Int64("max-body-mb", 64, "largest accepted upload in MiB (after decompression)")
	)
	tel := cli.TelemetryFlags()
	flag.Parse()

	disk, err := charz.NewDiskStore(*dir)
	if err != nil {
		cli.Fatal(err)
	}
	if *maxMB > 0 {
		disk.SetMaxBytes(int64(*maxMB) << 20)
	}

	// The serving store is the canonical memory → disk tier order: hot
	// families are answered without touching disk, and disk hits are
	// promoted into the hot tier.
	var store curvestore.Store = disk
	if *hot > 0 {
		store = curvestore.NewTiered(curvestore.NewMemory(*hot), disk)
	}

	logger := log.New(os.Stderr, "messcurved: ", log.LstdFlags)
	slogger := tel.Set().Logger()
	cfg := curvestore.ServerConfig{
		MaxBodyBytes: *maxBody << 20,
		// Uploads persist straight to disk — a 204 always means durably
		// stored; the hot tier fills on first GET via promotion.
		SaveStore:  disk,
		StatsStore: disk,
	}
	if tel.Verbose {
		cfg.Log = logger
	}
	curved := curvestore.NewServer(store, cfg)

	// /metrics re-exports the server's request and store counters in
	// Prometheus text format (see "# Metrics" above); everything else goes
	// through the latency/in-flight middleware to the store handler.
	reg := tel.Set().Registry()
	curved.Register(reg)
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/", curvestore.Instrumented(reg, curved))

	srv := &http.Server{
		Addr:    *addr,
		Handler: mux,
		// Slow-client armour (see "Failure modes" above): a stalled or
		// malicious peer must never pin a handler goroutine forever. The
		// read/write budgets are generous — a full-sweep family is a few MiB
		// of CSV — and the client retries on failure, so cutting a
		// glacially-slow transfer costs one retry, not correctness.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       5 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	slogger.Info("serving curve store", "dir", disk.Dir(), "addr", *addr, "hot_entries", *hot)

	select {
	case err := <-errc:
		cli.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: drain in-flight GET/PUTs, then exit. A second
	// signal aborts via the context already being cancelled.
	slogger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		cli.Fatal(fmt.Errorf("shutdown: %w", err))
	}
	slogger.Info("bye")
}
