package mess_test

// The benchmark harness: one testing.B entry per table and figure of the
// paper (deliverable d). Each bench executes the registered experiment at
// Quick scale and reports its headline quantity as a custom metric, so
// `go test -bench=. -benchmem` regenerates every result and its cost.
//
// Micro-benchmarks for the load-bearing hot paths (DRAM scheduling, curve
// lookup, the Mess feedback controller) follow at the end.

import (
	"container/heap"
	"strconv"
	"strings"
	"testing"

	"github.com/mess-sim/mess"
	"github.com/mess-sim/mess/internal/perfload"
)

// runExperiment executes one registered experiment per benchmark iteration.
func runExperiment(b *testing.B, id string) *mess.ExperimentResult {
	b.Helper()
	var res *mess.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = mess.RunExperiment(id, mess.ScaleQuick)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	return res
}

func parsePct(b *testing.B, cell string) float64 {
	b.Helper()
	cell = strings.TrimSuffix(strings.TrimSpace(cell), "%")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		b.Fatalf("bad percent cell %q", cell)
	}
	return v
}

func BenchmarkFig2SkylakeCurves(b *testing.B) {
	res := runExperiment(b, "fig2")
	m := res.Families[0].Metrics()
	b.ReportMetric(m.UnloadedLatencyNs, "unloaded-ns")
	b.ReportMetric(100*m.SatHighFrac(), "sat-high-%")
}

func BenchmarkFig3PlatformCurves(b *testing.B) {
	// One representative platform per memory technology; fig3a..h run all.
	for _, id := range []string{"fig3a", "fig3e", "fig3g"} {
		id := id
		b.Run(id, func(b *testing.B) {
			res := runExperiment(b, id)
			m := res.Families[0].Metrics()
			b.ReportMetric(m.UnloadedLatencyNs, "unloaded-ns")
		})
	}
}

func BenchmarkTable1Metrics(b *testing.B) {
	res := runExperiment(b, "table1")
	b.ReportMetric(float64(len(res.Rows)), "platforms")
}

func BenchmarkFig4Gem5Models(b *testing.B) {
	res := runExperiment(b, "fig4")
	b.ReportMetric(float64(len(res.Families)), "families")
}

func BenchmarkFig5ZSimModels(b *testing.B) {
	res := runExperiment(b, "fig5")
	b.ReportMetric(float64(len(res.Families)), "families")
}

func BenchmarkFig6TraceDriven(b *testing.B) {
	res := runExperiment(b, "fig6")
	b.ReportMetric(float64(len(res.Families)), "simulators")
}

func BenchmarkFig7RowBuffer(b *testing.B) {
	res := runExperiment(b, "fig7")
	b.ReportMetric(float64(len(res.Rows)), "measurements")
}

func BenchmarkFig10ZSimMess(b *testing.B) {
	res := runExperiment(b, "fig10")
	b.ReportMetric(parsePct(b, res.Rows[0][1]), "curve-error-%")
}

func BenchmarkFig11ZSimIPCError(b *testing.B) {
	res := runExperiment(b, "fig11")
	for _, bar := range res.Bars {
		if bar.Label == "mess" {
			b.ReportMetric(bar.Value, "mess-ipc-error-%")
		}
		if bar.Label == "fixed" {
			b.ReportMetric(bar.Value, "fixed-ipc-error-%")
		}
	}
}

func BenchmarkFig12Gem5Mess(b *testing.B) {
	res := runExperiment(b, "fig12")
	b.ReportMetric(parsePct(b, res.Rows[0][1]), "curve-error-%")
}

func BenchmarkFig13Gem5IPCError(b *testing.B) {
	res := runExperiment(b, "fig13")
	for _, bar := range res.Bars {
		if bar.Label == "mess" {
			b.ReportMetric(bar.Value, "mess-ipc-error-%")
		}
	}
}

func BenchmarkFig14CXL(b *testing.B) {
	res := runExperiment(b, "fig14")
	man := res.Families[0]
	b.ReportMetric(man.Nearest(0.5).MaxBW(), "balanced-max-gbs")
	b.ReportMetric(man.Nearest(1.0).MaxBW(), "pure-read-max-gbs")
}

func BenchmarkFig15HPCGProfile(b *testing.B) {
	res := runExperiment(b, "fig15")
	for _, row := range res.Rows {
		if row[0] == "windows in saturated area" {
			b.ReportMetric(parsePct(b, row[1]), "saturated-windows-%")
		}
	}
}

func BenchmarkFig16HPCGTimeline(b *testing.B) {
	res := runExperiment(b, "fig16")
	b.ReportMetric(float64(len(res.Rows)), "timeline-windows")
}

func BenchmarkFig17CXLvsRemote(b *testing.B) {
	res := runExperiment(b, "fig17")
	b.ReportMetric(float64(len(res.Rows)), "benchmarks")
}

func BenchmarkFig18SPECSweep(b *testing.B) {
	res := runExperiment(b, "fig18")
	lo := res.Bars[0].Value
	hi := res.Bars[len(res.Bars)-1].Value
	b.ReportMetric(lo, "low-bw-delta-%")
	b.ReportMetric(hi, "high-bw-delta-%")
}

func BenchmarkModelSpeedTable(b *testing.B) {
	res := runExperiment(b, "tablespeed")
	b.ReportMetric(float64(len(res.Rows)), "models")
}

func BenchmarkOpenPitonBugDetection(b *testing.B) {
	res := runExperiment(b, "openpiton-bug")
	b.ReportMetric(float64(len(res.Rows)), "points")
}

// Micro-benchmarks of the hot paths.

func BenchmarkDRAMReferenceThroughput(b *testing.B) {
	// Events per second of the detailed DRAM model under saturation: the
	// cost driver of every reference characterization. The closed loop is
	// the shared perfload workload (pooled requests, stored callback), so
	// -benchmem asserting ~0 allocs/op here is the zero-allocation
	// request-lifecycle claim on the full cache-less access path.
	benchDRAMPattern(b, perfload.PatternReference)
}

// BenchmarkDRAMRandomThroughput is the row-miss-dominated regime: a
// mapper-defeating random walk where the FR-FCFS scan finds no hits and
// activate/refresh bookkeeping dominates — the regime a hit-friendly
// benchmark cannot regress-test.
func BenchmarkDRAMRandomThroughput(b *testing.B) {
	benchDRAMPattern(b, perfload.PatternRandom)
}

// BenchmarkDRAMMixedThroughput is the 2:1 read/write regime with
// write-drain episodes and bus turnarounds.
func BenchmarkDRAMMixedThroughput(b *testing.B) {
	benchDRAMPattern(b, perfload.PatternMixed)
}

func benchDRAMPattern(b *testing.B, pattern perfload.LoopPattern) {
	b.Helper()
	spec := mess.Skylake()
	eng := mess.NewEngine()
	model, err := mess.NewMemoryModel(mess.ModelReference, eng, spec, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	perfload.NewClosedLoopPattern(eng, model, pattern).Run(b.N)
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mreqs/s")
}

func BenchmarkMessSimulatorThroughput(b *testing.B) {
	fam := mustQuickFamilyB(b)
	eng := mess.NewEngine()
	model := mess.NewSimulator(eng, mess.SimulatorConfig{Family: fam})
	b.ReportAllocs()
	b.ResetTimer()
	perfload.ClosedLoop(eng, model, b.N)
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mreqs/s")
}

func BenchmarkCurveLookup(b *testing.B) {
	fam := mustQuickFamilyB(b)
	b.ResetTimer()
	acc := 0.0
	for i := 0; i < b.N; i++ {
		acc += fam.LatencyAt(0.5+float64(i%50)/100, float64(i%128))
	}
	_ = acc
}

var benchFam *mess.Family

func mustQuickFamilyB(b *testing.B) *mess.Family {
	b.Helper()
	if benchFam != nil {
		return benchFam
	}
	spec := mess.Skylake()
	spec.Cores = 8
	spec.DRAM.Channels = 3
	res, err := mess.Characterize(spec, mess.QuickBenchmarkOptions())
	if err != nil {
		b.Fatal(err)
	}
	benchFam = res.Family
	return benchFam
}

// Kernel micro-benchmarks (run with -bench=Kernel). The workloads live in
// internal/perfload, shared with cmd/messperf so the regression gate here
// and the BENCH_sim.json trajectory always measure the same thing. A
// baseline replicating the pre-wheel kernel (one heap, one allocated
// closure per event) keeps the speedup of the pooled/wheel design
// measurable.

// BenchmarkKernelScheduleFire is the headline number: 8 self-perpetuating
// event chains with short DDR-like deltas, the pattern the DRAM and pacing
// models generate. One op = one schedule + one fire.
func BenchmarkKernelScheduleFire(b *testing.B) {
	eng := mess.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	perfload.ScheduleFire(eng, b.N)
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
}

// heapEngine replicates the pre-refactor kernel: a single container/heap
// priority queue, one *event allocation per schedule, O(log n) cancel via
// heap removal. It exists only as the benchmark baseline.
type heapEngine struct {
	now   mess.SimTime
	seq   uint64
	queue heapEvents
}

type heapEvent struct {
	at  mess.SimTime
	seq uint64
	fn  func()
	idx int
}

type heapEvents []*heapEvent

func (h heapEvents) Len() int { return len(h) }
func (h heapEvents) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h heapEvents) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *heapEvents) Push(x any) {
	ev := x.(*heapEvent)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *heapEvents) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

func (e *heapEngine) schedule(at mess.SimTime, fn func()) *heapEvent {
	if at < e.now {
		at = e.now
	}
	ev := &heapEvent{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

func (e *heapEngine) run() {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*heapEvent)
		e.now = ev.at
		ev.fn()
	}
}

// BenchmarkKernelScheduleFireHeapBaseline is the perfload.ScheduleFire
// workload on the replicated pre-refactor kernel.
func BenchmarkKernelScheduleFireHeapBaseline(b *testing.B) {
	eng := &heapEngine{}
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < b.N {
			at := eng.now + 3*mess.Nanosecond + mess.SimTime(fired%7)*100
			eng.schedule(at, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < 8 && i < b.N; i++ {
		eng.schedule(mess.SimTime(i)*mess.Nanosecond, tick)
	}
	eng.run()
	b.ReportMetric(float64(fired)/b.Elapsed().Seconds()/1e6, "Mevents/s")
}

// BenchmarkKernelWheelDense drives a crowded wheel: 512 concurrent chains.
func BenchmarkKernelWheelDense(b *testing.B) {
	eng := mess.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	perfload.WheelDense(eng, b.N)
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
}

// BenchmarkKernelFarHorizon forces the overflow-heap path: every deadline
// lands beyond the wheel horizon and must cascade back in.
func BenchmarkKernelFarHorizon(b *testing.B) {
	eng := mess.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	perfload.FarHorizon(eng, b.N)
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
}

// BenchmarkKernelCancel measures the schedule+cancel churn the DRAM decide
// path and pacing timers generate. One op = one schedule + one cancel
// (tombstoned, swept in bulk at the periodic drains).
func BenchmarkKernelCancel(b *testing.B) {
	eng := mess.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	perfload.Cancel(eng, b.N)
}

// BenchmarkKernelTimerRearm measures the re-armable pacing alarm: one op =
// one arm + one fire of a fixed-callback timer.
func BenchmarkKernelTimerRearm(b *testing.B) {
	eng := mess.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	perfload.TimerRearm(eng, b.N)
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
}

// BenchmarkKernelEngineReset measures the per-point engine reuse cycle of
// the benchmark harness: fill, drain, Reset.
func BenchmarkKernelEngineReset(b *testing.B) {
	eng := mess.NewEngine()
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			eng.Schedule(mess.SimTime(j*137%1000), nop)
		}
		eng.RunUntil(500)
		eng.Reset()
	}
}
