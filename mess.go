// Package mess is the public API of Mess-Go, a Go reproduction of the Mess
// framework ("A Mess of Memory System Benchmarking, Simulation and
// Application Profiling", MICRO 2024): unified memory-system benchmarking,
// analytical simulation and application profiling built around families of
// bandwidth–latency curves.
//
// The three framework components map to three entry points:
//
//   - Characterize runs the Mess benchmark (pointer-chase + traffic
//     generators) against a simulated platform and returns its curve
//     family;
//   - NewSimulator builds the Mess analytical memory simulator from a
//     curve family, usable as a memory backend under any CPU model;
//   - BuildProfile positions an application's sampled memory traffic on a
//     curve family and derives memory stress scores.
//
// Everything runs on a deterministic discrete-event substrate: cycle-level
// DDR4/DDR5/HBM2 channels, write-allocate cache translation and MSHR-
// limited cores, configured to mirror the paper's eight platforms.
//
// # The simulation kernel
//
// Every timed model shares one event kernel (Engine), built for the
// millions of short-horizon events a single curve point generates: event
// records are pooled and recycled (steady-state scheduling allocates
// nothing), near-future deadlines route through a timer wheel with an
// occupancy bitmap while only far events pay for a heap, and Cancel is an
// O(1) tombstone made safe by generation-counted handles. Steady-rate
// components re-arm a SimTimer or SimTicker in place instead of scheduling
// fresh closures. The kernel guarantees deterministic execution — events
// fire in exact (deadline, schedule order), so identical runs produce
// byte-identical curve CSVs — and Engine.Reset lets harnesses reuse one
// warm engine across simulations.
//
// Memory transactions follow the same discipline: MemRequest records come
// from a MemRequestPool free list, completion is a stored Done(at, req)
// callback rather than a captured closure, and the backend releases each
// record back to its pool when it completes — so the steady-state access
// path of every memory model issues and completes at 0 allocs/op. Speed
// and allocation behaviour are tracked: `go test -bench=Kernel` benchmarks
// the kernel against the pre-wheel heap baseline, and cmd/messperf records
// the trajectory (events/sec and allocs/op) in BENCH_sim.json, which CI
// gates against the committed artifact.
//
// # The characterization service
//
// Producing a curve family means running the full benchmark sweep — the
// most expensive operation in the framework — yet benchmarking, simulator
// evaluation and profiling all keep asking for the same families. Every
// characterization therefore flows through a shared service
// (NewCharacterizationService) that content-addresses each request by a
// SHA-256 fingerprint of the platform spec and normalized sweep options,
// memoizes results in memory with singleflight deduplication (concurrent
// requests for one key run one simulation), optionally persists families
// to disk in the release CSV format (sharded by key prefix, with optional
// size-bounded LRU eviction), and fans batches out over a bounded worker
// pool. A further remote tier (NewRemoteCurveStore, or $MESS_CURVE_URL)
// shares families fleet-wide through a cmd/messcurved curve server —
// consulted after the local tiers, promoted into them on hit, uploaded to
// after a fresh run, and entirely fail-soft: a down server degrades to
// local operation, never to an error. Package-level Characterize and
// RunExperiment share one
// default in-process service, so repeated calls — and a full experiment
// registry run — perform each unique characterization exactly once;
// RunExperimentWith threads a caller-owned service (e.g. one backed by an
// on-disk store) through the experiment registry instead.
package mess

import (
	"context"
	"io"
	"os"

	"github.com/mess-sim/mess/internal/bench"
	"github.com/mess-sim/mess/internal/charz"
	"github.com/mess-sim/mess/internal/core"
	"github.com/mess-sim/mess/internal/curvestore"
	"github.com/mess-sim/mess/internal/cxl"
	"github.com/mess-sim/mess/internal/exp"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/messsim"
	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/plot"
	"github.com/mess-sim/mess/internal/profile"
	"github.com/mess-sim/mess/internal/sim"
)

// Core curve types. The bandwidth–latency family is the framework's
// central artifact; see the core package for the full method set
// (LatencyAt, Metrics, StressScore, …).
type (
	// Point is one (bandwidth GB/s, latency ns) measurement.
	Point = core.Point
	// Curve is a bandwidth–latency curve at one read/write composition.
	Curve = core.Curve
	// Family is a set of curves spanning read/write compositions.
	Family = core.Family
	// Metrics are the derived Table-I quantities.
	Metrics = core.Metrics
	// StressWeights parameterize the memory stress score.
	StressWeights = core.StressWeights
)

// DefaultStressWeights are the paper's stress-score weights.
var DefaultStressWeights = core.DefaultStressWeights

// Platform is a simulated machine specification.
type Platform = platform.Spec

// Pre-configured platforms of the paper's Table I.
var (
	Skylake        = platform.Skylake
	CascadeLake    = platform.CascadeLake
	Zen2           = platform.Zen2
	Power9         = platform.Power9
	Graviton3      = platform.Graviton3
	SapphireRapids = platform.SapphireRapids
	A64FX          = platform.A64FX
	H100           = platform.H100
)

// Platforms returns all Table-I platform specifications.
func Platforms() []Platform { return platform.All() }

// PlatformByName looks a platform up by its display name.
func PlatformByName(name string) (Platform, error) { return platform.ByName(name) }

// BenchmarkOptions configure Characterize; the zero value uses the full
// default sweep. See bench.Options for all knobs.
type BenchmarkOptions = bench.Options

// TrafficMix selects one kernel composition of the sweep.
type TrafficMix = bench.Mix

// BenchmarkResult is a completed characterization: the curve family plus
// every raw measurement sample.
type BenchmarkResult = bench.Result

// Characterization service API. The service is the single path from a
// (platform, options) pair to its curve family: content-addressed cache
// keys, in-memory memoization with singleflight deduplication, optional
// on-disk persistence, and bounded parallel fan-out. See internal/charz.
type (
	// CharacterizationService caches and deduplicates characterizations.
	CharacterizationService = charz.Service
	// CharacterizationConfig parameterizes a service (workers, store,
	// runner override).
	CharacterizationConfig = charz.Config
	// CharacterizationRequest names one characterization: spec, options,
	// backend tag, and whether raw samples are required.
	CharacterizationRequest = charz.Request
	// Characterization is a completed request: key, family, optional raw
	// result, and where it came from.
	Characterization = charz.Artifact
	// CharacterizationStats are cumulative service counters.
	CharacterizationStats = charz.Stats
	// CharacterizationSource reports how a request was satisfied.
	CharacterizationSource = charz.Source
	// CharacterizationKey is the content-addressed identity of a request.
	CharacterizationKey = charz.Key
	// CurveStore persists curve families under a cache directory in the
	// release CSV format.
	CurveStore = charz.DiskStore
	// CurveStoreTier is the storage interface every curve tier implements
	// (disk, memory, tiered composition, remote client), so custom tiers
	// can back a CharacterizationConfig.Remote or a curve server.
	CurveStoreTier = curvestore.Store
	// MemoryCurveStore is a bounded in-memory LRU curve tier.
	MemoryCurveStore = curvestore.Memory
	// TieredCurveStore composes curve tiers in lookup order (canonically
	// memory → disk → remote) with fail-soft misses and write-back
	// promotion on hit.
	TieredCurveStore = curvestore.Tiered
	// RemoteCurveStore is the HTTP client tier for a messcurved curve
	// server: content-addressed GET/PUT with gzip bodies, ETag
	// revalidation, bounded retries and a fail-soft cooldown circuit.
	RemoteCurveStore = curvestore.Client
	// RemoteCurveStoreConfig parameterizes a RemoteCurveStore.
	RemoteCurveStoreConfig = curvestore.ClientConfig
)

// Characterization sources.
const (
	FromRun    = charz.SourceRun
	FromMemory = charz.SourceMemory
	FromDisk   = charz.SourceDisk
	FromRemote = charz.SourceRemote
)

// NewCharacterizationService builds a service.
func NewCharacterizationService(cfg CharacterizationConfig) *CharacterizationService {
	return charz.New(cfg)
}

// NewCurveStore opens (creating if needed) an on-disk curve cache.
func NewCurveStore(dir string) (*CurveStore, error) { return charz.NewDiskStore(dir) }

// NewMemoryCurveStore builds an in-memory curve tier holding at most
// maxEntries families (<= 0 means unbounded).
func NewMemoryCurveStore(maxEntries int) *MemoryCurveStore {
	return curvestore.NewMemory(maxEntries)
}

// NewTieredCurveStore composes curve tiers in lookup order; nil tiers are
// dropped.
func NewTieredCurveStore(tiers ...CurveStoreTier) *TieredCurveStore {
	return curvestore.NewTiered(tiers...)
}

// NewRemoteCurveStore builds the HTTP client tier for the curve server at
// baseURL (a cmd/messcurved instance), with default retry/cooldown
// behaviour. Use it as a CharacterizationConfig.Remote: the service then
// fetches families from — and uploads fresh runs to — the fleet-shared
// store, falling back to local tiers when the server is unreachable.
func NewRemoteCurveStore(baseURL string) (*RemoteCurveStore, error) {
	return curvestore.NewClient(baseURL, curvestore.ClientConfig{})
}

// FingerprintCharacterization computes a request's content-addressed key.
func FingerprintCharacterization(req CharacterizationRequest) CharacterizationKey {
	return charz.Fingerprint(req)
}

// defaultCharz backs the package-level Characterize and RunExperiment:
// one in-process cache shared by every caller that does not bring its own
// service. When MESS_CURVE_URL names a curve server, the default service
// joins the fleet-shared store exactly like the CLI tools do — fail-soft,
// so an unreachable (or misconfigured) server leaves the service purely
// in-memory rather than failing.
var defaultCharz = newDefaultCharz()

func newDefaultCharz() *charz.Service {
	cfg := charz.Config{}
	if u := os.Getenv(curvestore.EnvURL); u != "" {
		// A malformed URL is silently skipped here (package init cannot
		// error); the CLI tools, which own a flag, fail loudly instead.
		if client, err := curvestore.NewClient(u, curvestore.ClientConfig{}); err == nil {
			cfg.Remote = client
		}
	}
	return charz.New(cfg)
}

// DefaultCharacterizationService returns the process-wide service used by
// Characterize and RunExperiment. Long-lived processes characterizing
// many distinct configurations can bound its memory with Reset, which
// drops every cached entry.
func DefaultCharacterizationService() *CharacterizationService { return defaultCharz }

// CharzStats snapshots the default characterization service's cumulative
// counters: simulations actually run versus memory/disk/remote cache hits.
// It is one of the framework's two cumulative-counter surfaces — the other
// is ShardStats (ShardGroup.Stats), which counts the sharded runtime's
// windows, cross-shard messages and barrier escalations. Both read
// consistent snapshots and are safe to poll from any goroutine; for a
// continuously exported view of the same numbers (Prometheus text or
// JSON), wire a telemetry registry through CharacterizationConfig instead
// of polling.
func CharzStats() CharacterizationStats { return defaultCharz.Stats() }

// Characterize runs the Mess benchmark on the platform's detailed memory
// model and returns the curve family with all samples. Results are served
// from the default characterization service: repeated calls with an
// identical (platform, options) pair simulate once, and concurrent calls
// for the same pair share a single run.
func Characterize(p Platform, opt BenchmarkOptions) (*BenchmarkResult, error) {
	return CharacterizeContext(context.Background(), p, opt)
}

// CharacterizeContext is Characterize under a caller-supplied context:
// cancellation stops the benchmark sweep at its next measurement-point
// boundary and propagates through every cache tier, returning ctx.Err().
// A characterization that completes before the cancellation is still
// persisted to the service's stores.
func CharacterizeContext(ctx context.Context, p Platform, opt BenchmarkOptions) (*BenchmarkResult, error) {
	art, err := defaultCharz.CharacterizeContext(ctx, charz.Request{Spec: p, Options: opt, NeedSamples: true})
	if err != nil {
		return nil, err
	}
	return art.Result, nil
}

// QuickBenchmarkOptions returns a reduced sweep (three mixes, coarse
// pacing) for fast exploration.
func QuickBenchmarkOptions() BenchmarkOptions { return bench.QuickOptions() }

// MeasureUnloadedLatency runs only the pointer chase and reports the
// platform's unloaded load-to-use latency in nanoseconds.
func MeasureUnloadedLatency(p Platform) (float64, error) {
	return bench.MeasureUnloaded(p, bench.QuickOptions())
}

// Memory-interface types, for embedding the Mess simulator (or any model)
// under a custom CPU model. Requests follow a pooled lifecycle: acquire
// from a MemRequestPool on hot paths (literal construction stays valid for
// cold ones), hand ownership to the backend via Access, and the backend
// completes exactly once — invoking Done(at, req) and returning the record
// to its pool. See the internal/mem package docs for the full ownership
// contract.
type (
	// MemRequest is one memory transaction; the backend completes it
	// exactly once, invoking Done.
	MemRequest = mem.Request
	// MemDoneFunc is the completion callback: per-request context rides
	// in the request instead of a captured closure.
	MemDoneFunc = mem.DoneFunc
	// MemRequestPool is a free-list request allocator; steady-state
	// issue/complete cycles allocate nothing.
	MemRequestPool = mem.RequestPool
	// MemRequestHandle is a generation-counted, stale-safe reference to a
	// pooled in-flight request.
	MemRequestHandle = mem.RequestHandle
	// MemOp distinguishes reads from writes at the controller boundary.
	MemOp = mem.Op
	// MemBackend services memory requests.
	MemBackend = mem.Backend
	// TrafficCounters mirror uncore bandwidth counters.
	TrafficCounters = mem.Counters
	// CountingBackend wraps a backend with traffic counters.
	CountingBackend = mem.CountingBackend
)

// Memory operations.
const (
	MemRead  = mem.Read
	MemWrite = mem.Write
)

// NewMemRequestPool returns an empty request pool. Pools, like engines,
// are single-goroutine: use one per simulation instance.
func NewMemRequestPool() *MemRequestPool { return mem.NewRequestPool() }

// NewCountingBackend wraps a backend with traffic counters.
func NewCountingBackend(inner MemBackend) *CountingBackend { return mem.NewCounting(inner) }

// SimulatorConfig configures the Mess analytical memory simulator.
type SimulatorConfig = messsim.Config

// Simulator is the Mess analytical memory simulator: a feedback controller
// over a curve family, usable as a memory backend.
type Simulator = messsim.Simulator

// Engine is the discrete-event kernel shared by all models: pooled events,
// a timer wheel in front of an overflow heap, and deterministic
// (deadline, schedule-order) execution. Engines are single-goroutine;
// Reset reuses one engine (pool and buckets kept warm) across runs.
type Engine = sim.Engine

// SimTime is a simulation timestamp in picoseconds.
type SimTime = sim.Time

// SimHandle identifies a scheduled event; Cancel is O(1) and safe after
// the event fired (a generation counter detects recycled records).
type SimHandle = sim.Handle

// SimTimer is a re-armable one-shot timer with a fixed callback — the
// allocation-free wake-up primitive for pacing loops.
type SimTimer = sim.Timer

// SimTicker fires a fixed callback every period, rescheduling in place.
type SimTicker = sim.Ticker

// Simulation time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
)

// NewEngine returns a fresh simulation engine.
func NewEngine() *Engine { return sim.New() }

// ShardGroup advances several engines concurrently under a conservative
// time-window barrier — the substrate of sharded multi-channel simulation.
// Each src→dst pair carries its own lookahead bound (SetLookahead), so a
// shard is only constrained by the shards that can actually reach it.
// Results are deterministic: equal-time cross-shard events merge in a fixed
// order, so a sharded run is byte-identical to its single-engine
// equivalent. See BenchmarkOptions.Shards for the high-level knob.
type ShardGroup = sim.ShardGroup

// ShardStats snapshots a group's execution counters — windows run, their
// mean width, cross-shard messages, barrier spin/yield/park escalations
// and per-shard busy fractions. See ShardGroup.Stats.
type ShardStats = sim.ShardStats

// NewShardGroup builds a group of n engines (shard 0 runs on the calling
// goroutine; the rest on parked workers). Close it when done.
func NewShardGroup(n int) *ShardGroup { return sim.NewShardGroup(n) }

// InfLookahead marks an undeclared shard pair: no messages, no window
// coupling.
const InfLookahead = sim.InfLookahead

// NewSimulator builds the Mess analytical simulator on the engine.
func NewSimulator(eng *Engine, cfg SimulatorConfig) *Simulator {
	return messsim.New(eng, cfg)
}

// Profiling API.
type (
	// Profile is an analyzed application profile.
	Profile = profile.Profile
	// ProfileSample is one analyzed window.
	ProfileSample = profile.Sample
	// PhaseSpan labels a timeline interval.
	PhaseSpan = profile.PhaseSpan
	// CounterWindow is a raw sampled traffic window.
	CounterWindow = profile.CounterWindow
)

// BuildProfile analyzes sampled counter windows against a curve family.
func BuildProfile(label string, fam *Family, windows []CounterWindow, phases []PhaseSpan, w StressWeights) *Profile {
	return profile.Build(label, fam, windows, phases, w)
}

// CXL device modelling (Sec. V-C).

// CXLFamily measures the bandwidth–latency curves of the modelled CXL
// memory expander (the manufacturer's-model stand-in).
func CXLFamily() *Family { return cxl.Family(cxl.SweepOptions{}) }

// RemoteSocketCXLFamily measures the curves of the remote-socket CXL
// emulation of Appendix B.
func RemoteSocketCXLFamily() *Family { return cxl.RemoteSocketFamily(cxl.SweepOptions{}) }

// OptaneFamily measures the curves of the modelled Intel Optane DC
// persistent-memory modules (App Direct mode), the other non-DDR
// technology the Mess simulator release supports.
func OptaneFamily() *Family { return cxl.OptaneFamily(cxl.SweepOptions{}) }

// CXL device models, directly instantiable as memory backends — and their
// device-shard form, which places a device (with its device-side memory
// system) on its own ShardGroup engine behind the same timed-hand-off
// seam the sharded DRAM channels use. Completions are byte-identical to
// the single-engine run.
type (
	// CXLConfig parameterizes the CXL memory expander model.
	CXLConfig = cxl.Config
	// RemoteSocketCXLConfig parameterizes the remote-socket emulation.
	RemoteSocketCXLConfig = cxl.RemoteSocketConfig
	// OptaneConfig parameterizes the Optane module model.
	OptaneConfig = cxl.OptaneConfig
	// CXLExpander is the modelled CXL memory expander.
	CXLExpander = cxl.Expander
	// RemoteSocketCXL is the remote-socket CXL emulation.
	RemoteSocketCXL = cxl.RemoteSocket
	// OptaneModule is the modelled Optane DC module set.
	OptaneModule = cxl.Optane
	// ShardedCXLDevice is a device model running on its own shard engine;
	// it serves timed accesses from the home shard (AccessAt).
	ShardedCXLDevice = cxl.ShardedDevice
)

// DefaultCXLConfig returns the released expander parameters.
func DefaultCXLConfig() CXLConfig { return cxl.Default() }

// DefaultRemoteSocketCXLConfig returns the released remote-socket
// parameters.
func DefaultRemoteSocketCXLConfig() RemoteSocketCXLConfig { return cxl.DefaultRemoteSocket() }

// DefaultOptaneConfig returns the released Optane parameters.
func DefaultOptaneConfig() OptaneConfig { return cxl.DefaultOptane() }

// NewShardedCXLExpander builds a CXL expander on group.Engine(shard) and
// wires its lookahead edges and completion path to the home shard. hop is
// the host-side flight time every AccessAt must carry.
func NewShardedCXLExpander(group *ShardGroup, home, shard int, cfg CXLConfig, hop SimTime) (*ShardedCXLDevice, *CXLExpander) {
	return cxl.NewShardedExpander(group, home, shard, cfg, hop)
}

// NewShardedRemoteSocketCXL builds a remote-socket emulation on
// group.Engine(shard) and wires it in.
func NewShardedRemoteSocketCXL(group *ShardGroup, home, shard int, cfg RemoteSocketCXLConfig, hop SimTime) (*ShardedCXLDevice, *RemoteSocketCXL) {
	return cxl.NewShardedRemoteSocket(group, home, shard, cfg, hop)
}

// NewShardedOptane builds an Optane module set on group.Engine(shard) and
// wires it in.
func NewShardedOptane(group *ShardGroup, home, shard int, cfg OptaneConfig, hop SimTime) (*ShardedCXLDevice, *OptaneModule) {
	return cxl.NewShardedOptane(group, home, shard, cfg, hop)
}

// Curve persistence.

// WriteCurvesCSV serializes a family in the release CSV format.
func WriteCurvesCSV(w io.Writer, f *Family) error { return f.WriteCSV(w) }

// ReadCurvesCSV parses a family from the release CSV format.
func ReadCurvesCSV(r io.Reader) (*Family, error) { return core.ReadCSV(r) }

// PlotCurves renders the family as an ASCII chart.
func PlotCurves(w io.Writer, f *Family, width, height int) error {
	return plot.CurveFamily(w, f, width, height)
}

// Experiment reproduction (every table and figure of the paper).

// Experiment is one registered reproduction target.
type Experiment = exp.Experiment

// ExperimentResult is a structured experiment outcome; Render writes it as
// text.
type ExperimentResult = exp.Result

// ExperimentScale selects Quick or Full fidelity.
type ExperimentScale = exp.Scale

// ExperimentEnv is the execution environment threaded through every
// experiment: the scale plus the characterization service the experiment
// draws curve families from.
type ExperimentEnv = exp.Env

// Experiment scales.
const (
	ScaleQuick = exp.Quick
	ScaleFull  = exp.Full
)

// Experiments lists every registered experiment.
func Experiments() []Experiment { return exp.All() }

// RunExperiment executes one experiment by id ("fig2" … "fig18", "table1",
// "tablespeed", "openpiton-bug") against the default characterization
// service, so experiments run back to back share reference curves.
func RunExperiment(id string, s ExperimentScale) (*ExperimentResult, error) {
	return RunExperimentWith(defaultCharz, id, s)
}

// RunExperimentContext is RunExperiment under a caller-supplied context:
// cancellation stops the experiment's reference characterizations at the
// next sweep-point boundary and surfaces as ctx.Err().
func RunExperimentContext(ctx context.Context, id string, s ExperimentScale) (*ExperimentResult, error) {
	return RunExperimentShardedContext(ctx, defaultCharz, id, s, 0)
}

// RunExperimentWith executes one experiment against a caller-owned
// characterization service — e.g. one backed by an on-disk store so a
// registry sweep survives process restarts. A nil service gets a fresh
// in-memory one.
func RunExperimentWith(svc *CharacterizationService, id string, s ExperimentScale) (*ExperimentResult, error) {
	return RunExperimentSharded(svc, id, s, 0)
}

// RunExperimentSharded is RunExperimentWith with every reference
// characterization sharding each measurement point across the given number
// of engines (BenchmarkOptions.Shards). Sharding is execution-only: the
// results — and the characterization cache keys — are identical to the
// unsharded run, so use it to cut single-configuration latency on
// multi-channel platforms when cores are available. Shards below 2 mean
// unsharded.
func RunExperimentSharded(svc *CharacterizationService, id string, s ExperimentScale, shards int) (*ExperimentResult, error) {
	return RunExperimentShardedContext(context.Background(), svc, id, s, shards)
}

// RunExperimentShardedContext is RunExperimentSharded under a
// caller-supplied context, threaded through the experiment environment
// into every characterization it issues.
func RunExperimentShardedContext(ctx context.Context, svc *CharacterizationService, id string, s ExperimentScale, shards int) (*ExperimentResult, error) {
	e, ok := exp.ByID(id)
	if !ok {
		return nil, &UnknownExperimentError{ID: id}
	}
	env := exp.NewEnv(s, svc)
	env.Shards = shards
	env.Ctx = ctx
	return e.Run(env)
}

// UnknownExperimentError reports a request for an unregistered experiment.
type UnknownExperimentError struct{ ID string }

func (e *UnknownExperimentError) Error() string {
	return "mess: unknown experiment " + e.ID
}
