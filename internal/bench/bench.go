// Package bench orchestrates the Mess benchmark (Sec. II): one pointer-chase
// core measures load-to-use latency while the remaining cores run paced
// traffic generators; sweeping the generator pacing and the load/store mix
// produces the platform's family of bandwidth–latency curves.
//
// The runner works against any memory backend — the detailed DRAM model
// (standing in for actual hardware) or any model from the zoo — which is
// exactly how the paper uses the benchmark to characterize both servers
// (Sec. III) and simulators (Sec. IV).
package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mess-sim/mess/internal/cache"
	"github.com/mess-sim/mess/internal/core"
	"github.com/mess-sim/mess/internal/cpu"
	"github.com/mess-sim/mess/internal/dram"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/sim"
	"github.com/mess-sim/mess/internal/telemetry"
)

// Mix is one traffic composition of the sweep: the percentage of kernel
// memory instructions that are stores and whether stores are non-temporal.
// Regular stores on write-allocate systems produce read ratios in [0.5, 1];
// non-temporal stores reach the write-heavy half of the space.
type Mix struct {
	StorePercent int
	NonTemporal  bool
}

func (m Mix) String() string {
	nt := ""
	if m.NonTemporal {
		nt = " (NT)"
	}
	return fmt.Sprintf("%d%% stores%s", m.StorePercent, nt)
}

// Options configure a benchmark run.
type Options struct {
	// Mixes to sweep. Default: store percentages 0..100 in steps of 20
	// with regular stores (read ratios 1.0 → 0.5).
	Mixes []Mix
	// PacesNs is the per-op pacing sweep in nanoseconds (the nopCount
	// knob). Default: a log-spaced ladder from 0 (full pressure) to 512.
	PacesNs []float64
	// Warmup and Measure are the simulated durations of the warm-up and
	// measurement windows for every point.
	Warmup  sim.Time
	Measure sim.Time
	// ChaseLines is the pointer-chase array size in cache lines (power of
	// two).
	ChaseLines uint64
	// ArrayBytes is the per-generator array length.
	ArrayBytes uint64
	// Parallelism bounds concurrent measurement points (each point owns an
	// engine). Default: GOMAXPROCS.
	Parallelism int
	// Backend overrides the memory system under test; nil uses the
	// platform's detailed DRAM model.
	Backend mem.BackendFactory
	// ShardedBackend is the sharded counterpart of Backend: it builds the
	// backend on the group (devices on non-home shards, declaring their
	// lookahead edges) and is used instead of Backend whenever a point
	// runs sharded. Setting it alongside Backend lets a custom backend —
	// a CXL expander, say — ride the shard group the way the detailed
	// DRAM system does; results must be byte-identical to the Backend
	// path (the CXL-sharded determinism leg enforces it), so it is
	// execution-only and cleared by Normalized.
	ShardedBackend func(group *sim.ShardGroup) mem.TimedBackend
	// Cache overrides the platform's derived cache configuration — used
	// for failure injection (e.g. the OpenPiton clean-eviction bug).
	Cache *cache.Config
	// Shards, when at least 2, runs each measurement point on a
	// conservative time-window shard group of that many engines instead of
	// one: the DRAM channels advance concurrently on shards 1..Shards-1
	// while the cores and cache stay on shard 0, cutting single-point
	// wall-clock on multi-channel platforms. Results are byte-identical to
	// the single-engine path (the fig2 determinism test enforces it), so
	// Shards is execution-only and cleared by Normalized. Silently ignored
	// when a point cannot shard: a custom Backend owns its own engine
	// placement, and a zero on-chip hop leaves the home shard no lookahead.
	Shards int
	// NoShard forces the single-engine path even when Shards asks for
	// sharding — the A/B knob of the sharding determinism tests.
	NoShard bool
	// Telemetry, when set, observes the run: per-point spans and sharded
	// window timelines on its tracer, sweep counters and throughput on its
	// registry. Observation never changes results (the determinism tests
	// run with it attached), so it is execution-only and cleared by
	// Normalized.
	Telemetry *telemetry.Set
}

func (o *Options) withDefaults() Options {
	out := *o
	if len(out.Mixes) == 0 {
		for s := 0; s <= 100; s += 20 {
			out.Mixes = append(out.Mixes, Mix{StorePercent: s})
		}
	}
	if len(out.PacesNs) == 0 {
		out.PacesNs = []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512}
	}
	if out.Warmup == 0 {
		out.Warmup = 20 * sim.Microsecond
	}
	if out.Measure == 0 {
		out.Measure = 50 * sim.Microsecond
	}
	if out.ChaseLines == 0 {
		out.ChaseLines = 1 << 19 // 32 MiB: far beyond any LLC
	}
	if out.ArrayBytes == 0 {
		out.ArrayBytes = 32 << 20
	}
	if out.Parallelism == 0 {
		out.Parallelism = runtime.GOMAXPROCS(0)
		if out.Shards > 1 {
			// Sharded points each occupy Shards goroutines; dividing the
			// point-level parallelism keeps the two levels multiplying out
			// to the machine instead of oversubscribing its spin barriers.
			out.Parallelism = runtime.GOMAXPROCS(0) / out.Shards
			if out.Parallelism < 1 {
				out.Parallelism = 1
			}
		}
	}
	return out
}

// Normalized returns the options with every sweep-defining field filled
// with its default and every execution-only knob cleared. Two Options
// values describing the same sweep normalize to the same value regardless
// of the host, which is what makes them usable as cache-key material:
// Parallelism (a host-dependent execution bound) is zeroed, and Backend (a
// function value with no stable identity) is dropped — callers that swap
// the backend must carry its identity in the cache key themselves.
func (o Options) Normalized() Options {
	out := o.withDefaults()
	out.Parallelism = 0
	out.Backend = nil
	out.ShardedBackend = nil
	// Sharding is an execution strategy: a sharded and an unsharded run of
	// the same sweep produce byte-identical families (the determinism test
	// enforces it), so both may share one cache entry.
	out.Shards = 0
	out.NoShard = false
	out.Telemetry = nil
	return out
}

// Sample is one measurement point.
type Sample struct {
	Mix     Mix
	PaceNs  float64
	BWGBs   float64
	LatNs   float64
	RdRatio float64
	// Row-buffer statistics over the measurement window, when the backend
	// exposes them (fractions; zero otherwise).
	RowHit, RowEmpty, RowMiss float64
	ChaseSamples              uint64
}

// Result is a complete benchmark run.
type Result struct {
	Spec    platform.Spec
	Family  *core.Family
	Samples []Sample
}

// rowStatser is implemented by backends that expose row-buffer counters.
type rowStatser interface{ RowStats() dram.RowStats }

// Run executes the sweep for the platform and assembles the curve family.
//
// Points are distributed over a pool of Parallelism workers. Each worker
// owns one simulation engine for the whole sweep and Resets it between
// points, so the kernel's event pool, wheel buckets and overflow heap stay
// warm instead of being rebuilt (and re-grown) for every measurement. Each
// point still simulates in complete isolation — Reset restores the engine
// to its initial state — so results are independent of how points map onto
// workers.
func Run(spec platform.Spec, opt Options) (*Result, error) {
	return RunContext(context.Background(), spec, opt)
}

// RunContext is Run under a caller-supplied context. A measurement point
// is atomic — the simulation kernel has no preemption points — so
// cancellation is observed at point boundaries: the feeder stops handing
// out jobs, each worker finishes (at most) the point it is on and drains,
// and RunContext returns ctx.Err(). Worst-case cancellation latency is
// therefore one sweep point per worker, which QuickOptions-sized points
// keep in the tens of milliseconds.
func RunContext(ctx context.Context, spec platform.Spec, opt Options) (*Result, error) {
	o := opt.withDefaults()
	// Job 0 is the unloaded anchor: the pointer chase alone, as the paper
	// measures the unloaded latency (validated against LMbench/multichase).
	// It becomes the first point of every curve.
	type job struct{ mixIdx, paceIdx int } // mixIdx < 0: unloaded anchor
	jobs := make([]job, 0, len(o.Mixes)*len(o.PacesNs)+1)
	jobs = append(jobs, job{-1, -1})
	for mi := range o.Mixes {
		for pi := range o.PacesNs {
			jobs = append(jobs, job{mi, pi})
		}
	}
	samples := make([]Sample, len(jobs))
	errs := make([]error, len(jobs))

	workers := o.Parallelism
	if workers < 1 {
		workers = 1 // a nonsensical Parallelism must not starve the feed
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	shards := o.shardCount(spec)

	// Telemetry is pure observation: nil-safe metric handles and tracer
	// calls, so the uninstrumented path pays a few nil checks per point.
	tr := o.Telemetry.Trace()
	reg := o.Telemetry.Registry()
	pointsC := reg.Counter("mess_bench_points_total", "benchmark sweep points simulated")
	windowsC := reg.Counter("mess_sim_windows_total", "shard-group barrier windows executed")
	msgsC := reg.Counter("mess_sim_messages_total", "cross-shard messages delivered")
	spinsC := reg.Counter("mess_sim_barrier_spins_total", "barrier spin iterations while waiting")
	yieldsC := reg.Counter("mess_sim_barrier_yields_total", "barrier runtime.Gosched calls while waiting")
	parksC := reg.Counter("mess_sim_barrier_parks_total", "barrier parks (blocking waits)")
	var totalSteps atomic.Uint64
	wallStart := time.Now()
	var sweepSpan telemetry.SpanTimer
	if tr != nil {
		sweepSpan = tr.Begin(tr.NewTrack("bench", "sweep"), "sweep "+spec.Name)
	}

	feed := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		var track telemetry.Track
		if tr != nil {
			track = tr.NewTrack("bench", fmt.Sprintf("worker-%d", w))
		}
		go func() {
			defer wg.Done()
			// Each worker owns its engines for the whole sweep and Resets
			// them between points: one engine on the single-engine path, a
			// shard group (home engine + channel shards, with their worker
			// goroutines parked between windows) on the sharded one.
			var (
				eng   *sim.Engine
				group *sim.ShardGroup
			)
			if shards > 1 {
				group = sim.NewShardGroup(shards)
				defer group.Close()
				eng = group.Engine(0)
			} else {
				eng = sim.New()
			}
			for ji := range feed {
				if ctx.Err() != nil {
					// Cancelled while this job was already handed out: skip
					// the simulation but keep draining the feed so the
					// feeder never blocks.
					continue
				}
				if group != nil {
					group.Reset()
				} else {
					eng.Reset()
				}
				j := jobs[ji]
				if j.mixIdx < 0 {
					samples[ji], errs[ji] = measureWith(eng, group, spec, o, track, Mix{}, 0, 0)
				} else {
					samples[ji], errs[ji] = measureWith(eng, group, spec, o, track, o.Mixes[j.mixIdx], o.PacesNs[j.paceIdx], spec.Cores-1)
				}
				pointsC.Inc()
				if group != nil {
					totalSteps.Add(group.Steps())
					// Stats cover this point only (Reset cleared them), so
					// adding per point accumulates the whole sweep across
					// all workers in the shared counters.
					st := group.Stats()
					windowsC.Add(int64(st.Windows))
					msgsC.Add(int64(st.Messages))
					spinsC.Add(int64(st.Spins))
					yieldsC.Add(int64(st.Yields))
					parksC.Add(int64(st.Parks))
				} else {
					totalSteps.Add(eng.Steps())
				}
			}
		}()
	}
feedLoop:
	for ji := range jobs {
		select {
		case feed <- ji:
		case <-ctx.Done():
			break feedLoop
		}
	}
	close(feed)
	wg.Wait()
	if el := time.Since(wallStart).Seconds(); el > 0 {
		reg.Gauge("mess_bench_events_per_second", "simulation events executed per wall-clock second, last sweep").
			Set(float64(totalSteps.Load()) / el)
	}
	sweepSpan.End(telemetry.Int("points", int64(len(jobs))), telemetry.Int("events", int64(totalSteps.Load())))
	o.Telemetry.Logger().Debug("bench sweep done",
		"spec", spec.Name, "points", len(jobs), "events", totalSteps.Load(),
		"elapsed", time.Since(wallStart).Round(time.Millisecond))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	fam := assemble(spec, o, samples[1:], samples[0])
	return &Result{Spec: spec, Family: fam, Samples: samples[1:]}, nil
}

// MeasurePoint simulates one fully-loaded sweep point on its own engine (or
// shard group, when the options ask for one) and reports its sample — the
// interactive "explore this configuration now" case whose wall-clock the
// sharded engine targets. Generators occupy every core but the chaser's.
func MeasurePoint(spec platform.Spec, opt Options, mix Mix, paceNs float64) (Sample, error) {
	o := opt.withDefaults()
	var track telemetry.Track
	if tr := o.Telemetry.Trace(); tr != nil {
		track = tr.NewTrack("bench", "point")
	}
	if shards := o.shardCount(spec); shards > 1 {
		group := sim.NewShardGroup(shards)
		defer group.Close()
		return measureWith(group.Engine(0), group, spec, o, track, mix, paceNs, spec.Cores-1)
	}
	return measureWith(sim.New(), nil, spec, o, track, mix, paceNs, spec.Cores-1)
}

// MeasureUnloaded runs only the pointer chase and reports the unloaded
// load-to-use latency — the LMbench/multichase validation measurement.
func MeasureUnloaded(spec platform.Spec, opt Options) (float64, error) {
	o := opt.withDefaults()
	s, err := measureWith(sim.New(), nil, spec, o, telemetry.Track{}, Mix{}, 0, 0) // zero generators
	if err != nil {
		return 0, err
	}
	return s.LatNs, nil
}

// shardCount resolves the effective per-point shard-group size: 1 on the
// single-engine path. Sharding needs the detailed DRAM backend (a custom
// Backend factory owns its own engine placement), a positive outbound
// on-chip hop (it becomes the home shard's lookahead), and never more
// channel shards than the platform has channels.
func (o *Options) shardCount(spec platform.Spec) int {
	if o.Shards < 2 || o.NoShard {
		return 1
	}
	if o.Backend != nil && o.ShardedBackend == nil {
		return 1
	}
	ccfg := spec.CacheConfig()
	if o.Cache != nil {
		ccfg = *o.Cache
	}
	if ccfg.OnChipLatency/2 < 1 {
		return 1
	}
	n := o.Shards
	if o.ShardedBackend == nil {
		// Detailed-DRAM sharding: never more channel shards than the
		// platform has channels. A custom sharded backend owns its own
		// device placement, so the cap does not apply.
		if m := spec.DRAM.Channels + 1; n > m {
			n = m
		}
	}
	if n < 2 {
		return 1
	}
	return n
}

// measureWith simulates one sweep point on the given engine, which must be
// fresh or Reset. A non-nil group (whose home engine eng must be) runs the
// point sharded: the DRAM channels advance on the group's other shards,
// and the warmup/measure windows are driven through the group's
// conservative window barrier, whose quiescent boundaries make the counter
// snapshots read exactly the state the single-engine run would see.
func measureWith(eng *sim.Engine, group *sim.ShardGroup, spec platform.Spec, o Options, track telemetry.Track, mix Mix, paceNs float64, generators int) (Sample, error) {
	tr := o.Telemetry.Trace()
	var sp telemetry.SpanTimer
	if tr != nil {
		name := pointName(mix, paceNs, generators)
		sp = tr.Begin(track, name)
		if group != nil {
			// The point's barrier windows go on their own sim-time track:
			// timestamps are the home shard's simulated clock, so the row
			// reads as the point's simulated timeline, not wall time.
			wt := tr.NewTrack("sim", name)
			group.SetWindowHook(func(start, end sim.Time) {
				tr.Span(wt, "window", int64(start/sim.Nanosecond), int64((end-start)/sim.Nanosecond))
			})
			defer group.SetWindowHook(nil)
		}
	}
	var backend mem.Backend
	switch {
	case group != nil && o.ShardedBackend != nil:
		backend = o.ShardedBackend(group)
	case o.Backend != nil:
		backend = o.Backend(eng)
	case group != nil:
		backend = dram.NewSharded(group, spec.DRAM, 0)
	default:
		backend = dram.New(eng, spec.DRAM)
	}
	counting := mem.NewCounting(backend)
	ccfg := spec.CacheConfig()
	if o.Cache != nil {
		ccfg = *o.Cache
	}
	hier := cache.New(eng, ccfg, counting)
	if group != nil {
		// The cache's outbound hop is the minimum flight time of every
		// home→channel delivery, i.e. the home shard's outbound edge to
		// each device shard. Tighten rather than set: a sharded backend
		// factory may already have declared a smaller hop for its shard.
		for sh := 1; sh < group.Shards(); sh++ {
			group.TightenLookahead(0, sh, hier.Config().OnChipLatency/2)
		}
	}

	// Pointer chaser on core 0, in its own address region.
	const chaseBase = 1 << 40
	chaser := cpu.NewChaser(eng, hier.Port(0), chaseBase, o.ChaseLines, 12345)
	chaser.Start()

	// Traffic generators on the remaining cores. Each core gets disjoint
	// load/store arrays; bases are staggered by an extra bank-sized offset
	// so concurrent streams spread across banks like distinct allocations.
	gens := make([]*cpu.Generator, 0, generators)
	for g := 0; g < generators; g++ {
		base := uint64(1)<<33 + uint64(g)*(1<<28+16<<10)
		gen := cpu.NewGenerator(eng, hier.Port(g+1), cpu.GenConfig{
			StorePercent: mix.StorePercent,
			NonTemporal:  mix.NonTemporal,
			PacePerOp:    sim.FromNanoseconds(paceNs),
			LoadBase:     base,
			StoreBase:    base + 1<<27 + 32<<10,
			ArrayBytes:   o.ArrayBytes,
		})
		gen.Start()
		gens = append(gens, gen)
	}

	// Warm up, then measure over a counter delta. The sharded path drives
	// the whole group; its engines are all quiescent at the target time
	// when RunUntil returns, so the snapshots below are barrier-ordered.
	runUntil := eng.RunUntil
	if group != nil {
		runUntil = group.RunUntil
	}
	runUntil(o.Warmup)
	chaser.ResetStats()
	c0 := counting.Snapshot()
	var rs0 dram.RowStats
	statser, hasRows := backend.(rowStatser)
	if hasRows {
		rs0 = statser.RowStats()
	}
	t0 := eng.Now()

	runUntil(o.Warmup + o.Measure)
	c1 := counting.Snapshot()
	t1 := eng.Now()
	lat, n := chaser.MeanLatency()
	if n == 0 {
		return Sample{}, fmt.Errorf("bench: %s mix %v pace %.1f ns: chaser recorded no samples", spec.Name, mix, paceNs)
	}

	delta := c1.Sub(c0)
	s := Sample{
		Mix:          mix,
		PaceNs:       paceNs,
		BWGBs:        delta.BandwidthGBs(t1 - t0),
		LatNs:        lat.Nanoseconds(),
		RdRatio:      delta.ReadRatio(),
		ChaseSamples: n,
	}
	if hasRows {
		hit, empty, miss := statser.RowStats().Sub(rs0).Ratios()
		s.RowHit, s.RowEmpty, s.RowMiss = hit, empty, miss
	}
	for _, g := range gens {
		g.Stop()
	}
	chaser.Stop()
	sp.End(telemetry.Float("bw_gbs", s.BWGBs), telemetry.Float("lat_ns", s.LatNs))
	return s, nil
}

// pointName labels one sweep point for tracing: stable across runs of the
// same sweep, unique within it.
func pointName(mix Mix, paceNs float64, generators int) string {
	if generators == 0 {
		return "point unloaded"
	}
	nt := ""
	if mix.NonTemporal {
		nt = "nt"
	}
	return fmt.Sprintf("point s%d%s p%g", mix.StorePercent, nt, paceNs)
}

// assemble groups samples by mix into curves ordered by injection pressure
// (descending pace), sanitizes them, and tags each curve with the measured
// read ratio. Every curve starts at the unloaded anchor.
func assemble(spec platform.Spec, o Options, samples []Sample, unloaded Sample) *core.Family {
	fam := &core.Family{
		Label:         spec.Name,
		TheoreticalBW: spec.TheoreticalBandwidthGBs(),
	}
	for _, mix := range o.Mixes {
		pts := []core.Point{{BW: unloaded.BWGBs, Latency: unloaded.LatNs}}
		var ratioSum float64
		var cnt int
		// Pressure ascends as pace descends.
		ordered := make([]Sample, 0, len(o.PacesNs))
		for _, s := range samples {
			if s.Mix == mix {
				ordered = append(ordered, s)
			}
		}
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].PaceNs > ordered[j].PaceNs })
		for _, s := range ordered {
			if s.BWGBs <= unloaded.BWGBs {
				// A paced point below the anchor carries no information.
				continue
			}
			pts = append(pts, core.Point{BW: s.BWGBs, Latency: s.LatNs})
			ratioSum += s.RdRatio
			cnt++
		}
		if cnt == 0 {
			continue
		}
		pts = core.SanitizePoints(pts)
		if len(pts) < 2 {
			continue
		}
		fam.Curves = append(fam.Curves, core.Curve{
			ReadRatio: ratioSum / float64(cnt),
			Points:    pts,
		})
	}
	fam.Sort()
	return fam
}

// QuickOptions returns a reduced sweep suitable for tests: three mixes,
// a coarse pacing ladder and short windows.
func QuickOptions() Options {
	return Options{
		Mixes:   []Mix{{StorePercent: 0}, {StorePercent: 50}, {StorePercent: 100}},
		PacesNs: []float64{0, 4, 16, 64, 256},
		Warmup:  5 * sim.Microsecond,
		Measure: 15 * sim.Microsecond,
	}
}
