package bench

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/mess-sim/mess/internal/cache"
	"github.com/mess-sim/mess/internal/dram"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/sim"
)

// miniPlatform is a scaled-down Skylake-like machine that keeps test
// runtimes low: 8 cores, 2 DDR4 channels.
func miniPlatform() platform.Spec {
	cfg := dram.DDR4(2666, 2, 1)
	cfg.CtrlLatency = sim.FromNanoseconds(8)
	cfg.IdleClose = 250 * sim.Nanosecond
	return platform.Spec{
		Name: "mini-skylake", Cores: 8, FreqGHz: 2.1,
		DRAM:              cfg,
		Policy:            cache.WriteAllocate,
		OnChipLatency:     sim.FromNanoseconds(44.5),
		MSHRs:             16,
		WriteBufs:         20,
		UnloadedLatencyNs: 89,
	}
}

func TestUnloadedLatencyMatchesCalibration(t *testing.T) {
	spec := miniPlatform()
	lat, err := MeasureUnloaded(spec, QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if lat < spec.UnloadedLatencyNs*0.9 || lat > spec.UnloadedLatencyNs*1.1 {
		t.Fatalf("unloaded latency = %.1f ns, want %.0f ±10%%", lat, spec.UnloadedLatencyNs)
	}
}

func TestBenchmarkProducesFamily(t *testing.T) {
	spec := miniPlatform()
	res, err := Run(spec, QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	fam := res.Family
	if err := fam.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(fam.Curves) != 3 {
		t.Fatalf("curves = %d, want 3 (one per mix)", len(fam.Curves))
	}

	m := fam.Metrics()
	peak := spec.TheoreticalBandwidthGBs()
	if m.SatBWHighGBs > peak {
		t.Fatalf("measured max bandwidth %.1f exceeds theoretical %.1f", m.SatBWHighGBs, peak)
	}
	if m.SatBWHighGBs < 0.6*peak {
		t.Fatalf("measured max bandwidth %.1f below 60%% of theoretical %.1f — generators cannot load the system", m.SatBWHighGBs, peak)
	}
	if m.UnloadedLatencyNs < 60 || m.UnloadedLatencyNs > 130 {
		t.Fatalf("unloaded latency %.1f ns implausible", m.UnloadedLatencyNs)
	}

	// The defining hardware behaviour (Sec. II-C): pure-read traffic
	// reaches the highest bandwidth; write traffic saturates sooner.
	readCurve := fam.Nearest(1.0)
	writeCurve := fam.Nearest(0.5)
	if readCurve.ReadRatio <= writeCurve.ReadRatio {
		t.Fatalf("curve ratios not separated: %v vs %v", readCurve.ReadRatio, writeCurve.ReadRatio)
	}
	if readCurve.MaxBW() <= writeCurve.MaxBW() {
		t.Fatalf("100%%-read max BW %.1f not above 50/50 max BW %.1f",
			readCurve.MaxBW(), writeCurve.MaxBW())
	}
}

func TestWriteAllocateRatioMapping(t *testing.T) {
	// A 100%-store kernel must generate ≈50% read / 50% write traffic
	// under write-allocate (each store = RFO read + writeback), per
	// Sec. II-A of the paper.
	spec := miniPlatform()
	opt := QuickOptions()
	opt.Mixes = []Mix{{StorePercent: 100}}
	opt.PacesNs = []float64{4}
	res, err := Run(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Samples[0].RdRatio
	if r < 0.45 || r > 0.58 {
		t.Fatalf("100%%-store kernel produced read ratio %.2f, want ≈0.5", r)
	}
}

func TestNonTemporalReachesWriteHeavyTraffic(t *testing.T) {
	spec := miniPlatform()
	opt := QuickOptions()
	opt.Mixes = []Mix{{StorePercent: 100, NonTemporal: true}}
	opt.PacesNs = []float64{4}
	res, err := Run(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Samples[0].RdRatio
	// The chaser still reads, so the ratio is near but not exactly 0.
	if r > 0.2 {
		t.Fatalf("100%% NT-store kernel produced read ratio %.2f, want < 0.2", r)
	}
}

func TestLatencyGrowsWithPressure(t *testing.T) {
	spec := miniPlatform()
	opt := QuickOptions()
	opt.Mixes = []Mix{{StorePercent: 0}}
	res, err := Run(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Family.Nearest(1.0)
	first := c.Points[0]
	last := c.Points[len(c.Points)-1]
	if last.Latency <= first.Latency {
		t.Fatalf("latency did not grow with pressure: %.1f → %.1f ns", first.Latency, last.Latency)
	}
	if last.BW <= first.BW {
		t.Fatalf("bandwidth did not grow with pressure: %.1f → %.1f GB/s", first.BW, last.BW)
	}
}

func TestRowStatsReported(t *testing.T) {
	spec := miniPlatform()
	opt := QuickOptions()
	opt.Mixes = []Mix{{StorePercent: 0}}
	opt.PacesNs = []float64{0, 128}
	res, err := Run(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		total := s.RowHit + s.RowEmpty + s.RowMiss
		if total < 0.99 || total > 1.01 {
			t.Fatalf("row stats fractions sum to %.2f at pace %.0f", total, s.PaceNs)
		}
	}
}

func TestOpenPitonBugDetection(t *testing.T) {
	// The Sec. IV-C discovery: with the coherency bug enabled, the Mess
	// benchmark observes far more write traffic than the kernel mix can
	// explain. A pure-load kernel should produce ~0% writes; the bugged
	// hierarchy shows ~50%.
	spec := miniPlatform()
	spec.Name = "mini-openpiton-bugged"
	opt := QuickOptions()
	opt.Mixes = []Mix{{StorePercent: 0}}
	opt.PacesNs = []float64{8}

	healthy, err := Run(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r := healthy.Samples[0].RdRatio; r < 0.97 {
		t.Fatalf("healthy pure-load read ratio = %.2f, want ≈1", r)
	}

	cacheCfg := spec.CacheConfig()
	cacheCfg.EvictCleanAsDirty = true
	opt.Cache = &cacheCfg
	res2, err := Run(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r := res2.Samples[0].RdRatio; r > 0.8 {
		t.Fatalf("bugged pure-load read ratio = %.2f, want well below 1 (excess writebacks)", r)
	}
}

// TestRunContextCancellation is the worker-pool half of the cancellation
// contract: a cancelled sweep returns the context error in bounded time
// (each worker finishes at most the point it is simulating) and leaves no
// goroutine behind.
func TestRunContextCancellation(t *testing.T) {
	spec := miniPlatform()
	opt := QuickOptions()
	opt.Parallelism = 2

	before := runtime.NumGoroutine()

	// Cancel mid-sweep: the quick sweep is dozens of points, so a few
	// milliseconds lands inside it.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := RunContext(ctx, spec, opt)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a partial Result")
	}
	if elapsed > 30*time.Second {
		t.Fatalf("cancelled sweep took %v to unwind — workers not draining", elapsed)
	}

	// An already-cancelled context never starts simulating.
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	start = time.Now()
	if _, err := RunContext(done, spec, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run err = %v, want Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("pre-cancelled run still swept")
	}

	// No leaked workers: the goroutine count settles back to the baseline
	// (with slack for runtime background goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+3 {
		t.Fatalf("goroutines leaked by cancelled runs: %d before, %d after", before, n)
	}
}

func TestOptionsNormalized(t *testing.T) {
	// The zero value and an explicit spelling of every default must
	// normalize identically — that equivalence is what makes Options
	// usable as cache-key material.
	zero := Options{}.Normalized()
	explicit := Options{
		PacesNs:    []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512},
		Warmup:     20 * sim.Microsecond,
		Measure:    50 * sim.Microsecond,
		ChaseLines: 1 << 19,
		ArrayBytes: 32 << 20,
	}
	for s := 0; s <= 100; s += 20 {
		explicit.Mixes = append(explicit.Mixes, Mix{StorePercent: s})
	}
	got := explicit.Normalized()
	if fmt.Sprint(zero) != fmt.Sprint(got) {
		t.Fatalf("explicit defaults normalize differently:\nzero:     %+v\nexplicit: %+v", zero, got)
	}

	// Execution-only knobs are cleared regardless of input.
	o := Options{Parallelism: 12, Backend: func(eng *sim.Engine) mem.Backend { return nil }}
	n := o.Normalized()
	if n.Parallelism != 0 || n.Backend != nil {
		t.Fatalf("Parallelism/Backend leaked through normalization: %+v", n)
	}
	// Normalization must not mutate the receiver.
	if o.Parallelism != 12 || o.Backend == nil {
		t.Fatalf("Normalized mutated its receiver: %+v", o)
	}
}
