package platform

import (
	"math"
	"testing"
)

func TestAllPlatformsValid(t *testing.T) {
	specs := All()
	if len(specs) != 8 {
		t.Fatalf("platform count = %d, want the 8 of Table I", len(specs))
	}
	for _, s := range specs {
		if err := s.DRAM.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if s.Cores <= 0 || s.FreqGHz <= 0 || s.MSHRs <= 0 {
			t.Errorf("%s: incomplete spec %+v", s.Name, s)
		}
		if s.UnloadedLatencyNs <= 0 {
			t.Errorf("%s: missing calibration target", s.Name)
		}
	}
}

func TestTheoreticalBandwidths(t *testing.T) {
	// Table I's theoretical bandwidth column.
	want := map[string]float64{
		"Intel Skylake":         128,
		"Intel Cascade Lake":    128,
		"AMD Zen 2":             204,
		"IBM Power 9":           170,
		"Amazon Graviton 3":     307,
		"Intel Sapphire Rapids": 307,
		"Fujitsu A64FX":         1024,
		"NVIDIA H100":           1631,
	}
	for _, s := range All() {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected platform %q", s.Name)
			continue
		}
		got := s.TheoreticalBandwidthGBs()
		if math.Abs(got-w)/w > 0.03 {
			t.Errorf("%s theoretical BW = %.0f GB/s, want %.0f", s.Name, got, w)
		}
	}
}

func TestSaturationHeadroom(t *testing.T) {
	// Each platform's cores must be able to saturate its memory: the
	// outstanding-line budget (cores × MSHRs × 64 B) must cover the
	// bandwidth-delay product at the unloaded latency.
	for _, s := range All() {
		demand := s.TheoreticalBandwidthGBs() * 1e9 * s.UnloadedLatencyNs * 1e-9 // bytes in flight needed
		budget := float64(s.Cores*s.MSHRs) * 64
		if budget < demand*0.8 {
			t.Errorf("%s: MSHR budget %.0f B cannot cover BW×latency %.0f B", s.Name, budget, demand)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("Fujitsu A64FX")
	if err != nil || s.Name != "Fujitsu A64FX" {
		t.Fatalf("lookup failed: %v %v", s, err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("bogus platform accepted")
	}
}

func TestCycleTime(t *testing.T) {
	s := Skylake()
	// 2.1 GHz → 476 ps.
	if ct := s.CycleTime(); ct < 470 || ct > 480 {
		t.Fatalf("cycle time = %v ps", ct)
	}
}

func TestBuildConstructsSystem(t *testing.T) {
	sys := Skylake().Build()
	if sys.Eng == nil || sys.Mem == nil || sys.Hier == nil {
		t.Fatal("Build left nil components")
	}
	if sys.Mem.PeakBandwidthGBs() < 120 {
		t.Fatal("built memory system has wrong bandwidth")
	}
}

func TestSimulatorVariants(t *testing.T) {
	op := OpenPitonAriane()
	if op.MSHRs != 2 {
		t.Fatalf("OpenPiton Ariane MSHRs = %d, want 2 (Sec. IV-C)", op.MSHRs)
	}
	if z := ZSimSkylake(); z.DRAM.Channels != 6 {
		t.Fatalf("ZSim Skylake channels = %d", z.DRAM.Channels)
	}
	if g := Gem5Graviton3(); g.Cores != 64 {
		t.Fatalf("gem5 Graviton 3 cores = %d", g.Cores)
	}
}
