// Package platform assembles complete simulated systems: a memory backend,
// a cache hierarchy and a set of cores, configured to mirror the eight
// platforms of the paper's Table I plus the CPU-simulator configurations of
// Sec. IV (ZSim-like, gem5-like, OpenPiton-like).
//
// A Spec is pure data; Build instantiates it on a fresh engine. The
// calibration targets are the paper's measured characteristics — unloaded
// latency, saturated-bandwidth range, maximum latency range — not the
// microarchitectural details of the real chips.
package platform

import (
	"fmt"

	"github.com/mess-sim/mess/internal/cache"
	"github.com/mess-sim/mess/internal/dram"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// Spec describes a platform.
type Spec struct {
	Name     string
	Released string
	Cores    int     // cores (or GPU SMs) generating traffic
	FreqGHz  float64 // core frequency

	DRAM dram.Config

	// Cache-side parameters.
	Policy        cache.WritePolicy
	OnChipLatency sim.Time // round-trip on-chip component of load-to-use
	MSHRs         int      // per-core outstanding demand misses
	WriteBufs     int      // per-core posted-write buffer
	WritebackLag  uint64

	// UnloadedLatencyNs is the paper's Table I reference value, kept for
	// reporting and validation; the simulated value must come out close.
	UnloadedLatencyNs float64
}

// CycleTime reports the core clock period.
func (s Spec) CycleTime() sim.Time {
	return sim.FromNanoseconds(1.0 / s.FreqGHz)
}

// TheoreticalBandwidthGBs reports the peak memory bandwidth.
func (s Spec) TheoreticalBandwidthGBs() float64 { return s.DRAM.PeakBandwidthGBs() }

// System is an instantiated platform: engine, memory, hierarchy.
type System struct {
	Spec Spec
	Eng  *sim.Engine
	Mem  *dram.System
	Hier *cache.Hierarchy
}

// Build instantiates the platform on a fresh engine with its detailed DRAM
// backend (the "actual hardware" of every experiment).
func (s Spec) Build() *System {
	eng := sim.New()
	m := dram.New(eng, s.DRAM)
	h := cache.New(eng, s.CacheConfig(), m)
	return &System{Spec: s, Eng: eng, Mem: m, Hier: h}
}

// BuildOn instantiates the platform's cache hierarchy and cores over an
// arbitrary memory backend — how the Sec. IV/V experiments swap memory
// models under an unchanged CPU side. It returns the hierarchy and the
// counting wrapper that stands in for the uncore bandwidth counters.
func (s Spec) BuildOn(eng *sim.Engine, backend mem.Backend) (*cache.Hierarchy, *mem.CountingBackend) {
	counting := mem.NewCounting(backend)
	h := cache.New(eng, s.CacheConfig(), counting)
	return h, counting
}

// CacheConfig derives the hierarchy configuration from the spec.
func (s Spec) CacheConfig() cache.Config {
	return cache.Config{
		Policy:        s.Policy,
		OnChipLatency: s.OnChipLatency,
		MSHRs:         s.MSHRs,
		WriteBufs:     s.WriteBufs,
		WritebackLag:  s.WritebackLag,
	}
}

func (s Spec) String() string {
	return fmt.Sprintf("%s: %d cores @%.1f GHz, %s ×%d (%.0f GB/s peak)",
		s.Name, s.Cores, s.FreqGHz, s.DRAM.Name, s.DRAM.Channels, s.TheoreticalBandwidthGBs())
}

func ns(v float64) sim.Time { return sim.FromNanoseconds(v) }

// The eight platforms of Table I. On-chip latencies are calibrated so the
// simulated unloaded load-to-use latency lands at the paper's measured
// value; MSHR depths are set so the platform can actually saturate its
// memory system (BW × latency / 64 B outstanding lines), as the real
// out-of-order cores and GPU SMs do.

// Skylake returns the Intel Skylake Xeon Platinum platform:
// 24 cores @ 2.1 GHz, 6×DDR4-2666, 128 GB/s, 89 ns unloaded.
func Skylake() Spec {
	cfg := dram.DDR4(2666, 6, 1)
	cfg.CtrlLatency = ns(8)
	cfg.IdleClose = 250 * sim.Nanosecond
	return Spec{
		Name: "Intel Skylake", Released: "2015",
		Cores: 24, FreqGHz: 2.1,
		DRAM:              cfg,
		Policy:            cache.WriteAllocate,
		OnChipLatency:     ns(44.5),
		MSHRs:             28,
		WriteBufs:         32,
		UnloadedLatencyNs: 89,
	}
}

// CascadeLake returns the Intel Cascade Lake Xeon Gold platform:
// 16 cores @ 2.3 GHz, 6×DDR4-2666, 128 GB/s, 85 ns unloaded.
func CascadeLake() Spec {
	cfg := dram.DDR4(2666, 6, 1)
	cfg.CtrlLatency = ns(8)
	cfg.IdleClose = 250 * sim.Nanosecond
	return Spec{
		Name: "Intel Cascade Lake", Released: "2019",
		Cores: 16, FreqGHz: 2.3,
		DRAM:              cfg,
		Policy:            cache.WriteAllocate,
		OnChipLatency:     ns(40.5),
		MSHRs:             32,
		WriteBufs:         36,
		UnloadedLatencyNs: 85,
	}
}

// Zen2 returns the AMD EPYC 7742 platform: 64 cores @ 2.25 GHz,
// 8×DDR4-3200, 204 GB/s, 113 ns unloaded. The small write-drain batches
// (low watermarks) reproduce Zen 2's anomalous mixed-traffic penalty
// (Sec. III): balanced read/write mixes suffer frequent bus turnarounds.
func Zen2() Spec {
	cfg := dram.DDR4(3200, 8, 1)
	cfg.CtrlLatency = ns(8)
	cfg.IdleClose = 250 * sim.Nanosecond
	cfg.WriteHi = 10
	cfg.WriteLo = 6
	return Spec{
		Name: "AMD Zen 2", Released: "2019",
		Cores: 64, FreqGHz: 2.25,
		DRAM:              cfg,
		Policy:            cache.WriteAllocate,
		OnChipLatency:     ns(70),
		MSHRs:             10,
		WriteBufs:         12,
		UnloadedLatencyNs: 113,
	}
}

// Power9 returns the IBM Power 9 platform: 20 cores @ 2.4 GHz,
// 8×DDR4-2666, 170 GB/s, 96 ns unloaded.
func Power9() Spec {
	cfg := dram.DDR4(2666, 8, 1)
	cfg.CtrlLatency = ns(8)
	cfg.IdleClose = 250 * sim.Nanosecond
	return Spec{
		Name: "IBM Power 9", Released: "2017",
		Cores: 20, FreqGHz: 2.4,
		DRAM:              cfg,
		Policy:            cache.WriteAllocate,
		OnChipLatency:     ns(51.5),
		MSHRs:             32,
		WriteBufs:         36,
		UnloadedLatencyNs: 96,
	}
}

// Graviton3 returns the Amazon Graviton 3 platform: 64 cores @ 2.6 GHz,
// 8×DDR5-4800, 307 GB/s, 129 ns unloaded. Its stores behave as
// write-through/no-allocate at the memory interface: the paper observes
// STREAM matching the Mess counters, "corresponding to a write-through
// cache policy" (Sec. III).
func Graviton3() Spec {
	cfg := dram.DDR5(4800, 8, 2)
	cfg.CtrlLatency = ns(8)
	cfg.IdleClose = 250 * sim.Nanosecond
	return Spec{
		Name: "Amazon Graviton 3", Released: "2022",
		Cores: 64, FreqGHz: 2.6,
		DRAM:              cfg,
		Policy:            cache.WriteThrough,
		OnChipLatency:     ns(83.5),
		MSHRs:             20,
		WriteBufs:         24,
		UnloadedLatencyNs: 129,
	}
}

// SapphireRapids returns the Intel Sapphire Rapids Xeon Platinum platform:
// 56 cores @ 2 GHz, 8×DDR5-4800, 307 GB/s, 109 ns unloaded.
func SapphireRapids() Spec {
	cfg := dram.DDR5(4800, 8, 2)
	cfg.CtrlLatency = ns(8)
	cfg.IdleClose = 250 * sim.Nanosecond
	return Spec{
		Name: "Intel Sapphire Rapids", Released: "2023",
		Cores: 56, FreqGHz: 2.0,
		DRAM:              cfg,
		Policy:            cache.WriteAllocate,
		OnChipLatency:     ns(63.5),
		MSHRs:             16,
		WriteBufs:         20,
		UnloadedLatencyNs: 109,
	}
}

// A64FX returns the Fujitsu A64FX platform: 48 cores @ 2.2 GHz,
// 4×HBM2 (32 channels), 1024 GB/s, 122 ns unloaded.
func A64FX() Spec {
	cfg := dram.HBM2(32)
	cfg.CtrlLatency = ns(6)
	cfg.IdleClose = 250 * sim.Nanosecond
	return Spec{
		Name: "Fujitsu A64FX", Released: "2019",
		Cores: 48, FreqGHz: 2.2,
		DRAM:              cfg,
		Policy:            cache.WriteAllocate,
		OnChipLatency:     ns(80),
		MSHRs:             56,
		WriteBufs:         60,
		UnloadedLatencyNs: 122,
	}
}

// H100 returns the NVIDIA Hopper H100 platform: 132 SMs @ 1.1 GHz,
// 4×HBM2E (32 channels), 1631 GB/s, 363 ns unloaded. SMs tolerate enormous
// memory-level parallelism; like Graviton 3, its STREAM results match the
// Mess counters, so stores are modelled without write-allocate.
func H100() Spec {
	cfg := dram.HBM2E(32)
	cfg.CtrlLatency = ns(6)
	cfg.IdleClose = 250 * sim.Nanosecond
	return Spec{
		Name: "NVIDIA H100", Released: "2023",
		Cores: 132, FreqGHz: 1.1,
		DRAM:   cfg,
		Policy: cache.WriteThrough,
		// An SM's warps keep far more sectors in flight than a CPU
		// core's MSHRs; 80 outstanding lines per SM covers the platform's
		// bandwidth-delay product (1631 GB/s × 363 ns ≈ 580 KB).
		OnChipLatency:     ns(321),
		MSHRs:             80,
		WriteBufs:         84,
		UnloadedLatencyNs: 363,
	}
}

// All returns the eight Table I platforms in the paper's column order.
func All() []Spec {
	return []Spec{
		Skylake(), CascadeLake(), Zen2(), Power9(),
		Graviton3(), SapphireRapids(), A64FX(), H100(),
	}
}

// ByName returns the platform spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("platform: unknown platform %q", name)
}

// Simulator-configuration variants of Sec. IV. The paper's simulators model
// specific machines; the distinguishing CPU-side property that matters for
// memory characterization is the outstanding-miss budget and the on-chip
// latency the simulator exhibits.

// ZSimSkylake returns the CPU-side configuration of the public ZSim
// Skylake model (24 cores, 6×DDR4-2666).
func ZSimSkylake() Spec {
	s := Skylake()
	s.Name = "ZSim Skylake model"
	return s
}

// Gem5Graviton3 returns the CPU-side configuration of the gem5 Graviton 3
// model (64 Neoverse-N1-like cores, 8×DDR5-4800).
func Gem5Graviton3() Spec {
	s := Graviton3()
	s.Name = "gem5 Graviton 3 model"
	return s
}

// OpenPitonAriane returns the 64-core Ariane RISC-V configuration of the
// OpenPiton Metro-MPI experiments: small in-order cores with 2-entry MSHRs,
// which cannot saturate a high-end memory system (Sec. IV-C).
func OpenPitonAriane() Spec {
	cfg := dram.DDR4(2666, 1, 1)
	cfg.CtrlLatency = ns(8)
	cfg.IdleClose = 250 * sim.Nanosecond
	return Spec{
		Name: "OpenPiton Ariane", Released: "2023",
		Cores: 64, FreqGHz: 1.0,
		DRAM:              cfg,
		Policy:            cache.WriteAllocate,
		OnChipLatency:     ns(60),
		MSHRs:             2,
		WriteBufs:         4,
		UnloadedLatencyNs: 100,
	}
}
