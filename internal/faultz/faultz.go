// Package faultz is the deterministic fault-injection layer behind the
// chaos suite: a seeded, programmable plan of faults (errors, added
// latency, hang-until-cancel, corrupt bytes, truncated bodies,
// fail-then-recover schedules) that can be interposed at the two seams the
// fleet stack crosses — the curvestore.Store interface (NewStore) and the
// HTTP transport under the curve-store client (NewTransport).
//
// The point of the package is to make the repository's fail-soft contract
// testable instead of asserted: "losing every cache can only cost a
// re-simulation, never an error" is only trustworthy if something actually
// injects a slow, flaky, corrupt or hung dependency and checks that the
// callers above ride through it. The chaos tests (internal/charz) and the
// CI chaos leg do exactly that, with plans seeded so a failure reproduces
// from its seed.
//
// # Determinism
//
// A Plan draws its fault sequence from a splitmix64 stream seeded by
// Config.Seed: the k-th draw is a pure function of (seed, k). Concurrent
// callers interleave their draws nondeterministically, but the multiset of
// faults injected over n operations is fixed — which is the right contract
// for chaos testing, where the invariants must hold under every
// interleaving of a known fault load.
package faultz

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind classifies one injected fault.
type Kind int

const (
	// None: the operation proceeds untouched.
	None Kind = iota
	// Error fails the operation with ErrInjected (a transport error at the
	// HTTP seam) — the flaky-dependency case.
	Error
	// Latency delays the operation (context-interruptible), then lets it
	// proceed — the slow-dependency case.
	Latency
	// Hang blocks the operation until its context is cancelled — the
	// wedged-dependency case, and the one that proves deadlines propagate.
	Hang
	// Corrupt lets the operation proceed but mangles its payload — the
	// bit-rot / broken-intermediary case. At the Store seam a corrupt
	// entry is present-but-unreadable (an error, which tier composition
	// treats as a miss); at the HTTP seam response bodies are bit-flipped.
	Corrupt
	// Truncate is Corrupt's short-read sibling: payloads are cut off
	// mid-body.
	Truncate

	numKinds
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Error:
		return "error"
	case Latency:
		return "latency"
	case Hang:
		return "hang"
	case Corrupt:
		return "corrupt"
	case Truncate:
		return "truncate"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ErrInjected is the error carried by injected Error faults (and by
// corrupt/truncated Store reads). Callers composing fail-soft tiers treat
// it like any other tier error: a miss.
var ErrInjected = errors.New("faultz: injected fault")

// Fault is one drawn fault.
type Fault struct {
	Kind Kind
	// Delay is the added latency for Latency faults.
	Delay time.Duration
}

// Config programs a Plan. The zero value injects nothing.
type Config struct {
	// Seed fixes the probabilistic draw stream. Two plans with equal
	// configs inject the same fault sequence.
	Seed uint64
	// FailFirst makes the first N operations fail with Error before any
	// other rule applies — the fail-then-recover schedule (a dependency
	// that is down when the caller starts and comes back mid-run).
	FailFirst int
	// Script, when non-empty, is consumed one entry per operation (after
	// FailFirst is exhausted) before probabilistic drawing starts —
	// exact-schedule tests write the whole scenario here.
	Script []Fault
	// Per-operation probabilities in [0, 1], applied in this order as one
	// cumulative draw; their sum must not exceed 1.
	ErrorP, HangP, CorruptP, TruncateP, LatencyP float64
	// Latency is the fixed delay injected by Latency faults.
	Latency time.Duration
}

// Stats counts what a plan actually injected, so tests can assert the
// hostile schedule really fired instead of vacuously passing.
type Stats struct {
	Ops       int64
	Errors    int64
	Delays    int64
	Hangs     int64
	Corrupts  int64
	Truncates int64
}

// Injected reports the total number of non-None faults.
func (s Stats) Injected() int64 {
	return s.Errors + s.Delays + s.Hangs + s.Corrupts + s.Truncates
}

// Plan is a concurrency-safe fault source shared by every wrapper built
// over it: each intercepted operation consumes one draw.
type Plan struct {
	mu     sync.Mutex
	cfg    Config
	rng    uint64
	script int // next Script entry
	stats  Stats
}

// NewPlan builds a plan. The config is validated loudly: a chaos harness
// with a silently-impossible schedule tests nothing.
func NewPlan(cfg Config) (*Plan, error) {
	sum := cfg.ErrorP + cfg.HangP + cfg.CorruptP + cfg.TruncateP + cfg.LatencyP
	for _, p := range []float64{cfg.ErrorP, cfg.HangP, cfg.CorruptP, cfg.TruncateP, cfg.LatencyP} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("faultz: probability %v outside [0, 1]", p)
		}
	}
	if sum > 1 {
		return nil, fmt.Errorf("faultz: fault probabilities sum to %v > 1", sum)
	}
	if cfg.LatencyP > 0 && cfg.Latency <= 0 {
		return nil, errors.New("faultz: LatencyP set without a Latency duration")
	}
	return &Plan{cfg: cfg, rng: cfg.Seed}, nil
}

// MustPlan is NewPlan for hand-written test configs.
func MustPlan(cfg Config) *Plan {
	p, err := NewPlan(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// splitmix64 advances the draw stream — the same generator the sampled
// trace replay uses for its seeded k-means, chosen for identical output on
// every platform.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Next draws the fault for the next operation.
func (p *Plan) Next() Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Ops++
	var f Fault
	switch {
	case p.stats.Ops <= int64(p.cfg.FailFirst):
		f = Fault{Kind: Error}
	case p.script < len(p.cfg.Script):
		f = p.cfg.Script[p.script]
		p.script++
	default:
		p.rng = splitmix64(p.rng)
		// 53 uniform bits, like math/rand's Float64.
		u := float64(p.rng>>11) / (1 << 53)
		switch {
		case u < p.cfg.ErrorP:
			f = Fault{Kind: Error}
		case u < p.cfg.ErrorP+p.cfg.HangP:
			f = Fault{Kind: Hang}
		case u < p.cfg.ErrorP+p.cfg.HangP+p.cfg.CorruptP:
			f = Fault{Kind: Corrupt}
		case u < p.cfg.ErrorP+p.cfg.HangP+p.cfg.CorruptP+p.cfg.TruncateP:
			f = Fault{Kind: Truncate}
		case u < p.cfg.ErrorP+p.cfg.HangP+p.cfg.CorruptP+p.cfg.TruncateP+p.cfg.LatencyP:
			f = Fault{Kind: Latency, Delay: p.cfg.Latency}
		}
	}
	if f.Kind == Latency && f.Delay == 0 {
		f.Delay = p.cfg.Latency
	}
	switch f.Kind {
	case Error:
		p.stats.Errors++
	case Latency:
		p.stats.Delays++
	case Hang:
		p.stats.Hangs++
	case Corrupt:
		p.stats.Corrupts++
	case Truncate:
		p.stats.Truncates++
	}
	return f
}

// Stats snapshots the injection counters.
func (p *Plan) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Sleep blocks for d or until ctx is done, whichever comes first — the
// context-interruptible sleep every injected latency rides on.
func Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ParseConfig parses the compact spec the MESS_FAULTZ environment variable
// (and the CI chaos leg) uses: comma-separated key=value pairs.
//
//	seed=7,failfirst=3,error=0.2,hang=0.01,corrupt=0.1,truncate=0.05,latency=0.3:20ms
//
// latency takes probability:duration. Unknown keys are errors — a typo in
// a chaos schedule must not silently weaken it.
func ParseConfig(spec string) (Config, error) {
	var cfg Config
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("faultz: bad spec entry %q (want key=value)", part)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(v, 10, 64)
		case "failfirst":
			cfg.FailFirst, err = strconv.Atoi(v)
		case "error":
			cfg.ErrorP, err = strconv.ParseFloat(v, 64)
		case "hang":
			cfg.HangP, err = strconv.ParseFloat(v, 64)
		case "corrupt":
			cfg.CorruptP, err = strconv.ParseFloat(v, 64)
		case "truncate":
			cfg.TruncateP, err = strconv.ParseFloat(v, 64)
		case "latency":
			p, d, ok := strings.Cut(v, ":")
			if !ok {
				return cfg, fmt.Errorf("faultz: latency wants probability:duration, got %q", v)
			}
			if cfg.LatencyP, err = strconv.ParseFloat(p, 64); err == nil {
				cfg.Latency, err = time.ParseDuration(d)
			}
		default:
			return cfg, fmt.Errorf("faultz: unknown spec key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("faultz: parsing %q: %w", part, err)
		}
	}
	return cfg, nil
}
