package faultz

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/mess-sim/mess/internal/core"
	"github.com/mess-sim/mess/internal/curvestore"
)

func drawKinds(p *Plan, n int) []Kind {
	out := make([]Kind, n)
	for i := range out {
		out[i] = p.Next().Kind
	}
	return out
}

func TestPlanDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, ErrorP: 0.2, HangP: 0.05, CorruptP: 0.1, TruncateP: 0.05, LatencyP: 0.2, Latency: time.Millisecond}
	a := drawKinds(MustPlan(cfg), 500)
	b := drawKinds(MustPlan(cfg), 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between equal plans: %v vs %v", i, a[i], b[i])
		}
	}
	// A different seed must produce a different sequence (else the seed is
	// decorative and failures would not reproduce from it).
	cfg.Seed = 43
	c := drawKinds(MustPlan(cfg), 500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 drew identical 500-fault sequences")
	}
}

func TestPlanConcurrentMultisetFixed(t *testing.T) {
	// The documented contract: concurrent callers interleave draws, but the
	// multiset of faults over n operations is a pure function of the seed.
	cfg := Config{Seed: 7, ErrorP: 0.3, CorruptP: 0.2}
	const n = 400
	serial := MustPlan(cfg)
	var want Stats
	for i := 0; i < n; i++ {
		serial.Next()
	}
	want = serial.Stats()

	conc := MustPlan(cfg)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				conc.Next()
			}
		}()
	}
	wg.Wait()
	if got := conc.Stats(); got != want {
		t.Fatalf("concurrent draw multiset %+v differs from serial %+v", got, want)
	}
}

func TestPlanValidation(t *testing.T) {
	cases := []Config{
		{ErrorP: -0.1},
		{ErrorP: 1.5},
		{ErrorP: 0.6, HangP: 0.6},
		{LatencyP: 0.1}, // no Latency duration
	}
	for i, cfg := range cases {
		if _, err := NewPlan(cfg); err == nil {
			t.Errorf("config %d (%+v) accepted, want validation error", i, cfg)
		}
	}
	if _, err := NewPlan(Config{ErrorP: 0.5, HangP: 0.5}); err != nil {
		t.Errorf("probabilities summing to exactly 1 rejected: %v", err)
	}
}

func TestFailFirstThenScriptThenDraws(t *testing.T) {
	p := MustPlan(Config{
		FailFirst: 2,
		Script:    []Fault{{Kind: Corrupt}, {Kind: Latency, Delay: time.Millisecond}},
		// All probabilities zero: after the script, everything is None.
	})
	want := []Kind{Error, Error, Corrupt, Latency, None, None}
	got := drawKinds(p, len(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw sequence = %v, want %v", got, want)
		}
	}
	st := p.Stats()
	if st.Ops != 6 || st.Errors != 2 || st.Corrupts != 1 || st.Delays != 1 || st.Injected() != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestScriptLatencyInheritsConfigDelay(t *testing.T) {
	p := MustPlan(Config{Script: []Fault{{Kind: Latency}}, Latency: 5 * time.Millisecond})
	if f := p.Next(); f.Kind != Latency || f.Delay != 5*time.Millisecond {
		t.Fatalf("scripted latency fault = %+v, want config Latency filled in", f)
	}
}

func TestProbabilisticRate(t *testing.T) {
	p := MustPlan(Config{Seed: 1, ErrorP: 0.5})
	const n = 2000
	for i := 0; i < n; i++ {
		p.Next()
	}
	st := p.Stats()
	if st.Errors < n*4/10 || st.Errors > n*6/10 {
		t.Fatalf("ErrorP=0.5 injected %d/%d errors — draw stream biased", st.Errors, n)
	}
}

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig("seed=7,failfirst=3,error=0.2,hang=0.01,corrupt=0.1,truncate=0.05,latency=0.3:20ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, FailFirst: 3, ErrorP: 0.2, HangP: 0.01, CorruptP: 0.1, TruncateP: 0.05, LatencyP: 0.3, Latency: 20 * time.Millisecond}
	if cfg.Seed != want.Seed || cfg.FailFirst != want.FailFirst ||
		cfg.ErrorP != want.ErrorP || cfg.HangP != want.HangP ||
		cfg.CorruptP != want.CorruptP || cfg.TruncateP != want.TruncateP ||
		cfg.LatencyP != want.LatencyP || cfg.Latency != want.Latency {
		t.Fatalf("parsed %+v, want %+v", cfg, want)
	}
	// Whitespace and empty entries are tolerated; the result must be a
	// valid plan.
	if _, err := ParseConfig(" seed=1 , error=0.1 ,"); err != nil {
		t.Fatalf("spaced spec rejected: %v", err)
	}

	for _, bad := range []string{
		"frobnicate=1",   // unknown key
		"error",          // no value
		"error=lots",     // bad float
		"latency=0.1",    // missing duration
		"latency=0.1:ns", // bad duration
		"seed=-1",        // negative seed
	} {
		if _, err := ParseConfig(bad); err == nil {
			t.Errorf("spec %q accepted, want error", bad)
		}
	}
}

func TestSleepInterruptible(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep under cancelled ctx = %v, want Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep did not return promptly on cancellation")
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("zero-duration sleep: %v", err)
	}
}

// --- Store seam ---

func storeKey(s string) curvestore.Key {
	var k curvestore.Key
	copy(k[:], s)
	return k
}

func testFamily() *core.Family {
	return &core.Family{
		Label: "faultz", TheoreticalBW: 100,
		Curves: []core.Curve{{ReadRatio: 1, Points: []core.Point{{BW: 1, Latency: 90}, {BW: 50, Latency: 150}}}},
	}
}

func TestStoreInjectsAndRecovers(t *testing.T) {
	inner := curvestore.NewMemory(8)
	key := storeKey("k1")
	if err := inner.Save(context.Background(), key, testFamily()); err != nil {
		t.Fatal(err)
	}
	s := NewStore(inner, MustPlan(Config{FailFirst: 2}))

	// First two operations fail with ErrInjected; afterwards the store
	// recovers and serves the inner tier untouched.
	if _, _, err := s.Load(context.Background(), key); !errors.Is(err, ErrInjected) {
		t.Fatalf("first load err = %v, want ErrInjected", err)
	}
	if err := s.Save(context.Background(), key, testFamily()); !errors.Is(err, ErrInjected) {
		t.Fatalf("second op err = %v, want ErrInjected", err)
	}
	fam, ok, err := s.Load(context.Background(), key)
	if err != nil || !ok || fam.Label != "faultz" {
		t.Fatalf("post-recovery load: fam=%v ok=%v err=%v", fam, ok, err)
	}
}

func TestStoreHangHonoursContext(t *testing.T) {
	s := NewStore(curvestore.NewMemory(8), MustPlan(Config{Script: []Fault{{Kind: Hang}}}))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := s.Load(ctx, storeKey("k"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung load err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("hang outlived its context by seconds")
	}
}

// --- HTTP seam ---

func transportClient(plan *Plan) *http.Client {
	return &http.Client{Transport: NewTransport(nil, plan)}
}

func TestTransportError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "payload")
	}))
	defer ts.Close()

	hc := transportClient(MustPlan(Config{Script: []Fault{{Kind: Error}}}))
	if _, err := hc.Get(ts.URL); err == nil || !strings.Contains(err.Error(), "injected dial failure") {
		t.Fatalf("err = %v, want injected dial failure", err)
	}
	// The next request sails through.
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "payload" {
		t.Fatalf("post-fault body = %q", body)
	}
}

func TestTransportCorruptAndTruncate(t *testing.T) {
	const payload = "0123456789abcdef0123456789abcdef"
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer ts.Close()

	hc := transportClient(MustPlan(Config{Script: []Fault{{Kind: Corrupt}, {Kind: Truncate}}}))

	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) == payload {
		t.Fatal("corrupt fault left the body intact")
	}
	if len(body) != len(payload) {
		t.Fatalf("corrupt fault changed the length: %d vs %d", len(body), len(payload))
	}

	resp, err = hc.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(body) != len(payload)/2 {
		t.Fatalf("truncate fault produced %d bytes, want %d", len(body), len(payload)/2)
	}
	if resp.ContentLength != int64(len(payload)/2) {
		t.Fatalf("truncate fault left ContentLength at %d", resp.ContentLength)
	}
}

func TestTransportHangHonoursContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()

	hc := transportClient(MustPlan(Config{Script: []Fault{{Kind: Hang}}}))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	start := time.Now()
	if _, err := hc.Do(req); err == nil {
		t.Fatal("hung request returned without error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("hang outlived its context by seconds")
	}
}
