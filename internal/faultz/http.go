package faultz

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// Transport wraps an http.RoundTripper, consuming one plan draw per
// request. It is the HTTP-seam twin of Store: Error surfaces as a
// transport error (which the curve-store client retries, then fails soft),
// Latency delays the round trip, Hang parks it until the request context
// is cancelled, and Corrupt/Truncate mangle the *response body* after a
// successful round trip — the case that proves the client verifies what it
// downloads instead of trusting the wire.
//
// Request bodies are never touched: an upload corrupted in flight is the
// server's Content-SHA256 check's job, and that path is already pinned by
// the curvestore tests.
type Transport struct {
	base http.RoundTripper
	plan *Plan
}

// NewTransport interposes plan in front of base (nil base means
// http.DefaultTransport).
func NewTransport(base http.RoundTripper, plan *Plan) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, plan: plan}
}

// netError is the injected transport failure; Timeout/Temporary mark it
// retryable the way real dial/read errors are.
type netError struct{ op string }

func (e *netError) Error() string   { return "faultz: injected " + e.op + " failure" }
func (e *netError) Timeout() bool   { return false }
func (e *netError) Temporary() bool { return true }

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	ctx := req.Context()
	f := t.plan.Next()
	switch f.Kind {
	case Error:
		// A request that never reached the server: the body (if any) must
		// still be closed, as the real transport would on a dial failure.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &netError{op: "dial"}
	case Hang:
		if req.Body != nil {
			defer req.Body.Close()
		}
		<-ctx.Done()
		return nil, ctx.Err()
	case Latency:
		if err := Sleep(ctx, f.Delay); err != nil {
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, err
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}
	switch f.Kind {
	case Corrupt:
		return mangle(resp, flipBytes)
	case Truncate:
		return mangle(resp, func(b []byte) []byte { return b[:len(b)/2] })
	}
	return resp, nil
}

// mangle buffers the response body, rewrites it with fn, and fixes up the
// framing headers so the damage models payload corruption, not protocol
// corruption.
func mangle(resp *http.Response, fn func([]byte) []byte) (*http.Response, error) {
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("faultz: buffering body to corrupt it: %w", err)
	}
	out := fn(body)
	resp.Body = io.NopCloser(bytes.NewReader(out))
	resp.ContentLength = int64(len(out))
	if resp.Header.Get("Content-Length") != "" {
		resp.Header.Set("Content-Length", strconv.Itoa(len(out)))
	}
	return resp, nil
}

// flipBytes inverts a scattering of bytes — enough that any integrity
// check must catch it, spaced so short and long bodies are both hit.
func flipBytes(b []byte) []byte {
	if len(b) == 0 {
		return b
	}
	out := append([]byte(nil), b...)
	step := len(out)/8 + 1
	for i := 0; i < len(out); i += step {
		out[i] ^= 0xff
	}
	return out
}
