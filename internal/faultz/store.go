package faultz

import (
	"context"
	"fmt"

	"github.com/mess-sim/mess/internal/core"
	"github.com/mess-sim/mess/internal/curvestore"
)

// Store wraps a curvestore tier, consuming one plan draw per Load/Save.
// Faults map onto the tier contract the callers above are built against:
// Error, Corrupt and Truncate read as a present-but-unreadable tier (an
// error, which Tiered and charz treat as a miss), Latency delays the
// operation context-interruptibly, and Hang parks it until the caller's
// context is cancelled — exactly what a wedged NFS mount or half-dead
// server does.
type Store struct {
	inner curvestore.Store
	plan  *Plan
}

// NewStore interposes plan in front of inner.
func NewStore(inner curvestore.Store, plan *Plan) *Store {
	return &Store{inner: inner, plan: plan}
}

// apply draws and executes one fault; a non-nil error aborts the
// operation.
func (s *Store) apply(ctx context.Context, op string) error {
	f := s.plan.Next()
	switch f.Kind {
	case Error:
		return fmt.Errorf("%w: %s error", ErrInjected, op)
	case Corrupt:
		return fmt.Errorf("%w: %s corrupt entry", ErrInjected, op)
	case Truncate:
		return fmt.Errorf("%w: %s truncated entry", ErrInjected, op)
	case Latency:
		return Sleep(ctx, f.Delay)
	case Hang:
		<-ctx.Done()
		return ctx.Err()
	}
	return nil
}

// Load implements curvestore.Store.
func (s *Store) Load(ctx context.Context, key curvestore.Key) (*core.Family, bool, error) {
	if err := s.apply(ctx, "load"); err != nil {
		return nil, false, err
	}
	return s.inner.Load(ctx, key)
}

// Save implements curvestore.Store.
func (s *Store) Save(ctx context.Context, key curvestore.Key, fam *core.Family) error {
	if err := s.apply(ctx, "save"); err != nil {
		return err
	}
	return s.inner.Save(ctx, key, fam)
}
