package cxl

import (
	"github.com/mess-sim/mess/internal/core"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// Optane models an Intel Optane DC persistent-memory module in App Direct
// mode — the other non-DDR technology the Mess simulator release supports
// (footnote 3 of the paper: curves measured on a Cascade Lake server with
// 2×128 GB modules). Like the CXL expander, it lives in this package
// because it is characterized device-level and consumed through curves.
//
// The well-documented Optane behaviours the model encodes (Izraelevitz et
// al., "Basic Performance Measurements of the Intel Optane DC Persistent
// Memory Module"; Yang et al., FAST'20):
//   - idle read latency ≈ 170 ns at the module, far above DRAM;
//   - read bandwidth ≈ 6.6 GB/s per module, write ≈ 2.3 GB/s — strongly
//     asymmetric, unlike any DRAM;
//   - 256-byte internal access granularity: the on-module buffer merges
//     64-byte lines, so random traffic wastes device bandwidth;
//   - mixed read/write traffic interferes severely (writes stall reads in
//     the module's internal controller).
type Optane struct {
	eng *sim.Engine
	cfg OptaneConfig

	tag      int32
	complete completeFunc

	readFree  sim.Time
	writeFree sim.Time
}

// OptaneConfig parameterizes the module set.
type OptaneConfig struct {
	Modules      int
	ReadGBs      float64  // per-module sustained read bandwidth
	WriteGBs     float64  // per-module sustained write bandwidth
	ReadLatency  sim.Time // idle read latency at the module
	WriteLatency sim.Time // write acceptance latency (ADR buffered)
	// WriteStall is the extra read delay while writes drain: the
	// module's internal controller prioritizes its write buffer.
	WriteStall sim.Time
}

// DefaultOptane matches the paper's 2×128 GB App Direct setup.
func DefaultOptane() OptaneConfig {
	return OptaneConfig{
		Modules:      2,
		ReadGBs:      6.6,
		WriteGBs:     2.3,
		ReadLatency:  sim.FromNanoseconds(170),
		WriteLatency: sim.FromNanoseconds(94),
		WriteStall:   sim.FromNanoseconds(60),
	}
}

// NewOptane builds the module-set model.
func NewOptane(eng *sim.Engine, cfg OptaneConfig) *Optane {
	if cfg.Modules <= 0 {
		cfg.Modules = 1
	}
	o := &Optane{eng: eng, cfg: cfg, tag: DevTagBase}
	o.complete = func(req *mem.Request, at sim.Time) { req.CompleteAtTagged(o.eng, at, o.tag) }
	return o
}

// SetTag assigns the completion-entity tag (default DevTagBase); see
// Expander.SetTag.
func (o *Optane) SetTag(tag int32) { o.tag = tag }

// MinLookahead is the decision-to-completion slack: Access commits each
// completion no less than the relevant module latency before it lands —
// start ≥ now, so writes land ≥ WriteLatency and reads ≥ ReadLatency
// after the deciding instant.
func (o *Optane) MinLookahead() sim.Time {
	if o.cfg.WriteLatency < o.cfg.ReadLatency {
		return o.cfg.WriteLatency
	}
	return o.cfg.ReadLatency
}

func (o *Optane) setComplete(fn completeFunc) { o.complete = fn }
func (o *Optane) completionTag() int32        { return o.tag }

// MaxReadGBs reports the aggregate sustained read bandwidth.
func (o *Optane) MaxReadGBs() float64 { return o.cfg.ReadGBs * float64(o.cfg.Modules) }

// Access implements mem.Backend. Reads and writes occupy separate internal
// engines (the module pipelines them independently up to their asymmetric
// bandwidths), but pending writes stall reads.
func (o *Optane) Access(req *mem.Request) {
	now := o.eng.Now()
	bytes := float64(req.Bytes())
	if req.Op == mem.Write {
		svc := sim.FromNanoseconds(bytes / (o.cfg.WriteGBs * float64(o.cfg.Modules)))
		start := maxT(now, o.writeFree)
		o.writeFree = start + svc
		o.complete(req, start+o.cfg.WriteLatency)
		return
	}
	svc := sim.FromNanoseconds(bytes / (o.cfg.ReadGBs * float64(o.cfg.Modules)))
	start := maxT(now, o.readFree)
	// Reads behind a busy write buffer pay the interference penalty.
	if o.writeFree > now {
		start += o.cfg.WriteStall
	}
	o.readFree = start + svc
	o.complete(req, start+svc+o.cfg.ReadLatency)
}

func maxT(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

// OptaneFamily measures the module set's bandwidth–latency curves with the
// device-level sweep, ready for the Mess simulator.
func OptaneFamily(opt SweepOptions) *core.Family {
	cfg := DefaultOptane()
	peak := cfg.ReadGBs * float64(cfg.Modules)
	return MeasureFamily(func(eng *sim.Engine) mem.Backend {
		return NewOptane(eng, cfg)
	}, "Intel Optane DC (App Direct)", peak, opt)
}

var _ mem.Backend = (*Optane)(nil)
