package cxl

import (
	"testing"

	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.TxGBs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero link bandwidth accepted")
	}
}

func TestMaxTheoretical(t *testing.T) {
	cfg := Default()
	got := cfg.MaxTheoreticalGBs()
	// The paper's device: 43.6 GB/s best-mix maximum.
	if got < 41 || got > 46 {
		t.Fatalf("max theoretical = %.1f GB/s, want ≈43.6", got)
	}
}

func TestUnloadedReadLatency(t *testing.T) {
	eng := sim.New()
	e := New(eng, Default())
	var lat sim.Time
	e.Access(&mem.Request{Addr: 0, Op: mem.Read, Done: func(at sim.Time, _ *mem.Request) { lat = at }})
	eng.Run()
	ns := lat.Nanoseconds()
	// Two propagation crossings + DDR access + flit time: ≈190 ns.
	if ns < 150 || ns > 260 {
		t.Fatalf("unloaded CXL read latency = %.0f ns, want ≈190", ns)
	}
}

// pump injects open-loop traffic with the given write fraction at maximum
// rate (bounded outstanding) and returns achieved GB/s.
func pump(writeFrac float64, dur sim.Time) float64 {
	eng := sim.New()
	e := New(eng, Default())
	outstanding := 0
	completed := 0
	var line uint64
	acc := 0.0
	var inject func()
	inject = func() {
		if eng.Now() >= dur {
			return
		}
		for outstanding < 192 {
			acc += writeFrac
			op := mem.Read
			if acc >= 1 {
				acc--
				op = mem.Write
			}
			addr := (line%8)*(1<<28+16<<10) + (line/8)*mem.LineSize
			line++
			outstanding++
			e.Access(&mem.Request{Addr: addr, Op: op, Done: func(_ sim.Time, _ *mem.Request) {
				outstanding--
				completed++
				inject()
			}})
		}
	}
	inject()
	eng.RunUntil(dur)
	return float64(completed*mem.LineSize) / dur.Seconds() / 1e9
}

func TestFullDuplexSignature(t *testing.T) {
	dur := 200 * sim.Microsecond
	pureRead := pump(0, dur)
	pureWrite := pump(1, dur)
	balanced := pump(0.5, dur)
	// The paper's headline CXL behaviour: balanced traffic beats both
	// pure directions, which saturate one link each (Sec. V-C).
	if balanced <= pureRead*1.15 {
		t.Fatalf("balanced %.1f GB/s not clearly above pure-read %.1f", balanced, pureRead)
	}
	if balanced <= pureWrite*1.15 {
		t.Fatalf("balanced %.1f GB/s not clearly above pure-write %.1f", balanced, pureWrite)
	}
	cfg := Default()
	// Single-direction traffic is link-limited near TxGBs/RxGBs.
	if pureRead > cfg.RxGBs*1.1 {
		t.Fatalf("pure-read %.1f exceeds RX link %.1f", pureRead, cfg.RxGBs)
	}
	if balanced > cfg.MaxTheoreticalGBs()*1.05 {
		t.Fatalf("balanced %.1f exceeds device maximum %.1f", balanced, cfg.MaxTheoreticalGBs())
	}
}

func quickSweep() SweepOptions {
	return SweepOptions{
		WriteFractions: []float64{0, 0.5, 1.0},
		RatesGBs:       []float64{2, 10, 20, 30, 40, 48},
		Warmup:         6 * sim.Microsecond,
		Measure:        20 * sim.Microsecond,
	}
}

func TestFamilyShape(t *testing.T) {
	fam := Family(quickSweep())
	if err := fam.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(fam.Curves) != 3 {
		t.Fatalf("curves = %d", len(fam.Curves))
	}
	balanced := fam.Nearest(0.5)
	pureRead := fam.Nearest(1.0)
	pureWrite := fam.Nearest(0.0)
	if balanced.MaxBW() <= pureRead.MaxBW() || balanced.MaxBW() <= pureWrite.MaxBW() {
		t.Fatalf("family lost the full-duplex signature: balanced %.1f, read %.1f, write %.1f",
			balanced.MaxBW(), pureRead.MaxBW(), pureWrite.MaxBW())
	}
	// Latency grows with load on every curve.
	for _, c := range fam.Curves {
		if c.MaxLatency() <= c.UnloadedLatency()*1.2 {
			t.Errorf("curve ratio %.2f shows no load sensitivity", c.ReadRatio)
		}
	}
}

func TestRemoteSocketContrast(t *testing.T) {
	cxlFam := Family(quickSweep())
	remote := RemoteSocketFamily(quickSweep())
	// Appendix B: the remote socket has a higher unloaded latency (≈28 ns
	// in the paper) but a higher saturated bandwidth than the CXL device.
	cxlRead := cxlFam.Nearest(1.0)
	remRead := remote.Nearest(1.0)
	dLat := remRead.UnloadedLatency() - cxlRead.UnloadedLatency()
	if dLat < 10 || dLat > 60 {
		t.Fatalf("remote−CXL unloaded latency delta = %.0f ns, want ≈28", dLat)
	}
	if remRead.MaxBW() <= cxlRead.MaxBW() {
		t.Fatalf("remote socket max BW %.1f not above CXL %.1f", remRead.MaxBW(), cxlRead.MaxBW())
	}
}
