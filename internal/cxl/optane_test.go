package cxl

import (
	"testing"

	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

func TestOptaneIdleReadLatency(t *testing.T) {
	eng := sim.New()
	o := NewOptane(eng, DefaultOptane())
	var lat sim.Time
	o.Access(&mem.Request{Addr: 0, Op: mem.Read, Done: func(at sim.Time, _ *mem.Request) { lat = at }})
	eng.Run()
	ns := lat.Nanoseconds()
	if ns < 165 || ns > 190 {
		t.Fatalf("Optane idle read latency = %.0f ns, want ≈170", ns)
	}
}

func optanePump(writeFrac float64) (readBW, writeBW float64) {
	eng := sim.New()
	o := NewOptane(eng, DefaultOptane())
	dur := 200 * sim.Microsecond
	outstanding := 0
	var rbytes, wbytes uint64
	var line uint64
	acc := 0.0
	var inject func()
	inject = func() {
		for outstanding < 64 && eng.Now() < dur {
			acc += writeFrac
			op := mem.Read
			if acc >= 1 {
				acc--
				op = mem.Write
			}
			addr := (line % (1 << 22)) * mem.LineSize
			line++
			outstanding++
			o.Access(&mem.Request{Addr: addr, Op: op, Done: func(_ sim.Time, _ *mem.Request) {
				outstanding--
				if op == mem.Read {
					rbytes += mem.LineSize
				} else {
					wbytes += mem.LineSize
				}
				inject()
			}})
		}
	}
	inject()
	eng.RunUntil(dur)
	return float64(rbytes) / dur.Seconds() / 1e9, float64(wbytes) / dur.Seconds() / 1e9
}

func TestOptaneAsymmetricBandwidth(t *testing.T) {
	cfg := DefaultOptane()
	readBW, _ := optanePump(0)
	_, writeBW := optanePump(1)
	maxRead := cfg.ReadGBs * float64(cfg.Modules)
	maxWrite := cfg.WriteGBs * float64(cfg.Modules)
	if readBW < 0.85*maxRead || readBW > 1.05*maxRead {
		t.Fatalf("Optane read bandwidth %.1f GB/s, want ≈%.1f", readBW, maxRead)
	}
	if writeBW < 0.85*maxWrite || writeBW > 1.05*maxWrite {
		t.Fatalf("Optane write bandwidth %.1f GB/s, want ≈%.1f", writeBW, maxWrite)
	}
	if writeBW > readBW {
		t.Fatal("Optane asymmetry inverted")
	}
}

func TestOptaneFamilyShape(t *testing.T) {
	fam := OptaneFamily(SweepOptions{
		WriteFractions: []float64{0, 0.5},
		RatesGBs:       []float64{1, 3, 6, 9, 12, 15},
		Warmup:         6 * sim.Microsecond,
		Measure:        20 * sim.Microsecond,
	})
	if err := fam.Validate(); err != nil {
		t.Fatal(err)
	}
	pureRead := fam.Nearest(1.0)
	mixed := fam.Nearest(0.5)
	// DRAM-unlike: mixed traffic saturates far below pure reads (the
	// write engine is the bottleneck), and the unloaded latency is far
	// above any DRAM in Table I.
	if mixed.MaxBW() > 0.8*pureRead.MaxBW() {
		t.Fatalf("Optane mixed max BW %.1f not well below pure-read %.1f", mixed.MaxBW(), pureRead.MaxBW())
	}
	if u := pureRead.UnloadedLatency(); u < 160 {
		t.Fatalf("Optane unloaded latency %.0f ns too low", u)
	}
}
