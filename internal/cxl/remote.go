package cxl

import (
	"github.com/mess-sim/mess/internal/core"
	"github.com/mess-sim/mess/internal/dram"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// RemoteSocket models the industrial CXL-emulation practice the paper's
// Appendix B evaluates: using the second socket of a dual-socket server as
// a CPU-less memory expander. Requests cross the inter-socket interconnect
// (UPI-class, adding latency in both directions) into a full DDR memory
// system — more channels and banks than the CXL device, hence a higher
// saturated-bandwidth range, but a higher unloaded latency (the paper
// measures ≈28 ns over the CXL device at low load).
type RemoteSocket struct {
	eng    *sim.Engine
	hop    sim.Time
	ddr    *dram.System
	peak   float64
	pool   *mem.RequestPool
	doneFn mem.DoneFunc

	tag      int32
	complete completeFunc
}

// RemoteSocketConfig parameterizes the emulation.
type RemoteSocketConfig struct {
	// HopOneWay is the inter-socket interconnect latency per direction.
	HopOneWay sim.Time
	// DDR is the remote socket's memory system.
	DDR dram.Config
}

// DefaultRemoteSocket matches the Appendix-B setup: the remote socket of a
// Skylake-class server, reached over a ≈65 ns one-way hop, with its memory
// population trimmed so the remote bandwidth exceeds the CXL device's
// saturated range but stays in the same class (the paper's emulation
// reaches higher bandwidth than the target CXL device).
func DefaultRemoteSocket() RemoteSocketConfig {
	ddr := dram.DDR4(2666, 2, 1)
	ddr.CtrlLatency = sim.FromNanoseconds(8)
	ddr.IdleClose = 250 * sim.Nanosecond
	return RemoteSocketConfig{
		HopOneWay: sim.FromNanoseconds(92),
		DDR:       ddr,
	}
}

// NewRemoteSocket builds the model.
func NewRemoteSocket(eng *sim.Engine, cfg RemoteSocketConfig) *RemoteSocket {
	r := &RemoteSocket{
		eng:  eng,
		hop:  cfg.HopOneWay,
		ddr:  dram.New(eng, cfg.DDR),
		peak: cfg.DDR.PeakBandwidthGBs(),
		pool: mem.NewRequestPool(),
		tag:  DevTagBase,
	}
	r.doneFn = r.remoteDone
	r.complete = func(req *mem.Request, at sim.Time) { req.CompleteAtTagged(r.eng, at, r.tag) }
	return r
}

// SetTag assigns the completion-entity tag (default DevTagBase); see
// Expander.SetTag.
func (r *RemoteSocket) SetTag(tag int32) { r.tag = tag }

// MinLookahead is the decision-to-completion slack: remoteDone commits
// each completion exactly one inter-socket hop before it lands.
func (r *RemoteSocket) MinLookahead() sim.Time { return r.hop }

func (r *RemoteSocket) setComplete(fn completeFunc) { r.complete = fn }
func (r *RemoteSocket) completionTag() int32        { return r.tag }

// PeakBandwidthGBs reports the remote memory's theoretical bandwidth.
func (r *RemoteSocket) PeakBandwidthGBs() float64 { return r.peak }

// Access implements mem.Backend: a hop out, the remote DDR access, a hop
// back. The socket-side transaction is a pooled inner request linked to
// the host request via Parent.
func (r *RemoteSocket) Access(req *mem.Request) {
	inner := r.pool.Get(req.Addr, req.Op, r.doneFn)
	inner.Src = req.Src
	inner.Parent = req
	inner.SendAt(r.eng, r.ddr, r.eng.Now()+r.hop)
}

// remoteDone completes the host request one hop after the remote DDR does.
func (r *RemoteSocket) remoteDone(ddrDone sim.Time, inner *mem.Request) {
	r.complete(inner.Parent, ddrDone+r.hop)
}

// RemoteSocketFamily measures the remote-socket emulation's curves with the
// same device-level sweep used for the CXL expander, so the two are
// directly comparable (Fig. 17).
func RemoteSocketFamily(opt SweepOptions) *core.Family {
	cfg := DefaultRemoteSocket()
	peak := cfg.DDR.PeakBandwidthGBs()
	return MeasureFamily(func(eng *sim.Engine) mem.Backend {
		return NewRemoteSocket(eng, cfg)
	}, "Remote-socket emulation", peak, opt)
}

var _ mem.Backend = (*RemoteSocket)(nil)
