package cxl

import (
	"fmt"
	"testing"

	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// completionRec is one observed completion on the home engine: the fire
// instant plus enough request identity to detect any reordering.
type completionRec struct {
	at   sim.Time
	addr uint64
	op   mem.Op
}

// driveDevice saturates the backend from the home engine with a mixed
// read/write xorshift walk and returns the completion trace. hop is the
// host-side flight time of every issue — the home shard's outbound
// lookahead under sharding, and the identical delivery delay of the
// unsharded reference leg (mem.TimedOn).
func driveDevice(t *testing.T, eng *sim.Engine, run func(), backend mem.TimedBackend, hop sim.Time, n int) []completionRec {
	t.Helper()
	pool := mem.NewRequestPool()
	trace := make([]completionRec, 0, n)
	rng := uint64(0x9e3779b97f4a7c15)
	line := uint64(0)
	completed, target := 0, n
	var issue func()
	var done mem.DoneFunc
	done = func(at sim.Time, req *mem.Request) {
		trace = append(trace, completionRec{eng.Now(), req.Addr, req.Op})
		completed++
		if completed < target {
			issue()
		}
	}
	issue = func() {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		addr := rng % (1 << 30) &^ 63
		op := mem.Read
		if line%3 == 2 {
			op = mem.Write
		}
		line++
		req := pool.Get(addr, op, done)
		backend.AccessAt(req, eng.Now()+hop)
	}
	for i := 0; i < 64; i++ {
		issue()
	}
	run()
	if completed < target {
		t.Fatalf("completed %d of %d requests", completed, target)
	}
	if live := pool.Live(); live != 0 {
		t.Fatalf("%d requests still live after drain", live)
	}
	return trace
}

func diffTraces(t *testing.T, label string, ref, got []completionRec) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: trace length %d, want %d", label, len(got), len(ref))
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("%s: completion %d = %+v, want %+v", label, i, got[i], ref[i])
		}
	}
}

// TestShardedExpanderMatchesUnsharded is the device-shard bit-exactness
// gate for the CXL expander: the device (with its inner DDR system) on
// its own shard engine must complete every host request at the same
// instant and in the same order as the single-engine run, for 2–4
// shards and any placement.
func TestShardedExpanderMatchesUnsharded(t *testing.T) {
	cfg := Default()
	hop := sim.FromNanoseconds(15)
	const n = 6000

	eng := sim.New()
	dev := New(eng, cfg)
	ref := driveDevice(t, eng, eng.Run, &mem.TimedOn{Eng: eng, Inner: dev}, hop, n)

	for _, shards := range []int{2, 3, 4} {
		group := sim.NewShardGroup(shards)
		sh, _ := NewShardedExpander(group, 0, shards-1, cfg, hop)
		got := driveDevice(t, group.Engine(0), group.Run, sh, hop, n)
		group.Close()
		diffTraces(t, fmt.Sprintf("expander shards=%d", shards), ref, got)
	}
}

// TestShardedRemoteSocketMatchesUnsharded is the same gate for the
// remote-socket emulation.
func TestShardedRemoteSocketMatchesUnsharded(t *testing.T) {
	cfg := DefaultRemoteSocket()
	hop := sim.FromNanoseconds(15)
	const n = 6000

	eng := sim.New()
	dev := NewRemoteSocket(eng, cfg)
	ref := driveDevice(t, eng, eng.Run, &mem.TimedOn{Eng: eng, Inner: dev}, hop, n)

	for _, shards := range []int{2, 3, 4} {
		group := sim.NewShardGroup(shards)
		sh, _ := NewShardedRemoteSocket(group, 0, 1, cfg, hop)
		got := driveDevice(t, group.Engine(0), group.Run, sh, hop, n)
		group.Close()
		diffTraces(t, fmt.Sprintf("remote shards=%d", shards), ref, got)
	}
}

// TestShardedOptaneMatchesUnsharded covers the third device model; the
// Optane module's write acceptance (94 ns) is the smallest lookahead of
// the three, so its windows are the tightest.
func TestShardedOptaneMatchesUnsharded(t *testing.T) {
	cfg := DefaultOptane()
	hop := sim.FromNanoseconds(15)
	const n = 6000

	eng := sim.New()
	dev := NewOptane(eng, cfg)
	ref := driveDevice(t, eng, eng.Run, &mem.TimedOn{Eng: eng, Inner: dev}, hop, n)

	group := sim.NewShardGroup(2)
	defer group.Close()
	sh, _ := NewShardedOptane(group, 0, 1, cfg, hop)
	got := driveDevice(t, group.Engine(0), group.Run, sh, hop, n)
	diffTraces(t, "optane shards=2", ref, got)
}

// addrRouter splits traffic between two timed backends on an address
// bit — the two-device topology of the randomized-placement test.
type addrRouter struct {
	a, b mem.TimedBackend
}

func (r *addrRouter) Access(*mem.Request) { panic("addrRouter: use AccessAt") }
func (r *addrRouter) AccessAt(req *mem.Request, at sim.Time) {
	if req.Addr&(1<<20) != 0 {
		r.b.AccessAt(req, at)
		return
	}
	r.a.AccessAt(req, at)
}

// TestShardedDeviceRandomPlacements runs an expander + remote-socket
// topology with randomized shard counts and device→shard placements —
// including both devices packed on one shard — and asserts placement is
// execution-only: every trial reproduces the single-engine trace byte
// for byte. The devices carry distinct completion tags in both legs so
// equal-instant completions of different devices keep one deterministic
// order.
func TestShardedDeviceRandomPlacements(t *testing.T) {
	ecfg := Default()
	rcfg := DefaultRemoteSocket()
	hop := sim.FromNanoseconds(15)
	const n = 5000

	eng := sim.New()
	exp := New(eng, ecfg)
	exp.SetTag(DevTagBase)
	rem := NewRemoteSocket(eng, rcfg)
	rem.SetTag(DevTagBase + 1)
	ref := driveDevice(t, eng, eng.Run, &addrRouter{
		a: &mem.TimedOn{Eng: eng, Inner: exp},
		b: &mem.TimedOn{Eng: eng, Inner: rem},
	}, hop, n)

	rng := uint64(0x2545f4914f6cdd1d)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	for trial := 0; trial < 5; trial++ {
		shards := 2 + next(3) // 2..4 shards: home plus 1..3 device shards
		shA := 1 + next(shards-1)
		shB := 1 + next(shards-1) // may equal shA: devices sharing a shard
		group := sim.NewShardGroup(shards)
		sa, ea := NewShardedExpander(group, 0, shA, ecfg, hop)
		ea.SetTag(DevTagBase)
		sb, eb := NewShardedRemoteSocket(group, 0, shB, rcfg, hop)
		eb.SetTag(DevTagBase + 1)
		got := driveDevice(t, group.Engine(0), group.Run, &addrRouter{a: sa, b: sb}, hop, n)
		group.Close()
		diffTraces(t, fmt.Sprintf("trial %d shards=%d expander@%d remote@%d", trial, shards, shA, shB), ref, got)
	}
}

// TestShardedDeviceGuards pins the misuse panics: an untimed Access has
// no conservative window to cross shards in, a home-shard placement
// would run the device on the issuing goroutine, and a zero hop leaves
// the home shard no lookahead.
func TestShardedDeviceGuards(t *testing.T) {
	expectPanic(t, "untimed Access", func() {
		group := sim.NewShardGroup(2)
		defer group.Close()
		sh, _ := NewShardedExpander(group, 0, 1, Default(), sim.FromNanoseconds(15))
		sh.Access(&mem.Request{Addr: 0, Op: mem.Read})
	})
	expectPanic(t, "device on home shard", func() {
		group := sim.NewShardGroup(2)
		defer group.Close()
		NewShardedExpander(group, 0, 0, Default(), sim.FromNanoseconds(15))
	})
	expectPanic(t, "zero hop", func() {
		group := sim.NewShardGroup(2)
		defer group.Close()
		NewShardedExpander(group, 0, 1, Default(), 0)
	})
}

func expectPanic(t *testing.T, label string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", label)
		}
	}()
	fn()
}
