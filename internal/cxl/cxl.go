// Package cxl models a CXL memory expander (Sec. V-C of the paper): a
// full-duplex CXL 2.0 / PCIe-5 ×8 link in front of a single-controller
// DDR5-5600 device, standing in for the manufacturer's proprietary SystemC
// model.
//
// The architectural property the paper highlights is reproduced
// structurally: the link has independent transmit (host→device) and
// receive (device→host) directions. Read traffic moves request flits over
// TX and data flits over RX; write traffic moves data over TX and
// completions over RX. Balanced read/write mixes therefore use both
// directions and saturate at the DDR device's limit, while 100%-read or
// 100%-write traffic saturates one direction early and collapses — the
// inverse of DDR behaviour, and the paper's headline CXL finding.
package cxl

import (
	"fmt"

	"github.com/mess-sim/mess/internal/dram"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// Config describes the expander.
type Config struct {
	// TxGBs and RxGBs are the effective per-direction link bandwidths
	// (payload, after protocol overheads). A PCIe 5.0 ×8 port moves
	// 32 GB/s raw per direction; ≈27 GB/s is realistic for CXL.mem data.
	TxGBs float64
	RxGBs float64
	// HeaderBytes is the flit overhead accompanying every transfer.
	HeaderBytes int
	// PropagationOneWay is the link + port + controller latency in each
	// direction.
	PropagationOneWay sim.Time
	// DDR is the device-side memory; the paper's device is a DDR5-5600
	// DIMM with two ranks behind one controller.
	DDR dram.Config
}

// Default returns the configuration matching the paper's device: one
// DDR5-5600 DIMM, CXL 2.0 ×8, maximum theoretical throughput ≈43.6 GB/s
// for the best (balanced) traffic mix.
func Default() Config {
	ddr := dram.DDR5(5600, 1, 2)
	ddr.CtrlLatency = sim.FromNanoseconds(8)
	ddr.IdleClose = 250 * sim.Nanosecond
	return Config{
		TxGBs:             27,
		RxGBs:             27,
		HeaderBytes:       16,
		PropagationOneWay: sim.FromNanoseconds(70),
		DDR:               ddr,
	}
}

// Validate reports an error for an unusable configuration.
func (c *Config) Validate() error {
	if c.TxGBs <= 0 || c.RxGBs <= 0 {
		return fmt.Errorf("cxl: link bandwidths must be positive")
	}
	if c.HeaderBytes < 0 {
		return fmt.Errorf("cxl: negative header bytes")
	}
	return c.DDR.Validate()
}

// MaxTheoreticalGBs reports the best-mix throughput bound: the device
// memory peak capped by the sum of what each direction can carry.
func (c *Config) MaxTheoreticalGBs() float64 {
	ddr := c.DDR.PeakBandwidthGBs()
	// Balanced mix: reads ride RX, writes ride TX.
	link := c.TxGBs + c.RxGBs
	if ddr < link {
		return ddr * 0.975 // protocol overhead on the best mix
	}
	return link
}

// DevTagBase is the default completion-entity tag for device models: the
// engine tie-break tag their completions carry on the host engine. It
// sits far above the DRAM channel tags (1..channels) so a device sharing
// a host engine with a memory system never collides; topologies with
// several devices give each its own tag via SetTag.
const DevTagBase int32 = 1 << 16

// completeFunc commits a host request's completion at instant at. The
// default form schedules it on the device's engine (CompleteAtTagged);
// the sharded form carries it across the shard boundary (CompleteVia)
// with the same tag and the decision instant as the tie-break key, which
// is what makes the two runs place it identically in the engine's
// (deadline, key, tag, seq) total order.
type completeFunc func(req *mem.Request, at sim.Time)

// Expander is the device model; it implements mem.Backend. Device-side
// transactions come from the expander's own request pool: each host access
// acquires one inner DDR request linked back via Parent, instead of
// allocating a fresh request plus completion closures per access.
type Expander struct {
	eng  *sim.Engine
	cfg  Config
	ddr  *dram.System
	pool *mem.RequestPool

	readDoneFn  mem.DoneFunc
	writeDoneFn mem.DoneFunc

	tag      int32
	complete completeFunc

	txFree sim.Time
	rxFree sim.Time
}

// New builds an expander on the engine; it panics on invalid configuration.
func New(eng *sim.Engine, cfg Config) *Expander {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	e := &Expander{eng: eng, cfg: cfg, ddr: dram.New(eng, cfg.DDR), pool: mem.NewRequestPool(), tag: DevTagBase}
	e.readDoneFn = e.readDone
	e.writeDoneFn = e.writeDone
	e.complete = func(req *mem.Request, at sim.Time) { req.CompleteAtTagged(e.eng, at, e.tag) }
	return e
}

// SetTag assigns the expander's completion-entity tag (default
// DevTagBase). Topologies with several devices on one host engine give
// each a distinct tag so equal-instant completions keep a deterministic
// order; set it before the first access, and use the same tag in the
// sharded and unsharded legs of any comparison.
func (e *Expander) SetTag(tag int32) { e.tag = tag }

// MinLookahead is the expander's decision-to-completion slack: every
// completion is committed (readDone/writeDone) at least one link
// propagation before the instant it completes at, so a shard hosting the
// expander can promise its sends arrive ≥ PropagationOneWay after its
// clock.
func (e *Expander) MinLookahead() sim.Time { return e.cfg.PropagationOneWay }

func (e *Expander) setComplete(fn completeFunc) { e.complete = fn }
func (e *Expander) completionTag() int32        { return e.tag }

// Config reports the expander configuration.
func (e *Expander) Config() Config { return e.cfg }

// occupyTx reserves the host→device direction for n bytes and returns the
// completion time of the transfer.
func (e *Expander) occupyTx(now sim.Time, n int) sim.Time {
	svc := sim.FromNanoseconds(float64(n) / e.cfg.TxGBs)
	start := now
	if e.txFree > start {
		start = e.txFree
	}
	e.txFree = start + svc
	return e.txFree
}

func (e *Expander) occupyRx(now sim.Time, n int) sim.Time {
	svc := sim.FromNanoseconds(float64(n) / e.cfg.RxGBs)
	start := now
	if e.rxFree > start {
		start = e.rxFree
	}
	e.rxFree = start + svc
	return e.rxFree
}

// Access implements mem.Backend. Latency is measured from the host input
// pins, as the manufacturer's curves are (Fig. 14a).
func (e *Expander) Access(req *mem.Request) {
	now := e.eng.Now()
	prop := e.cfg.PropagationOneWay
	hdr := e.cfg.HeaderBytes
	if req.Op == mem.Read {
		// Request flit over TX, DDR read, data over RX, back to host.
		txDone := e.occupyTx(now, hdr)
		inner := e.pool.Get(req.Addr, mem.Read, e.readDoneFn)
		inner.Src = req.Src
		inner.Parent = req
		inner.SendAt(e.eng, e.ddr, txDone+prop)
		return
	}
	// Write: data over TX, DDR write; completion flit over RX.
	txDone := e.occupyTx(now, req.Bytes()+hdr)
	inner := e.pool.Get(req.Addr, mem.Write, e.writeDoneFn)
	inner.Src = req.Src
	inner.Parent = req
	inner.SendAt(e.eng, e.ddr, txDone+prop)
}

// readDone completes a device-side read: data flits ride RX back to the
// host, then the host request completes (and returns to its pool).
func (e *Expander) readDone(ddrDone sim.Time, inner *mem.Request) {
	host := inner.Parent
	rxDone := e.occupyRx(ddrDone, host.Bytes()+e.cfg.HeaderBytes)
	e.complete(host, rxDone+e.cfg.PropagationOneWay)
}

// writeDone completes a device-side write: the completion flit rides RX.
func (e *Expander) writeDone(ddrDone sim.Time, inner *mem.Request) {
	host := inner.Parent
	rxDone := e.occupyRx(ddrDone, e.cfg.HeaderBytes)
	e.complete(host, rxDone+e.cfg.PropagationOneWay)
}

var _ mem.Backend = (*Expander)(nil)
