package cxl

import (
	"fmt"

	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// shardable is the device-side seam every model in this package exposes:
// a swappable completion hook (the only place a completion instant is
// committed), the entity tag those completions carry, and the model's
// decision-to-completion slack — the lower bound on (completion instant −
// hook call instant) that becomes the device shard's outbound lookahead.
type shardable interface {
	mem.Backend
	setComplete(completeFunc)
	completionTag() int32
	MinLookahead() sim.Time
}

// ShardedDevice puts one device model behind its own shard engine of a
// sim.ShardGroup — the same mem.TimedBackend seam the DRAM channels
// crossed in the sharded memory system. Host-side issues cross home→shard
// with the per-request hop as the delivery delay; completions cross
// shard→home through the device's completion hook, carrying the device's
// entity tag and the decision instant, so the home engine fires them
// exactly where the unsharded run would have (byte-identical completion
// traces).
//
// Device link latencies are large — 70 ns of CXL propagation, 92 ns of
// inter-socket hop, 94 ns of Optane write acceptance — so a device shard
// declares a large outbound lookahead and *widens* the group's windows
// rather than narrowing them; under per-pair horizons it places no bound
// at all on shards it never talks to.
type ShardedDevice struct {
	group *sim.ShardGroup
	home  int
	shard int
	hop   sim.Time
	dev   shardable
	xmit  func(at sim.Time, tag int32, fn func(sim.Time)) // home → shard
}

// newShardedDevice wires an already-built device (living on
// group.Engine(shard)) into the group: completion hook, entity tag, and
// both lookahead edges. Components sharing a shard keep the minimum of
// their declared bounds, so a second device on the same shard can only
// tighten an edge, never loosen it.
func newShardedDevice(group *sim.ShardGroup, home, shard int, hop sim.Time, dev shardable) *ShardedDevice {
	if home == shard || shard < 0 || shard >= group.Shards() || home < 0 || home >= group.Shards() {
		panic(fmt.Sprintf("cxl: device shard %d / home %d invalid for %d-shard group", shard, home, group.Shards()))
	}
	if hop < 1 {
		panic(fmt.Sprintf("cxl: sharded device needs a positive home→shard hop, got %d", hop))
	}
	look := dev.MinLookahead()
	if look < 1 {
		panic(fmt.Sprintf("cxl: device MinLookahead %d < 1 admits no conservative window", look))
	}
	d := &ShardedDevice{group: group, home: home, shard: shard, hop: hop, dev: dev}
	d.xmit = func(at sim.Time, tag int32, fn func(sim.Time)) { group.Send(home, shard, at, tag, fn) }
	homebound := func(at sim.Time, tag int32, fn func(sim.Time)) { group.Send(shard, home, at, tag, fn) }
	tag := dev.completionTag()
	dev.setComplete(func(req *mem.Request, at sim.Time) { req.CompleteVia(homebound, at, tag) })
	group.TightenLookahead(shard, home, look)
	group.TightenLookahead(home, shard, hop)
	return d
}

// NewShardedExpander builds a CXL expander (with its device-side DDR
// system) on group.Engine(shard) and wires it in. hop is the host-side
// flight time of every issue — the minimum delivery delay AccessAt must
// be called with.
func NewShardedExpander(group *sim.ShardGroup, home, shard int, cfg Config, hop sim.Time) (*ShardedDevice, *Expander) {
	e := New(group.Engine(shard), cfg)
	return newShardedDevice(group, home, shard, hop, e), e
}

// NewShardedRemoteSocket builds a remote-socket emulation on
// group.Engine(shard) and wires it in.
func NewShardedRemoteSocket(group *sim.ShardGroup, home, shard int, cfg RemoteSocketConfig, hop sim.Time) (*ShardedDevice, *RemoteSocket) {
	r := NewRemoteSocket(group.Engine(shard), cfg)
	return newShardedDevice(group, home, shard, hop, r), r
}

// NewShardedOptane builds an Optane module set on group.Engine(shard) and
// wires it in.
func NewShardedOptane(group *sim.ShardGroup, home, shard int, cfg OptaneConfig, hop sim.Time) (*ShardedDevice, *Optane) {
	o := NewOptane(group.Engine(shard), cfg)
	return newShardedDevice(group, home, shard, hop, o), o
}

// AccessAt submits one host transaction for delivery to the device at
// absolute time at, transferring ownership. Home-shard goroutine only;
// at − now must be at least the declared hop.
func (d *ShardedDevice) AccessAt(req *mem.Request, at sim.Time) {
	req.SendVia(d.xmit, d.dev, at, 0)
}

// Access panics: a same-instant hand-off has no conservative window to
// cross shards in; issuers must carry a positive hop (AccessAt).
func (d *ShardedDevice) Access(*mem.Request) {
	panic("cxl: sharded device requires a timed hand-off (AccessAt with a positive hop)")
}

// Shard reports which shard engine the device runs on.
func (d *ShardedDevice) Shard() int { return d.shard }

var _ mem.TimedBackend = (*ShardedDevice)(nil)
