package cxl

import (
	"sort"
	"sync"

	"github.com/mess-sim/mess/internal/core"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// SweepOptions configure the direct-drive characterization of a backend —
// the model equivalent of running the manufacturer's SystemC testbench to
// obtain device-level bandwidth–latency curves (Fig. 14a).
type SweepOptions struct {
	// WriteFractions lists the traffic compositions to sweep; each value
	// is the fraction of memory traffic that is writes. The CXL curves
	// span 0 (100%-read) to 1 (100%-write), unlike the host-side Mess
	// sweep which cannot exceed 50% writes without streaming stores.
	WriteFractions []float64
	// RatesGBs is the open-loop injection sweep.
	RatesGBs []float64
	// Warmup and Measure window durations.
	Warmup  sim.Time
	Measure sim.Time
	// Parallelism bounds concurrent points.
	Parallelism int
}

func (o *SweepOptions) withDefaults(maxGBs float64) SweepOptions {
	out := *o
	if len(out.WriteFractions) == 0 {
		out.WriteFractions = []float64{0, 0.25, 0.5, 0.75, 1.0}
	}
	if len(out.RatesGBs) == 0 {
		for f := 0.04; f <= 1.301; f += 0.06 {
			out.RatesGBs = append(out.RatesGBs, f*maxGBs)
		}
	}
	if out.Warmup == 0 {
		out.Warmup = 20 * sim.Microsecond
	}
	if out.Measure == 0 {
		out.Measure = 60 * sim.Microsecond
	}
	if out.Parallelism == 0 {
		out.Parallelism = 8
	}
	return out
}

// MeasureFamily characterizes a backend by open-loop injection: for each
// (write fraction, rate) point it injects deterministic-spaced traffic and
// measures the achieved bandwidth and the round-trip latency of a
// concurrent dependent-read probe.
func MeasureFamily(makeBackend mem.BackendFactory, label string, theoreticalGBs float64, opt SweepOptions) *core.Family {
	o := opt.withDefaults(theoreticalGBs)
	type key struct{ wfIdx, rIdx int }
	type point struct {
		bw, lat, ratio float64
	}
	results := make(map[key]point)
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, o.Parallelism)

	for wi, wf := range o.WriteFractions {
		for ri, rate := range o.RatesGBs {
			wg.Add(1)
			go func(wi, ri int, wf, rate float64) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				bw, lat, ratio := measureDevicePoint(makeBackend, wf, rate, o)
				mu.Lock()
				results[key{wi, ri}] = point{bw, lat, ratio}
				mu.Unlock()
			}(wi, ri, wf, rate)
		}
	}
	wg.Wait()

	fam := &core.Family{Label: label, TheoreticalBW: theoreticalGBs}
	for wi := range o.WriteFractions {
		var pts []core.Point
		var ratioSum float64
		for ri := range o.RatesGBs {
			p := results[key{wi, ri}]
			if p.lat <= 0 {
				continue
			}
			pts = append(pts, core.Point{BW: p.bw, Latency: p.lat})
			ratioSum += p.ratio
		}
		// Average the ratio over the points actually summed, before
		// SanitizePoints prunes any: dividing by the sanitized count
		// pushed the ratio outside [0,1] whenever pruning occurred.
		measured := len(pts)
		pts = core.SanitizePoints(pts)
		if len(pts) < 2 {
			continue
		}
		fam.Curves = append(fam.Curves, core.Curve{
			ReadRatio: ratioSum / float64(measured),
			Points:    pts,
		})
	}
	sort.Slice(fam.Curves, func(i, j int) bool { return fam.Curves[i].ReadRatio < fam.Curves[j].ReadRatio })
	return fam
}

// measureDevicePoint injects `rate` GB/s with the given write fraction and
// returns (achieved bandwidth GB/s, probe latency ns, read ratio).
func measureDevicePoint(makeBackend mem.BackendFactory, writeFrac, rate float64, o SweepOptions) (float64, float64, float64) {
	eng := sim.New()
	backend := makeBackend(eng)
	counting := mem.NewCounting(backend)
	pool := mem.NewRequestPool()

	// Open-loop injector: deterministic spacing, Bresenham write mix,
	// sequential addresses across several streams. Cap outstanding to
	// bound queue growth past saturation. The fixed injection rate rides
	// on a kernel Ticker (one pooled event re-armed in place) and the
	// requests on a point-local pool (records recycled on completion).
	interval := sim.FromNanoseconds(float64(mem.LineSize) / rate)
	const maxOutstanding = 256
	outstanding := 0
	var line uint64
	acc := 0.0
	deadline := o.Warmup + o.Measure
	injectDone := func(sim.Time, *mem.Request) { outstanding-- }
	injectOne := func() {
		if outstanding < maxOutstanding {
			acc += writeFrac
			op := mem.Read
			if acc >= 1 {
				acc--
				op = mem.Write
			}
			addr := (line%8)*(1<<28+16<<10) + (line/8)*mem.LineSize
			line++
			outstanding++
			counting.Access(pool.Get(addr, op, injectDone))
		}
	}
	var tick *sim.Ticker
	tick = eng.NewTicker(interval, func() {
		if eng.Now() >= deadline {
			tick.Stop()
			return
		}
		injectOne()
	})
	injectOne()
	tick.Start()

	// Latency probe: dependent reads in their own address region. The probe
	// and completion callbacks are allocated once; the single in-flight
	// probe's issue time rides in probeStart.
	var probeLatSum sim.Time
	var probeN uint64
	var probeStart sim.Time
	probeLine := uint64(0)
	var probe func()
	probeDone := func(at sim.Time, _ *mem.Request) {
		if probeStart >= o.Warmup {
			probeLatSum += at - probeStart
			probeN++
		}
		eng.After(sim.Nanosecond, probe)
	}
	probe = func() {
		if eng.Now() >= deadline {
			return
		}
		probeLine = probeLine*1664525 + 1013904223
		addr := uint64(1)<<41 + (probeLine%(1<<18))*mem.LineSize
		probeStart = eng.Now()
		counting.Access(pool.Get(addr, mem.Read, probeDone))
	}
	probe()

	eng.RunUntil(o.Warmup)
	c0 := counting.Snapshot()
	eng.RunUntil(deadline)
	// Drain stragglers for a bounded time so probe callbacks settle.
	eng.RunUntil(deadline + 5*sim.Microsecond)
	c1 := counting.Snapshot()

	delta := c1.Sub(c0)
	bw := delta.BandwidthGBs(o.Measure)
	if probeN == 0 {
		return bw, 0, delta.ReadRatio()
	}
	lat := (probeLatSum / sim.Time(probeN)).Nanoseconds()
	return bw, lat, delta.ReadRatio()
}

// Family measures the default expander's curves.
func Family(opt SweepOptions) *core.Family {
	cfg := Default()
	return MeasureFamily(func(eng *sim.Engine) mem.Backend {
		return New(eng, cfg)
	}, "CXL memory expander", cfg.MaxTheoreticalGBs(), opt)
}
