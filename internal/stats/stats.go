// Package stats provides the small statistical helpers the measurement
// pipeline uses: trimmed means for outlier-robust latency aggregation,
// percentiles, and correlation (used to tie bandwidth decline to row-buffer
// miss rates, Sec. III).
package stats

import (
	"math"
	"sort"
)

// Mean reports the arithmetic mean; 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev reports the population standard deviation.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

// TrimmedMean drops the lowest and highest frac of samples before
// averaging (the Mess post-processing removes measurement outliers the
// same way). frac is clamped to [0, 0.45].
func TrimmedMean(xs []float64, frac float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 0.45 {
		frac = 0.45
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	cut := int(float64(len(sorted)) * frac)
	kept := sorted[cut : len(sorted)-cut]
	return Mean(kept)
}

// Percentile reports the p-th percentile (0..100) by nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Correlation reports the Pearson correlation coefficient of two equal-
// length series; 0 when undefined.
func Correlation(xs, ys []float64) float64 {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// MeanAbsRelError reports mean(|got−want| / |want|) over paired series —
// the IPC-error metric of Figs. 11 and 13.
func MeanAbsRelError(got, want []float64) float64 {
	n := len(got)
	if n == 0 || n != len(want) {
		return 0
	}
	sum := 0.0
	for i := range got {
		w := want[i]
		if w == 0 {
			continue
		}
		sum += math.Abs(got[i]-w) / math.Abs(w)
	}
	return sum / float64(n)
}
