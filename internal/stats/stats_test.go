package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %v", m)
	}
	if s := StdDev(xs); s != 2 {
		t.Fatalf("stddev = %v", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty input not zero")
	}
}

func TestTrimmedMeanDropsOutliers(t *testing.T) {
	xs := []float64{100, 101, 99, 100, 100, 5000, 0.001}
	tm := TrimmedMean(xs, 0.2)
	if tm < 99 || tm > 101 {
		t.Fatalf("trimmed mean = %v, outliers not removed", tm)
	}
	if TrimmedMean(xs, -1) == 0 {
		t.Fatal("negative frac mishandled")
	}
}

func TestTrimmedMeanBoundsProperty(t *testing.T) {
	prop := func(raw []uint16, fracRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		min, max := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)
			min = math.Min(min, xs[i])
			max = math.Max(max, xs[i])
		}
		tm := TrimmedMean(xs, float64(fracRaw%50)/100)
		return tm >= min-1e-9 && tm <= max+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := map[float64]float64{0: 1, 50: 5, 90: 9, 100: 10}
	for p, want := range cases {
		if got := Percentile(xs, p); got != want {
			t.Errorf("P%.0f = %v, want %v", p, got, want)
		}
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if c := Correlation(xs, ys); math.Abs(c-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", c)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if c := Correlation(xs, neg); math.Abs(c+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", c)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if c := Correlation(xs, flat); c != 0 {
		t.Fatalf("undefined correlation = %v, want 0", c)
	}
	if Correlation(xs, xs[:2]) != 0 {
		t.Fatal("length mismatch not rejected")
	}
}

func TestCorrelationBoundsProperty(t *testing.T) {
	prop := func(a, b []uint8) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n < 2 {
			return true
		}
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i], ys[i] = float64(a[i]), float64(b[i])
		}
		c := Correlation(xs, ys)
		return c >= -1.0000001 && c <= 1.0000001
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAbsRelError(t *testing.T) {
	got := []float64{110, 90}
	want := []float64{100, 100}
	if e := MeanAbsRelError(got, want); math.Abs(e-0.1) > 1e-12 {
		t.Fatalf("error = %v, want 0.1", e)
	}
	if MeanAbsRelError(got, want[:1]) != 0 {
		t.Fatal("length mismatch not rejected")
	}
}
