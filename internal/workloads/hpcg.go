package workloads

import (
	"github.com/mess-sim/mess/internal/cache"
	"github.com/mess-sim/mess/internal/cpu"
	"github.com/mess-sim/mess/internal/dram"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/sim"
)

// Phase is one segment of a phased application: either a compute kernel
// running for a duration, or an MPI call during which cores generate no
// memory traffic.
type Phase struct {
	Name     string
	Kernel   cpu.Kernel
	Duration sim.Time
	MPICall  bool // true: communication, no memory traffic
}

// HPCGPhases returns the proxy structure of one HPCG iteration. HPCG's
// dominant kernels — sparse matrix-vector multiply (SpMV), the symmetric
// Gauss-Seidel smoother (SymGS) and dot products (DDOT) — are all
// bandwidth-bound streaming kernels with read-heavy traffic; the iteration
// is delimited by MPI_Allreduce calls, exactly the structure the paper's
// timeline analysis keys on (Fig. 16).
func HPCGPhases() []Phase {
	spmv := cpu.Kernel{Name: "HPCG:SpMV", Loads: 3, Stores: 1, ElemsPerLine: 8, ALUPerElem: 3}
	symgs := cpu.Kernel{Name: "HPCG:SymGS", Loads: 3, Stores: 1, ElemsPerLine: 8, ALUPerElem: 4}
	ddot := cpu.Kernel{Name: "HPCG:DDOT", Loads: 2, ElemsPerLine: 8, ALUPerElem: 3}
	waxpby := cpu.Kernel{Name: "HPCG:WAXPBY", Loads: 2, Stores: 1, ElemsPerLine: 8, ALUPerElem: 3}
	return []Phase{
		{Name: "SymGS", Kernel: symgs, Duration: 120 * sim.Microsecond},
		{Name: "SpMV", Kernel: spmv, Duration: 90 * sim.Microsecond},
		{Name: "MPI_Allreduce", MPICall: true, Duration: 8 * sim.Microsecond},
		{Name: "DDOT", Kernel: ddot, Duration: 30 * sim.Microsecond},
		{Name: "WAXPBY", Kernel: waxpby, Duration: 40 * sim.Microsecond},
		{Name: "MPI_Allreduce", MPICall: true, Duration: 8 * sim.Microsecond},
	}
}

// PhaseEvent records a phase transition for timeline analysis.
type PhaseEvent struct {
	Name  string
	Start sim.Time
	End   sim.Time
	MPI   bool
}

// PhasedApp drives all cores through a repeating phase schedule on one
// engine, emitting phase events. It is the workload side of the Mess
// application-profiling experiments.
type PhasedApp struct {
	Eng      *sim.Engine
	Counting *mem.CountingBackend
	Spec     platform.Spec

	hier   *cache.Hierarchy
	phases []Phase
	cores  int
	active []*cpu.KernelCore
	events []PhaseEvent
	arrays uint64
}

// NewPhasedApp builds the application over the platform's detailed memory
// system (backend == nil) or a supplied model.
func NewPhasedApp(spec platform.Spec, phases []Phase, backend mem.BackendFactory) *PhasedApp {
	eng := sim.New()
	var b mem.Backend
	if backend != nil {
		b = backend(eng)
	} else {
		b = dram.New(eng, spec.DRAM)
	}
	counting := mem.NewCounting(b)
	hier := cache.New(eng, spec.CacheConfig(), counting)
	return &PhasedApp{
		Eng:      eng,
		Counting: counting,
		Spec:     spec,
		hier:     hier,
		phases:   phases,
		cores:    spec.Cores,
		arrays:   32 << 20,
	}
}

// Run executes the schedule until the deadline, looping over the phases.
func (a *PhasedApp) Run(until sim.Time) {
	idx := 0
	var runPhase func()
	runPhase = func() {
		now := a.Eng.Now()
		if now >= until {
			a.stopCores()
			return
		}
		ph := a.phases[idx%len(a.phases)]
		idx++
		end := now + ph.Duration
		a.events = append(a.events, PhaseEvent{Name: ph.Name, Start: now, End: end, MPI: ph.MPICall})
		a.stopCores()
		if !ph.MPICall {
			a.startCores(ph.Kernel)
		}
		a.Eng.Schedule(end, runPhase)
	}
	runPhase()
	a.Eng.RunUntil(until)
}

func (a *PhasedApp) startCores(k cpu.Kernel) {
	narr := k.Loads + k.Stores
	a.active = a.active[:0]
	for c := 0; c < a.cores; c++ {
		bases := make([]uint64, narr)
		for arr := 0; arr < narr; arr++ {
			bases[arr] = uint64(1)<<33 + uint64(c)*(1<<29+16<<10) + uint64(arr)*(1<<27+32<<10)
		}
		core := cpu.NewKernelCore(a.Eng, a.hier.Port(c), k, cpu.CoreConfig{
			CycleTime:  a.Spec.CycleTime(),
			ArrayBases: bases,
			ArrayBytes: a.arrays,
			Seed:       uint64(c)*2654435761 + 97,
		})
		core.Start()
		a.active = append(a.active, core)
	}
}

func (a *PhasedApp) stopCores() {
	for _, c := range a.active {
		c.Stop()
	}
	a.active = a.active[:0]
}

// Events reports the recorded phase timeline.
func (a *PhasedApp) Events() []PhaseEvent { return a.events }
