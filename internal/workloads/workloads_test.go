package workloads

import (
	"testing"

	"github.com/mess-sim/mess/internal/cache"
	"github.com/mess-sim/mess/internal/cpu"
	"github.com/mess-sim/mess/internal/dram"
	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/sim"
)

func miniSpec() platform.Spec {
	cfg := dram.DDR4(2666, 2, 1)
	cfg.CtrlLatency = sim.FromNanoseconds(8)
	cfg.IdleClose = 250 * sim.Nanosecond
	return platform.Spec{
		Name: "mini", Cores: 6, FreqGHz: 2.0,
		DRAM:              cfg,
		Policy:            cache.WriteAllocate,
		OnChipLatency:     sim.FromNanoseconds(44),
		MSHRs:             12,
		WriteBufs:         16,
		UnloadedLatencyNs: 88,
	}
}

func TestStreamSuiteShape(t *testing.T) {
	spec := miniSpec()
	results, err := StreamSuite(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("STREAM suite returned %d results", len(results))
	}
	theor := spec.TheoreticalBandwidthGBs()
	for _, r := range results {
		if r.AppBWGBs <= 0 || r.MemBWGBs <= 0 {
			t.Fatalf("%s reported no bandwidth: %+v", r.Name, r)
		}
		// Application-level STREAM bandwidth stays below the theoretical
		// peak and below the controller-level (Mess) bandwidth on a
		// write-allocate machine (Sec. III).
		if r.AppBWGBs >= r.MemBWGBs {
			t.Errorf("%s: app BW %.1f not below mem BW %.1f under write-allocate", r.Name, r.AppBWGBs, r.MemBWGBs)
		}
		if r.AppBWGBs > theor {
			t.Errorf("%s: app BW %.1f exceeds theoretical %.1f", r.Name, r.AppBWGBs, theor)
		}
		if r.IPC <= 0 {
			t.Errorf("%s: IPC %.2f", r.Name, r.IPC)
		}
	}
	// Copy moves 2 lines per step, Add/Triad 3: with the same array sizes,
	// Triad app bandwidth should not exceed Copy's by much, and all four
	// must be in one bandwidth class (paper: 53-61% of theoretical for
	// Skylake).
	copyBW, triadBW := results[0].AppBWGBs, results[3].AppBWGBs
	if triadBW > copyBW*1.6 || copyBW > triadBW*1.9 {
		t.Errorf("STREAM kernels in different bandwidth classes: copy %.1f vs triad %.1f", copyBW, triadBW)
	}
}

func TestWriteThroughMatchesAppBandwidth(t *testing.T) {
	// On a write-through platform (Graviton 3 style), STREAM's app
	// accounting matches the controller traffic (no RFO amplification).
	spec := miniSpec()
	spec.Policy = cache.WriteThrough
	r, err := Run(spec, cpu.StreamCopy, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := r.MemBWGBs / r.AppBWGBs
	if ratio < 0.95 || ratio > 1.10 {
		t.Fatalf("write-through mem/app bandwidth ratio = %.2f, want ≈1", ratio)
	}
}

func TestLatencySuiteSingleCore(t *testing.T) {
	spec := miniSpec()
	results, err := LatencySuite(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		// Dependent chases: IPC = instr/step over latency cycles. For
		// LMbench: 2 instructions per ~88 ns × 2 GHz = 176 cycles → ≈0.011.
		if r.IPC <= 0 || r.IPC > 0.1 {
			t.Errorf("%s IPC = %.4f implausible for a memory-latency benchmark", r.Name, r.IPC)
		}
		if r.MemBWGBs > 2 {
			t.Errorf("%s bandwidth %.1f GB/s too high for a single dependent chase", r.Name, r.MemBWGBs)
		}
	}
}

func TestEvalSuiteComplete(t *testing.T) {
	spec := miniSpec()
	results, err := EvalSuite(spec, Options{Warmup: 5 * sim.Microsecond, Measure: 15 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("eval suite has %d entries, want 6 (4 STREAM + 2 latency)", len(results))
	}
}

func TestLLCHitRateReducesTraffic(t *testing.T) {
	spec := miniSpec()
	hot, err := Run(spec, cpu.StreamTriad, Options{LLCHitRate: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(spec, cpu.StreamTriad, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hot.MemBWGBs > cold.MemBWGBs*0.5 {
		t.Fatalf("95%% LLC hits left %.1f GB/s of %.1f — locality knob ineffective", hot.MemBWGBs, cold.MemBWGBs)
	}
	if hot.IPC <= cold.IPC {
		t.Fatalf("cache hits did not raise IPC: %.2f vs %.2f", hot.IPC, cold.IPC)
	}
}

func TestSpecSuiteOrdering(t *testing.T) {
	suite := SpecSuite()
	if len(suite) < 25 {
		t.Fatalf("SPEC-like suite has %d entries", len(suite))
	}
	names := map[string]bool{}
	for _, b := range suite {
		if names[b.Name] {
			t.Fatalf("duplicate benchmark %s", b.Name)
		}
		names[b.Name] = true
		if b.LLCHitRate < 0 || b.LLCHitRate > 1 {
			t.Fatalf("%s hit rate %v", b.Name, b.LLCHitRate)
		}
	}
	for _, want := range []string{"perlbench", "lbm", "namd", "libquantum", "mcf"} {
		if !names[want] {
			t.Fatalf("suite missing %s", want)
		}
	}
}

func TestPhasedAppTimeline(t *testing.T) {
	spec := miniSpec()
	app := NewPhasedApp(spec, HPCGPhases(), nil)
	app.Run(900 * sim.Microsecond)
	events := app.Events()
	if len(events) < 6 {
		t.Fatalf("phased app recorded %d events", len(events))
	}
	sawMPI, sawCompute := false, false
	for i, e := range events {
		if e.End <= e.Start {
			t.Fatalf("event %d has non-positive duration", i)
		}
		if i > 0 && e.Start != events[i-1].End {
			t.Fatalf("timeline gap between %d and %d", i-1, i)
		}
		if e.MPI {
			sawMPI = true
		} else {
			sawCompute = true
		}
	}
	if !sawMPI || !sawCompute {
		t.Fatal("timeline missing MPI or compute phases")
	}
	if app.Counting.Snapshot().TotalBytes() == 0 {
		t.Fatal("phased app generated no memory traffic")
	}
}

func TestRunRejectsArraylessKernel(t *testing.T) {
	if _, err := Run(miniSpec(), cpu.Kernel{Name: "empty"}, Options{}); err == nil {
		t.Fatal("kernel without arrays accepted")
	}
}
