package workloads

import "github.com/mess-sim/mess/internal/cpu"

// SpecBenchmark is one entry of the SPEC-CPU2006-like synthetic suite used
// by the remote-socket-vs-CXL case study (Appendix B, Figs. 17–18). Each
// entry pairs a kernel shape with an LLC hit rate; together they set the
// benchmark's memory-bandwidth intensity, which is the property the case
// study correlates performance with.
type SpecBenchmark struct {
	Name       string
	Kernel     cpu.Kernel
	LLCHitRate float64
}

// SpecSuite returns the 26 benchmarks of Fig. 18, ordered as the paper
// plots them: from the lowest to the highest bandwidth utilization. The
// kernel mixes are synthetic; the intensity ordering and the read/write
// flavour of each program follow the well-known SPEC CPU2006 memory
// characterization (namd/gamess compute-bound … libquantum/leslie3d/lbm
// bandwidth-bound).
func SpecSuite() []SpecBenchmark {
	compute := cpu.Kernel{Loads: 1, Stores: 0, ElemsPerLine: 8, ALUPerElem: 12}
	light := cpu.Kernel{Loads: 1, Stores: 1, ElemsPerLine: 8, ALUPerElem: 8}
	// Pointer-chasing integer programs stall on their loads: every memory
	// access extends the critical path, which is what makes them pay for
	// the remote socket's extra unloaded latency (Fig. 17a).
	chase := cpu.Kernel{Loads: 1, ElemsPerLine: 4, ALUPerElem: 10, Dependent: true, Random: true}
	medium := cpu.Kernel{Loads: 2, Stores: 1, ElemsPerLine: 8, ALUPerElem: 5}
	heavy := cpu.Kernel{Loads: 2, Stores: 1, ElemsPerLine: 8, ALUPerElem: 3}
	stream := cpu.Kernel{Loads: 2, Stores: 1, ElemsPerLine: 8, ALUPerElem: 2}

	mk := func(name string, k cpu.Kernel, hit float64) SpecBenchmark {
		k.Name = name
		return SpecBenchmark{Name: name, Kernel: k, LLCHitRate: hit}
	}
	return []SpecBenchmark{
		mk("namd", compute, 0.995),
		mk("gamess", compute, 0.995),
		mk("tonto", compute, 0.99),
		mk("gromacs", compute, 0.99),
		mk("perlbench", chase, 0.985),
		mk("povray", compute, 0.985),
		mk("calculix", light, 0.98),
		mk("gobmk", chase, 0.98),
		mk("astar", chase, 0.97),
		mk("wrf", medium, 0.96),
		mk("dealII", medium, 0.95),
		mk("h264ref", light, 0.95),
		mk("bzip2", medium, 0.93),
		mk("sphinx3", medium, 0.91),
		mk("xalancbmk", chase, 0.89),
		mk("hmmer", medium, 0.87),
		mk("cactusADM", heavy, 0.84),
		mk("zeusmp", heavy, 0.80),
		mk("gcc", chase, 0.76),
		mk("soplex", heavy, 0.70),
		mk("milc", heavy, 0.62),
		mk("libquantum", stream, 0.52),
		mk("leslie3d", stream, 0.45),
		mk("GemsFDTD", stream, 0.38),
		mk("lbm", stream, 0.25),
		mk("mcf", chase, 0.30),
	}
}
