// Package workloads implements the benchmark programs of the paper's
// evaluation as instruction-mix kernels on the simulated cores: the four
// STREAM kernels, LMbench lat_mem_rd, Google multichase, GUPS, an HPCG
// proxy with its MPI phase structure, and a 26-entry SPEC-CPU2006-like
// synthetic suite. Workloads run multiprogrammed (one copy per core, as the
// paper runs them) over any memory backend, and report IPC, application-
// level bandwidth and controller-level bandwidth.
package workloads

import (
	"fmt"

	"github.com/mess-sim/mess/internal/cache"
	"github.com/mess-sim/mess/internal/cpu"
	"github.com/mess-sim/mess/internal/dram"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/sim"
)

// Options configure a workload run.
type Options struct {
	// Cores is the number of benchmark copies; 0 runs one per platform
	// core (the paper's multiprogrammed setup).
	Cores int
	// Warmup and Measure are the simulated window durations.
	Warmup  sim.Time
	Measure sim.Time
	// ArrayBytes sizes each kernel array (wraps; must exceed the LLC for
	// streaming behaviour).
	ArrayBytes uint64
	// Backend overrides the memory model; nil uses the platform's
	// detailed DRAM system.
	Backend mem.BackendFactory
	// LLCHitRate injects on-chip locality (used by the SPEC-like suite to
	// modulate memory intensity).
	LLCHitRate float64
}

func (o *Options) withDefaults(spec platform.Spec) Options {
	out := *o
	if out.Cores == 0 {
		out.Cores = spec.Cores
	}
	if out.Warmup == 0 {
		out.Warmup = 10 * sim.Microsecond
	}
	if out.Measure == 0 {
		out.Measure = 40 * sim.Microsecond
	}
	if out.ArrayBytes == 0 {
		out.ArrayBytes = 32 << 20
	}
	return out
}

// Result is one workload execution.
type Result struct {
	Name string
	// IPC is the mean per-core instructions per cycle.
	IPC float64
	// AppBWGBs is the application-accounted bandwidth summed over cores
	// (the STREAM accounting: no RFO or writeback amplification).
	AppBWGBs float64
	// MemBWGBs is the controller-level bandwidth from the counters (the
	// Mess accounting).
	MemBWGBs float64
	// ReadRatio is the controller-level read share.
	ReadRatio float64
	// Steps is the total number of completed line-steps.
	Steps uint64
}

// Run executes the kernel multiprogrammed on the platform.
func Run(spec platform.Spec, k cpu.Kernel, opt Options) (Result, error) {
	o := opt.withDefaults(spec)
	eng := sim.New()

	var backend mem.Backend
	if o.Backend != nil {
		backend = o.Backend(eng)
	} else {
		backend = dram.New(eng, spec.DRAM)
	}
	counting := mem.NewCounting(backend)
	ccfg := spec.CacheConfig()
	ccfg.LLCHitRate = o.LLCHitRate
	ccfg.LLCHitLatency = spec.OnChipLatency / 2
	hier := cache.New(eng, ccfg, counting)

	cores := make([]*cpu.KernelCore, 0, o.Cores)
	narr := k.Loads + k.Stores
	if narr == 0 {
		return Result{}, fmt.Errorf("workloads: kernel %s touches no arrays", k.Name)
	}
	for c := 0; c < o.Cores; c++ {
		bases := make([]uint64, narr)
		for a := 0; a < narr; a++ {
			// Give every (core, array) pair a disjoint region, staggered
			// by a bank-sized offset so streams spread across banks.
			bases[a] = uint64(1)<<33 + uint64(c)*(1<<29+16<<10) + uint64(a)*(1<<27+32<<10)
		}
		core := cpu.NewKernelCore(eng, hier.Port(c), k, cpu.CoreConfig{
			CycleTime:  spec.CycleTime(),
			ArrayBases: bases,
			ArrayBytes: o.ArrayBytes,
			Seed:       uint64(c)*0x9e3779b97f4a7c15 + 0xdeadbeef,
		})
		core.Start()
		cores = append(cores, core)
	}

	eng.RunUntil(o.Warmup)
	c0 := counting.Snapshot()
	t0 := eng.Now()
	for _, c := range cores {
		c.ResetStats()
	}
	eng.RunUntil(o.Warmup + o.Measure)
	c1 := counting.Snapshot()
	t1 := eng.Now()

	res := Result{Name: k.Name}
	delta := c1.Sub(c0)
	res.MemBWGBs = delta.BandwidthGBs(t1 - t0)
	res.ReadRatio = delta.ReadRatio()
	var ipcSum float64
	for _, c := range cores {
		ipcSum += c.IPC()
		res.AppBWGBs += c.AppBandwidthGBs()
		res.Steps += c.Steps()
	}
	if res.Steps == 0 {
		return Result{}, fmt.Errorf("workloads: %s on %s made no progress", k.Name, spec.Name)
	}
	res.IPC = ipcSum / float64(len(cores))
	for _, c := range cores {
		c.Stop()
	}
	return res, nil
}

// StreamSuite runs the four STREAM kernels and returns their results in
// Copy, Scale, Add, Triad order.
func StreamSuite(spec platform.Spec, opt Options) ([]Result, error) {
	kernels := []cpu.Kernel{cpu.StreamCopy, cpu.StreamScale, cpu.StreamAdd, cpu.StreamTriad}
	out := make([]Result, 0, len(kernels))
	for _, k := range kernels {
		r, err := Run(spec, k, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// LatencySuite runs the latency benchmarks (LMbench, multichase) on a
// single core, as they are run in practice.
func LatencySuite(spec platform.Spec, opt Options) ([]Result, error) {
	opt.Cores = 1
	kernels := []cpu.Kernel{cpu.LMbench, cpu.Multichase}
	out := make([]Result, 0, len(kernels))
	for _, k := range kernels {
		r, err := Run(spec, k, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// EvalSuite returns the six benchmarks of the paper's IPC-error experiments
// (Figs. 11 and 13): the four STREAM kernels multiprogrammed plus the two
// latency benchmarks single-core.
func EvalSuite(spec platform.Spec, opt Options) ([]Result, error) {
	stream, err := StreamSuite(spec, opt)
	if err != nil {
		return nil, err
	}
	lat, err := LatencySuite(spec, opt)
	if err != nil {
		return nil, err
	}
	return append(stream, lat...), nil
}
