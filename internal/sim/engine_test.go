package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events ran out of schedule order at %d: %v", i, order[:i+1])
		}
	}
}

func TestScheduleInPastClamps(t *testing.T) {
	e := New()
	var at Time = -1
	e.Schedule(100, func() {
		e.Schedule(50, func() { at = e.Now() })
	})
	e.Run()
	if at != 100 {
		t.Fatalf("past event fired at %d, want clamped to 100", at)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.Schedule(i*10, func() { count++ })
	}
	e.RunUntil(50)
	if count != 5 {
		t.Fatalf("ran %d events until t=50, want 5", count)
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %d, want 50", e.Now())
	}
	e.RunUntil(200)
	if count != 10 {
		t.Fatalf("ran %d events total, want 10", count)
	}
}

func TestAfterCascade(t *testing.T) {
	e := New()
	var ticks []Time
	var tick func()
	tick = func() {
		ticks = append(ticks, e.Now())
		if len(ticks) < 5 {
			e.After(7, tick)
		}
	}
	e.After(7, tick)
	e.Run()
	for i, at := range ticks {
		if want := Time(7 * (i + 1)); at != want {
			t.Fatalf("tick %d at %d, want %d", i, at, want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if Nanosecond.Nanoseconds() != 1 {
		t.Fatal("Nanosecond != 1 ns")
	}
	if Second.Seconds() != 1 {
		t.Fatal("Second != 1 s")
	}
	if FromNanoseconds(3.5) != 3500*Picosecond {
		t.Fatalf("FromNanoseconds(3.5) = %d", FromNanoseconds(3.5))
	}
}

func TestFromNanosecondsRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		nsVal := float64(raw) / 16.0 // up to ~2.7e8 ns with sub-ns fractions
		got := FromNanoseconds(nsVal).Nanoseconds()
		diff := got - nsVal
		if diff < 0 {
			diff = -diff
		}
		return diff <= 0.001 // within a picosecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStepsCounts(t *testing.T) {
	e := New()
	for i := 0; i < 17; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Steps() != 17 {
		t.Fatalf("Steps = %d, want 17", e.Steps())
	}
}

func TestCancelRemovesFromQueue(t *testing.T) {
	e := New()
	ev := e.Schedule(10, func() { t.Fatal("cancelled event fired") })
	e.Schedule(20, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	ev.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d, want 1 (cancelled events must not count)", e.Pending())
	}
	ev.Cancel() // idempotent
	if e.Pending() != 1 {
		t.Fatalf("Pending after double cancel = %d, want 1", e.Pending())
	}
	e.Run()
	if e.Steps() != 1 {
		t.Fatalf("Steps = %d, want 1", e.Steps())
	}
}

func TestCancelFiredEventNoOp(t *testing.T) {
	e := New()
	ev := e.Schedule(5, func() {})
	e.Schedule(10, func() {})
	e.Run()
	ev.Cancel() // already fired: must not disturb the (empty) queue
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}

func TestCancelMidQueuePreservesOrder(t *testing.T) {
	e := New()
	var order []Time
	var evs []Handle
	for i := Time(1); i <= 50; i++ {
		i := i
		evs = append(evs, e.Schedule(i, func() { order = append(order, i) }))
	}
	// Cancel every third event, including interior queue positions.
	for i := 0; i < len(evs); i += 3 {
		evs[i].Cancel()
	}
	e.Run()
	want := 0
	for i := Time(1); i <= 50; i++ {
		if (i-1)%3 == 0 {
			continue
		}
		if order[want] != i {
			t.Fatalf("event %d fired out of order: got %v", i, order[:want+1])
		}
		want++
	}
	if len(order) != want {
		t.Fatalf("fired %d events, want %d", len(order), want)
	}
}

func TestCancelInsideCallback(t *testing.T) {
	e := New()
	var late Handle
	fired := false
	e.Schedule(1, func() { late.Cancel() })
	late = e.Schedule(2, func() { fired = true })
	e.Run()
	if fired {
		t.Fatal("event cancelled from an earlier callback still fired")
	}
}

func TestRunUntilSkipsCancelled(t *testing.T) {
	e := New()
	count := 0
	var evs []Handle
	for i := Time(1); i <= 10; i++ {
		evs = append(evs, e.Schedule(i*10, func() { count++ }))
	}
	evs[0].Cancel()
	evs[4].Cancel()
	e.RunUntil(50)
	if count != 3 {
		t.Fatalf("ran %d events until t=50, want 3", count)
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %d, want 50", e.Now())
	}
}

// --- pooled-event and generation-counter invariants ---

// A handle whose event has fired must go inert even after the record is
// recycled into a new event: cancelling through the stale handle must not
// cancel (or double-fire) the record's next occupant.
func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	e := New()
	h1 := e.Schedule(5, func() {})
	e.Run() // fires and recycles the record

	fired := 0
	h2 := e.Schedule(10, func() { fired++ })
	h1.Cancel() // stale: must be a no-op even if h2 reuses h1's record
	e.Run()
	if fired != 1 {
		t.Fatalf("event fired %d times, want 1 (stale handle interfered)", fired)
	}
	_ = h2
}

// Cancelling a fired event inside a later callback — after the record has
// been recycled and re-armed — must not kill the new occupant.
func TestCancelAfterFireDuringRun(t *testing.T) {
	e := New()
	var h1 Handle
	fired := 0
	h1 = e.Schedule(1, func() {
		// Reuse the pool immediately: this new event likely occupies h1's
		// record. The deferred cancel below must not touch it.
		e.Schedule(3, func() { fired++ })
		e.Schedule(2, func() { h1.Cancel() })
	})
	e.Run()
	if fired != 1 {
		t.Fatalf("recycled event fired %d times, want 1", fired)
	}
}

// A cancelled-then-swept record must be reusable without double-firing.
func TestNoDoubleFireAfterCancelAndReuse(t *testing.T) {
	e := New()
	h := e.Schedule(5, func() { t.Fatal("cancelled event fired") })
	h.Cancel()
	fired := 0
	e.Schedule(6, func() { fired++ })
	e.Run()
	h.Cancel() // stale again
	e.Schedule(7, func() { fired++ })
	e.Run()
	if fired != 2 {
		t.Fatalf("fired %d, want 2", fired)
	}
	if e.Steps() != 2 {
		t.Fatalf("Steps = %d, want 2 (cancelled events must not count)", e.Steps())
	}
}

// --- wheel/overflow path invariants ---

// horizonT is a duration safely beyond the timer-wheel horizon, forcing the
// overflow-heap path.
const horizonT = Time(wheelSize<<granBits) * 4

// Events beyond the wheel horizon must still interleave with near events in
// exact (at, seq) order as the cursor reaches them.
func TestOverflowCascadeOrdering(t *testing.T) {
	e := New()
	var order []int
	// Far events first (lower seq), then near events, then a pump that
	// schedules an equal-time rival of a far event via the wheel path.
	e.Schedule(horizonT, func() { order = append(order, 1) })   // overflow, seq 0
	e.Schedule(horizonT+7, func() { order = append(order, 3) }) // overflow, seq 1
	e.Schedule(3, func() { order = append(order, 0) })          // near
	e.Schedule(horizonT-5, func() {
		// Scheduled once time is near the horizon event: lands via the
		// wheel/cur path at the same deadline as the first far event, but
		// with a higher seq — must fire after it.
		e.Schedule(horizonT, func() { order = append(order, 2) })
	})
	e.Run()
	for i, v := range order {
		if i != v {
			t.Fatalf("overflow/wheel interleave out of order: %v", order)
		}
	}
}

// RunUntil boundaries on the wheel path: stopping between buckets, exactly
// on a deadline in a wheel bucket, and exactly on an overflow deadline.
func TestRunUntilBoundariesOnWheel(t *testing.T) {
	e := New()
	count := 0
	e.Schedule(100, func() { count++ })           // near bucket
	e.Schedule(100, func() { count++ })           // same bucket, same time
	e.Schedule(50*Nanosecond, func() { count++ }) // later bucket
	e.Schedule(horizonT, func() { count++ })      // overflow

	e.RunUntil(99)
	if count != 0 || e.Now() != 99 {
		t.Fatalf("RunUntil(99): count=%d now=%d, want 0, 99", count, e.Now())
	}
	e.RunUntil(100) // exact deadline: both equal-time events run
	if count != 2 || e.Now() != 100 {
		t.Fatalf("RunUntil(100): count=%d now=%d, want 2, 100", count, e.Now())
	}
	e.RunUntil(50 * Nanosecond) // exact deadline in a far bucket
	if count != 3 || e.Now() != 50*Nanosecond {
		t.Fatalf("RunUntil(50ns): count=%d now=%d, want 3", count, e.Now())
	}
	e.RunUntil(horizonT - 1) // stop just short of the overflow event
	if count != 3 || e.Now() != horizonT-1 {
		t.Fatalf("RunUntil(horizon-1): count=%d now=%d, want 3", count, e.Now())
	}
	e.RunUntil(horizonT) // exact overflow deadline
	if count != 4 || e.Now() != horizonT {
		t.Fatalf("RunUntil(horizon): count=%d now=%d, want 4", count, e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}

// Scheduling behind an advanced wheel cursor (RunUntil moved the clock far
// forward with the next event even further out) must still fire in order.
func TestScheduleBehindCursor(t *testing.T) {
	e := New()
	var order []Time
	rec := func() { order = append(order, e.Now()) }
	e.Schedule(horizonT, rec)
	// peek inside RunUntil advances the cursor toward horizonT.
	e.RunUntil(10 * Nanosecond)
	// Now schedule events earlier than the materialized far event.
	e.Schedule(20*Nanosecond, rec)
	e.Schedule(15*Nanosecond, rec)
	e.Run()
	want := []Time{15 * Nanosecond, 20 * Nanosecond, horizonT}
	if len(order) != len(want) {
		t.Fatalf("fired %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunWhile(t *testing.T) {
	e := New()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.Schedule(i, func() { count++ })
	}
	e.RunWhile(func() bool { return count < 4 })
	if count != 4 {
		t.Fatalf("RunWhile ran %d events, want 4", count)
	}
	e.Run()
	if count != 10 {
		t.Fatalf("drain ran %d events, want 10", count)
	}
}

// --- determinism ---

// chaoticRun exercises every kernel structure: cascades, equal-time ties,
// cancels, timers, and spans from sub-bucket to far beyond the horizon. It
// returns the exact fire sequence.
func chaoticRun(e *Engine) (order []uint64, steps uint64) {
	rng := uint64(0x9e3779b97f4a7c15)
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	var handles []Handle
	var id uint64
	var spawn func(depth int) func()
	spawn = func(depth int) func() {
		myID := id
		id++
		return func() {
			order = append(order, myID)
			if depth >= 6 {
				return
			}
			n := int(next(4))
			for i := 0; i < n; i++ {
				d := Time(next(uint64(horizonT)))
				h := e.After(d, spawn(depth+1))
				if next(5) == 0 {
					handles = append(handles, h)
				}
			}
			if len(handles) > 0 && next(3) == 0 {
				handles[int(next(uint64(len(handles))))].Cancel()
			}
		}
	}
	for i := 0; i < 40; i++ {
		e.Schedule(Time(next(1000)), spawn(0))
	}
	e.Run()
	return order, e.Steps()
}

func TestDeterministicReplay(t *testing.T) {
	o1, s1 := chaoticRun(New())
	o2, s2 := chaoticRun(New())
	if s1 != s2 {
		t.Fatalf("Steps differ across identical runs: %d vs %d", s1, s2)
	}
	if len(o1) != len(o2) {
		t.Fatalf("event counts differ: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("event order diverges at step %d: %d vs %d", i, o1[i], o2[i])
		}
	}
}

// A Reset engine must behave exactly like a fresh one — same fire order,
// same step count — with the pool warm.
func TestResetMatchesFreshEngine(t *testing.T) {
	e := New()
	o1, s1 := chaoticRun(e)
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d", e.Pending())
	}
	e.Reset()
	if e.Now() != 0 || e.Steps() != 0 || e.Pending() != 0 {
		t.Fatalf("Reset left state: now=%d steps=%d pending=%d", e.Now(), e.Steps(), e.Pending())
	}
	o2, s2 := chaoticRun(e)
	if s1 != s2 || len(o1) != len(o2) {
		t.Fatalf("reused engine diverged: steps %d vs %d, events %d vs %d", s1, s2, len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("reused engine order diverges at %d", i)
		}
	}
}

func TestResetDropsPendingEvents(t *testing.T) {
	e := New()
	e.Schedule(10, func() { t.Fatal("event survived Reset") })
	e.Schedule(horizonT, func() { t.Fatal("overflow event survived Reset") })
	h := e.Schedule(20, func() { t.Fatal("event survived Reset") })
	e.Reset()
	h.Cancel() // stale post-reset handle: no-op
	fired := false
	e.Schedule(5, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("post-reset event did not fire")
	}
}

// --- ScheduleTimed / Timer / Ticker ---

func TestScheduleTimedPassesDeadline(t *testing.T) {
	e := New()
	var got Time
	e.ScheduleTimed(42, func(at Time) { got = at })
	e.Run()
	if got != 42 {
		t.Fatalf("timed callback got %d, want 42", got)
	}
	e.AfterTimed(8, func(at Time) { got = at })
	e.Run()
	if got != 50 {
		t.Fatalf("AfterTimed callback got %d, want 50", got)
	}
}

func TestTimerArmStopRearm(t *testing.T) {
	e := New()
	var fires []Time
	tm := e.NewTimer(func() { fires = append(fires, e.Now()) })
	if tm.Armed() {
		t.Fatal("new timer reads armed")
	}
	tm.Arm(10)
	if !tm.Armed() {
		t.Fatal("armed timer reads disarmed")
	}
	if at, ok := tm.When(); !ok || at != 10 {
		t.Fatalf("When = %d,%v want 10,true", at, ok)
	}
	tm.Arm(5) // re-arm earlier: replaces, not duplicates
	e.Run()
	if len(fires) != 1 || fires[0] != 5 {
		t.Fatalf("fires = %v, want [5]", fires)
	}
	if tm.Armed() {
		t.Fatal("fired timer reads armed")
	}
	tm.ArmAfter(7)
	tm.Stop()
	e.Run()
	if len(fires) != 1 {
		t.Fatalf("stopped timer fired: %v", fires)
	}
	tm.ArmAfter(3) // rearm after stop
	e.Run()
	if len(fires) != 2 || fires[1] != 8 {
		t.Fatalf("fires = %v, want [5 8]", fires)
	}
}

func TestTimerRearmInsideCallback(t *testing.T) {
	e := New()
	var fires []Time
	var tm *Timer
	tm = e.NewTimer(func() {
		fires = append(fires, e.Now())
		if tm.Armed() {
			t.Fatal("timer reads armed inside its own callback")
		}
		if len(fires) < 3 {
			tm.ArmAfter(4)
		}
	})
	tm.Arm(4)
	e.Run()
	want := []Time{4, 8, 12}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
}

func TestTickerPeriodAndStop(t *testing.T) {
	e := New()
	var ticks []Time
	var tk *Ticker
	tk = e.NewTicker(10, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 4 {
			tk.Stop()
		}
	})
	tk.Start()
	tk.Start() // idempotent
	e.Run()
	want := []Time{10, 20, 30, 40}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
	if tk.Running() {
		t.Fatal("stopped ticker reads running")
	}
	// Restart keeps working.
	tk.Start()
	e.RunUntil(e.Now() + 25)
	if len(ticks) != 6 {
		t.Fatalf("restarted ticker ticked %d times total, want 6", len(ticks))
	}
	tk.Stop()
	e.Run()
}

// A callback that restarts its own ticker (Stop then Start, e.g. to
// resynchronize phase) must not fork a second tick chain.
func TestTickerRestartInsideCallbackSingleChain(t *testing.T) {
	e := New()
	var ticks []Time
	var tk *Ticker
	tk = e.NewTicker(10, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 2 {
			tk.Stop()
			tk.Start() // re-sync: next tick 10 from now, one chain only
		}
	})
	tk.Start()
	e.RunUntil(60)
	tk.Stop()
	e.Run()
	want := []Time{10, 20, 30, 40, 50, 60}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v (restart forked a chain?)", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerStopOutsideCallbackCancelsPending(t *testing.T) {
	e := New()
	n := 0
	tk := e.NewTicker(10, func() { n++ })
	tk.Start()
	e.RunUntil(25)
	tk.Stop()
	e.Run()
	if n != 2 {
		t.Fatalf("ticker fired %d times, want 2", n)
	}
}

func TestNextDeadline(t *testing.T) {
	e := New()
	if _, ok := e.NextDeadline(); ok {
		t.Fatal("empty engine reports a deadline")
	}
	e.Schedule(40, func() {})
	e.Schedule(15, func() {})
	if at, ok := e.NextDeadline(); !ok || at != 15 {
		t.Fatalf("NextDeadline = %d,%v, want 15,true", at, ok)
	}
	// Peeking consumes nothing and fires nothing.
	if at, ok := e.NextDeadline(); !ok || at != 15 {
		t.Fatalf("second NextDeadline = %d,%v, want 15,true", at, ok)
	}
	if e.Steps() != 0 || e.Pending() != 2 {
		t.Fatalf("peek executed events: steps=%d pending=%d", e.Steps(), e.Pending())
	}
	e.Step()
	if at, ok := e.NextDeadline(); !ok || at != 40 {
		t.Fatalf("NextDeadline after step = %d,%v, want 40,true", at, ok)
	}
	// A cancelled head is skipped, not reported.
	h := e.Schedule(20, func() {})
	_ = h
	h2 := e.Schedule(25, func() {})
	h.Cancel()
	_ = h2
	if at, ok := e.NextDeadline(); !ok || at != 25 {
		t.Fatalf("NextDeadline over tombstone = %d,%v, want 25,true", at, ok)
	}
	e.Run()
	if _, ok := e.NextDeadline(); ok {
		t.Fatal("drained engine reports a deadline")
	}
}

// NextDeadline must see events in every internal structure: the active run,
// the wheel buckets, and the overflow heap.
func TestNextDeadlineAcrossStructures(t *testing.T) {
	e := New()
	e.Schedule(5*Microsecond, func() {}) // far beyond the horizon: overflow
	if at, ok := e.NextDeadline(); !ok || at != 5*Microsecond {
		t.Fatalf("overflow-only NextDeadline = %d,%v", at, ok)
	}
	e.Schedule(100*Nanosecond, func() {}) // within the horizon: bucket
	if at, ok := e.NextDeadline(); !ok || at != 100*Nanosecond {
		t.Fatalf("bucket NextDeadline = %d,%v", at, ok)
	}
	e.Schedule(0, func() {}) // at/before the cursor: active run
	if at, ok := e.NextDeadline(); !ok || at != 0 {
		t.Fatalf("cur NextDeadline = %d,%v", at, ok)
	}
	e.Run()
}

// RunUntil advancing the clock across an empty wheel must not strand the
// cursor behind the clock: short-delta schedules after the jump belong in
// wheel buckets, and the (at, seq) order must hold across the boundary.
func TestShortDeltaAfterClockJumpStaysOrdered(t *testing.T) {
	e := New()
	var order []Time
	rec := func() { order = append(order, e.Now()) }
	e.Schedule(10, rec)
	e.Run()
	e.RunUntil(3 * Microsecond) // ≫ the wheel horizon, queue empty
	e.Schedule(e.Now()+300, rec)
	e.Schedule(e.Now()+100, rec)
	e.Schedule(e.Now()+200, rec)
	e.Run()
	want := []Time{10, e.Now() - 200, e.Now() - 100, e.Now()}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Cancel-heavy churn with periodic drains — the DRAM decide pattern at
// steady state — must neither allocate per op nor detour through the
// overflow heap. This pins the kernel/schedule_cancel trajectory fix: the
// pathology was the wheel cursor lagging the clock after each drain, which
// sent every subsequent short-delta schedule to the heap.
func TestCancelHeavySteadyStateAllocs(t *testing.T) {
	e := New()
	nop := func() {}
	churn := func(n int) {
		for i := 0; i < n; i++ {
			h := e.Schedule(e.Now()+Time(100+i%211), nop)
			h.Cancel()
			if i%1024 == 1023 {
				e.RunUntil(e.Now() + 300*Nanosecond)
			}
		}
		e.Run()
	}
	// Warm the pool and the bucket arrays. Each 1024-op drain cycle
	// advances the clock more than a full wheel revolution, so successive
	// cycles land in different bucket positions; covering all 1024 of them
	// (growing each backing array once) takes on the order of a million
	// ops before the steady state is allocation-free.
	churn(1 << 20)
	const ops = 16384
	allocs := testing.AllocsPerRun(5, func() { churn(ops) })
	if per := allocs / ops; per >= 0.01 {
		t.Fatalf("cancel churn allocates %.4f/op at steady state, want ~0", per)
	}
}
