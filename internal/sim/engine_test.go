package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events ran out of schedule order at %d: %v", i, order[:i+1])
		}
	}
}

func TestScheduleInPastClamps(t *testing.T) {
	e := New()
	var at Time = -1
	e.Schedule(100, func() {
		e.Schedule(50, func() { at = e.Now() })
	})
	e.Run()
	if at != 100 {
		t.Fatalf("past event fired at %d, want clamped to 100", at)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.Schedule(i*10, func() { count++ })
	}
	e.RunUntil(50)
	if count != 5 {
		t.Fatalf("ran %d events until t=50, want 5", count)
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %d, want 50", e.Now())
	}
	e.RunUntil(200)
	if count != 10 {
		t.Fatalf("ran %d events total, want 10", count)
	}
}

func TestAfterCascade(t *testing.T) {
	e := New()
	var ticks []Time
	var tick func()
	tick = func() {
		ticks = append(ticks, e.Now())
		if len(ticks) < 5 {
			e.After(7, tick)
		}
	}
	e.After(7, tick)
	e.Run()
	for i, at := range ticks {
		if want := Time(7 * (i + 1)); at != want {
			t.Fatalf("tick %d at %d, want %d", i, at, want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if Nanosecond.Nanoseconds() != 1 {
		t.Fatal("Nanosecond != 1 ns")
	}
	if Second.Seconds() != 1 {
		t.Fatal("Second != 1 s")
	}
	if FromNanoseconds(3.5) != 3500*Picosecond {
		t.Fatalf("FromNanoseconds(3.5) = %d", FromNanoseconds(3.5))
	}
}

func TestFromNanosecondsRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		nsVal := float64(raw) / 16.0 // up to ~2.7e8 ns with sub-ns fractions
		got := FromNanoseconds(nsVal).Nanoseconds()
		diff := got - nsVal
		if diff < 0 {
			diff = -diff
		}
		return diff <= 0.001 // within a picosecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStepsCounts(t *testing.T) {
	e := New()
	for i := 0; i < 17; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Steps() != 17 {
		t.Fatalf("Steps = %d, want 17", e.Steps())
	}
}

func TestCancelRemovesFromQueue(t *testing.T) {
	e := New()
	ev := e.Schedule(10, func() { t.Fatal("cancelled event fired") })
	e.Schedule(20, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	ev.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d, want 1 (cancelled events must leave the heap)", e.Pending())
	}
	ev.Cancel() // idempotent
	if e.Pending() != 1 {
		t.Fatalf("Pending after double cancel = %d, want 1", e.Pending())
	}
	e.Run()
	if e.Steps() != 1 {
		t.Fatalf("Steps = %d, want 1", e.Steps())
	}
}

func TestCancelFiredEventNoOp(t *testing.T) {
	e := New()
	ev := e.Schedule(5, func() {})
	e.Schedule(10, func() {})
	e.Run()
	ev.Cancel() // already fired: must not disturb the (empty) queue
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}

func TestCancelMidHeapPreservesOrder(t *testing.T) {
	e := New()
	var order []Time
	var evs []*Event
	for i := Time(1); i <= 50; i++ {
		i := i
		evs = append(evs, e.Schedule(i, func() { order = append(order, i) }))
	}
	// Cancel every third event, including interior heap positions.
	for i := 0; i < len(evs); i += 3 {
		evs[i].Cancel()
	}
	e.Run()
	want := 0
	for i := Time(1); i <= 50; i++ {
		if (i-1)%3 == 0 {
			continue
		}
		if order[want] != i {
			t.Fatalf("event %d fired out of order: got %v", i, order[:want+1])
		}
		want++
	}
	if len(order) != want {
		t.Fatalf("fired %d events, want %d", len(order), want)
	}
}

func TestCancelInsideCallback(t *testing.T) {
	e := New()
	var late *Event
	fired := false
	e.Schedule(1, func() { late.Cancel() })
	late = e.Schedule(2, func() { fired = true })
	e.Run()
	if fired {
		t.Fatal("event cancelled from an earlier callback still fired")
	}
}

func TestRunUntilSkipsCancelled(t *testing.T) {
	e := New()
	count := 0
	var evs []*Event
	for i := Time(1); i <= 10; i++ {
		evs = append(evs, e.Schedule(i*10, func() { count++ }))
	}
	evs[0].Cancel()
	evs[4].Cancel()
	e.RunUntil(50)
	if count != 3 {
		t.Fatalf("ran %d events until t=50, want 3", count)
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %d, want 50", e.Now())
	}
}
