package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// ShardGroup advances several Engines concurrently under a conservative
// time-window barrier (classic conservative PDES). Each shard owns one
// Engine and, between barriers, exactly one goroutine runs it: shard 0
// ("home") runs on the caller's goroutine, shards 1..n-1 each on a
// dedicated worker. All cross-shard communication goes through Send,
// which appends to a per-(from,to) outbox owned by the sending shard's
// goroutine; outboxes are drained into the target engines by the
// coordinator between windows, so no engine is ever touched by two
// goroutines at once.
//
// The window horizon is the conservative safe bound: a shard whose next
// pending event is at nd cannot emit a cross-shard message arriving
// before nd+lookahead(shard), so every event up to
//
//	W = min over busy shards of (NextDeadline + lookahead) - 1
//
// can run without ever seeing a message from the future. Lookahead is
// the per-shard lower bound on (arrival - now) of every Send the shard
// issues — the on-chip hop for the home shard, the DRAM burst time for
// channel shards — declared up front via SetLookahead.
//
// Determinism: at each barrier the messages bound for one target are
// sorted by (arrival, send time) with ties keeping (sending shard, send
// order), then injected carrying their send instant and entity tag as
// the engine's equal-deadline tie-break keys (ScheduleTimedSent). The
// engine's (at, key, tag, seq) total order then places each delivery
// exactly where the equivalent single-engine schedule call — made at the
// send instant by the tagged entity — would have landed, so a sharded
// run fires events in the same order as the unsharded run.
type ShardGroup struct {
	engines []*Engine
	look    []Time // per-shard lookahead (lower bound on send flight time)
	out     [][]outbox
	scratch []xmsg

	// Barrier state. epoch is the release store the workers spin on;
	// windowEnd is written before epoch and read after, so it is ordered
	// by the atomic. done[w] acknowledges worker w (padded to avoid
	// false sharing between acknowledging workers).
	windowEnd Time
	epoch     atomic.Uint64
	done      []ackSlot
	stop      atomic.Bool
	started   bool
	wg        sync.WaitGroup
}

type ackSlot struct {
	val atomic.Uint64
	_   [56]byte
}

// xmsg is one cross-shard message: fn is scheduled on the target engine
// at arrival time `at`, ordered by `sent` (the sender's clock at Send)
// and `tag` (the sending entity) against the target's own events.
type xmsg struct {
	at   Time
	sent Time
	from int32
	tag  int32
	fn   func(Time)
}

type outbox struct {
	msgs []xmsg
}

// NewShardGroup builds a group of n engines. Lookaheads default to the
// 1 ps minimum; callers placing components on a shard must declare that
// shard's real lookahead with SetLookahead or windows degenerate to
// single-event steps.
func NewShardGroup(n int) *ShardGroup {
	if n < 1 {
		panic(fmt.Sprintf("sim: ShardGroup needs at least 1 shard, got %d", n))
	}
	g := &ShardGroup{
		engines: make([]*Engine, n),
		look:    make([]Time, n),
		out:     make([][]outbox, n),
	}
	for i := range g.engines {
		g.engines[i] = New()
		g.look[i] = 1
		g.out[i] = make([]outbox, n)
	}
	if n > 1 {
		g.done = make([]ackSlot, n-1)
	}
	return g
}

// Shards reports the number of shards in the group.
func (g *ShardGroup) Shards() int { return len(g.engines) }

// Engine returns shard i's engine. Between RunUntil calls the caller's
// goroutine may use any engine; during a run only shard 0's engine may
// be touched, and only from the goroutine that called RunUntil.
func (g *ShardGroup) Engine(i int) *Engine { return g.engines[i] }

// SetLookahead declares shard i's lookahead: a lower bound on
// (arrival - Now()) of every Send the shard will ever issue. It must be
// at least 1 (zero lookahead admits no conservative window).
func (g *ShardGroup) SetLookahead(i int, l Time) {
	if l < 1 {
		panic(fmt.Sprintf("sim: shard %d lookahead %d < 1", i, l))
	}
	g.look[i] = l
}

// Lookahead reports shard i's declared lookahead.
func (g *ShardGroup) Lookahead(i int) Time { return g.look[i] }

// Send queues fn to run on shard `to` at time `at`, ordered as entity
// `tag` (0 for untagged senders). It must be called from shard `from`'s
// goroutine (during a window) or from the coordinator between windows,
// and `at` must respect `from`'s declared lookahead. Delivery happens at
// the next window barrier.
func (g *ShardGroup) Send(from, to int, at Time, tag int32, fn func(Time)) {
	b := &g.out[from][to]
	b.msgs = append(b.msgs, xmsg{at: at, sent: g.engines[from].Now(), from: int32(from), tag: tag, fn: fn})
}

// deliverAll drains every outbox into its target engine in deterministic
// merge order. Coordinator only, between windows.
func (g *ShardGroup) deliverAll() {
	for to, eng := range g.engines {
		buf := g.scratch[:0]
		for from := range g.engines {
			b := &g.out[from][to]
			buf = append(buf, b.msgs...)
			b.msgs = b.msgs[:0]
		}
		if len(buf) == 0 {
			continue
		}
		// Stable insertion sort by (at, sent): batches are small (a few
		// messages per window per target) and sort.Slice would allocate
		// its closure on this per-window path. Stability preserves the
		// (from, send-index) append order for fully tied keys.
		for i := 1; i < len(buf); i++ {
			m := buf[i]
			j := i - 1
			for j >= 0 && (buf[j].at > m.at || (buf[j].at == m.at && buf[j].sent > m.sent)) {
				buf[j+1] = buf[j]
				j--
			}
			buf[j+1] = m
		}
		// Injected events carry their send instant and entity tag as the
		// engine's equal-deadline tie-break keys, so a delivery sorts
		// against the target's own events exactly where the equivalent
		// single-engine schedule call (made at the send instant by the
		// tagged entity) would have landed.
		for i := range buf {
			eng.ScheduleTimedSent(buf[i].at, buf[i].sent, buf[i].tag, buf[i].fn)
		}
		g.scratch = buf[:0]
	}
}

// horizon computes the conservative window end, capped at max.
func (g *ShardGroup) horizon(max Time) (Time, bool) {
	w := max
	busy := false
	for i, e := range g.engines {
		if nd, ok := e.NextDeadline(); ok {
			busy = true
			if h := nd + g.look[i] - 1; h < w {
				w = h
			}
		}
	}
	return w, busy
}

// runWindow releases the workers to advance their shards to end, runs
// the home shard on the calling goroutine, and waits for all
// acknowledgements.
func (g *ShardGroup) runWindow(end Time) {
	g.ensureWorkers()
	g.windowEnd = end
	e := g.epoch.Add(1)
	g.engines[0].RunUntil(end)
	for w := range g.done {
		spins := 0
		for g.done[w].val.Load() < e {
			spins++
			if spins%256 == 0 {
				runtime.Gosched()
			}
		}
	}
}

func (g *ShardGroup) ensureWorkers() {
	if g.stop.Load() {
		panic("sim: ShardGroup used after Close")
	}
	if g.started || len(g.engines) == 1 {
		g.started = true
		return
	}
	g.started = true
	for i := 1; i < len(g.engines); i++ {
		g.wg.Add(1)
		go g.worker(i)
	}
}

func (g *ShardGroup) worker(i int) {
	defer g.wg.Done()
	eng := g.engines[i]
	ack := &g.done[i-1].val
	last := uint64(0)
	for {
		spins := 0
		for g.epoch.Load() == last {
			spins++
			if spins%256 == 0 {
				runtime.Gosched()
			}
		}
		last = g.epoch.Load()
		if g.stop.Load() {
			ack.Store(last)
			return
		}
		eng.RunUntil(g.windowEnd)
		ack.Store(last)
	}
}

// RunUntil advances every shard to time t, exchanging cross-shard
// messages at window barriers. On return all engines are quiescent at t
// and the caller's goroutine owns them all; messages produced in the
// final window (arriving after t) are already delivered and pending.
func (g *ShardGroup) RunUntil(t Time) {
	for {
		g.deliverAll()
		w, _ := g.horizon(t)
		if w >= t {
			g.runWindow(t)
			g.deliverAll()
			return
		}
		g.runWindow(w)
	}
}

// Run advances the group until every engine is drained and every outbox
// empty — the sharded analogue of Engine.Run.
func (g *ShardGroup) Run() {
	for {
		g.deliverAll()
		w, busy := g.horizon(Time(math.MaxInt64) - 1)
		if !busy {
			return
		}
		g.runWindow(w)
	}
}

// Now reports the home shard's clock.
func (g *ShardGroup) Now() Time { return g.engines[0].Now() }

// Steps reports total events executed across all shards.
func (g *ShardGroup) Steps() uint64 {
	var n uint64
	for _, e := range g.engines {
		n += e.Steps()
	}
	return n
}

// Reset returns every engine to time zero and clears all outboxes,
// keeping workers parked and internal storage for reuse — the sharded
// analogue of Engine.Reset.
func (g *ShardGroup) Reset() {
	for _, e := range g.engines {
		e.Reset()
	}
	for from := range g.out {
		for to := range g.out[from] {
			g.out[from][to].msgs = g.out[from][to].msgs[:0]
		}
	}
}

// Close terminates the worker goroutines. The group must not be run
// afterwards. Safe to call on a group that never ran.
func (g *ShardGroup) Close() {
	if !g.started || len(g.engines) == 1 {
		return
	}
	g.stop.Store(true)
	g.epoch.Add(1)
	g.wg.Wait()
}
