package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// InfLookahead marks a shard pair that never exchanges messages: the
// edge places no bound on either side's window. It is the default for
// every pair until SetLookahead declares otherwise, and Send panics on
// an undeclared edge — an undeclared-but-used edge would silently break
// the conservative window math.
const InfLookahead = Time(math.MaxInt64)

// maxRunTime is the window cap used by Run (drain mode). One below
// MaxInt64 so the +1 arithmetic around window ends cannot overflow.
const maxRunTime = Time(math.MaxInt64) - 1

// Barrier escalation budgets: a waiter spins spinBudget times, then
// calls runtime.Gosched another yieldBudget times, then parks on its
// wake channel until the other side unparks it. Spinning wins when the
// counterpart is actively running on another core; parking wins on
// oversubscribed or mostly-idle hosts where a spinner would only steal
// the cycles the counterpart needs to finish.
const (
	spinBudget  = 1 << 12
	yieldBudget = 1 << 6
)

// ShardGroup advances several Engines concurrently under a conservative
// time-window barrier (classic conservative PDES). Each shard owns one
// Engine and, between barriers, exactly one goroutine runs it: shard 0
// ("home") runs on the caller's goroutine, shards 1..n-1 each on a
// dedicated worker. All cross-shard communication goes through Send,
// which appends to a per-(from,to) outbox owned by the sending shard's
// goroutine; outboxes are drained into the target engines by the
// coordinator between windows, so no engine is ever touched by two
// goroutines at once.
//
// Windows are per shard, computed from an N×N lookahead matrix
// (SetLookahead(src, dst, l) = lower bound on arrival − send clock of
// every src→dst message; pairs that never talk stay at InfLookahead).
// Shard j's window end is the largest fixpoint of
//
//	end_j ≤ cap
//	end_j ≤ nd_i + look[i][j] − 1   for every busy shard i ≠ j
//	end_j ≤ end_i + look[i][j]      for every finite edge i→j
//
// The second line is the classic bound — a shard whose next pending
// event is at nd_i cannot emit a message arriving before nd_i +
// look[i][j]. The third line is the transitive guard the per-pair
// formula needs and a global-min horizon gets for free: shard i may be
// idle now but wake next window (a message from a third shard), and
// everything it ever sends after this window arrives strictly after
// end_i + look[i][j]; without this bound an unconstrained shard could
// run past a future sender's reach and receive a message in its own
// past. With positive edge weights the fixpoint is reached by at most
// n−1 Bellman–Ford relaxation passes over an n-shard graph.
//
// Determinism: at each barrier the messages bound for one target are
// sorted by (arrival, send time) with ties keeping (sending shard, send
// order), then injected carrying their send instant and entity tag as
// the engine's equal-deadline tie-break keys (ScheduleTimedSent). The
// engine's (at, key, tag, seq) total order then places each delivery
// exactly where the equivalent single-engine schedule call — made at the
// send instant by the tagged entity — would have landed, so a sharded
// run fires events in the same order as the unsharded run. Window
// placement only affects batching, never order, so widening windows is
// an execution-only change.
type ShardGroup struct {
	engines []*Engine
	look    [][]Time // look[src][dst]; InfLookahead = no edge
	out     [][]outbox
	scratch []xmsg
	ends    []Time // per-shard window ends, written before epoch release

	// global replays the PR-6 coupling for A/B measurement: one global
	// window end (min over busy shards of nd + min outbound lookahead,
	// minus one) for every shard, and a pure spin/yield barrier that
	// never parks.
	global bool

	// Barrier state. epoch is the release store the workers wait on;
	// ends is written before epoch and read after, so it is ordered by
	// the atomic. workers[w].ack acknowledges worker w (padded to avoid
	// false sharing between acknowledging workers).
	epoch   atomic.Uint64
	workers []workerSlot
	coord   parker
	stop    atomic.Bool
	started bool
	wg      sync.WaitGroup

	// Stats counters. Coordinator-owned fields are plain; per-worker
	// spin/yield/park counters live in the worker's slot, written only
	// by that worker and read at quiescence (the ack exchange orders
	// them).
	statWindows  uint64
	statWidthSum Time // home-shard window widths, summed
	statMsgs     uint64
	statBusy     []uint64 // windows in which shard i had a pending event
	statSpins    uint64   // coordinator-side ack-wait spins
	statYields   uint64
	statParks    uint64

	// windowHook, when set, observes each completed barrier window (see
	// SetWindowHook). Coordinator-owned.
	windowHook func(start, end Time)
}

// workerSlot is one worker's barrier endpoint: the ack word the
// coordinator waits on, the parker the coordinator pokes, and the
// worker-owned wait counters.
type workerSlot struct {
	ack    atomic.Uint64
	park   parker
	spins  uint64
	yields uint64
	parks  uint64
	_      [64]byte
}

// parker is a one-party park/unpark cell. The owner parks by storing
// parked and blocking on wake; any other party makes the owner's ready
// condition true first and then calls unpark, which hands the owner a
// wake token iff it won the parked→awake transition. At most one token
// is ever outstanding, so the buffered channel never blocks a sender.
type parker struct {
	status atomic.Int32 // 0 awake, 1 parked
	wake   chan struct{}
}

func (p *parker) unpark() {
	if p.status.CompareAndSwap(1, 0) {
		p.wake <- struct{}{}
	}
}

// park blocks until unparked, unless ready() already holds — the
// store/recheck ordering closes the race with an unparker that fired
// between the owner's last poll and the parked store.
func (p *parker) park(ready func() bool) {
	p.status.Store(1)
	if ready() {
		if !p.status.CompareAndSwap(1, 0) {
			<-p.wake // unparker won the CAS; consume its token
		}
		return
	}
	<-p.wake
}

// ShardStats is a snapshot of the group's window and barrier behavior,
// cumulative since construction or the last Reset. Read it between
// runs (coordinator goroutine) only.
type ShardStats struct {
	Windows   uint64    // barriers executed
	Messages  uint64    // cross-shard messages delivered
	AvgWindow Time      // mean home-shard window width (ps)
	Spins     uint64    // barrier spin iterations, all parties
	Yields    uint64    // runtime.Gosched calls while waiting
	Parks     uint64    // channel parks (blocking waits)
	BusyFrac  []float64 // per shard: fraction of windows it had work
}

// xmsg is one cross-shard message: fn is scheduled on the target engine
// at arrival time `at`, ordered by `sent` (the sender's clock at Send)
// and `tag` (the sending entity) against the target's own events.
type xmsg struct {
	at   Time
	sent Time
	from int32
	tag  int32
	fn   func(Time)
}

type outbox struct {
	msgs []xmsg
}

// NewShardGroup builds a group of n engines. Every pair starts at
// InfLookahead (no edge); callers must declare each src→dst pair that
// will carry messages with SetLookahead before sending on it.
func NewShardGroup(n int) *ShardGroup {
	if n < 1 {
		panic(fmt.Sprintf("sim: ShardGroup needs at least 1 shard, got %d", n))
	}
	g := &ShardGroup{
		engines:  make([]*Engine, n),
		look:     make([][]Time, n),
		out:      make([][]outbox, n),
		ends:     make([]Time, n),
		statBusy: make([]uint64, n),
	}
	for i := range g.engines {
		g.engines[i] = New()
		g.look[i] = make([]Time, n)
		for j := range g.look[i] {
			g.look[i][j] = InfLookahead
		}
		g.out[i] = make([]outbox, n)
	}
	if n > 1 {
		g.workers = make([]workerSlot, n-1)
		for w := range g.workers {
			g.workers[w].park.wake = make(chan struct{}, 1)
		}
	}
	g.coord.wake = make(chan struct{}, 1)
	return g
}

// Shards reports the number of shards in the group.
func (g *ShardGroup) Shards() int { return len(g.engines) }

// Engine returns shard i's engine. Between RunUntil calls the caller's
// goroutine may use any engine; during a run only shard 0's engine may
// be touched, and only from the goroutine that called RunUntil.
func (g *ShardGroup) Engine(i int) *Engine { return g.engines[i] }

// SetLookahead declares the src→dst edge: a lower bound on
// (arrival − sender's clock) of every Send from src to dst. It must be
// at least 1 — zero lookahead admits no conservative window — and
// replaces any earlier declaration for the pair. Components that share
// a shard must declare the minimum of their individual bounds.
func (g *ShardGroup) SetLookahead(src, dst int, l Time) {
	if src == dst {
		panic(fmt.Sprintf("sim: lookahead %d→%d is a self-edge", src, dst))
	}
	if l < 1 {
		panic(fmt.Sprintf("sim: lookahead %d→%d is %d, must be ≥ 1", src, dst, l))
	}
	g.look[src][dst] = l
}

// SetLookaheadOut declares every outbound edge of src at once — the
// common shape for the home shard, which talks to every device shard
// with the same minimum hop.
func (g *ShardGroup) SetLookaheadOut(src int, l Time) {
	for dst := range g.engines {
		if dst != src {
			g.SetLookahead(src, dst, l)
		}
	}
}

// Lookahead reports the declared src→dst lookahead (InfLookahead when
// the pair has no edge).
func (g *ShardGroup) Lookahead(src, dst int) Time { return g.look[src][dst] }

// TightenLookahead declares the src→dst edge at l unless an equal or
// tighter bound already stands — the order-independent form components
// sharing a shard (or a declaration site) use, since the edge must carry
// the minimum of every resident's bound.
func (g *ShardGroup) TightenLookahead(src, dst int, l Time) {
	if cur := g.look[src][dst]; cur == InfLookahead || l < cur {
		g.SetLookahead(src, dst, l)
	}
}

// SetWindowHook installs fn to observe each barrier window after it
// completes: start and end are the home shard's window bounds in
// simulated time, and fn runs on the coordinator goroutine with every
// worker quiescent, so it may read Stats(). This is the seam the
// telemetry layer's sim-timeline tracer attaches through — a callback
// rather than an import, so sim keeps its zero-dependency contract.
// Set it only between runs; nil removes the hook.
func (g *ShardGroup) SetWindowHook(fn func(start, end Time)) { g.windowHook = fn }

// SetGlobalCoupling switches the group to the PR-6 baseline behavior —
// one global window end shared by every shard and a spin/yield barrier
// that never parks — so the per-pair + adaptive configuration can be
// A/B-measured against it in the same process. Results are bit-exact
// either way; only wall-clock differs. Toggle only between runs.
func (g *ShardGroup) SetGlobalCoupling(on bool) { g.global = on }

// Send queues fn to run on shard `to` at time `at`, ordered as entity
// `tag` (0 for untagged senders). It must be called from shard `from`'s
// goroutine (during a window) or from the coordinator between windows.
// The edge must have been declared, and `at` must respect it — both are
// checked here, because one undeclared or understated edge turns into a
// silent determinism bug several layers up.
func (g *ShardGroup) Send(from, to int, at Time, tag int32, fn func(Time)) {
	l := g.look[from][to]
	if l == InfLookahead {
		panic(fmt.Sprintf("sim: Send on undeclared edge %d→%d (SetLookahead first)", from, to))
	}
	now := g.engines[from].Now()
	if at < now+l {
		panic(fmt.Sprintf("sim: Send %d→%d at %d violates lookahead %d (sender clock %d)", from, to, at, l, now))
	}
	b := &g.out[from][to]
	b.msgs = append(b.msgs, xmsg{at: at, sent: now, from: int32(from), tag: tag, fn: fn})
}

// deliverAll drains every outbox into its target engine in deterministic
// merge order. Coordinator only, between windows.
func (g *ShardGroup) deliverAll() {
	for to, eng := range g.engines {
		buf := g.scratch[:0]
		for from := range g.engines {
			b := &g.out[from][to]
			buf = append(buf, b.msgs...)
			b.msgs = b.msgs[:0]
		}
		if len(buf) == 0 {
			continue
		}
		// Stable insertion sort by (at, sent): batches are small (a few
		// messages per window per target) and sort.Slice would allocate
		// its closure on this per-window path. Stability preserves the
		// (from, send-index) append order for fully tied keys.
		for i := 1; i < len(buf); i++ {
			m := buf[i]
			j := i - 1
			for j >= 0 && (buf[j].at > m.at || (buf[j].at == m.at && buf[j].sent > m.sent)) {
				buf[j+1] = buf[j]
				j--
			}
			buf[j+1] = m
		}
		// Injected events carry their send instant and entity tag as the
		// engine's equal-deadline tie-break keys, so a delivery sorts
		// against the target's own events exactly where the equivalent
		// single-engine schedule call (made at the send instant by the
		// tagged entity) would have landed.
		for i := range buf {
			if buf[i].at < eng.Now() {
				panic(fmt.Sprintf("sim: message from shard %d arrives at %d, behind shard %d's clock %d — lookahead contract broken",
					buf[i].from, buf[i].at, to, eng.Now()))
			}
			eng.ScheduleTimedSent(buf[i].at, buf[i].sent, buf[i].tag, buf[i].fn)
		}
		g.statMsgs += uint64(len(buf))
		g.scratch = buf[:0]
	}
}

// saturating nd + l, kept below the +1 overflow line.
func addLook(nd, l Time) Time {
	if nd > maxRunTime-l {
		return maxRunTime
	}
	return nd + l
}

// horizons fills g.ends with each shard's conservative window end,
// capped at max, and reports whether any shard had pending work. See
// the type comment for the fixpoint the ends satisfy.
func (g *ShardGroup) horizons(max Time) bool {
	n := len(g.engines)
	busy := false
	if g.global {
		// PR-6 baseline: one window end for everyone, each shard
		// contributing its minimum outbound lookahead.
		w := max
		for i, e := range g.engines {
			if nd, ok := e.NextDeadline(); ok {
				busy = true
				l := InfLookahead
				for j, lj := range g.look[i] {
					if j != i && lj < l {
						l = lj
					}
				}
				if l == InfLookahead {
					l = 1
				}
				if h := addLook(nd, l) - 1; h < w {
					w = h
				}
			}
		}
		for j := range g.ends {
			g.ends[j] = w
		}
	} else {
		for j := range g.ends {
			g.ends[j] = max
		}
		for i, e := range g.engines {
			nd, ok := e.NextDeadline()
			if !ok {
				continue
			}
			busy = true
			g.statBusy[i]++
			for j := range g.engines {
				if j == i {
					continue
				}
				if l := g.look[i][j]; l != InfLookahead {
					if h := addLook(nd, l) - 1; h < g.ends[j] {
						g.ends[j] = h
					}
				}
			}
		}
		// Transitive relaxation: everything shard i sends after this
		// window arrives strictly after end_i + look[i][j], so end_j
		// must not outrun that bound even when i is idle right now.
		// Positive edges mean n−1 passes reach the fixpoint; almost
		// always one pass suffices and the loop exits early.
		for pass := 1; pass < n; pass++ {
			changed := false
			for i := range g.engines {
				for j := range g.engines {
					if i == j {
						continue
					}
					if l := g.look[i][j]; l != InfLookahead {
						if h := addLook(g.ends[i], l); h < g.ends[j] {
							g.ends[j] = h
							changed = true
						}
					}
				}
			}
			if !changed {
				break
			}
		}
	}
	// A window never moves a clock backwards: a shard whose bound fell
	// below its clock (possible only through the cap) just sits out.
	for j, e := range g.engines {
		if now := e.Now(); g.ends[j] < now {
			g.ends[j] = now
		}
	}
	if busy {
		g.statWindows++
		g.statWidthSum += g.ends[0] - g.engines[0].Now()
		if g.global {
			for i, e := range g.engines {
				if _, ok := e.NextDeadline(); ok {
					g.statBusy[i]++
				}
			}
		}
	}
	return busy
}

// runWindow releases the workers to advance their shards to their
// window ends (already in g.ends), runs the home shard on the calling
// goroutine, and waits for all acknowledgements. The ack wait is
// deferred so that a panic escaping a home-shard callback still leaves
// every worker quiescent — after recovering, Reset restores the group
// to a runnable state.
func (g *ShardGroup) runWindow() {
	g.ensureWorkers()
	start := g.engines[0].Now()
	e := g.epoch.Add(1)
	for w := range g.workers {
		g.workers[w].park.unpark()
	}
	// LIFO defers: acks are collected first, then the hook observes the
	// fully quiescent window — and both still run if a home-shard
	// callback panics, leaving the group Reset-able.
	if g.windowHook != nil {
		defer func() { g.windowHook(start, g.ends[0]) }()
	}
	defer g.awaitAcks(e)
	g.engines[0].RunUntil(g.ends[0])
}

// awaitAcks blocks until every worker has acknowledged epoch e,
// escalating spin → yield → park per worker.
func (g *ShardGroup) awaitAcks(e uint64) {
	for w := range g.workers {
		ack := &g.workers[w].ack
		if ack.Load() >= e {
			continue
		}
		spins := 0
		for ack.Load() < e {
			spins++
			if spins <= spinBudget {
				g.statSpins++
				continue
			}
			if spins <= spinBudget+yieldBudget {
				g.statYields++
				runtime.Gosched()
				continue
			}
			g.statParks++
			g.coord.park(func() bool { return ack.Load() >= e })
			spins = 0
		}
	}
}

func (g *ShardGroup) ensureWorkers() {
	if g.stop.Load() {
		panic("sim: ShardGroup used after Close")
	}
	if g.started || len(g.engines) == 1 {
		g.started = true
		return
	}
	g.started = true
	for i := 1; i < len(g.engines); i++ {
		g.wg.Add(1)
		go g.worker(i)
	}
}

func (g *ShardGroup) worker(i int) {
	defer g.wg.Done()
	eng := g.engines[i]
	slot := &g.workers[i-1]
	spinOnly := g.global // never toggled mid-run; workers exist only between ensureWorkers and Close
	last := uint64(0)
	// Wait counters accumulate in locals and are published into the
	// slot only between the epoch acquire and the ack release: the slot
	// must look frozen to the coordinator whenever it can legally read
	// it (Stats/Reset run with all acks in), and this worker spins on
	// right through those moments.
	var waitSpins, waitYields, waitParks uint64
	for {
		spins := 0
		for g.epoch.Load() == last {
			spins++
			if spins <= spinBudget {
				waitSpins++
				continue
			}
			if spinOnly || spins <= spinBudget+yieldBudget {
				waitYields++
				runtime.Gosched()
				continue
			}
			waitParks++
			slot.park.park(func() bool { return g.epoch.Load() != last })
			spins = 0
		}
		last = g.epoch.Load()
		if !g.stop.Load() {
			eng.RunUntil(g.ends[i])
		}
		slot.spins += waitSpins
		slot.yields += waitYields
		slot.parks += waitParks
		waitSpins, waitYields, waitParks = 0, 0, 0
		slot.ack.Store(last)
		g.coord.unpark()
		if g.stop.Load() {
			return
		}
	}
}

// RunUntil advances every shard to time t, exchanging cross-shard
// messages at window barriers. On return all engines are quiescent at t
// and the caller's goroutine owns them all; messages produced in the
// final window (arriving after t) are already delivered and pending.
func (g *ShardGroup) RunUntil(t Time) {
	for {
		g.deliverAll()
		g.horizons(t)
		final := true
		for _, end := range g.ends {
			if end < t {
				final = false
				break
			}
		}
		g.runWindow()
		if final {
			g.deliverAll()
			return
		}
	}
}

// Run advances the group until every engine is drained and every outbox
// empty — the sharded analogue of Engine.Run.
func (g *ShardGroup) Run() {
	for {
		g.deliverAll()
		if !g.horizons(maxRunTime) {
			return
		}
		g.runWindow()
	}
}

// Now reports the home shard's clock.
func (g *ShardGroup) Now() Time { return g.engines[0].Now() }

// Steps reports total events executed across all shards.
func (g *ShardGroup) Steps() uint64 {
	var n uint64
	for _, e := range g.engines {
		n += e.Steps()
	}
	return n
}

// Stats snapshots window and barrier counters accumulated since
// construction or the last Reset. Coordinator goroutine, between runs
// only — worker counters are read under the quiescence the last ack
// exchange established.
func (g *ShardGroup) Stats() ShardStats {
	s := ShardStats{
		Windows:  g.statWindows,
		Messages: g.statMsgs,
		Spins:    g.statSpins,
		Yields:   g.statYields,
		Parks:    g.statParks,
		BusyFrac: make([]float64, len(g.engines)),
	}
	if g.statWindows > 0 {
		s.AvgWindow = g.statWidthSum / Time(g.statWindows)
		for i, b := range g.statBusy {
			s.BusyFrac[i] = float64(b) / float64(g.statWindows)
		}
	}
	for w := range g.workers {
		s.Spins += g.workers[w].spins
		s.Yields += g.workers[w].yields
		s.Parks += g.workers[w].parks
	}
	return s
}

// Reset returns every engine to time zero, clears all outboxes and
// stats, keeping workers parked and internal storage for reuse — the
// sharded analogue of Engine.Reset. Lookahead declarations survive.
func (g *ShardGroup) Reset() {
	for _, e := range g.engines {
		e.Reset()
	}
	for from := range g.out {
		for to := range g.out[from] {
			g.out[from][to].msgs = g.out[from][to].msgs[:0]
		}
	}
	g.statWindows = 0
	g.statWidthSum = 0
	g.statMsgs = 0
	g.statSpins = 0
	g.statYields = 0
	g.statParks = 0
	for i := range g.statBusy {
		g.statBusy[i] = 0
	}
	// Workers are quiescent here (last window fully acked), so their
	// counters may be cleared from the coordinator; the next epoch
	// release publishes the writes back to them.
	for w := range g.workers {
		g.workers[w].spins = 0
		g.workers[w].yields = 0
		g.workers[w].parks = 0
	}
}

// Close terminates the worker goroutines. The group must not be run
// afterwards. Safe to call on a group that never ran.
func (g *ShardGroup) Close() {
	if !g.started || len(g.engines) == 1 {
		g.stop.Store(true)
		return
	}
	g.stop.Store(true)
	g.epoch.Add(1)
	for w := range g.workers {
		g.workers[w].park.unpark()
	}
	g.wg.Wait()
}
