package sim

import (
	"testing"
)

// TestScheduleTimedSentOrder pins the keyed total order: equal-deadline
// events fire by (schedule/send instant, entity tag, schedule order), and
// plain schedules carry the current clock as their instant.
func TestScheduleTimedSentOrder(t *testing.T) {
	eng := New()
	var order []int
	rec := func(id int) func(Time) {
		return func(Time) { order = append(order, id) }
	}
	// All inserted at now=0 for deadline 100, in an order chosen to
	// disagree with every tie-break level.
	eng.ScheduleTimedSent(100, 5, 0, rec(5)) // latest instant: last
	eng.ScheduleTimedSent(100, 3, 2, rec(4)) // instant 3, tag 2
	eng.ScheduleTimedSent(100, 3, 1, rec(2)) // instant 3, tag 1, first scheduled
	eng.ScheduleTimedSent(100, 3, 1, rec(3)) // same instant+tag: schedule order
	eng.ScheduleTimed(100, rec(1))           // local: instant = now = 0, first
	eng.Run()
	for i, id := range order {
		if id != i+1 {
			t.Fatalf("fire order %v, want [1 2 3 4 5]", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("fired %d events, want 5", len(order))
	}
}

// TestShardGroupMergeOrder drives equal-arrival cross-shard messages from
// two shards and checks they fire on the home engine in send-instant order
// with tag breaking exact ties — independent of which shard's outbox
// drains first.
func TestShardGroupMergeOrder(t *testing.T) {
	g := NewShardGroup(3)
	defer g.Close()
	var order []int
	rec := func(id int) func(Time) {
		return func(Time) { order = append(order, id) }
	}
	// Shard 2 sends earlier (instant 10) than shard 1 (instant 20), both
	// arriving at 1000: the instant must win over the shard index. Two
	// sends from shard 1 at the same instant with different tags order by
	// tag even though appended in the opposite order.
	g.Engine(2).Schedule(10, func() { g.Send(2, 0, 1000, 9, rec(1)) })
	g.Engine(1).Schedule(20, func() {
		g.Send(1, 0, 1000, 7, rec(3))
		g.Send(1, 0, 1000, 6, rec(2))
	})
	// A home event at the same deadline scheduled at instant 0: first.
	g.Engine(0).ScheduleTimed(1000, rec(0))
	g.Run()
	if len(order) != 4 {
		t.Fatalf("fired %d events, want 4", len(order))
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("fire order %v, want [0 1 2 3]", order)
		}
	}
}

// TestShardGroupConservativeWindows checks messages land on time under the
// lookahead contract even when the sender's clock runs far ahead of the
// receiver between barriers.
func TestShardGroupConservativeWindows(t *testing.T) {
	g := NewShardGroup(2)
	defer g.Close()
	const look = 50
	g.SetLookahead(1, look)
	var got []Time
	var tick func()
	n := 0
	tick = func() {
		at := g.Engine(1).Now() + look
		g.Send(1, 0, at, 0, func(fireAt Time) {
			if now := g.Engine(0).Now(); now != fireAt {
				t.Errorf("delivery fired at %d, scheduled for %d", now, fireAt)
			}
			got = append(got, fireAt)
		})
		n++
		if n < 100 {
			g.Engine(1).After(7, tick)
		}
	}
	g.Engine(1).Schedule(1, tick)
	g.Run()
	if len(got) != 100 {
		t.Fatalf("delivered %d messages, want 100", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("deliveries out of order: %d after %d", got[i], got[i-1])
		}
	}
}

// TestShardGroupRunUntilReset checks partial advance and reuse: RunUntil
// leaves every engine quiescent at t, Reset returns the group to time
// zero with outboxes cleared, and a second run reproduces the first.
func TestShardGroupRunUntilReset(t *testing.T) {
	run := func(g *ShardGroup) int {
		fired := 0
		var tick func()
		tick = func() {
			fired++
			g.Send(1, 0, g.Engine(1).Now()+1, 0, func(Time) {})
			if fired < 500 {
				g.Engine(1).After(3, tick)
			}
		}
		g.Engine(1).Schedule(0, tick)
		g.RunUntil(600)
		if g.Now() != 600 {
			t.Fatalf("home clock %d after RunUntil(600)", g.Now())
		}
		g.Run()
		return fired
	}
	g := NewShardGroup(2)
	defer g.Close()
	first := run(g)
	g.Reset()
	if g.Now() != 0 {
		t.Fatalf("home clock %d after Reset", g.Now())
	}
	second := run(g)
	if first != second || first != 500 {
		t.Fatalf("runs fired %d then %d events, want 500 both", first, second)
	}
}

// TestShardGroupGuards pins the misuse panics: zero shards, invalid
// lookahead, and running a closed group.
func TestShardGroupGuards(t *testing.T) {
	expectPanic(t, "zero shards", func() { NewShardGroup(0) })
	expectPanic(t, "zero lookahead", func() {
		g := NewShardGroup(2)
		defer g.Close()
		g.SetLookahead(1, 0)
	})
	expectPanic(t, "run after Close", func() {
		g := NewShardGroup(2)
		g.Engine(1).Schedule(5, func() {})
		g.Run()
		g.Close()
		g.Engine(1).Schedule(5, func() {})
		g.Run()
	})
}

func expectPanic(t *testing.T, label string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", label)
		}
	}()
	fn()
}
