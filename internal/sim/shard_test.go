package sim

import (
	"testing"
)

// TestScheduleTimedSentOrder pins the keyed total order: equal-deadline
// events fire by (schedule/send instant, entity tag, schedule order), and
// plain schedules carry the current clock as their instant.
func TestScheduleTimedSentOrder(t *testing.T) {
	eng := New()
	var order []int
	rec := func(id int) func(Time) {
		return func(Time) { order = append(order, id) }
	}
	// All inserted at now=0 for deadline 100, in an order chosen to
	// disagree with every tie-break level.
	eng.ScheduleTimedSent(100, 5, 0, rec(5)) // latest instant: last
	eng.ScheduleTimedSent(100, 3, 2, rec(4)) // instant 3, tag 2
	eng.ScheduleTimedSent(100, 3, 1, rec(2)) // instant 3, tag 1, first scheduled
	eng.ScheduleTimedSent(100, 3, 1, rec(3)) // same instant+tag: schedule order
	eng.ScheduleTimed(100, rec(1))           // local: instant = now = 0, first
	eng.Run()
	for i, id := range order {
		if id != i+1 {
			t.Fatalf("fire order %v, want [1 2 3 4 5]", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("fired %d events, want 5", len(order))
	}
}

// TestShardGroupMergeOrder drives equal-arrival cross-shard messages from
// two shards and checks they fire on the home engine in send-instant order
// with tag breaking exact ties — independent of which shard's outbox
// drains first.
func TestShardGroupMergeOrder(t *testing.T) {
	g := NewShardGroup(3)
	defer g.Close()
	g.SetLookahead(1, 0, 100)
	g.SetLookahead(2, 0, 100)
	var order []int
	rec := func(id int) func(Time) {
		return func(Time) { order = append(order, id) }
	}
	// Shard 2 sends earlier (instant 10) than shard 1 (instant 20), both
	// arriving at 1000: the instant must win over the shard index. Two
	// sends from shard 1 at the same instant with different tags order by
	// tag even though appended in the opposite order.
	g.Engine(2).Schedule(10, func() { g.Send(2, 0, 1000, 9, rec(1)) })
	g.Engine(1).Schedule(20, func() {
		g.Send(1, 0, 1000, 7, rec(3))
		g.Send(1, 0, 1000, 6, rec(2))
	})
	// A home event at the same deadline scheduled at instant 0: first.
	g.Engine(0).ScheduleTimed(1000, rec(0))
	g.Run()
	if len(order) != 4 {
		t.Fatalf("fired %d events, want 4", len(order))
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("fire order %v, want [0 1 2 3]", order)
		}
	}
}

// TestShardGroupConservativeWindows checks messages land on time under the
// lookahead contract even when the sender's clock runs far ahead of the
// receiver between barriers.
func TestShardGroupConservativeWindows(t *testing.T) {
	g := NewShardGroup(2)
	defer g.Close()
	const look = 50
	g.SetLookahead(1, 0, look)
	var got []Time
	var tick func()
	n := 0
	tick = func() {
		at := g.Engine(1).Now() + look
		g.Send(1, 0, at, 0, func(fireAt Time) {
			if now := g.Engine(0).Now(); now != fireAt {
				t.Errorf("delivery fired at %d, scheduled for %d", now, fireAt)
			}
			got = append(got, fireAt)
		})
		n++
		if n < 100 {
			g.Engine(1).After(7, tick)
		}
	}
	g.Engine(1).Schedule(1, tick)
	g.Run()
	if len(got) != 100 {
		t.Fatalf("delivered %d messages, want 100", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("deliveries out of order: %d after %d", got[i], got[i-1])
		}
	}
}

// TestShardGroupRunUntilReset checks partial advance and reuse: RunUntil
// leaves every engine quiescent at t, Reset returns the group to time
// zero with outboxes cleared, and a second run reproduces the first.
func TestShardGroupRunUntilReset(t *testing.T) {
	run := func(g *ShardGroup) int {
		fired := 0
		var tick func()
		tick = func() {
			fired++
			g.Send(1, 0, g.Engine(1).Now()+1, 0, func(Time) {})
			if fired < 500 {
				g.Engine(1).After(3, tick)
			}
		}
		g.Engine(1).Schedule(0, tick)
		g.RunUntil(600)
		if g.Now() != 600 {
			t.Fatalf("home clock %d after RunUntil(600)", g.Now())
		}
		g.Run()
		return fired
	}
	g := NewShardGroup(2)
	defer g.Close()
	g.SetLookahead(1, 0, 1)
	first := run(g)
	g.Reset()
	if g.Now() != 0 {
		t.Fatalf("home clock %d after Reset", g.Now())
	}
	second := run(g)
	if first != second || first != 500 {
		t.Fatalf("runs fired %d then %d events, want 500 both", first, second)
	}
}

// TestShardGroupGuards pins the misuse panics: zero shards, invalid
// lookahead declarations, undeclared or understated sends, and running
// a closed group.
func TestShardGroupGuards(t *testing.T) {
	expectPanic(t, "zero shards", func() { NewShardGroup(0) })
	expectPanic(t, "zero lookahead", func() {
		g := NewShardGroup(2)
		defer g.Close()
		g.SetLookahead(1, 0, 0)
	})
	expectPanic(t, "negative lookahead", func() {
		g := NewShardGroup(2)
		defer g.Close()
		g.SetLookahead(0, 1, -5)
	})
	expectPanic(t, "self-edge lookahead", func() {
		g := NewShardGroup(2)
		defer g.Close()
		g.SetLookahead(1, 1, 10)
	})
	expectPanic(t, "send on undeclared edge", func() {
		g := NewShardGroup(2)
		defer g.Close()
		g.Send(1, 0, 100, 0, func(Time) {})
	})
	expectPanic(t, "send below declared lookahead", func() {
		g := NewShardGroup(2)
		defer g.Close()
		g.SetLookahead(1, 0, 50)
		g.Send(1, 0, 49, 0, func(Time) {})
	})
	expectPanic(t, "run after Close", func() {
		g := NewShardGroup(2)
		g.Engine(1).Schedule(5, func() {})
		g.Run()
		g.Close()
		g.Engine(1).Schedule(5, func() {})
		g.Run()
	})
	expectPanic(t, "run after Close, never started", func() {
		g := NewShardGroup(2)
		g.Close()
		g.Engine(1).Schedule(5, func() {})
		g.Run()
	})
}

// TestShardGroupPerPairWindows pins the point of the lookahead matrix: a
// shard with no outbound edges (or only high-latency ones) must not
// throttle everyone else's windows the way the PR-6 global-min horizon
// did. Shard 2 executes 1000 internal events it never tells anyone
// about; under global coupling every one of them bounds the window, so
// the drain takes over a thousand barriers, while per-pair horizons let
// shard 2 run its whole schedule inside a handful of windows. The fire
// order on the home shard must be identical either way.
func TestShardGroupPerPairWindows(t *testing.T) {
	build := func(g *ShardGroup) *[]Time {
		g.SetLookahead(1, 0, 10)
		g.SetLookahead(0, 1, 10)
		g.SetLookahead(0, 2, 10000)
		trace := &[]Time{}
		var chat func()
		n := 0
		chat = func() {
			at := g.Engine(1).Now() + 10
			g.Send(1, 0, at, 1, func(fireAt Time) { *trace = append(*trace, fireAt) })
			n++
			if n < 50 {
				g.Engine(1).After(10, chat)
			}
		}
		g.Engine(1).Schedule(1, chat)
		var spin func()
		m := 0
		spin = func() {
			m++
			if m < 1000 {
				g.Engine(2).After(1, spin)
			}
		}
		g.Engine(2).Schedule(1, spin)
		return trace
	}

	perPair := NewShardGroup(3)
	defer perPair.Close()
	traceA := build(perPair)
	perPair.Run()

	global := NewShardGroup(3)
	defer global.Close()
	global.SetGlobalCoupling(true)
	traceB := build(global)
	global.Run()

	if len(*traceA) != 50 || len(*traceB) != 50 {
		t.Fatalf("traces have %d and %d deliveries, want 50", len(*traceA), len(*traceB))
	}
	for i := range *traceA {
		if (*traceA)[i] != (*traceB)[i] {
			t.Fatalf("delivery %d at %d per-pair vs %d global", i, (*traceA)[i], (*traceB)[i])
		}
	}
	sp, sg := perPair.Stats(), global.Stats()
	if sg.Windows < 1000 {
		t.Fatalf("global coupling ran %d windows, expected shard 2's 1000 events to force ≥1000", sg.Windows)
	}
	if sp.Windows*4 > sg.Windows {
		t.Fatalf("per-pair windows (%d) not substantially fewer than global (%d)", sp.Windows, sg.Windows)
	}
}

// TestShardGroupResetAfterPanic checks the group survives a panic that
// escapes a home-shard callback mid-window: the deferred ack wait
// leaves the workers quiescent, so after recovering the caller can
// Reset and reuse the group.
func TestShardGroupResetAfterPanic(t *testing.T) {
	g := NewShardGroup(2)
	defer g.Close()
	g.SetLookahead(1, 0, 5)

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("home-shard panic did not propagate")
			}
		}()
		g.Engine(1).Schedule(1, func() {
			g.Send(1, 0, g.Engine(1).Now()+5, 0, func(Time) {})
		})
		g.Engine(0).Schedule(3, func() { panic("boom") })
		g.Run()
	}()

	g.Reset()
	if g.Now() != 0 {
		t.Fatalf("home clock %d after Reset", g.Now())
	}
	delivered := 0
	g.Engine(1).Schedule(1, func() {
		g.Send(1, 0, g.Engine(1).Now()+5, 0, func(Time) { delivered++ })
	})
	g.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d messages after panic+Reset, want 1", delivered)
	}
}

// TestShardGroupStats sanity-checks the counters: windows and messages
// accumulate during a run, busy fractions are per shard and bounded,
// and Reset clears everything.
func TestShardGroupStats(t *testing.T) {
	g := NewShardGroup(2)
	defer g.Close()
	g.SetLookahead(1, 0, 5)
	for i := 0; i < 20; i++ {
		at := Time(1 + i*10)
		g.Engine(1).Schedule(at, func() {
			g.Send(1, 0, g.Engine(1).Now()+5, 0, func(Time) {})
		})
	}
	g.Run()
	s := g.Stats()
	if s.Windows == 0 {
		t.Fatal("no windows counted")
	}
	if s.Messages != 20 {
		t.Fatalf("counted %d messages, want 20", s.Messages)
	}
	if s.AvgWindow <= 0 {
		t.Fatalf("average window width %d, want > 0", s.AvgWindow)
	}
	if len(s.BusyFrac) != 2 {
		t.Fatalf("busy fractions for %d shards, want 2", len(s.BusyFrac))
	}
	for i, f := range s.BusyFrac {
		if f < 0 || f > 1 {
			t.Fatalf("shard %d busy fraction %v out of [0,1]", i, f)
		}
	}
	if s.BusyFrac[1] == 0 {
		t.Fatal("shard 1 did all the work but has zero busy fraction")
	}
	g.Reset()
	s = g.Stats()
	if s.Windows != 0 || s.Messages != 0 || s.Spins != 0 {
		t.Fatalf("stats not cleared by Reset: %+v", s)
	}
}

func expectPanic(t *testing.T, label string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", label)
		}
	}()
	fn()
}
