// Package sim provides the discrete-event simulation kernel used by every
// timed model in the repository.
//
// Time is an integer count of picoseconds. An integer base avoids the drift
// a float64 clock accumulates over billions of events and makes simulations
// bit-reproducible across machines. One picosecond resolves every JEDEC
// timing in the DDR4/DDR5/HBM generations (the finest is a fraction of a
// 0.357 ns DDR5-5600 clock) without rounding.
//
// # Fast path
//
// The kernel is built for the workload the Mess sweep produces: millions of
// short-horizon events (DDR command timing, pacing, completion callbacks)
// per curve point. Three mechanisms keep the per-event cost down:
//
//   - a free-list event pool: event records are recycled as soon as they
//     fire or are swept, so steady-state simulation schedules without
//     allocating. Handles carry a generation counter, making Cancel on an
//     already-fired (and possibly recycled) event a safe no-op;
//   - a calendar timer wheel in front of the heap: events within the wheel
//     horizon (1024 buckets × 256 ps ≈ 262 ns — which covers DDR timing,
//     issue pacing and completion latencies) are placed in O(1) buckets
//     found again via an occupancy bitmap; only far-future events (refresh
//     epochs, coarse pacing ladders) pay for the binary heap;
//   - cancellation by tombstone: Cancel marks the event dead in O(1) and
//     the sweep recycles it when its position drains, instead of restoring
//     heap shape on every cancel.
//
// Steady-rate components should hold a Timer (re-armable one-shot with a
// fixed callback) or a Ticker (fixed-period recurring event) instead of
// scheduling fresh closures, which removes the remaining per-event closure
// allocations from their paths.
//
// # Determinism
//
// Events fire in strictly increasing (deadline, schedule order): equal-time
// events run exactly in the order they were scheduled, regardless of which
// internal structure (active list, wheel bucket, overflow heap) held them.
// Two runs that schedule the same events in the same order execute
// identically — Steps(), Now() and every callback interleaving match. The
// wheel is an internal routing layer only; it never reorders events with
// respect to the (at, seq) total order the original heap implemented.
package sim

import "math/bits"

// Time is a simulation timestamp in picoseconds.
type Time int64

// Common time units, expressed in the picosecond base.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * 1000
	Millisecond Time = 1000 * 1000 * 1000
	Second      Time = 1000 * 1000 * 1000 * 1000
)

// Nanoseconds reports t as a float64 nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds reports t as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromNanoseconds converts a float64 nanosecond count to a Time, rounding to
// the nearest picosecond.
func FromNanoseconds(ns float64) Time { return Time(ns*float64(Nanosecond) + 0.5) }

// Timer-wheel geometry. Buckets span 2^granBits picoseconds; the wheel
// covers wheelSize buckets. Events within the horizon are bucketed in O(1);
// events beyond it go to the overflow heap and cascade into the wheel as
// the cursor approaches them.
const (
	granBits  = 8                     // 256 ps per bucket
	wheelBits = 10                    // 1024 buckets
	wheelSize = int64(1) << wheelBits // slots covered by the wheel window
	wheelMask = wheelSize - 1         //
	occWords  = int(wheelSize / 64)   // occupancy bitmap words
)

// event is one scheduled callback record. Records are pooled: after firing
// (or after a cancelled record is swept) the record returns to the engine's
// free list with its generation bumped, which invalidates every Handle that
// still points at it.
type event struct {
	at    Time
	key   Time   // schedule instant (or cross-engine send instant): first tie-break
	seq   uint64 // final tie-break so equal-(at, key, tag) events run in schedule order
	gen   uint64 // bumped on recycle; Handles must match to act
	tag   int32  // scheduling entity (0 = default); orders (at, key) ties across entities
	dead  bool   // cancelled tombstone, swept lazily
	inCur bool   // resident in the active run (drives tombstone compaction)
	fn    func()
	tfn   func(Time) // timed variant: called with the deadline
	next  *event     // free-list link
}

// Handle identifies one scheduled event. The zero Handle is valid and inert.
// Handles are values: copying one copies the right to cancel.
type Handle struct {
	eng *Engine
	ev  *event
	gen uint64
}

// live reports whether the handle still names a pending event.
func (h Handle) live() bool { return h.ev != nil && h.ev.gen == h.gen && !h.ev.dead }

// Pending reports whether the handle still names a queued event: false once
// the event has fired, was cancelled, or for the zero Handle. Components
// that retain handles to their own scheduled work (the DRAM controller's
// completion ring) use it to prune records that the engine already served.
func (h Handle) Pending() bool { return h.live() }

// Cancel removes the pending event in O(1). Cancelling an event that has
// already fired, was already cancelled, or was never scheduled (the zero
// Handle) is a no-op: the generation counter detects a recycled record, so
// a stale handle can never cancel an unrelated future event.
func (h Handle) Cancel() {
	if !h.live() {
		return
	}
	h.ev.dead = true
	h.ev.fn, h.ev.tfn = nil, nil
	h.eng.live--
	if h.ev.inCur {
		h.eng.curDead++
	}
}

// Engine is a single-threaded discrete-event scheduler. It is intentionally
// not safe for concurrent use: every simulation instance owns one engine and
// runs on one goroutine; experiments parallelize across engines.
type Engine struct {
	now    Time
	seq    uint64
	nsteps uint64
	live   int // pending, non-cancelled events

	// cur is the active sorted run: every queued event whose slot is
	// ≤ wslot, ordered by (at, seq) and served from curPos. New events
	// landing at or before the cursor are merge-inserted here. curDead
	// counts tombstones resident in the unserved tail: when they dominate
	// it, insertCur compacts instead of memmoving over dead records —
	// without this, schedule+cancel churn at the cursor degenerates to
	// O(n) per insert.
	cur     []*event
	curPos  int
	curDead int

	wslot   int64 // wheel cursor: absolute slot (at >> granBits)
	wheelN  int   // events resident in buckets
	buckets [wheelSize][]*event
	occ     [occWords]uint64

	overflow []*event // min-heap by (at, seq): events beyond the horizon

	pool *event // free list of recycled records

	bound    Time // active RunUntil target, for RunBound
	hasBound bool
}

// New returns an Engine with its clock at zero.
func New() *Engine { return &Engine{} }

// Now reports the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Steps reports how many events have been executed.
func (e *Engine) Steps() uint64 { return e.nsteps }

// Pending reports the number of live queued events. Cancelled events never
// count here, even while their tombstones await sweeping.
func (e *Engine) Pending() int { return e.live }

// Schedule queues fn to run at absolute time at. Scheduling in the past
// (before Now) fires the event at Now; the kernel never runs time backwards.
func (e *Engine) Schedule(at Time, fn func()) Handle { return e.add(at, fn, nil) }

// After queues fn to run d picoseconds from now.
func (e *Engine) After(d Time, fn func()) Handle { return e.add(e.now+d, fn, nil) }

// ScheduleTimed queues fn to run at absolute time at, invoked with that
// deadline. It exists for the completion-callback pattern
// Schedule(at, func() { done(at) }): storing the func(Time) directly makes
// the hot completion path allocation-free (no capturing closure).
func (e *Engine) ScheduleTimed(at Time, fn func(Time)) Handle { return e.add(at, nil, fn) }

// AfterTimed queues fn to run d picoseconds from now, invoked with its
// deadline.
func (e *Engine) AfterTimed(d Time, fn func(Time)) Handle { return e.add(e.now+d, nil, fn) }

func (e *Engine) add(at Time, fn func(), tfn func(Time)) Handle {
	return e.addKeyed(at, e.now, 0, fn, tfn)
}

// ScheduleTagged is Schedule with an explicit entity tag: equal-(deadline,
// schedule instant) events fire in tag order before falling back to
// schedule order. Entities whose events are observable from other engines
// under sharding (DRAM channels) schedule with their globally unique tag,
// which makes cross-entity tie order a pure function of (at, key, tag) —
// identical whether the entities share one engine or run on separate
// shards — instead of an artifact of global schedule interleaving that a
// sharded run cannot reproduce.
func (e *Engine) ScheduleTagged(at Time, tag int32, fn func()) Handle {
	return e.addKeyed(at, e.now, tag, fn, nil)
}

// ScheduleTimedTagged is ScheduleTimed with an explicit entity tag.
func (e *Engine) ScheduleTimedTagged(at Time, tag int32, fn func(Time)) Handle {
	return e.addKeyed(at, e.now, tag, nil, fn)
}

// ScheduleTimedSent queues fn to run at absolute time at, ordered among
// equal-deadline events as if it had been scheduled at time sent with tag
// tag — the injection form used by the shard coordinator to merge
// cross-engine messages. On a single engine, events tying on deadline fire
// in (schedule instant, tag, schedule order); an injected event carrying
// its sender's clock and tag therefore sorts exactly where the equivalent
// single-engine schedule call (made at the send instant) would have
// landed, even though the receiving engine's clock has already passed
// sent.
func (e *Engine) ScheduleTimedSent(at, sent Time, tag int32, fn func(Time)) Handle {
	return e.addKeyed(at, sent, tag, nil, fn)
}

func (e *Engine) addKeyed(at, key Time, tag int32, fn func(), tfn func(Time)) Handle {
	if at < e.now {
		at = e.now
	}
	// Keep the wheel cursor abreast of the clock while no events reside in
	// buckets. RunUntil (and far-future cascades) can advance the clock many
	// horizons past wslot; without this catch-up, every short-delta schedule
	// after such a jump computes slot-wslot ≥ wheelSize and detours through
	// the overflow heap — the pathology that made cancel-heavy churn pay
	// O(log n) heap traffic for deadlines only nanoseconds away. The jump is
	// safe exactly when the buckets are empty: cur entries are served
	// regardless of the cursor, and every pending overflow event has a
	// deadline ≥ now, so its slot stays ahead of (or lands on) the new
	// cursor and cascades normally.
	if e.wheelN == 0 {
		if nowSlot := int64(e.now) >> granBits; nowSlot > e.wslot {
			e.wslot = nowSlot
		}
	}
	ev := e.alloc()
	ev.at, ev.key, ev.tag, ev.seq, ev.fn, ev.tfn = at, key, tag, e.seq, fn, tfn
	e.seq++
	e.live++
	switch slot := int64(at) >> granBits; {
	case slot <= e.wslot:
		e.insertCur(ev)
	case slot-e.wslot < wheelSize:
		e.bucketAdd(slot, ev)
	default:
		e.heapPush(ev)
	}
	return Handle{eng: e, ev: ev, gen: ev.gen}
}

// less is the kernel's total event order: deadline, then schedule instant
// (send instant for cross-engine injections), then entity tag, then
// schedule order. For locally scheduled events key is the nondecreasing
// engine clock, so among untagged events the order coincides with the
// historical (at, seq) order. The key separates ties when an injected
// event's send instant predates local schedules targeting the same
// deadline; the tag separates full (at, key) ties across entities so the
// order is reproducible on sharded engines, where the entities' relative
// schedule interleaving is unknowable. Two events tying on all of (at,
// key, tag) come from one entity, whose own schedule order (seq) is the
// same sharded or not.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.key != b.key {
		return a.key < b.key
	}
	if a.tag != b.tag {
		return a.tag < b.tag
	}
	return a.seq < b.seq
}

// insertCur merge-inserts ev into the unserved tail of the active run. The
// new event carries the highest seq, so it lands after every queued event
// with an equal or earlier deadline — exactly the (at, seq) order.
func (e *Engine) insertCur(ev *event) {
	if e.curDead >= 64 && 2*e.curDead >= len(e.cur)-e.curPos {
		e.compactCur()
	}
	ev.inCur = true
	lo, hi := e.curPos, len(e.cur)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(e.cur[mid], ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	e.cur = append(e.cur, nil)
	copy(e.cur[lo+1:], e.cur[lo:])
	e.cur[lo] = ev
}

// compactCur sweeps tombstones out of the unserved tail of the active run,
// preserving the order of the survivors. Triggered when dead records are
// about to dominate insert cost; amortized O(1) per cancel.
func (e *Engine) compactCur() {
	out := e.curPos
	for i := e.curPos; i < len(e.cur); i++ {
		ev := e.cur[i]
		if ev.dead {
			e.recycle(ev)
			continue
		}
		e.cur[out] = ev
		out++
	}
	for i := out; i < len(e.cur); i++ {
		e.cur[i] = nil
	}
	e.cur = e.cur[:out]
	e.curDead = 0
}

func (e *Engine) bucketAdd(slot int64, ev *event) {
	ev.inCur = false
	idx := slot & wheelMask
	e.buckets[idx] = append(e.buckets[idx], ev)
	e.occ[idx>>6] |= 1 << (uint(idx) & 63)
	e.wheelN++
}

// peek returns the next live event without consuming it, advancing the
// wheel cursor and cascading overflow as needed. It returns nil when the
// queue is empty (sweeping any remaining tombstones on the way).
func (e *Engine) peek() *event {
	for {
		for e.curPos < len(e.cur) {
			ev := e.cur[e.curPos]
			if ev.dead {
				e.curPos++
				e.curDead--
				e.recycle(ev)
				continue
			}
			return ev
		}
		if len(e.cur) > 0 || e.curPos > 0 {
			e.cur, e.curPos = e.cur[:0], 0
		}
		if e.wheelN == 0 && len(e.overflow) == 0 {
			return nil
		}
		// Cascade: pull overflow events inside the horizon into the wheel;
		// with an empty wheel, jump the cursor straight to the overflow
		// minimum. Heap pops come out in (at, seq) order, so events landing
		// directly in cur arrive sorted.
		for len(e.overflow) > 0 {
			os := int64(e.overflow[0].at) >> granBits
			if os-e.wslot >= wheelSize {
				if e.wheelN > 0 {
					break
				}
				e.wslot = os
			}
			ev := e.heapPop()
			if slot := int64(ev.at) >> granBits; slot <= e.wslot {
				ev.inCur = true
				if ev.dead {
					e.curDead++
				}
				e.cur = append(e.cur, ev)
			} else {
				e.bucketAdd(slot, ev)
			}
		}
		if len(e.cur) > 0 {
			continue
		}
		// Advance to the next occupied bucket and make it the active run.
		// Tombstones are swept here, before sorting: a cancel-heavy burst
		// can fill a bucket with dead records, and ordering them first
		// would waste the whole sort on events that fire nothing.
		e.wslot += e.nextOccupied()
		idx := e.wslot & wheelMask
		e.cur, e.buckets[idx] = e.buckets[idx], e.cur[:0]
		e.occ[idx>>6] &^= 1 << (uint(idx) & 63)
		e.wheelN -= len(e.cur)
		out := 0
		for _, ev := range e.cur {
			if ev.dead {
				e.recycle(ev)
				continue
			}
			ev.inCur = true
			e.cur[out] = ev
			out++
		}
		for i := out; i < len(e.cur); i++ {
			e.cur[i] = nil
		}
		e.cur = e.cur[:out]
		sortEvents(e.cur)
	}
}

// nextOccupied scans the occupancy bitmap circularly from the cursor and
// reports the distance (in slots, ≥ 1) to the nearest occupied bucket. It
// must only be called with wheelN > 0.
func (e *Engine) nextOccupied() int64 {
	cursor := (e.wslot + 1) & wheelMask
	w := int(cursor >> 6)
	word := e.occ[w] &^ (1<<(uint(cursor)&63) - 1)
	for {
		if word != 0 {
			idx := int64(w<<6 + bits.TrailingZeros64(word))
			return (idx - e.wslot) & wheelMask
		}
		w++
		if w == occWords {
			w = 0
		}
		word = e.occ[w]
	}
}

// sortEvents orders a drained bucket by (at, seq). Buckets span 256 ps and
// are appended in schedule order, so live runs are short and nearly
// sorted; insertion sort beats the generic sort here (a pdqsort fallback
// for long runs measured ~50% slower on the dense-wheel workload, because
// even crowded buckets arrive almost in order once tombstones are swept
// before sorting).
func sortEvents(evs []*event) {
	for i := 1; i < len(evs); i++ {
		ev := evs[i]
		j := i - 1
		for j >= 0 && less(ev, evs[j]) {
			evs[j+1] = evs[j]
			j--
		}
		evs[j+1] = ev
	}
}

func (e *Engine) alloc() *event {
	ev := e.pool
	if ev == nil {
		return &event{}
	}
	e.pool = ev.next
	ev.next = nil
	return ev
}

// recycle returns a served or swept record to the pool, bumping its
// generation so outstanding Handles go inert.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn, ev.tfn = nil, nil
	ev.dead = false
	ev.inCur = false
	ev.next = e.pool
	e.pool = ev
}

// NextDeadline reports the deadline of the earliest pending event without
// firing it; ok is false when the queue is empty. Components that pace
// themselves with recurring self-events (the DRAM decide loop) use it to
// fuse iterations: when the component's own next event would be the
// engine's next event anyway, it may run the work inline at that time
// (advancing the clock with RunUntil, which fires nothing when every
// pending deadline lies beyond the target) — the ordering is identical by
// construction, without the schedule/fire round-trip. Peeking may
// restructure internal queues (cascade overflow events, advance the wheel
// cursor) but never reorders or fires anything.
func (e *Engine) NextDeadline() (at Time, ok bool) {
	// Fast path for the fusion loop's per-iteration check: a live head in
	// the active run answers without touching the wheel.
	if e.curPos < len(e.cur) {
		if ev := e.cur[e.curPos]; !ev.dead {
			return ev.at, true
		}
	}
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// Step runs the next event. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	ev := e.peek()
	if ev == nil {
		return false
	}
	e.curPos++
	e.now = ev.at
	e.nsteps++
	e.live--
	fn, tfn, at := ev.fn, ev.tfn, ev.at
	// Recycle before invoking: the callback's own scheduling reuses the
	// record immediately, and the generation bump inertly expires any
	// handle still pointing at it.
	e.recycle(ev)
	if tfn != nil {
		tfn(at)
	} else {
		fn()
	}
	return true
}

// StepIf runs the next event only if it is exactly the event h names,
// reporting whether it fired. It is the targeted form of Step for
// components that want to absorb one of their own scheduled events inline
// (the DRAM controller batching its completions into the decide loop):
// because only the queue head can fire, the engine's (at, seq) total order
// is preserved bit-for-bit — if any foreign event sorts earlier, StepIf
// refuses and the caller falls back to the ordinary scheduled path.
func (e *Engine) StepIf(h Handle) bool {
	if h.eng != e || !h.live() {
		return false
	}
	ev := e.peek()
	if ev != h.ev || ev.gen != h.gen {
		return false
	}
	return e.Step()
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with deadlines ≤ t, then advances the clock to t.
// Events scheduled exactly at t do run. While it runs, t is visible to
// callbacks as RunBound: self-pacing components that fuse their recurring
// events inline (the DRAM decide loop) stop at the bound, so work beyond t
// stays queued exactly as it would with one event per iteration. Nested
// RunUntil calls narrow the bound for their duration and restore it.
func (e *Engine) RunUntil(t Time) {
	prevBound, prevHas := e.bound, e.hasBound
	e.bound, e.hasBound = t, true
	for {
		ev := e.peek()
		if ev == nil || ev.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
	e.bound, e.hasBound = prevBound, prevHas
}

// RunBound reports the target time of the innermost RunUntil currently
// executing; ok is false outside any RunUntil (Run, RunWhile, direct Step),
// where a drain has no boundary for fused work to respect.
func (e *Engine) RunBound() (t Time, ok bool) { return e.bound, e.hasBound }

// RunWhile executes events while cond() holds and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// Reset returns the engine to its initial state — clock at zero, queue
// empty, counters cleared — while keeping its allocated capacity warm: the
// event pool, bucket slices and overflow array are retained, so a reused
// engine simulates its next run without re-allocating kernel structures.
// Every outstanding Handle, Timer and Ticker of the previous run goes
// inert. This is how the benchmark harness reuses one engine per worker
// across sweep points instead of rebuilding the kernel for each.
func (e *Engine) Reset() {
	for _, ev := range e.cur[e.curPos:] {
		e.recycle(ev)
	}
	e.cur, e.curPos = e.cur[:0], 0
	if e.wheelN > 0 {
		for i := range e.buckets {
			if len(e.buckets[i]) == 0 {
				continue
			}
			for _, ev := range e.buckets[i] {
				e.recycle(ev)
			}
			e.buckets[i] = e.buckets[i][:0]
		}
	}
	for i := range e.occ {
		e.occ[i] = 0
	}
	e.wheelN = 0
	for _, ev := range e.overflow {
		e.recycle(ev)
	}
	e.overflow = e.overflow[:0]
	e.now, e.seq, e.nsteps, e.live, e.wslot, e.curDead = 0, 0, 0, 0, 0, 0
}

// Overflow heap: a plain slice min-heap by (at, seq), hand-rolled to avoid
// the container/heap interface dispatch on the far-event path.

func (e *Engine) heapPush(ev *event) {
	ev.inCur = false
	h := append(e.overflow, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.overflow = h
}

func (e *Engine) heapPop() *event {
	h := e.overflow
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && less(h[l], h[min]) {
			min = l
		}
		if r < n && less(h[r], h[min]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	e.overflow = h
	return top
}

// Timer is a re-armable one-shot timer with a fixed callback, the
// replacement for components that repeatedly schedule the same wake-up
// closure (issue pacing, controller decide events). The callback func is
// captured once at construction, so arming allocates nothing beyond the
// pooled event record. Arming an armed timer reschedules it; a timer whose
// event has fired reads as disarmed.
type Timer struct {
	eng *Engine
	fn  func()
	h   Handle
}

// NewTimer builds a timer that runs fn when it expires.
func (e *Engine) NewTimer(fn func()) *Timer { return &Timer{eng: e, fn: fn} }

// Arm schedules the timer to fire at absolute time at, replacing any
// pending expiry.
func (t *Timer) Arm(at Time) {
	t.h.Cancel()
	t.h = t.eng.Schedule(at, t.fn)
}

// ArmAfter schedules the timer to fire d picoseconds from now.
func (t *Timer) ArmAfter(d Time) { t.Arm(t.eng.now + d) }

// Stop cancels a pending expiry; stopping a disarmed timer is a no-op.
func (t *Timer) Stop() {
	t.h.Cancel()
	t.h = Handle{}
}

// Armed reports whether an expiry is pending. Inside the timer's own
// callback the timer already reads as disarmed, so callbacks can re-arm.
func (t *Timer) Armed() bool { return t.h.live() }

// When reports the pending expiry time; ok is false when disarmed.
func (t *Timer) When() (at Time, ok bool) {
	if !t.h.live() {
		return 0, false
	}
	return t.h.ev.at, true
}

// Ticker fires a fixed callback every period, rescheduling in place: one
// event record cycles through the pool instead of a fresh closure per tick.
// The first tick fires one period after Start. The callback may call Stop
// to end the chain (the tick after a Stop is never scheduled).
type Ticker struct {
	eng     *Engine
	period  Time
	fn      func()
	tick    func()
	h       Handle
	running bool
}

// NewTicker builds a stopped ticker with the given period.
func (e *Engine) NewTicker(period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{eng: e, period: period, fn: fn}
	// The reschedule runs after fn, matching the schedule order of the
	// callback-chain idiom this replaces. The h.live() guard keeps a
	// callback that restarts the ticker (Stop then Start) from forking a
	// second tick chain: Start already scheduled the next tick.
	t.tick = func() {
		t.fn()
		if t.running && !t.h.live() {
			t.h = t.eng.Schedule(t.eng.now+t.period, t.tick)
		}
	}
	return t
}

// Start begins ticking; the first tick fires one period from now. It is
// idempotent.
func (t *Ticker) Start() {
	if t.running {
		return
	}
	t.running = true
	t.h = t.eng.Schedule(t.eng.now+t.period, t.tick)
}

// Stop halts the ticker; a pending tick is cancelled. It is idempotent.
func (t *Ticker) Stop() {
	t.running = false
	t.h.Cancel()
	t.h = Handle{}
}

// Running reports whether the ticker is active.
func (t *Ticker) Running() bool { return t.running }
