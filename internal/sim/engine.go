// Package sim provides the discrete-event simulation kernel used by every
// timed model in the repository.
//
// Time is an integer count of picoseconds. An integer base avoids the drift
// a float64 clock accumulates over billions of events and makes simulations
// bit-reproducible across machines. One picosecond resolves every JEDEC
// timing in the DDR4/DDR5/HBM generations (the finest is a fraction of a
// 0.357 ns DDR5-5600 clock) without rounding.
//
// # Fast path
//
// The kernel is built for the workload the Mess sweep produces: millions of
// short-horizon events (DDR command timing, pacing, completion callbacks)
// per curve point. Three mechanisms keep the per-event cost down:
//
//   - a free-list event pool: event records are recycled as soon as they
//     fire or are swept, so steady-state simulation schedules without
//     allocating. Handles carry a generation counter, making Cancel on an
//     already-fired (and possibly recycled) event a safe no-op;
//   - a calendar timer wheel in front of the heap: events within the wheel
//     horizon (1024 buckets × 256 ps ≈ 262 ns — which covers DDR timing,
//     issue pacing and completion latencies) are placed in O(1) buckets
//     found again via an occupancy bitmap; only far-future events (refresh
//     epochs, coarse pacing ladders) pay for the binary heap;
//   - cancellation by tombstone: Cancel marks the event dead in O(1) and
//     the sweep recycles it when its position drains, instead of restoring
//     heap shape on every cancel.
//
// Steady-rate components should hold a Timer (re-armable one-shot with a
// fixed callback) or a Ticker (fixed-period recurring event) instead of
// scheduling fresh closures, which removes the remaining per-event closure
// allocations from their paths.
//
// # Determinism
//
// Events fire in strictly increasing (deadline, schedule order): equal-time
// events run exactly in the order they were scheduled, regardless of which
// internal structure (active list, wheel bucket, overflow heap) held them.
// Two runs that schedule the same events in the same order execute
// identically — Steps(), Now() and every callback interleaving match. The
// wheel is an internal routing layer only; it never reorders events with
// respect to the (at, seq) total order the original heap implemented.
package sim

import "math/bits"

// Time is a simulation timestamp in picoseconds.
type Time int64

// Common time units, expressed in the picosecond base.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * 1000
	Millisecond Time = 1000 * 1000 * 1000
	Second      Time = 1000 * 1000 * 1000 * 1000
)

// Nanoseconds reports t as a float64 nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds reports t as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromNanoseconds converts a float64 nanosecond count to a Time, rounding to
// the nearest picosecond.
func FromNanoseconds(ns float64) Time { return Time(ns*float64(Nanosecond) + 0.5) }

// Timer-wheel geometry. Buckets span 2^granBits picoseconds; the wheel
// covers wheelSize buckets. Events within the horizon are bucketed in O(1);
// events beyond it go to the overflow heap and cascade into the wheel as
// the cursor approaches them.
const (
	granBits  = 8                        // 256 ps per bucket
	wheelBits = 10                       // 1024 buckets
	wheelSize = int64(1) << wheelBits    // slots covered by the wheel window
	wheelMask = wheelSize - 1            //
	occWords  = int(wheelSize / 64)      // occupancy bitmap words
)

// event is one scheduled callback record. Records are pooled: after firing
// (or after a cancelled record is swept) the record returns to the engine's
// free list with its generation bumped, which invalidates every Handle that
// still points at it.
type event struct {
	at   Time
	seq  uint64 // tie-break so equal-time events run in schedule order
	gen  uint64 // bumped on recycle; Handles must match to act
	dead bool   // cancelled tombstone, swept lazily
	fn   func()
	tfn  func(Time) // timed variant: called with the deadline
	next *event     // free-list link
}

// Handle identifies one scheduled event. The zero Handle is valid and inert.
// Handles are values: copying one copies the right to cancel.
type Handle struct {
	eng *Engine
	ev  *event
	gen uint64
}

// live reports whether the handle still names a pending event.
func (h Handle) live() bool { return h.ev != nil && h.ev.gen == h.gen && !h.ev.dead }

// Cancel removes the pending event in O(1). Cancelling an event that has
// already fired, was already cancelled, or was never scheduled (the zero
// Handle) is a no-op: the generation counter detects a recycled record, so
// a stale handle can never cancel an unrelated future event.
func (h Handle) Cancel() {
	if !h.live() {
		return
	}
	h.ev.dead = true
	h.ev.fn, h.ev.tfn = nil, nil
	h.eng.live--
}

// Engine is a single-threaded discrete-event scheduler. It is intentionally
// not safe for concurrent use: every simulation instance owns one engine and
// runs on one goroutine; experiments parallelize across engines.
type Engine struct {
	now    Time
	seq    uint64
	nsteps uint64
	live   int // pending, non-cancelled events

	// cur is the active sorted run: every queued event whose slot is
	// ≤ wslot, ordered by (at, seq) and served from curPos. New events
	// landing at or before the cursor are merge-inserted here.
	cur    []*event
	curPos int

	wslot   int64 // wheel cursor: absolute slot (at >> granBits)
	wheelN  int   // events resident in buckets
	buckets [wheelSize][]*event
	occ     [occWords]uint64

	overflow []*event // min-heap by (at, seq): events beyond the horizon

	pool *event // free list of recycled records
}

// New returns an Engine with its clock at zero.
func New() *Engine { return &Engine{} }

// Now reports the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Steps reports how many events have been executed.
func (e *Engine) Steps() uint64 { return e.nsteps }

// Pending reports the number of live queued events. Cancelled events never
// count here, even while their tombstones await sweeping.
func (e *Engine) Pending() int { return e.live }

// Schedule queues fn to run at absolute time at. Scheduling in the past
// (before Now) fires the event at Now; the kernel never runs time backwards.
func (e *Engine) Schedule(at Time, fn func()) Handle { return e.add(at, fn, nil) }

// After queues fn to run d picoseconds from now.
func (e *Engine) After(d Time, fn func()) Handle { return e.add(e.now+d, fn, nil) }

// ScheduleTimed queues fn to run at absolute time at, invoked with that
// deadline. It exists for the completion-callback pattern
// Schedule(at, func() { done(at) }): storing the func(Time) directly makes
// the hot completion path allocation-free (no capturing closure).
func (e *Engine) ScheduleTimed(at Time, fn func(Time)) Handle { return e.add(at, nil, fn) }

// AfterTimed queues fn to run d picoseconds from now, invoked with its
// deadline.
func (e *Engine) AfterTimed(d Time, fn func(Time)) Handle { return e.add(e.now+d, nil, fn) }

func (e *Engine) add(at Time, fn func(), tfn func(Time)) Handle {
	if at < e.now {
		at = e.now
	}
	ev := e.alloc()
	ev.at, ev.seq, ev.fn, ev.tfn = at, e.seq, fn, tfn
	e.seq++
	e.live++
	switch slot := int64(at) >> granBits; {
	case slot <= e.wslot:
		e.insertCur(ev)
	case slot-e.wslot < wheelSize:
		e.bucketAdd(slot, ev)
	default:
		e.heapPush(ev)
	}
	return Handle{eng: e, ev: ev, gen: ev.gen}
}

// less is the kernel's total event order.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// insertCur merge-inserts ev into the unserved tail of the active run. The
// new event carries the highest seq, so it lands after every queued event
// with an equal or earlier deadline — exactly the (at, seq) order.
func (e *Engine) insertCur(ev *event) {
	lo, hi := e.curPos, len(e.cur)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(e.cur[mid], ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	e.cur = append(e.cur, nil)
	copy(e.cur[lo+1:], e.cur[lo:])
	e.cur[lo] = ev
}

func (e *Engine) bucketAdd(slot int64, ev *event) {
	idx := slot & wheelMask
	e.buckets[idx] = append(e.buckets[idx], ev)
	e.occ[idx>>6] |= 1 << (uint(idx) & 63)
	e.wheelN++
}

// peek returns the next live event without consuming it, advancing the
// wheel cursor and cascading overflow as needed. It returns nil when the
// queue is empty (sweeping any remaining tombstones on the way).
func (e *Engine) peek() *event {
	for {
		for e.curPos < len(e.cur) {
			ev := e.cur[e.curPos]
			if ev.dead {
				e.curPos++
				e.recycle(ev)
				continue
			}
			return ev
		}
		if len(e.cur) > 0 || e.curPos > 0 {
			e.cur, e.curPos = e.cur[:0], 0
		}
		if e.wheelN == 0 && len(e.overflow) == 0 {
			return nil
		}
		// Cascade: pull overflow events inside the horizon into the wheel;
		// with an empty wheel, jump the cursor straight to the overflow
		// minimum. Heap pops come out in (at, seq) order, so events landing
		// directly in cur arrive sorted.
		for len(e.overflow) > 0 {
			os := int64(e.overflow[0].at) >> granBits
			if os-e.wslot >= wheelSize {
				if e.wheelN > 0 {
					break
				}
				e.wslot = os
			}
			ev := e.heapPop()
			if slot := int64(ev.at) >> granBits; slot <= e.wslot {
				e.cur = append(e.cur, ev)
			} else {
				e.bucketAdd(slot, ev)
			}
		}
		if len(e.cur) > 0 {
			continue
		}
		// Advance to the next occupied bucket and make it the active run.
		e.wslot += e.nextOccupied()
		idx := e.wslot & wheelMask
		e.cur, e.buckets[idx] = e.buckets[idx], e.cur[:0]
		e.occ[idx>>6] &^= 1 << (uint(idx) & 63)
		e.wheelN -= len(e.cur)
		sortEvents(e.cur)
	}
}

// nextOccupied scans the occupancy bitmap circularly from the cursor and
// reports the distance (in slots, ≥ 1) to the nearest occupied bucket. It
// must only be called with wheelN > 0.
func (e *Engine) nextOccupied() int64 {
	cursor := (e.wslot + 1) & wheelMask
	w := int(cursor >> 6)
	word := e.occ[w] &^ (1<<(uint(cursor)&63) - 1)
	for {
		if word != 0 {
			idx := int64(w<<6 + bits.TrailingZeros64(word))
			return (idx - e.wslot) & wheelMask
		}
		w++
		if w == occWords {
			w = 0
		}
		word = e.occ[w]
	}
}

// sortEvents orders a drained bucket by (at, seq). Buckets span 256 ps and
// are appended in schedule order, so runs are short and nearly sorted;
// insertion sort beats the generic sort here.
func sortEvents(evs []*event) {
	for i := 1; i < len(evs); i++ {
		ev := evs[i]
		j := i - 1
		for j >= 0 && less(ev, evs[j]) {
			evs[j+1] = evs[j]
			j--
		}
		evs[j+1] = ev
	}
}

func (e *Engine) alloc() *event {
	ev := e.pool
	if ev == nil {
		return &event{}
	}
	e.pool = ev.next
	ev.next = nil
	return ev
}

// recycle returns a served or swept record to the pool, bumping its
// generation so outstanding Handles go inert.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn, ev.tfn = nil, nil
	ev.dead = false
	ev.next = e.pool
	e.pool = ev
}

// Step runs the next event. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	ev := e.peek()
	if ev == nil {
		return false
	}
	e.curPos++
	e.now = ev.at
	e.nsteps++
	e.live--
	fn, tfn, at := ev.fn, ev.tfn, ev.at
	// Recycle before invoking: the callback's own scheduling reuses the
	// record immediately, and the generation bump inertly expires any
	// handle still pointing at it.
	e.recycle(ev)
	if tfn != nil {
		tfn(at)
	} else {
		fn()
	}
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with deadlines ≤ t, then advances the clock to t.
// Events scheduled exactly at t do run.
func (e *Engine) RunUntil(t Time) {
	for {
		ev := e.peek()
		if ev == nil || ev.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunWhile executes events while cond() holds and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// Reset returns the engine to its initial state — clock at zero, queue
// empty, counters cleared — while keeping its allocated capacity warm: the
// event pool, bucket slices and overflow array are retained, so a reused
// engine simulates its next run without re-allocating kernel structures.
// Every outstanding Handle, Timer and Ticker of the previous run goes
// inert. This is how the benchmark harness reuses one engine per worker
// across sweep points instead of rebuilding the kernel for each.
func (e *Engine) Reset() {
	for _, ev := range e.cur[e.curPos:] {
		e.recycle(ev)
	}
	e.cur, e.curPos = e.cur[:0], 0
	if e.wheelN > 0 {
		for i := range e.buckets {
			if len(e.buckets[i]) == 0 {
				continue
			}
			for _, ev := range e.buckets[i] {
				e.recycle(ev)
			}
			e.buckets[i] = e.buckets[i][:0]
		}
	}
	for i := range e.occ {
		e.occ[i] = 0
	}
	e.wheelN = 0
	for _, ev := range e.overflow {
		e.recycle(ev)
	}
	e.overflow = e.overflow[:0]
	e.now, e.seq, e.nsteps, e.live, e.wslot = 0, 0, 0, 0, 0
}

// Overflow heap: a plain slice min-heap by (at, seq), hand-rolled to avoid
// the container/heap interface dispatch on the far-event path.

func (e *Engine) heapPush(ev *event) {
	h := append(e.overflow, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.overflow = h
}

func (e *Engine) heapPop() *event {
	h := e.overflow
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && less(h[l], h[min]) {
			min = l
		}
		if r < n && less(h[r], h[min]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	e.overflow = h
	return top
}

// Timer is a re-armable one-shot timer with a fixed callback, the
// replacement for components that repeatedly schedule the same wake-up
// closure (issue pacing, controller decide events). The callback func is
// captured once at construction, so arming allocates nothing beyond the
// pooled event record. Arming an armed timer reschedules it; a timer whose
// event has fired reads as disarmed.
type Timer struct {
	eng *Engine
	fn  func()
	h   Handle
}

// NewTimer builds a timer that runs fn when it expires.
func (e *Engine) NewTimer(fn func()) *Timer { return &Timer{eng: e, fn: fn} }

// Arm schedules the timer to fire at absolute time at, replacing any
// pending expiry.
func (t *Timer) Arm(at Time) {
	t.h.Cancel()
	t.h = t.eng.Schedule(at, t.fn)
}

// ArmAfter schedules the timer to fire d picoseconds from now.
func (t *Timer) ArmAfter(d Time) { t.Arm(t.eng.now + d) }

// Stop cancels a pending expiry; stopping a disarmed timer is a no-op.
func (t *Timer) Stop() {
	t.h.Cancel()
	t.h = Handle{}
}

// Armed reports whether an expiry is pending. Inside the timer's own
// callback the timer already reads as disarmed, so callbacks can re-arm.
func (t *Timer) Armed() bool { return t.h.live() }

// When reports the pending expiry time; ok is false when disarmed.
func (t *Timer) When() (at Time, ok bool) {
	if !t.h.live() {
		return 0, false
	}
	return t.h.ev.at, true
}

// Ticker fires a fixed callback every period, rescheduling in place: one
// event record cycles through the pool instead of a fresh closure per tick.
// The first tick fires one period after Start. The callback may call Stop
// to end the chain (the tick after a Stop is never scheduled).
type Ticker struct {
	eng     *Engine
	period  Time
	fn      func()
	tick    func()
	h       Handle
	running bool
}

// NewTicker builds a stopped ticker with the given period.
func (e *Engine) NewTicker(period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{eng: e, period: period, fn: fn}
	// The reschedule runs after fn, matching the schedule order of the
	// callback-chain idiom this replaces. The h.live() guard keeps a
	// callback that restarts the ticker (Stop then Start) from forking a
	// second tick chain: Start already scheduled the next tick.
	t.tick = func() {
		t.fn()
		if t.running && !t.h.live() {
			t.h = t.eng.Schedule(t.eng.now+t.period, t.tick)
		}
	}
	return t
}

// Start begins ticking; the first tick fires one period from now. It is
// idempotent.
func (t *Ticker) Start() {
	if t.running {
		return
	}
	t.running = true
	t.h = t.eng.Schedule(t.eng.now+t.period, t.tick)
}

// Stop halts the ticker; a pending tick is cancelled. It is idempotent.
func (t *Ticker) Stop() {
	t.running = false
	t.h.Cancel()
	t.h = Handle{}
}

// Running reports whether the ticker is active.
func (t *Ticker) Running() bool { return t.running }
