// Package sim provides the discrete-event simulation kernel used by every
// timed model in the repository.
//
// Time is an integer count of picoseconds. An integer base avoids the drift
// a float64 clock accumulates over billions of events and makes simulations
// bit-reproducible across machines. One picosecond resolves every JEDEC
// timing in the DDR4/DDR5/HBM generations (the finest is a fraction of a
// 0.357 ns DDR5-5600 clock) without rounding.
package sim

import "container/heap"

// Time is a simulation timestamp in picoseconds.
type Time int64

// Common time units, expressed in the picosecond base.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * 1000
	Millisecond Time = 1000 * 1000 * 1000
	Second      Time = 1000 * 1000 * 1000 * 1000
)

// Nanoseconds reports t as a float64 nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds reports t as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromNanoseconds converts a float64 nanosecond count to a Time, rounding to
// the nearest picosecond.
func FromNanoseconds(ns float64) Time { return Time(ns*float64(Nanosecond) + 0.5) }

// Event is a scheduled callback. The callback runs exactly once, at the
// event's deadline, with the engine's clock set to that deadline.
type Event struct {
	at  Time
	seq uint64 // tie-break so equal-time events run in schedule order
	fn  func()
	idx int // heap index, -1 when not queued
	eng *Engine
}

// Cancel removes a pending event from the engine's queue in O(log n).
// Cancelling an event that has already fired or was already cancelled is a
// no-op.
func (e *Event) Cancel() {
	if e.eng == nil || e.idx < 0 {
		return
	}
	heap.Remove(&e.eng.queue, e.idx)
}

// Engine is a single-threaded discrete-event scheduler. It is intentionally
// not safe for concurrent use: every simulation instance owns one engine and
// runs on one goroutine; experiments parallelize across engines.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventHeap
	nsteps uint64
}

// New returns an Engine with its clock at zero.
func New() *Engine { return &Engine{} }

// Now reports the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Steps reports how many events have been executed.
func (e *Engine) Steps() uint64 { return e.nsteps }

// Schedule queues fn to run at absolute time at. Scheduling in the past
// (before Now) fires the event at Now; the kernel never runs time backwards.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		at = e.now
	}
	ev := &Event{at: at, seq: e.seq, fn: fn, eng: e}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After queues fn to run d picoseconds from now.
func (e *Engine) After(d Time, fn func()) *Event { return e.Schedule(e.now+d, fn) }

// Pending reports the number of live queued events. Cancelled events are
// removed from the queue immediately, so they never count here.
func (e *Engine) Pending() int { return len(e.queue) }

// Step runs the next event. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	e.nsteps++
	ev.fn()
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with deadlines ≤ t, then advances the clock to t.
// Events scheduled exactly at t do run.
func (e *Engine) RunUntil(t Time) {
	for len(e.queue) > 0 {
		if e.queue[0].at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunWhile executes events while cond() holds and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}
