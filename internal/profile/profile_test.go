package profile

import (
	"bytes"
	"strings"
	"testing"

	"github.com/mess-sim/mess/internal/core"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// stubBackend responds instantly; traffic is injected manually.
type stubBackend struct{}

func (stubBackend) Access(req *mem.Request) {}

func fam() *core.Family {
	return core.NewSynthetic(core.SyntheticSpec{Label: "prof", UnloadedNs: 90, PeakGBs: 128})
}

func TestSamplerWindows(t *testing.T) {
	eng := sim.New()
	counting := mem.NewCounting(stubBackend{})
	s := NewSampler(eng, counting, 10*sim.Microsecond)
	s.Start()
	// Inject 64 B every 100 ns → 0.64 GB/s.
	for i := 0; i < 1000; i++ {
		at := sim.Time(i) * 100 * sim.Nanosecond
		eng.Schedule(at, func() {
			counting.Access(&mem.Request{Addr: 0, Op: mem.Read})
		})
	}
	eng.RunUntil(100 * sim.Microsecond)
	s.Stop()
	ws := s.Windows()
	if len(ws) != 10 {
		t.Fatalf("windows = %d, want 10", len(ws))
	}
	for i, w := range ws {
		if w.End-w.Start != 10*sim.Microsecond {
			t.Fatalf("window %d duration %v", i, w.End-w.Start)
		}
		bw := w.Traffic.BandwidthGBs(w.End - w.Start)
		if bw < 0.5 || bw > 0.8 {
			t.Fatalf("window %d bandwidth %.2f GB/s, want ≈0.64", i, bw)
		}
	}
}

func TestSamplerStopCancels(t *testing.T) {
	eng := sim.New()
	counting := mem.NewCounting(stubBackend{})
	s := NewSampler(eng, counting, sim.Microsecond)
	s.Start()
	eng.RunUntil(3 * sim.Microsecond)
	s.Stop()
	n := len(s.Windows())
	eng.RunUntil(10 * sim.Microsecond)
	if len(s.Windows()) != n {
		t.Fatal("sampler kept sampling after Stop")
	}
}

func mkWindows() []CounterWindow {
	var ws []CounterWindow
	// Three windows: idle, moderate, saturated.
	mk := func(i int, gbPerS float64) CounterWindow {
		start := sim.Time(i) * 10 * sim.Microsecond
		bytes := uint64(gbPerS * 1e9 * (10 * sim.Microsecond).Seconds())
		return CounterWindow{
			Start:   start,
			End:     start + 10*sim.Microsecond,
			Traffic: mem.Counters{Reads: bytes / 64, ReadBytes: bytes},
		}
	}
	ws = append(ws, mk(0, 1), mk(1, 60), mk(2, 110))
	return ws
}

func TestBuildProfileStressOrdering(t *testing.T) {
	p := Build("test", fam(), mkWindows(), nil, core.DefaultStressWeights)
	if len(p.Samples) != 3 {
		t.Fatalf("samples = %d", len(p.Samples))
	}
	if !(p.Samples[0].Stress < p.Samples[1].Stress && p.Samples[1].Stress < p.Samples[2].Stress) {
		t.Fatalf("stress not monotone with load: %v %v %v",
			p.Samples[0].Stress, p.Samples[1].Stress, p.Samples[2].Stress)
	}
	if p.Samples[0].Stress > 0.15 {
		t.Errorf("idle stress %.2f too high", p.Samples[0].Stress)
	}
	if p.Samples[2].Stress < 0.5 {
		t.Errorf("saturated stress %.2f too low", p.Samples[2].Stress)
	}
	if p.MaxStress() != p.Samples[2].Stress {
		t.Error("MaxStress mismatch")
	}
}

func TestPhaseAttribution(t *testing.T) {
	phases := []PhaseSpan{
		{Name: "compute", Start: 0, End: 15 * sim.Microsecond},
		{Name: "mpi", Start: 15 * sim.Microsecond, End: 22 * sim.Microsecond, MPI: true},
		{Name: "compute2", Start: 22 * sim.Microsecond, End: 40 * sim.Microsecond},
	}
	p := Build("test", fam(), mkWindows(), phases, core.DefaultStressWeights)
	if p.Samples[0].Phase != "compute" {
		t.Fatalf("window 0 phase %q", p.Samples[0].Phase)
	}
	// Window 1 spans 10-20 µs: compute overlaps 5 µs, mpi 5 µs; the tie
	// goes to the larger overlap (equal here, first wins).
	if p.Samples[1].Phase == "" {
		t.Fatal("window 1 unattributed")
	}
	if p.Samples[2].Phase != "compute2" {
		t.Fatalf("window 2 phase %q", p.Samples[2].Phase)
	}
}

func TestSaturatedFraction(t *testing.T) {
	p := Build("test", fam(), mkWindows(), nil, core.DefaultStressWeights)
	frac := p.SaturatedFraction()
	// Only the 110 GB/s window is past the synthetic onset (~97 GB/s).
	if frac < 0.2 || frac > 0.5 {
		t.Fatalf("saturated fraction = %.2f, want 1/3", frac)
	}
}

func TestMeanStressByPhase(t *testing.T) {
	phases := []PhaseSpan{
		{Name: "a", Start: 0, End: 10 * sim.Microsecond},
		{Name: "b", Start: 10 * sim.Microsecond, End: 30 * sim.Microsecond},
	}
	p := Build("test", fam(), mkWindows(), phases, core.DefaultStressWeights)
	order, by := p.MeanStressByPhase()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("phase order %v", order)
	}
	if by["b"] <= by["a"] {
		t.Fatalf("loaded phase stress %v not above idle %v", by["b"], by["a"])
	}
}

func TestWriteTrace(t *testing.T) {
	p := Build("test", fam(), mkWindows(), []PhaseSpan{
		{Name: "k", Start: 0, End: 40 * sim.Microsecond},
	}, core.DefaultStressWeights)
	var buf bytes.Buffer
	if err := p.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# mess profile: test") {
		t.Fatal("missing header")
	}
	lines := strings.Count(out, "sample:")
	if lines != 3 {
		t.Fatalf("trace has %d sample lines, want 3", lines)
	}
	if !strings.Contains(out, ":k") {
		t.Fatal("phase missing from trace record")
	}
}

func TestSamplerRejectsBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero period accepted")
		}
	}()
	NewSampler(sim.New(), mem.NewCounting(stubBackend{}), 0)
}
