// Package profile implements the Mess application profiling of Sec. VI:
// sample the memory-bandwidth counters of a running application on a fixed
// period (Extrae's role), position every sample on the platform's
// bandwidth–latency curves, derive the memory stress score, and correlate
// the samples with the application's phase timeline (Paraver's role).
package profile

import (
	"bufio"
	"fmt"
	"io"

	"github.com/mess-sim/mess/internal/core"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// CounterWindow is one raw sampling window: the traffic delta between two
// counter reads.
type CounterWindow struct {
	Start, End sim.Time
	Traffic    mem.Counters
}

// Sampler periodically snapshots a counting backend, building the raw
// window stream. It must be driven by RunUntil on the same engine; Stop
// cancels the periodic event. The period rides on a kernel Ticker, so
// sampling reschedules in place instead of allocating a closure per window.
type Sampler struct {
	eng      *sim.Engine
	counting *mem.CountingBackend

	prev    mem.Counters
	prevAt  sim.Time
	windows []CounterWindow
	tick    *sim.Ticker
}

// NewSampler builds a sampler with the given period (the paper's default
// Extrae configuration samples every 10 ms of real time; simulations use
// proportionally shorter windows).
func NewSampler(eng *sim.Engine, counting *mem.CountingBackend, every sim.Time) *Sampler {
	if every <= 0 {
		panic("profile: sampler period must be positive")
	}
	s := &Sampler{eng: eng, counting: counting}
	s.tick = eng.NewTicker(every, s.sample)
	return s
}

// Start begins sampling at the current time.
func (s *Sampler) Start() {
	if s.tick.Running() {
		return
	}
	s.prev = s.counting.Snapshot()
	s.prevAt = s.eng.Now()
	s.tick.Start()
}

// sample closes the current window at each ticker expiry.
func (s *Sampler) sample() {
	now := s.eng.Now()
	cur := s.counting.Snapshot()
	s.windows = append(s.windows, CounterWindow{
		Start:   s.prevAt,
		End:     now,
		Traffic: cur.Sub(s.prev),
	})
	s.prev, s.prevAt = cur, now
}

// Stop halts sampling.
func (s *Sampler) Stop() { s.tick.Stop() }

// Windows reports the collected raw windows.
func (s *Sampler) Windows() []CounterWindow { return s.windows }

// PhaseSpan is a labelled interval of the application timeline.
type PhaseSpan struct {
	Name       string
	Start, End sim.Time
	MPI        bool
}

// Sample is one analyzed profiling window: the application's position on
// the curves plus the derived stress score and its timeline context.
type Sample struct {
	Start, End sim.Time
	BWGBs      float64
	ReadRatio  float64
	LatencyNs  float64
	Stress     float64
	Phase      string
	MPI        bool
}

// Profile is a complete application profile.
type Profile struct {
	Label   string
	Family  *core.Family
	Samples []Sample
}

// Build analyzes raw counter windows against the platform's curve family.
// phases may be nil; when given, each sample is tagged with the phase that
// overlaps it the most.
func Build(label string, fam *core.Family, windows []CounterWindow, phases []PhaseSpan, w core.StressWeights) *Profile {
	p := &Profile{Label: label, Family: fam}
	for _, win := range windows {
		dur := win.End - win.Start
		if dur <= 0 {
			continue
		}
		bw := win.Traffic.BandwidthGBs(dur)
		ratio := win.Traffic.ReadRatio()
		s := Sample{
			Start:     win.Start,
			End:       win.End,
			BWGBs:     bw,
			ReadRatio: ratio,
			LatencyNs: fam.LatencyAt(ratio, bw),
			Stress:    fam.StressScore(ratio, bw, w),
		}
		if ph, mpi, ok := dominantPhase(phases, win.Start, win.End); ok {
			s.Phase, s.MPI = ph, mpi
		}
		p.Samples = append(p.Samples, s)
	}
	return p
}

func dominantPhase(phases []PhaseSpan, start, end sim.Time) (string, bool, bool) {
	var bestName string
	var bestMPI bool
	var bestOverlap sim.Time
	for _, ph := range phases {
		lo, hi := ph.Start, ph.End
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		if hi > lo && hi-lo > bestOverlap {
			bestOverlap = hi - lo
			bestName, bestMPI = ph.Name, ph.MPI
		}
	}
	return bestName, bestMPI, bestOverlap > 0
}

// SaturatedFraction reports the fraction of samples whose bandwidth lies in
// the family's saturated region (the Fig. 15 observation that most of HPCG
// runs above the saturation onset).
func (p *Profile) SaturatedFraction() float64 {
	if len(p.Samples) == 0 {
		return 0
	}
	m := p.Family.Metrics()
	n := 0
	for _, s := range p.Samples {
		if s.BWGBs >= m.SatBWLowGBs {
			n++
		}
	}
	return float64(n) / float64(len(p.Samples))
}

// MaxStress reports the highest stress score observed.
func (p *Profile) MaxStress() float64 {
	max := 0.0
	for _, s := range p.Samples {
		if s.Stress > max {
			max = s.Stress
		}
	}
	return max
}

// MeanStressByPhase aggregates the stress score per phase name, preserving
// first-appearance order.
func (p *Profile) MeanStressByPhase() ([]string, map[string]float64) {
	sums := map[string]float64{}
	counts := map[string]int{}
	var order []string
	for _, s := range p.Samples {
		if s.Phase == "" {
			continue
		}
		if _, seen := counts[s.Phase]; !seen {
			order = append(order, s.Phase)
		}
		sums[s.Phase] += s.Stress
		counts[s.Phase]++
	}
	out := make(map[string]float64, len(sums))
	for name, sum := range sums {
		out[name] = sum / float64(counts[name])
	}
	return order, out
}

// WriteTrace emits the profile as a Paraver-flavoured timestamped trace:
// one record per sample with start/end (ns), bandwidth, latency, stress
// score and phase. The format is line-oriented and diff-friendly:
//
//	sample:<start_ns>:<end_ns>:<bw_gbs>:<latency_ns>:<stress>:<phase>
func (p *Profile) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# mess profile: %s\n", p.Label)
	fmt.Fprintf(bw, "# family: %s (theoretical %.1f GB/s)\n", p.Family.Label, p.Family.TheoreticalBW)
	for _, s := range p.Samples {
		phase := s.Phase
		if phase == "" {
			phase = "-"
		}
		fmt.Fprintf(bw, "sample:%d:%d:%.3f:%.2f:%.3f:%s\n",
			int64(s.Start/sim.Nanosecond), int64(s.End/sim.Nanosecond),
			s.BWGBs, s.LatencyNs, s.Stress, phase)
	}
	return bw.Flush()
}
