package curvestore

import (
	"bytes"
	"compress/gzip"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/mess-sim/mess/internal/core"
)

// countingStore wraps a Store and counts operations reaching it.
type countingStore struct {
	Store
	loads, saves atomic.Int64
}

func (c *countingStore) Load(ctx context.Context, k Key) (fam *core.Family, ok bool, err error) {
	c.loads.Add(1)
	return c.Store.Load(ctx, k)
}

func (c *countingStore) Save(ctx context.Context, k Key, fam *core.Family) error {
	c.saves.Add(1)
	return c.Store.Save(ctx, k, fam)
}

func fastClient(t *testing.T, url string) *Client {
	t.Helper()
	c, err := NewClient(url, ClientConfig{
		Retries:  2,
		Backoff:  time.Millisecond,
		Cooldown: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClientServerRoundTrip(t *testing.T) {
	backing := NewMemory(0)
	srv := NewServer(backing, ServerConfig{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	up := fastClient(t, ts.URL)
	down := fastClient(t, ts.URL)
	key := testKey(20)

	// Miss before anything is uploaded.
	if fam, ok, err := down.Load(bg, key); fam != nil || ok || err != nil {
		t.Fatalf("load before save: %v %v %v", fam, ok, err)
	}
	if err := up.Save(bg, key, testFam("fleet")); err != nil {
		t.Fatal(err)
	}
	fam, ok, err := down.Load(bg, key)
	if err != nil || !ok {
		t.Fatalf("load after save: ok=%v err=%v", ok, err)
	}
	if fam.Label != "fleet" || len(fam.Curves) != 2 {
		t.Fatalf("family mangled over HTTP: %+v", fam)
	}

	st := srv.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("server stats = %+v, want 1 put, 1 hit, 1 miss", st)
	}
	if st.BytesIn == 0 || st.BytesOut == 0 {
		t.Fatalf("byte counters not tracked: %+v", st)
	}
}

func TestClientRevalidatesWithETag(t *testing.T) {
	srv := NewServer(NewMemory(0), ServerConfig{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	up := fastClient(t, ts.URL)
	key := testKey(21)
	if err := up.Save(bg, key, testFam("etag")); err != nil {
		t.Fatal(err)
	}

	reader := fastClient(t, ts.URL)
	if _, ok, err := reader.Load(bg, key); !ok || err != nil {
		t.Fatalf("first load: ok=%v err=%v", ok, err)
	}
	sent := srv.Stats().BytesOut
	fam, ok, err := reader.Load(bg, key)
	if !ok || err != nil {
		t.Fatalf("revalidated load: ok=%v err=%v", ok, err)
	}
	if fam.Label != "etag" {
		t.Fatalf("revalidated family mangled: %q", fam.Label)
	}
	st := srv.Stats()
	if st.Revalidations != 1 {
		t.Fatalf("revalidations = %d, want 1 (If-None-Match not honoured)", st.Revalidations)
	}
	if st.BytesOut != sent {
		t.Fatalf("304 still transferred a body: %d -> %d bytes", sent, st.BytesOut)
	}

	// The uploader revalidates straight from its Save-time cache too.
	if _, ok, err := up.Load(bg, key); !ok || err != nil {
		t.Fatalf("uploader revalidation: ok=%v err=%v", ok, err)
	}
	if got := srv.Stats().Revalidations; got != 2 {
		t.Fatalf("revalidations = %d, want 2", got)
	}
}

func TestServerPUTSingleflight(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	backing := &countingStore{Store: NewMemory(0)}
	slow := &gateStore{inner: backing, entered: entered, release: release}
	srv := NewServer(slow, ServerConfig{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	key := testKey(22)
	const dups = 3
	var wg sync.WaitGroup
	errs := make([]error, dups+1)
	put := func(i int) {
		defer wg.Done()
		c := fastClient(t, ts.URL)
		errs[i] = c.Save(bg, key, testFam("stampede"))
	}
	// The winner enters the (gated) store save...
	wg.Add(1)
	go put(0)
	<-entered
	// ...then the stampede arrives and must queue as dedup waiters.
	for i := 1; i <= dups; i++ {
		wg.Add(1)
		go put(i)
	}
	waitFor(t, func() bool { return srv.Stats().PutDedups == dups })
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("put %d failed: %v", i, err)
		}
	}
	if got := backing.saves.Load(); got != 1 {
		t.Fatalf("store saw %d saves for %d concurrent uploads, want 1", got, dups+1)
	}
	st := srv.Stats()
	if st.Puts != 1 || st.PutDedups != dups {
		t.Fatalf("stats = %+v, want 1 put and %d dedups", st, dups)
	}
}

// gateStore blocks the first Save until released, signalling entry.
type gateStore struct {
	inner   Store
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateStore) Load(ctx context.Context, k Key) (*core.Family, bool, error) {
	return g.inner.Load(ctx, k)
}
func (g *gateStore) Save(ctx context.Context, k Key, fam *core.Family) error {
	g.once.Do(func() {
		g.entered <- struct{}{}
		<-g.release
	})
	return g.inner.Save(ctx, k, fam)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServerRejectsContentSHAMismatch(t *testing.T) {
	srv := NewServer(NewMemory(0), ServerConfig{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var csv bytes.Buffer
	if err := testFam("sha").WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	put := func(sha string) int {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/curves/"+testKey(23).String(), bytes.NewReader(csv.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if sha != "" {
			req.Header.Set("Content-SHA256", sha)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	sum := sha256.Sum256(csv.Bytes())
	wrong := sha256.Sum256([]byte("corrupted in transit"))
	if code := put(hex.EncodeToString(wrong[:])); code != http.StatusUnprocessableEntity {
		t.Fatalf("mismatched digest accepted with %d", code)
	}
	if got := srv.Stats().BadPuts; got != 1 {
		t.Fatalf("bad_puts = %d, want 1", got)
	}
	if code := put(hex.EncodeToString(sum[:])); code != http.StatusNoContent {
		t.Fatalf("matching digest rejected with %d", code)
	}
	// Uncompressed, digest-free uploads (curl-style seeding) still work.
	if code := put(""); code != http.StatusNoContent {
		t.Fatalf("digest-free upload rejected with %d", code)
	}
}

// TestServerPUTDurability pins the SaveStore contract: when the durable
// tier is broken, a PUT must fail loudly (500) rather than be silently
// absorbed by the bounded memory tier of the serving composition.
func TestServerPUTDurability(t *testing.T) {
	brokenDisk := errStore{err: errDiskFull}
	hot := NewMemory(4)
	srv := NewServer(NewTiered(hot, brokenDisk), ServerConfig{SaveStore: brokenDisk})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	err := fastClient(t, ts.URL).Save(bg, testKey(29), testFam("volatile"))
	if err == nil {
		t.Fatal("upload acknowledged with the durable tier broken")
	}
	if hot.Len() != 0 {
		t.Fatal("failed upload leaked into the hot tier")
	}
	if got := srv.Stats().Puts; got != 0 {
		t.Fatalf("puts = %d after a failed upload, want 0", got)
	}
}

var errDiskFull = errors.New("disk full")

func TestServerRejectsGarbage(t *testing.T) {
	srv := NewServer(NewMemory(0), ServerConfig{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	do := func(method, path string, body []byte) int {
		req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := do(http.MethodGet, "/v1/curves/not-a-key", nil); code != http.StatusBadRequest {
		t.Fatalf("bad key GET = %d", code)
	}
	if code := do(http.MethodPut, "/v1/curves/"+testKey(24).String(), []byte("definitely,not,curves")); code != http.StatusBadRequest {
		t.Fatalf("garbage CSV accepted with %d", code)
	}
	if code := do(http.MethodDelete, "/v1/curves/"+testKey(24).String(), nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE = %d", code)
	}
	if code := do(http.MethodGet, "/v2/other", nil); code != http.StatusNotFound {
		t.Fatalf("unknown path = %d", code)
	}
}

func TestClientRetriesTransientServerErrors(t *testing.T) {
	var failures atomic.Int64
	backing := NewMemory(0)
	real := NewServer(backing, ServerConfig{})
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failures.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		real.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	c := fastClient(t, ts.URL)
	if err := c.Save(bg, testKey(25), testFam("retry")); err != nil {
		t.Fatalf("save through 2 transient 500s: %v", err)
	}
	if _, ok, _ := backing.Load(bg, testKey(25)); !ok {
		t.Fatal("family never reached the store")
	}
}

func TestClientFailSoftWhenServerDown(t *testing.T) {
	ts := httptest.NewServer(NewServer(NewMemory(0), ServerConfig{}))
	url := ts.URL
	ts.Close() // nobody listening any more

	c := fastClient(t, url)
	start := time.Now()
	if _, ok, err := c.Load(bg, testKey(26)); ok || err == nil {
		t.Fatalf("load from dead server: ok=%v err=%v, want a tier error", ok, err)
	}
	// The circuit is now open: every further call is an instant miss with
	// no error — the degraded mode Tiered and charz ride through.
	if _, ok, err := c.Load(bg, testKey(26)); ok || err != nil {
		t.Fatalf("load with open circuit: ok=%v err=%v, want silent miss", ok, err)
	}
	if err := c.Save(bg, testKey(26), testFam("x")); err != ErrUnavailable {
		t.Fatalf("save with open circuit: %v, want ErrUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("degraded calls took %v — circuit not short-circuiting", elapsed)
	}
}

func TestServerStatsEndpoint(t *testing.T) {
	srv := NewServer(NewMemory(0), ServerConfig{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := fastClient(t, ts.URL)
	if err := c.Save(bg, testKey(27), testFam("stats")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := fastClient(t, ts.URL).Load(bg, testKey(27)); !ok || err != nil {
		t.Fatalf("load: %v %v", ok, err)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Puts != 1 || st.Hits != 1 {
		t.Fatalf("/v1/stats = %+v, want 1 put and 1 hit", st)
	}

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
}

func TestGzipOnTheWire(t *testing.T) {
	srv := NewServer(NewMemory(0), ServerConfig{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	key := testKey(28)
	if err := fastClient(t, ts.URL).Save(bg, key, testFam("gzip")); err != nil {
		t.Fatal(err)
	}

	// A raw GET advertising gzip must receive a gzip body that decodes to
	// the canonical CSV (the Go transport normally hides this; go direct).
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/curves/"+key.String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept-Encoding", "gzip")
	tr := &http.Transport{DisableCompression: true}
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", enc)
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fam, err := core.ReadCSV(zr)
	if err != nil {
		t.Fatalf("gzip body does not decode to curves: %v", err)
	}
	if fam.Label != "gzip" {
		t.Fatalf("label = %q", fam.Label)
	}
}
