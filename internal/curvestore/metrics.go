package curvestore

import (
	"net/http"
	"time"

	"github.com/mess-sim/mess/internal/telemetry"
)

// Register re-exports the server's counters into reg under the
// mess_curved_* families — read-time funcs over the same atomics
// /v1/stats serves, so the request paths are untouched and /metrics and
// /v1/stats can never disagree. Call once per registry; nil-safe.
func (s *Server) Register(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("mess_curved_hits_total", "GETs served with curve data (200 and 304)",
		func() float64 { return float64(s.hits.Load()) })
	reg.CounterFunc("mess_curved_misses_total", "GETs for unknown keys",
		func() float64 { return float64(s.misses.Load()) })
	reg.CounterFunc("mess_curved_revalidations_total", "GETs answered 304 via ETag revalidation",
		func() float64 { return float64(s.revalidations.Load()) })
	reg.CounterFunc("mess_curved_puts_total", "uploads stored",
		func() float64 { return float64(s.puts.Load()) })
	reg.CounterFunc("mess_curved_put_dedups_total", "concurrent duplicate uploads collapsed by singleflight",
		func() float64 { return float64(s.putDedups.Load()) })
	reg.CounterFunc("mess_curved_bad_puts_total", "uploads rejected (bad key, CSV or digest)",
		func() float64 { return float64(s.badPuts.Load()) })
	reg.CounterFunc("mess_curved_bytes_in_total", "curve payload bytes received",
		func() float64 { return float64(s.bytesIn.Load()) })
	reg.CounterFunc("mess_curved_bytes_out_total", "curve payload bytes sent",
		func() float64 { return float64(s.bytesOut.Load()) })
	reg.GaugeFunc("mess_curved_store_bytes", "bytes in the backing store",
		func() float64 { return float64(s.Stats().StoreBytes) })
	reg.GaugeFunc("mess_curved_store_evictions", "entries evicted from the backing store",
		func() float64 { return float64(s.Stats().Evictions) })
}

// Instrumented wraps next with request-level HTTP metrics: a duration
// histogram and an in-flight gauge. It sits in front of the whole mux in
// cmd/messcurved, so /metrics itself is measured too.
func Instrumented(reg *telemetry.Registry, next http.Handler) http.Handler {
	if reg == nil {
		return next
	}
	dur := reg.Histogram("mess_curved_request_seconds", "HTTP request duration", nil)
	inflight := reg.Gauge("mess_curved_inflight_requests", "HTTP requests currently being served")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inflight.Add(1)
		start := time.Now()
		defer func() {
			dur.Observe(time.Since(start).Seconds())
			inflight.Add(-1)
		}()
		next.ServeHTTP(w, r)
	})
}

// Instrument attaches client-side metrics to c: retry/circuit behaviour
// of the fleet's remote tier, the numbers an operator needs to tell "the
// curve server is struggling" from "the cache is just cold". Counters
// are nil-safe, so an uninstrumented client pays a nil check per event.
func (c *Client) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.mLoads = reg.Counter(`mess_curve_client_requests_total{op="load"}`, "remote store requests by operation")
	c.mSaves = reg.Counter(`mess_curve_client_requests_total{op="save"}`, "remote store requests by operation")
	c.mHits = reg.Counter("mess_curve_client_hits_total", "remote loads that returned a family")
	c.mRetries = reg.Counter("mess_curve_client_retries_total", "request retry attempts")
	c.mTrips = reg.Counter("mess_curve_client_circuit_trips_total", "times the fail-soft circuit opened")
	c.mShorted = reg.Counter("mess_curve_client_short_circuits_total", "calls answered instantly by an open circuit")
	reg.GaugeFunc("mess_curve_client_circuit_open", "1 while the fail-soft circuit is open", func() float64 {
		if c.CircuitOpen() {
			return 1
		}
		return 0
	})
}
