package curvestore

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"testing"

	"github.com/mess-sim/mess/internal/core"
)

// bg is the do-not-care context for store calls whose cancellation
// behaviour is not under test.
var bg = context.Background()

func testKey(i int) Key {
	return Key(sha256.Sum256([]byte(fmt.Sprintf("curvestore-test-%d", i))))
}

func testFam(label string) *core.Family {
	return &core.Family{
		Label:         label,
		TheoreticalBW: 100,
		Curves: []core.Curve{
			{ReadRatio: 0.5, Points: []core.Point{{BW: 1, Latency: 95}, {BW: 60, Latency: 260}}},
			{ReadRatio: 1.0, Points: []core.Point{{BW: 1, Latency: 90}, {BW: 80, Latency: 200}}},
		},
	}
}

func TestParseKey(t *testing.T) {
	k := testKey(1)
	got, err := ParseKey(k.String())
	if err != nil || got != k {
		t.Fatalf("round trip: %v %v", got, err)
	}
	for _, bad := range []string{
		"", "ab", k.String()[:63], k.String() + "0",
		"G" + k.String()[1:],  // non-hex
		"AB" + k.String()[2:], // uppercase is non-canonical
	} {
		if _, err := ParseKey(bad); err == nil {
			t.Fatalf("ParseKey(%q) accepted", bad)
		}
	}
}

func TestMemoryStoreIsolatedAndLRUBounded(t *testing.T) {
	m := NewMemory(3)
	fam := testFam("mem")
	if err := m.Save(bg, testKey(0), fam); err != nil {
		t.Fatal(err)
	}
	fam.Label = "mutated after save"
	got, ok, err := m.Load(bg, testKey(0))
	if err != nil || !ok {
		t.Fatalf("load: %v %v", ok, err)
	}
	if got.Label != "mem" {
		t.Fatalf("store aliased the saved family: %q", got.Label)
	}
	got.Curves[0].Points[0].Latency = -1
	again, _, _ := m.Load(bg, testKey(0))
	if again.Curves[0].Points[0].Latency != 95 {
		t.Fatal("store aliased the loaded family")
	}

	// Fill to the bound, touch key 0 via Load, then overflow: the load
	// refreshed key 0's recency, so key 1 is the LRU victim.
	for i := 1; i < 3; i++ {
		if err := m.Save(bg, testKey(i), testFam("fill")); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, _ := m.Load(bg, testKey(0)); !ok {
		t.Fatal("key 0 missing before overflow")
	}
	if err := m.Save(bg, testKey(3), testFam("overflow")); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	if _, ok, _ := m.Load(bg, testKey(0)); !ok {
		t.Fatal("recently loaded entry evicted — Load does not refresh recency")
	}
	if _, ok, _ := m.Load(bg, testKey(1)); ok {
		t.Fatal("least recently used entry survived")
	}
	if m.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", m.Evictions())
	}
}

// errStore is a tier that always fails, for fail-soft tests.
type errStore struct{ err error }

func (e errStore) Load(context.Context, Key) (*core.Family, bool, error) { return nil, false, e.err }
func (e errStore) Save(context.Context, Key, *core.Family) error         { return e.err }

func TestTieredPromotesOnHit(t *testing.T) {
	hot, cold := NewMemory(0), NewMemory(0)
	tiered := NewTiered(hot, nil, cold) // nil tiers are dropped
	if tiered.Tiers() != 2 {
		t.Fatalf("Tiers = %d, want 2", tiered.Tiers())
	}
	key := testKey(10)
	if err := cold.Save(bg, key, testFam("deep")); err != nil {
		t.Fatal(err)
	}

	fam, tier, err := tiered.LoadTier(bg, key)
	if err != nil || tier != 1 || fam.Label != "deep" {
		t.Fatalf("LoadTier = %v tier=%d err=%v, want hit on tier 1", fam, tier, err)
	}
	// The hit was promoted: the hot tier now answers directly.
	if _, ok, _ := hot.Load(bg, key); !ok {
		t.Fatal("hit not promoted into the hotter tier")
	}
	if _, tier, _ := tiered.LoadTier(bg, key); tier != 0 {
		t.Fatalf("second lookup hit tier %d, want 0", tier)
	}
}

func TestTieredFailSoft(t *testing.T) {
	boom := errors.New("tier down")
	good := NewMemory(0)
	key := testKey(11)
	if err := good.Save(bg, key, testFam("survivor")); err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(errStore{boom}, good)

	// A broken tier above a good one: the hit wins, no error.
	fam, ok, err := tiered.Load(bg, key)
	if err != nil || !ok || fam.Label != "survivor" {
		t.Fatalf("Load through broken tier: fam=%v ok=%v err=%v", fam, ok, err)
	}

	// A total miss reports the tier errors.
	if _, ok, err := tiered.Load(bg, testKey(12)); ok || !errors.Is(err, boom) {
		t.Fatalf("miss: ok=%v err=%v, want the joined tier error", ok, err)
	}

	// Save succeeds if any tier stored it...
	if err := tiered.Save(bg, testKey(13), testFam("x")); err != nil {
		t.Fatalf("save with one good tier: %v", err)
	}
	// ...and fails only when all tiers failed.
	allBroken := NewTiered(errStore{boom}, errStore{boom})
	if err := allBroken.Save(bg, testKey(14), testFam("x")); !errors.Is(err, boom) {
		t.Fatalf("save with no good tier: %v", err)
	}
}
