package curvestore

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"github.com/mess-sim/mess/internal/telemetry"
)

// promSeries parses a Prometheus text-format body the strict way: every
// line must be a # HELP / # TYPE comment or a `name{labels} value` sample
// whose value strconv parses. Returns the samples by full series name.
func promSeries(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			t.Fatalf("not Prometheus text format: %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparsable sample value in %q: %v", line, err)
		}
		out[name] = v
	}
	return out
}

// TestMetricsEndpointServesPrometheusText drives the exact handler stack
// cmd/messcurved serves — store handler behind the Instrumented middleware,
// store and client counters registered in one registry, /metrics from
// Registry.Handler — and asserts the scrape is valid Prometheus text whose
// counters reflect the traffic that just happened.
func TestMetricsEndpointServesPrometheusText(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := NewServer(NewMemory(0), ServerConfig{})
	srv.Register(reg)
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/", Instrumented(reg, srv))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	client := fastClient(t, ts.URL)
	client.Instrument(reg)
	key := testKey(42)
	if _, ok, err := client.Load(bg, key); ok || err != nil {
		t.Fatalf("load before save: ok=%v err=%v", ok, err)
	}
	if err := client.Save(bg, key, testFam("metrics")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := client.Load(bg, key); !ok || err != nil {
		t.Fatalf("load after save: ok=%v err=%v", ok, err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want Prometheus text exposition", ct)
	}

	series := promSeries(t, string(body))
	for name, min := range map[string]float64{
		"mess_curved_hits_total":                      1,
		"mess_curved_misses_total":                    1,
		"mess_curved_puts_total":                      1,
		"mess_curved_request_seconds_count":           3,
		`mess_curve_client_requests_total{op="load"}`: 2,
		`mess_curve_client_requests_total{op="save"}`: 1,
		"mess_curve_client_hits_total":                1,
	} {
		if got := series[name]; got < min {
			t.Errorf("%s = %g, want >= %g\nscrape:\n%s", name, got, min, body)
		}
	}

	// The /metrics scrape itself must not ride through the store counters.
	if got := series["mess_curved_misses_total"]; got != 1 {
		t.Errorf("mess_curved_misses_total = %g after 1 miss, want exactly 1", got)
	}

	// The same handler serves the expvar-style JSON view on request.
	resp, err = http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	jbody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(jbody, &doc); err != nil {
		t.Fatalf("?format=json is not valid JSON: %v\n%s", err, jbody)
	}
	if _, ok := doc["mess_curved_hits_total"]; !ok {
		t.Fatalf("JSON view missing mess_curved_hits_total:\n%s", jbody)
	}
}
