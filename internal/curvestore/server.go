package curvestore

import (
	"bytes"
	"compress/gzip"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/mess-sim/mess/internal/core"
)

// ServerConfig parameterizes a curve server. The zero value is usable.
type ServerConfig struct {
	// MaxBodyBytes bounds an uploaded CSV (after decompression). Default
	// 64 MiB — orders of magnitude above any real curve family.
	MaxBodyBytes int64
	// SaveStore, when set, is where uploads are persisted instead of the
	// serving store. When the serving store is Tiered(memory, disk), a
	// PUT through the tiered front would "succeed" into the bounded
	// memory tier even with the disk broken — acknowledging durability
	// the server does not have. messcurved therefore saves straight to
	// the disk tier (a failed disk is a 500, never a silent 204); the hot
	// tier fills on first GET via tiered promotion. Default: the serving
	// store.
	SaveStore Store
	// StatsStore, when set, is the tier probed for store_bytes and
	// evictions in /v1/stats — typically the DiskStore behind a Tiered
	// front whose memory tier would otherwise hide it. Default: the store
	// the server fronts.
	StatsStore Store
	// Log, when set, receives one line per completed request.
	Log *log.Logger
}

// Server is the HTTP handler of the fleet-shared curve store, the handler
// cmd/messcurved serves. The protocol is deliberately tiny and
// content-addressed:
//
//	GET  /v1/curves/{key}  → 200 text/csv (gzip when accepted) | 304 | 404
//	PUT  /v1/curves/{key}  → 204 (stored or already present) | 400 | 422
//	GET  /v1/stats         → 200 application/json counters
//	GET  /healthz          → 200 "ok"
//
// Keys are 64-digit lowercase hex (charz fingerprints). Every 200 carries
// a strong ETag — the SHA-256 of the canonical CSV — honoured via
// If-None-Match, so revalidating clients pay one round trip and no body.
// Uploads may be gzip-compressed (Content-Encoding: gzip) and, when the
// request carries a Content-SHA256 header (the Client always does), the
// decompressed CSV is verified against it before anything is stored: a
// corrupted or truncated upload is rejected with 422, never persisted.
// Concurrent PUTs of one key are collapsed by per-key singleflight: the
// first writer stores, the rest wait and acknowledge — exactly the
// stampede a fleet of CI runners finishing the same characterization
// produces.
type Server struct {
	store     Store
	saveTo    Store
	statsFrom Store
	maxBody   int64
	logger    *log.Logger

	mu       sync.Mutex
	inflight map[Key]*putFlight

	// etags caches each key's strong validator so revalidations (304) —
	// the steady-state request of a warmed-up fleet — answer without
	// loading, cloning, serializing or hashing the family. Entries are
	// content-addressed and immutable, so a cached validator can never go
	// stale; the FIFO bound only limits memory (≈100 B per entry).
	etags *fifoCache[string]

	hits, misses, revalidations atomic.Int64
	puts, putDedups, badPuts    atomic.Int64
	bytesIn, bytesOut           atomic.Int64
}

// putFlight is one in-progress upload of a key: done closes when the
// winning writer finished, after which err is immutable — waiters read it
// instead of round-tripping through the store to learn the outcome.
type putFlight struct {
	done chan struct{}
	err  error
}

// etagCacheEntries bounds the validator cache.
const etagCacheEntries = 1 << 14

// NewServer builds the handler fronting store — typically a Tiered
// memory→disk composition, so hot families are served without touching
// disk.
func NewServer(store Store, cfg ServerConfig) *Server {
	s := &Server{
		store:     store,
		saveTo:    cfg.SaveStore,
		statsFrom: cfg.StatsStore,
		maxBody:   cfg.MaxBodyBytes,
		logger:    cfg.Log,
		inflight:  map[Key]*putFlight{},
		etags:     newFIFOCache[string](etagCacheEntries),
	}
	if s.saveTo == nil {
		s.saveTo = store
	}
	if s.statsFrom == nil {
		s.statsFrom = store
	}
	if s.maxBody <= 0 {
		s.maxBody = 64 << 20
	}
	return s
}

// ServerStats is the /v1/stats document.
type ServerStats struct {
	// Hits counts GETs served with curve data (200 and 304 alike);
	// Revalidations is the 304 subset, served without a body.
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Revalidations int64 `json:"revalidations"`
	// Puts counts stored uploads; PutDedups counts concurrent duplicate
	// uploads collapsed by singleflight; BadPuts counts rejected ones
	// (bad key, unparsable CSV, Content-SHA256 mismatch).
	Puts      int64 `json:"puts"`
	PutDedups int64 `json:"put_dedups"`
	BadPuts   int64 `json:"bad_puts"`
	// BytesOut / BytesIn count curve payload bytes on the wire (after /
	// before compression).
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
	// StoreBytes / Evictions reflect the backing store, when it reports
	// them (charz.DiskStore does).
	StoreBytes int64 `json:"store_bytes"`
	Evictions  int64 `json:"evictions"`
}

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Revalidations: s.revalidations.Load(),
		Puts:          s.puts.Load(),
		PutDedups:     s.putDedups.Load(),
		BadPuts:       s.badPuts.Load(),
		BytesIn:       s.bytesIn.Load(),
		BytesOut:      s.bytesOut.Load(),
	}
	if sizer, ok := s.statsFrom.(interface{ Size() (int64, error) }); ok {
		if n, err := sizer.Size(); err == nil {
			st.StoreBytes = n
		}
	}
	if ev, ok := s.statsFrom.(interface{ Evictions() int64 }); ok {
		st.Evictions = ev.Evictions()
	}
	return st
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz":
		io.WriteString(w, "ok\n")
	case r.URL.Path == "/v1/stats":
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.Stats())
	case strings.HasPrefix(r.URL.Path, "/v1/curves/"):
		rest := strings.TrimPrefix(r.URL.Path, "/v1/curves/")
		key, err := ParseKey(rest)
		if err != nil {
			if r.Method == http.MethodPut {
				s.badPuts.Add(1)
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet, http.MethodHead:
			s.get(w, r, key)
		case http.MethodPut:
			s.put(w, r, key)
		default:
			w.Header().Set("Allow", "GET, HEAD, PUT")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	default:
		http.NotFound(w, r)
	}
}

// errUploadAborted marks a put flight whose winner bailed before storing
// (bad body, digest mismatch, store failure).
var errUploadAborted = errors.New("curvestore: upload aborted")

// etagFor is the strong validator for a family: the SHA-256 of its
// canonical CSV serialization.
func etagFor(csv []byte) string {
	sum := sha256.Sum256(csv)
	return `"` + hex.EncodeToString(sum[:]) + `"`
}

func (s *Server) get(w http.ResponseWriter, r *http.Request, key Key) {
	// Revalidation fast path: entries are immutable, so a match against
	// the cached validator is authoritative without touching the store —
	// and remains correct even if the entry was since GC'd (the client's
	// copy cannot have gone stale, only absent).
	if match := r.Header.Get("If-None-Match"); match != "" {
		if etag, ok := s.etags.get(key); ok && etagMatches(match, etag) {
			s.hits.Add(1)
			s.revalidations.Add(1)
			w.Header().Set("ETag", etag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	fam, ok, err := s.store.Load(r.Context(), key)
	if err != nil || !ok {
		// Fail-soft on the serving side too: a corrupt entry reads as a
		// miss, and the client re-simulates (and re-uploads) it.
		if err != nil {
			s.logf("GET %s: load error treated as miss: %v", key.Short(), err)
		}
		s.misses.Add(1)
		http.Error(w, "unknown curve key", http.StatusNotFound)
		return
	}
	var buf bytes.Buffer
	if err := fam.WriteCSV(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	etag := etagFor(buf.Bytes())
	s.etags.put(key, etag)
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	if match := r.Header.Get("If-None-Match"); etagMatches(match, etag) {
		s.hits.Add(1)
		s.revalidations.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	s.hits.Add(1)
	if r.Method == http.MethodHead {
		return
	}
	if strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
		w.Header().Set("Content-Encoding", "gzip")
		cw := &countWriter{w: w}
		zw := gzip.NewWriter(cw)
		zw.Write(buf.Bytes())
		zw.Close()
		s.bytesOut.Add(cw.n)
	} else {
		n, _ := w.Write(buf.Bytes())
		s.bytesOut.Add(int64(n))
	}
	s.logf("GET %s: hit (%d bytes)", key.Short(), buf.Len())
}

// etagMatches implements the subset of If-None-Match the Client emits: a
// single strong validator or a comma-separated list, plus "*".
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		if strings.TrimSpace(part) == etag {
			return true
		}
	}
	return false
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (s *Server) put(w http.ResponseWriter, r *http.Request, key Key) {
	// Per-key singleflight: the first concurrent writer for a key stores
	// it, the rest wait for the outcome and acknowledge without touching
	// the store — content addressing guarantees their payloads agree.
	s.mu.Lock()
	if f, busy := s.inflight[key]; busy {
		s.putDedups.Add(1)
		s.mu.Unlock()
		<-f.done
		if f.err == nil {
			w.Header().Set("X-Curve-Dedup", "1")
			w.WriteHeader(http.StatusNoContent)
		} else {
			// The winning upload failed; this waiter's body was never
			// stored either, so ask it to retry.
			http.Error(w, "concurrent upload failed, retry", http.StatusServiceUnavailable)
		}
		return
	}
	flight := &putFlight{done: make(chan struct{})}
	// Until the winner succeeds, the flight reads as failed — an early
	// return on any of the validation paths below tells waiters to retry.
	flight.err = errUploadAborted
	s.inflight[key] = flight
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
		close(flight.done)
	}()

	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	raw, err := io.ReadAll(body)
	if err != nil {
		s.badPuts.Add(1)
		http.Error(w, "reading upload: "+err.Error(), http.StatusBadRequest)
		return
	}
	s.bytesIn.Add(int64(len(raw)))
	csv := raw
	if strings.Contains(r.Header.Get("Content-Encoding"), "gzip") {
		zr, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			s.badPuts.Add(1)
			http.Error(w, "bad gzip body: "+err.Error(), http.StatusBadRequest)
			return
		}
		csv, err = io.ReadAll(io.LimitReader(zr, s.maxBody+1))
		if err != nil {
			s.badPuts.Add(1)
			http.Error(w, "bad gzip body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if int64(len(csv)) > s.maxBody {
			s.badPuts.Add(1)
			http.Error(w, "decompressed body too large", http.StatusRequestEntityTooLarge)
			return
		}
	}
	// Content-SHA verification: the digest declared by the uploader must
	// match the decompressed CSV, so a payload corrupted or truncated in
	// transit is rejected rather than stored under a key it does not
	// belong to. (The key itself fingerprints the characterization
	// request, not the CSV bytes, so the digest rides in a header.)
	if declared := r.Header.Get("Content-SHA256"); declared != "" {
		sum := sha256.Sum256(csv)
		if !strings.EqualFold(declared, hex.EncodeToString(sum[:])) {
			s.badPuts.Add(1)
			http.Error(w, "Content-SHA256 mismatch", http.StatusUnprocessableEntity)
			return
		}
	}
	fam, err := core.ReadCSV(bytes.NewReader(csv))
	if err != nil {
		s.badPuts.Add(1)
		http.Error(w, "bad curve CSV: "+err.Error(), http.StatusBadRequest)
		return
	}
	// Persist to the durable save store (see ServerConfig.SaveStore): a
	// failed disk must surface as a 500, not be masked by a bounded
	// memory tier accepting the family.
	// The body is fully received and verified by now, and singleflight
	// waiters are counting on this write — so it proceeds even if the
	// uploader disconnects (WithoutCancel), like any committed upload.
	if err := s.saveTo.Save(context.WithoutCancel(r.Context()), key, fam); err != nil {
		http.Error(w, "storing curves: "+err.Error(), http.StatusInternalServerError)
		return
	}
	flight.err = nil
	s.puts.Add(1)
	// Re-serialize for the ETag so it always names the canonical form the
	// next GET will serve.
	var canon bytes.Buffer
	if err := fam.WriteCSV(&canon); err == nil {
		etag := etagFor(canon.Bytes())
		s.etags.put(key, etag)
		w.Header().Set("ETag", etag)
	}
	w.WriteHeader(http.StatusNoContent)
	s.logf("PUT %s: stored (%d bytes)", key.Short(), len(csv))
}
