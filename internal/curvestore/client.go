package curvestore

import (
	"bytes"
	"compress/gzip"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"github.com/mess-sim/mess/internal/core"
	"github.com/mess-sim/mess/internal/telemetry"
)

// EnvURL is the environment variable naming the fleet's curve server. The
// CLI tools consult it when -cache-url is empty, and the mess facade's
// default characterization service joins it automatically — one variable
// configures the whole fleet.
const EnvURL = "MESS_CURVE_URL"

// ErrUnavailable reports that the remote store is in its failure cooldown:
// a recent request exhausted its retries, so the client short-circuits
// instead of paying the timeout again. Callers composing tiers treat it
// like any other tier error — a miss.
var ErrUnavailable = errors.New("curvestore: remote store unavailable (cooling down)")

// ClientConfig parameterizes a remote-store client. The zero value is
// usable: sane timeouts, two retries with doubling backoff, a 15 s failure
// cooldown and a 128-entry revalidation cache.
type ClientConfig struct {
	// HTTPClient overrides the underlying HTTP client (test seam, custom
	// transports). Default: a client with a 30 s request timeout.
	HTTPClient *http.Client
	// Retries is how many times a failed request (transport error or 5xx)
	// is retried after the first attempt. Default 2; negative disables.
	Retries int
	// Backoff is the delay before the first retry, doubling per attempt.
	// Default 100 ms.
	Backoff time.Duration
	// Cooldown opens the fail-soft circuit after a request exhausts its
	// retries: until it elapses, Load reports a silent miss and Save
	// reports ErrUnavailable, so a down server costs one timeout — not one
	// per characterization. Default 15 s; negative disables the circuit.
	Cooldown time.Duration
	// RevalidateEntries bounds the ETag revalidation cache: families the
	// client has already transferred are re-requested with If-None-Match
	// and served locally on 304. Default 128; negative disables.
	RevalidateEntries int
}

// Client is a Store backed by a curve server (cmd/messcurved) speaking the
// content-addressed HTTP protocol: GET/PUT /v1/curves/{key} with gzip
// bodies, ETag/If-None-Match revalidation and Content-SHA256 upload
// verification.
//
// The client is built to be composed as the outermost (most expensive)
// tier and to degrade rather than fail: requests retry with bounded
// backoff, and once a request exhausts its retries the circuit opens for
// Cooldown — every call in that window is an instant miss. A fleet whose
// curve server is down therefore falls back to local tiers (or
// re-simulation) with no error and almost no added latency.
type Client struct {
	base     string // scheme://host[:port], no trailing slash
	hc       *http.Client
	retries  int
	backoff  time.Duration
	cooldown time.Duration

	mu        sync.Mutex
	downUntil time.Time
	reval     *fifoCache[revalEntry]

	// Telemetry counters, attached by Instrument; nil (no-op) otherwise.
	mLoads, mSaves, mHits, mRetries, mTrips, mShorted *telemetry.Counter
}

type revalEntry struct {
	etag string
	fam  *core.Family
}

// NewClient builds a client for the curve server at baseURL (e.g.
// "http://curves.internal:9400"). The URL must name an http or https
// server; a malformed URL is a configuration error, reported loudly —
// fail-soft applies to the server being down, not to a bad flag.
func NewClient(baseURL string, cfg ClientConfig) (*Client, error) {
	u, err := url.Parse(strings.TrimRight(baseURL, "/"))
	if err != nil {
		return nil, fmt.Errorf("curvestore: remote URL %q: %w", baseURL, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("curvestore: remote URL %q must be http(s)://host[:port]", baseURL)
	}
	c := &Client{
		base:     u.String(),
		hc:       cfg.HTTPClient,
		retries:  cfg.Retries,
		backoff:  cfg.Backoff,
		cooldown: cfg.Cooldown,
	}
	if c.hc == nil {
		c.hc = &http.Client{Timeout: 30 * time.Second}
	}
	if c.retries == 0 {
		c.retries = 2
	} else if c.retries < 0 {
		c.retries = 0
	}
	if c.backoff == 0 {
		c.backoff = 100 * time.Millisecond
	}
	if c.cooldown == 0 {
		c.cooldown = 15 * time.Second
	} else if c.cooldown < 0 {
		c.cooldown = 0
	}
	revalMax := cfg.RevalidateEntries
	if revalMax == 0 {
		revalMax = 128
	}
	c.reval = newFIFOCache[revalEntry](revalMax)
	return c, nil
}

// BaseURL reports the server the client talks to.
func (c *Client) BaseURL() string { return c.base }

func (c *Client) urlFor(key Key) string { return c.base + "/v1/curves/" + key.String() }

// Load fetches the family for key from the server. A 404 and an open
// circuit both read as a clean miss; transport failures and 5xx responses
// are retried, then trip the circuit and surface as a tier error (which a
// Tiered composition — and charz — treats as a miss). When the response
// carries the server's strong ETag (the SHA-256 of the canonical CSV) the
// body is verified against it before being trusted: a corrupted or
// truncated transfer reads as a tier error, never as wrong curves.
func (c *Client) Load(ctx context.Context, key Key) (*core.Family, bool, error) {
	if c.CircuitOpen() {
		c.mShorted.Inc()
		return nil, false, nil
	}
	c.mLoads.Inc()
	etag, cached := c.revalGet(key)
	resp, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.urlFor(key), nil)
		if err != nil {
			return nil, err
		}
		if cached != nil && etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		return req, nil
	})
	if err != nil {
		return nil, false, fmt.Errorf("curvestore: remote load %s: %w", key.Short(), err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		// The transport handles Content-Encoding: gzip transparently.
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, false, fmt.Errorf("curvestore: remote load %s: reading body: %w", key.Short(), err)
		}
		respETag := resp.Header.Get("ETag")
		if err := verifyBody(body, respETag); err != nil {
			return nil, false, fmt.Errorf("curvestore: remote load %s: %w", key.Short(), err)
		}
		fam, err := core.ReadCSV(bytes.NewReader(body))
		if err != nil {
			return nil, false, fmt.Errorf("curvestore: remote load %s: %w", key.Short(), err)
		}
		c.revalPut(key, respETag, fam)
		c.mHits.Inc()
		return fam, true, nil
	case http.StatusNotModified:
		if cached == nil {
			// An unsolicited 304 (we sent no If-None-Match): a confused
			// server or intermediary. Fail-soft, like any broken tier.
			return nil, false, fmt.Errorf("curvestore: remote load %s: unsolicited 304", key.Short())
		}
		c.mHits.Inc()
		return cached.Clone(), true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("curvestore: remote load %s: server returned %s", key.Short(), resp.Status)
	}
}

// Save uploads the family under key: a gzip-compressed PUT carrying a
// Content-SHA256 digest of the uncompressed CSV, which the server verifies
// before storing. Like Load, it retries transient failures and opens the
// circuit when they persist.
func (c *Client) Save(ctx context.Context, key Key, fam *core.Family) error {
	if c.CircuitOpen() {
		c.mShorted.Inc()
		return ErrUnavailable
	}
	c.mSaves.Inc()
	var raw bytes.Buffer
	if err := fam.WriteCSV(&raw); err != nil {
		return fmt.Errorf("curvestore: encoding curves for upload: %w", err)
	}
	sum := sha256.Sum256(raw.Bytes())
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(raw.Bytes()); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}
	resp, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.urlFor(key), bytes.NewReader(gz.Bytes()))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "text/csv")
		req.Header.Set("Content-Encoding", "gzip")
		req.Header.Set("Content-SHA256", hex.EncodeToString(sum[:]))
		return req, nil
	})
	if err != nil {
		return fmt.Errorf("curvestore: remote save %s: %w", key.Short(), err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("curvestore: remote save %s: server returned %s", key.Short(), resp.Status)
	}
	c.revalPut(key, resp.Header.Get("ETag"), fam)
	return nil
}

// verifyBody checks a downloaded body against the server's strong ETag —
// a quoted SHA-256 of the canonical CSV. An empty or non-digest validator
// (a fronting proxy rewriting ETags) skips the check rather than failing
// it; a digest mismatch is a tier error.
func verifyBody(body []byte, etag string) error {
	digest := strings.Trim(etag, `"`)
	if len(digest) != 2*sha256.Size {
		return nil
	}
	if _, err := hex.DecodeString(digest); err != nil {
		return nil
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != digest {
		return fmt.Errorf("body does not match ETag (corrupt transfer)")
	}
	return nil
}

// do executes one request with bounded retries on transport errors and
// 5xx responses. Retry sleeps use full jitter — uniform in [0, backoff),
// backoff doubling per attempt — so a fleet of clients that miss together
// does not stampede the server in lockstep, and they select on ctx so a
// cancelled caller never waits out a backoff. Exhausting the retries trips
// the fail-soft circuit; caller cancellation does not — the server may be
// perfectly healthy, so the next caller should still try it.
func (c *Client) do(ctx context.Context, build func() (*http.Request, error)) (*http.Response, error) {
	backoff := c.backoff
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			c.mRetries.Inc()
			if err := sleepJitter(ctx, backoff); err != nil {
				return nil, err
			}
			backoff *= 2
		}
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				// The request died because the caller cancelled, not because
				// the server failed: report it without tripping the circuit.
				return nil, ctx.Err()
			}
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
			resp.Body.Close()
			lastErr = fmt.Errorf("server returned %s", resp.Status)
			continue
		}
		return resp, nil
	}
	c.trip()
	return nil, lastErr
}

// sleepJitter blocks for a uniform duration in [0, max) or until ctx is
// cancelled.
func sleepJitter(ctx context.Context, max time.Duration) error {
	if max <= 0 {
		return ctx.Err()
	}
	d := time.Duration(rand.Int63n(int64(max)))
	if d == 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CircuitOpen reports whether the fail-soft circuit is open: a recent
// request exhausted its retries and the client is inside its cooldown, so
// calls short-circuit to a miss (Load) or ErrUnavailable (Save). Exported
// so operators (CLI stats lines, health probes) can tell "server slow"
// from "server written off".
func (c *Client) CircuitOpen() bool {
	if c.cooldown <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Now().Before(c.downUntil)
}

// CircuitUntil reports when the circuit closes again; the zero time means
// it has never tripped (or the circuit is disabled).
func (c *Client) CircuitUntil() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.downUntil
}

func (c *Client) trip() {
	if c.cooldown <= 0 {
		return
	}
	c.mTrips.Inc()
	c.mu.Lock()
	c.downUntil = time.Now().Add(c.cooldown)
	c.mu.Unlock()
}

// revalGet reports the cached ETag and family for key, if any.
func (c *Client) revalGet(key Key) (string, *core.Family) {
	e, ok := c.reval.get(key)
	if !ok {
		return "", nil
	}
	return e.etag, e.fam
}

// revalPut remembers a private copy of the family and its ETag for future
// If-None-Match revalidation.
func (c *Client) revalPut(key Key, etag string, fam *core.Family) {
	if etag == "" {
		return
	}
	c.reval.put(key, revalEntry{etag: etag, fam: fam.Clone()})
}
