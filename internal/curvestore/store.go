// Package curvestore is the storage layer for Mess curve families: the
// Store interface every persistence tier implements, plus the composable
// tiers themselves — a bounded in-memory cache, a tier composition with
// write-back promotion, and (in client.go / server.go) an HTTP client and
// server that share families across machines.
//
// Curve families are expensive — producing one means running the full Mess
// benchmark sweep — and they are immutable once produced: a Key is a
// content-addressed fingerprint of the characterization request, so the
// family stored under a key can never change, only exist or not. Every tier
// exploits that: entries need no invalidation, promotion between tiers is
// always safe, and an evicted or lost entry is simply re-simulated.
//
// The canonical tier order is memory → disk → remote: a process checks its
// cheapest tier first and falls through to the fleet-shared curve server
// last. The composition rule is fail-soft — a broken tier (corrupt file,
// unreachable server) reads as a miss, never as a failure, so losing every
// cache between a caller and its curves costs a re-simulation, not an
// error.
package curvestore

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"github.com/mess-sim/mess/internal/core"
)

// Key is the content-addressed identity of a characterization: a SHA-256
// digest over a canonical encoding of the platform spec, the normalized
// benchmark options and the backend tag (computed by charz.Fingerprint).
// Equal keys mean the simulation would produce bit-identical curve
// families, so one stored result can serve every requester — in memory
// within a process, on disk across processes, and over HTTP across
// machines.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (the on-disk file stem and the
// HTTP path segment).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Short returns the first 12 hex digits, for logs and progress lines.
func (k Key) Short() string { return k.String()[:12] }

// ParseKey parses the canonical 64-digit lowercase-hex form. Uppercase is
// rejected so every key has exactly one URL and one file name.
func ParseKey(s string) (Key, error) {
	var k Key
	if len(s) != 2*sha256.Size {
		return k, fmt.Errorf("curvestore: key %q is %d chars, want %d", s, len(s), 2*sha256.Size)
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return k, fmt.Errorf("curvestore: key %q is not lowercase hex", s)
		}
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, fmt.Errorf("curvestore: key %q: %w", s, err)
	}
	copy(k[:], b)
	return k, nil
}

// Store is one persistence tier for curve families. charz.DiskStore, the
// Memory and Tiered stores here, and the HTTP Client all implement it, so
// any of them can back a characterization service or a curve server.
//
// Load reports ok=false for an absent key; an error means the key may be
// present but could not be read (corrupt file, unreachable server).
// Callers composing tiers must treat an error as a miss (fail-soft).
//
// Save must be atomic with respect to concurrent readers and idempotent:
// keys are content-addressed, so two writers storing the same key store
// semantically identical families and either may win.
//
// Both operations honour their context: a tier that talks to anything
// slower than memory (disk, network) must return promptly — with
// ctx.Err() — once the context is cancelled, so a deadline set at the top
// of the stack (a CLI -timeout, a SIGINT) propagates through every tier
// instead of being absorbed by an uninterruptible sleep. Cancellation is
// an ordinary tier error under the fail-soft rule.
type Store interface {
	Load(context.Context, Key) (*core.Family, bool, error)
	Save(context.Context, Key, *core.Family) error
}

// Memory is a concurrency-safe in-memory tier: a bounded LRU map of deep
// copies. It is the hot tier in front of a DiskStore (the curve server's
// configuration) and the cheapest member of a Tiered composition.
type Memory struct {
	mu        sync.Mutex
	max       int
	entries   map[Key]*list.Element
	order     *list.List // front = most recently used
	evictions int64
}

type memEntry struct {
	key Key
	fam *core.Family
}

// NewMemory builds a memory store holding at most maxEntries families
// (LRU-evicted); maxEntries <= 0 means unbounded.
func NewMemory(maxEntries int) *Memory {
	return &Memory{
		max:     maxEntries,
		entries: map[Key]*list.Element{},
		order:   list.New(),
	}
}

// Load returns a private copy of the family for key. Purely in-memory, so
// the context is never consulted: the operation cannot block.
func (m *Memory) Load(_ context.Context, key Key) (*core.Family, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[key]
	if !ok {
		return nil, false, nil
	}
	m.order.MoveToFront(el)
	return el.Value.(*memEntry).fam.Clone(), true, nil
}

// Save stores a private copy of the family, evicting the least recently
// used entry when the bound is exceeded.
func (m *Memory) Save(_ context.Context, key Key, fam *core.Family) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[key]; ok {
		// Content-addressed: the family cannot differ, but refresh anyway
		// so a caller repairing a mangled copy converges.
		el.Value.(*memEntry).fam = fam.Clone()
		m.order.MoveToFront(el)
		return nil
	}
	m.entries[key] = m.order.PushFront(&memEntry{key: key, fam: fam.Clone()})
	if m.max > 0 && m.order.Len() > m.max {
		oldest := m.order.Back()
		m.order.Remove(oldest)
		delete(m.entries, oldest.Value.(*memEntry).key)
		m.evictions++
	}
	return nil
}

// Len reports resident entries.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}

// Evictions reports cumulative LRU evictions.
func (m *Memory) Evictions() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evictions
}

// fifoCache is a bounded concurrency-safe map with FIFO eviction, shared
// by the client's revalidation cache and the server's validator cache.
// Its entries are derived from immutable content-addressed families, so
// they can never go stale — which member gets dropped affects only
// transfer volume, making FIFO's minimal bookkeeping the right trade
// against LRU.
type fifoCache[V any] struct {
	mu    sync.Mutex
	max   int
	m     map[Key]V
	order []Key
}

// newFIFOCache builds a cache bounded to max entries; max <= 0 disables
// it (get always misses, put is a no-op).
func newFIFOCache[V any](max int) *fifoCache[V] {
	return &fifoCache[V]{max: max, m: map[Key]V{}}
}

func (c *fifoCache[V]) get(key Key) (V, bool) {
	var zero V
	if c.max <= 0 {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

func (c *fifoCache[V]) put(key Key, v V) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; !ok {
		c.order = append(c.order, key)
		if len(c.order) > c.max {
			delete(c.m, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.m[key] = v
}

// Tiered composes stores in lookup order — canonically memory → disk →
// remote. A Load consults each tier in turn and, on a hit, writes the
// family back into every earlier (cheaper) tier, so repeated lookups
// migrate hot families toward the caller. A tier that errors is skipped
// (fail-soft): the search continues downward, and the error surfaces only
// if no tier hits.
type Tiered struct {
	tiers []Store
}

// NewTiered builds a composition over the given tiers in lookup order; nil
// tiers are dropped, so callers can pass optional tiers unconditionally.
func NewTiered(tiers ...Store) *Tiered {
	t := &Tiered{}
	for _, st := range tiers {
		if st != nil {
			t.tiers = append(t.tiers, st)
		}
	}
	return t
}

// Tiers reports how many live tiers the composition holds.
func (t *Tiered) Tiers() int { return len(t.tiers) }

// Load resolves key through the tiers. See LoadTier for the promotion and
// fail-soft rules.
func (t *Tiered) Load(ctx context.Context, key Key) (*core.Family, bool, error) {
	fam, tier, err := t.LoadTier(ctx, key)
	return fam, tier >= 0, err
}

// LoadTier resolves key and additionally reports which tier (index into
// the composition order) satisfied it, so callers can attribute hits —
// tier is -1 on a miss. On a hit the family is promoted: written back
// (best-effort) into every tier above the one that hit, and the error is
// nil regardless of broken tiers along the way. Only a total miss reports
// the tier errors, joined. A cancelled context stops the walk: the
// remaining (more expensive) tiers are not consulted.
func (t *Tiered) LoadTier(ctx context.Context, key Key) (fam *core.Family, tier int, err error) {
	var errs []error
	for i, st := range t.tiers {
		if err := ctx.Err(); err != nil {
			errs = append(errs, err)
			break
		}
		fam, ok, err := st.Load(ctx, key)
		if err != nil {
			errs = append(errs, err)
			continue // fail-soft: a broken tier is a miss
		}
		if !ok {
			continue
		}
		for j := i - 1; j >= 0; j-- {
			// Promotion is best-effort: a read-only disk or a down server
			// must not turn a hit into a failure.
			_ = t.tiers[j].Save(ctx, key, fam)
		}
		return fam, i, nil
	}
	return nil, -1, errors.Join(errs...)
}

// Save writes the family through to every tier. It succeeds if at least
// one tier stored the family and reports the joined errors only when all
// of them failed — mirroring the fail-soft Load rule.
func (t *Tiered) Save(ctx context.Context, key Key, fam *core.Family) error {
	var errs []error
	saved := false
	for _, st := range t.tiers {
		if err := st.Save(ctx, key, fam); err != nil {
			errs = append(errs, err)
		} else {
			saved = true
		}
	}
	if saved {
		return nil
	}
	return errors.Join(errs...)
}
