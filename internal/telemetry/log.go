package telemetry

import (
	"io"
	"log/slog"
	"os"
	"sync"
)

// Logger is the structured logger of the stack — log/slog, so every
// progress line is one atomic Write carrying key=value fields instead of
// an interleavable fmt.Fprintf. Subsystems take a *Logger and log with
// fields (experiment id, curve key, tier, duration); the CLI layer picks
// the handler (text for humans, JSON for fleet collectors) from the
// shared -log-json / -v flags.
type Logger = slog.Logger

// LogConfig parameterizes NewLogger. The zero value is a text logger to
// stderr at Info level.
type LogConfig struct {
	// JSON selects the slog JSON handler (one object per line) instead of
	// the human-readable text handler.
	JSON bool
	// Verbose lowers the level to Debug — per-characterization and
	// per-request detail instead of lifecycle milestones.
	Verbose bool
	// Output overrides the destination (default os.Stderr).
	Output io.Writer
}

// NewLogger builds a logger. Each record is rendered into one buffer and
// written with a single Write call, so concurrent characterizations can
// never interleave partial lines.
func NewLogger(cfg LogConfig) *Logger {
	out := cfg.Output
	if out == nil {
		out = os.Stderr
	}
	level := slog.LevelInfo
	if cfg.Verbose {
		level = slog.LevelDebug
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if cfg.JSON {
		h = slog.NewJSONHandler(out, opts)
	} else {
		h = slog.NewTextHandler(out, opts)
	}
	return slog.New(h)
}

var (
	nopOnce sync.Once
	nop     *Logger
)

// NopLogger returns a logger that discards everything — the default for
// library code whose caller attached no telemetry.
func NopLogger() *Logger {
	nopOnce.Do(func() {
		nop = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
	})
	return nop
}

// Set is the observability bundle threaded through the stack: metrics,
// tracing and logging as one optional value. Every field may be nil, and
// a nil *Set is valid everywhere — the accessors below fold both levels
// of absence into the metric types' own nil-safety, so call sites read
//
//	tel.Registry().Counter(...)   // no-op counter when uninstrumented
//	tel.Logger().Debug(...)       // discarded when uninstrumented
//	tel.Trace().Span(...)         // no-op when uninstrumented
//
// with no conditionals.
type Set struct {
	Metrics *Registry
	Tracer  *Tracer
	Log     *Logger
}

// Registry returns the bundle's registry (nil when absent — Registry
// methods are nil-safe).
func (s *Set) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.Metrics
}

// Trace returns the bundle's tracer (nil when absent — Tracer methods
// are nil-safe).
func (s *Set) Trace() *Tracer {
	if s == nil {
		return nil
	}
	return s.Tracer
}

// Logger returns the bundle's logger, never nil (a nop logger when
// absent).
func (s *Set) Logger() *Logger {
	if s == nil || s.Log == nil {
		return NopLogger()
	}
	return s.Log
}
