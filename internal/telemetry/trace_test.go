package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// buildGoldenTrace records a fixed event sequence against a fake clock,
// exercising both time domains (wall tracks via Begin/End, a sim-time
// track via explicit Span timestamps), args of every type, instants, and
// escaping.
func buildGoldenTrace() *Tracer {
	tr := NewTracer()
	now := int64(0)
	tr.SetClock(func() int64 { now += 1500; return now })

	charz := tr.NewTrack("charz", "fill")
	bench := tr.NewTrack("bench", "worker-0")
	simT := tr.NewTrack("sim", "point-0")

	sp := tr.Begin(charz, "characterize")
	tr.Span(bench, "sweep-point", 2000, 750,
		String("pattern", `seq "quoted"`), Int("events", 12345), Float("mlp", 3.5))
	sp.End(String("key", "fig2/0"), Int("tiers", 3))
	tr.Instant(bench, "barrier", 4100, Int("epoch", 7))
	// Sim-domain spans: timestamps are simulated ns, unrelated to the
	// wall clock above.
	tr.Span(simT, "window", 0, 50000, Int("messages", 9))
	tr.Span(simT, "window", 50000, 50001)
	return tr
}

func TestWriteChromeGolden(t *testing.T) {
	var b bytes.Buffer
	if err := buildGoldenTrace().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("trace output differs from golden:\n got:\n%s\nwant:\n%s", b.Bytes(), want)
	}
}

// TestWriteChromeIsValidTraceEventJSON proves the hand-built document
// parses as the Chrome trace_event JSON object format Perfetto loads:
// a traceEvents array whose entries carry ph/pid/tid/ts and name.
func TestWriteChromeIsValidTraceEventJSON(t *testing.T) {
	var b bytes.Buffer
	if err := buildGoldenTrace().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Ts   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			Name string          `json:"name"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, b.Bytes())
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	var meta, complete, instant int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Dur <= 0 {
				t.Errorf("complete event %q has dur %v", ev.Name, ev.Dur)
			}
		case "i":
			instant++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
		if ev.Pid <= 0 {
			t.Errorf("event %q has pid %d", ev.Name, ev.Pid)
		}
	}
	// 3 process_name + 3 thread_name metadata, 4 spans, 1 instant.
	if meta != 6 || complete != 4 || instant != 1 {
		t.Fatalf("event mix meta=%d complete=%d instant=%d, want 6/4/1", meta, complete, instant)
	}
}

func TestTracerDropBound(t *testing.T) {
	tr := NewTracer()
	tr.SetMaxEvents(3)
	track := tr.NewTrack("p", "t")
	for i := 0; i < 10; i++ {
		tr.Span(track, "s", int64(i), 1)
	}
	if tr.Events() != 3 {
		t.Fatalf("buffered = %d, want 3", tr.Events())
	}
	if tr.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", tr.Dropped())
	}
	var b bytes.Buffer
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if got, ok := doc["droppedEvents"].(float64); !ok || got != 7 {
		t.Fatalf("droppedEvents = %v, want 7", doc["droppedEvents"])
	}
}

// TestTracerConcurrentRecord is the -race proof for the recording path.
func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			track := tr.NewTrack("proc", "worker")
			for i := 0; i < 500; i++ {
				tr.Span(track, "op", int64(i), 1, Int("w", int64(w)))
			}
		}(w)
	}
	wg.Wait()
	if tr.Events() != 8*500 {
		t.Fatalf("events = %d, want %d", tr.Events(), 8*500)
	}
	var b bytes.Buffer
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b.Bytes()) {
		t.Fatalf("concurrent trace output is not valid JSON")
	}
}
