package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mess_test_total", "test counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.Gauge("mess_test_gauge", "test gauge")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge = %v, want 1", got)
	}
	h := r.Histogram("mess_test_seconds", "test histogram", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("hist count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 55.55; math.Abs(got-want) > 1e-9 {
		t.Fatalf("hist sum = %v, want %v", got, want)
	}
	if got := h.snapshot(); got[0] != 1 || got[1] != 1 || got[2] != 1 || got[3] != 1 {
		t.Fatalf("hist buckets = %v, want one sample each", got)
	}
}

func TestGetOrCreateSharesMetrics(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("mess_shared_total", "shared")
	b := r.Counter("mess_shared_total", "shared")
	if a != b {
		t.Fatalf("same name produced distinct counters")
	}
	a.Add(3)
	b.Add(4)
	if got := r.Snapshot()["mess_shared_total"]; got != 7 {
		t.Fatalf("shared counter = %v, want 7", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("mess_kind_total", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("mess_kind_total", "")
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", nil)
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil metrics must read zero")
	}
	if r.Snapshot() != nil {
		t.Fatalf("nil registry snapshot must be nil")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
	var tr *Tracer
	tr.Span(Track{}, "x", 0, 1)
	tr.Instant(Track{}, "x", 0)
	tr.Begin(Track{}, "x").End()
	if tr.Events() != 0 || tr.Dropped() != 0 || tr.Now() != 0 {
		t.Fatalf("nil tracer must be inert")
	}
	var s *Set
	if s.Registry() != nil || s.Trace() != nil || s.Logger() == nil {
		t.Fatalf("nil Set accessors misbehaved")
	}
	s.Logger().Info("discarded")
}

// TestConcurrentUpdates hammers one counter, one gauge and one histogram
// from many goroutines; run under -race this is the data-race proof, and
// the exact final counts prove no update was lost.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mess_conc_total", "")
	g := r.Gauge("mess_conc_gauge", "")
	h := r.Histogram("mess_conc_seconds", "", []float64{1, 2, 3})
	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 5))
			}
		}()
	}
	wg.Wait()
	const total = workers * perWorker
	if c.Value() != total {
		t.Fatalf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != total {
		t.Fatalf("gauge = %v, want %d", g.Value(), total)
	}
	if h.Count() != total {
		t.Fatalf("histogram count = %d, want %d", h.Count(), total)
	}
	// i%5 over [0,5) sums to 10 per 5 ops.
	if want := float64(total / 5 * 10); h.Sum() != want {
		t.Fatalf("histogram sum = %v, want %v", h.Sum(), want)
	}
}

// TestHotPathZeroAlloc is the contract the instrumented DRAM/model hot
// loops rely on: recording a metric never allocates, live or nil.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mess_alloc_total", "")
	g := r.Gauge("mess_alloc_gauge", "")
	h := r.Histogram("mess_alloc_seconds", "", nil)
	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram
	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Add", func() { c.Add(1) }},
		{"Gauge.Set", func() { g.Set(3.14) }},
		{"Gauge.Add", func() { g.Add(0.5) }},
		{"Histogram.Observe", func() { h.Observe(0.007) }},
		{"nil Counter.Add", func() { nilC.Add(1) }},
		{"nil Gauge.Set", func() { nilG.Set(1) }},
		{"nil Histogram.Observe", func() { nilH.Observe(1) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(`mess_charz_hits_total{tier="disk"}`, "charz cache hits by tier").Add(3)
	r.Counter(`mess_charz_hits_total{tier="memory"}`, "charz cache hits by tier").Add(9)
	r.Gauge("mess_inflight_requests", "in-flight requests").Set(2)
	h := r.Histogram("mess_req_seconds", "request duration", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(7)
	r.CounterFunc("mess_func_total", "read-time counter", func() float64 { return 11 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP mess_charz_hits_total charz cache hits by tier
# TYPE mess_charz_hits_total counter
mess_charz_hits_total{tier="disk"} 3
mess_charz_hits_total{tier="memory"} 9
# HELP mess_func_total read-time counter
# TYPE mess_func_total counter
mess_func_total 11
# HELP mess_inflight_requests in-flight requests
# TYPE mess_inflight_requests gauge
mess_inflight_requests 2
# HELP mess_req_seconds request duration
# TYPE mess_req_seconds histogram
mess_req_seconds_bucket{le="0.01"} 1
mess_req_seconds_bucket{le="0.1"} 2
mess_req_seconds_bucket{le="+Inf"} 3
mess_req_seconds_sum 7.055
mess_req_seconds_count 3
`
	if got != want {
		t.Fatalf("prometheus output mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteJSONAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "").Add(2)
	r.Gauge("a", "").Set(1.25)
	h := r.Histogram("c_seconds", "", []float64{1})
	h.Observe(0.5)
	h.Observe(3)

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, frag := range []string{`"a": 1.25`, `"b_total": 2`, `"count": 2`, `"sum": 3.5`, `"1": 1`, `"+Inf": 1`} {
		if !strings.Contains(got, frag) {
			t.Errorf("JSON output missing %q:\n%s", frag, got)
		}
	}

	snap := r.Snapshot()
	if snap["a"] != 1.25 || snap["b_total"] != 2 || snap["c_seconds_count"] != 2 || snap["c_seconds_sum"] != 3.5 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestFmtFloat(t *testing.T) {
	cases := map[float64]string{
		0:               "0",
		3:               "3",
		-7:              "-7",
		1.25:            "1.25",
		0.0005:          "0.0005",
		math.Inf(1):     "+Inf",
		1e15:            "1e+15",
		123456789012345: "123456789012345",
	}
	for in, want := range cases {
		if got := fmtFloat(in); got != want {
			t.Errorf("fmtFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
