package telemetry

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Tracer records spans and instant events and exports them as Chrome
// trace_event JSON — the format chrome://tracing and Perfetto load — so
// "where does the time inside a run go" becomes a timeline instead of a
// guess. Two time domains coexist in one trace, separated by process
// track:
//
//   - wall-clock tracks (charz fills, bench sweep points, trace-replay
//     phases) timestamp events with the tracer's monotonic clock;
//   - sim-time tracks (ShardGroup barrier windows) timestamp events with
//     the simulation clock itself, one track per measurement point, so a
//     window span's width is simulated nanoseconds — the timeline the
//     "sim-timeline tracer" is named for.
//
// All recording methods are nil-receiver-safe and a recording is one
// mutex-guarded append — cheap enough for per-window events, and exactly
// zero cost (one nil check) when tracing is off. The event buffer is
// bounded (MaxEvents); once full, further events are counted as dropped
// rather than growing without bound on a long fleet run.
type Tracer struct {
	mu      sync.Mutex
	events  []traceEvent
	procs   []process
	max     int
	dropped uint64
	seq     uint64

	epoch time.Time
	clock func() int64 // ns since epoch; injectable for deterministic tests
}

// process is one pid track group ("charz", "bench", "sim").
type process struct {
	name    string
	threads []string
}

type traceEvent struct {
	ph    byte // 'X' complete, 'i' instant
	track Track
	ts    int64 // ns (wall since epoch, or sim time)
	dur   int64 // ns, complete events only
	name  string
	args  []Arg
	seq   uint64
}

// Track addresses one timeline row: a (process, thread) pair allocated
// with NewTrack. The zero Track is valid and lands on an unnamed row.
type Track struct {
	pid, tid int32
}

// Arg is one key/value annotation on an event. Values are strings or
// numbers — the two things trace viewers render.
type Arg struct {
	Key   string
	Str   string
	Num   float64
	isNum bool
}

// String builds a string-valued Arg.
func String(key, val string) Arg { return Arg{Key: key, Str: val} }

// Int builds an integer-valued Arg.
func Int(key string, val int64) Arg { return Arg{Key: key, Num: float64(val), isNum: true} }

// Float builds a float-valued Arg.
func Float(key string, val float64) Arg { return Arg{Key: key, Num: val, isNum: true} }

// defaultMaxEvents bounds a tracer's buffer: at ~100 B/event this caps
// the in-memory trace near 100 MB, far above any Quick run and still
// survivable on a full one.
const defaultMaxEvents = 1 << 20

// NewTracer builds a tracer whose wall clock starts now.
func NewTracer() *Tracer {
	t := &Tracer{max: defaultMaxEvents, epoch: time.Now()}
	t.clock = func() int64 { return time.Since(t.epoch).Nanoseconds() }
	return t
}

// SetMaxEvents bounds the event buffer (0 restores the default). Events
// past the bound are dropped and counted, never stored.
func (t *Tracer) SetMaxEvents(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if n <= 0 {
		n = defaultMaxEvents
	}
	t.max = n
	t.mu.Unlock()
}

// SetClock replaces the wall clock with fn (ns since an epoch of fn's
// choosing) — the deterministic-test seam.
func (t *Tracer) SetClock(fn func() int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = fn
	t.mu.Unlock()
}

// Now reads the tracer's wall clock: nanoseconds since its epoch, the
// timestamp base of every wall-domain event.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	v := t.clock()
	t.mu.Unlock()
	return v
}

// NewTrack allocates (or finds) the named (process, thread) row.
// Processes are created on first use; a thread name is always appended
// as a new row, so concurrent units (bench workers, parallel fills) each
// get their own line in the viewer.
func (t *Tracer) NewTrack(proc, thread string) Track {
	if t == nil {
		return Track{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pid := -1
	for i := range t.procs {
		if t.procs[i].name == proc {
			pid = i
			break
		}
	}
	if pid < 0 {
		pid = len(t.procs)
		t.procs = append(t.procs, process{name: proc})
	}
	p := &t.procs[pid]
	p.threads = append(p.threads, thread)
	return Track{pid: int32(pid + 1), tid: int32(len(p.threads))}
}

// record appends one event under the buffer bound.
func (t *Tracer) record(ev traceEvent) {
	t.mu.Lock()
	if len(t.events) >= t.max {
		t.dropped++
		t.mu.Unlock()
		return
	}
	t.seq++
	ev.seq = t.seq
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Span records a complete event: [startNs, startNs+durNs) on the track.
// The caller chooses the time domain — the tracer's wall clock (Now) or
// the simulation clock.
func (t *Tracer) Span(tr Track, name string, startNs, durNs int64, args ...Arg) {
	if t == nil {
		return
	}
	t.record(traceEvent{ph: 'X', track: tr, ts: startNs, dur: durNs, name: name, args: args})
}

// Instant records a zero-duration marker.
func (t *Tracer) Instant(tr Track, name string, tsNs int64, args ...Arg) {
	if t == nil {
		return
	}
	t.record(traceEvent{ph: 'i', track: tr, ts: tsNs, name: name, args: args})
}

// SpanTimer is an in-progress wall-clock span started by Begin.
type SpanTimer struct {
	t     *Tracer
	track Track
	name  string
	start int64
}

// Begin opens a wall-clock span on the track; End closes and records it.
// The zero SpanTimer (from a nil tracer) is a valid no-op.
func (t *Tracer) Begin(tr Track, name string) SpanTimer {
	if t == nil {
		return SpanTimer{}
	}
	return SpanTimer{t: t, track: tr, name: name, start: t.Now()}
}

// End records the span opened by Begin.
func (s SpanTimer) End(args ...Arg) {
	if s.t == nil {
		return
	}
	s.t.Span(s.track, s.name, s.start, s.t.Now()-s.start, args...)
}

// Dropped reports how many events the buffer bound discarded.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events reports how many events are buffered.
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteChrome exports the trace as Chrome trace_event JSON (the
// "JSON object format": {"traceEvents": [...]}), loadable in
// chrome://tracing and Perfetto. Events are sorted by (pid, tid, ts,
// record order) and serialized field by field, so the bytes are a pure
// function of the recorded events — the golden-file determinism tests
// rely on it. Timestamps are emitted in microseconds (the format's unit)
// with nanosecond precision.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	t.mu.Lock()
	events := append([]traceEvent(nil), t.events...)
	procs := append([]process(nil), t.procs...)
	dropped := t.dropped
	t.mu.Unlock()

	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.track.pid != b.track.pid {
			return a.track.pid < b.track.pid
		}
		if a.track.tid != b.track.tid {
			return a.track.tid < b.track.tid
		}
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		return a.seq < b.seq
	})

	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ns",`)
	if dropped > 0 {
		bw.WriteString(`"droppedEvents":`)
		bw.WriteString(strconv.FormatUint(dropped, 10))
		bw.WriteByte(',')
	}
	bw.WriteString(`"traceEvents":[`)
	first := true
	comma := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString("\n ")
	}
	// Metadata names the tracks; emitted first so viewers label rows
	// before any real event references them.
	for pid := range procs {
		comma()
		bw.WriteString(`{"ph":"M","pid":`)
		bw.WriteString(strconv.Itoa(pid + 1))
		bw.WriteString(`,"tid":0,"name":"process_name","args":{"name":`)
		writeJSONString(bw, procs[pid].name)
		bw.WriteString(`}}`)
		for tid, thread := range procs[pid].threads {
			comma()
			bw.WriteString(`{"ph":"M","pid":`)
			bw.WriteString(strconv.Itoa(pid + 1))
			bw.WriteString(`,"tid":`)
			bw.WriteString(strconv.Itoa(tid + 1))
			bw.WriteString(`,"name":"thread_name","args":{"name":`)
			writeJSONString(bw, thread)
			bw.WriteString(`}}`)
		}
	}
	for i := range events {
		ev := &events[i]
		comma()
		bw.WriteString(`{"ph":"`)
		bw.WriteByte(ev.ph)
		bw.WriteString(`","pid":`)
		bw.WriteString(strconv.Itoa(int(ev.track.pid)))
		bw.WriteString(`,"tid":`)
		bw.WriteString(strconv.Itoa(int(ev.track.tid)))
		bw.WriteString(`,"ts":`)
		writeMicros(bw, ev.ts)
		if ev.ph == 'X' {
			bw.WriteString(`,"dur":`)
			writeMicros(bw, ev.dur)
		}
		if ev.ph == 'i' {
			bw.WriteString(`,"s":"t"`)
		}
		bw.WriteString(`,"name":`)
		writeJSONString(bw, ev.name)
		if len(ev.args) > 0 {
			bw.WriteString(`,"args":{`)
			for ai, a := range ev.args {
				if ai > 0 {
					bw.WriteByte(',')
				}
				writeJSONString(bw, a.Key)
				bw.WriteByte(':')
				if a.isNum {
					bw.WriteString(fmtFloat(a.Num))
				} else {
					writeJSONString(bw, a.Str)
				}
			}
			bw.WriteByte('}')
		}
		bw.WriteByte('}')
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// writeMicros renders ns as microseconds with ns precision, no trailing
// zeros beyond the three decimals (fixed form keeps the output byte-
// deterministic across values).
func writeMicros(bw *bufio.Writer, ns int64) {
	neg := ns < 0
	if neg {
		bw.WriteByte('-')
		ns = -ns
	}
	bw.WriteString(strconv.FormatInt(ns/1000, 10))
	frac := ns % 1000
	if frac != 0 {
		bw.WriteByte('.')
		s := strconv.FormatInt(frac, 10)
		for len(s) < 3 {
			s = "0" + s
		}
		bw.WriteString(s)
	}
}

// writeJSONString writes a minimally escaped JSON string — names and arg
// values are ASCII identifiers and paths in practice, but control
// characters, quotes and backslashes must not corrupt the document.
func writeJSONString(bw *bufio.Writer, s string) {
	bw.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			bw.WriteByte('\\')
			bw.WriteByte(c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			bw.WriteString(`\u00`)
			bw.WriteByte(hex[c>>4])
			bw.WriteByte(hex[c&0xf])
		default:
			bw.WriteByte(c)
		}
	}
	bw.WriteByte('"')
}
