// Package telemetry is the unified observability layer of the stack: a
// zero-dependency metrics registry, structured logging over log/slog, and
// a sim-timeline tracer exporting Chrome trace_event JSON.
//
// The Mess methodology is a profiling instrument, and an instrument whose
// own runtime is opaque cannot be trusted at scale. Before this package,
// runtime state lived in five disconnected surfaces (charz.Stats, the
// curve client's circuit state, messcurved /v1/stats, ShardGroup.Stats,
// messperf rows) with no common export. Every subsystem now registers into
// one Registry, and every long-running phase can record spans into one
// Tracer, so a fleet operator scrapes /metrics and a performance engineer
// opens a run in Perfetto instead of reading five ad-hoc dumps.
//
// Design constraints, in priority order:
//
//   - Hot-path cost: Counter.Add, Gauge.Set and Histogram.Observe are a
//     single atomic op (plus a bucket scan for histograms) and never
//     allocate — they are safe at request-lifecycle frequency. All metric
//     methods and all Tracer methods are nil-receiver-safe, so
//     uninstrumented configurations pay one predictable branch, not an
//     interface call or a lock.
//   - Snapshot-on-read: the registry holds live atomics; encoders load
//     them at scrape time. Nothing is aggregated on the write path, and
//     read-time funcs (CounterFunc/GaugeFunc) re-export existing counter
//     surfaces — charz.Stats, curvestore.ServerStats — without touching
//     their hot paths at all.
//   - Zero dependencies: stdlib only, so every internal package (sim
//     included) may import it without cycles or new modules.
//
// Metric names follow the Prometheus convention (snake_case, _total for
// counters, base-unit suffixes) and may carry a fixed label set baked into
// the name at registration — `mess_charz_hits_total{tier="disk"}` — so the
// hot path never formats labels. Registration is get-or-create: two
// subsystems registering the same name share the metric and their counts
// sum, which is exactly what a process hosting two charz services wants
// its /metrics to say.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric behaviour in the registry and its encoders.
type Kind int

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a point-in-time value that may go up or down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Counter is a monotonically increasing metric. The zero value is usable;
// a nil Counter is a no-op, so call sites need no instrumentation guard.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be non-negative; this is not
// checked on the hot path).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value loads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time float64 metric. The zero value is usable; a
// nil Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge (CAS loop; allocation-free).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value loads the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Buckets are upper bounds in
// ascending order; an implicit +Inf bucket catches the tail. Observe is a
// linear scan over the (small, fixed) bound slice plus three atomic ops —
// no locks, no allocation. A nil Histogram is a no-op.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64
	count   atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// snapshot loads the per-bucket counts (non-cumulative).
func (h *Histogram) snapshot() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// DefDurationBuckets are the default request/fill-duration bounds, in
// seconds: half a millisecond to ten seconds, roughly logarithmic — wide
// enough for both a memcached-speed curve GET and a full Quick sweep.
var DefDurationBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// metric is one registry slot.
type metric struct {
	name   string // full name including any baked-in labels
	family string // name up to the label block
	labels string // label block without braces ("" when unlabeled)
	help   string
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	funcs   []func() float64 // read-time addends (appended under the registry lock)
}

// value loads the metric's scalar value (counter/gauge only).
func (m *metric) value() float64 {
	var v float64
	switch m.kind {
	case KindCounter:
		v = float64(m.counter.Value())
	case KindGauge:
		v = m.gauge.Value()
	}
	for _, fn := range m.funcs {
		v += fn()
	}
	return v
}

// Registry holds the process's metrics. The zero value is not usable;
// construct with NewRegistry. All methods are safe for concurrent use,
// and all lookup methods are nil-receiver-safe (returning nil metrics,
// which are themselves no-ops) so an uninstrumented stack threads a nil
// *Registry end to end at zero cost.
type Registry struct {
	mu      sync.RWMutex
	byName  map[string]*metric
	ordered []*metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metric{}}
}

// splitName separates `family{labels}` into its parts.
func splitName(name string) (family, labels string) {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			if name[len(name)-1] != '}' {
				panic(fmt.Sprintf("telemetry: malformed metric name %q", name))
			}
			return name[:i], name[i+1 : len(name)-1]
		}
	}
	return name, ""
}

// lookup returns the named metric, creating it with mk on first use. A
// name registered twice with different kinds is a programming error and
// panics — silently aliasing a counter and a gauge would corrupt both.
func (r *Registry) lookup(name, help string, kind Kind, mk func(m *metric)) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q registered as %v and %v", name, m.kind, kind))
		}
		return m
	}
	family, labels := splitName(name)
	m := &metric{name: name, family: family, labels: labels, help: help, kind: kind}
	mk(m)
	r.byName[name] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter returns the named counter, creating it on first use. Get-or-
// create by full name: callers registering the same name share one
// counter, so multi-instance subsystems sum naturally.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindCounter, func(m *metric) { m.counter = &Counter{} }).counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindGauge, func(m *metric) { m.gauge = &Gauge{} }).gauge
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (ascending; copied) on first use. A second
// registration returns the existing histogram regardless of the bounds it
// asked for — bounds are fixed at birth.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindHistogram, func(m *metric) {
		if len(buckets) == 0 {
			buckets = DefDurationBuckets
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic(fmt.Sprintf("telemetry: histogram %q buckets not ascending", name))
			}
		}
		m.hist = &Histogram{
			bounds: append([]float64(nil), buckets...),
			counts: make([]atomic.Int64, len(buckets)+1),
		}
	}).hist
}

// CounterFunc registers a read-time counter: fn is called at snapshot and
// its value added to the named counter's total. This is how existing
// counter surfaces (charz.Stats, curvestore.ServerStats) are re-exported
// without touching their hot paths. Multiple funcs on one name sum.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	m := r.lookup(name, help, KindCounter, func(m *metric) { m.counter = &Counter{} })
	r.mu.Lock()
	m.funcs = append(m.funcs, fn)
	r.mu.Unlock()
}

// GaugeFunc registers a read-time gauge; like CounterFunc, values of
// multiple funcs on one name sum (the natural reading for e.g. in-flight
// gauges of several instances).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	m := r.lookup(name, help, KindGauge, func(m *metric) { m.gauge = &Gauge{} })
	r.mu.Lock()
	m.funcs = append(m.funcs, fn)
	r.mu.Unlock()
}

// snapshotMetrics copies the metric list sorted by (family, name) — the
// deterministic encoder order.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.RLock()
	out := append([]*metric(nil), r.ordered...)
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].family != out[j].family {
			return out[i].family < out[j].family
		}
		return out[i].name < out[j].name
	})
	return out
}

// Snapshot flattens every metric to name → value: counters and gauges
// directly, histograms as <name>_count and <name>_sum. This is the form
// messperf embeds in BENCH_sim.json rows.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	out := map[string]float64{}
	for _, m := range r.snapshotMetrics() {
		switch m.kind {
		case KindHistogram:
			out[m.name+"_count"] = float64(m.hist.Count())
			out[m.name+"_sum"] = m.hist.Sum()
		default:
			out[m.name] = m.value()
		}
	}
	return out
}
