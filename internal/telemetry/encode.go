package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strconv"
)

// fmtFloat renders a value the way both Prometheus and expvar accept:
// integers without a fraction, everything else in shortest-round-trip
// form, +Inf as the literal Prometheus expects.
func fmtFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus encodes the registry in the Prometheus text exposition
// format (version 0.0.4): one # HELP / # TYPE pair per metric family,
// histograms as cumulative _bucket/_sum/_count series. Metrics are
// emitted sorted by (family, name), so the output is deterministic for a
// fixed set of registrations.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, m := range r.snapshotMetrics() {
		if m.family != lastFamily {
			lastFamily = m.family
			if m.help != "" {
				bw.WriteString("# HELP ")
				bw.WriteString(m.family)
				bw.WriteByte(' ')
				bw.WriteString(m.help)
				bw.WriteByte('\n')
			}
			bw.WriteString("# TYPE ")
			bw.WriteString(m.family)
			bw.WriteByte(' ')
			bw.WriteString(m.kind.String())
			bw.WriteByte('\n')
		}
		switch m.kind {
		case KindHistogram:
			h := m.hist
			counts := h.snapshot()
			cum := int64(0)
			for i, c := range counts {
				cum += c
				le := "+Inf"
				if i < len(h.bounds) {
					le = fmtFloat(h.bounds[i])
				}
				bw.WriteString(m.family)
				bw.WriteString("_bucket{")
				if m.labels != "" {
					bw.WriteString(m.labels)
					bw.WriteByte(',')
				}
				bw.WriteString(`le="`)
				bw.WriteString(le)
				bw.WriteString(`"} `)
				bw.WriteString(strconv.FormatInt(cum, 10))
				bw.WriteByte('\n')
			}
			writeSeries(bw, m.family+"_sum", m.labels, fmtFloat(h.Sum()))
			writeSeries(bw, m.family+"_count", m.labels, strconv.FormatInt(h.Count(), 10))
		default:
			writeSeries(bw, m.family, m.labels, fmtFloat(m.value()))
		}
	}
	return bw.Flush()
}

func writeSeries(bw *bufio.Writer, family, labels, value string) {
	bw.WriteString(family)
	if labels != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// WriteJSON encodes the registry as a flat JSON object in the expvar
// style: metric name → number, histograms as {count, sum, buckets} with
// per-bucket (non-cumulative) counts keyed by upper bound. Keys are
// sorted (encoding/json sorts map keys), so the output is deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	doc := map[string]any{}
	for _, m := range r.snapshotMetrics() {
		switch m.kind {
		case KindHistogram:
			h := m.hist
			counts := h.snapshot()
			buckets := map[string]int64{}
			for i, c := range counts {
				le := "+Inf"
				if i < len(h.bounds) {
					le = fmtFloat(h.bounds[i])
				}
				buckets[le] = c
			}
			doc[m.name] = map[string]any{
				"count":   h.Count(),
				"sum":     h.Sum(),
				"buckets": buckets,
			}
		default:
			doc[m.name] = m.value()
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Handler serves the registry over HTTP: Prometheus text by default,
// the expvar-like JSON document when the request asks for it with
// ?format=json. This is what messcurved mounts at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
