package cpu

import (
	"fmt"

	"github.com/mess-sim/mess/internal/cache"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// AccessPattern selects how a generator walks its arrays. The paper's
// generator is sequential; Sec. IV-D notes it "can be easily extended to
// cover different array access patterns", naming strided accesses that
// target a new row buffer per operation and the GUPS-style random access.
type AccessPattern uint8

const (
	// Sequential walks the array line by line (the Mess default).
	Sequential AccessPattern = iota
	// Strided jumps a full row buffer per access, defeating row locality.
	Strided
	// Random touches a pseudo-random line per access (GUPS-like).
	Random
)

func (p AccessPattern) String() string {
	switch p {
	case Sequential:
		return "sequential"
	case Strided:
		return "strided"
	default:
		return "random"
	}
}

// GenConfig parameterizes one traffic-generator core (the Mess workload
// generator of Appendix A.2).
type GenConfig struct {
	// StorePercent is the fraction of kernel memory instructions that are
	// stores, 0..100. With a write-allocate hierarchy, s% stores yields
	// memory traffic with s/(100+s) writes — the 100%-store kernel produces
	// 50%-read/50%-write traffic, exactly as Sec. II-A describes.
	StorePercent int
	// NonTemporal switches stores to streaming (non-temporal) stores that
	// write directly to memory without an RFO; this is how the benchmark
	// reaches memory write ratios above 50% (footnote 1 of the paper).
	NonTemporal bool
	// PacePerOp inserts this much delay before each memory operation — the
	// model equivalent of the `nop` loop between load/store groups. Zero
	// means maximum pressure.
	PacePerOp sim.Time
	// IssueInterval is the minimum spacing between memory instructions
	// imposed by the core pipeline itself (≈ 1-2 cycles per vmovupd).
	IssueInterval sim.Time

	LoadBase   uint64 // base address of the load array
	StoreBase  uint64 // base address of the store array
	ArrayBytes uint64 // length of each array; the stream wraps around

	// Pattern selects the array walk; StrideBytes sets the Strided jump
	// (default 8 KiB, one DDR4 row buffer).
	Pattern     AccessPattern
	StrideBytes uint64
	Seed        uint64 // for the Random pattern
}

func (c *GenConfig) validate() error {
	if c.StorePercent < 0 || c.StorePercent > 100 {
		return fmt.Errorf("cpu: store percent %d outside [0,100]", c.StorePercent)
	}
	if c.ArrayBytes == 0 || c.ArrayBytes%mem.LineSize != 0 {
		return fmt.Errorf("cpu: array bytes %d must be a positive multiple of the line size", c.ArrayBytes)
	}
	return nil
}

// Generator streams loads and stores from one core, paced by PacePerOp and
// bounded by the port's MSHR / write-buffer limits. The load/store
// interleaving follows a Bresenham pattern over a 100-op period, matching
// the 2%-step kernel mixes of the assembly implementation.
type Generator struct {
	eng  *sim.Engine
	port *cache.Port
	cfg  GenConfig

	pattern []bool // true = store, len 100
	pi      int

	loadLine  uint64
	storeLine uint64
	lines     uint64
	rng       uint64

	nextAt  sim.Time
	running bool
	wake    *sim.Timer // pacing alarm: re-armed in place, never re-allocated

	ops uint64
}

// NewGenerator builds a generator. It panics on invalid configuration
// (generator configs are produced by the benchmark sweep, not user input).
func NewGenerator(eng *sim.Engine, port *cache.Port, cfg GenConfig) *Generator {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if cfg.IssueInterval == 0 {
		cfg.IssueInterval = sim.Nanosecond / 2
	}
	if cfg.StrideBytes == 0 {
		cfg.StrideBytes = 8 << 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0xa0761d6478bd642f
	}
	g := &Generator{
		eng:   eng,
		port:  port,
		cfg:   cfg,
		lines: cfg.ArrayBytes / mem.LineSize,
		rng:   cfg.Seed,
	}
	g.pattern = mixPattern(cfg.StorePercent)
	g.wake = eng.NewTimer(g.tryIssue)
	return g
}

// mixPattern spreads `storePercent` stores evenly over a 100-op period.
func mixPattern(storePercent int) []bool {
	p := make([]bool, 100)
	acc := 0
	for i := range p {
		acc += storePercent
		if acc >= 100 {
			acc -= 100
			p[i] = true
		}
	}
	return p
}

// Start begins traffic generation. The generator registers itself as the
// port's resource-release listener: a stalled issue loop can be unblocked
// by a writeback draining far downstream, which surfaces only as OnFree.
func (g *Generator) Start() {
	if g.running {
		return
	}
	g.running = true
	g.port.OnFree = g.tryIssue
	g.nextAt = g.eng.Now()
	g.tryIssue()
}

// Stop halts the generator; in-flight requests complete normally.
func (g *Generator) Stop() { g.running = false }

// Ops reports how many memory instructions have been issued.
func (g *Generator) Ops() uint64 { return g.ops }

// tryIssue issues as many operations as pacing and buffer space allow, then
// arranges to be woken by either the pacing timer or a completion.
func (g *Generator) tryIssue() {
	for g.running {
		now := g.eng.Now()
		if now < g.nextAt {
			// Pacing stall: sleep on the re-armable alarm until the next
			// issue slot (a pending alarm is already set for it).
			if !g.wake.Armed() {
				g.wake.Arm(g.nextAt)
			}
			return
		}
		isStore := g.pattern[g.pi]
		if !g.canIssue(isStore) {
			// A completion callback will re-enter tryIssue.
			return
		}
		g.issueOne(isStore)
		g.pi = (g.pi + 1) % len(g.pattern)
		g.ops++
		g.nextAt = maxT(g.nextAt, now) + g.cfg.IssueInterval + g.cfg.PacePerOp
	}
}

func (g *Generator) canIssue(isStore bool) bool {
	switch {
	case !isStore:
		return g.port.FreeMSHR()
	case g.cfg.NonTemporal:
		return g.port.FreeWB()
	default:
		return g.port.FreeMSHR() && g.port.FreeWB()
	}
}

func (g *Generator) issueOne(isStore bool) {
	// Completion wake-ups ride on the port's OnFree hook.
	if !isStore {
		addr := g.cfg.LoadBase + g.nextOffset(&g.loadLine)
		g.port.Load(addr, nil)
		return
	}
	addr := g.cfg.StoreBase + g.nextOffset(&g.storeLine)
	if g.cfg.NonTemporal {
		g.port.StoreNT(addr, nil)
		return
	}
	g.port.Store(addr, nil)
}

// nextOffset advances the given stream counter under the configured walk
// and returns the byte offset within the array.
func (g *Generator) nextOffset(counter *uint64) uint64 {
	i := *counter
	*counter++
	switch g.cfg.Pattern {
	case Strided:
		strideLines := g.cfg.StrideBytes / mem.LineSize
		if strideLines == 0 {
			strideLines = 1
		}
		return (i * strideLines % g.lines) * mem.LineSize
	case Random:
		g.rng ^= g.rng << 13
		g.rng ^= g.rng >> 7
		g.rng ^= g.rng << 17
		return (g.rng % g.lines) * mem.LineSize
	default:
		return (i % g.lines) * mem.LineSize
	}
}

func maxT(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
