package cpu

import (
	"fmt"

	"github.com/mess-sim/mess/internal/cache"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// Kernel describes one inner-loop iteration of a workload at cache-line
// granularity: how many distinct arrays are read and written per line-step,
// how much non-memory work accompanies them, and whether the loads form a
// dependence chain. STREAM, LMbench, multichase, the HPCG phases and the
// SPEC-like synthetic suite are all expressed as kernels.
type Kernel struct {
	Name string
	// Loads and Stores are the number of distinct arrays touched per
	// line-step; each contributes one cache-line transaction per step.
	Loads  int
	Stores int
	// ElemsPerLine is the number of loop iterations covered by one line
	// (8 for float64 arrays); it scales the instruction count.
	ElemsPerLine int
	// ALUPerElem is the number of non-memory instructions per element
	// iteration (address arithmetic, FP ops, branch share).
	ALUPerElem int
	// Dependent serializes the kernel on its loads: the next line-step
	// cannot begin until the previous load returns (pointer chase).
	Dependent bool
	// NonTemporal uses streaming stores (no RFO).
	NonTemporal bool
	// Random makes every access target a random line of its array (GUPS).
	Random bool
}

// InstrPerStep reports retired instructions per line-step.
func (k Kernel) InstrPerStep() uint64 {
	e := k.ElemsPerLine
	if e == 0 {
		e = 8
	}
	return uint64(e*(k.Loads+k.Stores) + e*k.ALUPerElem)
}

// AppBytesPerStep reports the application-visible bytes moved per line-step
// (the STREAM accounting: one read per load array, one write per store
// array, no RFO amplification).
func (k Kernel) AppBytesPerStep() uint64 {
	return uint64((k.Loads + k.Stores) * mem.LineSize)
}

// Standard kernels.
var (
	// STREAM kernels (McCalpin). ALU counts per element include index
	// arithmetic and the loop-branch share.
	StreamCopy  = Kernel{Name: "STREAM:copy", Loads: 1, Stores: 1, ElemsPerLine: 8, ALUPerElem: 2}
	StreamScale = Kernel{Name: "STREAM:scale", Loads: 1, Stores: 1, ElemsPerLine: 8, ALUPerElem: 3}
	StreamAdd   = Kernel{Name: "STREAM:add", Loads: 2, Stores: 1, ElemsPerLine: 8, ALUPerElem: 3}
	StreamTriad = Kernel{Name: "STREAM:triad", Loads: 2, Stores: 1, ElemsPerLine: 8, ALUPerElem: 4}

	// LMbench lat_mem_rd: one dependent load per line, minimal loop body.
	LMbench = Kernel{Name: "lmbench", Loads: 1, ElemsPerLine: 1, ALUPerElem: 1, Dependent: true, Random: true}
	// Google multichase: dependent chase with a slightly heavier body.
	Multichase = Kernel{Name: "multichase", Loads: 1, ElemsPerLine: 1, ALUPerElem: 3, Dependent: true, Random: true}
	// GUPS random update: read-modify-write of random lines.
	GUPS = Kernel{Name: "gups", Loads: 1, Stores: 1, ElemsPerLine: 1, ALUPerElem: 2, Random: true}
)

// CoreConfig describes the mechanistic core executing a kernel.
type CoreConfig struct {
	CycleTime sim.Time // core clock period
	Width     int      // sustained non-memory IPC (superscalar width)
	// Bases of the arrays used by the kernel; len ≥ Loads+Stores.
	ArrayBases []uint64
	ArrayBytes uint64
	Seed       uint64
}

func (c *CoreConfig) validate(k Kernel) error {
	if c.CycleTime <= 0 {
		return fmt.Errorf("cpu: kernel core needs a positive cycle time")
	}
	if len(c.ArrayBases) < k.Loads+k.Stores {
		return fmt.Errorf("cpu: kernel %s needs %d arrays, got %d", k.Name, k.Loads+k.Stores, len(c.ArrayBases))
	}
	if c.ArrayBytes == 0 || c.ArrayBytes%mem.LineSize != 0 {
		return fmt.Errorf("cpu: array bytes %d must be a positive multiple of the line size", c.ArrayBytes)
	}
	return nil
}

// KernelCore executes a Kernel on one port and measures IPC and application
// bandwidth. The model is mechanistic: non-memory work paces issue at
// Width instructions per cycle; memory transactions overlap with work and
// with each other up to the port's MSHR limit; dependent kernels serialize
// on load completion. This is the level of core fidelity the paper's
// IPC-error experiments require — the experiments vary only the memory
// model underneath.
type KernelCore struct {
	eng    *sim.Engine
	port   *cache.Port
	kernel Kernel
	cfg    CoreConfig

	lines   uint64
	lineIdx uint64
	rng     uint64

	running  bool
	stepOpen bool // a line-step is in progress (guards re-entrant wake-ups)
	// depReturned records that the open step's dependent load completed,
	// so an OnFree-driven drain of trailing ops knows it may retire the
	// step (without it, a step whose stores stalled after the load
	// returned would never complete).
	depReturned bool
	nextAt      sim.Time
	wake        *sim.Timer // pacing alarm: re-armed in place, never re-allocated

	// Completion callbacks, allocated once and passed to the port for
	// every operation: issuing a line-step captures nothing.
	resumeFn  func(sim.Time)
	depDoneFn func(sim.Time)

	pendingOps []pendingOp // ops of the current line-step not yet issued

	startAt sim.Time
	instret uint64
	steps   uint64
	lastAt  sim.Time
}

type pendingOp struct {
	arr     int
	isStore bool
}

// NewKernelCore builds a kernel executor; it panics on config errors.
func NewKernelCore(eng *sim.Engine, port *cache.Port, k Kernel, cfg CoreConfig) *KernelCore {
	if err := cfg.validate(k); err != nil {
		panic(err)
	}
	if cfg.Width == 0 {
		cfg.Width = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x853c49e6748fea9b
	}
	c := &KernelCore{
		eng:    eng,
		port:   port,
		kernel: k,
		cfg:    cfg,
		lines:  cfg.ArrayBytes / mem.LineSize,
		rng:    cfg.Seed,
	}
	// The wake timer serves double duty, disambiguated by step state: with
	// no step open it is the pacing alarm (begin the next step); with a
	// step open it can only be the deferred on-chip delivery of the step's
	// dependent load (issue arms it at ackAt), since the pacing arm always
	// happens after the step closes. Folding both onto one timer keeps the
	// dependent-load-with-trailing-ops path on the pooled fixed-callback
	// event instead of a scheduled one — identical (at, seq) arrival, as
	// the timer is always disarmed while a step is open.
	c.wake = eng.NewTimer(func() {
		if c.stepOpen {
			c.dependentLoadDone(c.eng.Now())
			return
		}
		c.beginStep()
	})
	c.resumeFn = func(sim.Time) { c.tryIssue() }
	c.depDoneFn = c.dependentLoadDone
	return c
}

// Start begins execution. Like the traffic generator, the core listens on
// the port's OnFree hook so that stalls on write-buffer space are released
// when downstream writebacks drain.
func (c *KernelCore) Start() {
	if c.running {
		return
	}
	c.running = true
	c.port.OnFree = func() { c.tryIssue() }
	c.startAt = c.eng.Now()
	c.nextAt = c.eng.Now()
	c.beginStep()
}

// Stop halts execution after in-flight operations complete.
func (c *KernelCore) Stop() { c.running = false }

// ResetStats restarts the measurement window at the current time.
func (c *KernelCore) ResetStats() {
	c.instret = 0
	c.steps = 0
	c.startAt = c.eng.Now()
}

// IPC reports instructions per cycle over the measurement window.
func (c *KernelCore) IPC() float64 {
	elapsed := c.lastAt - c.startAt
	if elapsed <= 0 {
		return 0
	}
	cycles := float64(elapsed) / float64(c.cfg.CycleTime)
	return float64(c.instret) / cycles
}

// Steps reports completed line-steps in the window.
func (c *KernelCore) Steps() uint64 { return c.steps }

// AppBandwidthGBs reports the application-level (STREAM-accounted)
// bandwidth over the window.
func (c *KernelCore) AppBandwidthGBs() float64 {
	elapsed := c.lastAt - c.startAt
	if elapsed <= 0 {
		return 0
	}
	return float64(c.steps*c.kernel.AppBytesPerStep()) / elapsed.Seconds() / 1e9
}

func (c *KernelCore) nextRand() uint64 {
	c.rng ^= c.rng << 13
	c.rng ^= c.rng >> 7
	c.rng ^= c.rng << 17
	return c.rng
}

func (c *KernelCore) addrFor(arr int) uint64 {
	var line uint64
	if c.kernel.Random {
		line = c.nextRand() % c.lines
	} else {
		line = c.lineIdx % c.lines
	}
	return c.cfg.ArrayBases[arr] + line*mem.LineSize
}

// beginStep queues the memory operations of one line-step and paces by the
// step's non-memory work.
func (c *KernelCore) beginStep() {
	if !c.running {
		return
	}
	k := &c.kernel
	c.stepOpen = true
	c.depReturned = false
	for a := 0; a < k.Loads; a++ {
		c.pendingOps = append(c.pendingOps, pendingOp{arr: a})
	}
	for a := 0; a < k.Stores; a++ {
		c.pendingOps = append(c.pendingOps, pendingOp{arr: k.Loads + a, isStore: true})
	}
	// Pace on the full instruction count: every instruction, memory ones
	// included, occupies an issue slot, bounding IPC at the core width.
	instr := k.InstrPerStep()
	cycles := (instr + uint64(c.cfg.Width) - 1) / uint64(c.cfg.Width)
	c.nextAt = maxT(c.nextAt, c.eng.Now()) + sim.Time(cycles)*c.cfg.CycleTime
	c.tryIssue()
}

func (c *KernelCore) stepElems() int {
	if c.kernel.ElemsPerLine == 0 {
		return 8
	}
	return c.kernel.ElemsPerLine
}

// tryIssue drains the pending ops of the current step as buffers allow,
// then completes the step. It is re-entrant: OnFree wake-ups may arrive
// while no step is open, which must be a no-op.
func (c *KernelCore) tryIssue() {
	if !c.running || !c.stepOpen {
		return
	}
	for len(c.pendingOps) > 0 {
		op := c.pendingOps[0]
		if !c.canIssue(op) {
			return // an OnFree wake-up will re-enter
		}
		c.pendingOps = c.pendingOps[1:]
		c.issue(op)
		if c.kernel.Dependent && !op.isStore {
			return // completeStep continues from the load callback
		}
	}
	// A dependent step may drain its trailing ops here (an OnFree wake-up
	// after the load already returned): it retires now, not in the load
	// callback that has long since fired.
	if !c.kernel.Dependent || c.depReturned {
		c.completeStep()
	}
}

func (c *KernelCore) canIssue(op pendingOp) bool {
	switch {
	case !op.isStore:
		return c.port.FreeMSHR()
	case c.kernel.NonTemporal:
		return c.port.FreeWB()
	default:
		return c.port.FreeMSHR() && c.port.FreeWB()
	}
}

// issue hands one operation to the port. On-chip completions come back as
// a timestamp, which the core carries as a *virtual completion time*
// instead of scheduling its stored callback at ackAt:
//
//   - A non-dependent op needs no resume at ackAt at all. The only thing a
//     resume could do is un-stall the step, and every false→true
//     transition of canIssue happens inside an MSHR/write-buffer release —
//     which already invokes the port's OnFree hook and re-enters tryIssue.
//     The old scheduled wake-up always fired as a no-op; dropping it
//     removes one event per on-chip hit with identical behaviour.
//
//   - A dependent load that is the last op of its step completes the step
//     virtually: the IPC/step accounting is stamped with ackAt now, and
//     the pacing timer is armed at the instant the next step would have
//     begun (max of the pacing deadline and ackAt). The next step's port
//     traffic therefore still issues at exactly the old engine time; only
//     the intermediate completion hop at ackAt disappears whenever the
//     pacing deadline lies beyond it. (When the wake shares a deadline
//     with another component's event, its schedule order can shift
//     relative to the old arm-at-completion — an accepted model-level
//     tie-break; the fig2 determinism gate, which exercises the
//     chaser/generator cores, is unaffected.)
//
//   - A dependent load with trailing ops arms the wake timer at ackAt:
//     those ops must reach the port at ackAt, not now, and the timer —
//     always disarmed while a step is open — delivers dependentLoadDone
//     there without scheduling a fresh callback. No standard kernel has
//     dependent loads followed by stores, so this path is essentially
//     dormant.
func (c *KernelCore) issue(op pendingOp) {
	addr := c.addrFor(op.arr)
	done := c.resumeFn
	dep := false
	var at sim.Time
	var onChip bool
	switch {
	case op.isStore && c.kernel.NonTemporal:
		at, onChip = c.port.StoreNT(addr, done)
	case op.isStore:
		at, onChip = c.port.Store(addr, done)
	case c.kernel.Dependent:
		done = c.depDoneFn
		dep = true
		at, onChip = c.port.Load(addr, done)
	default:
		at, onChip = c.port.Load(addr, done)
	}
	if !onChip || !dep {
		return // off-chip: the port delivers; on-chip non-dependent: no-op
	}
	if len(c.pendingOps) > 0 {
		c.wake.Arm(at)
		return
	}
	c.virtualStepComplete(at)
}

// virtualStepComplete retires a step whose closing dependent load hit on
// chip, without an event at the completion instant: the accounting is
// stamped with the virtual completion time at, and the wake timer carries
// execution to where the old completion callback would have resumed it.
func (c *KernelCore) virtualStepComplete(at sim.Time) {
	if !c.running || !c.stepOpen {
		return
	}
	c.stepOpen = false
	c.instret += c.kernel.InstrPerStep()
	c.steps++
	c.lineIdx++
	c.lastAt = at
	c.wake.Arm(maxT(c.nextAt, at))
}

// dependentLoadDone resumes a serialized kernel once its load returns.
func (c *KernelCore) dependentLoadDone(at sim.Time) {
	if !c.running || !c.stepOpen {
		return
	}
	c.depReturned = true
	if len(c.pendingOps) > 0 {
		// tryIssue retires the step itself once the trailing ops drain —
		// immediately, or from a later OnFree wake-up if they stall.
		c.tryIssue()
		return
	}
	c.completeStep()
}

// completeStep retires the step's instructions and schedules the next step
// at the pacing deadline.
func (c *KernelCore) completeStep() {
	if !c.running || !c.stepOpen {
		return
	}
	c.stepOpen = false
	c.instret += c.kernel.InstrPerStep()
	c.steps++
	c.lineIdx++
	c.lastAt = c.eng.Now()
	if c.nextAt > c.eng.Now() {
		if !c.wake.Armed() {
			c.wake.Arm(c.nextAt)
		}
		return
	}
	c.beginStep()
}
