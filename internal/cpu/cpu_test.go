package cpu

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/mess-sim/mess/internal/cache"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// fixedBackend completes every request after a constant delay.
type fixedBackend struct {
	eng   *sim.Engine
	delay sim.Time
	c     mem.Counters
}

func (f *fixedBackend) Access(req *mem.Request) {
	f.c.Add(req.Op, req.Bytes())
	req.CompleteAt(f.eng, f.eng.Now()+f.delay)
}

func rig(memLat sim.Time, ccfg cache.Config) (*sim.Engine, *fixedBackend, *cache.Hierarchy) {
	eng := sim.New()
	b := &fixedBackend{eng: eng, delay: memLat}
	h := cache.New(eng, ccfg, b)
	return eng, b, h
}

func TestChaserSerializesLoads(t *testing.T) {
	memLat := 80 * sim.Nanosecond
	eng, b, h := rig(memLat, cache.Config{OnChipLatency: 20 * sim.Nanosecond})
	ch := NewChaser(eng, h.Port(0), 0, 1<<12, 7)
	ch.Start()
	eng.RunUntil(100 * sim.Microsecond)
	ch.Stop()
	lat, n := ch.MeanLatency()
	if n == 0 {
		t.Fatal("no hops")
	}
	want := 100.0 // 80 memory + 20 on-chip
	if math.Abs(lat.Nanoseconds()-want) > 0.5 {
		t.Fatalf("chase latency = %.1f ns, want %.1f", lat.Nanoseconds(), want)
	}
	// Serialization: hops ≈ duration / (latency + hopOverhead).
	expected := float64(100*sim.Microsecond) / float64(lat+sim.Nanosecond/2)
	if math.Abs(float64(n)-expected) > expected*0.05 {
		t.Fatalf("hops = %d, want ≈%.0f (dependent loads must serialize)", n, expected)
	}
	if b.c.Writes != 0 {
		t.Fatal("chaser generated write traffic")
	}
}

func TestChaserVisitsAllLines(t *testing.T) {
	// The affine walk must visit every line exactly once per period.
	lines := uint64(1 << 10)
	c := NewChaser(sim.New(), nil, 0, lines, 3)
	seen := make(map[uint64]bool, lines)
	cur := c.cur
	for i := uint64(0); i < lines; i++ {
		cur = (c.mult*cur + c.inc) % lines
		if seen[cur] {
			t.Fatalf("line %d revisited at step %d — walk not full-period", cur, i)
		}
		seen[cur] = true
	}
	if len(seen) != int(lines) {
		t.Fatalf("visited %d lines, want %d", len(seen), lines)
	}
}

func TestChaserRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two line count accepted")
		}
	}()
	NewChaser(sim.New(), nil, 0, 1000, 0)
}

func TestGeneratorPacingControlsRate(t *testing.T) {
	run := func(paceNs float64) uint64 {
		eng, _, h := rig(50*sim.Nanosecond, cache.Config{MSHRs: 16, WriteBufs: 16})
		g := NewGenerator(eng, h.Port(0), GenConfig{
			StorePercent: 0,
			PacePerOp:    sim.FromNanoseconds(paceNs),
			LoadBase:     1 << 30,
			StoreBase:    1 << 31,
			ArrayBytes:   1 << 24,
		})
		g.Start()
		eng.RunUntil(50 * sim.Microsecond)
		g.Stop()
		return g.Ops()
	}
	fast := run(0)
	slow := run(64)
	if fast < 4*slow {
		t.Fatalf("pacing ineffective: %d ops at pace 0 vs %d at pace 64", fast, slow)
	}
	// At pace 64 ns the rate is ≈ 1 op / 64.5 ns → ≈775 ops in 50 µs.
	if slow < 600 || slow > 900 {
		t.Fatalf("paced rate = %d ops in 50 µs, want ≈775", slow)
	}
}

func TestGeneratorMixPattern(t *testing.T) {
	prop := func(pctRaw uint8) bool {
		pct := int(pctRaw) % 101
		p := mixPattern(pct)
		stores := 0
		for _, s := range p {
			if s {
				stores++
			}
		}
		return stores == pct
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 101}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorStoreTrafficAmplification(t *testing.T) {
	eng, b, h := rig(50*sim.Nanosecond, cache.Config{
		Policy: cache.WriteAllocate, MSHRs: 16, WriteBufs: 16, WritebackLag: 1 << 20,
	})
	g := NewGenerator(eng, h.Port(0), GenConfig{
		StorePercent: 100,
		LoadBase:     1 << 30,
		StoreBase:    1 << 31,
		ArrayBytes:   1 << 24,
	})
	g.Start()
	eng.RunUntil(50 * sim.Microsecond)
	g.Stop()
	eng.RunUntil(60 * sim.Microsecond)
	if b.c.Reads == 0 || b.c.Writes == 0 {
		t.Fatalf("store stream produced %v", b.c)
	}
	ratio := float64(b.c.Reads) / float64(b.c.Writes)
	if ratio < 0.9 || ratio > 1.2 {
		t.Fatalf("RFO/writeback ratio = %.2f, want ≈1 (each store = 1 read + 1 write)", ratio)
	}
}

func TestKernelCoreStreamIPC(t *testing.T) {
	// With a fast memory system, STREAM IPC approaches the ALU width
	// bound; with a slow one it collapses. The mechanistic model must
	// show that contrast.
	run := func(memLat sim.Time, mshrs int) float64 {
		eng, _, h := rig(memLat, cache.Config{MSHRs: mshrs, WriteBufs: mshrs + 4})
		core := NewKernelCore(eng, h.Port(0), StreamTriad, CoreConfig{
			CycleTime:  sim.FromNanoseconds(0.5),
			ArrayBases: []uint64{1 << 30, 1 << 31, 1 << 32},
			ArrayBytes: 1 << 24,
		})
		core.Start()
		eng.RunUntil(20 * sim.Microsecond)
		core.ResetStats()
		eng.RunUntil(100 * sim.Microsecond)
		ipc := core.IPC()
		core.Stop()
		return ipc
	}
	fast := run(5*sim.Nanosecond, 16)
	slow := run(400*sim.Nanosecond, 2)
	if fast < 2*slow {
		t.Fatalf("memory latency did not gate STREAM IPC: fast %.2f vs slow %.2f", fast, slow)
	}
	if fast <= 0 || fast > 4.5 {
		t.Fatalf("fast IPC = %.2f outside sane range", fast)
	}
}

func TestKernelCoreDependentLatencyBound(t *testing.T) {
	memLat := 100 * sim.Nanosecond
	eng, _, h := rig(memLat, cache.Config{MSHRs: 8, WriteBufs: 8})
	core := NewKernelCore(eng, h.Port(0), LMbench, CoreConfig{
		CycleTime:  sim.FromNanoseconds(0.5),
		ArrayBases: []uint64{1 << 30},
		ArrayBytes: 1 << 24,
	})
	core.Start()
	eng.RunUntil(200 * sim.Microsecond)
	steps := core.Steps()
	core.Stop()
	// Dependent loads: one step per ~(latency + ALU cycle).
	expected := float64(200*sim.Microsecond) / float64(memLat+sim.FromNanoseconds(0.5))
	if math.Abs(float64(steps)-expected) > 0.1*expected {
		t.Fatalf("dependent kernel made %d steps, want ≈%.0f — serialization broken", steps, expected)
	}
}

func TestKernelCoreAppBandwidthAccounting(t *testing.T) {
	eng, b, h := rig(20*sim.Nanosecond, cache.Config{
		Policy: cache.WriteAllocate, MSHRs: 16, WriteBufs: 20, WritebackLag: 1 << 20,
	})
	core := NewKernelCore(eng, h.Port(0), StreamCopy, CoreConfig{
		CycleTime:  sim.FromNanoseconds(0.5),
		ArrayBases: []uint64{1 << 30, 1 << 31},
		ArrayBytes: 1 << 24,
	})
	core.Start()
	eng.RunUntil(10 * sim.Microsecond)
	core.ResetStats()
	c0 := b.c
	eng.RunUntil(60 * sim.Microsecond)
	appBW := core.AppBandwidthGBs()
	core.Stop()
	delta := b.c.Sub(c0)
	memBW := delta.BandwidthGBs(50 * sim.Microsecond)
	// Write-allocate amplification: Copy moves 2 lines/step at the app
	// level but 3 at the controller (load + RFO + writeback).
	ratio := memBW / appBW
	if ratio < 1.35 || ratio > 1.65 {
		t.Fatalf("controller/app bandwidth ratio = %.2f, want ≈1.5 (write-allocate amplification)", ratio)
	}
}

func TestKernelCoreValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("kernel with missing arrays accepted")
		}
	}()
	NewKernelCore(sim.New(), nil, StreamAdd, CoreConfig{
		CycleTime:  sim.Nanosecond,
		ArrayBases: []uint64{0}, // needs 3
		ArrayBytes: 1 << 20,
	})
}

func TestKernelInstrAccounting(t *testing.T) {
	if got := StreamTriad.InstrPerStep(); got != 8*(2+1)+8*4 {
		t.Fatalf("Triad instructions/step = %d", got)
	}
	if got := StreamTriad.AppBytesPerStep(); got != 3*64 {
		t.Fatalf("Triad app bytes/step = %d", got)
	}
	if got := LMbench.InstrPerStep(); got != 2 {
		t.Fatalf("LMbench instructions/step = %d", got)
	}
}
