package cpu

import (
	"testing"

	"github.com/mess-sim/mess/internal/cache"
	"github.com/mess-sim/mess/internal/dram"
	"github.com/mess-sim/mess/internal/sim"
)

// The access-pattern extension of Sec. IV-D: strided and random generator
// walks must degrade row-buffer locality on the detailed DRAM model.
func TestGeneratorAccessPatterns(t *testing.T) {
	run := func(p AccessPattern) (hit float64, bw float64) {
		cfg := dram.DDR4(2666, 2, 1)
		cfg.CtrlLatency = sim.FromNanoseconds(8)
		cfg.IdleClose = 250 * sim.Nanosecond
		eng := sim.New()
		sys := dram.New(eng, cfg)
		h := cache.New(eng, cache.Config{MSHRs: 16, WriteBufs: 20}, sys)
		for g := 0; g < 4; g++ {
			gen := NewGenerator(eng, h.Port(g), GenConfig{
				StorePercent: 0,
				Pattern:      p,
				LoadBase:     uint64(1)<<33 + uint64(g)*(1<<28+16<<10),
				StoreBase:    uint64(1)<<40 + uint64(g)*(1<<28),
				ArrayBytes:   32 << 20,
				Seed:         uint64(g)*7919 + 13,
			})
			gen.Start()
		}
		dur := 50 * sim.Microsecond
		eng.RunUntil(dur)
		hitR, _, _ := sys.RowStats().Ratios()
		c := sys.Counters()
		return hitR, float64(c.TotalBytes()) / dur.Seconds() / 1e9
	}

	seqHit, seqBW := run(Sequential)
	strideHit, strideBW := run(Strided)
	randHit, randBW := run(Random)

	if seqHit < 0.85 {
		t.Fatalf("sequential hit rate %.2f, want high", seqHit)
	}
	if strideHit > seqHit-0.3 {
		t.Fatalf("strided hit rate %.2f not clearly below sequential %.2f", strideHit, seqHit)
	}
	if randHit > seqHit-0.3 {
		t.Fatalf("random hit rate %.2f not clearly below sequential %.2f", randHit, seqHit)
	}
	// Row thrash costs bandwidth: the GUPS-style pattern cannot reach the
	// sequential stream's throughput.
	if randBW > seqBW*0.8 {
		t.Fatalf("random bandwidth %.1f not clearly below sequential %.1f", randBW, seqBW)
	}
	if strideBW > seqBW {
		t.Fatalf("strided bandwidth %.1f above sequential %.1f", strideBW, seqBW)
	}
}

func TestStridedPatternTargetsNewRows(t *testing.T) {
	// With an 8 KiB stride on an 8 KiB row buffer, consecutive accesses
	// of one stream never share a row.
	cfg := dram.DDR4(2666, 1, 1)
	m := dram.NewMapper(&cfg)
	g := &Generator{cfg: GenConfig{Pattern: Strided, StrideBytes: 8 << 10, ArrayBytes: 32 << 20}, lines: (32 << 20) / 64}
	var prev dram.Loc
	for i := 0; i < 50; i++ {
		off := g.nextOffset(&g.loadLine)
		loc := m.Map(off)
		if i > 0 && loc.Bank == prev.Bank && loc.Row == prev.Row {
			t.Fatalf("consecutive strided accesses share row: %+v then %+v", prev, loc)
		}
		prev = loc
	}
}
