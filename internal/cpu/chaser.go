// Package cpu provides the core-side engines that drive memory traffic:
//
//   - Chaser: the Mess pointer-chase latency probe — dependent back-to-back
//     loads over a random permutation of a large array (Appendix A.1);
//   - Generator: the Mess traffic generator — paced streams of loads and
//     stores over two per-core arrays (Appendix A.2);
//   - KernelCore: a mechanistic core model that executes abstract kernels
//     (STREAM, HPCG phases, SPEC-like mixes) and reports IPC, used by the
//     simulator-accuracy experiments.
//
// All engines are single-goroutine, event-driven and deterministic.
package cpu

import (
	"github.com/mess-sim/mess/internal/cache"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// Chaser is the pointer-chase benchmark: a chain of dependent loads, each
// targeting a pseudo-random cache line of a large array. Because each load's
// address depends on the previous load's data, execution is fully
// serialized, so mean latency = elapsed / hops — exactly the measurement
// methodology of the paper's Listing 1.
type Chaser struct {
	eng  *sim.Engine
	port *cache.Port

	base  uint64
	lines uint64
	mult  uint64
	inc   uint64
	cur   uint64

	hopOverhead sim.Time // core-side work per hop (loop counter, branch)

	running bool
	issued  sim.Time // issue time of the single in-flight load

	// The chase is fully serialized, so the hop and completion callbacks
	// are allocated once and reused for every hop.
	hopFn  func()
	doneFn func(sim.Time)

	latSum sim.Time
	latN   uint64
}

// NewChaser builds a chaser over `lines` cache lines starting at base.
// The traversal is a full-period affine walk over line indices
// (next = (mult·cur + inc) mod lines with lines a power of two), which
// visits every line exactly once in a pseudo-random order — the model
// equivalent of the random-cycle initialization of the Mess pointer-chase
// array. seed varies the starting position.
func NewChaser(eng *sim.Engine, port *cache.Port, base uint64, lines uint64, seed uint64) *Chaser {
	if lines == 0 || lines&(lines-1) != 0 {
		panic("cpu: chaser lines must be a nonzero power of two")
	}
	c := &Chaser{
		eng:   eng,
		port:  port,
		base:  base,
		lines: lines,
		// Full-period LCG over 2^k: multiplier ≡ 1 (mod 4), odd increment.
		mult:        1664525,
		inc:         1013904223 | 1,
		cur:         seed % lines,
		hopOverhead: sim.Nanosecond / 2,
	}
	c.hopFn = c.hop
	c.doneFn = c.hopDone
	return c
}

// Start begins the chase. It is idempotent.
func (c *Chaser) Start() {
	if c.running {
		return
	}
	c.running = true
	c.hop()
}

// Stop halts the chase after the in-flight load completes.
func (c *Chaser) Stop() { c.running = false }

func (c *Chaser) hop() {
	if !c.running {
		return
	}
	c.cur = (c.mult*c.cur + c.inc) % c.lines
	addr := c.base + c.cur*mem.LineSize
	c.issued = c.eng.Now()
	if at, onChip := c.port.Load(addr, c.doneFn); onChip {
		// On-chip hit: the chase depends only on the completion timestamp,
		// so the hop is consumed inline — hopDone schedules the next hop
		// directly at at+overhead, with no delivery event in between.
		c.hopDone(at)
	}
}

// hopDone records the load-to-use latency and schedules the next hop.
func (c *Chaser) hopDone(at sim.Time) {
	c.latSum += at - c.issued
	c.latN++
	if !c.running {
		return
	}
	c.eng.Schedule(at+c.hopOverhead, c.hopFn)
}

// ResetStats clears the latency accumulators (after warmup).
func (c *Chaser) ResetStats() { c.latSum, c.latN = 0, 0 }

// MeanLatency reports the average load-to-use latency observed since the
// last reset, and the number of samples.
func (c *Chaser) MeanLatency() (sim.Time, uint64) {
	if c.latN == 0 {
		return 0, 0
	}
	return c.latSum / sim.Time(c.latN), c.latN
}
