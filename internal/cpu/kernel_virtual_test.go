package cpu

import (
	"math"
	"testing"

	"github.com/mess-sim/mess/internal/cache"
	"github.com/mess-sim/mess/internal/sim"
)

// hitRig builds a hierarchy whose accesses are all (or partially) served
// on chip, the regime where the kernel core now completes steps virtually
// instead of scheduling its stored callback at ackAt.
func hitRig(hitRate float64, hitLat, memLat sim.Time) (*sim.Engine, *cache.Hierarchy) {
	eng, _, h := rig(memLat, cache.Config{
		MSHRs:         8,
		WriteBufs:     8,
		LLCHitRate:    hitRate,
		LLCHitLatency: hitLat,
	})
	return eng, h
}

// TestKernelCoreOnChipVirtualCompletion pins the timing semantics of the
// virtual completion path: a fully on-chip dependent chase must still
// serialize on the hit latency — one step per max(hit latency, pacing
// quantum) — and stamp its accounting with the virtual completion time,
// even though no completion event ever fires.
func TestKernelCoreOnChipVirtualCompletion(t *testing.T) {
	hitLat := 30 * sim.Nanosecond
	cycle := sim.FromNanoseconds(0.5)
	eng, h := hitRig(1.0, hitLat, 400*sim.Nanosecond)
	core := NewKernelCore(eng, h.Port(0), LMbench, CoreConfig{
		CycleTime:  cycle,
		ArrayBases: []uint64{1 << 30},
		ArrayBytes: 1 << 24,
	})
	core.Start()
	dur := 120 * sim.Microsecond
	eng.RunUntil(dur)
	core.Stop()

	// LMbench: 2 instructions/step at width 4 → a 1-cycle pacing quantum,
	// far below the hit latency, so the chase serializes on hitLat.
	steps := float64(core.Steps())
	expected := float64(dur) / float64(hitLat)
	if math.Abs(steps-expected) > 0.02*expected {
		t.Fatalf("on-chip chase made %.0f steps, want ≈%.0f (hit-latency serialization lost)", steps, expected)
	}
	// The IPC window must end on a virtual completion stamp, not an event
	// timestamp: 2 instructions per hitLat-period.
	wantIPC := 2.0 / (float64(hitLat) / float64(cycle))
	if got := core.IPC(); math.Abs(got-wantIPC) > 0.05*wantIPC {
		t.Fatalf("on-chip chase IPC = %.3f, want ≈%.3f", got, wantIPC)
	}
}

// TestKernelCoreOnChipPacingBound flips the regime: with a heavy ALU body
// the pacing deadline lies beyond the on-chip completion, so the step rate
// must be compute-bound — exactly the case where the virtual completion
// saves the intermediate event and the wake carries straight to the
// pacing deadline.
func TestKernelCoreOnChipPacingBound(t *testing.T) {
	hitLat := 10 * sim.Nanosecond
	cycle := sim.FromNanoseconds(0.5)
	heavy := Kernel{Name: "alu-chase", Loads: 1, ElemsPerLine: 1, ALUPerElem: 199, Dependent: true, Random: true}
	eng, h := hitRig(1.0, hitLat, 400*sim.Nanosecond)
	core := NewKernelCore(eng, h.Port(0), heavy, CoreConfig{
		CycleTime:  cycle,
		Width:      4,
		ArrayBases: []uint64{1 << 30},
		ArrayBytes: 1 << 24,
	})
	core.Start()
	dur := 120 * sim.Microsecond
	eng.RunUntil(dur)
	core.Stop()

	// 200 instructions/step at width 4 → 50 cycles = 25 ns per step,
	// dominating the 10 ns hit latency.
	stepTime := 50 * cycle
	expected := float64(dur) / float64(stepTime)
	if got := float64(core.Steps()); math.Abs(got-expected) > 0.02*expected {
		t.Fatalf("compute-bound on-chip chase made %.0f steps, want ≈%.0f", got, expected)
	}
	if got, want := core.IPC(), 4.0; math.Abs(got-want) > 0.05*want {
		t.Fatalf("compute-bound IPC = %.2f, want ≈%.2f (width-bound)", got, want)
	}
}

// TestKernelCoreMixedHitsDeterministic runs a mixed on-/off-chip workload
// (stores included, so the non-dependent on-chip paths exercise too)
// twice and requires bit-identical results — the virtual completion path
// must not introduce schedule-order nondeterminism.
func TestKernelCoreMixedHitsDeterministic(t *testing.T) {
	run := func() (uint64, float64, float64) {
		eng, h := hitRig(0.5, 25*sim.Nanosecond, 120*sim.Nanosecond)
		core := NewKernelCore(eng, h.Port(0), GUPS, CoreConfig{
			CycleTime:  sim.FromNanoseconds(0.5),
			ArrayBases: []uint64{1 << 30, 1 << 31},
			ArrayBytes: 1 << 22,
		})
		core.Start()
		eng.RunUntil(30 * sim.Microsecond)
		core.ResetStats()
		eng.RunUntil(150 * sim.Microsecond)
		core.Stop()
		return core.Steps(), core.IPC(), core.AppBandwidthGBs()
	}
	s1, ipc1, bw1 := run()
	s2, ipc2, bw2 := run()
	if s1 != s2 || ipc1 != ipc2 || bw1 != bw2 {
		t.Fatalf("identical runs diverged: (%d %.6f %.6f) vs (%d %.6f %.6f)", s1, ipc1, bw1, s2, ipc2, bw2)
	}
	if s1 == 0 {
		t.Fatal("mixed-hit workload made no progress")
	}
}

// TestKernelCoreDependentTrailingStoreStall covers the dependent-kernel
// shape with ops behind the load (no standard kernel has it): when the
// trailing store stalls on write-buffer space and only drains via a later
// OnFree wake-up, the step must still retire — the drain path completes
// dependent steps whose load has already returned.
func TestKernelCoreDependentTrailingStoreStall(t *testing.T) {
	depRMW := Kernel{Name: "dep-rmw", Loads: 1, Stores: 1, ElemsPerLine: 1, ALUPerElem: 2, Dependent: true, Random: true}
	// One write buffer and a laggy memory: the paired writeback of each
	// store holds the only WB slot long enough that the next store's
	// issue stalls until OnFree.
	eng, _, h := rig(200*sim.Nanosecond, cache.Config{
		MSHRs: 4, WriteBufs: 1, WritebackLag: 1 << 12,
	})
	core := NewKernelCore(eng, h.Port(0), depRMW, CoreConfig{
		CycleTime:  sim.FromNanoseconds(0.5),
		ArrayBases: []uint64{1 << 30, 1 << 31},
		ArrayBytes: 1 << 22,
	})
	core.Start()
	eng.RunUntil(200 * sim.Microsecond)
	core.Stop()
	// Before the drain-path fix the core wedged after its first stalled
	// store (stepOpen stuck true, no wake armed): ~1 step, idle engine.
	if core.Steps() < 50 {
		t.Fatalf("dependent kernel with trailing stores made %d steps — wedged on a stalled store", core.Steps())
	}
}

// TestKernelCoreAllOnChipStoresProgress pins the liveness argument for
// dropping the non-dependent on-chip resume event: a kernel whose traffic
// is entirely on-chip still makes progress, because every stall release
// flows through the port's OnFree hook.
func TestKernelCoreAllOnChipStoresProgress(t *testing.T) {
	eng, h := hitRig(1.0, 15*sim.Nanosecond, 300*sim.Nanosecond)
	core := NewKernelCore(eng, h.Port(0), StreamTriad, CoreConfig{
		CycleTime:  sim.FromNanoseconds(0.5),
		ArrayBases: []uint64{1 << 30, 1 << 31, 1 << 32},
		ArrayBytes: 1 << 24,
	})
	core.Start()
	eng.RunUntil(50 * sim.Microsecond)
	core.Stop()
	if core.Steps() == 0 {
		t.Fatal("fully on-chip STREAM kernel deadlocked")
	}
	// Fully on-chip, the kernel is width-bound: 56 instr/step at width 4
	// → 14 cycles = 7 ns per step.
	expected := float64(50*sim.Microsecond) / float64(14*sim.FromNanoseconds(0.5))
	if got := float64(core.Steps()); math.Abs(got-expected) > 0.05*expected {
		t.Fatalf("on-chip STREAM made %.0f steps, want ≈%.0f (width-bound)", got, expected)
	}
}
