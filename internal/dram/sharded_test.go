package dram

import (
	"fmt"
	"testing"

	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// completionRec is one observed completion on the home engine: the fire
// instant plus enough request identity to detect any reordering.
type completionRec struct {
	at   sim.Time
	addr uint64
	op   mem.Op
}

// driveClosedLoop saturates the backend from the home engine with a mixed
// read/write xorshift walk — every address in a fresh row, all channels
// busy, write-queue drains exercised — and returns the completion trace.
// hop is the core→controller flight time (the home lookahead under
// sharding).
func driveClosedLoop(t *testing.T, eng *sim.Engine, run func(), backend mem.TimedBackend, hop sim.Time, n int) []completionRec {
	t.Helper()
	pool := mem.NewRequestPool()
	trace := make([]completionRec, 0, n)
	rng := uint64(0x9e3779b97f4a7c15)
	line := uint64(0)
	completed, target := 0, n
	var issue func()
	var done mem.DoneFunc
	done = func(at sim.Time, req *mem.Request) {
		trace = append(trace, completionRec{eng.Now(), req.Addr, req.Op})
		completed++
		if completed < target {
			issue()
		}
	}
	issue = func() {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		addr := rng % (1 << 30) &^ 63
		op := mem.Read
		if line%3 == 2 {
			op = mem.Write
		}
		line++
		req := pool.Get(addr, op, done)
		backend.AccessAt(req, eng.Now()+hop)
	}
	for i := 0; i < 192; i++ {
		issue()
	}
	run()
	if completed < target {
		t.Fatalf("completed %d of %d requests", completed, target)
	}
	if live := pool.Live(); live != 0 {
		t.Fatalf("%d requests still live after drain", live)
	}
	return trace
}

// unshardedTrace is the single-engine reference trace for cfg.
func unshardedTrace(t *testing.T, cfg Config, hop sim.Time, n int) []completionRec {
	t.Helper()
	eng := sim.New()
	sys := New(eng, cfg)
	return driveClosedLoop(t, eng, eng.Run, sys, hop, n)
}

func diffTraces(t *testing.T, label string, ref, got []completionRec) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: trace length %d, want %d", label, len(got), len(ref))
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("%s: completion %d = %+v, want %+v", label, i, got[i], ref[i])
		}
	}
}

// TestShardedMatchesUnsharded is the sharded engine's bit-exactness gate at
// the memory-system level: channels spread over concurrently advancing
// shard engines must complete every request at the same instant and in the
// same order as the single-engine system, for every shard count.
func TestShardedMatchesUnsharded(t *testing.T) {
	cfg := DDR4(2666, 3, 2)
	hop := sim.Time(22250)
	const n = 20000
	ref := unshardedTrace(t, cfg, hop, n)

	for _, shards := range []int{2, 3, 4} {
		group := sim.NewShardGroup(shards)
		sh := NewSharded(group, cfg, 0)
		group.SetLookaheadOut(0, hop)
		got := driveClosedLoop(t, group.Engine(0), group.Run, sh, hop, n)
		group.Close()
		diffTraces(t, fmt.Sprintf("shards=%d", shards), ref, got)
	}
}

// TestShardedAggregatesMatch checks the quiescent statistics surfaces:
// counters, row-buffer outcomes and observed read latency aggregate across
// shard engines to exactly the unsharded totals.
func TestShardedAggregatesMatch(t *testing.T) {
	cfg := DDR4(2666, 3, 2)
	hop := sim.Time(22250)
	const n = 8000

	eng := sim.New()
	sys := New(eng, cfg)
	driveClosedLoop(t, eng, eng.Run, sys, hop, n)

	group := sim.NewShardGroup(3)
	defer group.Close()
	sh := NewSharded(group, cfg, 0)
	group.SetLookaheadOut(0, hop)
	driveClosedLoop(t, group.Engine(0), group.Run, sh, hop, n)

	if a, b := sys.Counters(), sh.Counters(); a != b {
		t.Errorf("counters: sharded %+v, unsharded %+v", b, a)
	}
	if a, b := sys.RowStats(), sh.RowStats(); a != b {
		t.Errorf("row stats: sharded %+v, unsharded %+v", b, a)
	}
	aLat, aN := sys.ObservedReadLatency()
	bLat, bN := sh.ObservedReadLatency()
	if aLat != bLat || aN != bN {
		t.Errorf("read latency: sharded (%d, %d), unsharded (%d, %d)", bLat, bN, aLat, aN)
	}
	if a, b := sys.Queued(), sh.Queued(); a != 0 || b != 0 {
		t.Errorf("queued after drain: sharded %d, unsharded %d", b, a)
	}
}

// TestShardedRandomAssignments asserts the channel→shard placement is
// execution-only: any valid assignment — including lopsided ones packing
// every channel on one shard — produces the identical completion trace.
func TestShardedRandomAssignments(t *testing.T) {
	cfg := DDR4(2666, 4, 2)
	hop := sim.Time(22250)
	const n = 12000
	ref := unshardedTrace(t, cfg, hop, n)

	rng := uint64(0x2545f4914f6cdd1d)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	for trial := 0; trial < 6; trial++ {
		shards := 2 + next(4) // 2..5 shards: home plus 1..4 channel shards
		assign := make([]int, cfg.Channels)
		for i := range assign {
			assign[i] = 1 + next(shards-1) // never the home shard
		}
		group := sim.NewShardGroup(shards)
		sh := NewShardedAssigned(group, cfg, 0, assign)
		group.SetLookaheadOut(0, hop)
		got := driveClosedLoop(t, group.Engine(0), group.Run, sh, hop, n)
		group.Close()
		diffTraces(t, fmt.Sprintf("trial %d shards=%d assign=%v", trial, shards, assign), ref, got)
	}
}

// TestShardedGuards pins the misuse panics: an untimed Access has no
// conservative window to cross shards in, a one-shard group has nowhere to
// put channels, and a home-shard assignment would run a channel on the
// issuing goroutine.
func TestShardedGuards(t *testing.T) {
	cfg := DDR4(2666, 2, 1)
	group := sim.NewShardGroup(2)
	defer group.Close()
	sh := NewSharded(group, cfg, 0)
	group.SetLookaheadOut(0, sim.Time(22250))

	expectPanic(t, "untimed Access", func() {
		sh.Access(&mem.Request{Addr: 0, Op: mem.Read})
	})
	expectPanic(t, "one-shard group", func() {
		g := sim.NewShardGroup(1)
		defer g.Close()
		NewSharded(g, cfg, 0)
	})
	expectPanic(t, "home-shard assignment", func() {
		g := sim.NewShardGroup(2)
		defer g.Close()
		NewShardedAssigned(g, cfg, 0, []int{0, 1})
	})
	expectPanic(t, "assignment length", func() {
		g := sim.NewShardGroup(2)
		defer g.Close()
		NewShardedAssigned(g, cfg, 0, []int{1})
	})
}

func expectPanic(t *testing.T, label string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", label)
		}
	}()
	fn()
}
