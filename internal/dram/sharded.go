package dram

import (
	"fmt"

	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// Sharded is the multi-engine form of System: channels live on the non-home
// shards of a sim.ShardGroup and advance concurrently inside the group's
// conservative windows, while the issuing side (cores, cache, request pool)
// stays on the home shard. It implements mem.TimedBackend only — every
// access must carry the cross-shard hop as its delivery delay, because that
// hop is the home shard's lookahead; a zero-latency Access has no
// conservative window to ride and panics.
//
// Ownership: requests are delivered to a channel's shard via their prebuilt
// deliver closures and completed back on the home shard via their prebuilt
// fire closures (CompleteVia), so Done callbacks and pool releases run only
// on the home goroutine — the single-goroutine pool contract is preserved
// under sharding by construction, not by locking.
//
// The channel shards declare the device burst time as their lookahead:
// a completion committed by a decide at time t ends its data burst no
// earlier than t+Burst (reads add CtrlLatency on top), so that is the
// minimum flight time of everything a channel shard ever sends.
type Sharded struct {
	group  *sim.ShardGroup
	home   int
	cfg    Config
	mapper Mapper
	chans  []*channel
	shard  []int // shard index per channel

	xmit []func(at sim.Time, tag int32, fn func(sim.Time)) // per channel: home → owning shard
	dest []shardEntry                                      // per channel: delivery target
}

// shardEntry is the per-channel delivery target: Access runs on the owning
// shard's goroutine at the delivery time and enqueues into the channel.
type shardEntry struct {
	s  *Sharded
	ch int
}

func (e *shardEntry) Access(req *mem.Request) {
	s := e.s
	_, bi, rank, row := s.mapper.mapReq(req.Addr)
	s.chans[e.ch].enqueue(req, bi, rank, row)
}

// NewSharded builds a sharded memory system on the group, with channels
// assigned round-robin over every shard except home. The group must have at
// least two shards. Channel identity (refresh stagger, mapping) is exactly
// that of New, so a sharded and an unsharded system given the same request
// stream produce identical command sequences and completion times.
func NewSharded(group *sim.ShardGroup, cfg Config, home int) *Sharded {
	n := group.Shards()
	if n < 2 {
		panic(fmt.Sprintf("dram: sharded system needs ≥ 2 shards, got %d", n))
	}
	cfgd := cfg.withDefaults()
	assign := make([]int, cfgd.Channels)
	k := 0
	for i := range assign {
		if k == home {
			k = (k + 1) % n
		}
		assign[i] = k
		k = (k + 1) % n
	}
	return NewShardedAssigned(group, cfg, home, assign)
}

// NewShardedAssigned builds a sharded system with an explicit channel→shard
// assignment (len(assign) == Channels; no entry may name the home shard).
// The assignment changes only which goroutine advances each channel — never
// the simulated result — which is what the randomized-assignment stress
// test asserts.
func NewShardedAssigned(group *sim.ShardGroup, cfg Config, home int, assign []int) *Sharded {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(assign) != cfg.Channels {
		panic(fmt.Sprintf("dram: %d shard assignments for %d channels", len(assign), cfg.Channels))
	}
	s := &Sharded{
		group:  group,
		home:   home,
		cfg:    cfg,
		mapper: NewMapper(&cfg),
		chans:  make([]*channel, cfg.Channels),
		shard:  make([]int, cfg.Channels),
		xmit:   make([]func(at sim.Time, tag int32, fn func(sim.Time)), cfg.Channels),
		dest:   make([]shardEntry, cfg.Channels),
	}
	// One home-bound transmit closure per shard, shared by the shard's
	// channels; the per-channel completion hook binds the channel's entity
	// tag so completions sort on the home engine exactly as
	// CompleteAtTagged would have placed them unsharded.
	homebound := make([]func(at sim.Time, tag int32, fn func(sim.Time)), group.Shards())
	outward := make([]func(at sim.Time, tag int32, fn func(sim.Time)), group.Shards())
	for i := range s.chans {
		sh := assign[i]
		if sh == home || sh < 0 || sh >= group.Shards() {
			panic(fmt.Sprintf("dram: channel %d assigned to invalid shard %d (home %d, %d shards)",
				i, sh, home, group.Shards()))
		}
		s.shard[i] = sh
		if homebound[sh] == nil {
			shard := sh
			homebound[sh] = func(at sim.Time, tag int32, fn func(sim.Time)) { group.Send(shard, home, at, tag, fn) }
			outward[sh] = func(at sim.Time, tag int32, fn func(sim.Time)) { group.Send(home, shard, at, tag, fn) }
		}
		c := newChannel(group.Engine(sh), &s.cfg, i)
		hw := homebound[sh]
		tag := c.tag
		c.complete = func(req *mem.Request, at sim.Time) { req.CompleteVia(hw, at, tag) }
		s.chans[i] = c
		s.xmit[i] = outward[sh]
		s.dest[i] = shardEntry{s: s, ch: i}
		// The shard→home lookahead is the minimum flight time of the
		// shard's sends: every completion lands at least one data burst
		// after the decide that committed it. Multiple channels on one
		// shard share the same device timing, so the assignment is
		// idempotent. Channel shards never talk to each other — those
		// pairs stay at InfLookahead and place no bound on each other's
		// windows.
		group.SetLookahead(sh, home, s.cfg.Timing.Burst)
	}
	return s
}

// Config reports the system configuration.
func (s *Sharded) Config() Config { return s.cfg }

// PeakBandwidthGBs reports the theoretical maximum bandwidth.
func (s *Sharded) PeakBandwidthGBs() float64 { return s.cfg.PeakBandwidthGBs() }

// AccessAt submits one transaction for delivery at absolute time at,
// transferring ownership. It must be called from the home shard with
// at − now at least the home shard's declared lookahead (the cache's
// outbound on-chip hop in the standard topology).
func (s *Sharded) AccessAt(req *mem.Request, at sim.Time) {
	ch, _, _, _ := s.mapper.mapReq(req.Addr)
	req.SendVia(s.xmit[ch], &s.dest[ch], at, 0)
}

// Access panics: a same-instant hand-off has no conservative window to
// cross shards in. Issuers must carry a positive hop (AccessAt), which the
// cache hierarchy does whenever OnChipLatency > 0.
func (s *Sharded) Access(*mem.Request) {
	panic("dram: sharded system requires a timed hand-off (AccessAt with a positive hop)")
}

// The aggregate statistics below may only be read while the group is
// quiescent (between RunUntil calls), when the barrier has ordered every
// shard's memory against the caller.

// Counters reports accumulated system-wide traffic counters.
func (s *Sharded) Counters() mem.Counters {
	var total mem.Counters
	for _, c := range s.chans {
		total.Merge(c.counters)
	}
	return total
}

// RowStats reports accumulated row-buffer hit/empty/miss statistics.
func (s *Sharded) RowStats() RowStats {
	var total RowStats
	for _, c := range s.chans {
		total.Hits += c.rowStats.Hits
		total.Empties += c.rowStats.Empties
		total.Misses += c.rowStats.Misses
	}
	return total
}

// Queued reports the number of requests currently waiting in controller
// queues.
func (s *Sharded) Queued() int {
	n := 0
	for _, c := range s.chans {
		n += c.queued()
	}
	return n
}

// ObservedReadLatency reports the mean controller-level read latency.
func (s *Sharded) ObservedReadLatency() (sim.Time, uint64) {
	var sum sim.Time
	var n uint64
	for _, c := range s.chans {
		sum += c.readLatSum
		n += c.readLatN
	}
	if n == 0 {
		return 0, 0
	}
	return sum / sim.Time(n), n
}

func (s *Sharded) String() string {
	return fmt.Sprintf("%s ×%d channels sharded over %d engines (peak %.1f GB/s)",
		s.cfg.Name, s.cfg.Channels, s.group.Shards()-1, s.PeakBandwidthGBs())
}

var _ mem.TimedBackend = (*Sharded)(nil)
var _ mem.LatencyObserver = (*Sharded)(nil)
