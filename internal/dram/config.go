// Package dram implements a cycle-level main-memory model: multi-channel
// DDR4/DDR5/HBM devices with per-bank row buffers, FR-FCFS scheduling,
// write-drain watermarks, bus turnaround penalties, activation-window limits
// (tRRD/tFAW) and periodic refresh.
//
// The model is the repository's stand-in for "actual hardware": every paper
// experiment that characterizes a physical server runs the Mess benchmark
// against this model. It is deliberately a request-level (not command-level)
// model: per transaction it resolves the row-buffer outcome (hit, empty,
// miss), schedules the data burst on the channel bus respecting the JEDEC
// timing constraints that dominate bandwidth-latency behaviour, and returns
// the completion time. That is the level of detail the Mess methodology is
// sensitive to; per-command bus arbitration below that granularity changes
// nothing the benchmark can observe.
package dram

import (
	"fmt"

	"github.com/mess-sim/mess/internal/sim"
)

// Timing holds the device timing constraints, already converted to the
// picosecond time base. Fields follow JEDEC naming with the leading "t"
// dropped.
type Timing struct {
	TCK   sim.Time // clock period
	Burst sim.Time // data-bus occupancy per 64-byte transfer
	CL    sim.Time // CAS (column access) latency
	RCD   sim.Time // ACT→CAS
	RP    sim.Time // PRE→ACT
	RAS   sim.Time // ACT→PRE minimum
	WR    sim.Time // write recovery (end of write data → PRE)
	WTR   sim.Time // write→read turnaround (bus-level penalty applied here)
	RTW   sim.Time // read→write turnaround
	RTP   sim.Time // read→PRE
	CCD   sim.Time // CAS→CAS, same bank group (burst gap)
	RRD   sim.Time // ACT→ACT, same rank
	FAW   sim.Time // four-activate window, per rank
	REFI  sim.Time // refresh interval
	RFC   sim.Time // refresh cycle time (rank blocked)
}

// Config describes one memory system: device geometry, timing, and
// controller policy knobs.
type Config struct {
	Name     string
	Channels int
	Ranks    int // per channel
	Banks    int // per rank
	RowBytes int // row-buffer size per bank

	Timing Timing

	// Controller policy.
	WriteHi      int      // write-queue depth that triggers a drain
	WriteLo      int      // drain until the queue falls to this depth
	IdleClose    sim.Time // open row auto-precharges after this idle time (0 = open-page forever)
	CtrlLatency  sim.Time // fixed front-end + PHY latency added to read completions
	FRFCFSWindow int      // how deep FR-FCFS scans for a row hit
	XORBankRow   bool     // XOR bank index with low row bits (conflict spreading)
	// BypassCap bounds how many times the oldest read may be bypassed by
	// row hits before it is served unconditionally. This is the
	// anti-starvation mechanism of the scheduler; it bounds a victim's
	// queueing at ≈ BypassCap × Burst while costing at most one row-miss
	// service per BypassCap hits.
	BypassCap int
	// AgeCap, when positive, enables age-based priority escalation: a
	// request bypassed by row hits for longer than AgeCap plus the
	// FIFO-fair drain time of the queue is served first-come-first-
	// served. Escalation trades saturated bandwidth for a tighter
	// maximum-latency bound; the platform presets leave it disabled, as
	// the hit-first schedule reproduces the measured curve shapes.
	AgeCap sim.Time
	// NoFusion disables decide-event fusion: every controller decision
	// round-trips through a scheduled event instead of looping inline when
	// it would be the engine's next event anyway. Fusion is legal exactly
	// because it cannot change results — command sequence, timing and
	// statistics are identical either way (enforced by the fig2 golden-CSV
	// determinism test, which runs both settings) — so this knob exists
	// only for that A/B validation and for isolating scheduler bugs.
	NoFusion bool
	// NoCompBatch disables completion batching: under saturated ladders the
	// event blocking decide fusion is usually one of the channel's own
	// scheduled completions, which the decide loop can fire inline (the
	// pre-claimed decide event keeps the engine's (at, seq) order exact)
	// and keep looping. Like NoFusion this is observationally neutral by
	// construction, enforced by the same determinism test, and exists only
	// for A/B validation and bug isolation.
	NoCompBatch bool
}

// Validate reports a descriptive error for an unusable configuration.
func (c *Config) Validate() error {
	switch {
	case c.Channels <= 0:
		return fmt.Errorf("dram: config %q: channels must be positive, got %d", c.Name, c.Channels)
	case c.Ranks <= 0:
		return fmt.Errorf("dram: config %q: ranks must be positive, got %d", c.Name, c.Ranks)
	case c.Banks <= 0:
		return fmt.Errorf("dram: config %q: banks must be positive, got %d", c.Name, c.Banks)
	case c.RowBytes <= 0 || c.RowBytes%64 != 0:
		return fmt.Errorf("dram: config %q: row bytes must be a positive multiple of 64, got %d", c.Name, c.RowBytes)
	case c.Timing.Burst <= 0:
		return fmt.Errorf("dram: config %q: burst time must be positive", c.Name)
	case c.Timing.CL <= 0 || c.Timing.RCD <= 0 || c.Timing.RP <= 0:
		return fmt.Errorf("dram: config %q: CL/RCD/RP must be positive", c.Name)
	}
	return nil
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.WriteHi == 0 {
		out.WriteHi = 24
	}
	if out.WriteLo == 0 {
		out.WriteLo = 8
	}
	if out.FRFCFSWindow == 0 {
		out.FRFCFSWindow = 64
	}
	if out.BypassCap == 0 {
		out.BypassCap = 64
	}
	return out
}

// PeakBandwidthGBs reports the theoretical channel-bus bandwidth of the whole
// system in GB/s: one 64-byte burst per Burst interval per channel.
func (c *Config) PeakBandwidthGBs() float64 {
	return float64(c.Channels) * 64 / c.Timing.Burst.Seconds() / 1e9
}

func ns(v float64) sim.Time { return sim.FromNanoseconds(v) }

// DDR4 returns a DDR4 configuration for the given transfer rate in MT/s
// (2666 or 3200 are the rates used in the paper's platforms).
func DDR4(mts int, channels, ranks int) Config {
	tck := 2000.0 / float64(mts) // ns; DDR: two transfers per clock
	t := Timing{
		TCK:   ns(tck),
		Burst: ns(4 * tck), // BL8 on a 64-bit bus: 8 beats = 4 clocks per 64 B
		CL:    ns(13.75),
		RCD:   ns(13.75),
		RP:    ns(13.75),
		RAS:   ns(32),
		WR:    ns(15),
		WTR:   ns(9),
		RTW:   ns(4),
		RTP:   ns(7.5),
		CCD:   ns(5 * tck),
		RRD:   ns(4.9),
		FAW:   ns(21),
		REFI:  ns(7800),
		RFC:   ns(350),
	}
	if mts <= 2666 {
		t.CL, t.RCD, t.RP = ns(14.25), ns(14.25), ns(14.25)
		t.FAW = ns(25)
	}
	return Config{
		Name:     fmt.Sprintf("DDR4-%d", mts),
		Channels: channels,
		Ranks:    ranks,
		Banks:    16,
		RowBytes: 8192,
		Timing:   t,
	}
}

// DDR5 returns a DDR5 configuration for the given transfer rate in MT/s
// (4800 or 5600 in the paper). Each physical DIMM channel is modelled as its
// two independent 32-bit subchannels, each delivering a 64-byte line per
// BL16 burst, so pass dimms as the number of DIMM channels; the model uses
// 2×dimms independent channels.
func DDR5(mts int, dimms, ranks int) Config {
	tck := 2000.0 / float64(mts)
	t := Timing{
		TCK:   ns(tck),
		Burst: ns(8 * tck), // BL16 on a 32-bit subchannel: 64 B per 8 clocks
		CL:    ns(16.7),
		RCD:   ns(16.7),
		RP:    ns(16.7),
		RAS:   ns(32),
		WR:    ns(30),
		WTR:   ns(10),
		RTW:   ns(4),
		RTP:   ns(7.5),
		CCD:   ns(8 * tck),
		RRD:   ns(2.5),
		FAW:   ns(13.3),
		REFI:  ns(3900),
		RFC:   ns(295),
	}
	return Config{
		Name:     fmt.Sprintf("DDR5-%d", mts),
		Channels: 2 * dimms,
		Ranks:    ranks,
		Banks:    32,
		RowBytes: 8192,
		Timing:   t,
	}
}

// HBM2 returns an HBM2 configuration with the given number of 128-bit
// channels (32 GB/s each; the paper's A64FX uses 32 channels across four
// stacks for 1024 GB/s).
func HBM2(channels int) Config {
	t := Timing{
		TCK:   ns(1.0),
		Burst: ns(2.0), // BL4 on 128-bit: 64 B per 2 clocks
		CL:    ns(14),
		RCD:   ns(14),
		RP:    ns(14),
		RAS:   ns(33),
		WR:    ns(16),
		WTR:   ns(8),
		RTW:   ns(3),
		RTP:   ns(7.5),
		CCD:   ns(2),
		RRD:   ns(4),
		FAW:   ns(16),
		REFI:  ns(3900),
		RFC:   ns(260),
	}
	return Config{
		Name:     "HBM2",
		Channels: channels,
		Ranks:    1,
		Banks:    16,
		RowBytes: 2048,
		Timing:   t,
	}
}

// HBM2E returns an HBM2E configuration with the given number of channels.
// The H100 platform in the paper reaches 1631 GB/s; with 32 channels this
// preset delivers 64 B per 1.256 ns per channel ≈ 1631 GB/s aggregate.
func HBM2E(channels int) Config {
	cfg := HBM2(channels)
	cfg.Name = "HBM2E"
	cfg.Timing.TCK = ns(0.628)
	cfg.Timing.Burst = ns(1.256)
	cfg.Timing.CCD = ns(1.256)
	return cfg
}
