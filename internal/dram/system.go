package dram

import (
	"fmt"

	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// System is a complete multi-channel memory system. It implements
// mem.Backend: requests are mapped to a channel and scheduled there.
type System struct {
	eng    *sim.Engine
	cfg    Config
	mapper Mapper
	chans  []*channel
}

// New builds a memory system on the given engine. It panics on an invalid
// configuration (configurations are code, not user input).
func New(eng *sim.Engine, cfg Config) *System {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &System{eng: eng, cfg: cfg, mapper: NewMapper(&cfg)}
	s.chans = make([]*channel, cfg.Channels)
	for i := range s.chans {
		s.chans[i] = newChannel(eng, &s.cfg, i)
	}
	return s
}

// Config reports the system configuration.
func (s *System) Config() Config { return s.cfg }

// PeakBandwidthGBs reports the theoretical maximum bandwidth.
func (s *System) PeakBandwidthGBs() float64 { return s.cfg.PeakBandwidthGBs() }

// Access submits one transaction, taking ownership of the request. Its
// completion fires at data return for reads, or at controller acceptance
// for (posted) writes; the record returns to its pool either way.
func (s *System) Access(req *mem.Request) {
	ch, bi, rank, row := s.mapper.mapReq(req.Addr)
	s.chans[ch].enqueue(req, bi, rank, row)
}

// AccessAt submits one transaction for delivery at absolute time at — the
// backend-routed form of the issuer's SendAt hop (mem.TimedBackend). On the
// single-engine system this schedules the same delivery event the issuer
// would have; it exists so issuers drive this system and the sharded one
// through one code path.
func (s *System) AccessAt(req *mem.Request, at sim.Time) {
	req.SendAt(s.eng, s, at)
}

// Counters reports accumulated system-wide traffic counters, the model
// equivalent of the uncore bandwidth counters the Mess benchmark samples.
func (s *System) Counters() mem.Counters {
	var total mem.Counters
	for _, c := range s.chans {
		total.Merge(c.counters)
	}
	return total
}

// RowStats reports accumulated row-buffer hit/empty/miss statistics.
func (s *System) RowStats() RowStats {
	var total RowStats
	for _, c := range s.chans {
		total.Hits += c.rowStats.Hits
		total.Empties += c.rowStats.Empties
		total.Misses += c.rowStats.Misses
	}
	return total
}

// Queued reports the number of requests currently waiting in controller
// queues, for back-pressure diagnostics.
func (s *System) Queued() int {
	n := 0
	for _, c := range s.chans {
		n += c.queued()
	}
	return n
}

// ObservedReadLatency reports the mean controller-level read latency.
func (s *System) ObservedReadLatency() (sim.Time, uint64) {
	var sum sim.Time
	var n uint64
	for _, c := range s.chans {
		sum += c.readLatSum
		n += c.readLatN
	}
	if n == 0 {
		return 0, 0
	}
	return sum / sim.Time(n), n
}

func (s *System) String() string {
	return fmt.Sprintf("%s ×%d channels (peak %.1f GB/s)", s.cfg.Name, s.cfg.Channels, s.PeakBandwidthGBs())
}

var _ mem.Backend = (*System)(nil)
var _ mem.TimedBackend = (*System)(nil)
var _ mem.LatencyObserver = (*System)(nil)
