package dram

import (
	"math/bits"

	"github.com/mess-sim/mess/internal/mem"
)

// Loc is a physical location in the memory system.
type Loc struct {
	Channel int
	Rank    int
	Bank    int
	Row     int64
	Col     int // line index within the row
}

// Mapper translates physical addresses to device locations. The order is the
// common RoRaBaCoCh layout: cache-line interleaving across channels first
// (low bits), then columns within a row, then banks, ranks and rows. This
// gives a sequential stream channel-level parallelism and strong row-buffer
// locality within each channel — the behaviour the Mess traffic generator
// relies on — while independent streams collide on banks, which is what
// degrades the hit rate under load (Sec. III of the paper).
type Mapper struct {
	Channels    int
	Ranks       int
	Banks       int
	LinesPerRow int
	XORBankRow  bool

	// Shift widths when the corresponding dimension is a power of two
	// (-1 otherwise). Map runs once per transaction on the hottest entry
	// point of the memory system; every preset geometry except the
	// channel count is a power of two, and the shift form removes three
	// hardware divisions per call.
	colShift, bankShift, rankShift int8
}

// NewMapper builds a Mapper from a configuration.
func NewMapper(cfg *Config) Mapper {
	m := Mapper{
		Channels:    cfg.Channels,
		Ranks:       cfg.Ranks,
		Banks:       cfg.Banks,
		LinesPerRow: cfg.RowBytes / mem.LineSize,
		XORBankRow:  cfg.XORBankRow,
	}
	m.colShift = pow2Shift(m.LinesPerRow)
	m.bankShift = pow2Shift(m.Banks)
	m.rankShift = pow2Shift(m.Ranks)
	return m
}

func pow2Shift(v int) int8 {
	if v > 0 && v&(v-1) == 0 {
		return int8(bits.TrailingZeros64(uint64(v)))
	}
	return -1
}

// mapReq is the controller-path form of Map: it resolves only what the
// scheduler stores per request (channel, flat bank index, rank, row),
// skipping the column and the Loc copies of the general form.
func (m *Mapper) mapReq(addr uint64) (ch int, bi int32, rank int32, row int64) {
	line := addr / mem.LineSize
	ch = int(line % uint64(m.Channels))
	line /= uint64(m.Channels)
	var bank int
	if m.colShift >= 0 && m.bankShift >= 0 && m.rankShift >= 0 {
		line >>= uint(m.colShift)
		bank = int(line & uint64(m.Banks-1))
		line >>= uint(m.bankShift)
		rank = int32(line & uint64(m.Ranks-1))
		line >>= uint(m.rankShift)
	} else {
		line /= uint64(m.LinesPerRow)
		bank = int(line % uint64(m.Banks))
		line /= uint64(m.Banks)
		rank = int32(line % uint64(m.Ranks))
		line /= uint64(m.Ranks)
	}
	row = int64(line)
	if m.XORBankRow {
		bank = int((uint64(bank) ^ uint64(row)) % uint64(m.Banks))
	}
	return ch, int32(rank)*int32(m.Banks) + int32(bank), rank, row
}

// Map resolves addr to its location.
func (m Mapper) Map(addr uint64) Loc {
	line := addr / mem.LineSize
	ch := int(line % uint64(m.Channels))
	line /= uint64(m.Channels)
	var col, bank, rank int
	if m.colShift >= 0 && m.bankShift >= 0 && m.rankShift >= 0 {
		col = int(line & uint64(m.LinesPerRow-1))
		line >>= uint(m.colShift)
		bank = int(line & uint64(m.Banks-1))
		line >>= uint(m.bankShift)
		rank = int(line & uint64(m.Ranks-1))
		line >>= uint(m.rankShift)
	} else {
		col = int(line % uint64(m.LinesPerRow))
		line /= uint64(m.LinesPerRow)
		bank = int(line % uint64(m.Banks))
		line /= uint64(m.Banks)
		rank = int(line % uint64(m.Ranks))
		line /= uint64(m.Ranks)
	}
	row := int64(line)
	if m.XORBankRow {
		bank = int((uint64(bank) ^ uint64(row)) % uint64(m.Banks))
	}
	return Loc{Channel: ch, Rank: rank, Bank: bank, Row: row, Col: col}
}

// BankRow resolves addr to a globally flat bank index (channel, rank and
// bank folded into one number) and its row — the projection trace
// fingerprinting needs to estimate row-buffer locality under this
// geometry without simulating the controller. The signature matches
// trace.SampleConfig.BankRow.
func (m Mapper) BankRow(addr uint64) (bank int, row int64) {
	l := m.Map(addr)
	return (l.Channel*m.Ranks+l.Rank)*m.Banks + l.Bank, l.Row
}

// Unmap is the inverse of Map for non-XOR mappings; it reconstructs the
// lowest address of the line at the location. It exists to support
// property-based testing of bijectivity.
func (m Mapper) Unmap(l Loc) uint64 {
	line := uint64(l.Row)
	line = line*uint64(m.Ranks) + uint64(l.Rank)
	line = line*uint64(m.Banks) + uint64(l.Bank)
	line = line*uint64(m.LinesPerRow) + uint64(l.Col)
	line = line*uint64(m.Channels) + uint64(l.Channel)
	return line * mem.LineSize
}
