package dram

import "github.com/mess-sim/mess/internal/mem"

// Loc is a physical location in the memory system.
type Loc struct {
	Channel int
	Rank    int
	Bank    int
	Row     int64
	Col     int // line index within the row
}

// Mapper translates physical addresses to device locations. The order is the
// common RoRaBaCoCh layout: cache-line interleaving across channels first
// (low bits), then columns within a row, then banks, ranks and rows. This
// gives a sequential stream channel-level parallelism and strong row-buffer
// locality within each channel — the behaviour the Mess traffic generator
// relies on — while independent streams collide on banks, which is what
// degrades the hit rate under load (Sec. III of the paper).
type Mapper struct {
	Channels    int
	Ranks       int
	Banks       int
	LinesPerRow int
	XORBankRow  bool
}

// NewMapper builds a Mapper from a configuration.
func NewMapper(cfg *Config) Mapper {
	return Mapper{
		Channels:    cfg.Channels,
		Ranks:       cfg.Ranks,
		Banks:       cfg.Banks,
		LinesPerRow: cfg.RowBytes / mem.LineSize,
		XORBankRow:  cfg.XORBankRow,
	}
}

// Map resolves addr to its location.
func (m Mapper) Map(addr uint64) Loc {
	line := addr / mem.LineSize
	ch := int(line % uint64(m.Channels))
	line /= uint64(m.Channels)
	col := int(line % uint64(m.LinesPerRow))
	line /= uint64(m.LinesPerRow)
	bank := int(line % uint64(m.Banks))
	line /= uint64(m.Banks)
	rank := int(line % uint64(m.Ranks))
	row := int64(line / uint64(m.Ranks))
	if m.XORBankRow {
		bank = int((uint64(bank) ^ uint64(row)) % uint64(m.Banks))
	}
	return Loc{Channel: ch, Rank: rank, Bank: bank, Row: row, Col: col}
}

// Unmap is the inverse of Map for non-XOR mappings; it reconstructs the
// lowest address of the line at the location. It exists to support
// property-based testing of bijectivity.
func (m Mapper) Unmap(l Loc) uint64 {
	line := uint64(l.Row)
	line = line*uint64(m.Ranks) + uint64(l.Rank)
	line = line*uint64(m.Banks) + uint64(l.Bank)
	line = line*uint64(m.LinesPerRow) + uint64(l.Col)
	line = line*uint64(m.Channels) + uint64(l.Channel)
	return line * mem.LineSize
}
