package dram

import (
	"math/bits"

	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// RowStats counts row-buffer outcomes, mirroring the hardware counters the
// paper reads on Cascade Lake (Sec. IV-D, Fig. 7).
type RowStats struct {
	Hits    uint64
	Empties uint64
	Misses  uint64
}

// Total reports the number of classified accesses.
func (s RowStats) Total() uint64 { return s.Hits + s.Empties + s.Misses }

// Ratios reports the hit/empty/miss fractions; an empty window reports zeros.
func (s RowStats) Ratios() (hit, empty, miss float64) {
	t := s.Total()
	if t == 0 {
		return 0, 0, 0
	}
	return float64(s.Hits) / float64(t), float64(s.Empties) / float64(t), float64(s.Misses) / float64(t)
}

// Sub returns the difference s − prev.
func (s RowStats) Sub(prev RowStats) RowStats {
	return RowStats{Hits: s.Hits - prev.Hits, Empties: s.Empties - prev.Empties, Misses: s.Misses - prev.Misses}
}

func (s *RowStats) add(o rowOutcome) {
	switch o {
	case rowHit:
		s.Hits++
	case rowEmpty:
		s.Empties++
	default:
		s.Misses++
	}
}

type rowOutcome uint8

const (
	rowHit rowOutcome = iota
	rowEmpty
	rowMiss
)

type bank struct {
	openRow    int64    // -1 when closed
	actAt      sim.Time // time of the last ACT
	casReadyAt sim.Time // earliest next CAS issue
	preReadyAt sim.Time // earliest precharge
	actReadyAt sim.Time // earliest next ACT (set when a precharge is committed)
	lastTouch  sim.Time // end of the last data burst (drives idle auto-close)
	// availUntil is the last instant the open row is still usable: the
	// earlier of the idle-close deadline and the instant before the first
	// refresh window start after lastTouch. Both are functions of
	// lastTouch alone, so they are computed once when the bank is touched
	// instead of on every scheduler query — the row-availability test the
	// decide scan runs per candidate bank collapses to one comparison.
	availUntil sim.Time
}

// Queue directions. Reads and writes wait in separate queues (the drain
// watermarks pick between them), so every per-bank structure exists once
// per direction.
const (
	dirRead = iota
	dirWrite
	dirCount
)

// chanReq is one queued transaction, resident in the channel's slot store.
// Slots are reused through a free list; a slot stays allocated from enqueue
// until its FIFO position drains out of the ring (an issued mid-queue entry
// becomes a tombstone — queued=false — until the ring head passes it), so a
// ring entry always names a valid slot.
type chanReq struct {
	req    *mem.Request
	at     sim.Time // arrival at the controller
	seq    uint64   // arrival order; the FR-FCFS age tiebreak
	row    int64
	bi     int32 // bank index: rank*Banks+bank
	rank   int32
	prev   int32 // per-bank FIFO links (-1 = none)
	next   int32 // doubles as the free-list link
	queued bool
}

// reqRing is a growable power-of-two ring buffer of slot indices in arrival
// order. Push never memmoves; mid-queue removal is a tombstone skipped (and
// reclaimed) when the head reaches it, so the per-issue queue cost is O(1)
// amortized instead of the O(n) delete of a slice queue.
type reqRing struct {
	buf  []int32
	head int
	n    int // entries, tombstones included
}

func (r *reqRing) push(idx int32) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = idx
	r.n++
}

func (r *reqRing) grow() {
	nc := 2 * len(r.buf)
	if nc == 0 {
		nc = 64
	}
	nb := make([]int32, nc)
	mask := len(r.buf) - 1
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&mask]
	}
	r.buf, r.head = nb, 0
}

func (r *reqRing) at(pos int) int32 { return r.buf[(r.head+pos)&(len(r.buf)-1)] }

func (r *reqRing) pop() int32 {
	idx := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return idx
}

// compactRing rewrites the ring without its tombstones, freeing their
// slots and renumbering the survivors' arrival sequence densely (relative
// order, which is all FR-FCFS age comparisons use, is preserved). Dead
// entries inflate the arrival distance the window check reasons with,
// pushing it onto its walk fallback; after compaction distance equals
// position again. Triggered when tombstones dominate; amortized O(1) per
// issued request.
func (c *channel) compactRing(dir int) {
	r := &c.queues[dir]
	mask := len(r.buf) - 1
	out := 0
	seq := uint64(0)
	for i := 0; i < r.n; i++ {
		idx := r.buf[(r.head+i)&mask]
		s := &c.slots[idx]
		if !s.queued {
			c.freeSlot(idx)
			continue
		}
		s.seq = seq
		seq++
		r.buf[(r.head+out)&mask] = idx
		out++
	}
	r.n = out
	c.arrival[dir] = seq
	for b := range c.bq[dir] {
		if bl := &c.bq[dir][b]; bl.match >= 0 {
			bl.matchSeq = c.slots[bl.match].seq
		}
	}
}

// handleRing is a growable power-of-two ring of event handles, the
// completion-tracking analogue of reqRing.
type handleRing struct {
	buf  []sim.Handle
	head int
	n    int
}

func (r *handleRing) push(h sim.Handle) {
	if r.n == len(r.buf) {
		nc := 2 * len(r.buf)
		if nc == 0 {
			nc = 16
		}
		nb := make([]sim.Handle, nc)
		mask := len(r.buf) - 1
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[(r.head+i)&mask]
		}
		r.buf, r.head = nb, 0
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = h
	r.n++
}

func (r *handleRing) peek() sim.Handle { return r.buf[r.head] }

func (r *handleRing) pop() {
	r.buf[r.head] = sim.Handle{}
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
}

// bankList is the FIFO of pending requests of one (bank, direction),
// threaded through the slot store, plus the incremental row-match state:
// match is the oldest pending request whose row equals the bank's open row
// (-1 when none), mirrored as one bit per bank in the channel's match
// bitmap. The bitmap is maintained on enqueue and issue: activates rescan
// the bank, hits advance to the next match. Rows closed by refresh or the
// idle timer are handled by the separate availability mask — a match bit
// may persist on a closed bank; the pick scan intersects the two words.
type bankList struct {
	head, tail int32
	match      int32
	matchSeq   uint64 // slots[match].seq, mirrored so the pick scan stays on this contiguous array
	openRow    int64  // banks[bi].openRow, mirrored so enqueue/detach stay on this contiguous array
}

// channel is one memory channel: its banks, its request queues and its
// scheduler state. Channels are driven by decide events: at most one pending
// decide event exists per channel, scheduled shortly before the data bus
// frees so the scheduler can still reorder late-arriving row hits. When the
// channel's own next decide would also be the engine's next event, the
// decide loop runs it inline (decide-event fusion) instead of round-tripping
// through the scheduler — identical ordering by construction.
type channel struct {
	eng *sim.Engine
	cfg *Config
	t   *Timing

	banks     []bank       // ranks × banks
	actHist   [][]sim.Time // per rank: last 4 ACT times (tFAW window)
	lastAct   []sim.Time   // per rank: last ACT (tRRD)
	refOffset []sim.Time   // per rank: first refresh window start
	refNext   []sim.Time   // per rank: refWindowStart cursor

	busFreeAt   sim.Time
	lastIsW     bool
	haveDir     bool
	lastCASBank int32 // rank*banks+bank of the last CAS, -1 initially

	slots    []chanReq
	freeHead int32
	arrival  [dirCount]uint64 // next chanReq.seq, per queue

	queues [dirCount]reqRing
	live   [dirCount]int // live (non-tombstone) entries per queue

	bq        [dirCount][]bankList
	matchBits [dirCount][]uint64

	// availMask mirrors rowAvail over banks: bit set ⇒ the bank's open row
	// is usable at any t ≤ availSweepAt. Bits are set when a bank is
	// touched; expiry (idle-close, refresh) is swept lazily the first time
	// a decide runs past the watermark, so the pick scan intersects two
	// words instead of probing per-bank state per candidate.
	availMask    []uint64
	availSweepAt sim.Time

	lookahead sim.Time // RP+RCD+CL, the decide lead time before the bus frees

	draining   bool
	drainCount int // writes served in the current drain episode

	readHead       *mem.Request // current head of the read queue
	readHeadBypass int          // times the head was bypassed by row hits

	decidePending bool
	decideAt      sim.Time
	decideFn      func() // stored once: kick schedules it without a fresh closure

	// compRing retains handles to the channel's own scheduled completion
	// events, one ring per direction (each is monotonic in deadline: burst
	// ends strictly increase, and read completions add a constant on top).
	// The decide loop uses them to recognise when the event blocking fusion
	// is one of its own completions and fire it inline via StepIf. Handles
	// whose events the engine already served are pruned lazily on push.
	compRing [dirCount]handleRing

	// complete, when set, replaces CompleteAtTagged as the completion
	// path: the sharded system installs a hook that transmits the
	// request's prebuilt fire closure back to its home shard, so Done and
	// the pool release always run on the pool's own goroutine.
	complete func(req *mem.Request, at sim.Time)

	// tag is the channel's entity tag (global channel index + 1): every
	// event the channel schedules — decides and completions — carries it,
	// so equal-instant ties against other channels and against untagged
	// home events resolve by tag, identically sharded or not.
	tag int32

	counters mem.Counters
	rowStats RowStats

	readLatSum sim.Time
	readLatN   uint64
}

func newChannel(eng *sim.Engine, cfg *Config, chIdx int) *channel {
	nbanks := cfg.Ranks * cfg.Banks
	c := &channel{
		eng:       eng,
		cfg:       cfg,
		t:         &cfg.Timing,
		banks:     make([]bank, nbanks),
		actHist:   make([][]sim.Time, cfg.Ranks),
		lastAct:   make([]sim.Time, cfg.Ranks),
		refOffset: make([]sim.Time, cfg.Ranks),
		refNext:   make([]sim.Time, cfg.Ranks),
		freeHead:  -1,
		tag:       int32(chIdx) + 1,
	}
	for i := range c.banks {
		c.banks[i].openRow = -1
	}
	words := (nbanks + 63) / 64
	c.availMask = make([]uint64, words)
	c.lookahead = cfg.Timing.RP + cfg.Timing.RCD + cfg.Timing.CL
	for dir := 0; dir < dirCount; dir++ {
		c.bq[dir] = make([]bankList, nbanks)
		for b := range c.bq[dir] {
			c.bq[dir][b] = bankList{head: -1, tail: -1, match: -1, openRow: -1}
		}
		c.matchBits[dir] = make([]uint64, words)
	}
	c.decideFn = func() {
		c.decidePending = false
		c.decideLoop()
	}
	c.lastCASBank = -1
	for r := 0; r < cfg.Ranks; r++ {
		c.actHist[r] = make([]sim.Time, 0, 4)
		// No ACT has happened yet: place the "previous" one far enough in
		// the past that tRRD never constrains the first activate.
		c.lastAct[r] = -(cfg.Timing.FAW + cfg.Timing.RRD)
		// Stagger refresh across ranks and channels so refresh storms do
		// not synchronize system-wide.
		c.refOffset[r] = cfg.Timing.REFI * sim.Time(chIdx*cfg.Ranks+r+1) / sim.Time(cfg.Channels*cfg.Ranks+1)
		c.refNext[r] = c.refOffset[r]
	}
	return c
}

// Refresh is modelled analytically rather than with perpetual events:
// rank r is blocked during [refOffset+k·REFI, refOffset+k·REFI+RFC) for
// every k ≥ 0, and each window closes all rows in the rank. Commands that
// would land inside a window slide to its end.

// refreshAdjust pushes t out of any refresh window of the rank.
func (c *channel) refreshAdjust(rank int32, t sim.Time) sim.Time {
	if c.t.REFI <= 0 {
		return t
	}
	off := c.refOffset[rank]
	if t < off {
		return t
	}
	start := c.refWindowStart(rank, t)
	if t < start+c.t.RFC {
		return start + c.t.RFC
	}
	return t
}

// refWindowStart reports the latest refresh window start ≤ t for the rank
// (callers guarantee REFI > 0 and t ≥ refOffset). A per-rank cursor caches
// the last window found: command times trail the bus time closely, so the
// cursor moves at most a step or two per query, replacing the division of
// the closed form; a long idle gap falls back to the division.
func (c *channel) refWindowStart(rank int32, t sim.Time) sim.Time {
	refi := c.t.REFI
	start := c.refNext[rank]
	if d := t - start; d < -4*refi || d > 4*refi {
		off := c.refOffset[rank]
		start = off + (t-off)/refi*refi
		c.refNext[rank] = start
		return start
	}
	for start > t {
		start -= refi
	}
	for t-start >= refi {
		start += refi
	}
	c.refNext[rank] = start
	return start
}

// Slot store.

func (c *channel) allocSlot() int32 {
	if c.freeHead >= 0 {
		idx := c.freeHead
		c.freeHead = c.slots[idx].next
		return idx
	}
	c.slots = append(c.slots, chanReq{})
	return int32(len(c.slots) - 1)
}

func (c *channel) freeSlot(idx int32) {
	s := &c.slots[idx]
	s.req = nil
	s.next = c.freeHead
	c.freeHead = idx
}

func (c *channel) enqueue(req *mem.Request, bi, rank int32, row int64) {
	idx := c.allocSlot()
	s := &c.slots[idx]
	s.req = req
	s.at = c.eng.Now()
	s.row = row
	s.rank = rank
	s.bi = bi
	s.queued = true
	dir := dirRead
	if req.Op == mem.Write {
		// Writes are posted: the core never waits on them. Done still
		// fires when the write drains to the device, so that write-buffer
		// slots upstream provide back-pressure against unbounded queues.
		dir = dirWrite
	}
	s.seq = c.arrival[dir]
	c.arrival[dir]++
	c.queues[dir].push(idx)
	c.live[dir]++
	c.bankAppend(dir, idx)
	c.kick()
}

// bankAppend links the slot at the tail of its bank FIFO and claims the
// match slot when the bank has none and the row matches the open row.
func (c *channel) bankAppend(dir int, idx int32) {
	s := &c.slots[idx]
	bl := &c.bq[dir][s.bi]
	s.prev, s.next = bl.tail, -1
	if bl.tail >= 0 {
		c.slots[bl.tail].next = idx
	} else {
		bl.head = idx
	}
	bl.tail = idx
	if bl.match < 0 && bl.openRow == s.row {
		c.setMatch(dir, s.bi, idx, s.seq)
	}
}

// bankDetach unlinks the slot from its bank FIFO. When the slot was the
// match, the match advances to the next pending request of the (still
// current) open row — correct for row hits; activates rescan afterwards.
func (c *channel) bankDetach(dir int, idx int32) {
	s := &c.slots[idx]
	bl := &c.bq[dir][s.bi]
	if s.prev >= 0 {
		c.slots[s.prev].next = s.next
	} else {
		bl.head = s.next
	}
	if s.next >= 0 {
		c.slots[s.next].prev = s.prev
	} else {
		bl.tail = s.prev
	}
	if bl.match == idx {
		row := bl.openRow
		m := int32(-1)
		var mseq uint64
		for j := s.next; j >= 0; j = c.slots[j].next {
			if c.slots[j].row == row {
				m, mseq = j, c.slots[j].seq
				break
			}
		}
		c.setMatch(dir, s.bi, m, mseq)
	}
}

// rescanBank recomputes both directions' match state against the bank's
// (new) open row — called after an activate changes it.
func (c *channel) rescanBank(bi int32) {
	row := c.banks[bi].openRow
	for dir := 0; dir < dirCount; dir++ {
		c.bq[dir][bi].openRow = row
		m := int32(-1)
		var mseq uint64
		for j := c.bq[dir][bi].head; j >= 0; j = c.slots[j].next {
			if c.slots[j].row == row {
				m, mseq = j, c.slots[j].seq
				break
			}
		}
		c.setMatch(dir, bi, m, mseq)
	}
}

func (c *channel) setMatch(dir int, bi, idx int32, seq uint64) {
	bl := &c.bq[dir][bi]
	bl.match, bl.matchSeq = idx, seq
	bit := uint64(1) << (uint(bi) & 63)
	if idx >= 0 {
		c.matchBits[dir][bi>>6] |= bit
	} else {
		c.matchBits[dir][bi>>6] &^= bit
	}
}

// ringHead reports the oldest live entry of the queue, reclaiming any
// tombstones that have drained to the front. Every issued entry is passed
// exactly once, so the skip cost is O(1) amortized per request.
func (c *channel) ringHead(dir int) int32 {
	r := &c.queues[dir]
	for r.n > 0 {
		idx := r.at(0)
		if c.slots[idx].queued {
			return idx
		}
		r.pop()
		c.freeSlot(idx)
	}
	return -1
}

// kick (re)schedules the decide event. The event is placed a lookahead
// before the bus frees, so the scheduler commits each burst just in time.
func (c *channel) kick() {
	if c.live[dirRead]+c.live[dirWrite] == 0 {
		return
	}
	at := c.decideTime()
	if c.decidePending && c.decideAt <= at {
		return
	}
	c.decidePending = true
	c.decideAt = at
	c.eng.ScheduleTagged(at, c.tag, c.decideFn)
}

func (c *channel) decideTime() sim.Time {
	at := c.busFreeAt - c.lookahead
	if now := c.eng.Now(); at < now {
		at = now
	}
	return at
}

// decideLoop runs decides until the queues drain or the next decide must
// yield to another event. Without fusion every iteration round-trips
// through the scheduler: schedule the decide, fire it, then schedule and
// fire the burst it commits — kernel work that dwarfs the decision itself
// under drains and mid-load plateaus. When the engine's next deadline lies
// beyond the channel's next decide time, that decide would be the next
// event fired anyway, so the loop advances the clock (RunUntil fires
// nothing) and decides inline: the command sequence, timing and statistics
// are identical by construction, with the scheduler hops removed.
//
// Under a saturated read ladder the fusion check usually fails on one of
// the channel's *own* completions (each burst schedules one, landing a
// CtrlLatency behind the decides chasing the bus). Completion batching
// reclaims those decides: the loop pre-claims the decide event it was
// about to schedule — consuming the same sequence number the unfused path
// would, so every later tie breaks identically — then fires its own
// blocking completions inline through StepIf (which refuses unless the
// completion is exactly the engine's head). If the path to the decide time
// clears, the claimed event is cancelled and the loop continues inline;
// if a foreign event still intervenes, the claimed event simply is the
// scheduled decide and the loop yields, exactly as without batching.
func (c *channel) decideLoop() {
	for {
		if !c.decideOnce() {
			return
		}
		if c.live[dirRead]+c.live[dirWrite] == 0 {
			return
		}
		at := c.decideTime()
		if c.cfg.NoFusion {
			c.scheduleDecide(at)
			return
		}
		bound, bok := c.eng.RunBound()
		if bok && at > bound {
			// The decide falls beyond the driving RunUntil's target: it
			// must stay queued, exactly as its event would, so counters
			// sampled at the boundary see identical state.
			c.scheduleDecide(at)
			return
		}
		if nd, ok := c.eng.NextDeadline(); ok && nd <= at {
			// Another event precedes our decide: fusion alone would reorder.
			if c.cfg.NoCompBatch || !bok {
				c.scheduleDecide(at)
				return
			}
			// Claim the decide event first: completions fired below see the
			// same pending-decide state (and engine sequence numbering) the
			// unfused schedule would have produced.
			dh := c.eng.ScheduleTagged(at, c.tag, c.decideFn)
			c.decidePending, c.decideAt = true, at
			cleared := false
			for c.fireOwnCompletion() {
				if nd, ok = c.eng.NextDeadline(); !ok || nd > at {
					cleared = true
					break
				}
			}
			if !cleared {
				// A foreign event (another channel, a core wake) is still in
				// the way: the claimed event stays as the scheduled decide.
				return
			}
			dh.Cancel()
			c.decidePending = false
		}
		c.eng.RunUntil(at) // nothing fires: every pending deadline is later
	}
}

// fireOwnCompletion fires the engine's next event inline if it is one of
// this channel's scheduled completions, reporting whether it did. Handles
// to completions the engine already served prune off the ring heads here
// and on push.
func (c *channel) fireOwnCompletion() bool {
	for dir := 0; dir < dirCount; dir++ {
		r := &c.compRing[dir]
		for r.n > 0 {
			h := r.peek()
			if !h.Pending() {
				r.pop()
				continue
			}
			if c.eng.StepIf(h) {
				r.pop()
				return true
			}
			break
		}
	}
	return false
}

func (c *channel) scheduleDecide(at sim.Time) {
	c.decidePending = true
	c.decideAt = at
	c.eng.ScheduleTagged(at, c.tag, c.decideFn)
}

// decideOnce picks the next request (FR-FCFS within the active direction)
// and commits its data burst on the bus. It reports whether a burst was
// committed.
func (c *channel) decideOnce() bool {
	writes := c.pickDirection()
	dir := dirRead
	if writes {
		dir = dirWrite
	}
	if c.live[dir] == 0 {
		c.kick()
		return false
	}
	head := c.ringHead(dir)
	idx := c.pick(dir, head)
	s := &c.slots[idx]
	s.queued = false
	c.live[dir]--
	c.bankDetach(dir, idx)
	popped := idx == head
	if popped {
		c.queues[dir].pop()
		if dir == dirRead {
			// The tracked head is leaving the queue: drop the reference now.
			// Holding it past issue would alias a recycled pool record — a
			// new request reusing this record could inherit the dead head's
			// bypass count.
			c.readHead = nil
			c.readHeadBypass = 0
		}
	}
	c.issue(idx, writes)
	if popped {
		c.freeSlot(idx) // a mid-queue pick instead becomes a ring tombstone
	} else if r := &c.queues[dir]; r.n-c.live[dir] > 64 && r.n > 2*c.live[dir] {
		c.compactRing(dir)
	}
	return true
}

// pickDirection applies write-drain watermarks: reads have priority; a
// write drain starts when the write queue reaches WriteHi (or reads run
// dry) and continues down to WriteLo. A drain episode is additionally
// bounded: under a sustained write flood, posted writebacks refill the
// queue as fast as it drains and the low watermark is never reached, which
// would starve reads forever. Real controllers bound write bursts for the
// same reason.
func (c *channel) pickDirection() bool {
	if c.draining {
		switch {
		case c.live[dirWrite] <= c.cfg.WriteLo || c.live[dirWrite] == 0:
			c.draining = false
		case c.drainCount >= 2*c.cfg.WriteHi && c.live[dirRead] > 0:
			// Yield to the waiting reads immediately; the drain (and its
			// episode counter) restarts on the next decision.
			c.draining = false
			return false
		default:
			c.drainCount++
			return true
		}
	}
	if c.live[dirRead] == 0 {
		return c.live[dirWrite] > 0
	}
	if c.live[dirWrite] >= c.cfg.WriteHi {
		c.draining = true
		c.drainCount = 1
		return true
	}
	return false
}

// pick returns the slot to issue next: the oldest row-hit in a different
// bank than the previous CAS if one exists (bank-group interleaving hides
// tCCD_L, which is how real controllers keep the bus saturated), otherwise
// the oldest row-hit, otherwise the oldest request.
//
// Unfairness is bounded by a bypass count, not by age: the read-queue head
// may be bypassed by row hits at most BypassCap times before it is served
// unconditionally. A count bound is self-stabilizing — it costs at most one
// row-miss service per BypassCap hits regardless of load, unlike time-based
// aging, which under saturation escalates everything and collapses row-hit
// batching (and with it, bandwidth).
//
// The scan is incremental: instead of walking the queue window per decide,
// the per-bank match bitmap names exactly the banks holding a pending
// request to their open row; the oldest-arrival winner among the available
// ones is the pick. The FRFCFSWindow bound on reorder depth is preserved
// exactly: the per-bank match is the oldest hit of its bank, so the global
// oldest hit — and any hit inside the first FRFCFSWindow queue entries — is
// always some bank's match. A candidate only needs its queue position
// checked when the queue is deeper than the window, and even then the check
// is O(1) whenever arrival-sequence distance from the head already proves
// membership (positions count live entries, sequence distance also counts
// issued ones, so distance bounds position from above).
func (c *channel) pick(dir int, head int32) int32 {
	live := c.live[dir]
	now := c.eng.Now()
	hs := &c.slots[head]
	isRead := dir == dirRead
	if isRead {
		if hs.req != c.readHead {
			c.readHead = hs.req
			c.readHeadBypass = 0
		}
		if c.cfg.BypassCap > 0 && c.readHeadBypass >= c.cfg.BypassCap {
			return head
		}
	}
	// Optional time-based escalation (disabled in the presets; see the
	// AgeCap documentation).
	if c.cfg.AgeCap > 0 {
		bound := c.cfg.AgeCap + sim.Time(live)*c.t.Burst
		if now-hs.at > bound {
			return head
		}
	}
	if live == 1 {
		// Only the head is eligible; the scan could pick nothing else (a
		// hit-pick of the head reports no bypass either way). This is the
		// common case across the low-pressure half of every sweep.
		return head
	}
	if now > c.availSweepAt {
		c.sweepAvail(now)
	}
	var best, lastCand int32 = -1, -1
	var bestSeq uint64
	for w, word := range c.matchBits[dir] {
		word &= c.availMask[w] // hits only count on banks whose row is still usable
		for word != 0 {
			bi := int32(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
			bl := &c.bq[dir][bi]
			if bi == c.lastCASBank {
				lastCand = bl.match
				continue
			}
			if best < 0 || bl.matchSeq < bestSeq {
				best, bestSeq = bl.match, bl.matchSeq
			}
		}
	}
	windowed := live > c.cfg.FRFCFSWindow
	choice := head
	hit := false
	switch {
	// If the oldest different-bank hit is beyond the window, every
	// different-bank hit is (younger hits sit even deeper), and the
	// same-bank candidate decides; likewise from there to the head.
	case best >= 0 && (!windowed || c.inWindow(dir, best, head)):
		choice, hit = best, true
	case lastCand >= 0 && (!windowed || c.inWindow(dir, lastCand, head)):
		choice, hit = lastCand, true
	}
	if isRead && hit && choice != head {
		c.readHeadBypass++
	}
	return choice
}

// inWindow reports whether the slot sits among the first FRFCFSWindow live
// entries of its queue. Sequence numbers are per queue, so the distance to
// the head counts exactly the ring entries between them: the position is
// that distance minus the tombstones among those entries. Distance below
// the window proves membership; distance that stays at or above the window
// after discounting every tombstone in the queue proves the opposite. In
// the band between, the ring is compacted — an O(n) pass like the walk it
// replaces, but it renumbers distance back to position, so decisions stay
// O(1) until tombstones accumulate again.
func (c *channel) inWindow(dir int, idx, head int32) bool {
	limit := uint64(c.cfg.FRFCFSWindow)
	dist := c.slots[idx].seq - c.slots[head].seq
	if dist < limit {
		return true
	}
	r := &c.queues[dir]
	if dist >= limit+uint64(r.n-c.live[dir]) {
		return false
	}
	c.compactRing(dir)
	return c.slots[idx].seq-c.slots[head].seq < limit
}

// rowAvail reports whether the bank's open row is still usable at t: it
// must not have auto-precharged after the idle-close timeout (adaptive
// page policy) and must not have been closed by an intervening refresh.
// Both deadlines were folded into availUntil when the bank was last
// touched.
func (c *channel) rowAvail(bi int32, t sim.Time) bool {
	bk := &c.banks[bi]
	return bk.openRow >= 0 && t <= bk.availUntil
}

// sweepAvail retires expired banks from the availability mask and advances
// the watermark to the earliest remaining expiry. It runs only when a
// decide crosses the watermark — under load, banks are re-touched long
// before they expire, so sweeps are rare.
func (c *channel) sweepAvail(now sim.Time) {
	const never = sim.Time(1) << 62
	min := never
	for w, word := range c.availMask {
		for rest := word; rest != 0; {
			bi := int32(w<<6 + bits.TrailingZeros64(rest))
			rest &= rest - 1
			until := c.banks[bi].availUntil
			if until < now {
				word &^= 1 << (uint(bi) & 63)
			} else if until < min {
				min = until
			}
		}
		c.availMask[w] = word
	}
	c.availSweepAt = min
}

// touchBank stamps the end of a data burst on the bank and recomputes its
// availability deadline: the idle-close timeout, capped by the instant
// before the first refresh window start after the touch (that refresh
// closes the row; commands at the window start itself already see it
// closed).
func (c *channel) touchBank(bi int32, rank int32, at sim.Time) {
	bk := &c.banks[bi]
	bk.lastTouch = at
	const never = sim.Time(1) << 62
	until := never
	if c.cfg.IdleClose > 0 {
		until = at + c.cfg.IdleClose
	}
	if c.t.REFI > 0 {
		next := c.refOffset[rank]
		if at >= next {
			next = c.refWindowStart(rank, at) + c.t.REFI
		}
		if next-1 < until {
			until = next - 1
		}
	}
	bk.availUntil = until
	c.availMask[bi>>6] |= 1 << (uint(bi) & 63)
	if until < c.availSweepAt {
		c.availSweepAt = until
	}
}

// issue commits one transaction: resolves the row outcome, computes the
// earliest legal data burst, updates bank/rank/bus state and schedules the
// completion callback. The slot has already been detached from its queue
// and bank list.
func (c *channel) issue(idx int32, isWrite bool) {
	s := &c.slots[idx]
	now := c.eng.Now()
	rank := s.rank
	bi := s.bi
	bk := &c.banks[bi]

	avail := c.rowAvail(bi, now)
	var outcome rowOutcome
	switch {
	case avail && bk.openRow == s.row:
		outcome = rowHit
	case !avail:
		outcome = rowEmpty
	default:
		outcome = rowMiss
	}

	casIssue := maxTime(now, bk.casReadyAt)
	var act sim.Time
	switch outcome {
	case rowEmpty:
		act = maxTime(maxTime(now, bk.actReadyAt), c.rankActConstraint(rank))
		act = c.refreshAdjust(rank, act)
		casIssue = maxTime(casIssue, act+c.t.RCD)
	case rowMiss:
		pre := maxTime(now, bk.preReadyAt)
		act = maxTime(pre+c.t.RP, c.rankActConstraint(rank))
		act = c.refreshAdjust(rank, act)
		casIssue = maxTime(casIssue, act+c.t.RCD)
	default:
		casIssue = c.refreshAdjust(rank, casIssue)
	}

	// Bus constraint with direction-turnaround penalty.
	busReady := c.busFreeAt
	if c.haveDir && c.lastIsW != isWrite {
		if isWrite {
			busReady += c.t.RTW
		} else {
			busReady += c.t.WTR
		}
	}
	dataStart := maxTime(casIssue+c.t.CL, busReady)
	if dataStart < now {
		dataStart = now
	}
	dataEnd := dataStart + c.t.Burst
	casIssue = dataStart - c.t.CL

	// Commit device state.
	if outcome != rowHit {
		c.recordActivate(rank, act)
		bk.actAt = act
		bk.openRow = s.row
		c.rescanBank(bi)
	}
	bk.casReadyAt = casIssue + c.t.CCD
	if isWrite {
		bk.preReadyAt = maxTime(bk.actAt+c.t.RAS, dataEnd+c.t.WR)
	} else {
		bk.preReadyAt = maxTime(bk.actAt+c.t.RAS, casIssue+c.t.RTP)
	}
	bk.actReadyAt = bk.preReadyAt + c.t.RP
	c.touchBank(bi, rank, dataEnd)
	c.busFreeAt = dataEnd
	c.lastIsW = isWrite
	c.haveDir = true
	c.lastCASBank = bi

	c.rowStats.add(outcome)
	req := s.req
	s.req = nil
	c.counters.Add(req.Op, req.Bytes())

	if isWrite {
		// Posted write: completion (= write-queue acceptance upstream,
		// drain here) releases the pooled record at the burst end.
		if c.complete != nil {
			c.complete(req, dataEnd)
			return
		}
		c.pushComp(dirWrite, req.CompleteAtTagged(c.eng, dataEnd, c.tag))
		return
	}
	completion := dataEnd + c.cfg.CtrlLatency
	c.readLatSum += completion - s.at
	c.readLatN++
	if c.complete != nil {
		c.complete(req, completion)
		return
	}
	c.pushComp(dirRead, req.CompleteAtTagged(c.eng, completion, c.tag))
}

// pushComp retains the handle of a just-scheduled completion for the
// decide loop's batching, pruning already-served handles off the ring
// head so the ring tracks only in-flight completions. The zero handle
// (a completion with no observer releases immediately) is dropped.
func (c *channel) pushComp(dir int, h sim.Handle) {
	if c.cfg.NoCompBatch || !h.Pending() {
		return
	}
	r := &c.compRing[dir]
	for r.n > 0 && !r.peek().Pending() {
		r.pop()
	}
	r.push(h)
}

// rankActConstraint reports the earliest time a new ACT may issue in the
// rank, honouring tRRD and tFAW. Refresh windows are applied separately via
// refreshAdjust.
func (c *channel) rankActConstraint(rank int32) sim.Time {
	earliest := c.lastAct[rank] + c.t.RRD
	if h := c.actHist[rank]; len(h) == 4 {
		if t := h[0] + c.t.FAW; t > earliest {
			earliest = t
		}
	}
	return earliest
}

func (c *channel) recordActivate(rank int32, at sim.Time) {
	c.lastAct[rank] = at
	h := c.actHist[rank]
	if len(h) == 4 {
		copy(h, h[1:])
		h[3] = at
	} else {
		c.actHist[rank] = append(h, at)
	}
}

func (c *channel) queued() int { return c.live[dirRead] + c.live[dirWrite] }

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
