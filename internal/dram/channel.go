package dram

import (
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// RowStats counts row-buffer outcomes, mirroring the hardware counters the
// paper reads on Cascade Lake (Sec. IV-D, Fig. 7).
type RowStats struct {
	Hits    uint64
	Empties uint64
	Misses  uint64
}

// Total reports the number of classified accesses.
func (s RowStats) Total() uint64 { return s.Hits + s.Empties + s.Misses }

// Ratios reports the hit/empty/miss fractions; an empty window reports zeros.
func (s RowStats) Ratios() (hit, empty, miss float64) {
	t := s.Total()
	if t == 0 {
		return 0, 0, 0
	}
	return float64(s.Hits) / float64(t), float64(s.Empties) / float64(t), float64(s.Misses) / float64(t)
}

// Sub returns the difference s − prev.
func (s RowStats) Sub(prev RowStats) RowStats {
	return RowStats{Hits: s.Hits - prev.Hits, Empties: s.Empties - prev.Empties, Misses: s.Misses - prev.Misses}
}

func (s *RowStats) add(o rowOutcome) {
	switch o {
	case rowHit:
		s.Hits++
	case rowEmpty:
		s.Empties++
	default:
		s.Misses++
	}
}

type rowOutcome uint8

const (
	rowHit rowOutcome = iota
	rowEmpty
	rowMiss
)

type bank struct {
	openRow    int64    // -1 when closed
	actAt      sim.Time // time of the last ACT
	casReadyAt sim.Time // earliest next CAS issue
	preReadyAt sim.Time // earliest precharge
	actReadyAt sim.Time // earliest next ACT (set when a precharge is committed)
	lastTouch  sim.Time // end of the last data burst (drives idle auto-close)
}

type chanReq struct {
	req *mem.Request
	loc Loc
	at  sim.Time // arrival at the controller
}

// channel is one memory channel: its banks, its request queues and its
// scheduler state. Channels are driven by decide events: at most one pending
// decide event exists per channel, scheduled shortly before the data bus
// frees so the scheduler can still reorder late-arriving row hits.
type channel struct {
	eng *sim.Engine
	cfg *Config
	t   *Timing

	banks     []bank       // ranks × banks
	actHist   [][]sim.Time // per rank: last 4 ACT times (tFAW window)
	lastAct   []sim.Time   // per rank: last ACT (tRRD)
	refOffset []sim.Time   // per rank: first refresh window start

	busFreeAt   sim.Time
	lastIsW     bool
	haveDir     bool
	lastCASBank int // rank*banks+bank of the last CAS, -1 initially

	readQ      []chanReq
	writeQ     []chanReq
	draining   bool
	drainCount int // writes served in the current drain episode

	readHead       *mem.Request // current head of the read queue
	readHeadBypass int          // times the head was bypassed by row hits

	decidePending bool
	decideAt      sim.Time
	decideFn      func() // stored once: kick schedules it without a fresh closure

	counters mem.Counters
	rowStats RowStats

	readLatSum sim.Time
	readLatN   uint64
}

func newChannel(eng *sim.Engine, cfg *Config, chIdx int) *channel {
	c := &channel{
		eng:       eng,
		cfg:       cfg,
		t:         &cfg.Timing,
		banks:     make([]bank, cfg.Ranks*cfg.Banks),
		actHist:   make([][]sim.Time, cfg.Ranks),
		lastAct:   make([]sim.Time, cfg.Ranks),
		refOffset: make([]sim.Time, cfg.Ranks),
	}
	for i := range c.banks {
		c.banks[i].openRow = -1
	}
	c.decideFn = func() {
		c.decidePending = false
		c.decide()
	}
	c.lastCASBank = -1
	for r := 0; r < cfg.Ranks; r++ {
		c.actHist[r] = make([]sim.Time, 0, 4)
		// No ACT has happened yet: place the "previous" one far enough in
		// the past that tRRD never constrains the first activate.
		c.lastAct[r] = -(cfg.Timing.FAW + cfg.Timing.RRD)
		// Stagger refresh across ranks and channels so refresh storms do
		// not synchronize system-wide.
		c.refOffset[r] = cfg.Timing.REFI * sim.Time(chIdx*cfg.Ranks+r+1) / sim.Time(cfg.Channels*cfg.Ranks+1)
	}
	return c
}

// Refresh is modelled analytically rather than with perpetual events:
// rank r is blocked during [refOffset+k·REFI, refOffset+k·REFI+RFC) for
// every k ≥ 0, and each window closes all rows in the rank. Commands that
// would land inside a window slide to its end.

// refreshAdjust pushes t out of any refresh window of the rank.
func (c *channel) refreshAdjust(rank int, t sim.Time) sim.Time {
	if c.t.REFI <= 0 {
		return t
	}
	off := c.refOffset[rank]
	if t < off {
		return t
	}
	k := (t - off) / c.t.REFI
	start := off + k*c.t.REFI
	if t < start+c.t.RFC {
		return start + c.t.RFC
	}
	return t
}

// lastRefreshStart reports the start of the most recent refresh window at
// or before t, or a negative time when none has occurred yet.
func (c *channel) lastRefreshStart(rank int, t sim.Time) sim.Time {
	if c.t.REFI <= 0 {
		return -1
	}
	off := c.refOffset[rank]
	if t < off {
		return -1
	}
	k := (t - off) / c.t.REFI
	return off + k*c.t.REFI
}

func (c *channel) enqueue(req *mem.Request, loc Loc) {
	cr := chanReq{req: req, loc: loc, at: c.eng.Now()}
	if req.Op == mem.Write {
		// Writes are posted: the core never waits on them. Done still
		// fires when the write drains to the device, so that write-buffer
		// slots upstream provide back-pressure against unbounded queues.
		c.writeQ = append(c.writeQ, cr)
	} else {
		c.readQ = append(c.readQ, cr)
	}
	c.kick()
}

// kick (re)schedules the decide event. The event is placed a lookahead
// before the bus frees, so the scheduler commits each burst just in time.
func (c *channel) kick() {
	if len(c.readQ) == 0 && len(c.writeQ) == 0 {
		return
	}
	lookahead := c.t.RP + c.t.RCD + c.t.CL
	at := c.busFreeAt - lookahead
	now := c.eng.Now()
	if at < now {
		at = now
	}
	if c.decidePending && c.decideAt <= at {
		return
	}
	c.decidePending = true
	c.decideAt = at
	c.eng.Schedule(at, c.decideFn)
}

// decide picks the next request (FR-FCFS within the active direction) and
// commits its data burst on the bus.
func (c *channel) decide() {
	writes := c.pickDirection()
	var q *[]chanReq
	if writes {
		q = &c.writeQ
	} else {
		q = &c.readQ
	}
	if len(*q) == 0 {
		c.kick()
		return
	}
	idx := c.pickFRFCFS(*q, !writes)
	cr := (*q)[idx]
	*q = append((*q)[:idx], (*q)[idx+1:]...)
	if !writes && idx == 0 {
		// The tracked head is leaving the queue: drop the reference now.
		// Holding it past issue would alias a recycled pool record — a new
		// request reusing this record could inherit the dead head's bypass
		// count. (Pre-pool, distinct allocations made the q[0] pointer
		// comparison in pickFRFCFS reset implicitly.)
		c.readHead = nil
		c.readHeadBypass = 0
	}

	c.issue(cr, writes)
	c.kick()
}

// pickDirection applies write-drain watermarks: reads have priority; a
// write drain starts when the write queue reaches WriteHi (or reads run
// dry) and continues down to WriteLo. A drain episode is additionally
// bounded: under a sustained write flood, posted writebacks refill the
// queue as fast as it drains and the low watermark is never reached, which
// would starve reads forever. Real controllers bound write bursts for the
// same reason.
func (c *channel) pickDirection() bool {
	if c.draining {
		switch {
		case len(c.writeQ) <= c.cfg.WriteLo || len(c.writeQ) == 0:
			c.draining = false
		case c.drainCount >= 2*c.cfg.WriteHi && len(c.readQ) > 0:
			// Yield to the waiting reads immediately; the drain (and its
			// episode counter) restarts on the next decision.
			c.draining = false
			return false
		default:
			c.drainCount++
			return true
		}
	}
	if len(c.readQ) == 0 {
		return len(c.writeQ) > 0
	}
	if len(c.writeQ) >= c.cfg.WriteHi {
		c.draining = true
		c.drainCount = 1
		return true
	}
	return false
}

// pickFRFCFS returns the index of the request to issue next: the oldest
// row-hit in a different bank than the previous CAS if one exists (bank-
// group interleaving hides tCCD_L, which is how real controllers keep the
// bus saturated), otherwise the oldest row-hit, otherwise the oldest
// request.
//
// Unfairness is bounded by a bypass count, not by age: the read-queue head
// may be bypassed by row hits at most BypassCap times before it is served
// unconditionally. A count bound is self-stabilizing — it costs at most one
// row-miss service per BypassCap hits regardless of load, unlike time-based
// aging, which under saturation escalates everything and collapses row-hit
// batching (and with it, bandwidth).
func (c *channel) pickFRFCFS(q []chanReq, isRead bool) int {
	limit := c.cfg.FRFCFSWindow
	if limit > len(q) {
		limit = len(q)
	}
	now := c.eng.Now()
	if isRead {
		if q[0].req != c.readHead {
			c.readHead = q[0].req
			c.readHeadBypass = 0
		}
		if c.cfg.BypassCap > 0 && c.readHeadBypass >= c.cfg.BypassCap {
			return 0
		}
	}
	// Optional time-based escalation (disabled in the presets; see the
	// AgeCap documentation).
	if c.cfg.AgeCap > 0 {
		bound := c.cfg.AgeCap + sim.Time(len(q))*c.t.Burst
		if now-q[0].at > bound {
			return 0
		}
	}
	firstHit := -1
	for i := 0; i < limit; i++ {
		loc := q[i].loc
		bi := loc.Rank*c.cfg.Banks + loc.Bank
		bk := &c.banks[bi]
		if bk.openRow == loc.Row && c.rowAvailable(bk, loc.Rank, now) {
			if bi != c.lastCASBank {
				if isRead && i != 0 {
					c.readHeadBypass++
				}
				return i
			}
			if firstHit < 0 {
				firstHit = i
			}
		}
	}
	if firstHit >= 0 {
		if isRead && firstHit != 0 {
			c.readHeadBypass++
		}
		return firstHit
	}
	return 0
}

// rowAvailable reports whether the bank's open row is still usable at t:
// it must not have auto-precharged after the idle-close timeout (adaptive
// page policy) and must not have been closed by an intervening refresh.
func (c *channel) rowAvailable(bk *bank, rank int, t sim.Time) bool {
	if bk.openRow < 0 {
		return false
	}
	if c.cfg.IdleClose > 0 && t-bk.lastTouch > c.cfg.IdleClose {
		return false
	}
	if rs := c.lastRefreshStart(rank, t); rs >= 0 && bk.lastTouch < rs {
		return false
	}
	return true
}

// issue commits one transaction: resolves the row outcome, computes the
// earliest legal data burst, updates bank/rank/bus state and schedules the
// completion callback.
func (c *channel) issue(cr chanReq, isWrite bool) {
	now := c.eng.Now()
	loc := cr.loc
	rank := loc.Rank
	bk := &c.banks[rank*c.cfg.Banks+loc.Bank]

	var outcome rowOutcome
	switch {
	case c.rowAvailable(bk, rank, now) && bk.openRow == loc.Row:
		outcome = rowHit
	case !c.rowAvailable(bk, rank, now):
		outcome = rowEmpty
	default:
		outcome = rowMiss
	}

	casIssue := maxTime(now, bk.casReadyAt)
	var act sim.Time
	switch outcome {
	case rowEmpty:
		act = maxTime(maxTime(now, bk.actReadyAt), c.rankActConstraint(rank))
		act = c.refreshAdjust(rank, act)
		casIssue = maxTime(casIssue, act+c.t.RCD)
	case rowMiss:
		pre := maxTime(now, bk.preReadyAt)
		act = maxTime(pre+c.t.RP, c.rankActConstraint(rank))
		act = c.refreshAdjust(rank, act)
		casIssue = maxTime(casIssue, act+c.t.RCD)
	default:
		casIssue = c.refreshAdjust(rank, casIssue)
	}

	// Bus constraint with direction-turnaround penalty.
	busReady := c.busFreeAt
	if c.haveDir && c.lastIsW != isWrite {
		if isWrite {
			busReady += c.t.RTW
		} else {
			busReady += c.t.WTR
		}
	}
	dataStart := maxTime(casIssue+c.t.CL, busReady)
	if dataStart < now {
		dataStart = now
	}
	dataEnd := dataStart + c.t.Burst
	casIssue = dataStart - c.t.CL

	// Commit device state.
	if outcome != rowHit {
		c.recordActivate(rank, act)
		bk.actAt = act
		bk.openRow = loc.Row
	}
	bk.casReadyAt = casIssue + c.t.CCD
	if isWrite {
		bk.preReadyAt = maxTime(bk.actAt+c.t.RAS, dataEnd+c.t.WR)
	} else {
		bk.preReadyAt = maxTime(bk.actAt+c.t.RAS, casIssue+c.t.RTP)
	}
	bk.actReadyAt = bk.preReadyAt + c.t.RP
	bk.lastTouch = dataEnd
	c.busFreeAt = dataEnd
	c.lastIsW = isWrite
	c.haveDir = true
	c.lastCASBank = rank*c.cfg.Banks + loc.Bank

	c.rowStats.add(outcome)
	c.counters.Add(cr.req.Op, cr.req.Bytes())

	if isWrite {
		// Posted write: completion (= write-queue acceptance upstream,
		// drain here) releases the pooled record at the burst end.
		cr.req.CompleteAt(c.eng, dataEnd)
		return
	}
	completion := dataEnd + c.cfg.CtrlLatency
	c.readLatSum += completion - cr.at
	c.readLatN++
	cr.req.CompleteAt(c.eng, completion)
}

// rankActConstraint reports the earliest time a new ACT may issue in the
// rank, honouring tRRD and tFAW. Refresh windows are applied separately via
// refreshAdjust.
func (c *channel) rankActConstraint(rank int) sim.Time {
	earliest := c.lastAct[rank] + c.t.RRD
	if h := c.actHist[rank]; len(h) == 4 {
		if t := h[0] + c.t.FAW; t > earliest {
			earliest = t
		}
	}
	return earliest
}

func (c *channel) recordActivate(rank int, at sim.Time) {
	c.lastAct[rank] = at
	h := c.actHist[rank]
	if len(h) == 4 {
		copy(h, h[1:])
		h[3] = at
	} else {
		c.actHist[rank] = append(h, at)
	}
}

func (c *channel) queued() int { return len(c.readQ) + len(c.writeQ) }

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
