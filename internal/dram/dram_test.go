package dram

import (
	"testing"
	"testing/quick"

	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

func testConfig() Config {
	cfg := DDR4(2666, 2, 1)
	cfg.CtrlLatency = ns(8)
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero channels accepted")
	}
	bad = good
	bad.RowBytes = 100
	if err := bad.Validate(); err == nil {
		t.Fatal("non-multiple-of-64 row accepted")
	}
	bad = good
	bad.Timing.Burst = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero burst accepted")
	}
}

func TestPeakBandwidth(t *testing.T) {
	cfg := DDR4(2666, 6, 1)
	got := cfg.PeakBandwidthGBs()
	if got < 126 || got > 130 {
		t.Fatalf("6×DDR4-2666 peak = %.1f GB/s, want ≈128", got)
	}
	cfg5 := DDR5(4800, 8, 2)
	got5 := cfg5.PeakBandwidthGBs()
	if got5 < 303 || got5 > 311 {
		t.Fatalf("8×DDR5-4800 peak = %.1f GB/s, want ≈307", got5)
	}
	hbm := HBM2(32)
	if g := hbm.PeakBandwidthGBs(); g < 1020 || g > 1028 {
		t.Fatalf("32×HBM2 peak = %.1f GB/s, want ≈1024", g)
	}
	hbme := HBM2E(32)
	if g := hbme.PeakBandwidthGBs(); g < 1600 || g > 1660 {
		t.Fatalf("32×HBM2E peak = %.1f GB/s, want ≈1631", g)
	}
}

func TestMapperBijective(t *testing.T) {
	cfg := testConfig()
	m := NewMapper(&cfg)
	f := func(line uint32) bool {
		addr := uint64(line) * mem.LineSize
		loc := m.Map(addr)
		if loc.Channel < 0 || loc.Channel >= m.Channels ||
			loc.Rank < 0 || loc.Rank >= m.Ranks ||
			loc.Bank < 0 || loc.Bank >= m.Banks ||
			loc.Col < 0 || loc.Col >= m.LinesPerRow || loc.Row < 0 {
			return false
		}
		return m.Unmap(loc) == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMapperSequentialLocality(t *testing.T) {
	cfg := testConfig()
	m := NewMapper(&cfg)
	// Consecutive lines must interleave across channels; lines that land on
	// the same channel must stay in the same row until the row is exhausted.
	first := m.Map(0)
	sameChannelNext := m.Map(uint64(m.Channels) * mem.LineSize)
	if sameChannelNext.Channel != first.Channel {
		t.Fatal("stride by channel count changed channel")
	}
	if sameChannelNext.Row != first.Row || sameChannelNext.Bank != first.Bank {
		t.Fatal("adjacent line on same channel left the row")
	}
	if m.Map(mem.LineSize).Channel == first.Channel {
		t.Fatal("adjacent lines did not interleave across channels")
	}
}

// singleRead issues one read to an idle system and returns its latency.
func singleRead(t *testing.T, cfg Config, addr uint64) sim.Time {
	t.Helper()
	eng := sim.New()
	sys := New(eng, cfg)
	var done sim.Time = -1
	issue := eng.Now()
	sys.Access(&mem.Request{Addr: addr, Op: mem.Read, Done: func(at sim.Time, _ *mem.Request) { done = at }})
	eng.RunUntil(sim.Microsecond)
	if done < 0 {
		t.Fatal("read never completed")
	}
	return done - issue
}

func TestIdleReadLatencyEmptyRow(t *testing.T) {
	cfg := testConfig()
	lat := singleRead(t, cfg, 0)
	want := cfg.Timing.RCD + cfg.Timing.CL + cfg.Timing.Burst + cfg.CtrlLatency
	if lat != want {
		t.Fatalf("idle empty-row read latency = %v ns, want %v ns",
			lat.Nanoseconds(), want.Nanoseconds())
	}
}

func TestRowHitLatency(t *testing.T) {
	cfg := testConfig()
	eng := sim.New()
	sys := New(eng, cfg)
	var first, second sim.Time
	sys.Access(&mem.Request{Addr: 0, Op: mem.Read, Done: func(at sim.Time, _ *mem.Request) { first = at }})
	eng.RunUntil(sim.Microsecond / 2)
	issue := eng.Now()
	// Same channel, same row, next column.
	addr := uint64(cfg.Channels) * mem.LineSize
	sys.Access(&mem.Request{Addr: addr, Op: mem.Read, Done: func(at sim.Time, _ *mem.Request) { second = at }})
	eng.RunUntil(sim.Microsecond)
	if first == 0 || second == 0 {
		t.Fatal("reads did not complete")
	}
	hitLat := second - issue
	want := cfg.Timing.CL + cfg.Timing.Burst + cfg.CtrlLatency
	if hitLat != want {
		t.Fatalf("row-hit latency = %v ns, want %v ns", hitLat.Nanoseconds(), want.Nanoseconds())
	}
	stats := sys.RowStats()
	if stats.Hits != 1 || stats.Empties != 1 {
		t.Fatalf("row stats = %+v, want 1 hit 1 empty", stats)
	}
}

func TestRowConflictLatency(t *testing.T) {
	cfg := testConfig()
	cfg.IdleClose = 0 // keep rows open so the conflict is guaranteed
	eng := sim.New()
	sys := New(eng, cfg)
	sys.Access(&mem.Request{Addr: 0, Op: mem.Read, Done: func(_ sim.Time, _ *mem.Request) {}})
	eng.RunUntil(sim.Microsecond / 2)
	issue := eng.Now()
	// Same channel and bank, different row: stride by channels×linesPerRow×banks...
	// row increments after col and bank and rank exhaust; same bank+rank, next row:
	m := NewMapper(&cfg)
	stride := uint64(m.Channels*m.LinesPerRow*m.Banks*m.Ranks) * mem.LineSize
	var done sim.Time
	sys.Access(&mem.Request{Addr: stride, Op: mem.Read, Done: func(at sim.Time, _ *mem.Request) { done = at }})
	eng.RunUntil(sim.Microsecond)
	if done == 0 {
		t.Fatal("conflict read did not complete")
	}
	lat := done - issue
	want := cfg.Timing.RP + cfg.Timing.RCD + cfg.Timing.CL + cfg.Timing.Burst + cfg.CtrlLatency
	// The precharge may additionally wait for tRAS since activation; at
	// half a microsecond after the first access tRAS has long expired.
	if lat != want {
		t.Fatalf("row-conflict latency = %v ns, want %v ns", lat.Nanoseconds(), want.Nanoseconds())
	}
	if s := sys.RowStats(); s.Misses != 1 {
		t.Fatalf("row stats = %+v, want 1 miss", s)
	}
}

func TestIdleCloseTurnsConflictIntoEmpty(t *testing.T) {
	cfg := testConfig()
	cfg.IdleClose = 200 * sim.Nanosecond
	eng := sim.New()
	sys := New(eng, cfg)
	sys.Access(&mem.Request{Addr: 0, Op: mem.Read, Done: func(_ sim.Time, _ *mem.Request) {}})
	eng.RunUntil(sim.Microsecond / 2) // way past the idle-close timeout
	m := NewMapper(&cfg)
	stride := uint64(m.Channels*m.LinesPerRow*m.Banks*m.Ranks) * mem.LineSize
	sys.Access(&mem.Request{Addr: stride, Op: mem.Read, Done: func(_ sim.Time, _ *mem.Request) {}})
	eng.RunUntil(sim.Microsecond)
	if s := sys.RowStats(); s.Misses != 0 || s.Empties != 2 {
		t.Fatalf("row stats = %+v, want 2 empties (idle close)", s)
	}
}

// floodReads keeps `depth` reads outstanding per stream over `streams`
// sequential address streams (bases far apart, so they hit distinct banks,
// as the multi-core Mess traffic generator does) until n total completions,
// and returns achieved bandwidth in GB/s.
func floodReads(cfg Config, n, depth, streams int) float64 {
	eng := sim.New()
	sys := New(eng, cfg)
	completed := 0
	var end sim.Time
	for s := 0; s < streams; s++ {
		// Separate streams by both row range (64 MB) and bank (16 KB) so
		// concurrent streams exercise distinct banks, like distinct cores.
		next := uint64(s) * (64<<20 + 16<<10)
		var issueOne func()
		issueOne = func() {
			addr := next
			next += mem.LineSize
			sys.Access(&mem.Request{Addr: addr, Op: mem.Read, Done: func(at sim.Time, _ *mem.Request) {
				completed++
				end = at
				if completed+sys.Queued() < n {
					issueOne()
				}
			}})
		}
		for i := 0; i < depth; i++ {
			issueOne()
		}
	}
	eng.Run()
	if end <= 0 {
		return 0
	}
	return float64(completed*mem.LineSize) / end.Seconds() / 1e9
}

func TestSequentialReadBandwidthNearPeak(t *testing.T) {
	cfg := testConfig()
	cfg.IdleClose = 300 * sim.Nanosecond
	bw := floodReads(cfg, 20000, 16, 4)
	peak := cfg.PeakBandwidthGBs()
	if bw < 0.85*peak {
		t.Fatalf("multi-stream sequential read bandwidth = %.1f GB/s, want ≥ 85%% of peak %.1f", bw, peak)
	}
	if bw > peak*1.001 {
		t.Fatalf("bandwidth %.1f exceeds theoretical peak %.1f", bw, peak)
	}
}

func TestSingleStreamCCDLimited(t *testing.T) {
	// One stream keeps a single bank busy: DDR4 tCCD_L (5 tCK) gates the
	// CAS rate below the bus peak (4 tCK per burst). This is real device
	// behaviour, and the reason the Mess generator spreads streams.
	cfg := testConfig()
	cfg.IdleClose = 300 * sim.Nanosecond
	bw := floodReads(cfg, 10000, 32, 1)
	peak := cfg.PeakBandwidthGBs()
	ccdBound := peak * float64(cfg.Timing.Burst) / float64(cfg.Timing.CCD)
	if bw > ccdBound*1.02 {
		t.Fatalf("single-stream bandwidth %.1f GB/s beats tCCD bound %.1f", bw, ccdBound)
	}
	if bw < ccdBound*0.85 {
		t.Fatalf("single-stream bandwidth %.1f GB/s far below tCCD bound %.1f", bw, ccdBound)
	}
}

func TestSequentialStreamHitRateHigh(t *testing.T) {
	cfg := testConfig()
	cfg.IdleClose = 300 * sim.Nanosecond
	eng := sim.New()
	sys := New(eng, cfg)
	next := uint64(0)
	n := 20000
	var issueOne func()
	issueOne = func() {
		addr := next
		next += mem.LineSize
		sys.Access(&mem.Request{Addr: addr, Op: mem.Read, Done: func(at sim.Time, _ *mem.Request) {
			if next < uint64(n)*mem.LineSize {
				issueOne()
			}
		}})
	}
	for i := 0; i < 8; i++ {
		issueOne()
	}
	eng.Run()
	hit, _, miss := sys.RowStats().Ratios()
	if hit < 0.90 {
		t.Fatalf("sequential stream hit rate = %.2f, want ≥ 0.90 (miss %.2f)", hit, miss)
	}
}

func TestWriteCompletesAtDrain(t *testing.T) {
	cfg := testConfig()
	eng := sim.New()
	sys := New(eng, cfg)
	var ack sim.Time = -1
	sys.Access(&mem.Request{Addr: 0, Op: mem.Write, Done: func(at sim.Time, _ *mem.Request) { ack = at }})
	eng.RunUntil(sim.Microsecond)
	if ack < 0 {
		t.Fatal("write never drained")
	}
	// An empty-row write drains after ACT+CAS+burst at the earliest.
	min := cfg.Timing.RCD + cfg.Timing.Burst
	if ack < min {
		t.Fatalf("write drained at %v ns, before device minimum %v ns", ack.Nanoseconds(), min.Nanoseconds())
	}
	c := sys.Counters()
	if c.Writes != 1 || c.WriteBytes != mem.LineSize {
		t.Fatalf("counters after one write: %v", c)
	}
}

func TestCountersConservation(t *testing.T) {
	cfg := testConfig()
	eng := sim.New()
	sys := New(eng, cfg)
	reads, writes := 0, 0
	rng := uint64(12345)
	for i := 0; i < 3000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		addr := (rng >> 16) % (1 << 30)
		addr &^= mem.LineSize - 1
		op := mem.Read
		if rng%3 == 0 {
			op = mem.Write
			writes++
		} else {
			reads++
		}
		sys.Access(&mem.Request{Addr: addr, Op: op, Done: func(_ sim.Time, _ *mem.Request) {}})
	}
	eng.Run()
	c := sys.Counters()
	if int(c.Reads) != reads || int(c.Writes) != writes {
		t.Fatalf("counters %v, want %d reads %d writes", c, reads, writes)
	}
	if c.TotalBytes() != uint64(reads+writes)*mem.LineSize {
		t.Fatalf("byte counters %v", c)
	}
	if rs := sys.RowStats(); rs.Total() != uint64(reads+writes) {
		t.Fatalf("row stats total %d, want %d", rs.Total(), reads+writes)
	}
}

func TestRefreshBlocksRank(t *testing.T) {
	cfg := testConfig()
	cfg.Channels = 1
	eng := sim.New()
	sys := New(eng, cfg)
	// Find the first refresh (staggered offset) and issue a read right after
	// it begins: the read must be delayed by up to tRFC.
	// Refresh offset for ch0/rank0 with 1 channel 1 rank: REFI*1/2.
	refAt := cfg.Timing.REFI / 2
	eng.RunUntil(refAt + sim.Nanosecond)
	var done sim.Time
	issue := eng.Now()
	sys.Access(&mem.Request{Addr: 0, Op: mem.Read, Done: func(at sim.Time, _ *mem.Request) { done = at }})
	eng.RunUntil(refAt + 2*cfg.Timing.RFC)
	if done == 0 {
		t.Fatal("read under refresh never completed")
	}
	lat := done - issue
	min := cfg.Timing.RFC / 2 // must have waited a significant part of tRFC
	if lat < min {
		t.Fatalf("read under refresh took %v ns, expected ≥ %v ns", lat.Nanoseconds(), min.Nanoseconds())
	}
}

func TestWriteDrainWatermarks(t *testing.T) {
	cfg := testConfig()
	cfg.Channels = 1
	cfg.WriteHi = 8
	cfg.WriteLo = 2
	eng := sim.New()
	sys := New(eng, cfg)
	// Saturate with writes only; they must all eventually drain.
	for i := 0; i < 100; i++ {
		addr := uint64(i) * mem.LineSize
		sys.Access(&mem.Request{Addr: addr, Op: mem.Write, Done: func(_ sim.Time, _ *mem.Request) {}})
	}
	eng.Run()
	if q := sys.Queued(); q != 0 {
		t.Fatalf("%d requests stuck in queues", q)
	}
	if c := sys.Counters(); c.Writes != 100 {
		t.Fatalf("drained %d writes, want 100", c.Writes)
	}
}

func TestMixedTrafficCompletes(t *testing.T) {
	f := func(seed uint64, nOps uint16) bool {
		n := int(nOps%500) + 50
		cfg := testConfig()
		eng := sim.New()
		sys := New(eng, cfg)
		doneCount := 0
		rng := seed | 1
		for i := 0; i < n; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			addr := ((rng >> 13) % (1 << 28)) &^ (mem.LineSize - 1)
			op := mem.Read
			if rng&1 == 0 {
				op = mem.Write
			}
			sys.Access(&mem.Request{Addr: addr, Op: op, Done: func(_ sim.Time, _ *mem.Request) { doneCount++ }})
		}
		eng.Run()
		return doneCount == n && sys.Queued() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFAWLimitsRandomActivates(t *testing.T) {
	// All-miss traffic to one rank must be activate-limited well below the
	// bus peak: that is the mechanism behind the paper's bandwidth decline.
	cfg := testConfig()
	cfg.Channels = 1
	cfg.IdleClose = 0
	eng := sim.New()
	sys := New(eng, cfg)
	m := NewMapper(&cfg)
	rowStride := uint64(m.Channels*m.LinesPerRow*m.Banks*m.Ranks) * mem.LineSize
	n := 4000
	completed := 0
	var start, end sim.Time
	next := 0
	var issueOne func()
	issueOne = func() {
		// Each access targets a different row in a rotating bank: every
		// access is a row miss needing an ACT.
		addr := uint64(next)*rowStride + uint64(next%cfg.Banks)*uint64(m.Channels*m.LinesPerRow)*mem.LineSize
		next++
		sys.Access(&mem.Request{Addr: addr, Op: mem.Read, Done: func(at sim.Time, _ *mem.Request) {
			completed++
			end = at
			if next < n {
				issueOne()
			}
		}})
	}
	start = eng.Now()
	for i := 0; i < 32; i++ {
		issueOne()
	}
	eng.Run()
	bw := float64(completed*mem.LineSize) / (end - start).Seconds() / 1e9
	fawBW := 4.0 * 64 / cfg.Timing.FAW.Seconds() / 1e9
	if bw > fawBW*1.15 {
		t.Fatalf("all-miss bandwidth %.1f GB/s exceeds tFAW bound %.1f GB/s", bw, fawBW)
	}
	if bw < fawBW*0.5 {
		t.Fatalf("all-miss bandwidth %.1f GB/s implausibly far below tFAW bound %.1f GB/s", bw, fawBW)
	}
}
