package perfload_test

import (
	"testing"

	"github.com/mess-sim/mess/internal/core"
	"github.com/mess-sim/mess/internal/dram"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/messsim"
	"github.com/mess-sim/mess/internal/perfload"
	"github.com/mess-sim/mess/internal/sim"
	"github.com/mess-sim/mess/internal/telemetry"
)

// allocTolerance is the per-op bound the steady-state tests assert. The
// request lifecycle itself is exactly allocation-free; what remains is the
// kernel's timer-wheel bucket arrays occasionally growing capacity as the
// clock cycles through all 1024 buckets (memprofile: ~0.002/op across 2M
// ops, decaying). The pre-pool lifecycle allocated ≥2/op — three orders of
// magnitude above this bound — so the gate cannot miss a regression to
// per-request allocation.
const allocTolerance = 0.015

// steadyStateAllocsPerOp measures allocations per completed request on the
// canonical closed-loop workload — the same ClosedLoopDriver the root
// benchmarks and cmd/messperf run — reusing one engine, pool and stored
// callback across runs. This is the -benchmem claim as a hard test: after
// warmup the request lifecycle (Get → Access → scheduled completion →
// release) must not allocate.
func steadyStateAllocsPerOp(t *testing.T, eng *sim.Engine, backend mem.Backend, pattern perfload.LoopPattern, opsPerRun int) float64 {
	t.Helper()
	d := perfload.NewClosedLoopPattern(eng, backend, pattern)
	for i := 0; i < 4; i++ {
		d.Run(opsPerRun) // warm: pool records, engine event pool, controller queues
	}
	if live := d.Pool().Live(); live != 0 {
		t.Fatalf("drained driver still holds %d live requests", live)
	}
	allocs := testing.AllocsPerRun(5, func() { d.Run(opsPerRun) })
	return allocs / float64(opsPerRun)
}

// Every DRAM traffic regime the trajectory tracks must hold the
// zero-allocation claim: the random pattern stresses the activate/rescan
// path, the mixed pattern the write queue and its ring.
func TestDRAMSteadyStateZeroAllocs(t *testing.T) {
	for _, pattern := range []perfload.LoopPattern{perfload.PatternReference, perfload.PatternRandom, perfload.PatternMixed} {
		t.Run(pattern.String(), func(t *testing.T) {
			eng := sim.New()
			sys := dram.New(eng, dram.DDR4(2666, 2, 2))
			if per := steadyStateAllocsPerOp(t, eng, sys, pattern, 4000); per >= allocTolerance {
				t.Fatalf("DRAM %s steady state allocates %.4f/op, want ~0", pattern, per)
			}
		})
	}
}

func TestMessSimulatorSteadyStateZeroAllocs(t *testing.T) {
	eng := sim.New()
	s := messsim.New(eng, messsim.Config{Family: core.NewSynthetic(core.SyntheticSpec{})})
	if per := steadyStateAllocsPerOp(t, eng, s, perfload.PatternReference, 4000); per >= allocTolerance {
		t.Fatalf("Mess simulator steady state allocates %.4f/op, want ~0", per)
	}
}

// instrumentedBackend forwards every access to the inner model while
// updating a telemetry counter and histogram per request — denser
// instrumentation than any production path (which meters per point, not
// per access), so it bounds what wiring the registry into a hot loop can
// ever cost.
type instrumentedBackend struct {
	inner mem.Backend
	reqs  *telemetry.Counter
	sizes *telemetry.Histogram
}

func (b *instrumentedBackend) Access(req *mem.Request) {
	b.reqs.Inc()
	b.sizes.Observe(float64(req.Size))
	b.inner.Access(req)
}

// The telemetry contract of ISSUE 10: an instrumented model hot loop keeps
// the zero-allocation steady state. Counter.Inc and Histogram.Observe are
// atomic updates on pre-registered series — registration happens once,
// outside the loop — so the per-op cost is branches and atomics, never an
// allocation.
func TestInstrumentedDRAMSteadyStateZeroAllocs(t *testing.T) {
	reg := telemetry.NewRegistry()
	eng := sim.New()
	sys := &instrumentedBackend{
		inner: dram.New(eng, dram.DDR4(2666, 2, 2)),
		reqs:  reg.Counter("mess_test_requests_total", "requests through the instrumented loop"),
		sizes: reg.Histogram("mess_test_request_bytes", "request sizes", []float64{32, 64, 128}),
	}
	if per := steadyStateAllocsPerOp(t, eng, sys, perfload.PatternMixed, 4000); per >= allocTolerance {
		t.Fatalf("instrumented DRAM steady state allocates %.4f/op, want ~0", per)
	}
	if sys.reqs.Value() == 0 {
		t.Fatal("instrumentation never fired: counter stayed 0")
	}
}
