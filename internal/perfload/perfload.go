// Package perfload holds the canonical kernel and model performance
// workloads, shared by the root -bench=Kernel micro-benchmarks and the
// cmd/messperf trajectory runner so both always measure the same thing:
// a tuning change here moves the regression gate and BENCH_sim.json
// together, never one without the other.
package perfload

import (
	"fmt"

	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// ScheduleFire drives n schedule+fire pairs through 8 self-perpetuating
// event chains with short DDR-like deltas — the pattern the DRAM command
// scheduler and pacing loops generate. The headline kernel number.
func ScheduleFire(eng *sim.Engine, n int) {
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < n {
			eng.After(3*sim.Nanosecond+sim.Time(fired%7)*100, tick)
		}
	}
	for i := 0; i < 8 && i < n; i++ {
		eng.After(sim.Time(i)*sim.Nanosecond, tick)
	}
	eng.Run()
}

// WheelDense drives n events through 512 concurrent chains — a crowded
// wheel with many occupied buckets.
func WheelDense(eng *sim.Engine, n int) {
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < n {
			eng.After(sim.Time(500+fired%97*13), tick)
		}
	}
	for i := 0; i < 512 && i < n; i++ {
		eng.After(sim.Time(i), tick)
	}
	eng.Run()
}

// FarHorizon drives n events whose deadlines all land beyond the timer
// wheel horizon, exercising the overflow heap and its cascade back in.
func FarHorizon(eng *sim.Engine, n int) {
	fired := 0
	far := 2 * sim.Microsecond // ≫ the 262 ns wheel horizon
	var tick func()
	tick = func() {
		fired++
		if fired < n {
			eng.After(far+sim.Time(fired%13)*1000, tick)
		}
	}
	for i := 0; i < 8 && i < n; i++ {
		eng.After(sim.Time(i), tick)
	}
	eng.Run()
}

// Cancel drives n schedule+cancel pairs — the churn the DRAM decide path
// generates — with periodic drains so tombstones are swept in bulk.
func Cancel(eng *sim.Engine, n int) {
	nop := func() {}
	for i := 0; i < n; i++ {
		h := eng.Schedule(eng.Now()+sim.Time(100+i%211), nop)
		h.Cancel()
		if i%1024 == 1023 {
			eng.RunUntil(eng.Now() + 300*sim.Nanosecond)
		}
	}
	eng.Run()
}

// TimerRearm drives n arm+fire cycles of a fixed-callback pacing timer.
func TimerRearm(eng *sim.Engine, n int) {
	fired := 0
	var tm *sim.Timer
	tm = eng.NewTimer(func() {
		fired++
		if fired < n {
			tm.ArmAfter(sim.Time(200 + fired%31))
		}
	})
	tm.ArmAfter(1)
	eng.Run()
}

// LoopPattern selects the address and operation stream of the closed-loop
// driver. The reference pattern alone tracks the scheduler only on its
// friendliest terms; the additional patterns pin the row-miss-dominated
// and the mixed read/write (drain-episode) regimes in the BENCH_sim.json
// trajectory, where scheduler regressions hide from a single workload.
type LoopPattern uint8

const (
	// PatternReference is the historical workload: 48 read streams with a
	// row-buffer-hostile inter-stream stride, sequential within a stream.
	PatternReference LoopPattern = iota
	// PatternRandom is a mapper-defeating xorshift walk over a 16 GiB
	// span: essentially every access activates a new row in a pseudo-
	// random bank — the all-miss regime where the pick scan finds no hits
	// and the activate/refresh bookkeeping dominates.
	PatternRandom
	// PatternMixed issues the reference walk at a 2:1 read/write ratio;
	// the posted writes build the controller's write queue to its
	// watermark and force periodic drain episodes with bus turnarounds.
	PatternMixed
)

func (p LoopPattern) String() string {
	switch p {
	case PatternRandom:
		return "random"
	case PatternMixed:
		return "mixed"
	default:
		return "reference"
	}
}

// ClosedLoopDriver issues requests against a memory backend with up to 256
// outstanding, each completion re-issuing — the saturation pattern of the
// model throughput measurements. Requests ride the driver's pool with one
// stored completion callback, so the steady-state loop is the 0 allocs/op
// pattern the BENCH_sim.json allocs_per_op column tracks. The driver is
// reusable: repeated Run calls keep the pool, engine and backend warm,
// which is how the steady-state allocation tests and the messperf warmup
// measure the sustained path rather than cold-start growth.
type ClosedLoopDriver struct {
	eng     *sim.Engine
	backend mem.Backend
	pool    *mem.RequestPool
	done    mem.DoneFunc
	pattern LoopPattern

	// Sharded form (NewShardedClosedLoop): the driver lives on the group's
	// home shard, every issue crosses to the owning channel shard after
	// hop, and Run drives the whole group.
	group *sim.ShardGroup
	timed mem.TimedBackend
	hop   sim.Time

	line      uint64
	rng       uint64
	completed int
	target    int
}

// NewClosedLoop builds a driver over the backend running the reference
// pattern.
func NewClosedLoop(eng *sim.Engine, backend mem.Backend) *ClosedLoopDriver {
	return NewClosedLoopPattern(eng, backend, PatternReference)
}

// NewClosedLoopPattern builds a driver running the given pattern.
func NewClosedLoopPattern(eng *sim.Engine, backend mem.Backend, pattern LoopPattern) *ClosedLoopDriver {
	d := &ClosedLoopDriver{
		eng:     eng,
		backend: backend,
		pool:    mem.NewRequestPool(),
		pattern: pattern,
		rng:     0x9e3779b97f4a7c15,
	}
	d.done = func(sim.Time, *mem.Request) {
		d.completed++
		if d.completed < d.target {
			d.issue()
		}
	}
	return d
}

// NewShardedClosedLoop builds a driver on the group's home shard issuing
// through a sharded (timed) backend. hop is the core→controller flight
// time of every request — the delivery delay of each issue and therefore
// the home shard's declared lookahead, exactly the role the cache's
// outbound on-chip hop plays in the benchmark topology.
func NewShardedClosedLoop(group *sim.ShardGroup, backend mem.TimedBackend, hop sim.Time, pattern LoopPattern) *ClosedLoopDriver {
	d := NewClosedLoopPattern(group.Engine(0), backend, pattern)
	d.group, d.timed, d.hop = group, backend, hop
	group.SetLookaheadOut(0, hop)
	return d
}

// NewTimedClosedLoop builds a single-engine driver that issues with the
// same per-request delivery delay a sharded driver would use — the
// unsharded reference leg for completion-trace and A/B comparisons
// against NewShardedClosedLoop.
func NewTimedClosedLoop(eng *sim.Engine, backend mem.TimedBackend, hop sim.Time, pattern LoopPattern) *ClosedLoopDriver {
	d := NewClosedLoopPattern(eng, nil, pattern)
	d.timed, d.hop = backend, hop
	return d
}

func (d *ClosedLoopDriver) issue() {
	// The reference walk is shared: random replaces the address, mixed
	// replaces every third op — so the patterns stay variants of one
	// stream rather than three drifting copies.
	addr := (d.line%48)*(1<<28+97*64) + (d.line/48)*64
	op := mem.Read
	switch d.pattern {
	case PatternRandom:
		d.rng ^= d.rng << 13
		d.rng ^= d.rng >> 7
		d.rng ^= d.rng << 17
		addr = d.rng % (16 << 30) &^ 63
	case PatternMixed:
		if d.line%3 == 2 {
			op = mem.Write
		}
	}
	d.line++
	req := d.pool.Get(addr, op, d.done)
	if d.timed != nil {
		d.timed.AccessAt(req, d.eng.Now()+d.hop)
		return
	}
	d.backend.Access(req)
}

// Run drives n requests to completion and drains the engine. A backend
// that loses a completion would drain the engine early with requests
// unfinished; that is a lifecycle bug, not a measurement, so Run panics
// rather than let throughput numbers silently inflate.
func (d *ClosedLoopDriver) Run(n int) {
	d.target = d.completed + n
	for i := 0; i < 256 && i < n; i++ {
		d.issue()
	}
	if d.group != nil {
		d.group.Run()
	} else {
		d.eng.Run()
	}
	if d.completed < d.target {
		panic(fmt.Sprintf("perfload: backend completed %d of %d requests (lost completion?)",
			d.completed-(d.target-n), n))
	}
}

// Completed reports total requests completed across all runs.
func (d *ClosedLoopDriver) Completed() int { return d.completed }

// Pool exposes the driver's request pool (tests assert Live() == 0 after a
// drained run).
func (d *ClosedLoopDriver) Pool() *mem.RequestPool { return d.pool }

// ClosedLoop is the one-shot form: n requests on a fresh driver.
func ClosedLoop(eng *sim.Engine, backend mem.Backend, n int) {
	NewClosedLoop(eng, backend).Run(n)
}
