// Package perfload holds the canonical kernel and model performance
// workloads, shared by the root -bench=Kernel micro-benchmarks and the
// cmd/messperf trajectory runner so both always measure the same thing:
// a tuning change here moves the regression gate and BENCH_sim.json
// together, never one without the other.
package perfload

import (
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// ScheduleFire drives n schedule+fire pairs through 8 self-perpetuating
// event chains with short DDR-like deltas — the pattern the DRAM command
// scheduler and pacing loops generate. The headline kernel number.
func ScheduleFire(eng *sim.Engine, n int) {
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < n {
			eng.After(3*sim.Nanosecond+sim.Time(fired%7)*100, tick)
		}
	}
	for i := 0; i < 8 && i < n; i++ {
		eng.After(sim.Time(i)*sim.Nanosecond, tick)
	}
	eng.Run()
}

// WheelDense drives n events through 512 concurrent chains — a crowded
// wheel with many occupied buckets.
func WheelDense(eng *sim.Engine, n int) {
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < n {
			eng.After(sim.Time(500+fired%97*13), tick)
		}
	}
	for i := 0; i < 512 && i < n; i++ {
		eng.After(sim.Time(i), tick)
	}
	eng.Run()
}

// FarHorizon drives n events whose deadlines all land beyond the timer
// wheel horizon, exercising the overflow heap and its cascade back in.
func FarHorizon(eng *sim.Engine, n int) {
	fired := 0
	far := 2 * sim.Microsecond // ≫ the 262 ns wheel horizon
	var tick func()
	tick = func() {
		fired++
		if fired < n {
			eng.After(far+sim.Time(fired%13)*1000, tick)
		}
	}
	for i := 0; i < 8 && i < n; i++ {
		eng.After(sim.Time(i), tick)
	}
	eng.Run()
}

// Cancel drives n schedule+cancel pairs — the churn the DRAM decide path
// generates — with periodic drains so tombstones are swept in bulk.
func Cancel(eng *sim.Engine, n int) {
	nop := func() {}
	for i := 0; i < n; i++ {
		h := eng.Schedule(eng.Now()+sim.Time(100+i%211), nop)
		h.Cancel()
		if i%1024 == 1023 {
			eng.RunUntil(eng.Now() + 300*sim.Nanosecond)
		}
	}
	eng.Run()
}

// TimerRearm drives n arm+fire cycles of a fixed-callback pacing timer.
func TimerRearm(eng *sim.Engine, n int) {
	fired := 0
	var tm *sim.Timer
	tm = eng.NewTimer(func() {
		fired++
		if fired < n {
			tm.ArmAfter(sim.Time(200 + fired%31))
		}
	})
	tm.ArmAfter(1)
	eng.Run()
}

// ClosedLoop issues n read requests against a memory backend with 256
// outstanding, each completion re-issuing — the saturation pattern of the
// model throughput measurements. The address walk spreads across 48
// streams with a row-buffer-hostile stride.
func ClosedLoop(eng *sim.Engine, backend mem.Backend, n int) {
	var line uint64
	completed := 0
	var issue func()
	issue = func() {
		addr := (line%48)*(1<<28+97*64) + (line/48)*64
		line++
		backend.Access(&mem.Request{Addr: addr, Op: mem.Read, Done: func(sim.Time) {
			completed++
			if completed < n {
				issue()
			}
		}})
	}
	for i := 0; i < 256 && i < n; i++ {
		issue()
	}
	eng.Run()
}
