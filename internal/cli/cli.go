// Package cli collects the small pieces every cmd/* binary previously
// duplicated: fatal-error reporting, platform lookup and scale parsing,
// and construction of a characterization service from the shared
// -cache-dir / -cache-url flag convention.
package cli

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/mess-sim/mess/internal/charz"
	"github.com/mess-sim/mess/internal/curvestore"
	"github.com/mess-sim/mess/internal/exp"
	"github.com/mess-sim/mess/internal/faultz"
	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/telemetry"
)

// CurveURLEnv is the environment variable consulted when the -cache-url
// flag is empty, so a fleet can point every tool at its curve server
// without touching invocations. (Defined in curvestore; the facade's
// default service reads the same variable.)
const CurveURLEnv = curvestore.EnvURL

// CurveURLUsage is the shared help text of the -cache-url flag.
const CurveURLUsage = "remote curve store base URL, e.g. http://host:9400 (cmd/messcurved; default $" + curvestore.EnvURL + "); fail-soft — a down server falls back to local tiers"

// Telemetry carries the shared observability flags (-log-json, -v, and
// for tools that opt in, -trace-out) and builds the telemetry.Set the
// tool threads through the stack.
type Telemetry struct {
	LogJSON  bool
	Verbose  bool
	TraceOut string

	set *telemetry.Set
}

// TelemetryFlags registers -log-json and -v on the default flag set —
// the convention every cmd/* binary follows. Call before flag.Parse.
func TelemetryFlags() *Telemetry {
	t := &Telemetry{}
	flag.BoolVar(&t.LogJSON, "log-json", false, "write structured logs as JSON (one object per line) instead of text")
	flag.BoolVar(&t.Verbose, "v", false, "verbose: log per-characterization and per-request detail")
	return t
}

// WithTrace additionally registers -trace-out for tools that can export a
// sim-timeline trace. Call before flag.Parse; chain off TelemetryFlags.
func (t *Telemetry) WithTrace() *Telemetry {
	flag.StringVar(&t.TraceOut, "trace-out", "", "write a Chrome trace_event JSON timeline of the run to this file (load in Perfetto or chrome://tracing)")
	return t
}

// Set resolves the flags into the tool's observability bundle: a metrics
// registry and a structured logger always, a tracer when -trace-out asked
// for one. Idempotent after flag.Parse.
func (t *Telemetry) Set() *telemetry.Set {
	if t.set == nil {
		t.set = &telemetry.Set{
			Metrics: telemetry.NewRegistry(),
			Log:     telemetry.NewLogger(telemetry.LogConfig{JSON: t.LogJSON, Verbose: t.Verbose}),
		}
		if t.TraceOut != "" {
			t.set.Tracer = telemetry.NewTracer()
		}
	}
	return t.set
}

// WriteTrace exports the recorded timeline to the -trace-out path. A
// no-op when the flag was not set; any recording drop is reported on the
// logger so a truncated trace is never mistaken for a complete one.
func (t *Telemetry) WriteTrace() error {
	if t.TraceOut == "" {
		return nil
	}
	tr := t.Set().Trace()
	f, err := os.Create(t.TraceOut)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if n := tr.Dropped(); n > 0 {
		t.Set().Logger().Warn("trace buffer overflowed; timeline truncated", "dropped_events", n)
	}
	t.Set().Logger().Info("trace written", "path", t.TraceOut, "events", tr.Events())
	return nil
}

// prog is the invoked binary's base name, used as the error prefix.
func prog() string {
	if len(os.Args) == 0 || os.Args[0] == "" {
		return "mess"
	}
	return filepath.Base(os.Args[0])
}

// Fatal prints "<prog>: err" to stderr and exits 1.
func Fatal(err error) {
	fmt.Fprintln(os.Stderr, prog()+":", err)
	os.Exit(1)
}

// Fatalf formats and exits like Fatal.
func Fatalf(format string, args ...any) {
	Fatal(fmt.Errorf(format, args...))
}

// MustPlatform resolves a platform by display name or exits with the list
// of valid names.
func MustPlatform(name string) platform.Spec {
	spec, err := platform.ByName(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, prog()+":", err)
		fmt.Fprintln(os.Stderr, "available platforms:")
		for _, p := range platform.All() {
			fmt.Fprintln(os.Stderr, "  "+p.Name)
		}
		os.Exit(1)
	}
	return spec
}

// ParseScale maps the -scale flag convention to an experiment scale.
func ParseScale(name string) (exp.Scale, error) {
	switch name {
	case "quick":
		return exp.Quick, nil
	case "full":
		return exp.Full, nil
	}
	return exp.Quick, fmt.Errorf("unknown scale %q (want quick or full)", name)
}

// MustScale parses the scale or exits.
func MustScale(name string) exp.Scale {
	s, err := ParseScale(name)
	if err != nil {
		Fatal(err)
	}
	return s
}

// Service builds a characterization service honouring the shared
// -cache-dir / -cache-max-mb / -cache-url flag convention: an empty dir
// means in-memory only, otherwise curve families persist under dir
// (sharded by key prefix) and later invocations skip re-simulation. A
// positive maxMB bounds the store, evicting least-recently-used families.
// A non-empty cacheURL (or, when it is empty, $MESS_CURVE_URL) adds the
// fleet-shared remote tier: families are fetched from and uploaded to that
// curve server, consulted after the local tiers and fully fail-soft. A
// malformed URL is a configuration error and exits — fail-soft covers the
// server being down, not a bad flag.
//
// tel, when non-nil, instruments the whole stack the service fronts: the
// service itself, the benchmark sweeps it runs, and the remote tier's
// retry/circuit behaviour all report into tel's registry, tracer and
// logger (see TelemetryFlags).
func Service(cacheDir string, maxMB int, cacheURL string, tel *telemetry.Set) *charz.Service {
	var store *charz.DiskStore
	if cacheDir != "" {
		var err error
		store, err = charz.NewDiskStore(cacheDir)
		if err != nil {
			Fatal(err)
		}
		if maxMB > 0 {
			store.SetMaxBytes(int64(maxMB) << 20)
		}
	}
	if cacheURL == "" {
		cacheURL = os.Getenv(CurveURLEnv)
	}
	var remote curvestore.Store
	if cacheURL != "" {
		cfg := curvestore.ClientConfig{}
		if spec := os.Getenv(FaultzEnv); spec != "" {
			// Chaos harness hook: interpose the seeded fault transport
			// between the client and the wire, so CI (and operators
			// rehearsing an incident) can drive any tool through a hostile
			// schedule without rebuilding it. A bad spec exits loudly — a
			// silently-dropped fault plan tests nothing.
			fcfg, err := faultz.ParseConfig(spec)
			if err != nil {
				Fatal(err)
			}
			plan, err := faultz.NewPlan(fcfg)
			if err != nil {
				Fatal(err)
			}
			cfg.HTTPClient = &http.Client{
				Timeout:   30 * time.Second,
				Transport: faultz.NewTransport(nil, plan),
			}
		}
		client, err := curvestore.NewClient(cacheURL, cfg)
		if err != nil {
			Fatal(err)
		}
		client.Instrument(tel.Registry())
		remote = client
	}
	return charz.New(charz.Config{Store: store, Remote: remote, Telemetry: tel})
}

// FaultzEnv, when set, wraps every remote curve-store client Service
// builds with the fault-injection transport it specifies (see
// faultz.ParseConfig for the format) — the hook the CI chaos leg drives
// the real binaries through.
const FaultzEnv = "MESS_FAULTZ"

// TimeoutUsage is the shared help text of the -timeout flag.
const TimeoutUsage = "abort the run after this duration (e.g. 90s, 10m; 0 means none); in-flight sweeps stop at the next point boundary"

// Context returns the root context every cached tool runs under: cancelled
// by SIGINT/SIGTERM (first signal cancels and lets the tool drain; a
// second kills the process via the restored default handler) and, when
// timeout is positive, by a deadline. Call stop to release the signal
// watcher on clean exits.
func Context(timeout time.Duration) (ctx context.Context, stop func()) {
	ctx, stop = signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		sigStop := stop
		stop = func() { cancel(); sigStop() }
	}
	return ctx, stop
}

// PrintStats writes a one-line cache summary for verbose tool output.
func PrintStats(s *charz.Service) {
	st := s.Stats()
	fmt.Printf("characterizations: %d simulated, %d memory hits, %d disk hits, %d remote hits\n",
		st.Runs, st.MemoryHits, st.DiskHits, st.RemoteHits)
}
