package charz

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/mess-sim/mess/internal/bench"
	"github.com/mess-sim/mess/internal/cache"
	"github.com/mess-sim/mess/internal/core"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/sim"
)

// bg is the do-not-care context for calls whose cancellation behaviour is
// not under test.
var bg = context.Background()

// fakeRun returns a RunFunc that fabricates a small deterministic family
// and counts invocations.
func fakeRun(calls *atomic.Int64, delay time.Duration) RunFunc {
	return func(ctx context.Context, spec platform.Spec, opt bench.Options) (*bench.Result, error) {
		calls.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		fam := &core.Family{
			Label:         spec.Name,
			TheoreticalBW: 100,
			Curves: []core.Curve{
				{ReadRatio: 0.5, Points: []core.Point{{BW: 1, Latency: 95}, {BW: 60, Latency: 260}}},
				{ReadRatio: 1.0, Points: []core.Point{{BW: 1, Latency: 90}, {BW: 80, Latency: 200}}},
			},
		}
		return &bench.Result{
			Spec:    spec,
			Family:  fam,
			Samples: []bench.Sample{{BWGBs: 80, LatNs: 200, RdRatio: 1}},
		}, nil
	}
}

func testSpec(name string) platform.Spec {
	s := platform.Skylake()
	s.Name = name
	return s
}

func TestSingleflightDedup(t *testing.T) {
	var calls atomic.Int64
	svc := New(Config{Run: fakeRun(&calls, 20*time.Millisecond)})
	req := Request{Spec: testSpec("dedup"), Options: bench.QuickOptions()}

	const n = 32
	arts := make([]*Artifact, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			art, err := svc.Characterize(req)
			if err != nil {
				t.Error(err)
				return
			}
			arts[i] = art
		}(i)
	}
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("bench ran %d times for one key under %d concurrent requests, want exactly 1", got, n)
	}
	stats := svc.Stats()
	if stats.Runs != 1 || stats.MemoryHits != n-1 {
		t.Fatalf("stats = %+v, want 1 run and %d memory hits", stats, n-1)
	}
	runs := 0
	for _, art := range arts {
		if art.Family == nil || len(art.Family.Curves) != 2 {
			t.Fatalf("artifact missing family: %+v", art)
		}
		if art.Source == SourceRun {
			runs++
		}
	}
	if runs != 1 {
		t.Fatalf("%d artifacts claim SourceRun, want exactly 1", runs)
	}
}

func TestArtifactsAreIsolatedCopies(t *testing.T) {
	var calls atomic.Int64
	svc := New(Config{Run: fakeRun(&calls, 0)})
	req := Request{Spec: testSpec("isolated"), Options: bench.QuickOptions()}

	a, err := svc.Characterize(req)
	if err != nil {
		t.Fatal(err)
	}
	a.Family.Label = "mutated by caller"
	a.Family.Curves[0].Points[0].Latency = -1

	b, err := svc.Characterize(req)
	if err != nil {
		t.Fatal(err)
	}
	if b.Family.Label != "isolated" {
		t.Fatalf("cache corrupted by caller relabel: %q", b.Family.Label)
	}
	if b.Family.Curves[0].Points[0].Latency != 95 {
		t.Fatalf("cache corrupted by caller point mutation: %+v", b.Family.Curves[0].Points[0])
	}
	if calls.Load() != 1 {
		t.Fatalf("second request re-ran the benchmark (%d calls)", calls.Load())
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	svc := New(Config{Run: fakeRun(&calls, 0), Store: store})
	req := Request{Spec: testSpec("disk"), Options: bench.QuickOptions()}

	first, err := svc.Characterize(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Source != SourceRun || calls.Load() != 1 {
		t.Fatalf("first request: source=%v calls=%d", first.Source, calls.Load())
	}

	// A fresh service sharing the directory models a second CLI invocation.
	var calls2 atomic.Int64
	svc2 := New(Config{Run: fakeRun(&calls2, 0), Store: store})
	second, err := svc2.Characterize(req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Source != SourceDisk {
		t.Fatalf("second process source = %v, want disk", second.Source)
	}
	if calls2.Load() != 0 {
		t.Fatalf("second process re-simulated (%d calls)", calls2.Load())
	}
	if second.Result != nil {
		t.Fatal("disk-served artifact fabricated raw samples")
	}
	if second.Family.Label != first.Family.Label ||
		len(second.Family.Curves) != len(first.Family.Curves) {
		t.Fatalf("family mangled in CSV round trip: %+v vs %+v", second.Family, first.Family)
	}
	for i, c := range second.Family.Curves {
		want := first.Family.Curves[i]
		if c.ReadRatio != want.ReadRatio || len(c.Points) != len(want.Points) {
			t.Fatalf("curve %d mangled: %+v vs %+v", i, c, want)
		}
	}
}

func TestNeedSamplesUpgradesDiskEntry(t *testing.T) {
	store, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Spec: testSpec("upgrade"), Options: bench.QuickOptions()}
	if err := store.Save(bg, Fingerprint(req), &core.Family{
		Label: "upgrade", TheoreticalBW: 100,
		Curves: []core.Curve{{ReadRatio: 1, Points: []core.Point{{BW: 1, Latency: 90}, {BW: 50, Latency: 150}}}},
	}); err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int64
	svc := New(Config{Run: fakeRun(&calls, 0), Store: store})

	famOnly, err := svc.Characterize(req)
	if err != nil {
		t.Fatal(err)
	}
	if famOnly.Source != SourceDisk || calls.Load() != 0 {
		t.Fatalf("family-only request: source=%v calls=%d, want disk hit", famOnly.Source, calls.Load())
	}

	req.NeedSamples = true
	withSamples, err := svc.Characterize(req)
	if err != nil {
		t.Fatal(err)
	}
	if withSamples.Result == nil || len(withSamples.Result.Samples) == 0 {
		t.Fatal("NeedSamples request returned no raw samples")
	}
	if calls.Load() != 1 {
		t.Fatalf("samples upgrade ran %d simulations, want 1", calls.Load())
	}

	// The upgraded entry now serves both request shapes from memory.
	again, err := svc.Characterize(req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Source != SourceMemory || calls.Load() != 1 {
		t.Fatalf("post-upgrade request: source=%v calls=%d", again.Source, calls.Load())
	}
}

func TestCharacterizeAllBoundedConcurrency(t *testing.T) {
	var calls atomic.Int64
	var inFlight, maxInFlight atomic.Int64
	base := fakeRun(&calls, 0)
	run := func(ctx context.Context, spec platform.Spec, opt bench.Options) (*bench.Result, error) {
		cur := inFlight.Add(1)
		for {
			max := maxInFlight.Load()
			if cur <= max || maxInFlight.CompareAndSwap(max, cur) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
		defer inFlight.Add(-1)
		return base(ctx, spec, opt)
	}

	const workers = 3
	svc := New(Config{Run: run, Workers: workers})
	var reqs []Request
	for _, name := range []string{"p1", "p2", "p3", "p4", "p5", "p6", "p2", "p4"} {
		reqs = append(reqs, Request{Spec: testSpec(name), Options: bench.QuickOptions()})
	}
	arts, err := svc.CharacterizeAll(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, art := range arts {
		if art == nil || art.Family == nil {
			t.Fatalf("artifact %d missing", i)
		}
		if art.Family.Label != reqs[i].Spec.Name {
			t.Fatalf("artifact %d has family %q, want %q", i, art.Family.Label, reqs[i].Spec.Name)
		}
	}
	if got := calls.Load(); got != 6 {
		t.Fatalf("ran %d simulations for 6 unique keys (8 requests), want 6", got)
	}
	if max := maxInFlight.Load(); max > workers {
		t.Fatalf("observed %d concurrent runs, pool bound is %d", max, workers)
	}
	if max := maxInFlight.Load(); max < 2 {
		t.Fatalf("observed %d concurrent runs — fan-out not actually parallel", max)
	}
}

func TestCharacterizeAllReportsFailures(t *testing.T) {
	boom := errors.New("boom")
	run := func(ctx context.Context, spec platform.Spec, opt bench.Options) (*bench.Result, error) {
		if spec.Name == "bad" {
			return nil, boom
		}
		var calls atomic.Int64
		return fakeRun(&calls, 0)(ctx, spec, opt)
	}
	svc := New(Config{Run: run})
	arts, err := svc.CharacterizeAll([]Request{
		{Spec: testSpec("good"), Options: bench.QuickOptions()},
		{Spec: testSpec("bad"), Options: bench.QuickOptions()},
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if arts[0] == nil || arts[1] != nil {
		t.Fatalf("artifact slots wrong: %v", arts)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	var calls atomic.Int64
	fail := true
	run := func(ctx context.Context, spec platform.Spec, opt bench.Options) (*bench.Result, error) {
		calls.Add(1)
		if fail {
			return nil, errors.New("transient")
		}
		var c atomic.Int64
		return fakeRun(&c, 0)(ctx, spec, opt)
	}
	svc := New(Config{Run: run})
	req := Request{Spec: testSpec("retry"), Options: bench.QuickOptions()}
	if _, err := svc.Characterize(req); err == nil {
		t.Fatal("first request should fail")
	}
	fail = false
	art, err := svc.Characterize(req)
	if err != nil {
		t.Fatalf("retry after transient failure: %v", err)
	}
	if art.Source != SourceRun || calls.Load() != 2 {
		t.Fatalf("retry: source=%v calls=%d, want a fresh run", art.Source, calls.Load())
	}
}

func TestUntaggedBackendBypassesCache(t *testing.T) {
	var calls atomic.Int64
	svc := New(Config{Run: fakeRun(&calls, 0)})
	opt := bench.QuickOptions()
	opt.Backend = func(eng *sim.Engine) mem.Backend { return nil }
	req := Request{Spec: testSpec("untagged"), Options: opt}
	for i := 0; i < 2; i++ {
		if _, err := svc.Characterize(req); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("untagged backend requests ran %d times, want 2 (no caching without identity)", calls.Load())
	}
	if s := svc.Stats(); s.Uncacheable != 2 {
		t.Fatalf("stats = %+v, want 2 uncacheable", s)
	}

	// The same backend with a tag is cacheable.
	req.Tag = "model:test"
	for i := 0; i < 2; i++ {
		if _, err := svc.Characterize(req); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 3 {
		t.Fatalf("tagged backend requests ran %d total, want 3", calls.Load())
	}
}

func TestFingerprintStability(t *testing.T) {
	base := func() Request {
		return Request{Spec: testSpec("fp"), Options: bench.QuickOptions()}
	}
	k := Fingerprint(base())
	if k != Fingerprint(base()) {
		t.Fatal("identical requests fingerprint differently")
	}

	// Execution-only knobs must not move the key.
	same := base()
	same.Options.Parallelism = 7
	if Fingerprint(same) != k {
		t.Fatal("Parallelism leaked into the fingerprint")
	}
	// Sharding is execution-only too: sharded results are byte-identical,
	// so sharded and unsharded environments must share cache entries.
	sharded := base()
	sharded.Options.Shards = 4
	sharded.Options.NoShard = true
	if Fingerprint(sharded) != k {
		t.Fatal("Shards/NoShard leaked into the fingerprint")
	}
	// Explicitly writing a default must equal leaving it zero.
	defaulted := base()
	defaulted.Options.ChaseLines = 1 << 19
	defaulted.Options.ArrayBytes = 32 << 20
	if Fingerprint(defaulted) != k {
		t.Fatal("explicit defaults fingerprint differently from implied defaults")
	}

	// Every semantically relevant change must move the key.
	mutations := map[string]func(*Request){
		"spec name":      func(r *Request) { r.Spec.Name = "other" },
		"cores":          func(r *Request) { r.Spec.Cores++ },
		"freq":           func(r *Request) { r.Spec.FreqGHz += 0.1 },
		"dram channels":  func(r *Request) { r.Spec.DRAM.Channels++ },
		"dram CL":        func(r *Request) { r.Spec.DRAM.Timing.CL += sim.Nanosecond },
		"write policy":   func(r *Request) { r.Spec.Policy = cache.WriteThrough },
		"on-chip lat":    func(r *Request) { r.Spec.OnChipLatency += sim.Nanosecond },
		"mshrs":          func(r *Request) { r.Spec.MSHRs++ },
		"mixes":          func(r *Request) { r.Options.Mixes = append(r.Options.Mixes, bench.Mix{StorePercent: 70}) },
		"nt mix":         func(r *Request) { r.Options.Mixes[0].NonTemporal = true },
		"paces":          func(r *Request) { r.Options.PacesNs = append(r.Options.PacesNs, 1024) },
		"warmup":         func(r *Request) { r.Options.Warmup = 9 * sim.Microsecond },
		"measure":        func(r *Request) { r.Options.Measure = 9 * sim.Microsecond },
		"chase lines":    func(r *Request) { r.Options.ChaseLines = 1 << 20 },
		"array bytes":    func(r *Request) { r.Options.ArrayBytes = 1 << 20 },
		"tag":            func(r *Request) { r.Tag = "model:fixed" },
		"cache override": func(r *Request) { r.Options.Cache = &cache.Config{MSHRs: 4} },
		"bugged evict": func(r *Request) {
			cfg := r.Spec.CacheConfig()
			cfg.EvictCleanAsDirty = true
			r.Options.Cache = &cfg
		},
	}
	seen := map[Key]string{k: "base"}
	for name, mutate := range mutations {
		r := base()
		mutate(&r)
		got := Fingerprint(r)
		if prev, dup := seen[got]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[got] = name
	}
}

// TestFingerprintGolden pins the digest of a fixed reference request. If
// this fails after an intentional spec/options change, bump the encoding
// version prefix in Fingerprint and update the constant — silently
// re-keying would orphan every on-disk cache entry.
func TestFingerprintGolden(t *testing.T) {
	req := Request{Spec: platform.Skylake(), Options: bench.QuickOptions(), Tag: ""}
	a := Fingerprint(req)
	b := Fingerprint(req)
	if a != b {
		t.Fatal("fingerprint not deterministic")
	}
	if len(a.String()) != 64 || a.Short() != a.String()[:12] {
		t.Fatalf("key rendering broken: %q / %q", a.String(), a.Short())
	}
}

func TestResetEvictsEntries(t *testing.T) {
	var calls atomic.Int64
	svc := New(Config{Run: fakeRun(&calls, 0)})
	req := Request{Spec: testSpec("reset"), Options: bench.QuickOptions()}
	if _, err := svc.Characterize(req); err != nil {
		t.Fatal(err)
	}
	svc.Reset()
	art, err := svc.Characterize(req)
	if err != nil {
		t.Fatal(err)
	}
	if art.Source != SourceRun || calls.Load() != 2 {
		t.Fatalf("post-Reset request: source=%v calls=%d, want a fresh run", art.Source, calls.Load())
	}
}

func TestFamilyOnlyHitSkipsSampleCopy(t *testing.T) {
	var calls atomic.Int64
	svc := New(Config{Run: fakeRun(&calls, 0)})
	req := Request{Spec: testSpec("famonly"), Options: bench.QuickOptions()}
	art, err := svc.Characterize(req)
	if err != nil {
		t.Fatal(err)
	}
	if art.Result != nil {
		t.Fatal("family-only request received a raw-sample Result")
	}
	// The same entry still serves a NeedSamples request without re-running:
	// the live run populated res; only the artifact shape differs.
	req.NeedSamples = true
	withSamples, err := svc.Characterize(req)
	if err != nil {
		t.Fatal(err)
	}
	if withSamples.Result == nil || calls.Load() != 1 {
		t.Fatalf("NeedSamples after live run: result=%v calls=%d", withSamples.Result, calls.Load())
	}
}

func TestNeedSamplesUpgradeNotCountedAsHit(t *testing.T) {
	store, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Spec: testSpec("hitstats"), Options: bench.QuickOptions()}
	if err := store.Save(bg, Fingerprint(req), &core.Family{
		Label: "hitstats", TheoreticalBW: 100,
		Curves: []core.Curve{{ReadRatio: 1, Points: []core.Point{{BW: 1, Latency: 90}, {BW: 50, Latency: 150}}}},
	}); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	svc := New(Config{Run: fakeRun(&calls, 0), Store: store})
	if _, err := svc.Characterize(req); err != nil { // disk hit
		t.Fatal(err)
	}
	req.NeedSamples = true
	if _, err := svc.Characterize(req); err != nil { // upgrade: run, not a hit
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.MemoryHits != 0 || st.DiskHits != 1 || st.Runs != 1 {
		t.Fatalf("stats = %+v, want 0 memory hits, 1 disk hit, 1 run", st)
	}
}

// --- sharded store layout, migration and eviction ---

func famForStoreTest(label string) *core.Family {
	return &core.Family{
		Label:         label,
		TheoreticalBW: 100,
		Curves: []core.Curve{
			{ReadRatio: 1.0, Points: []core.Point{{BW: 1, Latency: 90}, {BW: 80, Latency: 200}}},
		},
	}
}

func keyForStoreTest(i int) Key {
	return Fingerprint(Request{Spec: testSpec(fmt.Sprintf("shard-%d", i)), Options: bench.QuickOptions()})
}

func TestDiskStoreShardsByKeyPrefix(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := keyForStoreTest(1)
	if err := store.Save(bg, key, famForStoreTest("sharded")); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(dir, key.String()[:2], key.String()+".csv")
	if store.Path(key) != want {
		t.Fatalf("Path = %q, want %q", store.Path(key), want)
	}
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("saved file not in shard subdirectory: %v", err)
	}
	fam, ok, err := store.Load(bg, key)
	if err != nil || !ok {
		t.Fatalf("Load after sharded save: ok=%v err=%v", ok, err)
	}
	if fam.Label != "sharded" {
		t.Fatalf("label = %q", fam.Label)
	}
}

func TestDiskStoreMigratesFlatLayout(t *testing.T) {
	dir := t.TempDir()
	// Fabricate a pre-shard store: key files directly under dir.
	keys := []Key{keyForStoreTest(10), keyForStoreTest(11), keyForStoreTest(12)}
	for i, k := range keys {
		var buf bytes.Buffer
		if err := famForStoreTest(fmt.Sprintf("flat-%d", i)).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, k.String()+".csv"), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A stray non-key file must survive untouched.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a curve"), 0o644); err != nil {
		t.Fatal(err)
	}

	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		fam, ok, err := store.Load(bg, k)
		if err != nil || !ok {
			t.Fatalf("key %d unreadable after migration: ok=%v err=%v", i, ok, err)
		}
		if want := fmt.Sprintf("flat-%d", i); fam.Label != want {
			t.Fatalf("key %d label = %q, want %q", i, fam.Label, want)
		}
		if _, err := os.Stat(filepath.Join(dir, k.String()+".csv")); !os.IsNotExist(err) {
			t.Fatalf("flat file %d still present after migration", i)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "README.txt")); err != nil {
		t.Fatalf("migration disturbed non-key file: %v", err)
	}
	// Re-opening an already-sharded store is a no-op.
	if _, err := NewDiskStore(dir); err != nil {
		t.Fatal(err)
	}
}

func TestDiskStoreGCEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	keys := make([]Key, n)
	var fileSize int64
	for i := range keys {
		keys[i] = keyForStoreTest(100 + i)
		if err := store.Save(bg, keys[i], famForStoreTest("gc")); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(store.Path(keys[i]))
		if err != nil {
			t.Fatal(err)
		}
		fileSize = fi.Size()
		// Distinct mtimes establish the LRU order: keys[0] oldest.
		old := time.Now().Add(-time.Duration(n-i) * time.Hour)
		if err := os.Chtimes(store.Path(keys[i]), old, old); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the oldest via Load: it becomes the most recently used.
	if _, ok, err := store.Load(bg, keys[0]); !ok || err != nil {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}

	store.SetMaxBytes(fileSize * 4)
	evicted, err := store.GC()
	if err != nil {
		t.Fatal(err)
	}
	if evicted != n-4 {
		t.Fatalf("evicted %d files, want %d", evicted, n-4)
	}
	// The loaded key survived; the next-oldest untouched keys are gone.
	if _, ok, _ := store.Load(bg, keys[0]); !ok {
		t.Fatal("recently loaded key was evicted")
	}
	for i := 1; i <= n-4; i++ {
		if _, ok, _ := store.Load(bg, keys[i]); ok {
			t.Fatalf("stale key %d survived GC", i)
		}
	}
	for i := n - 3; i < n; i++ {
		if _, ok, _ := store.Load(bg, keys[i]); !ok {
			t.Fatalf("recent key %d was evicted", i)
		}
	}
	sz, err := store.Size()
	if err != nil {
		t.Fatal(err)
	}
	if sz > fileSize*4 {
		t.Fatalf("store size %d exceeds budget %d after GC", sz, fileSize*4)
	}
}

func TestDiskStoreSaveTriggersGC(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Budget of ~2 files: saving many more must keep the store bounded.
	if err := store.Save(bg, keyForStoreTest(200), famForStoreTest("seed")); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(store.Path(keyForStoreTest(200)))
	if err != nil {
		t.Fatal(err)
	}
	store.SetMaxBytes(fi.Size()*2 + fi.Size()/2)
	for i := 0; i < 2*gcEvery; i++ {
		if err := store.Save(bg, keyForStoreTest(300+i), famForStoreTest("fill")); err != nil {
			t.Fatal(err)
		}
	}
	sz, err := store.Size()
	if err != nil {
		t.Fatal(err)
	}
	// The store may transiently exceed the budget between GC passes, but
	// after this many saves it must have been brought back near it (within
	// one inter-GC batch of the bound).
	limit := fi.Size()*2 + fi.Size()/2 + int64(gcEvery+1)*fi.Size()
	if sz > limit {
		t.Fatalf("store size %d never bounded (limit %d)", sz, limit)
	}
	if _, err := os.Stat(store.Path(keyForStoreTest(300 + 2*gcEvery - 1))); err != nil {
		t.Fatalf("most recent save missing: %v", err)
	}
}
