package charz

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/mess-sim/mess/internal/core"
)

// DiskStore persists curve families under a cache directory, one file per
// key in the release CSV format (core.Family.WriteCSV / core.ReadCSV), so
// cached curves stay loadable by the standalone tools and by the upstream
// Mess simulator release format alike. File names are the hex key, making
// the store content-addressed: a stale file cannot be served for a changed
// configuration, because the changed configuration hashes elsewhere.
type DiskStore struct {
	dir string
}

// NewDiskStore opens (creating if needed) a store rooted at dir.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("charz: creating cache dir: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir reports the store's root directory.
func (d *DiskStore) Dir() string { return d.dir }

// Path reports where the family for key lives (whether or not it exists).
func (d *DiskStore) Path(key Key) string {
	return filepath.Join(d.dir, key.String()+".csv")
}

// Load reads the family for key. ok is false when the key is absent; a
// present but unparsable file is an error.
func (d *DiskStore) Load(key Key) (fam *core.Family, ok bool, err error) {
	f, err := os.Open(d.Path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("charz: opening cached curves: %w", err)
	}
	defer f.Close()
	fam, err = core.ReadCSV(f)
	if err != nil {
		return nil, false, fmt.Errorf("charz: parsing cached curves %s: %w", d.Path(key), err)
	}
	return fam, true, nil
}

// Save writes the family for key atomically (temp file + rename), so a
// crashed or concurrent writer never leaves a torn CSV for readers.
func (d *DiskStore) Save(key Key, fam *core.Family) error {
	tmp, err := os.CreateTemp(d.dir, "."+key.Short()+"-*.tmp")
	if err != nil {
		return fmt.Errorf("charz: creating cache temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := fam.WriteCSV(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("charz: writing cached curves: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), d.Path(key)); err != nil {
		return fmt.Errorf("charz: installing cached curves: %w", err)
	}
	return nil
}
