package charz

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mess-sim/mess/internal/core"
)

// DiskStore persists curve families under a cache directory, one file per
// key in the release CSV format (core.Family.WriteCSV / core.ReadCSV), so
// cached curves stay loadable by the standalone tools and by the upstream
// Mess simulator release format alike. File names are the hex key, making
// the store content-addressed: a stale file cannot be served for a changed
// configuration, because the changed configuration hashes elsewhere.
//
// # Layout
//
// Files are sharded into 256 subdirectories by the first two hex digits of
// the key (dir/ab/abcdef….csv), so a full-sweep cache of thousands of
// families never produces a directory large enough to slow lookups or
// directory scans. Stores written by earlier versions — flat files directly
// under dir — are migrated into their shards transparently when the store
// is opened.
//
// # Eviction
//
// An optional size bound (SetMaxBytes, or the -cache-max-mb CLI flag)
// turns the store into an LRU cache: Load refreshes a file's modification
// time, and a GC pass evicts least-recently-used families until the store
// fits the budget. GC runs automatically after saves (amortized — roughly
// every 32 writes once the budget is near) and can be invoked explicitly.
type DiskStore struct {
	dir string

	mu        sync.Mutex
	maxBytes  int64
	sizeKnown bool
	sizeBytes int64 // approximate resident bytes while sizeKnown
	saves     int   // saves since the last GC pass

	evictions atomic.Int64 // cumulative files evicted by GC
}

// gcEvery bounds how many saves may elapse between automatic GC passes
// once a size budget is set.
const gcEvery = 32

// NewDiskStore opens (creating if needed) a store rooted at dir, migrating
// any flat pre-shard layout into the sharded one.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("charz: creating cache dir: %w", err)
	}
	d := &DiskStore{dir: dir}
	if err := d.migrate(); err != nil {
		return nil, err
	}
	return d, nil
}

// Dir reports the store's root directory.
func (d *DiskStore) Dir() string { return d.dir }

// SetMaxBytes bounds the store's on-disk size; 0 (the default) disables
// eviction. The bound is enforced by GC passes, not per write, so the store
// may transiently exceed it by the files saved since the last pass.
func (d *DiskStore) SetMaxBytes(n int64) {
	d.mu.Lock()
	d.maxBytes = n
	d.mu.Unlock()
}

// isKeyFile reports whether name is a content-addressed curve file.
func isKeyFile(name string) bool {
	if !strings.HasSuffix(name, ".csv") {
		return false
	}
	stem := strings.TrimSuffix(name, ".csv")
	if len(stem) != 64 {
		return false
	}
	for _, c := range stem {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// migrate moves flat key files from the store root into their shard
// subdirectories. It is idempotent and tolerates concurrent migrators: a
// rename that fails because the source vanished is another opener having
// won the race.
func (d *DiskStore) migrate() error {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("charz: scanning cache dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !isKeyFile(e.Name()) {
			continue
		}
		shard := filepath.Join(d.dir, e.Name()[:2])
		if err := os.MkdirAll(shard, 0o755); err != nil {
			return fmt.Errorf("charz: creating shard dir: %w", err)
		}
		if err := os.Rename(filepath.Join(d.dir, e.Name()), filepath.Join(shard, e.Name())); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("charz: migrating %s into shard: %w", e.Name(), err)
		}
	}
	return nil
}

// Path reports where the family for key lives (whether or not it exists).
func (d *DiskStore) Path(key Key) string {
	k := key.String()
	return filepath.Join(d.dir, k[:2], k+".csv")
}

// Load reads the family for key. ok is false when the key is absent; a
// present but unparsable file is an error — and is quarantined: the file
// is renamed to <name>.bad, so the key reads as a clean miss from then on
// and heals by re-save, instead of re-erroring on every lookup forever. A
// hit refreshes the file's modification time, which is the recency signal
// the GC pass evicts by. Local file I/O is fast enough that the context is
// checked only on entry.
func (d *DiskStore) Load(ctx context.Context, key Key) (fam *core.Family, ok bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	path := d.Path(key)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("charz: opening cached curves: %w", err)
	}
	defer f.Close()
	fam, err = core.ReadCSV(f)
	if err != nil {
		d.quarantine(path)
		return nil, false, fmt.Errorf("charz: parsing cached curves %s: %w", path, err)
	}
	// Best-effort LRU touch; a read-only store still serves hits.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return fam, true, nil
}

// quarantine sidelines an unreadable curve file as <name>.bad — kept for a
// post-mortem rather than deleted, invisible to isKeyFile so the key is a
// clean miss until a re-save heals it, and swept by GC like an orphaned
// temp file. Best-effort: on a read-only store the rename fails and the
// file keeps erroring, which is no worse than before.
func (d *DiskStore) quarantine(path string) {
	_ = os.Rename(path, path+".bad")
}

// Save writes the family for key atomically (temp file + rename), so a
// crashed or concurrent writer never leaves a torn CSV for readers. When a
// size budget is set, an amortized GC pass keeps the store under it.
func (d *DiskStore) Save(ctx context.Context, key Key, fam *core.Family) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	shard := filepath.Dir(d.Path(key))
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("charz: creating shard dir: %w", err)
	}
	tmp, err := os.CreateTemp(shard, "."+key.Short()+"-*.tmp")
	if err != nil {
		return fmt.Errorf("charz: creating cache temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := fam.WriteCSV(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("charz: writing cached curves: %w", err)
	}
	var written int64
	if fi, err := tmp.Stat(); err == nil {
		written = fi.Size()
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), d.Path(key)); err != nil {
		return fmt.Errorf("charz: installing cached curves: %w", err)
	}
	d.noteSave(written)
	return nil
}

// noteSave tracks the approximate store size and triggers the amortized GC
// pass when the budget is exceeded (or every gcEvery saves as a backstop).
func (d *DiskStore) noteSave(written int64) {
	d.mu.Lock()
	// Keep the size estimate fresh even with no budget: Size() feeds the
	// curve server's /v1/stats, which must not report a stale walk.
	if d.sizeKnown {
		d.sizeBytes += written
	}
	max := d.maxBytes
	if max <= 0 {
		d.mu.Unlock()
		return
	}
	d.saves++
	over := d.sizeKnown && d.sizeBytes > max
	due := d.saves >= gcEvery || !d.sizeKnown
	d.mu.Unlock()
	if over || due {
		_, _ = d.GC()
	}
}

// GC evicts least-recently-used curve files until the store fits its size
// budget, reporting how many files it removed. With no budget set it only
// refreshes the internal size estimate. Eviction is safe at any time: the
// store is content-addressed, so an evicted family is simply re-simulated
// (and re-saved) on its next request.
func (d *DiskStore) GC() (evicted int, err error) {
	type file struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []file
	var total int64
	shards, err := os.ReadDir(d.dir)
	if err != nil {
		return 0, fmt.Errorf("charz: scanning cache dir: %w", err)
	}
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(d.dir, sh.Name()))
		if err != nil {
			continue // shard vanished under us
		}
		for _, e := range entries {
			fi, err := e.Info()
			if err != nil {
				continue
			}
			if !isKeyFile(e.Name()) {
				// Sweep temp files orphaned by a killed writer and
				// quarantined (.bad) files past their post-mortem window:
				// both are invisible to Load yet consume the budget.
				// Anything still mid-write is far younger than an hour.
				stale := strings.HasSuffix(e.Name(), ".tmp") || strings.HasSuffix(e.Name(), ".bad")
				if stale && time.Since(fi.ModTime()) > time.Hour {
					_ = os.Remove(filepath.Join(d.dir, sh.Name(), e.Name()))
				}
				continue
			}
			files = append(files, file{
				path:  filepath.Join(d.dir, sh.Name(), e.Name()),
				size:  fi.Size(),
				mtime: fi.ModTime(),
			})
			total += fi.Size()
		}
	}

	d.mu.Lock()
	max := d.maxBytes
	d.mu.Unlock()
	if max > 0 && total > max {
		// Oldest (least recently loaded or saved) first.
		sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
		for _, f := range files {
			if total <= max {
				break
			}
			if rmErr := os.Remove(f.path); rmErr != nil {
				if os.IsNotExist(rmErr) {
					total -= f.size
					continue
				}
				err = rmErr
				continue
			}
			total -= f.size
			evicted++
		}
	}

	d.mu.Lock()
	d.sizeKnown = true
	d.sizeBytes = total
	d.saves = 0
	d.mu.Unlock()
	d.evictions.Add(int64(evicted))
	return evicted, err
}

// Evictions reports the cumulative number of files GC has evicted — the
// counter the curve server surfaces in /v1/stats.
func (d *DiskStore) Evictions() int64 { return d.evictions.Load() }

// Size reports the store's current resident bytes (walking the store if no
// estimate is cached yet).
func (d *DiskStore) Size() (int64, error) {
	d.mu.Lock()
	if d.sizeKnown {
		n := d.sizeBytes
		d.mu.Unlock()
		return n, nil
	}
	d.mu.Unlock()
	if _, err := d.GC(); err != nil {
		return 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sizeBytes, nil
}
