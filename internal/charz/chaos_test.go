package charz

// Chaos tests: drive the real characterization stack — service, tiered
// store, HTTP client, in-process messcurved handler — through seeded
// hostile schedules (internal/faultz) and assert the resilience contract
// the rest of the repository merely states:
//
//   - a caller never sees an error from cache trouble, only from its own
//     cancellation;
//   - each key re-simulates at most once per process, faults or not;
//   - whatever arrives through a hostile wire is byte-identical to the
//     fault-free result (corruption is detected, never served);
//   - corrupt entries quarantine and heal by re-upload;
//   - cancellation propagates through hung dependencies in bounded time.
//
// Every schedule is seeded, so a failure reproduces from its log line.

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"github.com/mess-sim/mess/internal/bench"
	"github.com/mess-sim/mess/internal/curvestore"
	"github.com/mess-sim/mess/internal/faultz"
	"github.com/mess-sim/mess/internal/platform"
)

// chaosClient builds a curve-store client whose every request passes
// through the fault plan, with retries and circuit recovery fast enough
// for a test soak. The 250 ms request timeout converts injected hangs into
// transport errors, exactly as a production deadline would.
func chaosClient(t *testing.T, url string, plan *faultz.Plan) *curvestore.Client {
	t.Helper()
	c, err := curvestore.NewClient(url, curvestore.ClientConfig{
		HTTPClient: &http.Client{
			Timeout:   250 * time.Millisecond,
			Transport: faultz.NewTransport(nil, plan),
		},
		Retries:  2,
		Backoff:  time.Millisecond,
		Cooldown: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// referenceCSVs runs the fault-free pipeline once and returns each key's
// canonical CSV — the byte-identity oracle for every chaos run.
func referenceCSVs(t *testing.T, reqs []Request) map[string][]byte {
	t.Helper()
	var calls atomic.Int64
	svc := New(Config{Run: fakeRun(&calls, 0)})
	out := make(map[string][]byte, len(reqs))
	for _, req := range reqs {
		art, err := svc.Characterize(req)
		if err != nil {
			t.Fatal(err)
		}
		out[req.Spec.Name] = csvBytes(t, art)
	}
	return out
}

// TestChaosHostileRemoteInvariants is the headline chaos soak: two
// independent services share one real in-process curve server through a
// transport injecting errors, hangs, latency, corruption and truncation.
// The callers must ride through all of it.
func TestChaosHostileRemoteInvariants(t *testing.T) {
	ts, _, _ := newCurved(t)

	const seed = 20240822
	plan := faultz.MustPlan(faultz.Config{
		Seed:      seed,
		ErrorP:    0.2,
		HangP:     0.05,
		CorruptP:  0.15,
		TruncateP: 0.1,
		LatencyP:  0.2,
		Latency:   2 * time.Millisecond,
	})
	t.Logf("chaos seed %d", seed)

	var reqs []Request
	for _, n := range []string{"c1", "c2", "c3", "c4", "c5", "c6"} {
		reqs = append(reqs, Request{Spec: testSpec(n), Options: bench.QuickOptions()})
	}
	want := referenceCSVs(t, reqs)

	soak := func(label string) int64 {
		var calls atomic.Int64
		svc := New(Config{Run: fakeRun(&calls, 0), Remote: chaosClient(t, ts.URL, plan)})
		for _, req := range reqs {
			// Twice per key: the second request must come from the
			// process-local memory tier, proving a key re-simulates at most
			// once no matter what the remote tier does.
			before := calls.Load()
			for i := 0; i < 2; i++ {
				art, err := svc.Characterize(req)
				if err != nil {
					t.Fatalf("%s: %s request %d surfaced a cache failure: %v", label, req.Spec.Name, i, err)
				}
				if got := csvBytes(t, art); !bytes.Equal(got, want[req.Spec.Name]) {
					t.Fatalf("%s: %s served curves differing from the fault-free run:\ngot:\n%s\nwant:\n%s",
						label, req.Spec.Name, got, want[req.Spec.Name])
				}
			}
			if calls.Load() > before+1 {
				t.Fatalf("%s: %s simulated %d times in one process, want at most 1",
					label, req.Spec.Name, calls.Load()-before)
			}
		}
		return calls.Load()
	}

	callsA := soak("machine A")
	if callsA != int64(len(reqs)) {
		t.Fatalf("machine A ran %d simulations for %d cold keys, want one each", callsA, len(reqs))
	}
	// Machine B may be served remotely (when the wire cooperated) or
	// re-simulate (when it did not) — but never more than once per key, and
	// never an error. That bound is asserted inside soak.
	callsB := soak("machine B")
	if callsB > int64(len(reqs)) {
		t.Fatalf("machine B ran %d simulations for %d keys", callsB, len(reqs))
	}

	st := plan.Stats()
	if st.Injected() == 0 {
		t.Fatalf("hostile schedule injected nothing over %d ops — the soak tested a healthy wire", st.Ops)
	}
	t.Logf("injected %d faults over %d ops: %+v (machine B re-simulated %d/%d)",
		st.Injected(), st.Ops, st, callsB, len(reqs))
}

// TestChaosCorruptServerEntryQuarantinedAndHealed corrupts a stored entry
// on the server's disk and checks the full repair loop: the server
// quarantines on load, serves a miss, the client re-simulates and
// re-uploads, and the next machine is served the healed entry.
func TestChaosCorruptServerEntryQuarantinedAndHealed(t *testing.T) {
	disk, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Serve straight from disk (no hot tier) so the corrupted file is what
	// the GET path actually reads.
	ts := httptest.NewServer(curvestore.NewServer(disk, curvestore.ServerConfig{}))
	t.Cleanup(ts.Close)

	req := Request{Spec: testSpec("heal"), Options: bench.QuickOptions()}
	want := referenceCSVs(t, []Request{req})[req.Spec.Name]
	key := Fingerprint(req)

	var callsA atomic.Int64
	svcA := New(Config{Run: fakeRun(&callsA, 0), Remote: remoteClient(t, ts.URL)})
	if _, err := svcA.Characterize(req); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := disk.Load(bg, key); !ok || err != nil {
		t.Fatalf("upload did not land on the server disk: ok=%v err=%v", ok, err)
	}

	// Bit-rot on the server: the stored CSV is now garbage.
	if err := os.WriteFile(disk.Path(key), []byte("not,a,curve\nat all\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var callsB atomic.Int64
	svcB := New(Config{Run: fakeRun(&callsB, 0), Remote: remoteClient(t, ts.URL)})
	artB, err := svcB.Characterize(req)
	if err != nil {
		t.Fatalf("corrupt server entry surfaced as an error: %v", err)
	}
	if artB.Source != SourceRun || callsB.Load() != 1 {
		t.Fatalf("corrupt entry not treated as a miss: source=%v calls=%d", artB.Source, callsB.Load())
	}
	if !bytes.Equal(csvBytes(t, artB), want) {
		t.Fatal("re-simulated curves differ from the fault-free run")
	}

	// The poisoned file is quarantined for post-mortem, and the key healed
	// by machine B's re-upload.
	if _, err := os.Stat(disk.Path(key) + ".bad"); err != nil {
		t.Fatalf("corrupt entry not quarantined: %v", err)
	}
	fam, ok, err := disk.Load(bg, key)
	if err != nil || !ok {
		t.Fatalf("entry not healed by re-upload: ok=%v err=%v", ok, err)
	}
	var healed bytes.Buffer
	if err := fam.WriteCSV(&healed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(healed.Bytes(), want) {
		t.Fatal("healed entry differs from the fault-free curves")
	}

	// A third machine is served the healed entry remotely — zero runs.
	var callsC atomic.Int64
	svcC := New(Config{Run: fakeRun(&callsC, 0), Remote: remoteClient(t, ts.URL)})
	artC, err := svcC.Characterize(req)
	if err != nil {
		t.Fatal(err)
	}
	if artC.Source != SourceRemote || callsC.Load() != 0 {
		t.Fatalf("healed entry not served remotely: source=%v calls=%d", artC.Source, callsC.Load())
	}
}

// TestChaosCorruptDownloadRejected serves an intact entry through a
// transport that corrupts the response body: the client's ETag integrity
// check must reject it (a miss, hence a re-simulation), never hand
// plausible-but-wrong curves to the caller.
func TestChaosCorruptDownloadRejected(t *testing.T) {
	ts, _, _ := newCurved(t)

	req := Request{Spec: testSpec("integrity"), Options: bench.QuickOptions()}
	want := referenceCSVs(t, []Request{req})[req.Spec.Name]

	// Seed the server with the intact entry.
	var seedCalls atomic.Int64
	if _, err := New(Config{Run: fakeRun(&seedCalls, 0), Remote: remoteClient(t, ts.URL)}).Characterize(req); err != nil {
		t.Fatal(err)
	}

	// Machine B's first download is corrupted in flight; everything after
	// is clean.
	plan := faultz.MustPlan(faultz.Config{Script: []faultz.Fault{{Kind: faultz.Corrupt}}})
	var calls atomic.Int64
	svc := New(Config{Run: fakeRun(&calls, 0), Remote: chaosClient(t, ts.URL, plan)})
	art, err := svc.Characterize(req)
	if err != nil {
		t.Fatalf("corrupt download surfaced as an error: %v", err)
	}
	if art.Source != SourceRun || calls.Load() != 1 {
		t.Fatalf("corrupt download not rejected: source=%v calls=%d (a bit-flipped body was trusted?)",
			art.Source, calls.Load())
	}
	if !bytes.Equal(csvBytes(t, art), want) {
		t.Fatal("re-simulated curves differ from the fault-free run")
	}
}

// TestChaosFlakyServerSoak flaps the curve server up and down across a
// multi-key run — the mid-incident fleet. Every characterization must
// succeed, each key simulating exactly once in the process regardless of
// which flap it landed on, and a later machine must end up with
// byte-identical curves whether it was served remotely or re-simulated.
func TestChaosFlakyServerSoak(t *testing.T) {
	_, srv, _ := newCurved(t)
	var down atomic.Bool
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "mid-incident", http.StatusServiceUnavailable)
			return
		}
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	var reqs []Request
	for _, n := range []string{"f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8"} {
		reqs = append(reqs, Request{Spec: testSpec(n), Options: bench.QuickOptions()})
	}
	want := referenceCSVs(t, reqs)

	var callsA atomic.Int64
	svcA := New(Config{Run: fakeRun(&callsA, 0), Remote: remoteClient(t, flaky.URL)})
	for i, req := range reqs {
		down.Store(i%2 == 1) // flap between every key
		for j := 0; j < 2; j++ {
			art, err := svcA.Characterize(req)
			if err != nil {
				t.Fatalf("%s (server down=%v): %v", req.Spec.Name, down.Load(), err)
			}
			if !bytes.Equal(csvBytes(t, art), want[req.Spec.Name]) {
				t.Fatalf("%s: curves differ from fault-free run", req.Spec.Name)
			}
		}
	}
	if callsA.Load() != int64(len(reqs)) {
		t.Fatalf("flapping server caused %d simulations for %d keys, want exactly one each", callsA.Load(), len(reqs))
	}

	// Recovery: with the server back up, a fresh machine covers every key
	// through some mix of remote hits (keys uploaded while up) and
	// re-simulation (keys lost to the flaps) — never an error, always the
	// same bytes.
	down.Store(false)
	var callsB atomic.Int64
	svcB := New(Config{Run: fakeRun(&callsB, 0), Remote: remoteClient(t, flaky.URL)})
	for _, req := range reqs {
		art, err := svcB.Characterize(req)
		if err != nil {
			t.Fatalf("post-recovery %s: %v", req.Spec.Name, err)
		}
		if !bytes.Equal(csvBytes(t, art), want[req.Spec.Name]) {
			t.Fatalf("post-recovery %s: curves differ from fault-free run", req.Spec.Name)
		}
	}
	st := svcB.Stats()
	if st.Runs+st.RemoteHits != int64(len(reqs)) {
		t.Fatalf("machine B stats %+v do not cover %d keys", st, len(reqs))
	}
	if srv.Stats().Puts == 0 {
		t.Fatal("no upload ever reached the server — the soak never exercised the up phase")
	}
	t.Logf("machine B after recovery: %d remote hits, %d re-simulations", st.RemoteHits, st.Runs)
}

// TestDiskStoreQuarantineHealsBySave pins the local-tier half of the
// quarantine story: an unparsable cache file errors once, reads as a clean
// miss from then on, heals by re-save, and the sidelined .bad file is
// swept by GC after its post-mortem window.
func TestDiskStoreQuarantineHealsBySave(t *testing.T) {
	store, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := keyForStoreTest(42)
	if err := store.Save(bg, key, famForStoreTest("healme")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(store.Path(key), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// First read: an error (and the file is sidelined).
	if _, ok, err := store.Load(bg, key); ok || err == nil {
		t.Fatalf("corrupt entry read back: ok=%v err=%v", ok, err)
	}
	bad := store.Path(key) + ".bad"
	if _, err := os.Stat(bad); err != nil {
		t.Fatalf("corrupt file not quarantined: %v", err)
	}
	// Second read: a clean miss, not a recurring error.
	if _, ok, err := store.Load(bg, key); ok || err != nil {
		t.Fatalf("quarantined key not a clean miss: ok=%v err=%v", ok, err)
	}
	// Re-save heals the key.
	if err := store.Save(bg, key, famForStoreTest("healed")); err != nil {
		t.Fatal(err)
	}
	fam, ok, err := store.Load(bg, key)
	if err != nil || !ok || fam.Label != "healed" {
		t.Fatalf("key not healed by re-save: fam=%v ok=%v err=%v", fam, ok, err)
	}

	// GC sweeps the quarantined file once it is older than the post-mortem
	// window, but leaves a fresh one alone.
	if _, err := store.GC(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(bad); err != nil {
		t.Fatalf("fresh quarantine file swept too early: %v", err)
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(bad, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := store.GC(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatalf("stale quarantine file survived GC: %v", err)
	}
}

// TestCharacterizeContextCancelsBlockedRun proves caller cancellation cuts
// through a characterization stuck in the benchmark itself.
func TestCharacterizeContextCancelsBlockedRun(t *testing.T) {
	blocked := New(Config{Run: func(ctx context.Context, spec platform.Spec, opt bench.Options) (*bench.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	ctx, cancel := context.WithCancel(bg)
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := blocked.CharacterizeContext(ctx, Request{Spec: testSpec("cancel-run"), Options: bench.QuickOptions()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to propagate", elapsed)
	}
}

// TestCharacterizeContextCancelsHungRemote proves a deadline cuts through
// a remote tier that hangs (a wedged server holding the connection open):
// the caller gets its deadline error in bounded time, not a stuck lookup.
func TestCharacterizeContextCancelsHungRemote(t *testing.T) {
	hung := faultz.NewStore(curvestore.NewMemory(4), faultz.MustPlan(faultz.Config{HangP: 1}))
	var calls atomic.Int64
	svc := New(Config{Run: fakeRun(&calls, 0), Remote: hung})

	ctx, cancel := context.WithTimeout(bg, 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := svc.CharacterizeContext(ctx, Request{Spec: testSpec("cancel-remote"), Options: bench.QuickOptions()})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to cut through the hung tier", elapsed)
	}

	// The same service still works for a caller with a live context: the
	// injected plan is exhausted per-op, so give it a fresh benign remote.
	live := New(Config{Run: fakeRun(&calls, 0)})
	if _, err := live.CharacterizeContext(bg, Request{Spec: testSpec("cancel-remote"), Options: bench.QuickOptions()}); err != nil {
		t.Fatalf("follow-up characterization failed: %v", err)
	}
}
