package charz

import (
	"bytes"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/mess-sim/mess/internal/bench"
	"github.com/mess-sim/mess/internal/curvestore"
)

// newCurved starts an in-process curve server — the exact handler
// cmd/messcurved serves — over a fresh sharded DiskStore, mirroring its
// production memory→disk tier composition.
func newCurved(t *testing.T) (*httptest.Server, *curvestore.Server, *DiskStore) {
	t.Helper()
	disk, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := curvestore.NewServer(
		curvestore.NewTiered(curvestore.NewMemory(64), disk),
		curvestore.ServerConfig{SaveStore: disk, StatsStore: disk},
	)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv, disk
}

func remoteClient(t *testing.T, url string) *curvestore.Client {
	t.Helper()
	c, err := curvestore.NewClient(url, curvestore.ClientConfig{
		Retries:  1,
		Backoff:  time.Millisecond,
		Cooldown: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func csvBytes(t *testing.T, art *Artifact) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := art.Family.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRemoteStoreFleetRoundTrip is the shared-fleet acceptance test: two
// independent characterization services (two machines) behind one
// in-process messcurved perform exactly one benchmark run between them,
// and the curves served from the remote tier are byte-identical to the
// locally produced ones.
func TestRemoteStoreFleetRoundTrip(t *testing.T) {
	ts, srv, _ := newCurved(t)

	req := Request{Spec: testSpec("fleet"), Options: bench.QuickOptions()}

	// Machine A: local disk + remote. A fresh key simulates once, saving
	// to both tiers.
	diskA, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var callsA atomic.Int64
	svcA := New(Config{Run: fakeRun(&callsA, 0), Store: diskA, Remote: remoteClient(t, ts.URL)})
	artA, err := svcA.Characterize(req)
	if err != nil {
		t.Fatal(err)
	}
	if artA.Source != SourceRun || callsA.Load() != 1 {
		t.Fatalf("machine A: source=%v calls=%d, want one fresh run", artA.Source, callsA.Load())
	}
	if st := srv.Stats(); st.Puts != 1 {
		t.Fatalf("fresh run not uploaded: server stats %+v", st)
	}

	// Machine B: different disk, same server. The curves come from the
	// remote tier — zero additional benchmark runs across the fleet.
	diskB, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var callsB atomic.Int64
	svcB := New(Config{Run: fakeRun(&callsB, 0), Store: diskB, Remote: remoteClient(t, ts.URL)})
	artB, err := svcB.Characterize(req)
	if err != nil {
		t.Fatal(err)
	}
	if artB.Source != SourceRemote {
		t.Fatalf("machine B source = %v, want remote", artB.Source)
	}
	if got := callsA.Load() + callsB.Load(); got != 1 {
		t.Fatalf("fleet ran %d benchmarks for one key across two machines, want exactly 1", got)
	}
	if st := svcB.Stats(); st.RemoteHits != 1 || st.Runs != 0 {
		t.Fatalf("machine B stats = %+v, want 1 remote hit and 0 runs", st)
	}

	// The remote-served CSV is byte-identical to the locally produced one.
	if !bytes.Equal(csvBytes(t, artA), csvBytes(t, artB)) {
		t.Fatalf("remote curves differ from local ones:\nA:\n%s\nB:\n%s", csvBytes(t, artA), csvBytes(t, artB))
	}

	// The remote hit was promoted into machine B's disk tier: a third
	// process on machine B is served locally even with the server gone.
	key := Fingerprint(req)
	if _, ok, err := diskB.Load(bg, key); !ok || err != nil {
		t.Fatalf("remote hit not promoted into the local disk store: ok=%v err=%v", ok, err)
	}
	ts.Close()
	var callsB2 atomic.Int64
	svcB2 := New(Config{Run: fakeRun(&callsB2, 0), Store: diskB, Remote: remoteClient(t, ts.URL)})
	artB2, err := svcB2.Characterize(req)
	if err != nil {
		t.Fatal(err)
	}
	if artB2.Source != SourceDisk || callsB2.Load() != 0 {
		t.Fatalf("post-promotion local read: source=%v calls=%d, want a disk hit", artB2.Source, callsB2.Load())
	}
	if !bytes.Equal(csvBytes(t, artA), csvBytes(t, artB2)) {
		t.Fatal("disk-tier curves differ from the original run")
	}
}

// TestRemoteStoreFleetDedupAcrossBatch drives both services through a
// multi-key batch and checks the fleet-wide invariant: one run per unique
// key, no matter which machine asked first.
func TestRemoteStoreFleetDedupAcrossBatch(t *testing.T) {
	ts, srv, _ := newCurved(t)

	names := []string{"p1", "p2", "p3", "p4"}
	var reqs []Request
	for _, n := range names {
		reqs = append(reqs, Request{Spec: testSpec(n), Options: bench.QuickOptions()})
	}

	var callsA, callsB atomic.Int64
	svcA := New(Config{Run: fakeRun(&callsA, 0), Remote: remoteClient(t, ts.URL)})
	svcB := New(Config{Run: fakeRun(&callsB, 0), Remote: remoteClient(t, ts.URL)})

	if _, err := svcA.CharacterizeAll(reqs[:3]); err != nil { // p1 p2 p3 run on A
		t.Fatal(err)
	}
	if _, err := svcB.CharacterizeAll(reqs); err != nil { // p4 runs on B, rest remote
		t.Fatal(err)
	}
	if got := callsA.Load() + callsB.Load(); got != int64(len(names)) {
		t.Fatalf("fleet ran %d benchmarks for %d unique keys, want exactly %d", got, len(names), len(names))
	}
	if st := svcB.Stats(); st.RemoteHits != 3 || st.Runs != 1 {
		t.Fatalf("machine B stats = %+v, want 3 remote hits and 1 run", st)
	}
	if st := srv.Stats(); st.Puts != int64(len(names)) {
		t.Fatalf("server holds %d families, want %d", st.Puts, len(names))
	}
}

// TestRemoteStoreFailSoft kills the server mid-fleet: characterizations
// must keep succeeding from local tiers — first from disk, then by
// re-simulating — and never surface the outage as an error.
func TestRemoteStoreFailSoft(t *testing.T) {
	ts, _, _ := newCurved(t)

	disk, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	svc := New(Config{Run: fakeRun(&calls, 0), Store: disk, Remote: remoteClient(t, ts.URL)})

	warm := Request{Spec: testSpec("warm"), Options: bench.QuickOptions()}
	if _, err := svc.Characterize(warm); err != nil {
		t.Fatal(err)
	}

	ts.Close() // the server dies mid-run

	// A key already in the local disk tier: served from disk.
	svc.Reset() // force past the in-memory entry to the tier lookup
	art, err := svc.Characterize(warm)
	if err != nil {
		t.Fatalf("disk-backed characterization failed with the server down: %v", err)
	}
	if art.Source != SourceDisk {
		t.Fatalf("source = %v, want disk", art.Source)
	}

	// A brand-new key: the remote tier errors on load AND save, and the
	// characterization still succeeds by simulating locally.
	cold := Request{Spec: testSpec("cold"), Options: bench.QuickOptions()}
	art, err = svc.Characterize(cold)
	if err != nil {
		t.Fatalf("fresh characterization failed with the server down: %v", err)
	}
	if art.Source != SourceRun {
		t.Fatalf("source = %v, want run", art.Source)
	}
	// And it still persisted to the surviving local tier.
	if _, ok, _ := disk.Load(bg, Fingerprint(cold)); !ok {
		t.Fatal("family not saved to the local disk tier while the server was down")
	}
}
