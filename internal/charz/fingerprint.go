package charz

import (
	"crypto/sha256"
	"fmt"
	"io"

	"github.com/mess-sim/mess/internal/bench"
	"github.com/mess-sim/mess/internal/cache"
	"github.com/mess-sim/mess/internal/curvestore"
	"github.com/mess-sim/mess/internal/platform"
)

// Key is the content-addressed identity of a characterization: a SHA-256
// digest over a canonical encoding of the platform spec, the normalized
// benchmark options and the backend tag. Equal keys mean the simulation
// would produce bit-identical curve families, so one result can serve every
// requester — in memory within a process, on disk across processes, and
// (via a curve server) across machines. The type lives in curvestore, the
// storage layer shared by every tier; this alias keeps charz's API stable.
type Key = curvestore.Key

// Fingerprint computes the request's cache key. The encoding writes every
// semantically relevant field in a fixed order with explicit field names,
// so reordering struct fields cannot silently alias two distinct
// configurations; adding a new field to Spec or Options requires extending
// this function (the stability test pins the digest of a reference config
// to catch accidental drift).
//
// Execution-only knobs are excluded: Options.Parallelism changes host
// scheduling, not results, and Options.Backend is a function value whose
// identity must instead be carried by Request.Tag.
func Fingerprint(req Request) Key {
	h := sha256.New()
	// v3: device models (CXL expander, remote socket, Optane) now commit
	// completions as tagged entities (DevTagBase) instead of untagged
	// CompleteAt, so exact equal-instant ties against other events can
	// resolve differently than v2 for backends that include a device —
	// v2 curves in shared stores must not satisfy v3 requests.
	// (v2: timed hand-off counted at send; entity-tag tie order.)
	fmt.Fprintf(h, "charz/v3\ntag=%q\nhasBackend=%t\n", req.Tag, req.Options.Backend != nil)
	writeSpec(h, req.Spec)
	writeOptions(h, req.Options.Normalized())
	var k Key
	h.Sum(k[:0])
	return k
}

func writeSpec(w io.Writer, s platform.Spec) {
	fmt.Fprintf(w, "spec.name=%q\nspec.released=%q\nspec.cores=%d\nspec.freqGHz=%v\n",
		s.Name, s.Released, s.Cores, s.FreqGHz)
	d := s.DRAM
	fmt.Fprintf(w, "dram.name=%q\ndram.channels=%d\ndram.ranks=%d\ndram.banks=%d\ndram.rowBytes=%d\n",
		d.Name, d.Channels, d.Ranks, d.Banks, d.RowBytes)
	t := d.Timing
	fmt.Fprintf(w, "dram.timing=%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
		t.TCK, t.Burst, t.CL, t.RCD, t.RP, t.RAS, t.WR, t.WTR, t.RTW, t.RTP, t.CCD, t.RRD, t.FAW, t.REFI, t.RFC)
	fmt.Fprintf(w, "dram.writeHi=%d\ndram.writeLo=%d\ndram.idleClose=%d\ndram.ctrlLatency=%d\n",
		d.WriteHi, d.WriteLo, d.IdleClose, d.CtrlLatency)
	// dram.NoFusion is deliberately excluded: decide-event fusion is an
	// execution strategy, not a model parameter — results are bit-identical
	// either way (enforced by exp's fig2 determinism test), so both
	// settings may share one cache entry.
	fmt.Fprintf(w, "dram.frfcfsWindow=%d\ndram.xorBankRow=%t\ndram.bypassCap=%d\ndram.ageCap=%d\n",
		d.FRFCFSWindow, d.XORBankRow, d.BypassCap, d.AgeCap)
	fmt.Fprintf(w, "spec.policy=%d\nspec.onChipLatency=%d\nspec.mshrs=%d\nspec.writeBufs=%d\nspec.writebackLag=%d\nspec.unloadedNs=%v\n",
		s.Policy, s.OnChipLatency, s.MSHRs, s.WriteBufs, s.WritebackLag, s.UnloadedLatencyNs)
}

func writeOptions(w io.Writer, o bench.Options) {
	fmt.Fprintf(w, "opt.mixes=")
	for _, m := range o.Mixes {
		fmt.Fprintf(w, "%d:%t;", m.StorePercent, m.NonTemporal)
	}
	fmt.Fprintf(w, "\nopt.pacesNs=")
	for _, p := range o.PacesNs {
		fmt.Fprintf(w, "%v;", p)
	}
	fmt.Fprintf(w, "\nopt.warmup=%d\nopt.measure=%d\nopt.chaseLines=%d\nopt.arrayBytes=%d\n",
		o.Warmup, o.Measure, o.ChaseLines, o.ArrayBytes)
	writeCacheOverride(w, o.Cache)
}

func writeCacheOverride(w io.Writer, c *cache.Config) {
	if c == nil {
		fmt.Fprintf(w, "opt.cache=nil\n")
		return
	}
	fmt.Fprintf(w, "opt.cache=%d,%d,%d,%d,%d,%v,%d,%t,%d\n",
		c.Policy, c.OnChipLatency, c.MSHRs, c.WriteBufs, c.WritebackLag,
		c.LLCHitRate, c.LLCHitLatency, c.EvictCleanAsDirty, c.Seed)
}
