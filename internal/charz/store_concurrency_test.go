package charz

import (
	"fmt"
	"sync"
	"testing"

	"github.com/mess-sim/mess/internal/core"
)

// TestDiskStoreConcurrentSaveLoadGC hammers one sharded directory from two
// DiskStore instances (modelling two processes — exactly the access
// pattern a messcurved server puts on its store while CLI runs share the
// directory) with concurrent saves, loads and GC passes. The invariants:
// no operation errors, a Load never observes a torn file (temp-file +
// rename atomicity), and every key that survives eviction parses as one of
// the families that was actually written for it.
func TestDiskStoreConcurrentSaveLoadGC(t *testing.T) {
	dir := t.TempDir()
	// Two independent openers of the same directory, like two processes.
	stores := make([]*DiskStore, 2)
	for i := range stores {
		s, err := NewDiskStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = s
	}

	const keys = 16
	const iters = 60
	keyOf := func(i int) Key { return keyForStoreTest(900 + i%keys) }

	var wg sync.WaitGroup
	errs := make(chan error, 4*iters)
	for w, store := range stores {
		wg.Add(1)
		go func(w int, store *DiskStore) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := keyOf(i)
				// Same key from both writers: content addressing says the
				// payloads agree, but make them distinguishable so a torn
				// mix of two writes cannot masquerade as either.
				fam := famForStoreTest(fmt.Sprintf("writer-%d", w))
				if err := store.Save(bg, key, fam); err != nil {
					errs <- fmt.Errorf("writer %d save %d: %w", w, i, err)
					return
				}
				got, ok, err := store.Load(bg, keyOf(i/2))
				if err != nil {
					// A concurrent GC may have removed the file (ok=false
					// is fine); a parse error means a torn write.
					errs <- fmt.Errorf("writer %d load %d: %w", w, i, err)
					return
				}
				if ok && got.Label != "writer-0" && got.Label != "writer-1" {
					errs <- fmt.Errorf("writer %d read frankenstein family %q", w, got.Label)
					return
				}
			}
		}(w, store)
	}
	// A dedicated GC-ing goroutine on a tight budget, evicting under the
	// writers' feet.
	wg.Add(1)
	go func() {
		defer wg.Done()
		stores[0].SetMaxBytes(512) // a handful of files at most
		for i := 0; i < iters; i++ {
			if _, err := stores[0].GC(); err != nil {
				errs <- fmt.Errorf("gc %d: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Post-mortem: every surviving file must parse cleanly.
	stores[1].SetMaxBytes(0)
	survivors := 0
	for i := 0; i < keys; i++ {
		fam, ok, err := stores[1].Load(bg, keyOf(i))
		if err != nil {
			t.Fatalf("surviving key %d corrupt: %v", i, err)
		}
		if ok {
			survivors++
			if err := validateStoreTestFam(fam); err != nil {
				t.Fatalf("surviving key %d: %v", i, err)
			}
		}
	}
	t.Logf("%d/%d keys survived concurrent save/GC", survivors, keys)
}

func validateStoreTestFam(fam *core.Family) error {
	if len(fam.Curves) != 1 || len(fam.Curves[0].Points) != 2 {
		return fmt.Errorf("family shape mangled: %+v", fam)
	}
	return nil
}
