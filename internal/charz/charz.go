// Package charz is the characterization service: the single path from a
// (platform, benchmark options) pair to its bandwidth–latency curve family.
//
// Every component of the framework — the experiment registry, the CLI
// tools, the public facade — consumes curve families, and producing one
// means running the full Mess benchmark sweep, the hottest path in the
// repository. The service makes that path shared rather than ad hoc:
//
//   - requests are content-addressed: a SHA-256 fingerprint of the
//     canonical spec + normalized options (see Fingerprint) identifies a
//     characterization, so two callers asking for the same curves hit the
//     same cache slot no matter which layer they call from;
//   - an in-memory cache with singleflight deduplication guarantees that
//     concurrent requests for one key run exactly one simulation — the
//     rest block on the in-flight run and share its result;
//   - an optional on-disk store persists families in the release CSV
//     format, so repeated CLI invocations skip re-simulation entirely;
//   - an optional remote tier (a curvestore.Store, typically the HTTP
//     client for a cmd/messcurved curve server) shares families across
//     machines: the service consults memory → disk → remote in order,
//     promotes remote hits into the disk store, and uploads fresh runs —
//     so a fleet performs each characterization once globally. The remote
//     tier is fail-soft: a down or broken server reads as a miss and the
//     characterization proceeds from local tiers, never failing;
//   - CharacterizeAll fans a batch of requests out over a bounded worker
//     pool, characterizing distinct platforms concurrently.
//
// Results handed to callers are deep copies: experiments relabel and
// resort families freely without corrupting the cache.
package charz

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mess-sim/mess/internal/bench"
	"github.com/mess-sim/mess/internal/core"
	"github.com/mess-sim/mess/internal/curvestore"
	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/telemetry"
)

// Source reports where an artifact came from.
type Source int

const (
	// SourceRun: a fresh simulation ran for this request.
	SourceRun Source = iota
	// SourceMemory: served from the in-memory cache (including waiting on
	// an in-flight run for the same key).
	SourceMemory
	// SourceDisk: loaded from the on-disk store without simulating.
	SourceDisk
	// SourceRemote: fetched from the fleet-shared curve server without
	// simulating (and promoted into the local disk store, when present).
	SourceRemote
)

func (s Source) String() string {
	switch s {
	case SourceRun:
		return "run"
	case SourceMemory:
		return "memory"
	case SourceDisk:
		return "disk"
	case SourceRemote:
		return "remote"
	}
	return fmt.Sprintf("Source(%d)", int(s))
}

// Request names one characterization.
type Request struct {
	// Spec is the platform to characterize.
	Spec platform.Spec
	// Options configure the benchmark sweep. Parallelism is honoured for
	// the run but excluded from the cache key; Backend is honoured but
	// must be identified by Tag to be cacheable.
	Options bench.Options
	// Tag disambiguates requests whose Options carry a custom Backend
	// (e.g. "model:ramulator2"). A request with a Backend and no Tag is
	// uncacheable and always simulates.
	Tag string
	// NeedSamples requires the raw measurement samples, which the disk
	// store does not persist: the request skips disk loads and upgrades a
	// family-only memory entry by re-simulating.
	NeedSamples bool
}

// Artifact is a completed characterization. Family is always set; Result
// (the family plus raw samples) is populated only for requests that set
// NeedSamples and could not be satisfied from the on-disk store. Both are
// private deep copies.
type Artifact struct {
	Key    Key
	Family *core.Family
	Result *bench.Result
	Source Source
}

// RunFunc executes one benchmark sweep. The default is bench.RunContext;
// tests substitute counting or synthetic runners. A cancelled context must
// make the runner return promptly with ctx.Err() (wrapped or bare).
type RunFunc func(context.Context, platform.Spec, bench.Options) (*bench.Result, error)

// Config parameterizes a Service.
type Config struct {
	// Workers bounds concurrent characterizations in CharacterizeAll.
	// Default: GOMAXPROCS.
	Workers int
	// Store, when set, persists families across processes.
	Store *DiskStore
	// Remote, when set, shares families across machines — typically a
	// curvestore.Client pointed at a cmd/messcurved server. It is the
	// outermost tier: consulted after Store, written back into Store on a
	// hit (promotion), and uploaded to after a fresh run. All traffic to
	// it is fail-soft: a down server degrades the service to its local
	// tiers and never fails a characterization.
	Remote curvestore.Store
	// Run overrides the benchmark runner (test seam). Default:
	// bench.RunContext.
	Run RunFunc
	// Telemetry, when set, observes the service: request counters by
	// outcome source on its registry, fill spans on its tracer, per-fill
	// debug lines on its logger. It is also handed down to every benchmark
	// sweep the service runs. Purely observational — results and cache
	// keys are unaffected.
	Telemetry *telemetry.Set
}

// Stats are cumulative service counters.
type Stats struct {
	// Runs counts benchmark sweeps actually executed.
	Runs int64
	// MemoryHits counts requests served from the in-memory cache,
	// including requests that waited on an in-flight run for their key.
	MemoryHits int64
	// DiskHits counts requests served from the on-disk store.
	DiskHits int64
	// RemoteHits counts requests served from the remote curve server.
	RemoteHits int64
	// Uncacheable counts requests that bypassed the cache entirely
	// (custom Backend without a Tag).
	Uncacheable int64
}

// Service is the concurrency-safe characterization cache. The zero value
// is not usable; construct with New.
type Service struct {
	workers int
	run     RunFunc

	// tiered composes the persistent tiers in lookup order (disk, then
	// remote), with write-back promotion on hit; tierSrc maps a hit's tier
	// index back to its Source for stats and artifact labelling. nil when
	// the service is memory-only.
	tiered  *curvestore.Tiered
	tierSrc []Source

	mu      sync.Mutex
	entries map[Key]*entry

	runs, memHits, diskHits, remoteHits, uncacheable atomic.Int64

	// Telemetry (all nil-safe; zero-valued when the service is
	// uninstrumented): the bundle handed to benchmark runs, the fill
	// duration histogram, and the tracer row fills record onto.
	tel       *telemetry.Set
	fillDur   *telemetry.Histogram
	fillTrack telemetry.Track
}

// entry is one cache slot: done closes when the first requester finishes,
// after which fam/res/err/src are immutable. claimed hands the true source
// (run or disk) to exactly one caller; everyone else reports a memory hit.
type entry struct {
	done    chan struct{}
	fam     *core.Family  // canonical copy; cloned per caller
	res     *bench.Result // nil when the entry was filled from disk
	err     error
	src     Source // how the filling requester obtained it
	claimed atomic.Bool
}

// New builds a Service.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Run == nil {
		cfg.Run = bench.RunContext
	}
	s := &Service{
		workers: cfg.Workers,
		run:     cfg.Run,
		entries: map[Key]*entry{},
	}
	var tiers []curvestore.Store
	if cfg.Store != nil {
		tiers = append(tiers, cfg.Store)
		s.tierSrc = append(s.tierSrc, SourceDisk)
	}
	if cfg.Remote != nil {
		tiers = append(tiers, cfg.Remote)
		s.tierSrc = append(s.tierSrc, SourceRemote)
	}
	if len(tiers) > 0 {
		s.tiered = curvestore.NewTiered(tiers...)
	}
	s.tel = cfg.Telemetry
	// Registration is read-time re-export of the existing atomic counters
	// — the hot paths keep writing the same atomics they always did. All
	// of this no-ops on a nil registry.
	reg := s.tel.Registry()
	counterAsFunc := func(c *atomic.Int64) func() float64 {
		return func() float64 { return float64(c.Load()) }
	}
	const reqHelp = "characterization requests by outcome source"
	reg.CounterFunc(`mess_charz_requests_total{source="run"}`, reqHelp, counterAsFunc(&s.runs))
	reg.CounterFunc(`mess_charz_requests_total{source="memory"}`, reqHelp, counterAsFunc(&s.memHits))
	reg.CounterFunc(`mess_charz_requests_total{source="disk"}`, reqHelp, counterAsFunc(&s.diskHits))
	reg.CounterFunc(`mess_charz_requests_total{source="remote"}`, reqHelp, counterAsFunc(&s.remoteHits))
	reg.CounterFunc(`mess_charz_requests_total{source="uncacheable"}`, reqHelp, counterAsFunc(&s.uncacheable))
	s.fillDur = reg.Histogram("mess_charz_fill_seconds", "cache-miss fill duration (tier walk plus any simulation)", nil)
	s.fillTrack = s.tel.Trace().NewTrack("charz", "fill")
	return s
}

// Telemetry returns the service's observability bundle (nil when the
// service was built without one) — the handle layers above the service
// (experiments, the facade) use to share one registry and tracer.
func (s *Service) Telemetry() *telemetry.Set { return s.tel }

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	return Stats{
		Runs:        s.runs.Load(),
		MemoryHits:  s.memHits.Load(),
		DiskHits:    s.diskHits.Load(),
		RemoteHits:  s.remoteHits.Load(),
		Uncacheable: s.uncacheable.Load(),
	}
}

// Characterize returns the request's curve family, running the benchmark
// at most once per key per process (and, with a disk store, at most once
// ever for family-only requests). Safe for concurrent use. It is
// CharacterizeContext with a background context — the entry point for
// callers with no deadline to propagate.
func (s *Service) Characterize(req Request) (*Artifact, error) {
	return s.CharacterizeContext(context.Background(), req)
}

// CharacterizeContext is Characterize under a caller-supplied context.
// Cancellation propagates into every blocking stage — the tier lookups,
// the benchmark sweep, and waiting on another caller's in-flight run —
// and returns ctx.Err() promptly. A waiter whose filler was cancelled
// retries the key itself (the cancelled filler's entry is dropped), so one
// caller's deadline never poisons another caller's request.
func (s *Service) CharacterizeContext(ctx context.Context, req Request) (*Artifact, error) {
	if req.Options.Backend != nil && req.Tag == "" {
		// A function-valued backend has no stable identity: simulate
		// without touching the cache rather than risk aliasing.
		s.uncacheable.Add(1)
		res, err := s.runOnce(ctx, req)
		if err != nil {
			return nil, err
		}
		return &Artifact{Family: res.Family, Result: res, Source: SourceRun}, nil
	}

	key := Fingerprint(req)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.mu.Lock()
		e, ok := s.entries[key]
		waited := ok
		if !ok {
			e = &entry{done: make(chan struct{})}
			s.entries[key] = e
			s.mu.Unlock()
			s.fill(ctx, key, e, req)
		} else {
			s.mu.Unlock()
			select {
			case <-e.done:
			case <-ctx.Done():
				// Leave the entry alone: the filler is still running and
				// will publish for the callers that stayed.
				return nil, ctx.Err()
			}
		}
		if e.err != nil {
			// Errors are not cached: drop the entry so a later request
			// can retry, then report the failure to this caller.
			s.dropIf(key, e)
			if waited && ctxErr(e.err) && ctx.Err() == nil {
				// The filler was cancelled, but this waiter was not: the
				// entry is gone, so loop and fill it ourselves.
				continue
			}
			return nil, e.err
		}
		if req.NeedSamples && e.res == nil {
			// The entry was satisfied from disk but this caller needs the
			// raw samples: retire the family-only entry and loop to
			// simulate (once) for the samples. Not a cache hit.
			s.dropIf(key, e)
			continue
		}
		if waited {
			s.memHits.Add(1)
		}
		return entryArtifact(key, e, req.NeedSamples), nil
	}
}

// ctxErr reports whether err is (or wraps) a context cancellation.
func ctxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Reset drops every completed and in-flight entry from the in-memory
// cache (in-flight runs finish for their current waiters but will not be
// re-served). Long-lived processes characterizing many distinct
// configurations use this as the eviction escape hatch; the disk store,
// being content-addressed, needs no invalidation.
func (s *Service) Reset() {
	s.mu.Lock()
	s.entries = map[Key]*entry{}
	s.mu.Unlock()
}

// fill executes the cache miss path for the entry it owns and publishes
// the outcome by closing done.
func (s *Service) fill(ctx context.Context, key Key, e *entry, req Request) {
	start := time.Now()
	sp := s.tel.Trace().Begin(s.fillTrack, "characterize "+req.Spec.Name)
	defer func() {
		d := time.Since(start)
		s.fillDur.Observe(d.Seconds())
		outcome := "error"
		if e.err == nil {
			outcome = e.src.String()
		}
		sp.End(telemetry.String("source", outcome))
		s.tel.Logger().Debug("charz fill",
			"spec", req.Spec.Name, "source", outcome, "elapsed", d.Round(time.Millisecond))
	}()
	defer close(e.done)
	if s.tiered != nil && !req.NeedSamples {
		// Disk, then remote, with write-back promotion on a remote hit.
		// Tier failures (corrupt cache file, down curve server) read as
		// misses and fall through to simulation — fail-soft.
		fam, tier, _ := s.tiered.LoadTier(ctx, key)
		if tier >= 0 {
			src := s.tierSrc[tier]
			switch src {
			case SourceDisk:
				s.diskHits.Add(1)
			case SourceRemote:
				s.remoteHits.Add(1)
			}
			e.fam, e.src = fam, src
			return
		}
	}
	if err := ctx.Err(); err != nil {
		// Cancelled between the tier walk and the sweep: don't start a
		// simulation nobody is waiting for.
		e.err = err
		return
	}
	res, err := s.runOnce(ctx, req)
	if err != nil {
		e.err = err
		return
	}
	e.fam, e.res, e.src = res.Family, res, SourceRun
	if s.tiered != nil {
		// Persistence is best-effort on every tier: a read-only cache
		// directory or an unreachable curve server must not fail the
		// characterization itself. A completed sweep is saved even if the
		// caller's context has since been cancelled (WithoutCancel):
		// throwing away minutes of finished simulation because the caller
		// stopped waiting would force the fleet to pay for it again.
		_ = s.tiered.Save(context.WithoutCancel(ctx), key, res.Family)
	}
}

func (s *Service) runOnce(ctx context.Context, req Request) (*bench.Result, error) {
	s.runs.Add(1)
	if s.tel != nil && req.Options.Telemetry == nil {
		// Hand the sweep the service's bundle so per-point spans and sim
		// counters land in the same trace and registry. Execution-only:
		// Normalized clears it, so cache keys are unchanged.
		req.Options.Telemetry = s.tel
	}
	return s.run(ctx, req.Spec, req.Options)
}

// dropIf removes the entry from the cache if it is still the resident one.
func (s *Service) dropIf(key Key, e *entry) {
	s.mu.Lock()
	if s.entries[key] == e {
		delete(s.entries, key)
	}
	s.mu.Unlock()
}

// entryArtifact clones the entry for one caller. Exactly one caller (the
// first to claim) reports the true SourceRun/SourceDisk; everyone after
// sees SourceMemory. The raw-sample Result is copied only for callers
// that asked for it — family-only hits (the common case in experiment
// sweeps) skip the O(samples) copy.
func entryArtifact(key Key, e *entry, needSamples bool) *Artifact {
	src := SourceMemory
	if e.claimed.CompareAndSwap(false, true) {
		src = e.src
	}
	art := &Artifact{Key: key, Family: e.fam.Clone(), Source: src}
	if needSamples && e.res != nil {
		res := *e.res
		res.Family = art.Family
		res.Samples = append([]bench.Sample(nil), e.res.Samples...)
		art.Result = &res
	}
	return art
}

// CharacterizeAll resolves a batch of requests over a bounded worker pool
// (Config.Workers). Artifacts are returned in request order; a nil slot
// marks a failed request, and the joined error reports every failure.
// Duplicate keys inside one batch still simulate only once: the pool fans
// out, the singleflight layer fans back in.
func (s *Service) CharacterizeAll(reqs []Request) ([]*Artifact, error) {
	return s.CharacterizeAllContext(context.Background(), reqs)
}

// CharacterizeAllContext is CharacterizeAll under a caller-supplied
// context. Cancellation drains the pool promptly: requests not yet started
// fail with ctx.Err() without simulating, and in-flight ones return as
// soon as their own blocking stage observes the cancellation.
func (s *Service) CharacterizeAllContext(ctx context.Context, reqs []Request) ([]*Artifact, error) {
	arts := make([]*Artifact, len(reqs))
	errs := make([]error, len(reqs))
	sem := make(chan struct{}, s.workers)
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = fmt.Errorf("charz: %s: %w", reqs[i].Spec.Name, err)
				return
			}
			art, err := s.CharacterizeContext(ctx, reqs[i])
			if err != nil {
				errs[i] = fmt.Errorf("charz: %s: %w", reqs[i].Spec.Name, err)
				return
			}
			arts[i] = art
		}(i)
	}
	wg.Wait()
	return arts, errors.Join(errs...)
}
