package messsim

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/mess-sim/mess/internal/core"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

func family() *core.Family {
	return core.NewSynthetic(core.SyntheticSpec{Label: "test", UnloadedNs: 90, PeakGBs: 128})
}

func TestConfigValidation(t *testing.T) {
	if err := (&Config{}).Validate(); err == nil {
		t.Fatal("nil family accepted")
	}
	bad := Config{Family: family(), ConvFactor: 1.5}
	if err := bad.Validate(); err == nil {
		t.Fatal("conv factor > 1 accepted")
	}
}

// drive keeps `depth` reads outstanding (a closed-loop requester, like a set
// of cores with fixed total MSHRs) for the given duration and reports the
// achieved bandwidth (GB/s) and mean latency (ns).
func drive(eng *sim.Engine, b mem.Backend, depth int, writeFrac float64, dur sim.Time) (float64, float64) {
	completed := 0
	var latSum sim.Time
	var rng uint64 = 0x1234567
	var issue func()
	issue = func() {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		op := mem.Read
		if float64(rng%1000)/1000.0 < writeFrac {
			op = mem.Write
		}
		start := eng.Now()
		b.Access(&mem.Request{Addr: rng % (1 << 32), Op: op, Done: func(at sim.Time, _ *mem.Request) {
			completed++
			latSum += at - start
			if eng.Now() < dur {
				issue()
			}
		}})
	}
	for i := 0; i < depth; i++ {
		issue()
	}
	eng.RunUntil(dur)
	if completed == 0 {
		return 0, 0
	}
	bw := float64(completed*mem.LineSize) / dur.Seconds() / 1e9
	return bw, (latSum / sim.Time(completed)).Nanoseconds()
}

func TestOperatingPointLandsOnCurve(t *testing.T) {
	fam := family()
	for _, tc := range []struct {
		depth int
		tol   float64
	}{
		// Moderate concurrency must sit on the curve. At extreme depth a
		// closed-loop driver re-issues requests in bursts, and the bus-
		// capacity server adds genuine queueing beyond the steady-state
		// curve — the physical system does the same — so the tolerance
		// widens.
		{8, 0.15}, {32, 0.15}, {96, 0.20}, {256, 0.60},
	} {
		eng := sim.New()
		s := New(eng, Config{Family: fam, WindowOps: 200})
		bw, lat := drive(eng, s, tc.depth, 0, 3*sim.Millisecond)
		if bw <= 0 {
			t.Fatalf("depth %d: no traffic", tc.depth)
		}
		want := fam.LatencyAt(1.0, bw)
		if math.Abs(lat-want)/want > tc.tol {
			t.Errorf("depth %d: operating point (%.1f GB/s, %.1f ns) off curve (want %.1f ns ±%.0f%%)",
				tc.depth, bw, lat, want, tc.tol*100)
		}
	}
}

func TestClosedLoopSelfConsistency(t *testing.T) {
	// Little's law must tie the converged point together: with N requests
	// outstanding, bw = N×64B / latency. Verify the controller found the
	// fixed point of that equation on the curve.
	fam := family()
	eng := sim.New()
	s := New(eng, Config{Family: fam, WindowOps: 200})
	depth := 64
	bw, lat := drive(eng, s, depth, 0, 3*sim.Millisecond)
	littleBW := float64(depth) * mem.LineSize / (lat * 1e-9) / 1e9
	if math.Abs(littleBW-bw)/bw > 0.1 {
		t.Fatalf("Little's law violated: measured %.1f GB/s, N·64B/lat = %.1f GB/s", bw, littleBW)
	}
}

func TestSaturationPushback(t *testing.T) {
	// With absurd concurrency the controller must settle near the curve's
	// maximum bandwidth, not beyond it: the steep extrapolation slope
	// throttles the requester.
	fam := family()
	eng := sim.New()
	s := New(eng, Config{Family: fam, WindowOps: 500})
	bw, _ := drive(eng, s, 4096, 0, 5*sim.Millisecond)
	maxBW := fam.MaxBWAt(1.0)
	if bw > 1.1*maxBW {
		t.Fatalf("simulated bandwidth %.1f GB/s exceeds curve maximum %.1f by >10%%", bw, maxBW)
	}
	if bw < 0.75*maxBW {
		t.Fatalf("saturated bandwidth %.1f GB/s too far below curve maximum %.1f", bw, maxBW)
	}
}

func TestWriteRatioSelectsCurve(t *testing.T) {
	// A family where writes are much slower: 50/50 traffic must see higher
	// latency than pure reads at the same moderate load.
	fam := core.NewSynthetic(core.SyntheticSpec{
		Label: "writes-hurt", UnloadedNs: 90, PeakGBs: 128,
		UtilAtReadRatio1: 0.9, UtilAtReadRatio05: 0.55,
	})
	run := func(writeFrac float64) (float64, float64) {
		eng := sim.New()
		s := New(eng, Config{Family: fam, WindowOps: 200})
		return drive(eng, s, 64, writeFrac, 3*sim.Millisecond)
	}
	bwR, latR := run(0)
	bwW, latW := run(0.5)
	if latW <= latR {
		t.Fatalf("50%%-write latency %.1f ns not above pure-read %.1f ns", latW, latR)
	}
	if bwW >= bwR {
		t.Fatalf("50%%-write bandwidth %.1f not below pure-read %.1f", bwW, bwR)
	}
}

func TestPhaseChangeAdaptation(t *testing.T) {
	// Drive lightly, then heavily: the controller must follow the phase
	// change (the Fig. 9 scenario) within a handful of windows.
	fam := family()
	eng := sim.New()
	s := New(eng, Config{Family: fam, WindowOps: 100})
	bw1, lat1 := drive(eng, s, 4, 0, sim.Millisecond)
	start2 := eng.Now()
	// Continue driving harder from the current time.
	completed := 0
	var latSum sim.Time
	var rng uint64 = 99
	deadline := start2 + 2*sim.Millisecond
	var issue func()
	issue = func() {
		rng = rng*6364136223846793005 + 1442695040888963407
		st := eng.Now()
		s.Access(&mem.Request{Addr: rng % (1 << 32), Op: mem.Read, Done: func(at sim.Time, _ *mem.Request) {
			completed++
			latSum += at - st
			if eng.Now() < deadline {
				issue()
			}
		}})
	}
	for i := 0; i < 200; i++ {
		issue()
	}
	eng.RunUntil(deadline)
	bw2 := float64(completed*mem.LineSize) / (2 * sim.Millisecond).Seconds() / 1e9
	lat2 := (latSum / sim.Time(completed)).Nanoseconds()
	if bw2 <= bw1*2 {
		t.Fatalf("phase change did not raise bandwidth: %.1f → %.1f GB/s", bw1, bw2)
	}
	if lat2 <= lat1 {
		t.Fatalf("heavy phase latency %.1f ns not above light phase %.1f ns", lat2, lat1)
	}
	want := fam.LatencyAt(1.0, bw2)
	if math.Abs(lat2-want)/want > 0.2 {
		t.Fatalf("post-change operating point (%.1f GB/s, %.1f ns) off curve (want %.1f ns)", bw2, lat2, want)
	}
}

func TestCPULatencySubtraction(t *testing.T) {
	fam := family()
	eng := sim.New()
	cpuNs := 40.0
	s := New(eng, Config{Family: fam, CPULatencyNs: cpuNs, WindowOps: 100})
	var lat sim.Time
	st := eng.Now()
	s.Access(&mem.Request{Addr: 0, Op: mem.Read, Done: func(at sim.Time, _ *mem.Request) { lat = at - st }})
	eng.Run()
	wantFull := fam.LatencyAt(1.0, 0.1)
	got := lat.Nanoseconds()
	if math.Abs(got-(wantFull-cpuNs)) > 1 {
		t.Fatalf("memory-side latency = %.1f ns, want %.1f − %.1f", got, wantFull, cpuNs)
	}
}

func TestMinLatencyFloor(t *testing.T) {
	fam := family()
	eng := sim.New()
	s := New(eng, Config{Family: fam, CPULatencyNs: 10000, WindowOps: 100})
	var lat sim.Time
	st := eng.Now()
	s.Access(&mem.Request{Addr: 0, Op: mem.Read, Done: func(at sim.Time, _ *mem.Request) { lat = at - st }})
	eng.Run()
	if lat.Nanoseconds() < 1.9 {
		t.Fatalf("latency %v ns below the floor", lat.Nanoseconds())
	}
}

func TestConvergenceProperty(t *testing.T) {
	// For random synthetic families and random concurrency, the closed-
	// loop operating point must land on the curve (within tolerance) —
	// the controller's defining invariant.
	prop := func(seed uint16) bool {
		unloaded := 60 + float64(seed%100)
		peak := 100 + float64(seed%300)
		fam := core.NewSynthetic(core.SyntheticSpec{
			Label: "prop", UnloadedNs: unloaded, PeakGBs: peak,
		})
		depth := 8 + int(seed%120)
		eng := sim.New()
		s := New(eng, Config{Family: fam, WindowOps: 200})
		bw, lat := drive(eng, s, depth, 0, 2*sim.Millisecond)
		if bw <= 0 {
			return false
		}
		want := fam.LatencyAt(1.0, bw)
		return math.Abs(lat-want)/want < 0.25
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsProgress(t *testing.T) {
	fam := family()
	eng := sim.New()
	s := New(eng, Config{Family: fam, WindowOps: 50})
	drive(eng, s, 32, 0.3, sim.Millisecond)
	st := s.Stats()
	if st.Windows == 0 {
		t.Fatal("no control windows executed")
	}
	if st.Adjustments == 0 {
		t.Fatal("controller never adjusted despite a cold start")
	}
	if st.ReadRatio <= 0.5 || st.ReadRatio >= 0.9 {
		t.Fatalf("window read ratio %.2f implausible for 30%% writes", st.ReadRatio)
	}
	if st.MessBWGBs <= 0 || st.LatencyNs <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}
