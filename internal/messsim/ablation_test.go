package messsim

import (
	"fmt"
	"math"
	"testing"

	"github.com/mess-sim/mess/internal/sim"
)

// Ablations over the controller's design choices (DESIGN.md §6.2): the
// convergence factor, the window length, the slew limit and the bus cap.
// Each ablation measures the defining invariant — relative distance of the
// converged operating point from the curve — so `go test -bench Ablation`
// quantifies every knob.

func operatingPointError(cfg Config, depth int) float64 {
	eng := sim.New()
	s := New(eng, cfg)
	bw, lat := drive(eng, s, depth, 0, 3*sim.Millisecond)
	if bw <= 0 {
		return math.Inf(1)
	}
	want := cfg.Family.LatencyAt(1.0, bw)
	return math.Abs(lat-want) / want
}

func TestAblationConvFactorStability(t *testing.T) {
	fam := family()
	for _, conv := range []float64{0.1, 0.3, 0.5, 0.9} {
		err := operatingPointError(Config{Family: fam, WindowOps: 200, ConvFactor: conv}, 64)
		if err > 0.25 {
			t.Errorf("convFactor %.1f: operating-point error %.0f%% — controller unstable", conv, 100*err)
		}
	}
}

func TestAblationWindowLength(t *testing.T) {
	fam := family()
	for _, win := range []int{100, 1000, 4000} {
		err := operatingPointError(Config{Family: fam, WindowOps: win}, 64)
		if err > 0.25 {
			t.Errorf("window %d ops: operating-point error %.0f%%", win, 100*err)
		}
	}
}

func TestAblationBusCapMatters(t *testing.T) {
	// Without the bus cap, extreme concurrency overshoots the curve's
	// maximum bandwidth — the physical wall disappears.
	fam := family()
	eng := sim.New()
	s := New(eng, Config{Family: fam, WindowOps: 500, DisableBusCap: true, MaxErrorFactor: 2})
	bw, _ := drive(eng, s, 4096, 0, 3*sim.Millisecond)
	maxBW := fam.MaxBWAt(1.0)
	if bw < 1.2*maxBW {
		t.Skipf("uncapped run stayed at %.0f GB/s (max %.0f): extrapolation held it; acceptable", bw, maxBW)
	}
	// Capped: the wall holds (same assertion as TestSaturationPushback).
	eng2 := sim.New()
	s2 := New(eng2, Config{Family: fam, WindowOps: 500})
	bw2, _ := drive(eng2, s2, 4096, 0, 3*sim.Millisecond)
	if bw2 > 1.1*maxBW {
		t.Fatalf("bus cap failed: %.0f GB/s over max %.0f", bw2, maxBW)
	}
}

func BenchmarkAblationConvFactor(b *testing.B) {
	fam := family()
	for _, conv := range []float64{0.1, 0.5, 0.9} {
		conv := conv
		b.Run(fmt.Sprintf("conv=%.1f", conv), func(b *testing.B) {
			var err float64
			for i := 0; i < b.N; i++ {
				err = operatingPointError(Config{Family: fam, WindowOps: 1000, ConvFactor: conv}, 64)
			}
			b.ReportMetric(100*err, "op-point-error-%")
		})
	}
}

func BenchmarkAblationWindowOps(b *testing.B) {
	fam := family()
	for _, win := range []int{100, 1000, 10000} {
		win := win
		b.Run(fmt.Sprintf("window=%d", win), func(b *testing.B) {
			var err float64
			for i := 0; i < b.N; i++ {
				err = operatingPointError(Config{Family: fam, WindowOps: win}, 64)
			}
			b.ReportMetric(100*err, "op-point-error-%")
		})
	}
}

func BenchmarkAblationSlewLimit(b *testing.B) {
	fam := family()
	for _, f := range []float64{2, 8, 32} {
		f := f
		b.Run(fmt.Sprintf("slew=%.0f", f), func(b *testing.B) {
			var err float64
			for i := 0; i < b.N; i++ {
				err = operatingPointError(Config{Family: fam, WindowOps: 1000, MaxErrorFactor: f}, 64)
			}
			b.ReportMetric(100*err, "op-point-error-%")
		})
	}
}
