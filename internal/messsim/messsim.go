// Package messsim implements the Mess analytical memory simulator
// (Sec. V-A of the paper, Figs. 8–9).
//
// Instead of simulating DRAM devices, the model holds the current operating
// point (messBW, Latency) on the platform's measured bandwidth–latency
// curve family and serves every request with that latency. At the end of
// each simulation window (1000 memory operations by default) it compares
// the bandwidth the CPU actually generated, cpuBW, against messBW; on a
// mismatch it moves the operating point part-way toward cpuBW — a
// proportional feedback controller — and reads the new latency off the
// curve for the window's read/write composition. The controller therefore
// never computes memory timing; it detects and corrects inconsistency
// between the simulated latency and the bandwidth that latency produces.
package messsim

import (
	"fmt"

	"github.com/mess-sim/mess/internal/core"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// Config parameterizes the simulator.
type Config struct {
	// Family is the bandwidth–latency characterization of the memory
	// system being modelled — measured on hardware, produced by the Mess
	// benchmark on the reference model, or provided by a manufacturer.
	Family *core.Family
	// WindowOps is the control-loop window length in memory operations.
	WindowOps int
	// ConvFactor is the proportional gain: messBW moves this fraction of
	// the (cpuBW − messBW) error per window.
	ConvFactor float64
	// CPULatencyNs is the on-chip (core + caches + NoC) component included
	// in the family's load-to-use latencies but already simulated by the
	// CPU side; it is subtracted before handing the latency to the CPU
	// simulator (the Latency^Memory = Latency − Latency^CPU step).
	CPULatencyNs float64
	// Tolerance is the relative bandwidth mismatch below which the
	// operating point is left untouched.
	Tolerance float64
	// MinLatencyNs floors the memory-side latency after CPU subtraction.
	MinLatencyNs float64
	// MinWindow is the minimum simulated duration of a control window.
	// Closed-loop requesters complete and re-issue in bursts, so a window
	// of WindowOps operations can span a fraction of one memory round
	// trip and report a meaninglessly inflated bandwidth; the window is
	// held open until it covers both WindowOps operations and
	// max(MinWindow, 2× current latency).
	MinWindow sim.Time
	// MaxErrorFactor slew-limits the controller: within one window the
	// effective cpuBW is clamped to [messBW/f, messBW·f]. With the bus
	// cap active the observed bandwidth is already bounded by the curve
	// maximum, so the slew only guards cold-start transients; the default
	// is loose enough to converge from idle in a handful of windows.
	// Tighten it when DisableBusCap is set.
	MaxErrorFactor float64
	// DisableBusCap turns off the channel-capacity limiter. By default
	// every request also occupies a FIFO "bus" slot with service time
	// 64 B / maxBW(ratio): a real memory system cannot admit traffic
	// beyond its peak, and the CPU simulators Mess integrates with model
	// the same port limit. Below saturation the added wait is a fraction
	// of a nanosecond; at the wall it provides the physical push-back.
	DisableBusCap bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.WindowOps == 0 {
		out.WindowOps = 1000
	}
	if out.ConvFactor == 0 {
		out.ConvFactor = 0.5
	}
	if out.Tolerance == 0 {
		out.Tolerance = 0.02
	}
	if out.MinLatencyNs == 0 {
		out.MinLatencyNs = 2
	}
	if out.MaxErrorFactor == 0 {
		out.MaxErrorFactor = 8
	}
	if out.MinWindow == 0 {
		out.MinWindow = 250 * sim.Nanosecond
	}
	return out
}

// Validate reports an error for an unusable configuration.
func (c *Config) Validate() error {
	if c.Family == nil {
		return fmt.Errorf("messsim: config needs a curve family")
	}
	if err := c.Family.Validate(); err != nil {
		return err
	}
	if c.ConvFactor < 0 || c.ConvFactor > 1 {
		return fmt.Errorf("messsim: convergence factor %v outside (0,1]", c.ConvFactor)
	}
	return nil
}

// Stats expose the controller's behaviour for validation and debugging.
type Stats struct {
	Windows     uint64
	Adjustments uint64
	MessBWGBs   float64 // current operating-point bandwidth
	LatencyNs   float64 // current full load-to-use latency from the curves
	MemLatNs    float64 // latency currently applied to requests
	ReadRatio   float64 // read ratio of the last window
}

// Simulator is the analytical model; it implements mem.Backend.
type Simulator struct {
	eng *sim.Engine
	cfg Config

	memLat  sim.Time // latency currently applied to each request
	messBW  float64
	curLat  float64 // full curve latency at the operating point
	started bool

	busSvc  sim.Time // per-request bus occupancy (64 B / max curve BW)
	busFree sim.Time

	winOps     int
	winBytes   uint64
	winRdBytes uint64
	winStart   sim.Time

	stats Stats
}

// New builds the simulator; it panics on invalid configuration.
func New(eng *sim.Engine, cfg Config) *Simulator {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Simulator{eng: eng, cfg: cfg}
	// Start from the unloaded point of the pure-read curve, as the paper
	// suggests ("the simulation can start from any memory access latency,
	// e.g. the unloaded one").
	s.messBW = 0.1
	s.curLat = cfg.Family.LatencyAt(1.0, s.messBW)
	s.setBusService(1.0)
	s.applyLatency()
	return s
}

func (s *Simulator) setBusService(ratio float64) {
	if s.cfg.DisableBusCap {
		s.busSvc = 0
		return
	}
	maxBW := s.cfg.Family.MaxBWAt(ratio)
	if maxBW <= 0 {
		s.busSvc = 0
		return
	}
	s.busSvc = sim.FromNanoseconds(float64(mem.LineSize) / maxBW)
}

func (s *Simulator) applyLatency() {
	memLat := s.curLat - s.cfg.CPULatencyNs
	if memLat < s.cfg.MinLatencyNs {
		memLat = s.cfg.MinLatencyNs
	}
	s.memLat = sim.FromNanoseconds(memLat)
	s.stats.MessBWGBs = s.messBW
	s.stats.LatencyNs = s.curLat
	s.stats.MemLatNs = memLat
}

// Access serves one request with the operating point's latency and runs the
// control loop at window boundaries.
func (s *Simulator) Access(req *mem.Request) {
	now := s.eng.Now()
	if !s.started {
		s.started = true
		s.winStart = now
	}
	bytes := uint64(req.Bytes())
	s.winBytes += bytes
	if req.Op == mem.Read {
		s.winRdBytes += bytes
	}
	s.winOps++

	slot := now
	if s.busSvc > 0 {
		if s.busFree < now {
			s.busFree = now
		}
		slot = s.busFree
		s.busFree += s.busSvc
	}
	// Allocation-free completion: the deadline rides in the event and the
	// pooled record returns to its pool when Done returns.
	req.CompleteAt(s.eng, slot+s.memLat)

	if s.winOps >= s.cfg.WindowOps {
		s.adjust(now)
	}
}

// adjust is one iteration of the feedback control loop (Fig. 9).
func (s *Simulator) adjust(now sim.Time) {
	dur := now - s.winStart
	minDur := s.cfg.MinWindow
	if twice := 2 * s.memLat; twice > minDur {
		minDur = twice
	}
	if dur < minDur {
		// Burst of arrivals: keep the window open until it spans enough
		// simulated time for the bandwidth estimate to mean something.
		return
	}
	cpuBW := float64(s.winBytes) / dur.Seconds() / 1e9
	ratio := 1.0
	if s.winBytes > 0 {
		ratio = float64(s.winRdBytes) / float64(s.winBytes)
	}
	s.stats.ReadRatio = ratio
	s.stats.Windows++

	// Slew-limit the observed bandwidth before computing the error.
	f := s.cfg.MaxErrorFactor
	if cpuBW > s.messBW*f {
		cpuBW = s.messBW * f
	}
	if cpuBW < s.messBW/f {
		cpuBW = s.messBW / f
	}
	err := cpuBW - s.messBW
	if abs(err) > s.cfg.Tolerance*s.messBW {
		s.messBW += s.cfg.ConvFactor * err
		if s.messBW < 0.01 {
			s.messBW = 0.01
		}
		s.stats.Adjustments++
	}
	s.curLat = s.cfg.Family.LatencyAt(ratio, s.messBW)
	s.setBusService(ratio)
	s.applyLatency()

	s.winOps = 0
	s.winBytes = 0
	s.winRdBytes = 0
	s.winStart = now
}

// Stats reports the controller state.
func (s *Simulator) Stats() Stats { return s.stats }

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

var _ mem.Backend = (*Simulator)(nil)
