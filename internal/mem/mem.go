// Package mem defines the request, traffic-counter and backend types shared
// by every memory model in the repository. It is the seam between the CPU
// side (cores + cache hierarchy) and the memory side (detailed DRAM model,
// the behavioural model zoo, the CXL expander and the Mess analytical
// simulator).
package mem

import (
	"fmt"

	"github.com/mess-sim/mess/internal/sim"
)

// LineSize is the cache-line / memory-transaction size in bytes. Every
// platform in the paper uses 64-byte lines.
const LineSize = 64

// Op distinguishes memory reads from memory writes at the controller
// boundary. Note that these are memory-traffic operations, not CPU
// instructions: with a write-allocate cache a store instruction becomes one
// Read (the RFO fill) plus one Write (the eventual writeback).
type Op uint8

const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// Request is one memory transaction. Requests are issued asynchronously:
// the backend calls Done exactly once when the transaction completes.
// For reads, completion is data return; writes are posted and complete when
// the controller accepts them into its write queue.
type Request struct {
	Addr   uint64
	Op     Op
	Size   int // bytes; 0 means LineSize
	Issued sim.Time
	Done   func(at sim.Time)
	Src    int // requester (core) id, for accounting; -1 if unknown
}

// Bytes reports the transaction size, defaulting to LineSize.
func (r *Request) Bytes() int {
	if r.Size <= 0 {
		return LineSize
	}
	return r.Size
}

// Backend is anything that can service memory requests: the detailed DRAM
// system, a behavioural model from the zoo, the CXL expander model, or the
// Mess analytical simulator.
type Backend interface {
	// Access submits a request at the current engine time. The backend
	// must invoke req.Done exactly once, at a time ≥ now.
	Access(req *Request)
}

// BackendFactory builds a backend on a specific engine; harnesses use it to
// instantiate the memory model under test once per measurement point.
type BackendFactory func(eng *sim.Engine) Backend

// Counters mirrors the uncore bandwidth counters the Mess benchmark reads on
// real hardware: bytes and transactions, split by direction.
type Counters struct {
	Reads      uint64
	Writes     uint64
	ReadBytes  uint64
	WriteBytes uint64
}

// Add records one transaction.
func (c *Counters) Add(op Op, bytes int) {
	if op == Read {
		c.Reads++
		c.ReadBytes += uint64(bytes)
	} else {
		c.Writes++
		c.WriteBytes += uint64(bytes)
	}
}

// Merge accumulates other into c.
func (c *Counters) Merge(other Counters) {
	c.Reads += other.Reads
	c.Writes += other.Writes
	c.ReadBytes += other.ReadBytes
	c.WriteBytes += other.WriteBytes
}

// Sub returns the element-wise difference c − prev, i.e. the traffic between
// two counter snapshots.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Reads:      c.Reads - prev.Reads,
		Writes:     c.Writes - prev.Writes,
		ReadBytes:  c.ReadBytes - prev.ReadBytes,
		WriteBytes: c.WriteBytes - prev.WriteBytes,
	}
}

// TotalBytes reports read plus write traffic.
func (c Counters) TotalBytes() uint64 { return c.ReadBytes + c.WriteBytes }

// TotalOps reports the transaction count.
func (c Counters) TotalOps() uint64 { return c.Reads + c.Writes }

// BandwidthGBs reports the counter window as a bandwidth in GB/s
// (10^9 bytes per second, the unit used throughout the paper).
func (c Counters) BandwidthGBs(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.TotalBytes()) / elapsed.Seconds() / 1e9
}

// ReadRatio reports the fraction of memory traffic that is reads, in
// [0,1]. An empty window reports 1 (the convention for unloaded systems:
// the latency probe itself is pure reads).
func (c Counters) ReadRatio() float64 {
	total := c.TotalBytes()
	if total == 0 {
		return 1
	}
	return float64(c.ReadBytes) / float64(total)
}

func (c Counters) String() string {
	return fmt.Sprintf("reads=%d writes=%d readB=%d writeB=%d", c.Reads, c.Writes, c.ReadBytes, c.WriteBytes)
}

// CountingBackend wraps a Backend and maintains Counters for every request
// that passes through, so that traffic accounting works uniformly across
// backends that do not track their own statistics.
type CountingBackend struct {
	Inner Backend
	C     Counters
}

// NewCounting wraps inner in a CountingBackend.
func NewCounting(inner Backend) *CountingBackend { return &CountingBackend{Inner: inner} }

// Access counts the request and forwards it.
func (b *CountingBackend) Access(req *Request) {
	b.C.Add(req.Op, req.Bytes())
	b.Inner.Access(req)
}

// Snapshot returns the current counter values.
func (b *CountingBackend) Snapshot() Counters { return b.C }

// LatencyObserver is implemented by backends that can report the mean
// service latency they have delivered; used by trace-driven evaluation.
type LatencyObserver interface {
	ObservedReadLatency() (mean sim.Time, samples uint64)
}
