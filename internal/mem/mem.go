// Package mem defines the request, traffic-counter and backend types shared
// by every memory model in the repository. It is the seam between the CPU
// side (cores + cache hierarchy) and the memory side (detailed DRAM model,
// the behavioural model zoo, the CXL expander and the Mess analytical
// simulator).
//
// # The request lifecycle
//
// Requests are pooled, mirroring the simulation kernel's event pool: the
// per-transaction record is the dominant allocation on the simulated access
// path once the kernel itself is allocation-free, and the Mess methodology
// multiplies that cost across thousands of sweep points per curve family.
// The contract:
//
//   - the issuer acquires a record from a RequestPool (one pool per
//     simulation instance — pools, like engines, are single-goroutine) and
//     fills in address, op and completion callback;
//   - Access transfers ownership to the backend. From that point the issuer
//     must not retain the pointer past completion; use Handle for any
//     monitoring reference that may outlive the request;
//   - the backend completes the request exactly once — Complete(at) now, or
//     CompleteAt(eng, at) to schedule completion — which invokes Done and
//     then releases the record back to its pool automatically. Completing a
//     pooled record twice panics;
//   - wrapper backends (CountingBackend, trace.Capture) observe and forward;
//     they never complete. Protocol models that issue a secondary
//     device-side transaction (the CXL expander, the remote-socket
//     emulation) acquire the inner request from their own pool and link the
//     original via Parent, completing it from the inner request's Done.
//
// Completion is a stored callback plus context: Done is invoked as
// Done(at, req), so per-request state (address, issue time, the Ctx word,
// the User callback, the Parent link) rides in the record instead of in a
// captured closure. Each pooled record carries prebuilt fire and deliver
// closures, so scheduling a completion (CompleteAt) or a timed hand-off
// (SendAt) allocates nothing in steady state: issue and complete are
// 0 allocs/op once the pool is warm.
//
// Requests constructed directly (&Request{...}) still work everywhere a
// pooled record does — Complete simply skips the release — so external
// callers and tests keep the literal form.
package mem

import (
	"fmt"

	"github.com/mess-sim/mess/internal/sim"
)

// LineSize is the cache-line / memory-transaction size in bytes. Every
// platform in the paper uses 64-byte lines.
const LineSize = 64

// Op distinguishes memory reads from memory writes at the controller
// boundary. Note that these are memory-traffic operations, not CPU
// instructions: with a write-allocate cache a store instruction becomes one
// Read (the RFO fill) plus one Write (the eventual writeback).
type Op uint8

const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// DoneFunc is a completion callback: the backend invokes it exactly once
// when the transaction completes, with the completion time and the request
// itself. Per-request context (Addr, Issued, Ctx, User, Parent) is read off
// the request, which is what lets one stored DoneFunc serve every request
// of a component. The request is released back to its pool when the
// callback returns: the callback may read the record but must not retain
// the pointer.
type DoneFunc func(at sim.Time, req *Request)

// Request is one memory transaction. Requests are issued asynchronously:
// the backend completes each request exactly once (for reads at data
// return; writes are posted and complete when the controller accepts them
// into its write queue). Acquire requests from a RequestPool on hot paths;
// literal construction remains valid for cold ones.
type Request struct {
	Addr   uint64
	Op     Op
	Size   int // bytes; 0 means LineSize
	Issued sim.Time
	Src    int // requester (core) id, for accounting; -1 if unknown

	// Done is the completion callback; nil means fire-and-forget (the
	// record is still released on completion).
	Done DoneFunc
	// Ctx is a caller-owned context word threaded to Done, for issuers
	// that multiplex one callback over unrelated streams.
	Ctx uint64
	// User is a second, caller-level completion slot: layered issuers (the
	// cache port) keep their own bookkeeping in Done and store the core's
	// load-to-use callback here. It is not invoked by the pool — the Done
	// callback decides when and whether to fire it, typically after the
	// record is gone, which is why it takes only the completion time.
	User func(at sim.Time)
	// Parent links the upstream request a wrapper model is serving: the
	// CXL expander and remote-socket emulation acquire a device-side inner
	// request and complete Parent from its Done callback.
	Parent *Request

	pool     *RequestPool // owning pool; nil for literal requests
	gen      uint32       // bumped on release; Handles must match to act
	inflight bool         // acquired and not yet released
	next     *Request     // free-list link

	// Prebuilt per-record closures (created once per record, reused across
	// recycles) — the allocation-free forms of "schedule my completion"
	// and "deliver me to a backend later".
	fire    func(sim.Time)
	deliver func(sim.Time)
	dest    Backend // delivery target for SendAt
}

// Bytes reports the transaction size, defaulting to LineSize.
func (r *Request) Bytes() int {
	if r.Size <= 0 {
		return LineSize
	}
	return r.Size
}

// Complete finishes the request at time at: it invokes Done (when set) and
// then releases the record to its pool. Backends call Complete directly for
// same-instant completion and CompleteAt to schedule it. Completing a
// pooled request that was already released panics — a double Done is a
// protocol bug that would otherwise corrupt an unrelated recycled request.
func (r *Request) Complete(at sim.Time) {
	if r.pool != nil && !r.inflight {
		panic("mem: request completed after release (double completion?)")
	}
	if done := r.Done; done != nil {
		done(at, r)
	}
	r.release()
}

// CompleteAt schedules the request's completion at absolute time at, using
// the record's prebuilt callback (no capturing closure). A request with no
// Done callback has no observer: its record is released immediately rather
// than holding a pool slot and an engine event until at. The returned
// handle names the scheduled completion event (the zero Handle for the
// no-observer case); most backends ignore it, the DRAM controller retains
// it to batch its own completions into the decide loop.
func (r *Request) CompleteAt(eng *sim.Engine, at sim.Time) sim.Handle {
	return r.CompleteAtTagged(eng, at, 0)
}

// CompleteAtTagged is CompleteAt with an explicit entity tag: the
// completion event sorts among equal-(deadline, instant) events by tag,
// which keeps completion order across entities (DRAM channels) identical
// whether they share one engine or run on separate shards.
func (r *Request) CompleteAtTagged(eng *sim.Engine, at sim.Time, tag int32) sim.Handle {
	if r.Done == nil {
		r.release()
		return sim.Handle{}
	}
	return eng.ScheduleTimedTagged(at, tag, r.fireFn())
}

// SendAt schedules delivery of the request to a backend at absolute time
// at — the timed hand-off of on-chip and link hops. Issued is stamped with
// the delivery time. The record's prebuilt deliver closure makes the hop
// allocation-free.
func (r *Request) SendAt(eng *sim.Engine, to Backend, at sim.Time) {
	r.dest = to
	eng.ScheduleTimed(at, r.deliverFn())
}

// SendVia schedules delivery of the request to a backend at time at
// through a caller-supplied transmit function instead of a local engine —
// the cross-shard form of SendAt. The transmit function (typically a
// prebuilt ShardGroup send) receives the arrival time, the sender's
// entity tag and the record's prebuilt deliver closure, so the hand-off
// stays allocation-free. The target backend's Access runs on whichever
// goroutine owns the receiving engine, which is what keeps the pool
// contract intact under sharding: delivery only moves the record's
// processing, never its pool.
func (r *Request) SendVia(xmit func(at sim.Time, tag int32, fn func(sim.Time)), to Backend, at sim.Time, tag int32) {
	r.dest = to
	xmit(at, tag, r.deliverFn())
}

// CompleteVia schedules the request's completion at time at through a
// caller-supplied transmit function — the cross-shard form of
// CompleteAtTagged, used by DRAM channels running on a remote shard to
// fire Done (and the pool release) back on the request's home goroutine.
// Unlike CompleteAt it always transmits, even with no Done callback: the
// release must run on the pool's own goroutine, not the sender's.
func (r *Request) CompleteVia(xmit func(at sim.Time, tag int32, fn func(sim.Time)), at sim.Time, tag int32) {
	xmit(at, tag, r.fireFn())
}

func (r *Request) fireFn() func(sim.Time) {
	if r.fire == nil { // literal request: build on first use
		r.fire = func(at sim.Time) { r.Complete(at) }
	}
	return r.fire
}

func (r *Request) deliverFn() func(sim.Time) {
	if r.deliver == nil {
		r.deliver = func(at sim.Time) {
			r.Issued = at
			r.dest.Access(r)
		}
	}
	return r.deliver
}

// release returns the record to its pool; literal requests are untouched.
// Releasing a record that is already back on the free list panics — every
// double-completion path (Complete, CompleteAt with or without a callback)
// funnels through here, so none can silently self-link the free list.
func (r *Request) release() {
	p := r.pool
	if p == nil {
		return
	}
	if !r.inflight {
		panic("mem: request released after release (double completion?)")
	}
	r.gen++
	r.inflight = false
	r.Done, r.User, r.Parent, r.dest = nil, nil, nil, nil
	r.next = p.free
	p.free = r
	p.live--
}

// Handle returns a stale-safe reference to the request: once the record is
// released (and possibly recycled for an unrelated transaction), the handle
// reads as dead instead of aliasing the new occupant.
func (r *Request) Handle() RequestHandle { return RequestHandle{req: r, gen: r.gen} }

// RequestHandle is a generation-counted reference to a pooled request. The
// zero handle is valid and dead. Handles are values; copying one copies the
// right to observe.
type RequestHandle struct {
	req *Request
	gen uint32
}

// Live reports whether the handle still names the in-flight request it was
// taken from.
func (h RequestHandle) Live() bool {
	return h.req != nil && h.req.gen == h.gen && h.req.inflight
}

// Request returns the referenced request, or nil when the handle is stale.
func (h RequestHandle) Request() *Request {
	if !h.Live() {
		return nil
	}
	return h.req
}

// RequestPool is a free-list allocator for Request records, one per
// simulation instance. Like the engine it serves, a pool is intentionally
// not safe for concurrent use: experiments parallelize across engines, and
// each engine's components share one pool. Records are recycled on
// completion, so steady-state issue/complete cycles allocate nothing.
type RequestPool struct {
	free      *Request
	allocated int // records ever created
	live      int // currently acquired
}

// NewRequestPool returns an empty pool; records are created on demand and
// recycled thereafter.
func NewRequestPool() *RequestPool { return &RequestPool{} }

// Get acquires a record initialized for one transaction: Size 0 (LineSize),
// Src -1, and cleared context slots. The caller owns the record until it
// hands it to a backend via Access; the pool takes it back when the backend
// completes it.
func (p *RequestPool) Get(addr uint64, op Op, done DoneFunc) *Request {
	r := p.free
	if r == nil {
		r = &Request{pool: p}
		// Prebuild the schedule-shaped closures once per record; every
		// recycle reuses them, which is what keeps CompleteAt and SendAt
		// allocation-free in steady state.
		r.fireFn()
		r.deliverFn()
		p.allocated++
	} else {
		p.free = r.next
		r.next = nil
	}
	r.Addr, r.Op, r.Done = addr, op, done
	r.Size, r.Issued, r.Src, r.Ctx = 0, 0, -1, 0
	r.inflight = true
	p.live++
	return r
}

// Live reports the number of records currently acquired and not yet
// released — the in-flight transaction count of the pool's simulation.
func (p *RequestPool) Live() int { return p.live }

// Allocated reports how many records the pool has ever created; a warm
// steady state holds this constant while Live oscillates below it.
func (p *RequestPool) Allocated() int { return p.allocated }

// Backend is anything that can service memory requests: the detailed DRAM
// system, a behavioural model from the zoo, the CXL expander model, or the
// Mess analytical simulator.
type Backend interface {
	// Access submits a request at the current engine time, transferring
	// ownership. The backend must complete the request exactly once
	// (Complete / CompleteAt), at a time ≥ now; completion invokes Done
	// and returns the record to its pool.
	Access(req *Request)
}

// TimedBackend is a Backend that also accepts requests at a future time:
// AccessAt is the backend-routed form of SendAt, letting the backend pick
// where (which engine, which shard) the delivery event lives instead of
// the issuer scheduling it locally. The detailed DRAM system implements it
// on both its single-engine and sharded forms, which is what lets the
// cache hierarchy drive either through one code path.
type TimedBackend interface {
	Backend
	// AccessAt submits the request for delivery at absolute time at ≥ now,
	// transferring ownership immediately. Issued is stamped with the
	// delivery time, as with SendAt.
	AccessAt(req *Request, at sim.Time)
}

// TimedOn adapts an untimed backend to TimedBackend by scheduling each
// delivery on the given engine — the single-engine counterpart of a
// sharded device's cross-shard hand-off. An unsharded reference leg
// built with TimedOn sees requests arrive at exactly the instants the
// sharded leg delivers them, which is what makes the two completion
// traces comparable byte for byte.
type TimedOn struct {
	Eng   *sim.Engine
	Inner Backend
}

// Access submits at the current engine time, directly to the inner
// backend.
func (t *TimedOn) Access(req *Request) { t.Inner.Access(req) }

// AccessAt schedules delivery to the inner backend at absolute time at.
func (t *TimedOn) AccessAt(req *Request, at sim.Time) { req.SendAt(t.Eng, t.Inner, at) }

var _ TimedBackend = (*TimedOn)(nil)

// Timed unwraps b to its TimedBackend form if it has one, looking through
// CountingBackend wrappers. A CountingBackend is timed exactly when its
// inner backend is (the wrapper counts at submit time either way, so both
// modes account traffic at the same instant). Use this instead of a direct
// type assertion: CountingBackend always carries the AccessAt method, but
// forwarding it to an untimed inner backend would panic.
func Timed(b Backend) (TimedBackend, bool) {
	if cb, ok := b.(*CountingBackend); ok {
		if _, ok := Timed(cb.Inner); ok {
			return cb, true
		}
		return nil, false
	}
	if tb, ok := b.(TimedBackend); ok {
		return tb, true
	}
	return nil, false
}

// BackendFactory builds a backend on a specific engine; harnesses use it to
// instantiate the memory model under test once per measurement point.
type BackendFactory func(eng *sim.Engine) Backend

// Counters mirrors the uncore bandwidth counters the Mess benchmark reads on
// real hardware: bytes and transactions, split by direction.
type Counters struct {
	Reads      uint64
	Writes     uint64
	ReadBytes  uint64
	WriteBytes uint64
}

// Add records one transaction.
func (c *Counters) Add(op Op, bytes int) {
	if op == Read {
		c.Reads++
		c.ReadBytes += uint64(bytes)
	} else {
		c.Writes++
		c.WriteBytes += uint64(bytes)
	}
}

// Merge accumulates other into c.
func (c *Counters) Merge(other Counters) {
	c.Reads += other.Reads
	c.Writes += other.Writes
	c.ReadBytes += other.ReadBytes
	c.WriteBytes += other.WriteBytes
}

// Sub returns the element-wise difference c − prev, i.e. the traffic between
// two counter snapshots.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Reads:      c.Reads - prev.Reads,
		Writes:     c.Writes - prev.Writes,
		ReadBytes:  c.ReadBytes - prev.ReadBytes,
		WriteBytes: c.WriteBytes - prev.WriteBytes,
	}
}

// TotalBytes reports read plus write traffic.
func (c Counters) TotalBytes() uint64 { return c.ReadBytes + c.WriteBytes }

// TotalOps reports the transaction count.
func (c Counters) TotalOps() uint64 { return c.Reads + c.Writes }

// BandwidthGBs reports the counter window as a bandwidth in GB/s
// (10^9 bytes per second, the unit used throughout the paper).
func (c Counters) BandwidthGBs(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.TotalBytes()) / elapsed.Seconds() / 1e9
}

// ReadRatio reports the fraction of memory traffic that is reads, in
// [0,1]. An empty window reports 1 (the convention for unloaded systems:
// the latency probe itself is pure reads).
func (c Counters) ReadRatio() float64 {
	total := c.TotalBytes()
	if total == 0 {
		return 1
	}
	return float64(c.ReadBytes) / float64(total)
}

func (c Counters) String() string {
	return fmt.Sprintf("reads=%d writes=%d readB=%d writeB=%d", c.Reads, c.Writes, c.ReadBytes, c.WriteBytes)
}

// CountingBackend wraps a Backend and maintains Counters for every request
// that passes through, so that traffic accounting works uniformly across
// backends that do not track their own statistics. As a wrapper it
// observes and forwards: the inner backend keeps sole responsibility for
// completing (and thereby releasing) each request.
type CountingBackend struct {
	Inner Backend
	C     Counters
}

// NewCounting wraps inner in a CountingBackend.
func NewCounting(inner Backend) *CountingBackend { return &CountingBackend{Inner: inner} }

// Access counts the request and forwards it.
func (b *CountingBackend) Access(req *Request) {
	b.C.Add(req.Op, req.Bytes())
	b.Inner.Access(req)
}

// AccessAt counts the request at submit time and forwards the timed
// delivery. Only valid when the inner backend is a TimedBackend — gate
// through Timed rather than asserting on the wrapper directly.
func (b *CountingBackend) AccessAt(req *Request, at sim.Time) {
	b.C.Add(req.Op, req.Bytes())
	b.Inner.(TimedBackend).AccessAt(req, at)
}

// Snapshot returns the current counter values.
func (b *CountingBackend) Snapshot() Counters { return b.C }

// LatencyObserver is implemented by backends that can report the mean
// service latency they have delivered; used by trace-driven evaluation.
type LatencyObserver interface {
	ObservedReadLatency() (mean sim.Time, samples uint64)
}
