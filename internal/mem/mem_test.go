package mem

import (
	"testing"
	"testing/quick"

	"github.com/mess-sim/mess/internal/sim"
)

func TestCountersAddAndRatios(t *testing.T) {
	var c Counters
	c.Add(Read, 64)
	c.Add(Read, 64)
	c.Add(Write, 64)
	if c.Reads != 2 || c.Writes != 1 {
		t.Fatalf("counters %v", c)
	}
	if c.TotalBytes() != 192 || c.TotalOps() != 3 {
		t.Fatalf("totals %v", c)
	}
	if r := c.ReadRatio(); r < 0.66 || r > 0.67 {
		t.Fatalf("read ratio %v", r)
	}
	var empty Counters
	if empty.ReadRatio() != 1 {
		t.Fatal("empty window convention: read ratio 1")
	}
}

func TestBandwidthGBs(t *testing.T) {
	var c Counters
	for i := 0; i < 1000; i++ {
		c.Add(Read, 64)
	}
	// 64 kB in 1 µs = 64 GB/s.
	if bw := c.BandwidthGBs(sim.Microsecond); bw < 63.9 || bw > 64.1 {
		t.Fatalf("bandwidth %v GB/s, want 64", bw)
	}
	if c.BandwidthGBs(0) != 0 {
		t.Fatal("zero window must report zero bandwidth")
	}
}

func TestCountersSubMergeProperty(t *testing.T) {
	// (a merged b).Sub(a) == b, and byte totals are conserved.
	prop := func(r1, w1, r2, w2 uint16) bool {
		mk := func(r, w uint16) Counters {
			var c Counters
			for i := 0; i < int(r%200); i++ {
				c.Add(Read, 64)
			}
			for i := 0; i < int(w%200); i++ {
				c.Add(Write, 64)
			}
			return c
		}
		a, b := mk(r1, w1), mk(r2, w2)
		sum := a
		sum.Merge(b)
		diff := sum.Sub(a)
		return diff == b && sum.TotalBytes() == a.TotalBytes()+b.TotalBytes()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRequestBytesDefault(t *testing.T) {
	r := &Request{}
	if r.Bytes() != LineSize {
		t.Fatalf("default size %d, want %d", r.Bytes(), LineSize)
	}
	r.Size = 128
	if r.Bytes() != 128 {
		t.Fatalf("explicit size %d", r.Bytes())
	}
}

// nullBackend completes nothing; counting must still record traffic.
type nullBackend struct{ n int }

func (b *nullBackend) Access(*Request) { b.n++ }

func TestCountingBackendForwards(t *testing.T) {
	inner := &nullBackend{}
	cb := NewCounting(inner)
	cb.Access(&Request{Op: Read})
	cb.Access(&Request{Op: Write, Size: 128})
	if inner.n != 2 {
		t.Fatalf("forwarded %d requests", inner.n)
	}
	snap := cb.Snapshot()
	if snap.ReadBytes != 64 || snap.WriteBytes != 128 {
		t.Fatalf("counted %v", snap)
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("op names")
	}
}
