package mem

import (
	"testing"
	"testing/quick"

	"github.com/mess-sim/mess/internal/sim"
)

func TestCountersAddAndRatios(t *testing.T) {
	var c Counters
	c.Add(Read, 64)
	c.Add(Read, 64)
	c.Add(Write, 64)
	if c.Reads != 2 || c.Writes != 1 {
		t.Fatalf("counters %v", c)
	}
	if c.TotalBytes() != 192 || c.TotalOps() != 3 {
		t.Fatalf("totals %v", c)
	}
	if r := c.ReadRatio(); r < 0.66 || r > 0.67 {
		t.Fatalf("read ratio %v", r)
	}
	var empty Counters
	if empty.ReadRatio() != 1 {
		t.Fatal("empty window convention: read ratio 1")
	}
}

func TestBandwidthGBs(t *testing.T) {
	var c Counters
	for i := 0; i < 1000; i++ {
		c.Add(Read, 64)
	}
	// 64 kB in 1 µs = 64 GB/s.
	if bw := c.BandwidthGBs(sim.Microsecond); bw < 63.9 || bw > 64.1 {
		t.Fatalf("bandwidth %v GB/s, want 64", bw)
	}
	if c.BandwidthGBs(0) != 0 {
		t.Fatal("zero window must report zero bandwidth")
	}
}

func TestCountersSubMergeProperty(t *testing.T) {
	// (a merged b).Sub(a) == b, and byte totals are conserved.
	prop := func(r1, w1, r2, w2 uint16) bool {
		mk := func(r, w uint16) Counters {
			var c Counters
			for i := 0; i < int(r%200); i++ {
				c.Add(Read, 64)
			}
			for i := 0; i < int(w%200); i++ {
				c.Add(Write, 64)
			}
			return c
		}
		a, b := mk(r1, w1), mk(r2, w2)
		sum := a
		sum.Merge(b)
		diff := sum.Sub(a)
		return diff == b && sum.TotalBytes() == a.TotalBytes()+b.TotalBytes()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRequestBytesDefault(t *testing.T) {
	r := &Request{}
	if r.Bytes() != LineSize {
		t.Fatalf("default size %d, want %d", r.Bytes(), LineSize)
	}
	r.Size = 128
	if r.Bytes() != 128 {
		t.Fatalf("explicit size %d", r.Bytes())
	}
}

// nullBackend completes nothing; counting must still record traffic.
type nullBackend struct{ n int }

func (b *nullBackend) Access(*Request) { b.n++ }

func TestCountingBackendForwards(t *testing.T) {
	inner := &nullBackend{}
	cb := NewCounting(inner)
	cb.Access(&Request{Op: Read})
	cb.Access(&Request{Op: Write, Size: 128})
	if inner.n != 2 {
		t.Fatalf("forwarded %d requests", inner.n)
	}
	snap := cb.Snapshot()
	if snap.ReadBytes != 64 || snap.WriteBytes != 128 {
		t.Fatalf("counted %v", snap)
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("op names")
	}
}

// --- Request-pool lifecycle invariants ---

// sink is a backend that parks requests for manual completion.
type sink struct{ got []*Request }

func (s *sink) Access(req *Request) { s.got = append(s.got, req) }

func TestRequestPoolReuseAfterRelease(t *testing.T) {
	p := NewRequestPool()
	r1 := p.Get(0x40, Read, nil)
	if p.Live() != 1 || p.Allocated() != 1 {
		t.Fatalf("after Get: live=%d allocated=%d", p.Live(), p.Allocated())
	}
	if r1.Src != -1 || r1.Bytes() != LineSize {
		t.Fatalf("Get defaults: src=%d bytes=%d", r1.Src, r1.Bytes())
	}
	r1.Complete(10)
	if p.Live() != 0 {
		t.Fatalf("after Complete: live=%d", p.Live())
	}
	r2 := p.Get(0x80, Write, nil)
	if r2 != r1 {
		t.Fatal("released record was not recycled")
	}
	if p.Allocated() != 1 {
		t.Fatalf("recycling allocated a new record: allocated=%d", p.Allocated())
	}
	if r2.Addr != 0x80 || r2.Op != Write || r2.Done != nil || r2.User != nil || r2.Parent != nil {
		t.Fatalf("recycled record not reinitialized: %+v", r2)
	}
	r2.Complete(20)
}

func TestRequestDoubleCompletePanics(t *testing.T) {
	p := NewRequestPool()
	r := p.Get(0, Read, nil)
	r.Complete(1)
	defer func() {
		if recover() == nil {
			t.Fatal("second Complete on a released pooled request must panic")
		}
	}()
	r.Complete(2)
}

func TestRequestHandleStaleSafety(t *testing.T) {
	p := NewRequestPool()
	r := p.Get(0x1000, Read, nil)
	h := r.Handle()
	if !h.Live() || h.Request() != r {
		t.Fatal("fresh handle must be live")
	}
	r.Complete(5)
	if h.Live() || h.Request() != nil {
		t.Fatal("handle must go stale on release")
	}
	// The record is recycled for an unrelated transaction: the old handle
	// must not alias the new occupant.
	r2 := p.Get(0x2000, Write, nil)
	if r2 != r {
		t.Fatal("expected recycling for this test")
	}
	if h.Live() || h.Request() != nil {
		t.Fatal("stale handle aliases the recycled record")
	}
	if !r2.Handle().Live() {
		t.Fatal("new occupant's own handle must be live")
	}
	var zero RequestHandle
	if zero.Live() || zero.Request() != nil {
		t.Fatal("zero handle must be dead")
	}
}

func TestCompleteInvokesDoneWithRequest(t *testing.T) {
	p := NewRequestPool()
	var gotAt sim.Time
	var gotCtx uint64
	r := p.Get(0xabc, Read, func(at sim.Time, req *Request) {
		gotAt = at
		gotCtx = req.Ctx
		if req.Addr != 0xabc {
			t.Errorf("Done saw addr %#x", req.Addr)
		}
	})
	r.Ctx = 77
	r.Complete(42)
	if gotAt != 42 || gotCtx != 77 {
		t.Fatalf("Done got (at=%v ctx=%d), want (42, 77)", gotAt, gotCtx)
	}
	if p.Live() != 0 {
		t.Fatal("record must be released after Done returns")
	}
}

func TestCompleteAtSchedulesAndNilDoneReleasesImmediately(t *testing.T) {
	eng := sim.New()
	p := NewRequestPool()

	// No callback: no observer, so the record is released immediately and
	// no engine event is spent.
	r := p.Get(0, Write, nil)
	r.CompleteAt(eng, 100)
	if p.Live() != 0 || eng.Pending() != 0 {
		t.Fatalf("nil-Done CompleteAt: live=%d pending=%d, want 0/0", p.Live(), eng.Pending())
	}

	// With a callback: completion fires at the deadline, then releases.
	var fired sim.Time
	r = p.Get(0, Read, func(at sim.Time, _ *Request) { fired = at })
	r.CompleteAt(eng, 250)
	if p.Live() != 1 {
		t.Fatal("record must stay live until the completion event fires")
	}
	eng.Run()
	if fired != 250 || p.Live() != 0 {
		t.Fatalf("fired=%v live=%d, want 250/0", fired, p.Live())
	}
}

func TestSendAtDeliversWithIssuedStamped(t *testing.T) {
	eng := sim.New()
	p := NewRequestPool()
	var s sink
	r := p.Get(0x40, Read, nil)
	r.SendAt(eng, &s, 300)
	if len(s.got) != 0 {
		t.Fatal("delivery must wait for the deadline")
	}
	eng.Run()
	if len(s.got) != 1 || s.got[0] != r {
		t.Fatalf("delivered %d requests", len(s.got))
	}
	if r.Issued != 300 || eng.Now() != 300 {
		t.Fatalf("Issued=%v now=%v, want 300", r.Issued, eng.Now())
	}
	r.Complete(eng.Now())
}

func TestLiteralRequestComplete(t *testing.T) {
	// Literal (non-pooled) requests keep working: Complete invokes Done
	// and release is a no-op.
	eng := sim.New()
	var fired sim.Time
	r := &Request{Addr: 1, Op: Read, Done: func(at sim.Time, _ *Request) { fired = at }}
	r.CompleteAt(eng, 90)
	eng.Run()
	if fired != 90 {
		t.Fatalf("literal request completion at %v, want 90", fired)
	}
}

// TestPoolSteadyStateZeroAlloc is the contract's headline: once the pool
// is warm, an issue/complete cycle — including a scheduled completion
// through the engine — allocates nothing.
func TestPoolSteadyStateZeroAlloc(t *testing.T) {
	eng := sim.New()
	p := NewRequestPool()
	done := func(sim.Time, *Request) {}
	// Warm the pool and the engine's event pool.
	for i := 0; i < 64; i++ {
		r := p.Get(uint64(i)*64, Read, done)
		r.CompleteAt(eng, eng.Now()+10)
	}
	eng.Run()
	allocs := testing.AllocsPerRun(200, func() {
		r := p.Get(0x40, Read, done)
		r.CompleteAt(eng, eng.Now()+10)
		eng.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state issue/complete allocates %.1f/op, want 0", allocs)
	}
}

func TestRequestDoubleCompleteAtPanics(t *testing.T) {
	// The nil-Done fast path of CompleteAt releases without scheduling; a
	// second completion must panic rather than self-link the free list.
	eng := sim.New()
	p := NewRequestPool()
	r := p.Get(0, Write, nil)
	r.CompleteAt(eng, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("second CompleteAt on a released pooled request must panic")
		}
	}()
	r.CompleteAt(eng, 9)
}
