// Package cache models the on-chip side of the memory path: the translation
// of core loads and stores into memory-controller traffic.
//
// It is intentionally not a tag-accurate cache simulator. The Mess benchmark
// defeats caches by construction (arrays larger than the LLC, random
// pointer-chase), so what matters for bandwidth–latency characterization is
// the *traffic translation*:
//
//   - write-allocate policy: a store miss costs one memory read (the RFO
//     fill) plus one eventual memory write (the dirty writeback) — the 2×
//     store amplification at the heart of the paper's STREAM-vs-Mess
//     analysis (Sec. III);
//   - write-through/no-allocate behaviour on platforms where STREAM matches
//     the Mess counters (Graviton 3, H100);
//   - non-temporal stores that write straight to memory (the >50%-write
//     Mess kernels);
//   - MSHR limits bounding per-core memory parallelism;
//   - a finite write buffer providing back-pressure on posted writebacks;
//   - the on-chip (cache hierarchy + NoC) round-trip component of the
//     load-to-use latency;
//   - optionally, the OpenPiton coherency bug from Sec. IV-C: every
//     eviction written back, clean or not.
package cache

import (
	"fmt"

	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// WritePolicy selects how stores translate into memory traffic.
type WritePolicy uint8

const (
	// WriteAllocate: store miss → RFO read now + writeback later.
	WriteAllocate WritePolicy = iota
	// WriteThrough: store miss → one memory write, no fill. (Shorthand for
	// the no-write-allocate behaviour the paper infers on Graviton 3/H100.)
	WriteThrough
)

func (p WritePolicy) String() string {
	if p == WriteAllocate {
		return "write-allocate"
	}
	return "write-through"
}

// Config parameterizes the hierarchy.
type Config struct {
	Policy        WritePolicy
	OnChipLatency sim.Time // round-trip core↔controller component of load-to-use
	MSHRs         int      // per-core outstanding demand misses (loads + RFOs)
	WriteBufs     int      // per-core outstanding posted writebacks
	WritebackLag  uint64   // eviction distance in bytes for writeback addresses
	LLCHitRate    float64  // probability an access is served on-chip
	LLCHitLatency sim.Time // latency of on-chip hits
	// EvictCleanAsDirty reproduces the OpenPiton coherency bug (Sec. IV-C):
	// the LLC writes back every evicted line, clean or dirty, so load misses
	// also generate write traffic.
	EvictCleanAsDirty bool
	Seed              uint64 // for the LLC hit-rate draw
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MSHRs == 0 {
		out.MSHRs = 10
	}
	if out.WriteBufs == 0 {
		out.WriteBufs = 16
	}
	if out.WritebackLag == 0 {
		out.WritebackLag = 4 << 20
	}
	if out.Seed == 0 {
		out.Seed = 0x9e3779b97f4a7c15
	}
	return out
}

// Validate reports a descriptive error for an unusable configuration.
func (c *Config) Validate() error {
	switch {
	case c.MSHRs < 0 || c.WriteBufs < 0:
		return fmt.Errorf("cache: negative MSHR/write-buffer count")
	case c.LLCHitRate < 0 || c.LLCHitRate > 1:
		return fmt.Errorf("cache: LLC hit rate %v outside [0,1]", c.LLCHitRate)
	case c.OnChipLatency < 0:
		return fmt.Errorf("cache: negative on-chip latency")
	}
	return nil
}

// Hierarchy is the shared on-chip model; create one per platform and one
// Port per core. It owns the engine's request pool: every transaction its
// ports issue downstream is a pooled record, released when the backend
// completes it.
type Hierarchy struct {
	eng     *sim.Engine
	cfg     Config
	backend mem.Backend
	timed   mem.TimedBackend // backend's AccessAt form; nil when untimed
	pool    *mem.RequestPool
	rng     uint64
}

// New builds a hierarchy over the given memory backend.
func New(eng *sim.Engine, cfg Config, backend mem.Backend) *Hierarchy {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Hierarchy{eng: eng, cfg: cfg, backend: backend, pool: mem.NewRequestPool(), rng: cfg.Seed}
	h.timed, _ = mem.Timed(backend)
	return h
}

// Config reports the hierarchy configuration (after defaulting).
func (h *Hierarchy) Config() Config { return h.cfg }

// Pool exposes the hierarchy's request pool (diagnostics and tests: a
// drained simulation must report Live() == 0).
func (h *Hierarchy) Pool() *mem.RequestPool { return h.pool }

// Port returns a per-core issue port. The port's downstream completion
// callbacks are bound once here — request issue captures nothing.
func (h *Hierarchy) Port(coreID int) *Port {
	p := &Port{h: h, id: coreID}
	p.loadDoneFn = p.loadDone
	p.storeDoneFn = p.storeDone
	p.wbDoneFn = p.wbDone
	return p
}

func (h *Hierarchy) nextRand() uint64 {
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	return h.rng
}

func (h *Hierarchy) llcHit() bool {
	if h.cfg.LLCHitRate <= 0 {
		return false
	}
	return float64(h.nextRand()%(1<<24))/float64(1<<24) < h.cfg.LLCHitRate
}

// Port is a single core's interface to the memory hierarchy. Ports are not
// safe for concurrent use; each belongs to one core on one engine.
type Port struct {
	h          *Hierarchy
	id         int
	inflight   int // demand misses holding MSHRs
	wbInflight int // posted writebacks holding write-buffer slots

	// Stored completion callbacks (bound at construction): the backend
	// invokes these with the pooled request, whose User slot carries the
	// core's own load-to-use callback.
	loadDoneFn  mem.DoneFunc
	storeDoneFn mem.DoneFunc
	wbDoneFn    mem.DoneFunc

	// OnFree, when set, is invoked every time an MSHR or write-buffer
	// slot is released. Issue engines that stall on FreeMSHR/FreeWB must
	// register here: a write-buffer slot can be freed by a writeback
	// draining deep in the memory system, with no in-flight completion
	// callback belonging to the stalled engine.
	OnFree func()

	// Stats.
	Loads, Stores, NTStores uint64
	LLCHits                 uint64
}

func (p *Port) releaseMSHR() {
	p.inflight--
	if p.OnFree != nil {
		p.OnFree()
	}
}

func (p *Port) releaseWB() {
	p.wbInflight--
	if p.OnFree != nil {
		p.OnFree()
	}
}

// FreeMSHR reports whether a demand miss can issue now.
func (p *Port) FreeMSHR() bool { return p.inflight < p.h.cfg.MSHRs }

// FreeWB reports whether a posted write can issue now.
func (p *Port) FreeWB() bool { return p.wbInflight < p.h.cfg.WriteBufs }

// Outstanding reports current demand misses in flight.
func (p *Port) Outstanding() int { return p.inflight }

// Load issues one load. For a miss, done fires at data arrival at the core
// (load-to-use) and Load reports onChip false. An LLC hit completes on
// chip: the port neither schedules nor invokes done — it reports
// (now+LLCHitLatency, true) and the core folds the completion into its own
// control flow (consume the timestamp inline, or schedule its stored
// callback at ackAt when it reads engine time). This keeps hits out of the
// port's scheduling entirely — the round-trip event the old port-side
// delivery cost per hit exists only if the core needs one.
// The caller must have checked FreeMSHR; Load panics otherwise, because a
// silent drop would corrupt bandwidth accounting.
func (p *Port) Load(addr uint64, done func(at sim.Time)) (ackAt sim.Time, onChip bool) {
	p.Loads++
	if p.h.llcHit() {
		p.LLCHits++
		return p.h.eng.Now() + p.h.cfg.LLCHitLatency, true
	}
	if !p.FreeMSHR() {
		panic("cache: Load issued with no free MSHR")
	}
	p.inflight++
	p.request(addr, mem.Read, p.loadDoneFn, done)
	if p.h.cfg.EvictCleanAsDirty {
		p.buggedWriteback(addr)
	}
	return 0, false
}

// loadDone is the backend completion of a demand load: free the MSHR, then
// deliver the core's callback (req.User) after the inbound hop.
func (p *Port) loadDone(at sim.Time, req *mem.Request) {
	user := req.User
	p.releaseMSHR()
	p.finish(at, user)
}

// Store issues one store under the configured write policy. done fires when
// the store owns the line (write-allocate miss); an LLC hit or a
// write-through acceptance completes on chip, reported as
// (now+LLCHitLatency, true) with done untouched, exactly as for Load.
func (p *Port) Store(addr uint64, done func(at sim.Time)) (ackAt sim.Time, onChip bool) {
	p.Stores++
	if p.h.llcHit() {
		p.LLCHits++
		return p.h.eng.Now() + p.h.cfg.LLCHitLatency, true
	}
	if p.h.cfg.Policy == WriteThrough {
		if !p.FreeWB() {
			panic("cache: Store issued with no free write buffer")
		}
		p.wbInflight++
		p.request(addr, mem.Write, p.wbDoneFn, nil)
		return p.h.eng.Now() + p.h.cfg.LLCHitLatency, true
	}
	// Write-allocate: RFO read now, dirty writeback at fill time.
	if !p.FreeMSHR() || !p.FreeWB() {
		panic("cache: Store issued with no free MSHR/write buffer")
	}
	p.inflight++
	p.wbInflight++
	p.request(addr, mem.Read, p.storeDoneFn, done)
	return 0, false
}

// storeDone is the backend completion of a write-allocate RFO fill: emit
// the paired writeback (the store address rides in req.Addr), free the
// MSHR, then deliver the core's callback.
func (p *Port) storeDone(at sim.Time, req *mem.Request) {
	addr, user := req.Addr, req.User
	p.writebackFor(addr)
	p.releaseMSHR()
	p.finish(at, user)
}

// wbDone is the backend completion of a posted write draining: free the
// write-buffer slot reserved at issue.
func (p *Port) wbDone(sim.Time, *mem.Request) { p.releaseWB() }

// StoreNT issues a non-temporal (streaming) store: one memory write, no
// RFO. The core-side acceptance is always on chip — reported like a hit,
// never scheduled or invoked by the port.
func (p *Port) StoreNT(addr uint64, done func(at sim.Time)) (ackAt sim.Time, onChip bool) {
	p.NTStores++
	if !p.FreeWB() {
		panic("cache: StoreNT issued with no free write buffer")
	}
	p.wbInflight++
	p.request(addr, mem.Write, p.wbDoneFn, nil)
	return p.h.eng.Now() + p.h.cfg.LLCHitLatency, true
}

// writebackFor issues the posted writeback paired with a write-allocate
// store: the line evicted is modelled as WritebackLag bytes behind the
// current address, preserving the sequential locality of eviction streams.
// The write-buffer slot reserved by Store is released when the write drains.
func (p *Port) writebackFor(addr uint64) {
	lag := p.h.cfg.WritebackLag
	if addr < lag {
		// Cold lines: nothing dirty to evict yet.
		p.releaseWB()
		return
	}
	p.request(addr-lag, mem.Write, p.wbDoneFn, nil)
}

// buggedWriteback models the OpenPiton clean-eviction bug: the fill caused
// by a load evicts a line that is written back even though it is clean.
// Bug traffic deliberately bypasses the write-buffer limit — the broken
// protocol generates it regardless of buffer occupancy.
func (p *Port) buggedWriteback(addr uint64) {
	lag := p.h.cfg.WritebackLag
	if addr < lag {
		return
	}
	p.request(addr-lag, mem.Write, nil, nil)
}

// request acquires a pooled transaction and sends it to the backend after
// the outbound on-chip delay (via the record's own timed hand-off — no
// per-request closure). The backend completion time is the controller-level
// completion; the inbound on-chip delay is added by finish for loads.
func (p *Port) request(addr uint64, op mem.Op, done mem.DoneFunc, user func(at sim.Time)) {
	req := p.h.pool.Get(addr, op, done)
	req.Src = p.id
	req.User = user
	outbound := p.h.cfg.OnChipLatency / 2
	if outbound == 0 {
		req.Issued = p.h.eng.Now()
		p.h.backend.Access(req)
		return
	}
	// A timed backend routes the hop itself — the seam that lets a sharded
	// DRAM system land the delivery on the owning channel's shard. The
	// outbound hop doubles as the home shard's cross-shard lookahead.
	if p.h.timed != nil {
		p.h.timed.AccessAt(req, p.h.eng.Now()+outbound)
		return
	}
	req.SendAt(p.h.eng, p.h.backend, p.h.eng.Now()+outbound)
}

// finish delivers a memory completion to the core after the inbound on-chip
// delay (the other half of OnChipLatency).
func (p *Port) finish(memDone sim.Time, done func(at sim.Time)) {
	if done == nil {
		return
	}
	inbound := p.h.cfg.OnChipLatency - p.h.cfg.OnChipLatency/2
	at := memDone + inbound
	if inbound == 0 {
		done(at)
		return
	}
	p.h.eng.ScheduleTimed(at, done)
}
