package cache

import (
	"testing"

	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// fakeBackend records traffic and completes requests after a fixed delay.
type fakeBackend struct {
	eng   *sim.Engine
	delay sim.Time
	c     mem.Counters
	reqs  []mem.Request
}

func (f *fakeBackend) Access(req *mem.Request) {
	f.c.Add(req.Op, req.Bytes())
	f.reqs = append(f.reqs, *req)
	req.CompleteAt(f.eng, f.eng.Now()+f.delay)
}

func setup(cfg Config) (*sim.Engine, *fakeBackend, *Hierarchy) {
	eng := sim.New()
	b := &fakeBackend{eng: eng, delay: 50 * sim.Nanosecond}
	h := New(eng, cfg, b)
	return eng, b, h
}

func TestLoadRoundTripIncludesOnChip(t *testing.T) {
	eng, _, h := setup(Config{OnChipLatency: 40 * sim.Nanosecond})
	p := h.Port(0)
	var lat sim.Time
	p.Load(1<<20, func(at sim.Time) { lat = at })
	eng.Run()
	want := 90 * sim.Nanosecond // 40 on-chip + 50 memory
	if lat != want {
		t.Fatalf("load-to-use = %v ns, want %v ns", lat.Nanoseconds(), want.Nanoseconds())
	}
}

func TestWriteAllocateStoreTraffic(t *testing.T) {
	cfg := Config{Policy: WriteAllocate, WritebackLag: 1 << 20}
	eng, b, h := setup(cfg)
	p := h.Port(0)
	addr := uint64(8 << 20) // above the writeback lag: eviction flows
	p.Store(addr, nil)
	eng.Run()
	if b.c.Reads != 1 || b.c.Writes != 1 {
		t.Fatalf("write-allocate store traffic = %v, want 1 read (RFO) + 1 write", b.c)
	}
	if b.reqs[1].Addr != addr-1<<20 {
		t.Fatalf("writeback address %#x, want store−lag %#x", b.reqs[1].Addr, addr-1<<20)
	}
}

func TestWriteAllocateColdStoreSkipsWriteback(t *testing.T) {
	cfg := Config{Policy: WriteAllocate, WritebackLag: 1 << 30}
	eng, b, h := setup(cfg)
	h.Port(0).Store(64, nil)
	eng.Run()
	if b.c.Reads != 1 || b.c.Writes != 0 {
		t.Fatalf("cold store traffic = %v, want RFO only", b.c)
	}
}

func TestWriteThroughStoreTraffic(t *testing.T) {
	eng, b, h := setup(Config{Policy: WriteThrough})
	h.Port(0).Store(8<<20, nil)
	eng.Run()
	if b.c.Reads != 0 || b.c.Writes != 1 {
		t.Fatalf("write-through store traffic = %v, want 1 write", b.c)
	}
}

func TestNonTemporalStoreTraffic(t *testing.T) {
	eng, b, h := setup(Config{Policy: WriteAllocate})
	h.Port(0).StoreNT(8<<20, nil)
	eng.Run()
	if b.c.Reads != 0 || b.c.Writes != 1 {
		t.Fatalf("NT store traffic = %v, want 1 write, no RFO", b.c)
	}
}

func TestMSHRLimitEnforced(t *testing.T) {
	eng, _, h := setup(Config{MSHRs: 2})
	p := h.Port(0)
	p.Load(0, nil)
	p.Load(64, nil)
	if p.FreeMSHR() {
		t.Fatal("MSHRs should be exhausted at 2 in-flight")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Load beyond MSHR limit did not panic")
		}
	}()
	p.Load(128, nil)
	_ = eng
}

func TestMSHRFreedOnCompletion(t *testing.T) {
	eng, _, h := setup(Config{MSHRs: 1})
	p := h.Port(0)
	doneCount := 0
	p.Load(0, func(sim.Time) { doneCount++ })
	eng.Run()
	if !p.FreeMSHR() {
		t.Fatal("MSHR not freed after completion")
	}
	p.Load(64, func(sim.Time) { doneCount++ })
	eng.Run()
	if doneCount != 2 {
		t.Fatalf("completions = %d, want 2", doneCount)
	}
}

func TestWriteBufferBackpressure(t *testing.T) {
	eng, _, h := setup(Config{WriteBufs: 2})
	p := h.Port(0)
	p.StoreNT(8<<20, nil)
	p.StoreNT(9<<20, nil)
	if p.FreeWB() {
		t.Fatal("write buffers should be exhausted")
	}
	eng.Run() // drains
	if !p.FreeWB() {
		t.Fatal("write buffers not freed after drain")
	}
}

func TestOpenPitonBugGeneratesWriteTraffic(t *testing.T) {
	// The Sec. IV-C coherency bug: loads evict clean lines as writebacks,
	// so a pure-load stream shows ~50% write traffic at the controller —
	// the anomaly the Mess characterization flagged.
	cfg := Config{Policy: WriteAllocate, EvictCleanAsDirty: true, WritebackLag: 1 << 20}
	eng, b, h := setup(cfg)
	p := h.Port(0)
	for i := 0; i < 100; i++ {
		p.Load(uint64(8<<20+i*64), nil)
		eng.Run()
	}
	if b.c.Writes != 100 {
		t.Fatalf("bugged hierarchy produced %d writebacks for 100 clean loads, want 100", b.c.Writes)
	}
	// And without the bug: zero.
	eng2, b2, h2 := setup(Config{Policy: WriteAllocate})
	p2 := h2.Port(0)
	for i := 0; i < 100; i++ {
		p2.Load(uint64(8<<20+i*64), nil)
		eng2.Run()
	}
	if b2.c.Writes != 0 {
		t.Fatalf("healthy hierarchy produced %d writebacks for clean loads, want 0", b2.c.Writes)
	}
}

func TestLLCHitsShortCircuit(t *testing.T) {
	cfg := Config{LLCHitRate: 1.0, LLCHitLatency: 10 * sim.Nanosecond}
	eng, b, h := setup(cfg)
	p := h.Port(0)
	// A hit is reported synchronously — no event, no callback — and the
	// port must not have invoked the miss callback.
	called := false
	at, onChip := p.Load(0, func(sim.Time) { called = true })
	if !onChip {
		t.Fatal("guaranteed LLC hit reported as a miss")
	}
	if pending := eng.Pending(); pending != 0 {
		t.Fatalf("hit scheduled %d events, want 0", pending)
	}
	eng.Run()
	if called {
		t.Fatal("hit invoked the miss callback")
	}
	if len(b.reqs) != 0 {
		t.Fatal("LLC hit leaked to memory")
	}
	if at != 10*sim.Nanosecond {
		t.Fatalf("hit latency %v, want 10 ns", at.Nanoseconds())
	}
	if p.LLCHits != 1 {
		t.Fatalf("hit counter %d, want 1", p.LLCHits)
	}
	// Stores and NT stores ack on chip the same way.
	if at, onChip := p.Store(64, nil); !onChip || at != eng.Now()+10*sim.Nanosecond {
		t.Fatalf("store hit = (%v, %v), want on-chip at +10 ns", at, onChip)
	}
}

func TestConfigValidation(t *testing.T) {
	if err := (&Config{LLCHitRate: 1.5}).Validate(); err == nil {
		t.Fatal("hit rate > 1 accepted")
	}
	if err := (&Config{MSHRs: -1}).Validate(); err == nil {
		t.Fatal("negative MSHRs accepted")
	}
	if err := (&Config{OnChipLatency: -sim.Nanosecond}).Validate(); err == nil {
		t.Fatal("negative latency accepted")
	}
}
