package trace

import (
	"reflect"
	"testing"

	"github.com/mess-sim/mess/internal/dram"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// phaseTrace builds a synthetic phase-switching trace: the program cycles
// through distinct memory behaviours (sequential streaming reads, random
// read/write mixes, sparse pointer-chase-like access), each lasting many
// windows — the workload shape the access-vector clustering is built to
// exploit.
func phaseTrace(records int) *Trace {
	tr := &Trace{}
	rng := splitmix64(42)
	at := sim.Time(0)
	var seqAddr uint64
	for i := 0; i < records; i++ {
		phase := (i / 2000) % 3
		var rec Record
		switch phase {
		case 0: // streaming: sequential reads, steady fast pacing
			seqAddr += 64
			rec = Record{At: at, Addr: seqAddr}
			at += 3 * sim.Nanosecond
		case 1: // random mix: scattered lines, writes, near-saturation pace
			// (captured traces come from closed-loop runs, so arrival rates
			// stay near — not past — what the backend sustains; open-loop
			// oversaturation has no steady state to sample)
			rec = Record{
				At:    at,
				Addr:  (rng.next() % (1 << 22)) * 64,
				Write: rng.next()%3 == 0,
			}
			at += 7 * sim.Nanosecond
		default: // sparse: far strides, slow pacing, read-only
			rec = Record{At: at, Addr: (rng.next() % (1 << 26)) * 64}
			at += 20 * sim.Nanosecond
		}
		tr.Records = append(tr.Records, rec)
	}
	return tr
}

func ddr4Factory() (mem.BackendFactory, dram.Mapper) {
	cfg := dram.DDR4(3200, 2, 2)
	return func(eng *sim.Engine) mem.Backend { return dram.New(eng, cfg) }, dram.NewMapper(&cfg)
}

// TestSampledFidelity pins the headline contract: on a phase-switching
// trace, the sampled estimate lands within a few percent of the full
// replay on both bandwidth and latency, inside the reported error bars,
// while replaying a small fraction of the records.
func TestSampledFidelity(t *testing.T) {
	tr := phaseTrace(48000)
	mk, mapper := ddr4Factory()

	eng := sim.New()
	full := Replay(eng, mk(eng), tr)

	// The explicit 2 µs span matches how production captures sample (fig6s,
	// messperf): enough latencies per window for queue steady state, many
	// windows per phase so the clusters keep the speedup high.
	res, err := Sampled(mk, tr, SampleConfig{Span: 2 * sim.Microsecond, BankRow: mapper.BankRow})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.DivergencePct(full); d > 5 {
		t.Fatalf("sampled estimate diverges %.2f%% from full replay\nfull    %+v\nsampled %+v",
			d, full, res.Estimate)
	}
	if !res.WithinErrorBars(full, 0.03) {
		t.Errorf("full replay outside error bars:\nfull    %+v\nsampled %+v ± (%.3f GB/s, %.2f ns)",
			full, res.Estimate, res.BWErrGBs, res.LatErrNs)
	}
	if res.SpeedupX < 5 {
		t.Errorf("speedup %.1fx < 5x (replayed %d of %d records)",
			res.SpeedupX, res.ReplayedRecords, res.TotalRecords)
	}
	if res.Estimate.Reads == 0 || res.Estimate.ReadRatio != tr.ReadRatio() {
		t.Errorf("estimate bookkeeping wrong: %+v", res.Estimate)
	}
}

// TestSampledDeterministic pins the reproducibility contract: same trace,
// same config → byte-identical result, run to run — clustering, window
// selection and all estimates included.
func TestSampledDeterministic(t *testing.T) {
	tr := phaseTrace(12000)
	mk, mapper := ddr4Factory()
	cfg := SampleConfig{Windows: 64, Clusters: 4, BankRow: mapper.BankRow}

	a, err := Sampled(mk, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sampled(mk, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sampled replay not deterministic:\nrun 1 %+v\nrun 2 %+v", a, b)
	}
}

// TestSampledClustersSeparatePhases checks the clustering actually tells
// the synthetic phases apart: with k = phase count, windows from different
// phases must not all collapse into one cluster, and every non-empty
// window must be assigned.
func TestSampledClustersSeparatePhases(t *testing.T) {
	tr := phaseTrace(18000)
	mk, mapper := ddr4Factory()
	res, err := Sampled(mk, tr, SampleConfig{Windows: 54, Clusters: 3, BankRow: mapper.BankRow})
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]int{}
	for _, w := range res.Windows {
		if w.End > w.Start {
			if w.Cluster < 0 {
				t.Fatalf("non-empty window %d..%d unassigned", w.Start, w.End)
			}
			used[w.Cluster]++
		}
	}
	if len(used) < 2 {
		t.Fatalf("clustering collapsed %d phases into %d cluster(s)", 3, len(used))
	}
	var weight float64
	for i := range res.Clusters {
		weight += res.Clusters[i].Weight
	}
	if weight < 0.99 || weight > 1.01 {
		t.Fatalf("cluster weights sum to %.3f, want 1", weight)
	}
}

// TestSampledEdgeCases covers the degenerate inputs: empty traces, traces
// smaller than the window count, and non-monotonic traces (rejected — the
// windowing math assumes time order).
func TestSampledEdgeCases(t *testing.T) {
	mk, _ := ddr4Factory()

	res, err := Sampled(mk, &Trace{}, SampleConfig{})
	if err != nil || res.TotalRecords != 0 {
		t.Fatalf("empty trace: res %+v err %v", res, err)
	}

	tiny := sampleTrace(10)
	res, err = Sampled(mk, tiny, SampleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.BWGBs <= 0 {
		t.Fatalf("tiny trace produced no estimate: %+v", res)
	}

	bad := &Trace{Records: []Record{
		{At: 100, Addr: 0x40}, {At: 50, Addr: 0x80},
	}}
	if _, err := Sampled(mk, bad, SampleConfig{}); err == nil {
		t.Fatal("non-monotonic trace accepted")
	}
}

// TestKMeansDeterministicAndComplete pins the clustering primitive: every
// point assigned, k centers produced, repeated runs identical.
func TestKMeansDeterministic(t *testing.T) {
	rng := splitmix64(7)
	vecs := make([][nFeat]float64, 100)
	for i := range vecs {
		for d := 0; d < nFeat; d++ {
			vecs[i][d] = rng.float()
		}
	}
	normalize(vecs)
	a1, c1 := kmeans(vecs, 5, 48)
	a2, c2 := kmeans(vecs, 5, 48)
	if !reflect.DeepEqual(a1, a2) || !reflect.DeepEqual(c1, c2) {
		t.Fatal("kmeans not deterministic")
	}
	if len(c1) != 5 {
		t.Fatalf("got %d centers, want 5", len(c1))
	}
	for i, a := range a1 {
		if a < 0 || a >= 5 {
			t.Fatalf("point %d assigned to cluster %d", i, a)
		}
	}
}
