package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"github.com/mess-sim/mess/internal/dram"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// echoBackend completes reads after a fixed latency and counts traffic.
type echoBackend struct {
	eng *sim.Engine
	lat sim.Time
	c   mem.Counters
}

func (e *echoBackend) Access(req *mem.Request) {
	e.c.Add(req.Op, req.Bytes())
	req.CompleteAt(e.eng, e.eng.Now()+e.lat)
}

func sampleTrace(n int) *Trace {
	t := &Trace{}
	for i := 0; i < n; i++ {
		t.Records = append(t.Records, Record{
			At:    sim.Time(i) * 10 * sim.Nanosecond,
			Addr:  uint64(i) * 64,
			Write: i%3 == 0,
		})
	}
	return t
}

func TestCaptureRecords(t *testing.T) {
	eng := sim.New()
	inner := &echoBackend{eng: eng, lat: 10 * sim.Nanosecond}
	cap := NewCapture(eng, inner, 0)
	for i := 0; i < 50; i++ {
		i := i
		eng.Schedule(sim.Time(i)*sim.Nanosecond, func() {
			op := mem.Read
			if i%2 == 0 {
				op = mem.Write
			}
			cap.Access(&mem.Request{Addr: uint64(i) * 64, Op: op})
		})
	}
	eng.Run()
	if len(cap.T.Records) != 50 {
		t.Fatalf("captured %d records", len(cap.T.Records))
	}
	if cap.T.ReadRatio() != 0.5 {
		t.Fatalf("read ratio %.2f", cap.T.ReadRatio())
	}
	if inner.c.TotalOps() != 50 {
		t.Fatal("capture did not forward requests")
	}
	// Arrival times preserved in order.
	for i := 1; i < len(cap.T.Records); i++ {
		if cap.T.Records[i].At < cap.T.Records[i-1].At {
			t.Fatal("records out of order")
		}
	}
}

func TestCaptureLimit(t *testing.T) {
	eng := sim.New()
	cap := NewCapture(eng, &echoBackend{eng: eng}, 10)
	for i := 0; i < 100; i++ {
		cap.Access(&mem.Request{Addr: uint64(i) * 64, Op: mem.Read})
	}
	if len(cap.T.Records) != 10 {
		t.Fatalf("limit ignored: %d records", len(cap.T.Records))
	}
}

func TestReplayTiming(t *testing.T) {
	tr := sampleTrace(100)
	eng := sim.New()
	backend := &echoBackend{eng: eng, lat: 25 * sim.Nanosecond}
	res := Replay(eng, backend, tr)
	if backend.c.TotalOps() != 100 {
		t.Fatalf("replayed %d ops", backend.c.TotalOps())
	}
	if res.ReadLatNs != 25 {
		t.Fatalf("mean read latency %.1f, want 25", res.ReadLatNs)
	}
	// 100 lines × 64 B over ~990 ns + 25 ns tail.
	if res.BWGBs < 5.5 || res.BWGBs > 7.0 {
		t.Fatalf("replay bandwidth %.2f GB/s", res.BWGBs)
	}
	wantRatio := tr.ReadRatio()
	if res.ReadRatio != wantRatio {
		t.Fatalf("read ratio %.2f, want %.2f", res.ReadRatio, wantRatio)
	}
}

func TestSaveReadRoundTrip(t *testing.T) {
	tr := sampleTrace(200)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(got.Records), len(tr.Records))
	}
	for i := range got.Records {
		if got.Records[i] != tr.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

// TestSaveReadProperty round-trips randomized traces through the text
// format, with comment and blank lines injected between records (the
// format allows both) — the parsed records must come back exactly, in
// order, regardless.
func TestSaveReadProperty(t *testing.T) {
	prop := func(gaps []uint16, addrs []uint16, noise []bool) bool {
		n := len(gaps)
		if len(addrs) < n {
			n = len(addrs)
		}
		tr := &Trace{}
		at := sim.Time(0)
		for i := 0; i < n; i++ {
			at += sim.Time(gaps[i]) // non-decreasing by construction
			tr.Records = append(tr.Records, Record{
				At:    at,
				Addr:  uint64(addrs[i]) * 64,
				Write: gaps[i]%2 == 0,
			})
		}
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			return false
		}
		// Inject comments and blank lines between records: the format
		// must skip them without disturbing the record stream.
		var noisy bytes.Buffer
		for i, line := range strings.SplitAfter(buf.String(), "\n") {
			if i < len(noise) && noise[i] {
				noisy.WriteString("# injected comment\n\n   \n")
			}
			noisy.WriteString(line)
		}
		got, err := Read(&noisy)
		if err != nil {
			return false
		}
		if len(got.Records) != len(tr.Records) {
			return false
		}
		for i := range got.Records {
			if got.Records[i] != tr.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"1 2 3 4\n",
		"abc 0x40 R\n",
		"10 zz R\n",
		"10 0x40 X\n",
	} {
		if _, err := Read(strings.NewReader(bad)); err == nil {
			t.Errorf("malformed line %q accepted", strings.TrimSpace(bad))
		}
	}
}

// TestReadRejectsNonMonotonic pins the load-time ordering validation: a
// record stream that goes backwards in time is rejected with the offending
// line number instead of silently breaking Duration and replay pacing.
func TestReadRejectsNonMonotonic(t *testing.T) {
	in := "# header\n10 0x40 R\n20 0x80 W\n\n15 0xc0 R\n"
	_, err := Read(strings.NewReader(in))
	if err == nil {
		t.Fatal("non-monotonic trace accepted")
	}
	if !strings.Contains(err.Error(), "line 5") {
		t.Fatalf("error does not name the offending line: %v", err)
	}
	if !strings.Contains(err.Error(), "non-monotonic") {
		t.Fatalf("error does not explain the failure: %v", err)
	}
	// Equal timestamps are fine (several records can arrive in one cycle).
	if _, err := Read(strings.NewReader("10 0x40 R\n10 0x80 W\n")); err != nil {
		t.Fatalf("equal timestamps rejected: %v", err)
	}
}

// recordingBackend wraps a backend and logs every completion instant, for
// bit-exact comparison of replay scheduling strategies.
type recordingBackend struct {
	inner mem.Backend
	log   []completion
}

type completion struct {
	addr uint64
	at   sim.Time
}

func (r *recordingBackend) Access(req *mem.Request) {
	prev := req.Done
	addr := req.Addr
	req.Done = func(at sim.Time, rq *mem.Request) {
		r.log = append(r.log, completion{addr: addr, at: at})
		if prev != nil {
			prev(at, rq)
		}
	}
	r.inner.Access(req)
}

// TestWindowedReplayBitIdentical pins the bounded-window scheduler's
// contract: for a time-ordered trace, replaying through a window far
// smaller than the trace produces the same results — and the same
// completion sequence, instant by instant — as eagerly scheduling every
// record up front. The trace is adversarial: duplicated timestamps (record
// ties) and arrival gaps equal to the echo latency (arrival/completion
// deadline collisions, where only the tie-break key keeps order).
func TestWindowedReplayBitIdentical(t *testing.T) {
	tr := &Trace{}
	at := sim.Time(0)
	for i := 0; i < 3000; i++ {
		switch i % 5 {
		case 0: // burst: three records in one instant
		case 2:
			at += 25 * sim.Nanosecond // exactly the echo latency
		default:
			at += sim.Time(i%7) * sim.Nanosecond
		}
		tr.Records = append(tr.Records, Record{
			At:    at,
			Addr:  uint64(i%257) * 64,
			Write: i%3 == 0,
		})
	}

	run := func(windowed bool) (ReplayResult, []completion) {
		eng := sim.New()
		rec := &recordingBackend{inner: &echoBackend{eng: eng, lat: 25 * sim.Nanosecond}}
		var res ReplayResult
		if windowed {
			res = replayWindowed(eng, rec, tr, 8)
		} else {
			res = replayEager(eng, rec, tr)
		}
		return res, rec.log
	}
	eagerRes, eagerLog := run(false)
	windRes, windLog := run(true)

	if eagerRes != windRes {
		t.Fatalf("results diverge:\neager    %+v\nwindowed %+v", eagerRes, windRes)
	}
	if len(eagerLog) != len(windLog) {
		t.Fatalf("completion counts diverge: %d vs %d", len(eagerLog), len(windLog))
	}
	for i := range eagerLog {
		if eagerLog[i] != windLog[i] {
			t.Fatalf("completion %d diverges: eager %+v windowed %+v", i, eagerLog[i], windLog[i])
		}
	}
}

// TestWindowedReplayBitIdenticalDRAM repeats the equivalence check against
// the detailed DRAM system — tagged channel events, decide fusion and
// scheduled completions are the event regime real replays run in.
func TestWindowedReplayBitIdenticalDRAM(t *testing.T) {
	cfg := dram.DDR4(3200, 2, 2)
	tr := &Trace{}
	at := sim.Time(0)
	for i := 0; i < 4000; i++ {
		if i%3 != 0 {
			at += sim.Time(i%5) * sim.Nanosecond
		}
		tr.Records = append(tr.Records, Record{
			At:    at,
			Addr:  uint64((i*7919)%4096) * 64,
			Write: i%4 == 0,
		})
	}
	run := func(windowed bool) (ReplayResult, []completion) {
		eng := sim.New()
		rec := &recordingBackend{inner: dram.New(eng, cfg)}
		var res ReplayResult
		if windowed {
			res = replayWindowed(eng, rec, tr, 16)
		} else {
			res = replayEager(eng, rec, tr)
		}
		return res, rec.log
	}
	eagerRes, eagerLog := run(false)
	windRes, windLog := run(true)
	if eagerRes != windRes {
		t.Fatalf("results diverge:\neager    %+v\nwindowed %+v", eagerRes, windRes)
	}
	for i := range eagerLog {
		if eagerLog[i] != windLog[i] {
			t.Fatalf("completion %d diverges: eager %+v windowed %+v", i, eagerLog[i], windLog[i])
		}
	}
}

// TestReplayWindowBoundsLiveEvents asserts the point of the window: the
// engine never holds more than window + in-flight events, independent of
// trace length.
func TestReplayWindowBoundsLiveEvents(t *testing.T) {
	tr := sampleTrace(50000)
	eng := sim.New()
	max := 0
	probe := &probeBackend{eng: eng, lat: 10 * sim.Nanosecond, max: &max}
	replayWindowed(eng, probe, tr, 64)
	// 64 scheduled arrivals + the probe's own completions (≤ a handful in
	// flight at this pacing); anything near the trace length means the
	// window is not bounding.
	if max > 200 {
		t.Fatalf("replay held %d live events with a 64-record window", max)
	}
}

type probeBackend struct {
	eng *sim.Engine
	lat sim.Time
	max *int
}

func (p *probeBackend) Access(req *mem.Request) {
	if n := p.eng.Pending(); n > *p.max {
		*p.max = n
	}
	req.CompleteAt(p.eng, p.eng.Now()+p.lat)
}

func TestEmptyTraceReplay(t *testing.T) {
	eng := sim.New()
	res := Replay(eng, &echoBackend{eng: eng}, &Trace{})
	if res.Reads != 0 || res.BWGBs != 0 {
		t.Fatalf("empty replay produced %+v", res)
	}
}
