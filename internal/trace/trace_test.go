package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// echoBackend completes reads after a fixed latency and counts traffic.
type echoBackend struct {
	eng *sim.Engine
	lat sim.Time
	c   mem.Counters
}

func (e *echoBackend) Access(req *mem.Request) {
	e.c.Add(req.Op, req.Bytes())
	req.CompleteAt(e.eng, e.eng.Now()+e.lat)
}

func sampleTrace(n int) *Trace {
	t := &Trace{}
	for i := 0; i < n; i++ {
		t.Records = append(t.Records, Record{
			At:    sim.Time(i) * 10 * sim.Nanosecond,
			Addr:  uint64(i) * 64,
			Write: i%3 == 0,
		})
	}
	return t
}

func TestCaptureRecords(t *testing.T) {
	eng := sim.New()
	inner := &echoBackend{eng: eng, lat: 10 * sim.Nanosecond}
	cap := NewCapture(eng, inner, 0)
	for i := 0; i < 50; i++ {
		i := i
		eng.Schedule(sim.Time(i)*sim.Nanosecond, func() {
			op := mem.Read
			if i%2 == 0 {
				op = mem.Write
			}
			cap.Access(&mem.Request{Addr: uint64(i) * 64, Op: op})
		})
	}
	eng.Run()
	if len(cap.T.Records) != 50 {
		t.Fatalf("captured %d records", len(cap.T.Records))
	}
	if cap.T.ReadRatio() != 0.5 {
		t.Fatalf("read ratio %.2f", cap.T.ReadRatio())
	}
	if inner.c.TotalOps() != 50 {
		t.Fatal("capture did not forward requests")
	}
	// Arrival times preserved in order.
	for i := 1; i < len(cap.T.Records); i++ {
		if cap.T.Records[i].At < cap.T.Records[i-1].At {
			t.Fatal("records out of order")
		}
	}
}

func TestCaptureLimit(t *testing.T) {
	eng := sim.New()
	cap := NewCapture(eng, &echoBackend{eng: eng}, 10)
	for i := 0; i < 100; i++ {
		cap.Access(&mem.Request{Addr: uint64(i) * 64, Op: mem.Read})
	}
	if len(cap.T.Records) != 10 {
		t.Fatalf("limit ignored: %d records", len(cap.T.Records))
	}
}

func TestReplayTiming(t *testing.T) {
	tr := sampleTrace(100)
	eng := sim.New()
	backend := &echoBackend{eng: eng, lat: 25 * sim.Nanosecond}
	res := Replay(eng, backend, tr)
	if backend.c.TotalOps() != 100 {
		t.Fatalf("replayed %d ops", backend.c.TotalOps())
	}
	if res.ReadLatNs != 25 {
		t.Fatalf("mean read latency %.1f, want 25", res.ReadLatNs)
	}
	// 100 lines × 64 B over ~990 ns + 25 ns tail.
	if res.BWGBs < 5.5 || res.BWGBs > 7.0 {
		t.Fatalf("replay bandwidth %.2f GB/s", res.BWGBs)
	}
	wantRatio := tr.ReadRatio()
	if res.ReadRatio != wantRatio {
		t.Fatalf("read ratio %.2f, want %.2f", res.ReadRatio, wantRatio)
	}
}

func TestSaveReadRoundTrip(t *testing.T) {
	tr := sampleTrace(200)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(got.Records), len(tr.Records))
	}
	for i := range got.Records {
		if got.Records[i] != tr.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestSaveReadProperty(t *testing.T) {
	prop := func(ats []uint32, addrs []uint16) bool {
		n := len(ats)
		if len(addrs) < n {
			n = len(addrs)
		}
		tr := &Trace{}
		for i := 0; i < n; i++ {
			tr.Records = append(tr.Records, Record{
				At:    sim.Time(ats[i]),
				Addr:  uint64(addrs[i]) * 64,
				Write: ats[i]%2 == 0,
			})
		}
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Records) != len(tr.Records) {
			return false
		}
		for i := range got.Records {
			if got.Records[i] != tr.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"1 2 3 4\n",
		"abc 0x40 R\n",
		"10 zz R\n",
		"10 0x40 X\n",
	} {
		if _, err := Read(strings.NewReader(bad)); err == nil {
			t.Errorf("malformed line %q accepted", strings.TrimSpace(bad))
		}
	}
}

func TestEmptyTraceReplay(t *testing.T) {
	eng := sim.New()
	res := Replay(eng, &echoBackend{eng: eng}, &Trace{})
	if res.Reads != 0 || res.BWGBs != 0 {
		t.Fatalf("empty replay produced %+v", res)
	}
}
