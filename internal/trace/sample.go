// Sampled trace replay: phase-clustered simulation of long application
// traces ("Memory Access Vectors": sample selection clustered by memory-
// access behaviour, not instruction position). The pipeline windows a
// trace into fixed-span segments, fingerprints each window with an access
// vector (row-hit ratio under the platform's address mapping, stride mix,
// read/write ratio, unique-line footprint, arrival rate and burstiness),
// clusters the vectors with a deterministic k-means, replays ONE
// representative window per cluster — preceded by a warm-up prefix of the
// trace records just before it, so queues and row buffers reach the
// window's steady state before measurement starts — and reconstructs the
// full-trace bandwidth and latency estimates as cluster-weighted sums.
// Extra probe windows per cluster bound the within-cluster spread, which
// becomes the estimate's error bars.
//
// Everything is deterministic: the same trace and configuration produce
// byte-identical estimates. Window order, cluster iteration, the k-means
// seed and all tie-breaks are fixed; no map iteration order leaks into any
// result.
package trace

import (
	"fmt"
	"math"

	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
	"github.com/mess-sim/mess/internal/telemetry"
)

// SampleConfig tunes the sampling pipeline. The zero value selects
// defaults chosen so that Quick-scale benchmark traces replay an order of
// magnitude fewer records than the full trace while staying inside a few
// percent of the full-replay estimates.
type SampleConfig struct {
	// Windows is the target number of fixed-span windows the trace is cut
	// into (default 128). The span is Duration/Windows; the last window
	// absorbs the remainder.
	Windows int
	// Span overrides the derived window span with a fixed one (0 = derive
	// from Windows).
	Span sim.Time
	// Clusters is k for the k-means pass (default 6; clamped to the
	// number of non-empty windows).
	Clusters int
	// Probes is how many additional member windows per cluster are
	// replayed to measure within-cluster spread — the error bars
	// (default 1). Probes pick the members farthest from the centroid:
	// the worst case bounds the cluster, not a flattering average.
	Probes int
	// WarmupFrac sizes the warm-up prefix replayed (unmeasured) before
	// each window, as a fraction of the window span (default 0.5).
	WarmupFrac float64
	// MaxIter caps k-means iterations (default 48; assignment usually
	// stabilizes far earlier).
	MaxIter int
	// BankRow maps an address to its (flat bank index, row) under the
	// platform's DRAM geometry, for the row-hit-ratio feature — pass
	// dram.Mapper.BankRow for the spec under study. Nil falls back to a
	// generic 8 KiB-row, 16-bank layout: fingerprints stay usable, just
	// less faithful to the platform.
	BankRow func(addr uint64) (bank int, row int64)
	// Telemetry, when set, records the pipeline's phases — fingerprint,
	// cluster, per-cluster replay, reconstruct — as spans on its tracer
	// and a summary line on its logger. Observation only: estimates are
	// unaffected.
	Telemetry *telemetry.Set
}

func (c SampleConfig) withDefaults() SampleConfig {
	if c.Windows <= 0 {
		c.Windows = 128
	}
	if c.Clusters <= 0 {
		c.Clusters = 6
	}
	if c.Probes < 0 {
		c.Probes = 0
	} else if c.Probes == 0 {
		c.Probes = 1
	}
	if c.WarmupFrac <= 0 {
		c.WarmupFrac = 0.5
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 48
	}
	if c.BankRow == nil {
		c.BankRow = defaultBankRow
	}
	return c
}

// defaultBankRow is the geometry-free fallback mapping: 8 KiB rows
// interleaved over 16 banks.
func defaultBankRow(addr uint64) (int, int64) {
	r := addr / 8192
	return int(r % 16), int64(r / 16)
}

// AccessVector is one window's memory-access fingerprint — the feature
// vector the clustering runs on. All components are dimensionless and
// bounded (fractions, or logs normalized over the trace) so no single
// feature dominates the distance metric.
type AccessVector struct {
	RowHit    float64 // same-row-as-previous-access-to-bank ratio
	SeqFrac   float64 // +1-line strides
	NearFrac  float64 // other strides within ±64 lines
	FarFrac   float64 // larger strides (random/irregular)
	ReadFrac  float64 // read share of accesses
	Footprint float64 // log2(1 + unique lines touched)
	Rate      float64 // log2(1 + accesses per µs of window span)
	Burst     float64 // fraction of zero-gap (same-instant) arrivals
}

const nFeat = 8

func (v AccessVector) vec() [nFeat]float64 {
	return [nFeat]float64{v.RowHit, v.SeqFrac, v.NearFrac, v.FarFrac, v.ReadFrac, v.Footprint, v.Rate, v.Burst}
}

// SampleWindow is one fixed-span segment of the trace.
type SampleWindow struct {
	Start, End int      // record index range [Start, End)
	From, To   sim.Time // nominal time interval [From, To)
	Reads      uint64   // read records inside
	Vec        AccessVector
	Cluster    int // assigned cluster; -1 for empty windows
}

// ClusterEstimate is one behaviour cluster's measured contribution to the
// reconstructed estimates.
type ClusterEstimate struct {
	Windows int    // member windows
	Records int    // trace records covered
	Reads   uint64 // read records covered
	Rep     int    // representative window index (into SampledResult.Windows)
	Weight  float64
	// Representative-window measurements.
	BWGBs     float64
	ReadLatNs float64
	Stretch   float64 // effective/nominal window time under this backend
	// Probe spread — the cluster's error bars. Zero for single-window
	// clusters, whose representative covers the cluster exactly.
	StretchErr float64
	LatErrNs   float64
	Centroid   AccessVector
}

// SampledResult is the outcome of a sampled replay: full-trace estimates
// reconstructed from per-cluster representative replays, with error bars.
type SampledResult struct {
	// Estimate is the reconstructed full-trace result, comparable field
	// by field with a full Replay of the same trace. Reads counts the
	// trace's read records (what a full replay would complete).
	Estimate ReplayResult
	// BWErrGBs/LatErrNs are the aggregate error bars: the reconstruction
	// re-evaluated with every cluster pushed to the edge of its probe
	// spread.
	BWErrGBs float64
	LatErrNs float64

	WindowSpan      sim.Time
	Windows         []SampleWindow
	Clusters        []ClusterEstimate
	TotalRecords    int
	ReplayedRecords int // records simulated, warm-up prefixes included
	// SpeedupX is the record-count ratio full/sampled — the work saved.
	SpeedupX float64
}

// DivergencePct reports the sampled estimates' relative divergence from a
// full replay, in percent: max of the bandwidth and latency deviations.
func (r *SampledResult) DivergencePct(full ReplayResult) float64 {
	d := 0.0
	if full.BWGBs > 0 {
		d = math.Abs(r.Estimate.BWGBs-full.BWGBs) / full.BWGBs
	}
	if full.ReadLatNs > 0 {
		if l := math.Abs(r.Estimate.ReadLatNs-full.ReadLatNs) / full.ReadLatNs; l > d {
			d = l
		}
	}
	return 100 * d
}

// WithinErrorBars reports whether a full replay's bandwidth and latency
// both land inside the sampled estimate's error bars (with slack standing
// in for the reconstruction's own bias terms, as a fraction of the full
// value — 0.02 means "error bar plus 2%").
func (r *SampledResult) WithinErrorBars(full ReplayResult, slack float64) bool {
	bwOK := math.Abs(r.Estimate.BWGBs-full.BWGBs) <= r.BWErrGBs+slack*full.BWGBs
	latOK := math.Abs(r.Estimate.ReadLatNs-full.ReadLatNs) <= r.LatErrNs+slack*full.ReadLatNs
	return bwOK && latOK
}

// Sampled estimates what Replay would report for the trace by replaying
// one representative window (plus probes) per behaviour cluster through
// fresh backend instances built by mk — one instance per replayed window,
// exactly as fig6-class harnesses instantiate a model per measurement
// point. The trace must be time-ordered (Read guarantees it; Capture
// produces it).
func Sampled(mk mem.BackendFactory, t *Trace, cfg SampleConfig) (*SampledResult, error) {
	cfg = cfg.withDefaults()
	if len(t.Records) == 0 {
		return &SampledResult{SpeedupX: 1}, nil
	}
	if !monotonic(t.Records) {
		return nil, fmt.Errorf("trace: sampled replay requires time-ordered records")
	}

	tr := cfg.Telemetry.Trace()
	var track telemetry.Track
	if tr != nil {
		track = tr.NewTrack("trace", "sampled-replay")
	}

	sp := tr.Begin(track, "fingerprint")
	windows, span := cutWindows(t, cfg)
	fingerprint(t, windows, cfg)
	sp.End(telemetry.Int("windows", int64(len(windows))))

	// Cluster the non-empty windows.
	occupied := make([]int, 0, len(windows))
	for i := range windows {
		if windows[i].End > windows[i].Start {
			occupied = append(occupied, i)
		}
	}
	k := cfg.Clusters
	if k > len(occupied) {
		k = len(occupied)
	}
	vecs := make([][nFeat]float64, len(occupied))
	for i, wi := range occupied {
		vecs[i] = windows[wi].Vec.vec()
	}
	sp = tr.Begin(track, "cluster")
	normalize(vecs)
	assign, centers := kmeans(vecs, k, cfg.MaxIter)
	for i, wi := range occupied {
		windows[wi].Cluster = assign[i]
	}
	sp.End(telemetry.Int("k", int64(k)), telemetry.Int("occupied", int64(len(occupied))))

	res := &SampledResult{
		WindowSpan:   span,
		Windows:      windows,
		TotalRecords: len(t.Records),
	}

	// Replay each cluster's representative (and probes) with warm-up.
	warm := sim.Time(cfg.WarmupFrac * float64(span))
	res.Clusters = make([]ClusterEstimate, k)
	for c := 0; c < k; c++ {
		members := make([]int, 0, 8) // indices into `occupied`
		for i := range occupied {
			if assign[i] == c {
				members = append(members, i)
			}
		}
		ce := &res.Clusters[c]
		ce.Windows = len(members)
		ce.Centroid = unvec(denormalizeHint(centers[c]))
		if len(members) == 0 {
			// k-means left the cluster empty (k near the window count);
			// no window references it, so it contributes nothing.
			ce.Rep, ce.Stretch = -1, 1
			continue
		}
		for _, m := range members {
			w := &windows[occupied[m]]
			ce.Records += w.End - w.Start
			ce.Reads += w.Reads
		}

		// Replay the member closest to the centroid plus Probes members
		// farthest from it. The cluster estimate is the MEAN of the
		// replayed members — a single window, even the most central one,
		// can be dynamically atypical (the cold trace start, a refresh
		// alignment) in ways its access vector cannot show; averaging the
		// centre with the edges cancels that noise. The error bar is the
		// spread around the mean, and probing the farthest members makes
		// it a worst-case bound, not a flattering one.
		rep := pickClosest(vecs, centers[c], members)
		csp := tr.Begin(track, fmt.Sprintf("replay cluster %d", c))
		ce.Rep = occupied[rep]
		probed := map[int]bool{rep: true}
		sampled := []windowMeasure{replayWindowRange(mk, t, &windows[occupied[rep]], warm)}
		for p := 0; p < cfg.Probes && len(probed) < len(members); p++ {
			pr := pickFarthest(vecs, centers[c], members, probed)
			probed[pr] = true
			sampled = append(sampled, replayWindowRange(mk, t, &windows[occupied[pr]], warm))
		}
		for _, m := range sampled {
			ce.BWGBs += m.bwGBs
			ce.ReadLatNs += m.latNs
			ce.Stretch += m.stretch
			res.ReplayedRecords += m.replayed
		}
		n := float64(len(sampled))
		ce.BWGBs /= n
		ce.ReadLatNs /= n
		ce.Stretch /= n
		for _, m := range sampled {
			if d := math.Abs(m.stretch - ce.Stretch); d > ce.StretchErr {
				ce.StretchErr = d
			}
			if d := math.Abs(m.latNs - ce.ReadLatNs); d > ce.LatErrNs {
				ce.LatErrNs = d
			}
		}
		csp.End(telemetry.Int("windows", int64(ce.Windows)), telemetry.Int("records", int64(ce.Records)))
	}

	sp = tr.Begin(track, "reconstruct")
	reconstruct(t, res)
	sp.End()
	if res.ReplayedRecords > 0 {
		res.SpeedupX = float64(res.TotalRecords) / float64(res.ReplayedRecords)
	} else {
		res.SpeedupX = 1
	}
	cfg.Telemetry.Logger().Debug("sampled replay done",
		"records", res.TotalRecords, "replayed", res.ReplayedRecords,
		"clusters", k, "speedup_x", res.SpeedupX)
	return res, nil
}

// cutWindows splits the trace into fixed-span segments.
func cutWindows(t *Trace, cfg SampleConfig) ([]SampleWindow, sim.Time) {
	base := t.Records[0].At
	dur := t.Duration()
	span := cfg.Span
	if span <= 0 {
		span = dur / sim.Time(cfg.Windows)
		// A window must cover many memory latencies for queueing to reach
		// steady state inside it; a short trace gets fewer, µs-scale
		// windows rather than the target count of meaningless ones.
		if span < 3*sim.Microsecond {
			span = 3 * sim.Microsecond
		}
		if span > dur {
			span = dur
		}
	}
	if span <= 0 {
		span = 1 // zero-duration trace: one window holds everything
	}
	n := int((dur + span - 1) / span)
	if n < 1 {
		n = 1
	}
	windows := make([]SampleWindow, n)
	ri := 0
	for i := range windows {
		w := &windows[i]
		w.From = base + sim.Time(i)*span
		w.To = w.From + span
		if i == n-1 {
			w.To = base + dur + 1 // absorb remainder; include the last record
		}
		w.Start = ri
		for ri < len(t.Records) && (i == n-1 || t.Records[ri].At < w.To) {
			if !t.Records[ri].Write {
				w.Reads++
			}
			ri++
		}
		w.End = ri
		w.Cluster = -1
	}
	return windows, span
}

// fingerprint computes each window's access vector.
func fingerprint(t *Trace, windows []SampleWindow, cfg SampleConfig) {
	lastRow := map[int]int64{} // bank -> open row (idealized, per window)
	lines := map[uint64]bool{} // unique-line footprint, per window
	for i := range windows {
		w := &windows[i]
		n := w.End - w.Start
		if n == 0 {
			continue
		}
		clear(lastRow)
		clear(lines)
		var hits, seq, near, far, reads, burst int
		var prevLine int64 = -1 << 62
		for ri := w.Start; ri < w.End; ri++ {
			rec := &t.Records[ri]
			line := int64(rec.Addr / mem.LineSize)
			if ri > w.Start {
				switch d := line - prevLine; {
				case d == 1:
					seq++
				case d > -64 && d < 64:
					near++
				default:
					far++
				}
				if rec.At == t.Records[ri-1].At {
					burst++
				}
			}
			prevLine = line
			if !rec.Write {
				reads++
			}
			bank, row := cfg.BankRow(rec.Addr)
			if r, ok := lastRow[bank]; ok && r == row {
				hits++
			}
			lastRow[bank] = row
			lines[rec.Addr/mem.LineSize] = true
		}
		w.Vec = AccessVector{
			RowHit:    float64(hits) / float64(n),
			ReadFrac:  float64(reads) / float64(n),
			Footprint: math.Log2(1 + float64(len(lines))),
		}
		if n > 1 {
			w.Vec.SeqFrac = float64(seq) / float64(n-1)
			w.Vec.NearFrac = float64(near) / float64(n-1)
			w.Vec.FarFrac = float64(far) / float64(n-1)
			w.Vec.Burst = float64(burst) / float64(n-1)
		}
		if spanUs := (w.To - w.From).Seconds() * 1e6; spanUs > 0 {
			w.Vec.Rate = math.Log2(1 + float64(n)/spanUs)
		}
	}
}

// windowMeasure is one replayed window's measurement.
type windowMeasure struct {
	bwGBs    float64
	latNs    float64
	stretch  float64
	replayed int
}

// replayWindowRange replays the window plus its warm-up prefix on a fresh
// engine/backend pair and measures only the window's own records. Stretch
// is the ratio of the time the backend needed for the window over the
// window's nominal span: 1 when the backend keeps up with the trace's
// pacing, > 1 when queueing backs it up — the quantity whose cluster-
// weighted sum reconstructs the full replay's end time.
func replayWindowRange(mk mem.BackendFactory, t *Trace, w *SampleWindow, warm sim.Time) windowMeasure {
	warmStart := w.Start
	warmFrom := w.From - warm
	for warmStart > 0 && t.Records[warmStart-1].At >= warmFrom {
		warmStart--
	}
	recs := t.Records[warmStart:w.End]
	if len(recs) == 0 {
		return windowMeasure{stretch: 1}
	}
	eng := sim.New()
	backend := mk(eng)
	// base is the TRACE start, not the window start: the window replays at
	// its original absolute time, so backend state anchored to the engine
	// clock — the DRAM refresh schedule above all — holds the same phase
	// it had when the full replay (or the original capture) reached this
	// window. Starting every window at t=0 instead would sample refresh
	// non-representatively: a µs-span window sees the first refresh of
	// each rank either always or never, biasing latency either way by
	// more than the whole error budget. The engine simply fast-forwards
	// over the empty prefix.
	rp := &replayer{
		eng: eng, backend: backend, recs: recs,
		base: t.Records[0].At, pool: mem.NewRequestPool(),
		measureFrom: w.Start - warmStart,
	}
	rp.run(ReplayWindow)

	m := windowMeasure{replayed: len(recs)}
	var lat sim.Time
	if rp.reads > 0 {
		lat = rp.latSum / sim.Time(rp.reads)
		m.latNs = lat.Nanoseconds()
	}
	span := w.To - w.From
	fromRel := w.From - t.Records[0].At // window start on the engine clock
	if fromRel < 0 {
		fromRel = 0
	}
	// Effective window time: last measured read completion minus the
	// window's start, with one mean latency subtracted to cancel the final
	// completion tail a full replay would overlap with the next window's
	// arrivals. The last completion — not the engine drain instant — is
	// the end mark, because backends run internal machinery (refresh
	// timers, queue sweeps) that keeps the engine alive long after the
	// last request finished; drain time would inflate sparse windows'
	// stretch by orders of magnitude.
	eff := rp.lastDone - fromRel - lat
	if eff < span {
		eff = span // a backend cannot finish before the trace stops offering
	}
	m.stretch = float64(eff) / float64(span)
	if bytes := uint64(w.End-w.Start) * mem.LineSize; eff > 0 {
		m.bwGBs = float64(bytes) / eff.Seconds() / 1e9
	}
	return m
}

// reconstruct folds the per-cluster measurements into full-trace
// estimates: estimated replay time is the cluster-weighted sum of window
// spans scaled by each cluster's stretch (plus the final drain tail), and
// estimated latency is the read-weighted mean of cluster latencies. The
// error bars re-evaluate both sums at the edge of every cluster's probe
// spread.
func reconstruct(t *Trace, res *SampledResult) {
	evalTime := func(dir float64) sim.Time {
		var total sim.Time
		for i := range res.Windows {
			w := &res.Windows[i]
			span := w.To - w.From
			if w.Cluster < 0 {
				total += span // empty window: time passes, nothing queues
				continue
			}
			c := &res.Clusters[w.Cluster]
			s := c.Stretch + dir*c.StretchErr
			if s < 1 {
				s = 1
			}
			total += sim.Time(float64(span) * s)
		}
		return total
	}
	// Final drain tail: the last window's reads complete one mean latency
	// after their arrival (a full replay's engine end includes it).
	var tail sim.Time
	for i := len(res.Windows) - 1; i >= 0; i-- {
		if c := res.Windows[i].Cluster; c >= 0 {
			tail = sim.FromNanoseconds(res.Clusters[c].ReadLatNs)
			break
		}
	}

	var latSum, latErrSum, readsSum float64
	for i := range res.Clusters {
		c := &res.Clusters[i]
		latSum += float64(c.Reads) * c.ReadLatNs
		latErrSum += float64(c.Reads) * c.LatErrNs
		readsSum += float64(c.Reads)
	}

	est := ReplayResult{ReadRatio: t.ReadRatio(), Reads: uint64(readsSum)}
	totalTime := evalTime(0) + tail
	if totalTime > 0 {
		est.BWGBs = float64(t.Bytes()) / totalTime.Seconds() / 1e9
	}
	if readsSum > 0 {
		est.ReadLatNs = latSum / readsSum
		res.LatErrNs = latErrSum / readsSum
	}
	res.Estimate = est

	lo, hi := evalTime(1)+tail, evalTime(-1)+tail // more time = less BW
	if hi > 0 && lo > 0 {
		bwHi := float64(t.Bytes()) / hi.Seconds() / 1e9
		bwLo := float64(t.Bytes()) / lo.Seconds() / 1e9
		res.BWErrGBs = (bwHi - bwLo) / 2
	}

	// Cluster bookkeeping for reporting.
	var spanSum float64
	for i := range res.Windows {
		spanSum += float64(res.Windows[i].To - res.Windows[i].From)
	}
	for i := range res.Clusters {
		c := &res.Clusters[i]
		var s float64
		for j := range res.Windows {
			if res.Windows[j].Cluster == i {
				s += float64(res.Windows[j].To - res.Windows[j].From)
			}
		}
		if spanSum > 0 {
			c.Weight = s / spanSum
		}
	}
}

// --- deterministic k-means ----------------------------------------------

// normalize min-max scales each feature dimension into [0,1] in place;
// constant dimensions collapse to 0 so they cannot contribute distance.
func normalize(vecs [][nFeat]float64) {
	if len(vecs) == 0 {
		return
	}
	var lo, hi [nFeat]float64
	for d := 0; d < nFeat; d++ {
		lo[d], hi[d] = math.Inf(1), math.Inf(-1)
	}
	for i := range vecs {
		for d := 0; d < nFeat; d++ {
			lo[d] = math.Min(lo[d], vecs[i][d])
			hi[d] = math.Max(hi[d], vecs[i][d])
		}
	}
	for i := range vecs {
		for d := 0; d < nFeat; d++ {
			if hi[d] > lo[d] {
				vecs[i][d] = (vecs[i][d] - lo[d]) / (hi[d] - lo[d])
			} else {
				vecs[i][d] = 0
			}
		}
	}
}

// denormalizeHint passes the (normalized) centroid through for reporting;
// centroids are only meaningful relative to each other, so reporting them
// in normalized coordinates is both honest and deterministic.
func denormalizeHint(c [nFeat]float64) [nFeat]float64 { return c }

func unvec(v [nFeat]float64) AccessVector {
	return AccessVector{
		RowHit: v[0], SeqFrac: v[1], NearFrac: v[2], FarFrac: v[3],
		ReadFrac: v[4], Footprint: v[5], Rate: v[6], Burst: v[7],
	}
}

func dist2(a, b [nFeat]float64) float64 {
	var s float64
	for d := 0; d < nFeat; d++ {
		dd := a[d] - b[d]
		s += dd * dd
	}
	return s
}

// splitmix64 is the deterministic PRNG behind k-means++ seeding: fixed
// seed, fixed sequence, no dependence on the Go runtime.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) float() float64 { return float64(s.next()>>11) / (1 << 53) }

// kmeans clusters vecs into k groups with a deterministic k-means++
// seeding and a fixed iteration order: same input, same clustering, every
// run. Assignment ties break toward the lower cluster index; an emptied
// cluster is re-seeded with the point farthest from its current center
// (lowest index on ties).
func kmeans(vecs [][nFeat]float64, k, maxIter int) (assign []int, centers [][nFeat]float64) {
	n := len(vecs)
	assign = make([]int, n)
	if k <= 0 {
		return assign, nil
	}
	if k > n {
		k = n
	}
	rng := splitmix64(0x6d65737376656373) // "messvecs"
	centers = make([][nFeat]float64, 0, k)
	centers = append(centers, vecs[int(rng.next()%uint64(n))])
	d2 := make([]float64, n)
	for len(centers) < k {
		var sum float64
		for i := range vecs {
			best := math.Inf(1)
			for c := range centers {
				if d := dist2(vecs[i], centers[c]); d < best {
					best = d
				}
			}
			d2[i] = best
			sum += best
		}
		pick := 0
		if sum > 0 {
			r := rng.float() * sum
			for i := range d2 {
				r -= d2[i]
				if r <= 0 {
					pick = i
					break
				}
			}
		} else {
			pick = int(rng.next() % uint64(n))
		}
		centers = append(centers, vecs[pick])
	}

	counts := make([]int, k)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i := range vecs {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if d := dist2(vecs[i], centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		for c := range centers {
			counts[c] = 0
			for d := 0; d < nFeat; d++ {
				centers[c][d] = 0
			}
		}
		for i := range vecs {
			c := assign[i]
			counts[c]++
			for d := 0; d < nFeat; d++ {
				centers[c][d] += vecs[i][d]
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				// Re-seed the empty cluster with the point farthest from
				// its (stale) center.
				far, farD := 0, -1.0
				for i := range vecs {
					if d := dist2(vecs[i], centers[c]); d > farD {
						far, farD = i, d
					}
				}
				centers[c] = vecs[far]
				continue
			}
			for d := 0; d < nFeat; d++ {
				centers[c][d] /= float64(counts[c])
			}
		}
	}
	return assign, centers
}

// pickClosest returns the member (index into vecs) nearest the center;
// lowest index wins ties.
func pickClosest(vecs [][nFeat]float64, center [nFeat]float64, members []int) int {
	best, bestD := members[0], math.Inf(1)
	for _, m := range members {
		if d := dist2(vecs[m], center); d < bestD {
			best, bestD = m, d
		}
	}
	return best
}

// pickFarthest returns the unprobed member farthest from the center;
// lowest index wins ties.
func pickFarthest(vecs [][nFeat]float64, center [nFeat]float64, members []int, probed map[int]bool) int {
	best, bestD := -1, -1.0
	for _, m := range members {
		if probed[m] {
			continue
		}
		if d := dist2(vecs[m], center); d > bestD {
			best, bestD = m, d
		}
	}
	return best
}
