// Package trace provides memory-trace capture and trace-driven replay —
// the methodology of Sec. IV-D: record the addresses and arrival times of
// all memory operations during a Mess benchmark run, then drive standalone
// memory models with the trace, eliminating the CPU simulator and its
// interfaces as an error source.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// Record is one traced memory operation.
type Record struct {
	At    sim.Time // arrival at the memory controller
	Addr  uint64
	Write bool
}

// Trace is an ordered sequence of records.
type Trace struct {
	Records []Record
}

// Bytes reports total traffic bytes (one line per record).
func (t *Trace) Bytes() uint64 { return uint64(len(t.Records)) * mem.LineSize }

// ReadRatio reports the fraction of reads.
func (t *Trace) ReadRatio() float64 {
	if len(t.Records) == 0 {
		return 1
	}
	reads := 0
	for _, r := range t.Records {
		if !r.Write {
			reads++
		}
	}
	return float64(reads) / float64(len(t.Records))
}

// Duration reports the trace's time span.
func (t *Trace) Duration() sim.Time {
	if len(t.Records) < 2 {
		return 0
	}
	return t.Records[len(t.Records)-1].At - t.Records[0].At
}

// Capture wraps a backend and records every request that passes through.
type Capture struct {
	Inner mem.Backend
	eng   *sim.Engine
	T     Trace
	Limit int // stop recording beyond this many records; 0 = unlimited
}

// NewCapture builds a capturing wrapper.
func NewCapture(eng *sim.Engine, inner mem.Backend, limit int) *Capture {
	return &Capture{Inner: inner, eng: eng, Limit: limit}
}

// Access implements mem.Backend.
func (c *Capture) Access(req *mem.Request) {
	if c.Limit == 0 || len(c.T.Records) < c.Limit {
		c.T.Records = append(c.T.Records, Record{
			At:    c.eng.Now(),
			Addr:  req.Addr,
			Write: req.Op == mem.Write,
		})
	}
	c.Inner.Access(req)
}

// ReplayResult is the outcome of a trace-driven simulation.
type ReplayResult struct {
	BWGBs     float64
	ReadLatNs float64 // mean read round-trip from the controller
	ReadRatio float64
	Reads     uint64
}

// ReplayWindow bounds how many trace records hold a live engine event at
// once during replay. The window is a memory bound, not a semantic one:
// completion timing is bit-identical to scheduling the whole trace up
// front (see replayWindowed), but a million-record trace holds thousands,
// not millions, of pending events and pooled requests.
const ReplayWindow = 4096

// Replay drives the backend with the trace's own timing (arrival gaps
// encode the non-memory work, as DRAMsim3 trace formats do) and measures
// the achieved bandwidth and mean read latency. Requests come from a
// replay-local pool and are delivered through a bounded in-flight
// scheduling window: at most ReplayWindow records are scheduled ahead of
// the clock, each firing record feeds the next into the engine, and a
// single shared completion callback reads the issue time off the request —
// zero per-record closures, O(window) instead of O(trace) live events.
// Traces whose timestamps are not non-decreasing (Read rejects them, but a
// Trace built in memory can be anything) fall back to eager scheduling,
// whose semantics the window reproduces only for time-ordered records.
func Replay(eng *sim.Engine, backend mem.Backend, t *Trace) ReplayResult {
	if len(t.Records) == 0 {
		return ReplayResult{}
	}
	if monotonic(t.Records) {
		return replayWindowed(eng, backend, t, ReplayWindow)
	}
	return replayEager(eng, backend, t)
}

// monotonic reports whether the records' timestamps are non-decreasing.
func monotonic(recs []Record) bool {
	for i := 1; i < len(recs); i++ {
		if recs[i].At < recs[i-1].At {
			return false
		}
	}
	return true
}

// replayKey is the tie-break key (sim.Engine's "schedule instant"
// coordinate) carried by every replayed record's delivery event. Eager
// replay schedules all records before the run, so each record event holds
// key 0 and a seq below every event the backend will ever schedule: at
// equal deadlines, records fire first, in record order. A window schedules
// records mid-run, where the engine would stamp them with the current
// clock and a late seq — so the window injects them with key −1 instead,
// which wins every deadline tie against backend events (whose keys are
// real schedule instants ≥ 0) while record-vs-record ties keep record
// order via seq (the window always schedules records in index order).
// Both invariants together make the windowed firing sequence — and hence
// all completion timing — bit-identical to the eager one.
const replayKey = sim.Time(-1)

// replayer drives one bounded-window replay: a single shared fire
// callback delivers the next record (firing order equals record order for
// time-sorted records) and tops the window back up.
type replayer struct {
	eng     *sim.Engine
	backend mem.Backend
	recs    []Record
	base    sim.Time
	pool    *mem.RequestPool
	next    int // next record index to schedule
	deliver int // next record index to deliver

	measureFrom int // records at or past this index count toward stats
	latSum      sim.Time
	reads       uint64
	lastDone    sim.Time // latest measured read completion instant

	fire     func(sim.Time)
	readDone mem.DoneFunc
}

func (rp *replayer) step(at sim.Time) {
	// Top up before delivering: the next record's event must take its seq
	// before the backend schedules anything in response to this delivery.
	if rp.next < len(rp.recs) {
		rp.eng.ScheduleTimedSent(rp.recs[rp.next].At-rp.base, replayKey, 0, rp.fire)
		rp.next++
	}
	rec := &rp.recs[rp.deliver]
	op := mem.Read
	var done mem.DoneFunc
	if rec.Write {
		op = mem.Write
	} else {
		done = rp.readDone
	}
	req := rp.pool.Get(rec.Addr, op, done)
	if rp.deliver >= rp.measureFrom {
		req.Ctx = 1
	}
	rp.deliver++
	req.Issued = at
	rp.backend.Access(req)
}

// run replays recs[0:] (time-sorted), counting read latency only for
// records at index ≥ measureFrom, and returns after the engine drains.
func (rp *replayer) run(window int) {
	rp.fire = rp.step
	rp.readDone = func(done sim.Time, req *mem.Request) {
		if req.Ctx != 0 {
			rp.latSum += done - req.Issued
			rp.reads++
			if done > rp.lastDone {
				rp.lastDone = done
			}
		}
	}
	n := window
	if n > len(rp.recs) {
		n = len(rp.recs)
	}
	for i := 0; i < n; i++ {
		rp.eng.ScheduleTimedSent(rp.recs[i].At-rp.base, replayKey, 0, rp.fire)
	}
	rp.next = n
	rp.eng.Run()
}

func replayWindowed(eng *sim.Engine, backend mem.Backend, t *Trace, window int) ReplayResult {
	rp := &replayer{
		eng: eng, backend: backend, recs: t.Records,
		base: t.Records[0].At, pool: mem.NewRequestPool(),
	}
	rp.run(window)
	return replayResult(t, eng.Now(), rp.latSum, rp.reads)
}

// replayEager schedules one delivery event per record before running —
// the historical Replay, kept for traces without time order (the window's
// sequential delivery assumes firing order equals record order).
func replayEager(eng *sim.Engine, backend mem.Backend, t *Trace) ReplayResult {
	base := t.Records[0].At
	pool := mem.NewRequestPool()
	var latSum sim.Time
	var reads uint64
	readDone := func(done sim.Time, req *mem.Request) {
		latSum += done - req.Issued
		reads++
	}
	for i := range t.Records {
		r := &t.Records[i]
		op := mem.Read
		var done mem.DoneFunc
		if r.Write {
			op = mem.Write
		} else {
			done = readDone
		}
		req := pool.Get(r.Addr, op, done)
		req.SendAt(eng, backend, r.At-base)
	}
	eng.Run()
	return replayResult(t, eng.Now(), latSum, reads)
}

func replayResult(t *Trace, end, latSum sim.Time, reads uint64) ReplayResult {
	res := ReplayResult{ReadRatio: t.ReadRatio(), Reads: reads}
	if end > 0 {
		res.BWGBs = float64(t.Bytes()) / end.Seconds() / 1e9
	}
	if reads > 0 {
		res.ReadLatNs = (latSum / sim.Time(reads)).Nanoseconds()
	}
	return res
}

// Save serializes the trace in the release text format:
// one "at_ps addr RW" triple per line.
func (t *Trace) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# mess trace: %d records\n", len(t.Records))
	for _, r := range t.Records {
		op := "R"
		if r.Write {
			op = "W"
		}
		fmt.Fprintf(bw, "%d %#x %s\n", int64(r.At), r.Addr, op)
	}
	return bw.Flush()
}

// Read parses a trace written by Save. Timestamps must be non-decreasing:
// an out-of-order record would silently corrupt Duration and replay pacing
// (the replay window delivers records in index order and assumes that is
// also time order), so Read rejects it with the offending line number
// instead of deferring the breakage to analysis time.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	var prevAt sim.Time
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		at, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time: %w", lineNo, err)
		}
		if len(t.Records) > 0 && sim.Time(at) < prevAt {
			return nil, fmt.Errorf("trace: line %d: non-monotonic timestamp %d (previous record at %d)",
				lineNo, at, int64(prevAt))
		}
		prevAt = sim.Time(at)
		addr, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address: %w", lineNo, err)
		}
		var write bool
		switch fields[2] {
		case "R":
		case "W":
			write = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", lineNo, fields[2])
		}
		t.Records = append(t.Records, Record{At: sim.Time(at), Addr: addr, Write: write})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return t, nil
}
