// Package trace provides memory-trace capture and trace-driven replay —
// the methodology of Sec. IV-D: record the addresses and arrival times of
// all memory operations during a Mess benchmark run, then drive standalone
// memory models with the trace, eliminating the CPU simulator and its
// interfaces as an error source.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/sim"
)

// Record is one traced memory operation.
type Record struct {
	At    sim.Time // arrival at the memory controller
	Addr  uint64
	Write bool
}

// Trace is an ordered sequence of records.
type Trace struct {
	Records []Record
}

// Bytes reports total traffic bytes (one line per record).
func (t *Trace) Bytes() uint64 { return uint64(len(t.Records)) * mem.LineSize }

// ReadRatio reports the fraction of reads.
func (t *Trace) ReadRatio() float64 {
	if len(t.Records) == 0 {
		return 1
	}
	reads := 0
	for _, r := range t.Records {
		if !r.Write {
			reads++
		}
	}
	return float64(reads) / float64(len(t.Records))
}

// Duration reports the trace's time span.
func (t *Trace) Duration() sim.Time {
	if len(t.Records) < 2 {
		return 0
	}
	return t.Records[len(t.Records)-1].At - t.Records[0].At
}

// Capture wraps a backend and records every request that passes through.
type Capture struct {
	Inner mem.Backend
	eng   *sim.Engine
	T     Trace
	Limit int // stop recording beyond this many records; 0 = unlimited
}

// NewCapture builds a capturing wrapper.
func NewCapture(eng *sim.Engine, inner mem.Backend, limit int) *Capture {
	return &Capture{Inner: inner, eng: eng, Limit: limit}
}

// Access implements mem.Backend.
func (c *Capture) Access(req *mem.Request) {
	if c.Limit == 0 || len(c.T.Records) < c.Limit {
		c.T.Records = append(c.T.Records, Record{
			At:    c.eng.Now(),
			Addr:  req.Addr,
			Write: req.Op == mem.Write,
		})
	}
	c.Inner.Access(req)
}

// ReplayResult is the outcome of a trace-driven simulation.
type ReplayResult struct {
	BWGBs     float64
	ReadLatNs float64 // mean read round-trip from the controller
	ReadRatio float64
	Reads     uint64
}

// Replay drives the backend with the trace's own timing (arrival gaps
// encode the non-memory work, as DRAMsim3 trace formats do) and measures
// the achieved bandwidth and mean read latency. Requests come from a
// replay-local pool, acquired at schedule time and delivered via their own
// timed hand-off: one record per trace record (as before the pool, which
// each record's issue closure allocated anyway) but zero per-record
// closures — a single shared completion callback reads the issue time off
// the request.
func Replay(eng *sim.Engine, backend mem.Backend, t *Trace) ReplayResult {
	if len(t.Records) == 0 {
		return ReplayResult{}
	}
	base := t.Records[0].At
	pool := mem.NewRequestPool()
	var latSum sim.Time
	var reads uint64
	readDone := func(done sim.Time, req *mem.Request) {
		latSum += done - req.Issued
		reads++
	}
	for i := range t.Records {
		r := &t.Records[i]
		op := mem.Read
		var done mem.DoneFunc
		if r.Write {
			op = mem.Write
		} else {
			done = readDone
		}
		req := pool.Get(r.Addr, op, done)
		req.SendAt(eng, backend, r.At-base)
	}
	eng.Run()
	res := ReplayResult{ReadRatio: t.ReadRatio(), Reads: reads}
	dur := eng.Now()
	if dur > 0 {
		res.BWGBs = float64(t.Bytes()) / dur.Seconds() / 1e9
	}
	if reads > 0 {
		res.ReadLatNs = (latSum / sim.Time(reads)).Nanoseconds()
	}
	return res
}

// Save serializes the trace in the release text format:
// one "at_ps addr RW" triple per line.
func (t *Trace) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# mess trace: %d records\n", len(t.Records))
	for _, r := range t.Records {
		op := "R"
		if r.Write {
			op = "W"
		}
		fmt.Fprintf(bw, "%d %#x %s\n", int64(r.At), r.Addr, op)
	}
	return bw.Flush()
}

// Read parses a trace written by Save.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		at, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time: %w", lineNo, err)
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address: %w", lineNo, err)
		}
		var write bool
		switch fields[2] {
		case "R":
		case "W":
			write = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", lineNo, fields[2])
		}
		t.Records = append(t.Records, Record{At: sim.Time(at), Addr: addr, Write: write})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return t, nil
}
