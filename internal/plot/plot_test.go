package plot

import (
	"bytes"
	"strings"
	"testing"

	"github.com/mess-sim/mess/internal/core"
)

func TestCurveFamilyRenders(t *testing.T) {
	f := core.NewSynthetic(core.SyntheticSpec{Label: "plot-test", PeakGBs: 128})
	var buf bytes.Buffer
	if err := CurveFamily(&buf, f, 60, 16); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "plot-test") {
		t.Fatal("missing label")
	}
	if !strings.Contains(out, "max theoretical BW = 128.0") {
		t.Fatal("missing theoretical bandwidth annotation")
	}
	for _, glyph := range []string{"o", "+"} {
		if !strings.Contains(out, glyph) {
			t.Fatalf("missing curve glyph %q", glyph)
		}
	}
	if strings.Count(out, "\n") < 18 {
		t.Fatal("chart too short")
	}
	if !strings.Contains(out, "read ratio") {
		t.Fatal("missing legend")
	}
}

func TestCurveFamilyRejectsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := CurveFamily(&buf, &core.Family{Label: "empty"}, 40, 10); err == nil {
		t.Fatal("empty family rendered without error")
	}
}

func TestBars(t *testing.T) {
	var buf bytes.Buffer
	err := Bars(&buf, "IPC error", []string{"mess", "fixed"}, []float64{1.3, 87.0}, "%.1f%%", 40)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "mess") || !strings.Contains(out, "fixed") {
		t.Fatal("missing labels")
	}
	messLine, fixedLine := "", ""
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "mess") {
			messLine = line
		}
		if strings.Contains(line, "fixed") {
			fixedLine = line
		}
	}
	if strings.Count(fixedLine, "#") <= strings.Count(messLine, "#") {
		t.Fatal("bar lengths do not reflect magnitudes")
	}
}

func TestBarsNegative(t *testing.T) {
	var buf bytes.Buffer
	if err := Bars(&buf, "delta", []string{"a", "b"}, []float64{-12, 22}, "%+.0f%%", 30); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "-#") {
		t.Fatal("negative bars not marked")
	}
}

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	err := Table(&buf, []string{"name", "value"}, [][]string{
		{"short", "1"},
		{"a-much-longer-name", "23456"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines", len(lines))
	}
	// All value columns start at the same offset.
	h := strings.Index(lines[0], "value")
	r2 := strings.Index(lines[3], "23456")
	if h != r2 {
		t.Fatalf("columns misaligned: header at %d, row at %d\n%s", h, r2, buf.String())
	}
}
