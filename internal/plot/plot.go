// Package plot renders bandwidth–latency curve families, bar charts and
// tables as terminal-friendly ASCII, used by the CLI tools and the
// experiment reports (the release's equivalent of the paper's figures).
package plot

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/mess-sim/mess/internal/core"
)

// glyphs assigned to curves in ratio order.
var glyphs = []byte{'o', '+', 'x', '*', '#', '@', '%', '&', '=', '~', '^', '"'}

func familyRange(f *core.Family) (maxBW, maxLat float64) {
	maxBW = f.TheoreticalBW
	for _, c := range f.Curves {
		if m := c.MaxBW(); m > maxBW {
			maxBW = m
		}
		if m := c.MaxLatency(); m > maxLat {
			maxLat = m
		}
	}
	return maxBW, maxLat
}

// Drawable reports whether the family spans a positive bandwidth–latency
// range, i.e. whether CurveFamily can render it. Degenerate families occur
// legitimately — e.g. a trace-driven replay at quick scale may yield too
// few valid points — and callers rendering many families should skip them
// rather than abort.
func Drawable(f *core.Family) bool {
	maxBW, maxLat := familyRange(f)
	return maxBW > 0 && maxLat > 0
}

// CurveFamily renders the family as a scatter chart: x = bandwidth,
// y = latency, one glyph per curve (read ratio descending, like the
// paper's shades of blue).
func CurveFamily(w io.Writer, f *core.Family, width, height int) error {
	bw := bufio.NewWriter(w)
	if width < 30 {
		width = 30
	}
	if height < 10 {
		height = 10
	}
	maxBW, maxLat := familyRange(f)
	if maxBW <= 0 || maxLat <= 0 {
		return fmt.Errorf("plot: family %q has no drawable range", f.Label)
	}
	maxLat *= 1.05

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for ci, c := range f.Curves {
		g := glyphs[ci%len(glyphs)]
		for _, p := range c.Points {
			x := int(p.BW / maxBW * float64(width-1))
			y := height - 1 - int(p.Latency/maxLat*float64(height-1))
			if x >= 0 && x < width && y >= 0 && y < height {
				grid[y][x] = g
			}
		}
	}
	// Theoretical-bandwidth marker.
	if f.TheoreticalBW > 0 && f.TheoreticalBW <= maxBW {
		x := int(f.TheoreticalBW / maxBW * float64(width-1))
		for y := 0; y < height; y++ {
			if grid[y][x] == ' ' {
				grid[y][x] = '|'
			}
		}
	}

	fmt.Fprintf(bw, "%s — latency [ns] vs used bandwidth [GB/s]\n", f.Label)
	fmt.Fprintf(bw, "max theoretical BW = %.1f GB/s (marked |)\n", f.TheoreticalBW)
	for y, row := range grid {
		label := "        "
		if y == 0 {
			label = fmt.Sprintf("%7.0f ", maxLat)
		}
		if y == height-1 {
			label = fmt.Sprintf("%7.0f ", 0.0)
		}
		fmt.Fprintf(bw, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(bw, "        +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(bw, "        0%sBW=%.0f\n", strings.Repeat(" ", width-12), maxBW)
	for ci, c := range f.Curves {
		fmt.Fprintf(bw, "  %c read ratio %.2f (max %.1f GB/s, unloaded %.0f ns)\n",
			glyphs[ci%len(glyphs)], c.ReadRatio, c.MaxBW(), c.UnloadedLatency())
	}
	return bw.Flush()
}

// Bars renders a labelled horizontal bar chart for value maps such as the
// IPC-error figures; values are formatted with format (e.g. "%.1f%%").
func Bars(w io.Writer, title string, labels []string, values []float64, format string, width int) error {
	bw := bufio.NewWriter(w)
	if width < 20 {
		width = 40
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if math.Abs(v) > maxV {
			maxV = math.Abs(v)
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	fmt.Fprintln(bw, title)
	for i, v := range values {
		n := int(math.Abs(v) / maxV * float64(width))
		bar := strings.Repeat("#", n)
		sign := ""
		if v < 0 {
			sign = "-"
		}
		fmt.Fprintf(bw, "  %-*s %s%s "+format+"\n", maxL, labels[i], sign, bar, v)
	}
	return bw.Flush()
}

// Table renders rows with aligned columns.
func Table(w io.Writer, header []string, rows [][]string) error {
	bw := bufio.NewWriter(w)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(bw, "  ")
			}
			fmt.Fprintf(bw, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(bw)
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return bw.Flush()
}
