package exp

import (
	"fmt"
	"time"

	"github.com/mess-sim/mess/internal/bench"
	"github.com/mess-sim/mess/internal/charz"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/memmodel"
	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/sim"
)

// Sec. V-B speed claims and the Sec. IV-C OpenPiton bug discovery.

func init() {
	register(Experiment{
		ID:    "tablespeed",
		Paper: "Sec. V-B",
		Title: "Memory-model simulation speed relative to the fixed-latency model",
		Run:   runTableSpeed,
	})
	register(Experiment{
		ID:    "openpiton-bug",
		Paper: "Sec. IV-C",
		Title: "Coherency-bug detection: excess write traffic under pure-load kernels",
		Run:   runOpenPitonBug,
	})
}

// runTableSpeed times identical simulated workloads through each model and
// reports wall-clock ratios. The detailed reference model plays the role of
// the cycle-accurate simulators in the paper's 13–15× speed-up claim.
// Only the reference curves come from the characterization service — the
// timed sweeps below must execute every time, because their wall-clock
// cost IS the measurement; serving them from cache would report zero.
func runTableSpeed(env *Env) (*Result, error) {
	spec := scaleSpec(platform.ZSimSkylake(), env.Scale)
	ref, err := env.reference(spec)
	if err != nil {
		return nil, err
	}
	opt := bench.Options{
		Mixes:       []bench.Mix{{StorePercent: 40}},
		PacesNs:     []float64{0, 8, 64},
		Warmup:      5 * sim.Microsecond,
		Measure:     25 * sim.Microsecond,
		Parallelism: 1,
	}
	if env.Scale == Full {
		opt.Measure = 100 * sim.Microsecond
	}

	kinds := []memmodel.Kind{
		memmodel.KindFixed, memmodel.KindMess, memmodel.KindMD1,
		memmodel.KindInternalDDR, memmodel.KindReference,
	}
	elapsed := map[memmodel.Kind]time.Duration{}
	perOp := map[memmodel.Kind]float64{}
	for _, kind := range kinds {
		kind := kind
		o := opt
		o.Backend = func(eng *sim.Engine) mem.Backend {
			m, err := memmodel.New(kind, eng, spec, ref)
			if err != nil {
				panic(err)
			}
			return m
		}
		start := time.Now()
		res, err := bench.RunContext(env.Context(), spec, o)
		if err != nil {
			return nil, err
		}
		elapsed[kind] = time.Since(start)
		// Models reach very different bandwidths in the same simulated
		// window, so the fair speed metric is host time per simulated
		// memory operation.
		var ops float64
		for _, smp := range res.Samples {
			ops += smp.BWGBs * 1e9 * o.Measure.Seconds() / 64
		}
		if ops > 0 {
			perOp[kind] = float64(elapsed[kind].Nanoseconds()) / ops
		}
	}

	base := perOp[memmodel.KindFixed]
	r := &Result{
		ID: "tablespeed", Paper: "Sec. V-B",
		Title:  "Simulation cost per simulated memory operation",
		Header: []string{"model", "wall-clock", "host ns/op", "vs fixed-latency"},
	}
	for _, kind := range kinds {
		r.Rows = append(r.Rows, []string{string(kind),
			elapsed[kind].Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", perOp[kind]),
			fmt.Sprintf("%.2f×", perOp[kind]/base)})
	}
	r.Notes = append(r.Notes,
		"Paper: ZSim+Mess costs +26% over fixed latency and is 13–15× faster than ZSim+Ramulator/DRAMsim3; here the detailed reference model stands in for the cycle-accurate simulators.",
		"Host time per simulated memory operation is the comparable metric: models reach very different bandwidths in the same simulated window.")
	return r, nil
}

// runOpenPitonBug reproduces the Sec. IV-C discovery: holistic Mess
// characterization exposes a coherency bug as write traffic that the
// executed kernel mix cannot explain.
func runOpenPitonBug(env *Env) (*Result, error) {
	spec := platform.OpenPitonAriane()
	opt := benchOptions(env.Scale)
	opt.Mixes = []bench.Mix{{StorePercent: 0}, {StorePercent: 40}}
	opt.PacesNs = []float64{0, 16, 128}

	// Both runs need raw samples (per-point read ratios); the cache
	// override is part of the fingerprint, so healthy and bugged
	// characterizations occupy distinct cache slots.
	healthyArt, err := env.Charz.CharacterizeContext(env.Context(), charz.Request{Spec: spec, Options: opt, NeedSamples: true})
	if err != nil {
		return nil, err
	}
	healthy := healthyArt.Result
	buggedCfg := spec.CacheConfig()
	buggedCfg.EvictCleanAsDirty = true
	optBug := opt
	optBug.Cache = &buggedCfg
	buggedArt, err := env.Charz.CharacterizeContext(env.Context(), charz.Request{Spec: spec, Options: optBug, NeedSamples: true})
	if err != nil {
		return nil, err
	}
	bugged := buggedArt.Result

	r := &Result{
		ID: "openpiton-bug", Paper: "Sec. IV-C",
		Title:  "OpenPiton coherency bug: measured write share of memory traffic",
		Header: []string{"kernel mix", "pace [ns]", "healthy write share", "bugged write share"},
	}
	flagged := 0
	for i := range healthy.Samples {
		h, b := healthy.Samples[i], bugged.Samples[i]
		expectWrite := 1 - h.RdRatio
		gotWrite := 1 - b.RdRatio
		if gotWrite > expectWrite+0.2 {
			flagged++
		}
		r.Rows = append(r.Rows, []string{
			h.Mix.String(), fmt.Sprintf("%.0f", h.PaceNs),
			pct(1 - h.RdRatio), pct(1 - b.RdRatio)})
	}
	r.Rows = append(r.Rows, []string{"flagged points", fmt.Sprintf("%d/%d", flagged, len(healthy.Samples)), "", ""})
	r.Notes = append(r.Notes,
		"The bugged LLC evicts clean lines as writebacks, so even 100%-load kernels show ≈50% write traffic — the anomaly that led the paper's authors to the OpenPiton coherency bug.")
	return r, nil
}
