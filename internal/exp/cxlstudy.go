package exp

import (
	"fmt"
	"sort"

	"github.com/mess-sim/mess/internal/charz"
	"github.com/mess-sim/mess/internal/core"
	"github.com/mess-sim/mess/internal/cxl"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/messsim"
	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/sim"
	"github.com/mess-sim/mess/internal/workloads"
)

// Fig. 14 and Appendix B (Figs. 17–18): CXL memory expanders.

func init() {
	register(Experiment{
		ID:    "fig14",
		Paper: "Fig. 14",
		Title: "CXL expander curves: manufacturer model vs Mess in OpenPiton/gem5/ZSim",
		Run:   runFig14,
	})
	register(Experiment{
		ID:    "fig17",
		Paper: "Fig. 17",
		Title: "Remote-socket emulation of CXL: perlbench and lbm operating points",
		Run:   runFig17,
	})
	register(Experiment{
		ID:    "fig18",
		Paper: "Fig. 18",
		Title: "Remote-socket vs CXL performance across the SPEC-like suite",
		Run:   runFig18,
	})
}

func cxlSweep(s Scale) cxl.SweepOptions {
	if s == Quick {
		return cxl.SweepOptions{
			WriteFractions: []float64{0, 0.5, 1.0},
			RatesGBs:       []float64{2, 8, 16, 24, 32, 40, 48},
			Warmup:         8 * sim.Microsecond,
			Measure:        24 * sim.Microsecond,
		}
	}
	return cxl.SweepOptions{}
}

var (
	cxlFamOnce  = map[Scale]*core.Family{}
	remoteOnce  = map[Scale]*core.Family{}
	cxlFamMutex = make(chan struct{}, 1)
)

func cxlFamily(s Scale) *core.Family {
	cxlFamMutex <- struct{}{}
	defer func() { <-cxlFamMutex }()
	if f, ok := cxlFamOnce[s]; ok {
		return f
	}
	f := cxl.Family(cxlSweep(s))
	cxlFamOnce[s] = f
	return f
}

func remoteFamily(s Scale) *core.Family {
	cxlFamMutex <- struct{}{}
	defer func() { <-cxlFamMutex }()
	if f, ok := remoteOnce[s]; ok {
		return f
	}
	f := cxl.RemoteSocketFamily(cxlSweep(s))
	remoteOnce[s] = f
	return f
}

func runFig14(env *Env) (*Result, error) {
	manufacturer := cxlFamily(env.Scale)

	r := &Result{
		ID: "fig14", Paper: "Fig. 14",
		Title:  "CXL memory expander: manufacturer's model vs Mess-integrated CPU simulators",
		Header: []string{"integration", "max BW [GB/s]", "max latency [ns]"},
	}
	r.Families = append(r.Families, manufacturer)
	mm := manufacturer.Metrics()
	r.Rows = append(r.Rows, []string{"Manufacturer device model",
		fmt.Sprintf("%.1f", mm.SatBWHighGBs), fmt.Sprintf("%.0f", mm.MaxLatencyMaxNs)})

	hosts := []platform.Spec{
		platform.OpenPitonAriane(),
		scaleSpec(platform.Gem5Graviton3(), env.Scale),
		scaleSpec(platform.ZSimSkylake(), env.Scale),
	}
	for _, host := range hosts {
		host := host
		opt := benchOptions(env.Scale)
		opt.Backend = func(eng *sim.Engine) mem.Backend {
			return messsim.New(eng, messsim.Config{
				Family:       manufacturer,
				CPULatencyNs: host.OnChipLatency.Nanoseconds(),
			})
		}
		// The manufacturer family is a pure function of the scale, which
		// the options already encode, so the tag is a stable identity.
		art, err := env.Charz.CharacterizeContext(env.Context(), charz.Request{Spec: host, Options: opt, Tag: "messsim:cxl"})
		if err != nil {
			return nil, err
		}
		fam := art.Family
		fam.Label = host.Name + " + Mess (CXL curves)"
		fam.TheoreticalBW = manufacturer.TheoreticalBW
		m := fam.Metrics()
		r.Families = append(r.Families, fam)
		r.Rows = append(r.Rows, []string{fam.Label,
			fmt.Sprintf("%.1f", m.SatBWHighGBs), fmt.Sprintf("%.0f", m.MaxLatencyMaxNs)})
	}
	r.Notes = append(r.Notes,
		"CXL is full-duplex: balanced read/write mixes reach the highest bandwidth; 100%-read or 100%-write saturates one link direction early — the inverse of DDR (Sec. V-C).",
		"The OpenPiton Ariane host (2-entry MSHRs, in-order) cannot saturate the device, so its maximum latency stays below the manufacturer curves, as in the paper.")
	return r, nil
}

// runCXLvsRemote executes one SPEC-like benchmark against the Mess
// simulator loaded with the CXL curves and the remote-socket curves and
// reports both IPCs plus the benchmark's bandwidth utilization.
func runCXLvsRemote(b workloads.SpecBenchmark, host platform.Spec, s Scale) (cxlIPC, remIPC, util float64, err error) {
	families := []*core.Family{cxlFamily(s), remoteFamily(s)}
	ipcs := make([]float64, 2)
	var bw float64
	for i, fam := range families {
		fam := fam
		o := workloads.Options{
			LLCHitRate: b.LLCHitRate,
			Backend: func(eng *sim.Engine) mem.Backend {
				return messsim.New(eng, messsim.Config{
					Family:       fam,
					CPULatencyNs: host.OnChipLatency.Nanoseconds(),
				})
			},
		}
		if s == Quick {
			o.Warmup = 5 * sim.Microsecond
			o.Measure = 20 * sim.Microsecond
		}
		res, rerr := workloads.Run(host, b.Kernel, o)
		if rerr != nil {
			return 0, 0, 0, rerr
		}
		ipcs[i] = res.IPC
		if i == 0 {
			bw = res.MemBWGBs
		}
	}
	util = bw / cxlFamily(s).TheoreticalBW
	return ipcs[0], ipcs[1], util, nil
}

func runFig17(env *Env) (*Result, error) {
	s := env.Scale
	host := scaleSpec(platform.ZSimSkylake(), s)
	suite := workloads.SpecSuite()
	var perl, lbm *workloads.SpecBenchmark
	for i := range suite {
		switch suite[i].Name {
		case "perlbench":
			perl = &suite[i]
		case "lbm":
			lbm = &suite[i]
		}
	}
	r := &Result{
		ID: "fig17", Paper: "Fig. 17",
		Title:  "CXL vs remote-socket emulation: characteristic benchmarks",
		Header: []string{"benchmark", "CXL IPC", "remote IPC", "Δ", "BW util of CXL max"},
	}
	r.Families = append(r.Families, cxlFamily(s), remoteFamily(s))
	for _, b := range []*workloads.SpecBenchmark{perl, lbm} {
		cxlIPC, remIPC, util, err := runCXLvsRemote(*b, host, s)
		if err != nil {
			return nil, err
		}
		delta := (remIPC - cxlIPC) / cxlIPC
		r.Rows = append(r.Rows, []string{b.Name,
			fmt.Sprintf("%.3f", cxlIPC), fmt.Sprintf("%.3f", remIPC),
			fmt.Sprintf("%+.1f%%", 100*delta), pct(util)})
	}
	r.Notes = append(r.Notes,
		"Low-bandwidth perlbench pays the remote socket's ≈28 ns extra unloaded latency; bandwidth-hungry lbm gains from the remote socket's higher saturated bandwidth (Appendix B).")
	return r, nil
}

func runFig18(env *Env) (*Result, error) {
	s := env.Scale
	host := scaleSpec(platform.ZSimSkylake(), s)
	suite := workloads.SpecSuite()
	if s == Quick {
		// A representative subset spanning the utilization range.
		keep := map[string]bool{
			"namd": true, "perlbench": true, "astar": true, "dealII": true,
			"hmmer": true, "zeusmp": true, "soplex": true, "milc": true,
			"libquantum": true, "leslie3d": true, "lbm": true,
		}
		var sub []workloads.SpecBenchmark
		for _, b := range suite {
			if keep[b.Name] {
				sub = append(sub, b)
			}
		}
		suite = sub
	}

	type row struct {
		name  string
		delta float64
		util  float64
	}
	rows := make([]row, 0, len(suite))
	for _, b := range suite {
		cxlIPC, remIPC, util, err := runCXLvsRemote(b, host, s)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{b.Name, (remIPC - cxlIPC) / cxlIPC, util})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].util < rows[j].util })

	r := &Result{
		ID: "fig18", Paper: "Fig. 18",
		Title:   "Remote-socket emulation vs target CXL system, sorted by bandwidth utilization",
		Header:  []string{"benchmark", "BW utilization", "performance difference"},
		BarUnit: "%+.1f%%",
	}
	for _, rw := range rows {
		r.Rows = append(r.Rows, []string{rw.name, pct(rw.util), fmt.Sprintf("%+.1f%%", 100*rw.delta)})
		r.Bars = append(r.Bars, Bar{Label: rw.name, Value: 100 * rw.delta})
	}
	r.Notes = append(r.Notes,
		"Paper shape: up to ≈12% slower for low-bandwidth benchmarks, crossover in the 30–50% utilization band, 11–22% faster for bandwidth-hungry ones (Fig. 18).")
	return r, nil
}
