package exp

import (
	"fmt"

	"github.com/mess-sim/mess/internal/core"
	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/profile"
	"github.com/mess-sim/mess/internal/sim"
	"github.com/mess-sim/mess/internal/workloads"
)

// Figs. 15–16: Mess application profiling of HPCG on Cascade Lake.

func init() {
	register(Experiment{
		ID:    "fig15",
		Paper: "Fig. 15",
		Title: "HPCG profile on the Cascade Lake curves with memory stress scores",
		Run:   runFig15,
	})
	register(Experiment{
		ID:    "fig16",
		Paper: "Fig. 16",
		Title: "HPCG timeline: phases, MPI calls and per-window stress score",
		Run:   runFig16,
	})
}

// hpcgProfile runs the HPCG proxy with the window sampler and analyzes it
// against the platform's reference curves.
func hpcgProfile(env *Env) (*profile.Profile, []workloads.PhaseEvent, platform.Spec, error) {
	spec := scaleSpec(platform.CascadeLake(), env.Scale)
	fam, err := env.reference(spec)
	if err != nil {
		return nil, nil, spec, err
	}

	app := workloads.NewPhasedApp(spec, workloads.HPCGPhases(), nil)
	sampler := profile.NewSampler(app.Eng, app.Counting, 10*sim.Microsecond)
	sampler.Start()
	dur := 2 * sim.Millisecond // several HPCG iterations
	if env.Scale == Quick {
		dur = 700 * sim.Microsecond
	}
	app.Run(dur)
	sampler.Stop()

	spans := make([]profile.PhaseSpan, 0, len(app.Events()))
	for _, e := range app.Events() {
		spans = append(spans, profile.PhaseSpan{Name: e.Name, Start: e.Start, End: e.End, MPI: e.MPI})
	}
	p := profile.Build("HPCG proxy on "+spec.Name, fam, sampler.Windows(), spans, core.DefaultStressWeights)
	return p, app.Events(), spec, nil
}

func runFig15(env *Env) (*Result, error) {
	p, _, spec, err := hpcgProfile(env)
	if err != nil {
		return nil, err
	}
	m := p.Family.Metrics()
	r := &Result{
		ID: "fig15", Paper: "Fig. 15",
		Title:  "HPCG on the " + spec.Name + " bandwidth–latency curves",
		Header: []string{"metric", "value"},
	}
	r.Families = append(r.Families, p.Family)
	r.Rows = append(r.Rows,
		[]string{"profiling windows", fmt.Sprintf("%d", len(p.Samples))},
		[]string{"saturation onset", fmt.Sprintf("%.0f GB/s", m.SatBWLowGBs)},
		[]string{"windows in saturated area", pct(p.SaturatedFraction())},
		[]string{"maximum stress score", fmt.Sprintf("%.2f", p.MaxStress())},
	)
	order, byPhase := p.MeanStressByPhase()
	for _, name := range order {
		r.Rows = append(r.Rows, []string{"mean stress in " + name, fmt.Sprintf("%.2f", byPhase[name])})
	}
	r.Notes = append(r.Notes,
		"Paper observation: most of the HPCG execution sits in the saturated bandwidth area; peak latencies reach 260–290 ns on Cascade Lake (Fig. 15).")
	return r, nil
}

func runFig16(env *Env) (*Result, error) {
	p, events, spec, err := hpcgProfile(env)
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID: "fig16", Paper: "Fig. 16",
		Title:  "HPCG timeline on " + spec.Name + ": two iterations",
		Header: []string{"window [µs]", "phase", "BW [GB/s]", "latency [ns]", "stress"},
	}
	// Render the window timeline across the first two iterations
	// (delimited by the second MPI_Allreduce occurrence, as the paper
	// selects its analysis region).
	var cutoff sim.Time
	mpiSeen := 0
	for _, e := range events {
		if e.MPI {
			mpiSeen++
			if mpiSeen == 4 { // two iterations × two Allreduce each
				cutoff = e.End
				break
			}
		}
	}
	if cutoff == 0 && len(events) > 0 {
		cutoff = events[len(events)-1].End
	}
	for _, smp := range p.Samples {
		if smp.Start > cutoff {
			break
		}
		phase := smp.Phase
		if smp.MPI {
			phase += " (MPI)"
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.0f–%.0f", smp.Start.Seconds()*1e6, smp.End.Seconds()*1e6),
			phase,
			fmt.Sprintf("%.1f", smp.BWGBs),
			fmt.Sprintf("%.0f", smp.LatencyNs),
			fmt.Sprintf("%.2f", smp.Stress),
		})
	}
	r.Notes = append(r.Notes,
		"Compute phases carry high stress scores; MPI windows drop toward zero — the correlation structure of the paper's Fig. 16 timeline.",
		"Fine-grain profiling resolves stress variation between phases within a single iteration.")
	return r, nil
}
