package exp

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/mess-sim/mess/internal/bench"
	"github.com/mess-sim/mess/internal/charz"
	"github.com/mess-sim/mess/internal/platform"
)

// testEnv is shared by every test in the binary, so reference families
// measured once (Skylake, ZSim Skylake, …) serve all experiments — the
// same sharing messexp -run all gets from one service.
var testEnv = NewEnv(Quick, nil)

func runExp(t *testing.T, id string) *Result {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	res, err := e.Run(testEnv)
	if err != nil {
		t.Fatalf("%s failed: %v", id, err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatalf("%s render failed: %v", id, err)
	}
	if buf.Len() == 0 {
		t.Fatalf("%s rendered nothing", id)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2", "fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f", "fig3g", "fig3h",
		"table1", "fig4", "fig5", "fig6", "fig6s", "fig7", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17", "fig18", "tablespeed", "openpiton-bug",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(All()) < len(want) {
		t.Fatalf("registry has %d experiments, want ≥ %d", len(All()), len(want))
	}
}

// TestSharedServiceDedupes drives two experiments that both need the
// scaled-Skylake reference curves through one Env with a counting runner
// and asserts the underlying benchmark executed once per unique key — the
// messexp -run all guarantee, in miniature.
func TestSharedServiceDedupes(t *testing.T) {
	var calls atomic.Int64
	var mu sync.Mutex
	keys := map[string]int{}
	run := func(ctx context.Context, spec platform.Spec, opt bench.Options) (*bench.Result, error) {
		calls.Add(1)
		mu.Lock()
		keys[charz.Fingerprint(charz.Request{Spec: spec, Options: opt}).String()]++
		mu.Unlock()
		return bench.RunContext(ctx, spec, opt)
	}
	env := NewEnv(Quick, charz.New(charz.Config{Run: run}))

	for _, id := range []string{"fig2", "fig3a", "fig2"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		if _, err := e.Run(env); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	// fig2 and fig3a both characterize the scaled Skylake: one run total.
	if got := calls.Load(); got != 1 {
		t.Errorf("benchmark ran %d times across fig2+fig3a+fig2, want 1", got)
	}
	for k, n := range keys {
		if n > 1 {
			t.Errorf("key %s simulated %d times, want at most once", k[:12], n)
		}
	}
	stats := env.Charz.Stats()
	if stats.MemoryHits < 2 {
		t.Errorf("stats = %+v, want ≥2 memory hits", stats)
	}
}

func TestFig2SkylakeCharacterization(t *testing.T) {
	res := runExp(t, "fig2")
	if len(res.Families) != 1 {
		t.Fatalf("fig2 families = %d, want 1", len(res.Families))
	}
	fam := res.Families[0]
	m := fam.Metrics()
	// Unloaded latency must match the calibration target within 10%.
	if m.UnloadedLatencyNs < 80 || m.UnloadedLatencyNs > 98 {
		t.Errorf("Skylake unloaded latency = %.1f ns, want ≈89", m.UnloadedLatencyNs)
	}
	// Saturated range must sit in the right band of theoretical bandwidth.
	if m.SatHighFrac() < 0.80 || m.SatHighFrac() > 1.0 {
		t.Errorf("saturated high fraction = %.2f, want ≈0.91", m.SatHighFrac())
	}
	if m.SatLowFrac() > m.SatHighFrac() {
		t.Errorf("saturated range inverted: %v", m)
	}
	// Latency must at least double at saturation.
	if m.MaxLatencyMaxNs < 2*m.UnloadedLatencyNs {
		t.Errorf("max latency %.0f ns does not reach 2× unloaded %.0f ns", m.MaxLatencyMaxNs, m.UnloadedLatencyNs)
	}
}

func TestFig5ModelPathologies(t *testing.T) {
	res := runExp(t, "fig5")
	if len(res.Families) != 6 {
		t.Fatalf("fig5 families = %d, want actual + 5 models", len(res.Families))
	}
	byLabel := map[string]float64{} // label → max BW
	unloaded := map[string]float64{}
	for _, f := range res.Families {
		m := f.Metrics()
		byLabel[f.Label] = m.SatBWHighGBs
		unloaded[f.Label] = m.UnloadedLatencyNs
	}
	actual := res.Families[0]
	theor := actual.TheoreticalBW
	actualMax := actual.Metrics().SatBWHighGBs

	find := func(substr string) string {
		for label := range byLabel {
			if strings.Contains(label, substr) {
				return label
			}
		}
		t.Fatalf("no family labelled %q", substr)
		return ""
	}
	// Fixed-latency and Ramulator exceed the theoretical bandwidth.
	if got := byLabel[find("fixed")]; got < theor*1.05 {
		t.Errorf("fixed-latency max BW %.0f does not exceed theoretical %.0f", got, theor)
	}
	if got := byLabel[find("ramulator")]; got < theor*1.05 {
		t.Errorf("Ramulator max BW %.0f does not exceed theoretical %.0f", got, theor)
	}
	// Ramulator's latency is flat and unrealistically low (≈25 ns + on-chip).
	if got := unloaded[find("ramulator")]; got > unloaded[actual.Label]*0.95 {
		t.Errorf("Ramulator unloaded %.0f ns not below actual %.0f ns", got, unloaded[actual.Label])
	}
	// The internal DDR model under-estimates the saturated bandwidth.
	if got := byLabel[find("internal-ddr")]; got > actualMax*0.95 {
		t.Errorf("internal DDR max BW %.0f not below actual %.0f", got, actualMax)
	}
}

// TestFig6sSampledReplayBounds pins the sampled-replay experiment's
// acceptance bound: every sweep point's sampled estimate stays within 5%
// of its full replay, and the sampling actually saves work.
func TestFig6sSampledReplayBounds(t *testing.T) {
	res := runExp(t, "fig6s")
	if len(res.Rows) == 0 {
		t.Fatal("fig6s produced no sweep points")
	}
	for _, row := range res.Rows {
		div, err := strconv.ParseFloat(strings.TrimSuffix(row[6], "%"), 64)
		if err != nil {
			t.Fatalf("bad divergence cell %q", row[6])
		}
		if div > 5 {
			t.Errorf("pace %s ns: sampled estimate diverges %.1f%% (> 5%%) from full replay", row[0], div)
		}
		speed, err := strconv.ParseFloat(strings.TrimSuffix(row[7], "×"), 64)
		if err != nil {
			t.Fatalf("bad speedup cell %q", row[7])
		}
		if speed < 2 {
			t.Errorf("pace %s ns: sampled replay speedup %.1f× — sampling not saving work", row[0], speed)
		}
	}
}

func TestFig7RowBufferDivergence(t *testing.T) {
	res := runExp(t, "fig7")
	// Parse hit ratios: actual must span a wide range across load; the
	// DRAMsim3 replica must stay pinned high for most points.
	parse := func(s string) float64 {
		v, err := strconv.Atoi(strings.TrimSuffix(s, "%"))
		if err != nil {
			t.Fatalf("bad percent cell %q", s)
		}
		return float64(v) / 100
	}
	var actualHits, ds3Hits []float64
	for _, row := range res.Rows {
		switch {
		case strings.HasPrefix(row[0], "actual"):
			actualHits = append(actualHits, parse(row[3]))
		case strings.HasPrefix(row[0], "DRAMsim3"):
			ds3Hits = append(ds3Hits, parse(row[3]))
		}
	}
	if len(actualHits) == 0 || len(ds3Hits) == 0 {
		t.Fatal("fig7 missing rows")
	}
	spread := func(xs []float64) float64 {
		min, max := xs[0], xs[0]
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		return max - min
	}
	if spread(actualHits) < 0.2 {
		t.Errorf("actual hit-rate spread %.2f too small — load sensitivity missing", spread(actualHits))
	}
	high := 0
	for _, h := range ds3Hits {
		if h > 0.8 {
			high++
		}
	}
	if high*2 < len(ds3Hits) {
		t.Errorf("DRAMsim3 replica hit rates not pinned high: %v", ds3Hits)
	}
}

func TestFig10MessMatchesReference(t *testing.T) {
	res := runExp(t, "fig10")
	if len(res.Rows) == 0 {
		t.Fatal("fig10 produced no agreement rows")
	}
	// Mean relative latency error of ZSim+Mess vs reference ≤ 15%.
	cell := res.Rows[0][1]
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("bad agreement cell %q", cell)
	}
	if v > 15 {
		t.Errorf("ZSim+Mess curve disagreement = %.1f%%, want ≤ 15%%", v)
	}
}

func TestFig11ErrorOrdering(t *testing.T) {
	res := runExp(t, "fig11")
	avg := map[string]float64{}
	for _, b := range res.Bars {
		avg[b.Label] = b.Value
	}
	mess, fixed := avg["mess"], avg["fixed"]
	if mess == 0 && fixed == 0 {
		t.Fatalf("fig11 averages missing: %v", avg)
	}
	// The defining result: Mess has the lowest average IPC error.
	for label, v := range avg {
		if label == "mess" {
			continue
		}
		if mess > v {
			t.Errorf("mess avg error %.1f%% not below %s %.1f%%", mess, label, v)
		}
	}
	if mess > 12 {
		t.Errorf("mess avg IPC error %.1f%% too high (paper: 1.3%%)", mess)
	}
	if fixed < 2*mess {
		t.Errorf("fixed-latency error %.1f%% not clearly above mess %.1f%%", fixed, mess)
	}
}

func TestFig13Gem5Ordering(t *testing.T) {
	res := runExp(t, "fig13")
	avg := map[string]float64{}
	for _, b := range res.Bars {
		avg[b.Label] = b.Value
	}
	if avg["mess"] > avg["ramulator2"] {
		t.Errorf("mess error %.1f%% above ramulator2 %.1f%% — ordering broken", avg["mess"], avg["ramulator2"])
	}
	if avg["mess"] > avg["fixed"] {
		t.Errorf("mess error %.1f%% above fixed %.1f%%", avg["mess"], avg["fixed"])
	}
}

func TestFig14CXLShape(t *testing.T) {
	res := runExp(t, "fig14")
	manufacturer := res.Families[0]
	// The CXL signature: balanced mixes outperform single-direction
	// traffic (inverse of DDR).
	balanced := manufacturer.Nearest(0.5)
	pureRead := manufacturer.Nearest(1.0)
	if balanced.MaxBW() <= pureRead.MaxBW() {
		t.Errorf("CXL balanced max BW %.1f not above pure-read %.1f — full-duplex behaviour missing",
			balanced.MaxBW(), pureRead.MaxBW())
	}
	// OpenPiton host cannot reach the device's max latency range.
	var opMax, manMax float64
	manMax = manufacturer.Metrics().MaxLatencyMaxNs
	for _, f := range res.Families[1:] {
		if strings.Contains(f.Label, "OpenPiton") {
			opMax = f.Metrics().MaxLatencyMaxNs
		}
	}
	if opMax == 0 {
		t.Fatal("OpenPiton family missing")
	}
	if opMax > manMax {
		t.Errorf("OpenPiton max latency %.0f exceeds manufacturer %.0f — 2-entry MSHRs should not saturate the device", opMax, manMax)
	}
}

func TestFig15HPCGSaturation(t *testing.T) {
	res := runExp(t, "fig15")
	var satFrac float64
	for _, row := range res.Rows {
		if row[0] == "windows in saturated area" {
			v, err := strconv.Atoi(strings.TrimSuffix(row[1], "%"))
			if err != nil {
				t.Fatalf("bad cell %q", row[1])
			}
			satFrac = float64(v) / 100
		}
	}
	if satFrac < 0.4 {
		t.Errorf("HPCG saturated fraction = %.2f, want the majority of windows (paper: most of the execution)", satFrac)
	}
}

func TestFig16TimelineStructure(t *testing.T) {
	res := runExp(t, "fig16")
	if len(res.Rows) < 5 {
		t.Fatalf("fig16 timeline has %d windows", len(res.Rows))
	}
	// MPI windows must show lower stress than the SpMV/SymGS compute
	// windows around them.
	var mpiStress, computeStress []float64
	for _, row := range res.Rows {
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("bad stress cell %q", row[4])
		}
		if strings.Contains(row[1], "MPI") {
			mpiStress = append(mpiStress, v)
		} else if strings.Contains(row[1], "SpMV") || strings.Contains(row[1], "SymGS") {
			computeStress = append(computeStress, v)
		}
	}
	if len(computeStress) == 0 {
		t.Fatal("no compute windows in timeline")
	}
	mean := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if len(mpiStress) > 0 && mean(mpiStress) >= mean(computeStress) {
		t.Errorf("MPI stress %.2f not below compute stress %.2f", mean(mpiStress), mean(computeStress))
	}
}

func TestFig18CrossoverShape(t *testing.T) {
	res := runExp(t, "fig18")
	if len(res.Bars) < 6 {
		t.Fatalf("fig18 has %d benchmarks", len(res.Bars))
	}
	// Bars are sorted by bandwidth utilization: the mean delta of the
	// low-utilization third must be below the mean delta of the
	// high-utilization third, and the extremes must have opposite signs.
	n := len(res.Bars)
	third := n / 3
	var lowSum, highSum float64
	for i := 0; i < third; i++ {
		lowSum += res.Bars[i].Value
	}
	for i := n - third; i < n; i++ {
		highSum += res.Bars[i].Value
	}
	lowMean, highMean := lowSum/float64(third), highSum/float64(third)
	if lowMean >= highMean {
		t.Errorf("remote-vs-CXL delta: low-BW mean %+.1f%% not below high-BW mean %+.1f%%", lowMean, highMean)
	}
	if lowMean > 0 {
		t.Errorf("low-bandwidth benchmarks should lose on remote socket, got %+.1f%%", lowMean)
	}
	if highMean < 0 {
		t.Errorf("high-bandwidth benchmarks should win on remote socket, got %+.1f%%", highMean)
	}
}

func TestOpenPitonBugExperiment(t *testing.T) {
	res := runExp(t, "openpiton-bug")
	last := res.Rows[len(res.Rows)-1]
	if last[0] != "flagged points" {
		t.Fatalf("missing flagged-points summary row")
	}
	parts := strings.Split(last[1], "/")
	flagged, _ := strconv.Atoi(parts[0])
	if flagged == 0 {
		t.Error("bug detection flagged no measurement points")
	}
}
