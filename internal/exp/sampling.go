package exp

import (
	"fmt"

	"github.com/mess-sim/mess/internal/bench"
	"github.com/mess-sim/mess/internal/dram"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/memmodel"
	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/sim"
	"github.com/mess-sim/mess/internal/trace"
)

// fig6s: the sampled-replay variant of the fig6 methodology. Where fig6
// replays every captured record into the trace-driven replicas, fig6s runs
// both the full replay and the phase-clustered sampled replay
// (trace.Sampled) over the same captured traces and reports, per sweep
// point, how far the reconstructed estimates diverge and how much of the
// trace was actually simulated — the accuracy-vs-speedup trade the
// sampling layer sells.

func init() {
	register(Experiment{
		ID:    "fig6s",
		Paper: "Sec. IV-D",
		Title: "Sampled trace replay: phase-clustered vs full replay divergence",
		Run:   runFig6s,
	})
}

// samplingPaces picks a small pacing ladder for the divergence sweep: the
// point is to cover unloaded, mid-pressure and saturated traffic, not to
// redraw the whole curve.
func samplingPaces(s Scale) []float64 {
	if s == Quick {
		return []float64{2, 16, 128}
	}
	return []float64{0, 2, 8, 32, 128, 512}
}

func runFig6s(env *Env) (*Result, error) {
	spec := scaleSpec(platform.ZSimSkylake(), env.Scale)
	opt := benchOptions(env.Scale)
	// Capture a much longer run than the curve sweeps use: sampling only
	// pays off when the trace holds many windows of a span long enough
	// for queueing to reach steady state inside each one (~µs, tens of
	// latencies), and the default quick Measure yields barely a dozen.
	opt.Measure = 192 * sim.Microsecond
	mix := bench.Mix{StorePercent: 40}
	mapper := dram.NewMapper(&spec.DRAM)
	mk := func(eng *sim.Engine) mem.Backend { return memmodel.NewDRAMsim3Like(eng, spec) }

	r := &Result{
		ID: "fig6s", Paper: "Sec. IV-D",
		Title: "Sampled vs full trace replay (DRAMsim3-like, " + spec.Name + ")",
		Header: []string{"pace [ns]", "records", "full BW [GB/s]", "sampled BW [GB/s]",
			"full lat [ns]", "sampled lat [ns]", "divergence", "speedup"},
	}

	var maxDiv float64
	for _, pace := range samplingPaces(env.Scale) {
		tr, err := captureTrace(env.Context(), spec, opt, mix, pace)
		if err != nil {
			return nil, err
		}
		if len(tr.Records) < 256 {
			continue // too short to window meaningfully
		}
		eng := sim.New()
		full := trace.Replay(eng, mk(eng), tr)
		if full.Reads == 0 {
			continue
		}
		sam, err := trace.Sampled(mk, tr, trace.SampleConfig{
			Span:    2 * sim.Microsecond,
			BankRow: mapper.BankRow,
		})
		if err != nil {
			return nil, err
		}
		div := sam.DivergencePct(full)
		if div > maxDiv {
			maxDiv = div
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.0f", pace),
			fmt.Sprintf("%d", len(tr.Records)),
			fmt.Sprintf("%.2f", full.BWGBs),
			fmt.Sprintf("%.2f ± %.2f", sam.Estimate.BWGBs, sam.BWErrGBs),
			fmt.Sprintf("%.1f", full.ReadLatNs),
			fmt.Sprintf("%.1f ± %.1f", sam.Estimate.ReadLatNs, sam.LatErrNs),
			fmt.Sprintf("%.1f%%", div),
			fmt.Sprintf("%.1f×", sam.SpeedupX),
		})
	}
	if len(r.Rows) == 0 {
		return nil, fmt.Errorf("fig6s: no sweep point captured enough records to sample")
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("Max bandwidth/latency divergence of the sampled estimates across the sweep: %.1f%%; estimates are deterministic (same trace + config → byte-identical result).", maxDiv))
	return r, nil
}
