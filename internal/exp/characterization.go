package exp

import (
	"fmt"

	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/workloads"
)

// Figs. 2 and 3 and Table I: characterization of the eight platforms.

func init() {
	register(Experiment{
		ID:    "fig2",
		Paper: "Fig. 2",
		Title: "Mess bandwidth–latency curves of the Skylake server with derived metrics",
		Run:   runFig2,
	})
	letters := []struct {
		suffix string
		spec   func() platform.Spec
	}{
		{"a", platform.Skylake},
		{"b", platform.CascadeLake},
		{"c", platform.Zen2},
		{"d", platform.Power9},
		{"e", platform.Graviton3},
		{"f", platform.SapphireRapids},
		{"g", platform.A64FX},
		{"h", platform.H100},
	}
	for _, l := range letters {
		l := l
		register(Experiment{
			ID:    "fig3" + l.suffix,
			Paper: "Fig. 3(" + l.suffix + ")",
			Title: "Bandwidth–latency curves: " + l.spec().Name,
			Run: func(env *Env) (*Result, error) {
				return runPlatformCurves("fig3"+l.suffix, "Fig. 3("+l.suffix+")", l.spec(), env)
			},
		})
	}
	register(Experiment{
		ID:    "table1",
		Paper: "Table I",
		Title: "Quantitative memory performance comparison of all platforms",
		Run:   runTable1,
	})
}

func runFig2(env *Env) (*Result, error) {
	spec := scaleSpec(platform.Skylake(), env.Scale)
	fam, err := env.reference(spec)
	if err != nil {
		return nil, err
	}
	m := fam.Metrics()

	stream, err := workloads.StreamSuite(spec, workloads.Options{})
	if err != nil {
		return nil, err
	}

	r := &Result{
		ID:     "fig2",
		Paper:  "Fig. 2",
		Title:  "Mess curves + derived metrics, " + spec.Name,
		Header: []string{"metric", "value"},
	}
	r.Families = append(r.Families, fam)
	r.Rows = append(r.Rows,
		[]string{"unloaded latency", fmt.Sprintf("%.0f ns", m.UnloadedLatencyNs)},
		[]string{"maximum latency range", fmt.Sprintf("%.0f–%.0f ns", m.MaxLatencyMinNs, m.MaxLatencyMaxNs)},
		[]string{"saturated bandwidth range", fmt.Sprintf("%.0f–%.0f GB/s (%s–%s of theoretical)",
			m.SatBWLowGBs, m.SatBWHighGBs, pct(m.SatLowFrac()), pct(m.SatHighFrac()))},
	)
	for _, st := range stream {
		r.Rows = append(r.Rows, []string{st.Name + " bandwidth (application view)",
			fmt.Sprintf("%.1f GB/s (%s of theoretical)", st.AppBWGBs, pct(st.AppBWGBs/spec.TheoreticalBandwidthGBs()))})
	}
	r.Notes = append(r.Notes,
		"STREAM reports application-level bandwidth; the Mess counters additionally see the RFO and writeback traffic of the write-allocate hierarchy, so Mess maximum bandwidths are higher (Sec. III).")
	return r, nil
}

func runPlatformCurves(id, paper string, spec platform.Spec, env *Env) (*Result, error) {
	scaled := scaleSpec(spec, env.Scale)
	fam, err := env.reference(scaled)
	if err != nil {
		return nil, err
	}
	m := fam.Metrics()
	r := &Result{
		ID:       id,
		Paper:    paper,
		Title:    "Bandwidth–latency curves: " + scaled.Name,
		Families: nil,
		Header:   []string{"metric", "simulated", "paper"},
	}
	r.Families = append(r.Families, fam)
	r.Rows = append(r.Rows,
		[]string{"unloaded latency", fmt.Sprintf("%.0f ns", m.UnloadedLatencyNs), fmt.Sprintf("%.0f ns", spec.UnloadedLatencyNs)},
		[]string{"saturated range", pct(m.SatLowFrac()) + "–" + pct(m.SatHighFrac()), "see Table I"},
	)
	return r, nil
}

func runTable1(env *Env) (*Result, error) {
	specs := platform.All()
	// The paper's Table I reference rows for the shape comparison.
	paperSat := []string{"72–91%", "68–87%", "57–71%", "67–91%", "63–95%", "60–86%", "72–92%", "51–95%"}
	paperUnloaded := []float64{89, 85, 113, 96, 129, 109, 122, 363}
	paperMaxLat := []string{"242–391", "182–303", "257–657", "238–546", "332–527", "238–406", "338–428", "699–1433"}

	r := &Result{
		ID:    "table1",
		Paper: "Table I",
		Title: "Quantitative memory performance comparison",
		Header: []string{"platform", "theor. BW", "saturated range", "paper",
			"STREAM range", "unloaded", "paper", "max latency", "paper"},
	}
	// All eight platforms characterize concurrently through the service's
	// bounded worker pool; repeats (fig2/fig3 already ran some) are cache
	// hits.
	scaled := make([]platform.Spec, len(specs))
	for i, spec := range specs {
		scaled[i] = scaleSpec(spec, env.Scale)
	}
	fams, err := env.referenceAll(scaled)
	if err != nil {
		return nil, err
	}
	for i, sp := range scaled {
		m := fams[i].Metrics()
		stream, err := workloads.StreamSuite(sp, workloads.Options{})
		if err != nil {
			return nil, err
		}
		stMin, stMax := stream[0].AppBWGBs, stream[0].AppBWGBs
		for _, st := range stream[1:] {
			if st.AppBWGBs < stMin {
				stMin = st.AppBWGBs
			}
			if st.AppBWGBs > stMax {
				stMax = st.AppBWGBs
			}
		}
		theor := sp.TheoreticalBandwidthGBs()
		r.Rows = append(r.Rows, []string{
			sp.Name,
			fmt.Sprintf("%.0f GB/s", theor),
			pct(m.SatLowFrac()) + "–" + pct(m.SatHighFrac()),
			paperSat[i],
			pct(stMin/theor) + "–" + pct(stMax/theor),
			fmt.Sprintf("%.0f ns", m.UnloadedLatencyNs),
			fmt.Sprintf("%.0f ns", paperUnloaded[i]),
			fmt.Sprintf("%.0f–%.0f ns", m.MaxLatencyMinNs, m.MaxLatencyMaxNs),
			paperMaxLat[i] + " ns",
		})
	}
	r.Notes = append(r.Notes,
		"Quick scale shrinks large platforms (cores and channels by the same factor); percentages of theoretical bandwidth remain comparable.",
		"Maximum latencies depend on total outstanding requests; the paper's absolute values depend on controller queue depths not public for these machines.")
	return r, nil
}
