// Package exp is the reproduction harness: one registered experiment per
// table and figure of the paper's evaluation. Each experiment runs at two
// scales — Quick (reduced sweeps and scaled-down platforms, for tests and
// benchmarks) and Full (the paper's configurations, for the CLI tools) —
// and produces a structured Result that renders as tables, ASCII figures
// and notes.
package exp

import (
	"context"
	"fmt"
	"io"
	"sort"

	"github.com/mess-sim/mess/internal/bench"
	"github.com/mess-sim/mess/internal/charz"
	"github.com/mess-sim/mess/internal/core"
	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/plot"
	"github.com/mess-sim/mess/internal/sim"
	"github.com/mess-sim/mess/internal/telemetry"
)

// Scale selects experiment fidelity.
type Scale int

const (
	// Quick shrinks sweeps and large platforms so the whole registry runs
	// in minutes; curve *shapes* and orderings are preserved.
	Quick Scale = iota
	// Full uses the paper's platform sizes and dense sweeps.
	Full
)

func (s Scale) String() string {
	if s == Quick {
		return "quick"
	}
	return "full"
}

// Bar is one labelled value of a bar-chart result.
type Bar struct {
	Label string
	Value float64
}

// Result is the structured outcome of an experiment.
type Result struct {
	ID       string
	Title    string
	Paper    string
	Families []*core.Family
	Header   []string
	Rows     [][]string
	Bars     []Bar
	BarUnit  string // format for bar values, e.g. "%.1f%%"
	Notes    []string
}

// Render writes the result as text: tables, curve plots, bars and notes.
func (r *Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "== %s (%s) — %s ==\n\n", r.ID, r.Paper, r.Title)
	if len(r.Header) > 0 {
		if err := plot.Table(w, r.Header, r.Rows); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, f := range r.Families {
		if !plot.Drawable(f) {
			fmt.Fprintf(w, "(family %q has no drawable points at this scale)\n\n", f.Label)
			continue
		}
		if err := plot.CurveFamily(w, f, 72, 20); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if len(r.Bars) > 0 {
		labels := make([]string, len(r.Bars))
		values := make([]float64, len(r.Bars))
		for i, b := range r.Bars {
			labels[i], values[i] = b.Label, b.Value
		}
		unit := r.BarUnit
		if unit == "" {
			unit = "%.2f"
		}
		if err := plot.Bars(w, r.Title, labels, values, unit, 44); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	return nil
}

// Env is the execution environment threaded through every experiment: the
// fidelity scale plus the shared characterization service. One Env driving
// a whole registry run (messexp -run all) performs each unique
// characterization exactly once — the service's content-addressed keys
// dedupe across experiments, not just within one.
type Env struct {
	Scale Scale
	Charz *charz.Service
	// Ctx, when set, is the context every characterization this environment
	// issues runs under — a CLI -timeout or SIGINT cancels the experiment's
	// reference sweeps at the next point boundary. nil means background.
	Ctx context.Context
	// Shards, when at least 2, asks every characterization this
	// environment runs to shard each measurement point across that many
	// engines (bench.Options.Shards). Execution-only: results are
	// byte-identical and cache keys unchanged, so sharded and unsharded
	// environments share the service's entries.
	Shards int
	// NoShard forces single-engine execution even when Shards is set —
	// the A/B kill switch for isolating the sharded runtime.
	NoShard bool
}

// NewEnv builds an environment. A nil service gets a fresh in-memory one,
// so standalone experiment runs still dedupe internally.
func NewEnv(s Scale, svc *charz.Service) *Env {
	if svc == nil {
		svc = charz.New(charz.Config{})
	}
	return &Env{Scale: s, Charz: svc}
}

// Context resolves the environment's context (background when unset).
func (env *Env) Context() context.Context {
	if env.Ctx != nil {
		return env.Ctx
	}
	return context.Background()
}

// Telemetry resolves the environment's observability bundle — the one its
// characterization service carries (nil when the service is
// uninstrumented). Experiment drivers use it to put experiment-lifecycle
// spans and log lines in the same trace and stream as the sweeps the
// service runs on their behalf.
func (env *Env) Telemetry() *telemetry.Set { return env.Charz.Telemetry() }

// reference returns the platform's measured reference family — the curves
// of the detailed DRAM model standing in for "actual hardware" — via the
// characterization service (cached, deduplicated across experiments).
func (env *Env) reference(spec platform.Spec) (*core.Family, error) {
	art, err := env.Charz.CharacterizeContext(env.Context(), charz.Request{Spec: spec, Options: env.benchOptions()})
	if err != nil {
		return nil, err
	}
	return art.Family, nil
}

// benchOptions resolves the environment's sweep settings: the scale's
// defaults plus the execution-only sharding knob.
func (env *Env) benchOptions() bench.Options {
	opt := benchOptions(env.Scale)
	opt.Shards = env.Shards
	opt.NoShard = env.NoShard
	return opt
}

// referenceAll resolves the reference families of several platforms
// concurrently through the service's bounded worker pool.
func (env *Env) referenceAll(specs []platform.Spec) ([]*core.Family, error) {
	reqs := make([]charz.Request, len(specs))
	for i, spec := range specs {
		reqs[i] = charz.Request{Spec: spec, Options: env.benchOptions()}
	}
	arts, err := env.Charz.CharacterizeAllContext(env.Context(), reqs)
	if err != nil {
		return nil, err
	}
	fams := make([]*core.Family, len(arts))
	for i, art := range arts {
		fams[i] = art.Family
	}
	return fams, nil
}

// Experiment is a registered reproduction target.
type Experiment struct {
	ID    string
	Paper string // the table/figure it reproduces
	Title string
	Run   func(env *Env) (*Result, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments in registration order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// scaleSpec shrinks a platform for Quick runs: cores and memory channels
// divided by the same factor, preserving the concurrency-to-bandwidth
// balance that determines the curve shape.
func scaleSpec(spec platform.Spec, s Scale) platform.Spec {
	if s == Full {
		return spec
	}
	factor := 1
	switch {
	case spec.Cores >= 96:
		factor = 8
	case spec.Cores >= 48:
		factor = 4
	case spec.Cores >= 16:
		factor = 2
	}
	if factor == 1 {
		return spec
	}
	out := spec
	out.Cores = spec.Cores / factor
	out.DRAM.Channels = spec.DRAM.Channels / factor
	if out.DRAM.Channels < 1 {
		out.DRAM.Channels = 1
	}
	if out.Cores < 2 {
		out.Cores = 2
	}
	out.Name = spec.Name + " (scaled)"
	return out
}

// benchOptions returns the sweep settings per scale.
func benchOptions(s Scale) bench.Options {
	if s == Quick {
		return bench.Options{
			Mixes:   []bench.Mix{{StorePercent: 0}, {StorePercent: 40}, {StorePercent: 100}},
			PacesNs: []float64{0, 2, 6, 16, 48, 128, 384},
			Warmup:  6 * sim.Microsecond,
			Measure: 18 * sim.Microsecond,
		}
	}
	var mixes []bench.Mix
	for p := 0; p <= 100; p += 10 {
		mixes = append(mixes, bench.Mix{StorePercent: p})
	}
	// Streaming-store kernels cover the write-heavy half of the space.
	for _, p := range []int{40, 70, 100} {
		mixes = append(mixes, bench.Mix{StorePercent: p, NonTemporal: true})
	}
	return bench.Options{
		Mixes:   mixes,
		PacesNs: []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768},
		Warmup:  20 * sim.Microsecond,
		Measure: 50 * sim.Microsecond,
	}
}

func pct(v float64) string { return fmt.Sprintf("%.0f%%", 100*v) }
