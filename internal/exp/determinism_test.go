package exp

import (
	"bytes"
	"encoding/json"
	"io"
	"sort"
	"strings"
	"testing"

	"github.com/mess-sim/mess/internal/bench"
	"github.com/mess-sim/mess/internal/charz"
	"github.com/mess-sim/mess/internal/cxl"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/sim"
	"github.com/mess-sim/mess/internal/telemetry"
)

// fig2QuickCSV runs the Quick fig2 experiment on a fresh (uncached,
// unshared) characterization service and renders every resulting family in
// the release CSV format.
func fig2QuickCSV(t *testing.T) []byte {
	t.Helper()
	env := NewEnv(Quick, charz.New(charz.Config{}))
	e, ok := ByID("fig2")
	if !ok {
		t.Fatal("fig2 not registered")
	}
	res, err := e.Run(env)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, fam := range res.Families {
		if err := fam.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestFig2ReleaseCSVDeterminism is the bit-exactness gate of the DRAM
// scheduler: the Quick fig2 sweep must produce byte-identical release CSVs
// across runs, and with decide-event fusion disabled. This is the contract
// manual diffing enforced during the PR-2/PR-3 refactors, promoted to a
// test so `go test ./...` catches any scheduler change that perturbs the
// curves — and any fusion bug, since fusion is legal exactly because it
// cannot change results.
func TestFig2ReleaseCSVDeterminism(t *testing.T) {
	first := fig2QuickCSV(t)
	if len(first) == 0 {
		t.Fatal("fig2 produced no CSV output")
	}
	second := fig2QuickCSV(t)
	if !bytes.Equal(first, second) {
		t.Fatalf("fig2 release CSVs differ between identical runs:\nrun1:\n%s\nrun2:\n%s", first, second)
	}

	// The same characterization with fusion disabled: the scheduler takes
	// only scheduled decide events, never the inline loop, and must land
	// on the same curves byte for byte.
	spec := scaleSpec(platform.Skylake(), Quick)
	fused, err := NewEnv(Quick, charz.New(charz.Config{})).reference(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.DRAM.NoFusion = true
	unfused, err := NewEnv(Quick, charz.New(charz.Config{})).reference(spec)
	if err != nil {
		t.Fatal(err)
	}
	var bufFused, bufUnfused bytes.Buffer
	if err := fused.WriteCSV(&bufFused); err != nil {
		t.Fatal(err)
	}
	if err := unfused.WriteCSV(&bufUnfused); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufFused.Bytes(), bufUnfused.Bytes()) {
		t.Fatalf("decide-event fusion changed the curves:\nfused:\n%s\nunfused:\n%s",
			bufFused.Bytes(), bufUnfused.Bytes())
	}
}

// referenceCSV characterizes the Quick-scaled Skylake reference on a fresh
// service with the given environment/spec tweaks and returns the CSV bytes.
func referenceCSV(t *testing.T, tweakEnv func(*Env), tweakSpec func(*platform.Spec)) []byte {
	t.Helper()
	spec := scaleSpec(platform.Skylake(), Quick)
	if tweakSpec != nil {
		tweakSpec(&spec)
	}
	env := NewEnv(Quick, charz.New(charz.Config{}))
	if tweakEnv != nil {
		tweakEnv(env)
	}
	fam, err := env.reference(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fam.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardedCharacterizationDeterminism is the bit-exactness gate of the
// sharded engine: characterizing on per-channel shard engines advanced
// concurrently under the conservative window barrier must land on the same
// release CSV, byte for byte, as the single-engine run — across repeated
// sharded runs, shard counts, the NoShard off-switch and with completion
// batching disabled. Sharding is legal exactly because it cannot change
// results; any divergence here is an ordering bug, not noise.
func TestShardedCharacterizationDeterminism(t *testing.T) {
	base := referenceCSV(t, nil, nil)
	if len(base) == 0 {
		t.Fatal("reference characterization produced no CSV output")
	}
	legs := []struct {
		name      string
		tweakEnv  func(*Env)
		tweakSpec func(*platform.Spec)
	}{
		{"sharded-4", func(env *Env) { env.Shards = 4 }, nil},
		{"sharded-4-again", func(env *Env) { env.Shards = 4 }, nil},
		{"sharded-2", func(env *Env) { env.Shards = 2 }, nil},
		{"noshard-override", func(env *Env) { env.Shards = 4; env.NoShard = true }, nil},
		{"sharded-nocompbatch", func(env *Env) { env.Shards = 4 },
			func(spec *platform.Spec) { spec.DRAM.NoCompBatch = true }},
	}
	for _, leg := range legs {
		got := referenceCSV(t, func(env *Env) {
			leg.tweakEnv(env)
		}, leg.tweakSpec)
		if !bytes.Equal(base, got) {
			t.Errorf("%s: release CSV differs from the unsharded run:\nunsharded:\n%s\n%s:\n%s",
				leg.name, base, leg.name, got)
		}
	}
}

// telemetryCSVAndSpans characterizes the Quick-scaled Skylake reference
// with telemetry fully enabled — registry, tracer and a verbose logger —
// and returns the release CSV plus the sorted names of every complete
// span the run recorded.
func telemetryCSVAndSpans(t *testing.T, shards int) ([]byte, []string, *telemetry.Set) {
	t.Helper()
	set := &telemetry.Set{
		Metrics: telemetry.NewRegistry(),
		Tracer:  telemetry.NewTracer(),
		Log:     telemetry.NewLogger(telemetry.LogConfig{Verbose: true, Output: io.Discard}),
	}
	csv := referenceCSV(t, func(env *Env) {
		env.Charz = charz.New(charz.Config{Telemetry: set})
		env.Shards = shards
	}, nil)
	var buf bytes.Buffer
	if err := set.Tracer.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	var names []string
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			names = append(names, e.Name)
		}
	}
	sort.Strings(names)
	return csv, names, set
}

// countSpans tallies the sorted span names by prefix.
func countSpans(names []string, prefix string) int {
	n := 0
	for _, name := range names {
		if strings.HasPrefix(name, prefix) {
			n++
		}
	}
	return n
}

// TestTelemetryEnabledDeterminism is the observability contract of the
// telemetry layer: with metrics, tracing and verbose logging all enabled —
// on both the single-engine and the sharded runtime — the release CSVs
// must stay byte-identical to the uninstrumented run, the recorded span
// structure must be deterministic across runs, and the taxonomy's three
// core span families (charz fill, bench point, barrier window) must
// actually be present.
func TestTelemetryEnabledDeterminism(t *testing.T) {
	base := referenceCSV(t, nil, nil)

	csv1, spans1, set := telemetryCSVAndSpans(t, 0)
	if !bytes.Equal(base, csv1) {
		t.Errorf("telemetry-enabled release CSV differs from the uninstrumented run:\nbase:\n%s\ninstrumented:\n%s", base, csv1)
	}
	if got := countSpans(spans1, "characterize "); got == 0 {
		t.Error("no charz fill span recorded")
	}
	if got := countSpans(spans1, "point "); got == 0 {
		t.Error("no bench sweep-point spans recorded")
	}
	snap := set.Metrics.Snapshot()
	if snap[`mess_bench_points_total`] == 0 {
		t.Error("mess_bench_points_total stayed 0 on an instrumented sweep")
	}
	if snap[`mess_charz_requests_total{source="run"}`] == 0 {
		t.Error("charz run counter stayed 0 on an instrumented characterization")
	}

	_, spans2, _ := telemetryCSVAndSpans(t, 0)
	if len(spans1) != len(spans2) || func() bool {
		for i := range spans1 {
			if spans1[i] != spans2[i] {
				return true
			}
		}
		return false
	}() {
		t.Errorf("span structure differs between identical runs:\nrun1: %v\nrun2: %v", spans1, spans2)
	}

	csvSharded, spansSharded, shardedSet := telemetryCSVAndSpans(t, 2)
	if !bytes.Equal(base, csvSharded) {
		t.Errorf("telemetry-enabled sharded release CSV differs from the uninstrumented run:\nbase:\n%s\nsharded:\n%s", base, csvSharded)
	}
	if got := countSpans(spansSharded, "window"); got == 0 {
		t.Error("no barrier-window spans recorded on the sharded leg")
	}
	if snap := shardedSet.Metrics.Snapshot(); snap["mess_sim_windows_total"] == 0 {
		t.Error("mess_sim_windows_total stayed 0 on a sharded sweep")
	}
}

// cxlCharacterizationCSV characterizes the Quick-scaled Skylake host
// against a CXL expander backend and returns the family's CSV bytes.
// With shards ≥ 2 the expander (and its device-side DDR system) runs on
// its own shard engine via Options.ShardedBackend; otherwise it shares
// the host's single engine.
func cxlCharacterizationCSV(t *testing.T, shards int) []byte {
	t.Helper()
	spec := scaleSpec(platform.Skylake(), Quick)
	cfg := cxl.Default()
	opt := benchOptions(Quick)
	opt.Parallelism = 2
	// The sharded leg is necessarily timed (issues cross shards with the
	// hop as delivery delay), and a timed hand-off accounts traffic at
	// send. Wrapping the single-engine expander in TimedOn makes the
	// reference leg timed too, so both legs count in-flight requests at
	// the same instant at the measurement-window boundaries.
	opt.Backend = func(eng *sim.Engine) mem.Backend {
		return &mem.TimedOn{Eng: eng, Inner: cxl.New(eng, cfg)}
	}
	if shards >= 2 {
		opt.Shards = shards
		hop := spec.CacheConfig().OnChipLatency / 2
		opt.ShardedBackend = func(group *sim.ShardGroup) mem.TimedBackend {
			dev, _ := cxl.NewShardedExpander(group, 0, 1, cfg, hop)
			return dev
		}
	}
	res, err := bench.Run(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Family.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCXLShardedCharacterizationDeterminism extends the bit-exactness
// gate to device shards: a whole characterization sweep against a CXL
// expander running on its own shard engine (through the
// Options.ShardedBackend seam) must land on the same release CSV, byte
// for byte, as the single-engine run — including with a third, idle
// shard, which under per-pair horizons places no bound on the others.
func TestCXLShardedCharacterizationDeterminism(t *testing.T) {
	base := cxlCharacterizationCSV(t, 0)
	if len(base) == 0 {
		t.Fatal("CXL characterization produced no CSV output")
	}
	for _, shards := range []int{2, 3} {
		got := cxlCharacterizationCSV(t, shards)
		if !bytes.Equal(base, got) {
			t.Errorf("shards=%d: CXL release CSV differs from the unsharded run:\nunsharded:\n%s\nsharded:\n%s",
				shards, base, got)
		}
	}
}
