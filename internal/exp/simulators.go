package exp

import (
	"context"
	"fmt"

	"github.com/mess-sim/mess/internal/bench"
	"github.com/mess-sim/mess/internal/charz"
	"github.com/mess-sim/mess/internal/core"
	"github.com/mess-sim/mess/internal/dram"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/memmodel"
	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/sim"
	"github.com/mess-sim/mess/internal/trace"
)

// Figs. 4–7: Mess characterization of CPU-simulator memory models and
// trace-driven cycle-accurate simulators.

func init() {
	register(Experiment{
		ID:    "fig4",
		Paper: "Fig. 4",
		Title: "Graviton 3 vs gem5 memory models (simple, internal DDR, Ramulator 2)",
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "fig5",
		Paper: "Fig. 5",
		Title: "Skylake vs ZSim memory models (fixed, M/D/1, internal DDR, DRAMsim3, Ramulator)",
		Run:   runFig5,
	})
	register(Experiment{
		ID:    "fig6",
		Paper: "Fig. 6",
		Title: "Trace-driven cycle-accurate simulators vs actual curves",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "fig7",
		Paper: "Fig. 7",
		Title: "Row-buffer hit/empty/miss: actual vs DRAMsim3 vs Ramulator",
		Run:   runFig7,
	})
}

// modelFamily runs the Mess benchmark over the given memory model under
// the platform's unchanged CPU side. The model backend is deterministic
// given the spec, so the kind tag makes the run cacheable.
func modelFamily(env *Env, spec platform.Spec, kind memmodel.Kind) (*core.Family, error) {
	opt := benchOptions(env.Scale)
	opt.Backend = func(eng *sim.Engine) mem.Backend {
		m, err := memmodel.New(kind, eng, spec, nil)
		if err != nil {
			panic(err)
		}
		return m
	}
	art, err := env.Charz.CharacterizeContext(env.Context(), charz.Request{Spec: spec, Options: opt, Tag: "model:" + string(kind)})
	if err != nil {
		return nil, err
	}
	art.Family.Label = spec.Name + " + " + string(kind)
	return art.Family, nil
}

func runFig4(env *Env) (*Result, error) {
	spec := scaleSpec(platform.Gem5Graviton3(), env.Scale)
	actual, err := env.reference(spec)
	if err != nil {
		return nil, err
	}
	actual.Label = "Actual (reference model): " + spec.Name

	r := &Result{
		ID: "fig4", Paper: "Fig. 4",
		Title:  "Graviton 3 server vs gem5 memory models",
		Header: []string{"model", "unloaded [ns]", "max BW [GB/s]", "saturates?"},
	}
	r.Families = append(r.Families, actual)
	addRow := func(f *core.Family) {
		m := f.Metrics()
		saturates := "yes"
		if m.MaxLatencyMaxNs < 2*m.UnloadedLatencyNs {
			saturates = "no"
		}
		r.Rows = append(r.Rows, []string{f.Label,
			fmt.Sprintf("%.0f", m.UnloadedLatencyNs),
			fmt.Sprintf("%.0f", m.SatBWHighGBs), saturates})
	}
	addRow(actual)
	for _, kind := range []memmodel.Kind{memmodel.KindFixed, memmodel.KindInternalDDR, memmodel.KindRamulator2} {
		f, err := modelFamily(env, spec, kind)
		if err != nil {
			return nil, err
		}
		r.Families = append(r.Families, f)
		addRow(f)
	}
	r.Notes = append(r.Notes,
		"Paper findings encoded/reproduced: unrealistically low model latencies; Ramulator 2's bandwidth wall below half the measured system bandwidth (Fig. 4d).")
	return r, nil
}

func runFig5(env *Env) (*Result, error) {
	spec := scaleSpec(platform.ZSimSkylake(), env.Scale)
	actual, err := env.reference(spec)
	if err != nil {
		return nil, err
	}
	actual.Label = "Actual (reference model): " + spec.Name

	r := &Result{
		ID: "fig5", Paper: "Fig. 5",
		Title:  "Skylake server vs ZSim memory models",
		Header: []string{"model", "unloaded [ns]", "max BW [GB/s]", "max/theoretical"},
	}
	theor := spec.TheoreticalBandwidthGBs()
	addRow := func(f *core.Family) {
		m := f.Metrics()
		r.Rows = append(r.Rows, []string{f.Label,
			fmt.Sprintf("%.0f", m.UnloadedLatencyNs),
			fmt.Sprintf("%.0f", m.SatBWHighGBs),
			fmt.Sprintf("%.2f×", m.SatBWHighGBs/theor)})
	}
	r.Families = append(r.Families, actual)
	addRow(actual)
	kinds := []memmodel.Kind{
		memmodel.KindFixed, memmodel.KindMD1, memmodel.KindInternalDDR,
		memmodel.KindDRAMsim3, memmodel.KindRamulator,
	}
	for _, kind := range kinds {
		f, err := modelFamily(env, spec, kind)
		if err != nil {
			return nil, err
		}
		r.Families = append(r.Families, f)
		addRow(f)
	}
	r.Notes = append(r.Notes,
		"Fixed-latency and Ramulator exceed the theoretical bandwidth (no bandwidth model); the internal DDR model under-estimates the saturated range; DRAMsim3 never saturates (Sec. IV-B).")
	return r, nil
}

// runFig6 captures traces from the reference platform at each sweep point
// and replays them into the standalone cycle-accurate replicas.
func runFig6(env *Env) (*Result, error) {
	skl := scaleSpec(platform.ZSimSkylake(), env.Scale)
	g3 := scaleSpec(platform.Gem5Graviton3(), env.Scale)

	r := &Result{
		ID: "fig6", Paper: "Fig. 6",
		Title:  "Trace-driven cycle-accurate simulators",
		Header: []string{"simulator", "trace points", "max BW [GB/s]", "actual max BW [GB/s]"},
	}

	type target struct {
		name string
		spec platform.Spec
		mk   func(eng *sim.Engine) mem.Backend
	}
	targets := []target{
		{"Ramulator2 (trace-driven)", g3, func(eng *sim.Engine) mem.Backend { return memmodel.NewRamulator2Like(eng, g3) }},
		{"DRAMsim3 (trace-driven)", skl, func(eng *sim.Engine) mem.Backend { return memmodel.NewDRAMsim3Like(eng, skl) }},
		{"Ramulator (trace-driven)", skl, func(eng *sim.Engine) mem.Backend { return memmodel.NewRamulatorLike(eng, skl) }},
	}

	for _, tgt := range targets {
		fam, actualMax, err := traceDrivenFamily(env, tgt.spec, tgt.mk)
		if err != nil {
			return nil, err
		}
		fam.Label = tgt.name
		r.Families = append(r.Families, fam)
		n := 0
		for _, c := range fam.Curves {
			n += len(c.Points)
		}
		r.Rows = append(r.Rows, []string{tgt.name, fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", fam.Metrics().SatBWHighGBs), fmt.Sprintf("%.0f", actualMax)})
	}
	r.Notes = append(r.Notes,
		"Correct simulation would place every trace-driven point on the actual bandwidth–latency curves; the replicas land below them in latency and, for Ramulator 2, hit a bandwidth wall at less than half the actual maximum (Sec. IV-D).")
	return r, nil
}

// traceDrivenFamily captures per-point traces on the reference platform and
// replays each into a fresh standalone model instance. Capture runs stay on
// bench.Run directly: the capturing backend accumulates state per run, so a
// cached replay would be meaningless.
func traceDrivenFamily(env *Env, spec platform.Spec, mk func(eng *sim.Engine) mem.Backend) (*core.Family, float64, error) {
	opt := benchOptions(env.Scale)
	if env.Scale == Full {
		// Trace capture is memory-hungry; thin the pacing ladder.
		opt.PacesNs = []float64{0, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	} else {
		// The default quick ladder leaves the replayed curves too sparse to
		// draw meaningfully (a replica curve can survive with the bare
		// 2-point minimum): densify the sweep so every mix replays enough
		// valid points for the figure to render its shape.
		opt.PacesNs = []float64{0, 1, 2, 4, 6, 10, 16, 24, 48, 96, 192, 384}
	}
	actual, err := env.reference(spec)
	if err != nil {
		return nil, 0, err
	}

	fam := &core.Family{
		Label:         spec.Name,
		TheoreticalBW: spec.TheoreticalBandwidthGBs(),
	}
	for _, mix := range opt.Mixes {
		var pts []core.Point
		var ratioSum float64
		for i := len(opt.PacesNs) - 1; i >= 0; i-- { // ascending pressure
			pace := opt.PacesNs[i]
			tr, err := captureTrace(env.Context(), spec, opt, mix, pace)
			if err != nil {
				return nil, 0, err
			}
			// Discard only truly empty captures: short quick-scale windows
			// at heavy pacing legitimately record few transactions, and a
			// few dozen replayed requests still yield a valid (BW, latency)
			// point. The old threshold of 100 silently starved the figure
			// at Quick scale.
			if len(tr.Records) < 32 {
				continue
			}
			eng := sim.New()
			model := mk(eng)
			rep := trace.Replay(eng, model, tr)
			if rep.Reads == 0 {
				continue
			}
			pts = append(pts, core.Point{BW: rep.BWGBs, Latency: rep.ReadLatNs})
			ratioSum += rep.ReadRatio
		}
		pts = core.SanitizePoints(pts)
		if len(pts) < 2 {
			continue
		}
		fam.Curves = append(fam.Curves, core.Curve{ReadRatio: ratioSum / float64(len(pts)), Points: pts})
	}
	fam.Sort()
	return fam, actual.Metrics().SatBWHighGBs, nil
}

// captureTrace runs one benchmark point on the reference platform with a
// capturing wrapper around the memory system.
func captureTrace(ctx context.Context, spec platform.Spec, opt bench.Options, mix bench.Mix, paceNs float64) (*trace.Trace, error) {
	var cap *trace.Capture
	o := opt
	o.Mixes = []bench.Mix{mix}
	o.PacesNs = []float64{paceNs}
	o.Parallelism = 1
	o.Backend = func(eng *sim.Engine) mem.Backend {
		cap = trace.NewCapture(eng, dram.New(eng, spec.DRAM), 400000)
		return cap
	}
	if _, err := bench.RunContext(ctx, spec, o); err != nil {
		return nil, err
	}
	return &cap.T, nil
}

func runFig7(env *Env) (*Result, error) {
	spec := scaleSpec(platform.ZSimSkylake(), env.Scale)
	opt := benchOptions(env.Scale)
	opt.Mixes = []bench.Mix{{StorePercent: 0}, {StorePercent: 100}}

	r := &Result{
		ID: "fig7", Paper: "Fig. 7",
		Title:  "Row-buffer statistics under load: actual vs DRAMsim3 vs Ramulator",
		Header: []string{"system", "traffic", "BW [GB/s]", "hit", "empty", "miss"},
	}

	run := func(name, tag string, backend mem.BackendFactory) error {
		o := opt
		o.Backend = backend
		art, err := env.Charz.CharacterizeContext(env.Context(), charz.Request{Spec: spec, Options: o, Tag: tag, NeedSamples: true})
		if err != nil {
			return err
		}
		for _, sm := range art.Result.Samples {
			traffic := "100% read"
			if sm.Mix.StorePercent == 100 {
				traffic = "50/50 read/write"
			}
			r.Rows = append(r.Rows, []string{name, traffic,
				fmt.Sprintf("%.0f", sm.BWGBs),
				pct(sm.RowHit), pct(sm.RowEmpty), pct(sm.RowMiss)})
		}
		return nil
	}
	if err := run("actual (reference)", "", nil); err != nil {
		return nil, err
	}
	if err := run("DRAMsim3", "replica:dramsim3", func(eng *sim.Engine) mem.Backend { return memmodel.NewDRAMsim3Like(eng, spec) }); err != nil {
		return nil, err
	}
	if err := run("Ramulator", "replica:ramulator", func(eng *sim.Engine) mem.Backend { return memmodel.NewRamulatorLike(eng, spec) }); err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes,
		"Actual hardware: hits decay as load and write share grow (84/13/3% → ≈35% hits). DRAMsim3 pins 84–93% hits regardless of load; Ramulator matches reads but stays too high for write-heavy mixes (Fig. 7).")
	return r, nil
}
