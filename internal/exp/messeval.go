package exp

import (
	"fmt"
	"math"

	"github.com/mess-sim/mess/internal/charz"
	"github.com/mess-sim/mess/internal/core"
	"github.com/mess-sim/mess/internal/dram"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/memmodel"
	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/sim"
	"github.com/mess-sim/mess/internal/workloads"
)

// Figs. 10–13: the Mess analytical simulator integrated under the ZSim-like
// and gem5-like CPU configurations: curve agreement and IPC error.

func init() {
	register(Experiment{
		ID:    "fig10",
		Paper: "Fig. 10",
		Title: "ZSim+Mess bandwidth–latency curves (DDR4, DDR5, HBM2)",
		Run:   runFig10,
	})
	register(Experiment{
		ID:    "fig11",
		Paper: "Fig. 11",
		Title: "ZSim memory-model IPC error vs reference (STREAM, LMbench, multichase)",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "fig12",
		Paper: "Fig. 12",
		Title: "gem5+Mess bandwidth–latency curves (single-channel DDR5 and HBM2)",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "fig13",
		Paper: "Fig. 13",
		Title: "gem5 memory-model IPC error vs reference",
		Run:   runFig13,
	})
}

// messFamily runs the Mess benchmark with the Mess analytical simulator as
// the backend, fed with the platform's measured reference curves. The
// reference family is itself a pure function of (spec, scale options), so
// the model tag suffices for a stable cache identity.
func messFamily(env *Env, spec platform.Spec, ref *core.Family) (*core.Family, error) {
	opt := benchOptions(env.Scale)
	opt.Backend = func(eng *sim.Engine) mem.Backend {
		m, err := memmodel.New(memmodel.KindMess, eng, spec, ref)
		if err != nil {
			panic(err)
		}
		return m
	}
	art, err := env.Charz.CharacterizeContext(env.Context(), charz.Request{Spec: spec, Options: opt, Tag: "model:" + string(memmodel.KindMess)})
	if err != nil {
		return nil, err
	}
	art.Family.Label = spec.Name + " + Mess simulator"
	return art.Family, nil
}

// familyAgreement quantifies how closely a simulated family matches the
// reference: mean relative latency error sampled across each curve's
// common bandwidth domain.
func familyAgreement(ref, got *core.Family) float64 {
	var errSum float64
	var n int
	for _, rc := range ref.Curves {
		gc := got.Nearest(rc.ReadRatio)
		if gc == nil {
			continue
		}
		maxBW := math.Min(rc.MaxBW(), gc.MaxBW())
		for f := 0.1; f <= 0.9; f += 0.1 {
			bw := f * maxBW
			a := rc.LatencyAt(bw)
			b := gc.LatencyAt(bw)
			if a > 0 {
				errSum += math.Abs(b-a) / a
				n++
			}
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	return errSum / float64(n)
}

func runFig10(env *Env) (*Result, error) {
	variants := []platform.Spec{scaleSpec(platform.ZSimSkylake(), env.Scale)}
	if env.Scale == Full {
		// The paper's DDR5 (58 cores) and HBM2 (192 cores) ZSim scale-ups.
		ddr5 := platform.ZSimSkylake()
		ddr5.Name = "ZSim 58 cores, 8×DDR5-4800"
		ddr5.Cores = 58
		ddr5.DRAM = dram.DDR5(4800, 8, 2)
		ddr5.DRAM.CtrlLatency = sim.FromNanoseconds(8)
		ddr5.DRAM.IdleClose = 250 * sim.Nanosecond
		hbm := platform.ZSimSkylake()
		hbm.Name = "ZSim 192 cores, 32×HBM2"
		hbm.Cores = 192
		hbm.DRAM = dram.HBM2(32)
		hbm.DRAM.CtrlLatency = sim.FromNanoseconds(6)
		hbm.DRAM.IdleClose = 250 * sim.Nanosecond
		variants = append(variants, ddr5, hbm)
	}

	r := &Result{
		ID: "fig10", Paper: "Fig. 10",
		Title:  "ZSim + Mess simulator vs actual curves",
		Header: []string{"memory system", "curve agreement (mean rel. latency error)"},
	}
	for _, spec := range variants {
		ref, err := env.reference(spec)
		if err != nil {
			return nil, err
		}
		got, err := messFamily(env, spec, ref)
		if err != nil {
			return nil, err
		}
		agree := familyAgreement(ref, got)
		r.Families = append(r.Families, got)
		r.Rows = append(r.Rows, []string{spec.Name, fmt.Sprintf("%.1f%%", 100*agree)})
	}
	r.Notes = append(r.Notes,
		"The paper reports <1% unloaded-latency error, ≈3% maximum-latency error and 2% saturated-range error for ZSim+Mess (Sec. V-B.1).")
	return r, nil
}

// ipcErrors runs the evaluation suite on the reference and each model and
// reports the per-benchmark absolute IPC error plus averages.
func ipcErrors(env *Env, spec platform.Spec, kinds []memmodel.Kind) (*Result, error) {
	wopt := workloads.Options{}
	if env.Scale == Quick {
		wopt.Warmup = 5 * sim.Microsecond
		wopt.Measure = 20 * sim.Microsecond
	}
	ref, err := env.reference(spec)
	if err != nil {
		return nil, err
	}
	refResults, err := workloads.EvalSuite(spec, wopt)
	if err != nil {
		return nil, err
	}

	r := &Result{
		Header: []string{"model"},
	}
	for _, b := range refResults {
		r.Header = append(r.Header, b.Name)
	}
	r.Header = append(r.Header, "average")

	for _, kind := range kinds {
		kind := kind
		o := wopt
		o.Backend = func(eng *sim.Engine) mem.Backend {
			m, err := memmodel.New(kind, eng, spec, ref)
			if err != nil {
				panic(err)
			}
			return m
		}
		got, err := workloads.EvalSuite(spec, o)
		if err != nil {
			return nil, err
		}
		row := []string{string(kind)}
		var sum float64
		for i := range refResults {
			e := math.Abs(got[i].IPC-refResults[i].IPC) / refResults[i].IPC
			sum += e
			row = append(row, fmt.Sprintf("%.1f%%", 100*e))
		}
		avg := sum / float64(len(refResults))
		row = append(row, fmt.Sprintf("%.1f%%", 100*avg))
		r.Rows = append(r.Rows, row)
		r.Bars = append(r.Bars, Bar{Label: string(kind), Value: 100 * avg})
	}
	r.BarUnit = "%.1f%%"
	return r, nil
}

func runFig11(env *Env) (*Result, error) {
	spec := scaleSpec(platform.ZSimSkylake(), env.Scale)
	kinds := []memmodel.Kind{
		memmodel.KindFixed, memmodel.KindMD1, memmodel.KindInternalDDR,
		memmodel.KindDRAMsim3, memmodel.KindRamulator, memmodel.KindMess,
	}
	r, err := ipcErrors(env, spec, kinds)
	if err != nil {
		return nil, err
	}
	r.ID, r.Paper = "fig11", "Fig. 11"
	r.Title = "ZSim memory-model IPC error (absolute, vs reference platform)"
	r.Notes = append(r.Notes,
		"Paper: Mess averages 1.3%; M/D/1 and internal DDR follow; fixed-latency and Ramulator exceed 80% (Fig. 11). The ordering, not the absolute values, is the reproduction target.")
	return r, nil
}

func runFig12(env *Env) (*Result, error) {
	// 16 cores on a single DDR5-4800 channel / single HBM2 channel.
	// The gem5 Neoverse cores have moderate memory-level parallelism; with
	// a single channel, CPU-class MSHR depths would pin the system so deep
	// into saturation that the curves degenerate to their last point.
	ddr5 := platform.Gem5Graviton3()
	ddr5.Name = "gem5 16 cores, 1×DDR5-4800"
	ddr5.Cores = 16
	ddr5.MSHRs = 6
	ddr5.WriteBufs = 8
	ddr5.DRAM = dram.DDR5(4800, 1, 2)
	ddr5.DRAM.CtrlLatency = sim.FromNanoseconds(8)
	ddr5.DRAM.IdleClose = 250 * sim.Nanosecond

	hbm := platform.Gem5Graviton3()
	hbm.Name = "gem5 16 cores, 1×HBM2 channel"
	hbm.Cores = 16
	hbm.MSHRs = 6
	hbm.WriteBufs = 8
	hbm.DRAM = dram.HBM2(1)
	hbm.DRAM.CtrlLatency = sim.FromNanoseconds(6)
	hbm.DRAM.IdleClose = 250 * sim.Nanosecond

	r := &Result{
		ID: "fig12", Paper: "Fig. 12",
		Title:  "gem5 + Mess simulator, single-channel configurations",
		Header: []string{"memory system", "curve agreement (mean rel. latency error)"},
	}
	for _, spec := range []platform.Spec{ddr5, hbm} {
		ref, err := env.reference(spec)
		if err != nil {
			return nil, err
		}
		got, err := messFamily(env, spec, ref)
		if err != nil {
			return nil, err
		}
		r.Families = append(r.Families, got)
		r.Rows = append(r.Rows, []string{spec.Name, fmt.Sprintf("%.1f%%", 100*familyAgreement(ref, got))})
	}
	r.Notes = append(r.Notes,
		"The paper runs single-channel gem5 configurations because full-system cycle-accurate sweeps would take years; scaled to 8 channels the curves match the Graviton 3 measurements (Sec. V-B.2).")
	return r, nil
}

func runFig13(env *Env) (*Result, error) {
	spec := scaleSpec(platform.Gem5Graviton3(), env.Scale)
	kinds := []memmodel.Kind{
		memmodel.KindFixed, memmodel.KindInternalDDR,
		memmodel.KindRamulator2, memmodel.KindMess,
	}
	r, err := ipcErrors(env, spec, kinds)
	if err != nil {
		return nil, err
	}
	r.ID, r.Paper = "fig13", "Fig. 13"
	r.Title = "gem5 memory-model IPC error (absolute, vs reference platform)"
	r.Notes = append(r.Notes,
		"Paper: simple memory 30%, internal DDR 15%, Ramulator 2 52%, Mess 3% (Fig. 13). The reproduction target is Mess lowest by a wide margin; the fixed model errs far more here than gem5's SimpleMemory, which throttles bandwidth internally.")
	return r, nil
}
