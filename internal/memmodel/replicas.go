package memmodel

import (
	"math"

	"github.com/mess-sim/mess/internal/dram"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/sim"
)

// bwTracker estimates the recent injected bandwidth with a windowed
// accumulator, used by the behavioural replicas whose latency depends on
// load.
type bwTracker struct {
	window   sim.Time
	winStart sim.Time
	winBytes uint64
	rdBytes  uint64
	lastBW   float64
	lastRd   float64
}

func newBWTracker(window sim.Time) *bwTracker {
	return &bwTracker{window: window, lastRd: 1}
}

func (t *bwTracker) observe(now sim.Time, op mem.Op, bytes int) {
	t.winBytes += uint64(bytes)
	if op == mem.Read {
		t.rdBytes += uint64(bytes)
	}
	if now-t.winStart >= t.window {
		dur := now - t.winStart
		t.lastBW = float64(t.winBytes) / dur.Seconds() / 1e9
		if t.winBytes > 0 {
			t.lastRd = float64(t.rdBytes) / float64(t.winBytes)
		}
		t.winStart = now
		t.winBytes = 0
		t.rdBytes = 0
	}
}

// midness is 1 for balanced-intermediate read ratios (≈0.75 with regular
// stores) and 0 for dominantly-read or dominantly-write traffic. The paper
// observes both DRAMsim3 and Ramulator giving their *highest* hit rates to
// dominant-direction traffic and their lowest to intermediate mixes
// (Sec. IV-D).
func midness(readRatio float64) float64 {
	d := math.Abs(readRatio-0.75) / 0.25
	if d > 1 {
		d = 1
	}
	return 1 - d
}

// DRAMsim3Like is the behavioural replica of trace-driven DRAMsim3,
// calibrated against Figs. 6b and 7 of the paper:
//   - base read latency ≈ 55–68 ns depending on the traffic mix (curves for
//     different ratios are spread and intertwined across the whole range);
//   - latency rises linearly with bandwidth — no saturation knee at all;
//   - a latency peak around 2–5 GB/s (the paper links it to anomalously low
//     row-buffer hit rates at that load);
//   - bandwidth caps at ≈88% of the bus peak (113 of 128 GB/s);
//   - row-buffer hit rates stuck at 84–93% regardless of load, highest for
//     dominant-direction traffic.
type DRAMsim3Like struct {
	eng     *sim.Engine
	svc     sim.Time // FIFO service per request: caps bandwidth
	free    []sim.Time
	chn     int
	peak    float64
	track   *bwTracker
	rowRand uint64
	rows    dram.RowStats
}

// NewDRAMsim3Like builds the replica for the spec's memory system.
func NewDRAMsim3Like(eng *sim.Engine, spec platform.Spec) *DRAMsim3Like {
	peak := spec.DRAM.PeakBandwidthGBs()
	cap := 0.88 * peak
	ch := spec.DRAM.Channels
	return &DRAMsim3Like{
		eng:     eng,
		svc:     sim.FromNanoseconds(float64(mem.LineSize) / (cap / float64(ch))),
		free:    make([]sim.Time, ch),
		chn:     ch,
		peak:    peak,
		track:   newBWTracker(sim.Microsecond),
		rowRand: 0x2545f4914f6cdd1d,
	}
}

// Access implements mem.Backend.
func (d *DRAMsim3Like) Access(req *mem.Request) {
	now := d.eng.Now()
	d.track.observe(now, req.Op, req.Bytes())
	d.recordRow()

	ch := int(req.Addr / mem.LineSize % uint64(d.chn))
	start := maxT(now, d.free[ch])
	d.free[ch] = start + d.svc

	req.CompleteAt(d.eng, start+sim.FromNanoseconds(d.latency()))
}

func (d *DRAMsim3Like) latency() float64 {
	bw := d.track.lastBW
	ratio := d.track.lastRd
	base := 55 + 13*midness(ratio) // intertwined mix-dependent bases
	linear := 45 * bw / d.peak     // linear rise, no saturation
	peakBump := 0.0                // the 2–5 GB/s anomaly
	if bw > 1 && bw < 6 {
		peakBump = 35 * (1 - math.Abs(bw-3.5)/2.5)
	}
	return base + linear + peakBump
}

// recordRow synthesizes the replica's row-buffer statistics: hit rates
// pinned at 84–93%, insensitive to load.
func (d *DRAMsim3Like) recordRow() {
	hit := 0.93 - 0.09*midness(d.track.lastRd)
	if d.track.lastBW > 1 && d.track.lastBW < 6 {
		hit = 0.33 // the low-bandwidth anomaly the paper correlates with the latency peak
	}
	d.rowRand ^= d.rowRand << 13
	d.rowRand ^= d.rowRand >> 7
	d.rowRand ^= d.rowRand << 17
	if float64(d.rowRand%1000)/1000 < hit {
		d.rows.Hits++
	} else {
		d.rows.Misses++
	}
}

// RowStats reports the synthesized row-buffer statistics.
func (d *DRAMsim3Like) RowStats() dram.RowStats { return d.rows }

// RamulatorLike replicates ZSim-driven Ramulator as measured in Fig. 5f: a
// flat ≈25 ns memory latency at every load and no bandwidth limit (the
// paper measures 1.8× the theoretical peak). Its row-buffer statistics
// (Fig. 7) track the hardware for read traffic but stay far too high for
// write-heavy mixes.
type RamulatorLike struct {
	eng     *sim.Engine
	lat     sim.Time
	peak    float64
	track   *bwTracker
	rowRand uint64
	rows    dram.RowStats
}

// NewRamulatorLike builds the replica.
func NewRamulatorLike(eng *sim.Engine, spec platform.Spec) *RamulatorLike {
	return &RamulatorLike{
		eng:     eng,
		lat:     sim.FromNanoseconds(25),
		peak:    spec.DRAM.PeakBandwidthGBs(),
		track:   newBWTracker(sim.Microsecond),
		rowRand: 0x9e3779b97f4a7c15,
	}
}

// Access implements mem.Backend.
func (r *RamulatorLike) Access(req *mem.Request) {
	now := r.eng.Now()
	r.track.observe(now, req.Op, req.Bytes())
	r.recordRow()
	req.CompleteAt(r.eng, now+r.lat)
}

func (r *RamulatorLike) recordRow() {
	ratio := r.track.lastRd
	util := r.track.lastBW / r.peak
	if util > 1 {
		util = 1
	}
	var hit float64
	if ratio > 0.8 {
		// Read-dominant: resembles hardware — hits decay with load.
		hit = 0.84 - 0.45*util
	} else {
		// Write-heavy: hit rates greatly exceed the actual ones.
		hit = 0.88 - 0.05*util
	}
	r.rowRand ^= r.rowRand << 13
	r.rowRand ^= r.rowRand >> 7
	r.rowRand ^= r.rowRand << 17
	roll := float64(r.rowRand%1000) / 1000
	switch {
	case roll < hit:
		r.rows.Hits++
	case roll < hit+0.10:
		r.rows.Empties++
	default:
		r.rows.Misses++
	}
}

// RowStats reports the synthesized row-buffer statistics.
func (r *RamulatorLike) RowStats() dram.RowStats { return r.rows }

// Ramulator2Like replicates Ramulator 2 as measured in Figs. 4d and 6a:
// unrealistically low latency in the linear region, then a near-vertical
// bandwidth wall at less than half the bandwidth the actual system
// sustains (126 GB/s against 292 GB/s measured on Graviton 3).
type Ramulator2Like struct {
	eng  *sim.Engine
	base sim.Time
	svc  sim.Time
	free []sim.Time
	chn  int
}

// NewRamulator2Like builds the replica.
func NewRamulator2Like(eng *sim.Engine, spec platform.Spec) *Ramulator2Like {
	peak := spec.DRAM.PeakBandwidthGBs()
	wall := 0.41 * peak
	ch := spec.DRAM.Channels
	return &Ramulator2Like{
		eng:  eng,
		base: sim.FromNanoseconds(30),
		svc:  sim.FromNanoseconds(float64(mem.LineSize) / (wall / float64(ch))),
		free: make([]sim.Time, ch),
		chn:  ch,
	}
}

// Access implements mem.Backend.
func (r *Ramulator2Like) Access(req *mem.Request) {
	now := r.eng.Now()
	ch := int(req.Addr / mem.LineSize % uint64(r.chn))
	start := maxT(now, r.free[ch])
	r.free[ch] = start + r.svc
	req.CompleteAt(r.eng, start+r.svc+r.base)
}
