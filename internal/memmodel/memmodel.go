// Package memmodel is the memory-model zoo: the baseline models the paper
// characterizes in Sec. IV, plus wrappers for the detailed DRAM model and
// the Mess analytical simulator, all behind one constructor.
//
// The external cycle-accurate simulators (DRAMsim3, Ramulator, Ramulator 2)
// are not ported; each is represented by a behavioural replica that encodes
// the *measured pathology the paper reports for it* — unrealistically low
// base latency, missing saturation, inflated row-buffer hit rates, an early
// bandwidth wall. The Mess methodology only observes models through their
// bandwidth–latency behaviour, so replicas that reproduce those behaviours
// reproduce the paper's findings. Each replica's doc comment cites the
// figure it is calibrated against.
package memmodel

import (
	"fmt"

	"github.com/mess-sim/mess/internal/core"
	"github.com/mess-sim/mess/internal/dram"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/messsim"
	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/sim"
)

// Kind names a memory model.
type Kind string

const (
	KindFixed       Kind = "fixed"        // fixed-latency, unlimited bandwidth
	KindMD1         Kind = "md1"          // M/D/1 queue per channel
	KindInternalDDR Kind = "internal-ddr" // simplified closed-page DDR
	KindDRAMsim3    Kind = "dramsim3"     // DRAMsim3 behavioural replica
	KindRamulator   Kind = "ramulator"    // Ramulator behavioural replica
	KindRamulator2  Kind = "ramulator2"   // Ramulator 2 behavioural replica
	KindReference   Kind = "reference"    // detailed DRAM model (stands in for hardware)
	KindMess        Kind = "mess"         // Mess analytical simulator
)

// Kinds lists every model in zoo order.
func Kinds() []Kind {
	return []Kind{KindFixed, KindMD1, KindInternalDDR, KindDRAMsim3, KindRamulator, KindRamulator2, KindReference, KindMess}
}

// New builds the model of the given kind for the platform spec. The Mess
// kind additionally needs the measured curve family.
func New(kind Kind, eng *sim.Engine, spec platform.Spec, fam *core.Family) (mem.Backend, error) {
	switch kind {
	case KindFixed:
		return NewFixed(eng, sim.FromNanoseconds(spec.UnloadedLatencyNs-spec.OnChipLatency.Nanoseconds())), nil
	case KindMD1:
		return NewMD1(eng, spec), nil
	case KindInternalDDR:
		return NewInternalDDR(eng, spec), nil
	case KindDRAMsim3:
		return NewDRAMsim3Like(eng, spec), nil
	case KindRamulator:
		return NewRamulatorLike(eng, spec), nil
	case KindRamulator2:
		return NewRamulator2Like(eng, spec), nil
	case KindReference:
		return dram.New(eng, spec.DRAM), nil
	case KindMess:
		if fam == nil {
			return nil, fmt.Errorf("memmodel: the mess model needs a curve family")
		}
		return messsim.New(eng, messsim.Config{
			Family:       fam,
			CPULatencyNs: spec.OnChipLatency.Nanoseconds(),
		}), nil
	default:
		return nil, fmt.Errorf("memmodel: unknown model kind %q", kind)
	}
}

// Fixed serves every request after a constant latency with no bandwidth
// limit — ZSim's fixed-latency model. The paper measures it delivering
// 342 GB/s on a 128 GB/s system, 2.7× the theoretical peak (Fig. 5b).
type Fixed struct {
	eng     *sim.Engine
	Latency sim.Time
}

// NewFixed builds a fixed-latency model.
func NewFixed(eng *sim.Engine, latency sim.Time) *Fixed {
	if latency < 0 {
		latency = 0
	}
	return &Fixed{eng: eng, Latency: latency}
}

// Access implements mem.Backend.
func (f *Fixed) Access(req *mem.Request) {
	req.CompleteAt(f.eng, f.eng.Now()+f.Latency)
}

// MD1 is ZSim's M/D/1 queue model: one deterministic-service FIFO per
// channel plus a base latency. It models the linear region well; the
// saturated region and the read/write differentiation are off (Fig. 5c) —
// the queue saturates abruptly rather than with the device's gradual knee,
// and a write costs the same as a read.
type MD1 struct {
	eng      *sim.Engine
	base     sim.Time
	svc      sim.Time
	channels int
	free     []sim.Time
}

// NewMD1 derives the channel count and service rate from the spec.
func NewMD1(eng *sim.Engine, spec platform.Spec) *MD1 {
	ch := spec.DRAM.Channels
	perChan := spec.DRAM.PeakBandwidthGBs() / float64(ch)
	memLat := spec.UnloadedLatencyNs - spec.OnChipLatency.Nanoseconds() - float64(mem.LineSize)/perChan
	if memLat < 1 {
		memLat = 1
	}
	return &MD1{
		eng:      eng,
		base:     sim.FromNanoseconds(memLat),
		svc:      sim.FromNanoseconds(float64(mem.LineSize) / perChan),
		channels: ch,
		free:     make([]sim.Time, ch),
	}
}

// Access implements mem.Backend.
func (m *MD1) Access(req *mem.Request) {
	now := m.eng.Now()
	ch := int(req.Addr / mem.LineSize % uint64(m.channels))
	start := m.free[ch]
	if start < now {
		start = now
	}
	m.free[ch] = start + m.svc
	req.CompleteAt(m.eng, start+m.svc+m.base)
}
