package memmodel

import (
	"testing"

	"github.com/mess-sim/mess/internal/core"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/sim"
)

func spec() platform.Spec { return platform.ZSimSkylake() }

// drive keeps depth reads outstanding for dur and returns (bw GB/s, mean ns).
func driveModel(eng *sim.Engine, b mem.Backend, depth int, dur sim.Time) (float64, float64) {
	completed := 0
	var latSum sim.Time
	var line uint64
	var issue func()
	issue = func() {
		// Staggered stream bases: the 97-line offset avoids bank
		// aliasing in the replicas' modulo address mapping.
		addr := (line%64)*(1<<28+97*64) + (line/64)*mem.LineSize
		line++
		start := eng.Now()
		b.Access(&mem.Request{Addr: addr, Op: mem.Read, Done: func(at sim.Time, _ *mem.Request) {
			completed++
			latSum += at - start
			if eng.Now() < dur {
				issue()
			}
		}})
	}
	for i := 0; i < depth; i++ {
		issue()
	}
	eng.RunUntil(dur)
	if completed == 0 {
		return 0, 0
	}
	return float64(completed*mem.LineSize) / dur.Seconds() / 1e9,
		(latSum / sim.Time(completed)).Nanoseconds()
}

func TestNewAllKinds(t *testing.T) {
	fam := core.NewSynthetic(core.SyntheticSpec{Label: "zoo"})
	for _, kind := range Kinds() {
		eng := sim.New()
		m, err := New(kind, eng, spec(), fam)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		var done bool
		m.Access(&mem.Request{Addr: 64, Op: mem.Read, Done: func(_ sim.Time, _ *mem.Request) { done = true }})
		eng.RunUntil(10 * sim.Microsecond)
		if !done {
			t.Fatalf("%s never completed a read", kind)
		}
	}
}

func TestMessKindNeedsFamily(t *testing.T) {
	if _, err := New(KindMess, sim.New(), spec(), nil); err == nil {
		t.Fatal("mess model accepted nil family")
	}
	if _, err := New(Kind("bogus"), sim.New(), spec(), nil); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestFixedUnlimitedBandwidth(t *testing.T) {
	eng := sim.New()
	m := NewFixed(eng, sim.FromNanoseconds(45))
	bw, lat := driveModel(eng, m, 512, 100*sim.Microsecond)
	theor := spec().TheoreticalBandwidthGBs()
	if bw < 2*theor {
		t.Fatalf("fixed model bandwidth %.0f GB/s does not exceed theoretical %.0f — paper measures 2.7×", bw, theor)
	}
	if lat != 45 {
		t.Fatalf("fixed latency %.1f, want 45", lat)
	}
}

func TestMD1LinearThenSaturates(t *testing.T) {
	s := spec()
	light := func() (float64, float64) {
		eng := sim.New()
		return driveModel(eng, NewMD1(eng, s), 4, 100*sim.Microsecond)
	}
	heavy := func() (float64, float64) {
		eng := sim.New()
		return driveModel(eng, NewMD1(eng, s), 1024, 100*sim.Microsecond)
	}
	_, lightLat := light()
	heavyBW, heavyLat := heavy()
	theor := s.TheoreticalBandwidthGBs()
	if heavyBW > theor*1.01 {
		t.Fatalf("M/D/1 bandwidth %.0f exceeds theoretical %.0f", heavyBW, theor)
	}
	if heavyBW < theor*0.9 {
		t.Fatalf("M/D/1 saturated bandwidth %.0f too far below theoretical %.0f", heavyBW, theor)
	}
	if heavyLat < 2*lightLat {
		t.Fatalf("M/D/1 queueing missing: %.0f → %.0f ns", lightLat, heavyLat)
	}
}

func TestInternalDDRUnderestimatesBandwidth(t *testing.T) {
	// Per-stream closed loops (sequential lines, bounded MLP per stream)
	// reproduce how cores actually drive the model; idealized round-robin
	// arrival would hide the limited reordering that caps it.
	s := spec()
	eng := sim.New()
	m := NewInternalDDR(eng, s)
	dur := 200 * sim.Microsecond
	completed := 0
	for st := 0; st < 24; st++ {
		next := uint64(st) * (1<<28 + 97*64)
		var issue func()
		issue = func() {
			addr := next
			next += mem.LineSize
			m.Access(&mem.Request{Addr: addr, Op: mem.Read, Done: func(_ sim.Time, _ *mem.Request) {
				completed++
				if eng.Now() < dur {
					issue()
				}
			}})
		}
		for i := 0; i < 16; i++ {
			issue()
		}
	}
	eng.RunUntil(dur)
	bw := float64(completed*mem.LineSize) / dur.Seconds() / 1e9
	theor := s.TheoreticalBandwidthGBs()
	// Paper: 69–93 GB/s of a 128 GB/s system (54–73%).
	if bw > 0.85*theor {
		t.Fatalf("internal DDR bandwidth %.0f not under-estimated (theoretical %.0f)", bw, theor)
	}
	if bw < 0.3*theor {
		t.Fatalf("internal DDR bandwidth %.0f implausibly low", bw)
	}
}

func TestInternalDDRPenalizesWrites(t *testing.T) {
	s := spec()
	run := func(writeEvery int) float64 {
		eng := sim.New()
		m := NewInternalDDR(eng, s)
		completed := 0
		var line uint64
		dur := 100 * sim.Microsecond
		var issue func()
		issue = func() {
			op := mem.Read
			if writeEvery > 0 && line%uint64(writeEvery) == 0 {
				op = mem.Write
			}
			addr := (line%64)*(1<<28+97*64) + line/64*mem.LineSize
			line++
			m.Access(&mem.Request{Addr: addr, Op: op, Done: func(_ sim.Time, _ *mem.Request) {
				completed++
				if eng.Now() < dur {
					issue()
				}
			}})
		}
		for i := 0; i < 256; i++ {
			issue()
		}
		eng.RunUntil(dur)
		return float64(completed*mem.LineSize) / dur.Seconds() / 1e9
	}
	readsOnly := run(0)
	mixed := run(2)
	if mixed > readsOnly*0.9 {
		t.Fatalf("write penalty missing: reads %.0f vs mixed %.0f GB/s", readsOnly, mixed)
	}
}

func TestDRAMsim3NoSaturationAndCappedBW(t *testing.T) {
	s := spec()
	eng := sim.New()
	m := NewDRAMsim3Like(eng, s)
	// Depth 256 matches the outstanding-line budget of the ZSim Skylake
	// cores that drive the replica in the paper's experiments. (At
	// absurd depths any bandwidth-capped model must show Little's-law
	// queueing; the paper's curves were measured below that regime.)
	bw, lat := driveModel(eng, m, 256, 200*sim.Microsecond)
	theor := s.TheoreticalBandwidthGBs()
	if bw > 0.92*theor {
		t.Fatalf("DRAMsim3 replica bandwidth %.0f above its 88%% cap of %.0f", bw, theor)
	}
	if bw < 0.8*theor {
		t.Fatalf("DRAMsim3 replica bandwidth %.0f below its cap — it should reach it linearly", bw)
	}
	// No saturation knee: latency stays within the linear band even at
	// the bandwidth cap (paper Fig. 6b: ≈110–130 ns), far below what the
	// reference system shows when saturated (≈400+ ns).
	if lat > 250 {
		t.Fatalf("DRAMsim3 replica latency %.0f ns shows a saturation knee it should not have", lat)
	}
	hit, _, _ := m.RowStats().Ratios()
	if hit < 0.7 {
		t.Fatalf("DRAMsim3 replica hit rate %.2f not pinned high", hit)
	}
}

func TestRamulatorFlatLatency(t *testing.T) {
	s := spec()
	eng := sim.New()
	m := NewRamulatorLike(eng, s)
	bwLight, latLight := driveModel(eng, m, 4, 50*sim.Microsecond)
	eng2 := sim.New()
	m2 := NewRamulatorLike(eng2, s)
	bwHeavy, latHeavy := driveModel(eng2, m2, 2048, 50*sim.Microsecond)
	if latLight != 25 || latHeavy != 25 {
		t.Fatalf("Ramulator replica latency %v/%v, want flat 25 ns", latLight, latHeavy)
	}
	if bwHeavy < s.TheoreticalBandwidthGBs()*1.5 {
		t.Fatalf("Ramulator replica heavy bandwidth %.0f should exceed theoretical ×1.5 (paper: 1.8×)", bwHeavy)
	}
	_ = bwLight
}

func TestRamulator2BandwidthWall(t *testing.T) {
	s := platform.Gem5Graviton3()
	eng := sim.New()
	m := NewRamulator2Like(eng, s)
	bw, _ := driveModel(eng, m, 2048, 100*sim.Microsecond)
	theor := s.TheoreticalBandwidthGBs()
	if bw > 0.45*theor {
		t.Fatalf("Ramulator 2 replica bandwidth %.0f above its wall (41%% of %.0f)", bw, theor)
	}
	if bw < 0.3*theor {
		t.Fatalf("Ramulator 2 replica bandwidth %.0f below its wall", bw)
	}
}

func TestMidnessShape(t *testing.T) {
	if midness(1.0) != 0 || midness(0.5) != 0 {
		t.Fatal("dominant traffic should have zero midness")
	}
	if midness(0.75) != 1 {
		t.Fatal("balanced-intermediate traffic should have midness 1")
	}
}
