package memmodel

import (
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/platform"
	"github.com/mess-sim/mess/internal/sim"
)

// InternalDDR is the "internal DDR model" that ships inside ZSim and gem5:
// a bank-aware but closed-page, FIFO-per-channel DDR approximation.
//
// Encoded pathologies, from Fig. 5d of the paper:
//   - every access pays the full ACT+CAS(+PRE) path (closed page), so the
//     model underestimates the saturated bandwidth (69–93 GB/s measured
//     against 92–116 GB/s on the real 128 GB/s system);
//   - writes are excessively penalized (per-write recovery on the bank and
//     a turnaround on every direction switch — no write batching), so
//     write-heavy curves spread far below their hardware counterparts;
//   - FIFO head-of-line blocking on a busy bank idles the channel, and
//     periodic refresh stalls produce latency spikes visible even in the
//     low-bandwidth region.
type InternalDDR struct {
	eng *sim.Engine

	channels int
	banks    int

	access   sim.Time // ACT+CAS service per access (closed page)
	burst    sim.Time
	wr       sim.Time
	turn     sim.Time
	refi     sim.Time
	rfc      sim.Time
	baseLat  sim.Time // controller + device pipe latency added to reads
	bankFree [][]sim.Time
	busFree  []sim.Time
	lastIsW  []bool

	queues  [][]*mem.Request
	pending []bool
	serveFn []func() // per channel, allocated once: the serve-resume event
}

// NewInternalDDR derives geometry and timing from the platform's DRAM
// configuration.
func NewInternalDDR(eng *sim.Engine, spec platform.Spec) *InternalDDR {
	d := spec.DRAM
	m := &InternalDDR{
		eng:      eng,
		channels: d.Channels,
		banks:    d.Banks,
		access:   d.Timing.RCD + d.Timing.CL,
		burst:    d.Timing.Burst,
		wr:       d.Timing.WR,
		turn:     d.Timing.WTR,
		refi:     d.Timing.REFI,
		rfc:      d.Timing.RFC,
		baseLat:  d.Timing.RCD + d.Timing.CL + d.Timing.Burst,
	}
	m.bankFree = make([][]sim.Time, d.Channels)
	for i := range m.bankFree {
		m.bankFree[i] = make([]sim.Time, d.Banks)
	}
	m.busFree = make([]sim.Time, d.Channels)
	m.lastIsW = make([]bool, d.Channels)
	m.queues = make([][]*mem.Request, d.Channels)
	m.pending = make([]bool, d.Channels)
	m.serveFn = make([]func(), d.Channels)
	for ch := 0; ch < d.Channels; ch++ {
		ch := ch
		m.serveFn[ch] = func() {
			m.pending[ch] = false
			m.serve(ch)
		}
	}
	return m
}

// Access implements mem.Backend.
func (m *InternalDDR) Access(req *mem.Request) {
	ch := int(req.Addr / mem.LineSize % uint64(m.channels))
	m.queues[ch] = append(m.queues[ch], req)
	m.serve(ch)
}

// serve processes the channel queue nearly in order: it may skip one
// blocked entry to reach a ready bank (the minimal reorder these simple
// models perform), but has none of FR-FCFS's row-hit awareness. Together
// with the small per-access scheduling bubble this pins the model between
// full head-of-line collapse and the reference's throughput — the 54–73%
// band of Fig. 5d.
func (m *InternalDDR) serve(ch int) {
	if m.pending[ch] || len(m.queues[ch]) == 0 {
		return
	}
	now := m.eng.Now()
	idx := 0
	horizon := maxT(now, m.busFree[ch])
	for i := 0; i < 2 && i < len(m.queues[ch]); i++ {
		b := int(m.queues[ch][i].Addr / mem.LineSize / uint64(m.channels) % uint64(m.banks))
		if m.bankFree[ch][b] <= horizon {
			idx = i
			break
		}
	}
	req := m.queues[ch][idx]
	m.queues[ch] = append(m.queues[ch][:idx], m.queues[ch][idx+1:]...)

	bank := int(req.Addr / mem.LineSize / uint64(m.channels) % uint64(m.banks))
	isW := req.Op == mem.Write

	start := maxT(now, m.bankFree[ch][bank])
	start = maxT(start, m.busFree[ch])
	if m.lastIsW[ch] != isW {
		start += m.turn
	}
	start = m.refreshAdjust(ch, start)

	busy := m.access + m.burst
	if isW {
		busy += m.wr // per-write recovery charged on the critical path
	}
	end := start + busy
	m.bankFree[ch][bank] = end
	// The data bus pipelines across banks, with a small per-access
	// scheduling bubble a real controller would hide.
	m.busFree[ch] = start + m.burst + m.access/16
	m.lastIsW[ch] = isW

	req.CompleteAt(m.eng, end)
	m.pending[ch] = true
	m.eng.Schedule(maxT(now, start), m.serveFn[ch])
}

// refreshAdjust stalls commands that land in a refresh window.
func (m *InternalDDR) refreshAdjust(ch int, t sim.Time) sim.Time {
	if m.refi <= 0 {
		return t
	}
	off := m.refi * sim.Time(ch+1) / sim.Time(m.channels+1)
	if t < off {
		return t
	}
	k := (t - off) / m.refi
	start := off + k*m.refi
	if t < start+m.rfc {
		return start + m.rfc
	}
	return t
}

func maxT(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
