package core

import (
	"fmt"
	"math"
)

// Metrics are the quantitative memory-system characteristics the paper
// derives from a curve family (Fig. 2 and Table I).
type Metrics struct {
	// UnloadedLatencyNs is the mean unloaded latency across curves.
	UnloadedLatencyNs float64
	// MaxLatencyMinNs..MaxLatencyMaxNs is the "maximum latency range":
	// across read/write compositions, the range of per-curve maximum
	// latencies.
	MaxLatencyMinNs float64
	MaxLatencyMaxNs float64
	// SatBWLowGBs..SatBWHighGBs is the "saturated bandwidth range": from
	// the saturation onset of the pure-read curve (where latency doubles
	// the unloaded value — the paper's Table I convention, consistent
	// with read-heavy workloads like HPCG sitting "in the saturated area"
	// well below it on mixed curves) to the highest bandwidth any
	// composition achieves.
	SatBWLowGBs  float64
	SatBWHighGBs float64
	// TheoreticalBWGBs is the system's peak bandwidth, for normalization.
	TheoreticalBWGBs float64
}

// SatLowFrac reports the saturated-range start as a fraction of the
// theoretical bandwidth (the "72%" in Table I's "72–91%").
func (m Metrics) SatLowFrac() float64 {
	if m.TheoreticalBWGBs == 0 {
		return 0
	}
	return m.SatBWLowGBs / m.TheoreticalBWGBs
}

// SatHighFrac reports the saturated-range end as a fraction of the
// theoretical bandwidth.
func (m Metrics) SatHighFrac() float64 {
	if m.TheoreticalBWGBs == 0 {
		return 0
	}
	return m.SatBWHighGBs / m.TheoreticalBWGBs
}

func (m Metrics) String() string {
	return fmt.Sprintf("unloaded %.0f ns, max latency %.0f–%.0f ns, saturated %.0f–%.0f GB/s (%.0f–%.0f%% of %.0f GB/s)",
		m.UnloadedLatencyNs, m.MaxLatencyMinNs, m.MaxLatencyMaxNs,
		m.SatBWLowGBs, m.SatBWHighGBs, 100*m.SatLowFrac(), 100*m.SatHighFrac(), m.TheoreticalBWGBs)
}

// Metrics derives the Table I quantities from the family.
func (f *Family) Metrics() Metrics {
	m := Metrics{TheoreticalBWGBs: f.TheoreticalBW}
	if len(f.Curves) == 0 {
		return m
	}
	m.MaxLatencyMinNs = math.Inf(1)
	var unloadedSum float64
	for i := range f.Curves {
		c := &f.Curves[i]
		unloadedSum += c.UnloadedLatency()
		if ml := c.MaxLatency(); ml < m.MaxLatencyMinNs {
			m.MaxLatencyMinNs = ml
		}
		if ml := c.MaxLatency(); ml > m.MaxLatencyMaxNs {
			m.MaxLatencyMaxNs = ml
		}
		if mb := c.MaxBW(); mb > m.SatBWHighGBs {
			m.SatBWHighGBs = mb
		}
	}
	m.SatBWLowGBs = f.Curves[len(f.Curves)-1].SaturationOnset()
	m.UnloadedLatencyNs = unloadedSum / float64(len(f.Curves))
	return m
}

// StressWeights control the memory stress score of Sec. VI-B: a weighted
// sum of the normalized latency position and the normalized curve
// inclination at the application's operating point.
type StressWeights struct {
	Latency float64
	Slope   float64
}

// DefaultStressWeights follow the paper's description: latency itself is
// "a good proxy of the system stress" (dominant term) while the
// inclination captures sensitivity to bandwidth changes.
var DefaultStressWeights = StressWeights{Latency: 0.7, Slope: 0.3}

// StressScore positions traffic (readRatio, bw) on the family and reports
// the memory stress score in [0,1]: 0 for an unloaded system, 1 at the
// right-most end of the curves.
func (f *Family) StressScore(readRatio, bw float64, w StressWeights) float64 {
	if len(f.Curves) == 0 {
		return 0
	}
	lat := f.LatencyAt(readRatio, bw)
	cur := f.Nearest(readRatio)
	unloaded := cur.UnloadedLatency()
	maxLat := cur.MaxLatency()
	latNorm := 0.0
	if maxLat > unloaded {
		latNorm = (lat - unloaded) / (maxLat - unloaded)
	}
	latNorm = clamp01(latNorm)

	slope := f.SlopeAt(readRatio, bw)
	maxSlope := cur.saturationSlope()
	slopeNorm := 0.0
	if maxSlope > 0 {
		slopeNorm = slope / maxSlope
	}
	slopeNorm = clamp01(slopeNorm)

	total := w.Latency + w.Slope
	if total <= 0 {
		return 0
	}
	return clamp01((w.Latency*latNorm + w.Slope*slopeNorm) / total)
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}
