package core

import "math"

// SyntheticSpec parameterizes a closed-form curve family with the canonical
// memory-system shape: a flat region at the unloaded latency, a queueing
// knee, and a saturation wall whose position depends on the read ratio.
// Synthetic families serve three purposes: property-based testing of the
// curve machinery, convergence testing of the Mess feedback controller
// against a known ground truth, and standing in for manufacturer-provided
// curves when no measurable device exists.
type SyntheticSpec struct {
	Label      string
	UnloadedNs float64
	PeakGBs    float64 // theoretical bandwidth
	// UtilAtReadRatio1 and UtilAtReadRatio05 set the maximum achievable
	// fraction of PeakGBs for pure-read and 50/50 traffic; other ratios
	// interpolate linearly. Typical hardware: 0.91 and 0.72.
	UtilAtReadRatio1  float64
	UtilAtReadRatio05 float64
	Ratios            []float64 // read ratios; default 0.50..1.00 step 0.10
	PointsPerCurve    int       // default 24
}

func (s *SyntheticSpec) withDefaults() SyntheticSpec {
	out := *s
	if out.UnloadedNs == 0 {
		out.UnloadedNs = 90
	}
	if out.PeakGBs == 0 {
		out.PeakGBs = 128
	}
	if out.UtilAtReadRatio1 == 0 {
		out.UtilAtReadRatio1 = 0.91
	}
	if out.UtilAtReadRatio05 == 0 {
		out.UtilAtReadRatio05 = 0.72
	}
	if len(out.Ratios) == 0 {
		out.Ratios = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	if out.PointsPerCurve == 0 {
		out.PointsPerCurve = 24
	}
	return out
}

// NewSynthetic builds the family described by spec.
func NewSynthetic(spec SyntheticSpec) *Family {
	s := spec.withDefaults()
	f := &Family{Label: s.Label, TheoreticalBW: s.PeakGBs}
	for _, r := range s.Ratios {
		// Interpolate achievable utilization across the ratio range.
		t := (r - 0.5) / 0.5
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		util := s.UtilAtReadRatio05 + t*(s.UtilAtReadRatio1-s.UtilAtReadRatio05)
		maxBW := util * s.PeakGBs
		c := Curve{ReadRatio: r}
		n := s.PointsPerCurve
		for i := 0; i < n; i++ {
			// Utilization sweep up to 95% of the achievable maximum —
			// measurements on real systems stop near there too.
			rho := 0.95 * float64(i) / float64(n-1)
			bw := rho * maxBW
			// M/D/1-flavoured latency growth over the unloaded base,
			// calibrated to the measured hardware shape: latency doubles
			// around 83% utilization and reaches ≈4.5× unloaded at the
			// measured maximum (cf. Skylake: 89 ns → 391 ns).
			lat := s.UnloadedNs * (1 + 0.12*rho + 0.21*math.Pow(rho, 4)/(1-rho))
			c.Points = append(c.Points, Point{BW: bw, Latency: lat})
		}
		f.Curves = append(f.Curves, c)
	}
	f.Sort()
	return f
}

// saneFloat reports whether v is a usable finite number.
func saneFloat(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
