// Package core implements the central abstraction of the Mess framework:
// the family of memory bandwidth–latency curves.
//
// One curve fixes a read/write traffic composition and traces memory access
// latency as a function of used memory bandwidth, from the unloaded system
// to full saturation. A family collects tens of such curves across the
// read-ratio range. Everything else in the framework consumes this type:
// the benchmark produces families, the Mess analytical simulator reads
// latencies off them, and the application profiler positions workload
// samples on them.
package core

import (
	"fmt"
	"math"
	"sort"
)

// Point is one measurement: used bandwidth (GB/s) against load-to-use
// memory access latency (ns).
type Point struct {
	BW      float64
	Latency float64
}

// Curve is a bandwidth–latency curve for one read/write composition.
// Points are ordered by increasing injected pressure, which is *not* always
// increasing bandwidth: past the saturation point some systems lose
// bandwidth while latency keeps growing (the paper's "wave-form", Sec. III).
type Curve struct {
	// ReadRatio is the fraction of memory traffic that is reads, in
	// [0,1]. Write-allocate systems map kernel store ratios into
	// [0.5, 1.0]; streaming stores reach below 0.5.
	ReadRatio float64
	Points    []Point
}

// Validate reports an error for a curve unusable by the simulator.
func (c *Curve) Validate() error {
	if len(c.Points) < 2 {
		return fmt.Errorf("core: curve (read ratio %.2f) needs ≥ 2 points, has %d", c.ReadRatio, len(c.Points))
	}
	if c.ReadRatio < 0 || c.ReadRatio > 1 {
		return fmt.Errorf("core: read ratio %.3f outside [0,1]", c.ReadRatio)
	}
	for i, p := range c.Points {
		if p.BW < 0 || p.Latency <= 0 || math.IsNaN(p.BW) || math.IsNaN(p.Latency) {
			return fmt.Errorf("core: curve (read ratio %.2f) point %d invalid: %+v", c.ReadRatio, i, p)
		}
	}
	return nil
}

// UnloadedLatency reports the latency of the lowest-bandwidth point.
func (c *Curve) UnloadedLatency() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	best := c.Points[0]
	for _, p := range c.Points[1:] {
		if p.BW < best.BW {
			best = p
		}
	}
	return best.Latency
}

// MaxLatency reports the highest latency on the curve.
func (c *Curve) MaxLatency() float64 {
	max := 0.0
	for _, p := range c.Points {
		if p.Latency > max {
			max = p.Latency
		}
	}
	return max
}

// MaxBW reports the highest bandwidth reached on the curve.
func (c *Curve) MaxBW() float64 {
	max := 0.0
	for _, p := range c.Points {
		if p.BW > max {
			max = p.BW
		}
	}
	return max
}

// LatencyAt reports the latency the curve predicts for the given bandwidth.
// Lookup walks the curve in pressure order and interpolates within the
// first segment that spans bw, so on wave-form curves the stable (lower-
// pressure) branch wins. Beyond the maximum measured bandwidth the final
// ascent is extrapolated, steeply: driving the system past its measured
// saturation must predict rapidly growing latency for the feedback
// controller to push back.
func (c *Curve) LatencyAt(bw float64) float64 {
	pts := c.Points
	if len(pts) == 0 {
		return 0
	}
	if len(pts) == 1 {
		return pts[0].Latency
	}
	if bw <= pts[0].BW {
		return pts[0].Latency
	}
	for i := 0; i+1 < len(pts); i++ {
		lo, hi := pts[i], pts[i+1]
		if (bw >= lo.BW && bw <= hi.BW) || (bw <= lo.BW && bw >= hi.BW) {
			return interp(lo, hi, bw)
		}
	}
	// Past the measured maximum: extrapolate from the saturation wall.
	maxBW := c.MaxBW()
	wall := c.saturationSlope()
	return c.MaxLatency() + (bw-maxBW)*wall
}

// saturationSlope estimates the latency growth per GB/s at the top of the
// curve, used for extrapolation. It is at least 2 ns per GB/s so that even
// families measured only in their linear region push back on overshoot.
func (c *Curve) saturationSlope() float64 {
	pts := c.Points
	n := len(pts)
	if n < 2 {
		return 2
	}
	a, b := pts[n-2], pts[n-1]
	dbw := math.Abs(b.BW - a.BW)
	dlat := math.Abs(b.Latency - a.Latency)
	slope := 2.0
	if dbw > 1e-9 {
		slope = dlat / dbw
	}
	if slope < 2 {
		slope = 2
	}
	return slope
}

// SlopeAt reports the local dLatency/dBW at bw (ns per GB/s), used by the
// stress score: steep segments mean the system is near saturation.
func (c *Curve) SlopeAt(bw float64) float64 {
	pts := c.Points
	if len(pts) < 2 {
		return 0
	}
	if bw <= pts[0].BW {
		bw = pts[0].BW
	}
	for i := 0; i+1 < len(pts); i++ {
		lo, hi := pts[i], pts[i+1]
		if (bw >= lo.BW && bw <= hi.BW) || (bw <= lo.BW && bw >= hi.BW) {
			dbw := hi.BW - lo.BW
			if math.Abs(dbw) < 1e-9 {
				return c.saturationSlope()
			}
			return math.Abs((hi.Latency - lo.Latency) / dbw)
		}
	}
	return c.saturationSlope()
}

// SaturationOnset reports the bandwidth at which latency first reaches
// 2× the unloaded latency — the paper's definition of where the saturated
// bandwidth range begins. If the curve never doubles, it reports the
// maximum bandwidth.
func (c *Curve) SaturationOnset() float64 {
	unloaded := c.UnloadedLatency()
	target := 2 * unloaded
	pts := c.Points
	for i := 0; i+1 < len(pts); i++ {
		lo, hi := pts[i], pts[i+1]
		if lo.Latency <= target && hi.Latency >= target {
			if math.Abs(hi.Latency-lo.Latency) < 1e-9 {
				return hi.BW
			}
			f := (target - lo.Latency) / (hi.Latency - lo.Latency)
			return lo.BW + f*(hi.BW-lo.BW)
		}
	}
	return c.MaxBW()
}

func interp(lo, hi Point, bw float64) float64 {
	dbw := hi.BW - lo.BW
	if math.Abs(dbw) < 1e-9 {
		return math.Max(lo.Latency, hi.Latency)
	}
	f := (bw - lo.BW) / dbw
	return lo.Latency + f*(hi.Latency-lo.Latency)
}

// SortPointsByPressure is a helper for curve builders: measurement sweeps
// produce points from slowest to fastest injection; this keeps them as
// given but removes exact duplicates and non-finite values.
func SanitizePoints(pts []Point) []Point {
	out := pts[:0]
	var last Point
	for i, p := range pts {
		if math.IsNaN(p.BW) || math.IsNaN(p.Latency) || math.IsInf(p.BW, 0) || math.IsInf(p.Latency, 0) {
			continue
		}
		if i > 0 && math.Abs(p.BW-last.BW) < 1e-9 && math.Abs(p.Latency-last.Latency) < 1e-9 {
			continue
		}
		out = append(out, p)
		last = p
	}
	return out
}

// Family is a set of curves spanning read/write compositions for one
// memory system.
type Family struct {
	Label         string
	TheoreticalBW float64 // GB/s
	Curves        []Curve // sorted by ReadRatio ascending
}

// Clone returns a deep copy of the family. Cached families are shared
// between callers that relabel and resort them independently, so every
// cache hit hands out a clone.
func (f *Family) Clone() *Family {
	if f == nil {
		return nil
	}
	out := &Family{Label: f.Label, TheoreticalBW: f.TheoreticalBW}
	if f.Curves != nil {
		out.Curves = make([]Curve, len(f.Curves))
		for i, c := range f.Curves {
			out.Curves[i] = Curve{ReadRatio: c.ReadRatio, Points: append([]Point(nil), c.Points...)}
		}
	}
	return out
}

// Validate checks every curve and the ratio ordering.
func (f *Family) Validate() error {
	if len(f.Curves) == 0 {
		return fmt.Errorf("core: family %q has no curves", f.Label)
	}
	for i := range f.Curves {
		if err := f.Curves[i].Validate(); err != nil {
			return fmt.Errorf("family %q: %w", f.Label, err)
		}
		if i > 0 && f.Curves[i].ReadRatio < f.Curves[i-1].ReadRatio {
			return fmt.Errorf("core: family %q curves not sorted by read ratio", f.Label)
		}
	}
	return nil
}

// Sort orders curves by read ratio ascending.
func (f *Family) Sort() {
	sort.Slice(f.Curves, func(i, j int) bool { return f.Curves[i].ReadRatio < f.Curves[j].ReadRatio })
}

// Nearest returns the curve whose read ratio is closest to r.
func (f *Family) Nearest(r float64) *Curve {
	if len(f.Curves) == 0 {
		return nil
	}
	best := 0
	bestD := math.Abs(f.Curves[0].ReadRatio - r)
	for i := 1; i < len(f.Curves); i++ {
		if d := math.Abs(f.Curves[i].ReadRatio - r); d < bestD {
			best, bestD = i, d
		}
	}
	return &f.Curves[best]
}

// LatencyAt reports the latency for traffic with the given read ratio and
// bandwidth, bilinearly interpolating across the two neighbouring curves.
func (f *Family) LatencyAt(readRatio, bw float64) float64 {
	lo, hi, frac := f.bracket(readRatio)
	if lo == hi {
		return f.Curves[lo].LatencyAt(bw)
	}
	a := f.Curves[lo].LatencyAt(bw)
	b := f.Curves[hi].LatencyAt(bw)
	return a + frac*(b-a)
}

// SlopeAt interpolates the local curve inclination across ratios.
func (f *Family) SlopeAt(readRatio, bw float64) float64 {
	lo, hi, frac := f.bracket(readRatio)
	if lo == hi {
		return f.Curves[lo].SlopeAt(bw)
	}
	a := f.Curves[lo].SlopeAt(bw)
	b := f.Curves[hi].SlopeAt(bw)
	return a + frac*(b-a)
}

// MaxBWAt reports the interpolated maximum achievable bandwidth for the
// given read ratio.
func (f *Family) MaxBWAt(readRatio float64) float64 {
	lo, hi, frac := f.bracket(readRatio)
	if lo == hi {
		return f.Curves[lo].MaxBW()
	}
	a := f.Curves[lo].MaxBW()
	b := f.Curves[hi].MaxBW()
	return a + frac*(b-a)
}

// bracket locates the curves surrounding readRatio and the interpolation
// fraction between them.
func (f *Family) bracket(readRatio float64) (lo, hi int, frac float64) {
	n := len(f.Curves)
	if n == 1 || readRatio <= f.Curves[0].ReadRatio {
		return 0, 0, 0
	}
	if readRatio >= f.Curves[n-1].ReadRatio {
		return n - 1, n - 1, 0
	}
	i := sort.Search(n, func(i int) bool { return f.Curves[i].ReadRatio >= readRatio })
	lo, hi = i-1, i
	span := f.Curves[hi].ReadRatio - f.Curves[lo].ReadRatio
	if span < 1e-12 {
		return lo, lo, 0
	}
	return lo, hi, (readRatio - f.Curves[lo].ReadRatio) / span
}
