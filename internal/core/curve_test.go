package core

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func simpleCurve() Curve {
	return Curve{
		ReadRatio: 1.0,
		Points: []Point{
			{BW: 1, Latency: 90},
			{BW: 40, Latency: 95},
			{BW: 80, Latency: 120},
			{BW: 100, Latency: 180},
			{BW: 115, Latency: 390},
		},
	}
}

func TestCurveValidate(t *testing.T) {
	c := simpleCurve()
	if err := c.Validate(); err != nil {
		t.Fatalf("valid curve rejected: %v", err)
	}
	bad := Curve{ReadRatio: 1, Points: []Point{{1, 90}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("single-point curve accepted")
	}
	bad = Curve{ReadRatio: 1.5, Points: simpleCurve().Points}
	if err := bad.Validate(); err == nil {
		t.Fatal("read ratio > 1 accepted")
	}
	bad = simpleCurve()
	bad.Points[2].Latency = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Fatal("NaN latency accepted")
	}
}

func TestLatencyAtInterpolates(t *testing.T) {
	c := simpleCurve()
	cases := []struct {
		bw, want float64
	}{
		{0.5, 90},    // below domain clamps to unloaded
		{1, 90},      // exact endpoint
		{20.5, 92.5}, // halfway between first two points
		{40, 95},
		{90, 150}, // halfway in the 80→100 segment
		{115, 390},
	}
	for _, tc := range cases {
		got := c.LatencyAt(tc.bw)
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("LatencyAt(%v) = %v, want %v", tc.bw, got, tc.want)
		}
	}
}

func TestLatencyAtExtrapolatesSteeply(t *testing.T) {
	c := simpleCurve()
	over := c.LatencyAt(120)
	if over <= 390 {
		t.Fatalf("latency beyond max BW = %v, want > max latency 390", over)
	}
	// Slope of last segment: (390-180)/15 = 14 ns per GB/s.
	want := 390 + 5*14.0
	if math.Abs(over-want) > 1e-6 {
		t.Fatalf("extrapolated latency %v, want %v", over, want)
	}
}

func TestWaveFormLookupUsesStableBranch(t *testing.T) {
	// Wave-form: bandwidth declines past the peak while latency grows.
	c := Curve{
		ReadRatio: 1,
		Points: []Point{
			{BW: 10, Latency: 90},
			{BW: 100, Latency: 150},
			{BW: 110, Latency: 250}, // peak bandwidth
			{BW: 100, Latency: 400}, // decline: same BW, higher latency
			{BW: 95, Latency: 500},
		},
	}
	got := c.LatencyAt(100)
	if got != 150 {
		t.Fatalf("wave-form lookup at 100 GB/s = %v, want stable branch 150", got)
	}
	if mb := c.MaxBW(); mb != 110 {
		t.Fatalf("MaxBW = %v, want 110", mb)
	}
}

func TestSaturationOnset(t *testing.T) {
	c := simpleCurve()
	// Unloaded 90, doubles at 180 → exactly at the 100 GB/s point.
	on := c.SaturationOnset()
	if math.Abs(on-100) > 1e-9 {
		t.Fatalf("saturation onset = %v, want 100", on)
	}
	flat := Curve{ReadRatio: 1, Points: []Point{{1, 90}, {100, 95}}}
	if on := flat.SaturationOnset(); on != 100 {
		t.Fatalf("non-saturating curve onset = %v, want max BW 100", on)
	}
}

func TestFamilyInterpolationAcrossRatios(t *testing.T) {
	f := Family{
		TheoreticalBW: 128,
		Curves: []Curve{
			{ReadRatio: 0.5, Points: []Point{{1, 100}, {80, 300}}},
			{ReadRatio: 1.0, Points: []Point{{1, 90}, {80, 200}}},
		},
	}
	got := f.LatencyAt(0.75, 80)
	if math.Abs(got-250) > 1e-9 {
		t.Fatalf("ratio-interpolated latency = %v, want 250", got)
	}
	if lat := f.LatencyAt(0.5, 80); lat != 300 {
		t.Fatalf("exact-ratio latency = %v, want 300", lat)
	}
	if lat := f.LatencyAt(0.3, 80); lat != 300 {
		t.Fatalf("below-range ratio should clamp to 0.5 curve, got %v", lat)
	}
	if lat := f.LatencyAt(1.0, 80); lat != 200 {
		t.Fatalf("top-ratio latency = %v, want 200", lat)
	}
}

func TestFamilyMetrics(t *testing.T) {
	f := NewSynthetic(SyntheticSpec{
		Label: "test", UnloadedNs: 90, PeakGBs: 128,
		UtilAtReadRatio1: 0.91, UtilAtReadRatio05: 0.72,
	})
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	m := f.Metrics()
	if math.Abs(m.UnloadedLatencyNs-90) > 2 {
		t.Fatalf("unloaded = %v, want ≈90", m.UnloadedLatencyNs)
	}
	if m.SatHighFrac() < 0.85 || m.SatHighFrac() > 0.92 {
		t.Fatalf("saturated high fraction = %v, want ≈0.90", m.SatHighFrac())
	}
	if m.SatBWLowGBs >= m.SatBWHighGBs {
		t.Fatalf("saturated range inverted: %v", m)
	}
	if m.MaxLatencyMinNs > m.MaxLatencyMaxNs {
		t.Fatalf("max latency range inverted: %v", m)
	}
	if m.MaxLatencyMaxNs < 2*90 {
		t.Fatalf("synthetic family never saturates: max latency %v", m.MaxLatencyMaxNs)
	}
}

func TestStressScoreMonotoneAndBounded(t *testing.T) {
	f := NewSynthetic(SyntheticSpec{Label: "t"})
	prev := -1.0
	for bw := 1.0; bw < 120; bw += 5 {
		s := f.StressScore(1.0, bw, DefaultStressWeights)
		if s < 0 || s > 1 {
			t.Fatalf("stress score %v outside [0,1] at bw %v", s, bw)
		}
		if s < prev-0.02 { // allow tiny numeric wiggle
			t.Fatalf("stress score decreased from %v to %v at bw %v", prev, s, bw)
		}
		prev = s
	}
	if s := f.StressScore(1.0, 1, DefaultStressWeights); s > 0.15 {
		t.Fatalf("unloaded stress score = %v, want ≈0", s)
	}
	if s := f.StressScore(1.0, f.MaxBWAt(1.0), DefaultStressWeights); s < 0.6 {
		t.Fatalf("saturated stress score = %v, want high", s)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	f := NewSynthetic(SyntheticSpec{Label: "Intel Skylake", PeakGBs: 128})
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != f.Label {
		t.Fatalf("label %q, want %q", got.Label, f.Label)
	}
	if math.Abs(got.TheoreticalBW-f.TheoreticalBW) > 1e-3 {
		t.Fatalf("theoretical BW %v, want %v", got.TheoreticalBW, f.TheoreticalBW)
	}
	if len(got.Curves) != len(f.Curves) {
		t.Fatalf("curves %d, want %d", len(got.Curves), len(f.Curves))
	}
	for i := range got.Curves {
		if len(got.Curves[i].Points) != len(f.Curves[i].Points) {
			t.Fatalf("curve %d: %d points, want %d", i, len(got.Curves[i].Points), len(f.Curves[i].Points))
		}
	}
	// Lookup equivalence within CSV rounding (relative: extrapolation
	// beyond the measured domain amplifies the 4-decimal rounding).
	for _, r := range []float64{0.5, 0.72, 1.0} {
		for _, bw := range []float64{5, 50, 100} {
			a, b := f.LatencyAt(r, bw), got.LatencyAt(r, bw)
			if math.Abs(a-b) > 1e-3*a {
				t.Fatalf("lookup diverged after round trip: %v vs %v", a, b)
			}
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("read_ratio,bw_gbs,latency_ns\nnot,a,number\n")); err == nil {
		t.Fatal("garbage CSV accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Fatal("empty CSV accepted")
	}
}

func TestSanitizePoints(t *testing.T) {
	pts := []Point{
		{1, 90}, {1, 90}, // duplicate
		{math.NaN(), 100},
		{50, math.Inf(1)},
		{60, 120},
	}
	out := SanitizePoints(pts)
	if len(out) != 2 {
		t.Fatalf("sanitized to %d points, want 2: %v", len(out), out)
	}
}

func TestLatencyAtPropertyBounded(t *testing.T) {
	f := NewSynthetic(SyntheticSpec{Label: "prop"})
	prop := func(rRaw, bwRaw uint16) bool {
		ratio := 0.5 + float64(rRaw%5000)/10000.0
		bw := float64(bwRaw%1400) / 10.0
		lat := f.LatencyAt(ratio, bw)
		if !saneFloat(lat) || lat <= 0 {
			return false
		}
		// Within the measured domain, latency must stay within the
		// family's overall envelope.
		maxBW := f.MaxBWAt(ratio)
		if bw <= maxBW {
			m := f.Metrics()
			return lat >= 0.9*m.UnloadedLatencyNs && lat <= 1.2*m.MaxLatencyMaxNs
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestSlopeAtNonNegativeProperty(t *testing.T) {
	f := NewSynthetic(SyntheticSpec{Label: "slope"})
	prop := func(rRaw, bwRaw uint16) bool {
		ratio := 0.5 + float64(rRaw%5000)/10000.0
		bw := float64(bwRaw%1300) / 10.0
		return f.SlopeAt(ratio, bw) >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNearestCurve(t *testing.T) {
	f := NewSynthetic(SyntheticSpec{Label: "n"})
	if c := f.Nearest(0.52); c.ReadRatio != 0.5 {
		t.Fatalf("Nearest(0.52) ratio = %v, want 0.5", c.ReadRatio)
	}
	if c := f.Nearest(0.99); c.ReadRatio != 1.0 {
		t.Fatalf("Nearest(0.99) ratio = %v, want 1.0", c.ReadRatio)
	}
}
