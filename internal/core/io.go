package core

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV serializes the family in the release format of the Mess
// measurement data: a header comment with the label and theoretical
// bandwidth, then one row per point:
//
//	# label: Intel Skylake
//	# theoretical_bw_gbs: 128.0
//	read_ratio,bw_gbs,latency_ns
//	1.00,1.2,89.1
//	...
func (f *Family) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# label: %s\n", f.Label)
	fmt.Fprintf(bw, "# theoretical_bw_gbs: %.4f\n", f.TheoreticalBW)
	fmt.Fprintln(bw, "read_ratio,bw_gbs,latency_ns")
	for _, c := range f.Curves {
		for _, p := range c.Points {
			fmt.Fprintf(bw, "%.4f,%.4f,%.4f\n", c.ReadRatio, p.BW, p.Latency)
		}
	}
	return bw.Flush()
}

// ReadCSV parses a family written by WriteCSV.
func ReadCSV(r io.Reader) (*Family, error) {
	f := &Family{}
	br := bufio.NewReader(r)
	var dataLines strings.Builder
	for {
		line, err := br.ReadString('\n')
		done := err == io.EOF
		if err != nil && !done {
			return nil, fmt.Errorf("core: reading curve CSV: %w", err)
		}
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "# label:"):
			f.Label = strings.TrimSpace(strings.TrimPrefix(trimmed, "# label:"))
		case strings.HasPrefix(trimmed, "# theoretical_bw_gbs:"):
			v, perr := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(trimmed, "# theoretical_bw_gbs:")), 64)
			if perr != nil {
				return nil, fmt.Errorf("core: bad theoretical bandwidth header %q", trimmed)
			}
			f.TheoreticalBW = v
		case trimmed == "" || strings.HasPrefix(trimmed, "#"):
			// skip
		default:
			dataLines.WriteString(trimmed)
			dataLines.WriteByte('\n')
		}
		if done {
			break
		}
	}
	cr := csv.NewReader(strings.NewReader(dataLines.String()))
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("core: parsing curve CSV: %w", err)
	}
	byRatio := map[float64]*Curve{}
	var order []float64
	for i, rec := range records {
		if i == 0 && rec[0] == "read_ratio" {
			continue
		}
		if len(rec) != 3 {
			return nil, fmt.Errorf("core: CSV row %d has %d fields, want 3", i, len(rec))
		}
		ratio, err1 := strconv.ParseFloat(rec[0], 64)
		bwv, err2 := strconv.ParseFloat(rec[1], 64)
		lat, err3 := strconv.ParseFloat(rec[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("core: CSV row %d unparsable: %v", i, rec)
		}
		c, ok := byRatio[ratio]
		if !ok {
			c = &Curve{ReadRatio: ratio}
			byRatio[ratio] = c
			order = append(order, ratio)
		}
		c.Points = append(c.Points, Point{BW: bwv, Latency: lat})
	}
	for _, ratio := range order {
		f.Curves = append(f.Curves, *byRatio[ratio])
	}
	f.Sort()
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}
