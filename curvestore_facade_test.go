package mess_test

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"github.com/mess-sim/mess"
	"github.com/mess-sim/mess/internal/curvestore"
)

// TestCurveStoreFacade exercises the fleet-shared curve store exactly as
// an external embedder would: facade-built stores and clients around an
// in-process curve server (the cmd/messcurved handler).
func TestCurveStoreFacade(t *testing.T) {
	disk, err := mess.NewCurveStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	server := httptest.NewServer(curvestore.NewServer(
		mess.NewTieredCurveStore(mess.NewMemoryCurveStore(8), disk),
		curvestore.ServerConfig{},
	))
	defer server.Close()

	fam := &mess.Family{
		Label:         "facade",
		TheoreticalBW: 128,
		Curves: []mess.Curve{
			{ReadRatio: 1, Points: []mess.Point{{BW: 1, Latency: 90}, {BW: 100, Latency: 240}}},
		},
	}
	var runs atomic.Int64
	stubRun := func(_ context.Context, spec mess.Platform, opt mess.BenchmarkOptions) (*mess.BenchmarkResult, error) {
		runs.Add(1)
		return &mess.BenchmarkResult{Spec: spec, Family: fam}, nil
	}
	newSvc := func() *mess.CharacterizationService {
		remote, err := mess.NewRemoteCurveStore(server.URL)
		if err != nil {
			t.Fatal(err)
		}
		return mess.NewCharacterizationService(mess.CharacterizationConfig{
			Remote: remote,
			Run:    stubRun,
		})
	}

	req := mess.CharacterizationRequest{Spec: mess.Skylake(), Options: mess.QuickBenchmarkOptions()}
	first, err := newSvc().Characterize(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Source != mess.FromRun {
		t.Fatalf("first source = %v, want %v", first.Source, mess.FromRun)
	}
	// A second "machine" (fresh service, fresh client) gets the family
	// from the fleet store: zero additional runs.
	second, err := newSvc().Characterize(req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Source != mess.FromRemote {
		t.Fatalf("second source = %v (%s), want %v", second.Source, second.Source, mess.FromRemote)
	}
	if runs.Load() != 1 {
		t.Fatalf("fleet ran %d simulations for one key, want 1", runs.Load())
	}
	if second.Family.Label != "facade" || len(second.Family.Curves) != 1 {
		t.Fatalf("remote family mangled: %+v", second.Family)
	}

	// The tiered composition is usable standalone: a save surfaces in
	// both tiers and a lookup promotes upward.
	memory := mess.NewMemoryCurveStore(4)
	tiered := mess.NewTieredCurveStore(memory, disk)
	key := mess.FingerprintCharacterization(req)
	if _, ok, err := disk.Load(context.Background(), key); !ok || err != nil {
		t.Fatalf("remote run not persisted server-side: ok=%v err=%v", ok, err)
	}
	if got, ok, err := tiered.Load(context.Background(), key); !ok || err != nil || got.Label != "facade" {
		t.Fatalf("tiered load: %v %v %v", got, ok, err)
	}
	if _, ok, _ := memory.Load(context.Background(), key); !ok {
		t.Fatal("tiered hit not promoted into the memory tier")
	}
}
