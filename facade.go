package mess

import (
	"io"

	"github.com/mess-sim/mess/internal/cpu"
	"github.com/mess-sim/mess/internal/dram"
	"github.com/mess-sim/mess/internal/mem"
	"github.com/mess-sim/mess/internal/memmodel"
	"github.com/mess-sim/mess/internal/profile"
	"github.com/mess-sim/mess/internal/trace"
	"github.com/mess-sim/mess/internal/workloads"
)

// This file extends the public API with the evaluation machinery: the
// memory-model zoo, the workload suite, and the profiling sampler — enough
// to rebuild every experiment of the paper from the outside. Evaluation
// flows that need reference curves (NewMemoryModel's Mess kind, profiling)
// should obtain them through the characterization service (Characterize or
// a CharacterizationService) rather than re-running the benchmark.

// MemoryModelKind names one model of the zoo (Sec. IV baselines plus the
// detailed reference and the Mess analytical simulator).
type MemoryModelKind = memmodel.Kind

// The memory-model zoo.
const (
	ModelFixed       = memmodel.KindFixed
	ModelMD1         = memmodel.KindMD1
	ModelInternalDDR = memmodel.KindInternalDDR
	ModelDRAMsim3    = memmodel.KindDRAMsim3
	ModelRamulator   = memmodel.KindRamulator
	ModelRamulator2  = memmodel.KindRamulator2
	ModelReference   = memmodel.KindReference
	ModelMess        = memmodel.KindMess
)

// MemoryModels lists every model kind.
func MemoryModels() []MemoryModelKind { return memmodel.Kinds() }

// NewMemoryModel builds a model of the given kind for the platform. The
// Mess kind needs the platform's measured curve family; others ignore it.
func NewMemoryModel(kind MemoryModelKind, eng *Engine, p Platform, fam *Family) (MemBackend, error) {
	return memmodel.New(kind, eng, p, fam)
}

// Workload API.
type (
	// Kernel describes a workload's inner loop at cache-line granularity.
	Kernel = cpu.Kernel
	// WorkloadOptions configure a workload run.
	WorkloadOptions = workloads.Options
	// WorkloadResult is one workload execution (IPC + bandwidths).
	WorkloadResult = workloads.Result
	// SpecBenchmark is one entry of the SPEC-CPU2006-like suite.
	SpecBenchmark = workloads.SpecBenchmark
	// Phase is one segment of a phased application.
	Phase = workloads.Phase
	// PhaseEvent records a phase transition.
	PhaseEvent = workloads.PhaseEvent
	// PhasedApp drives cores through a repeating phase schedule.
	PhasedApp = workloads.PhasedApp
)

// Standard kernels from the paper's evaluation.
var (
	StreamCopy  = cpu.StreamCopy
	StreamScale = cpu.StreamScale
	StreamAdd   = cpu.StreamAdd
	StreamTriad = cpu.StreamTriad
	LMbench     = cpu.LMbench
	Multichase  = cpu.Multichase
	GUPS        = cpu.GUPS
)

// RunWorkload executes a kernel multiprogrammed on the platform.
func RunWorkload(p Platform, k Kernel, opt WorkloadOptions) (WorkloadResult, error) {
	return workloads.Run(p, k, opt)
}

// RunEvalSuite runs the six benchmarks of the IPC-error experiments
// (STREAM ×4 multiprogrammed, LMbench and multichase single-core).
func RunEvalSuite(p Platform, opt WorkloadOptions) ([]WorkloadResult, error) {
	return workloads.EvalSuite(p, opt)
}

// SpecSuite returns the SPEC-CPU2006-like synthetic suite of Fig. 18.
func SpecSuite() []SpecBenchmark { return workloads.SpecSuite() }

// NewHPCGProxy builds the HPCG proxy application (SpMV/SymGS/DDOT/WAXPBY
// phases delimited by MPI_Allreduce) over the platform's detailed memory
// system.
func NewHPCGProxy(p Platform) *PhasedApp {
	return workloads.NewPhasedApp(p, workloads.HPCGPhases(), nil)
}

// Sampler periodically snapshots a counting backend, producing the raw
// windows that BuildProfile analyzes.
type Sampler = profile.Sampler

// NewSampler builds a sampler with the given period.
func NewSampler(eng *Engine, counting *CountingBackend, every SimTime) *Sampler {
	return profile.NewSampler(eng, counting, every)
}

// Trace-driven replay API (Sec. IV-D methodology).
type (
	// Trace is an ordered sequence of captured memory operations.
	Trace = trace.Trace
	// TraceRecord is one traced memory operation.
	TraceRecord = trace.Record
	// TraceCapture wraps a backend and records every request through it.
	TraceCapture = trace.Capture
	// TraceReplayResult is the outcome of a trace-driven simulation.
	TraceReplayResult = trace.ReplayResult
	// TraceSampleConfig tunes the sampled (phase-clustered) replay.
	TraceSampleConfig = trace.SampleConfig
	// SampledReplayResult is a sampled replay's reconstructed estimates
	// with per-cluster error bars.
	SampledReplayResult = trace.SampledResult
	// MemBackendFactory builds a backend on a specific engine; sampled
	// replay uses it to instantiate one backend per replayed window.
	MemBackendFactory = mem.BackendFactory
)

// NewTraceCapture wraps a backend so every request is recorded (up to
// limit records; 0 = unlimited).
func NewTraceCapture(eng *Engine, inner MemBackend, limit int) *TraceCapture {
	return trace.NewCapture(eng, inner, limit)
}

// ReadTrace parses a trace in the messtrace text format, validating that
// timestamps are non-decreasing.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// ReplayTrace drives the backend with the full trace and measures the
// achieved bandwidth and mean read latency.
func ReplayTrace(eng *Engine, backend MemBackend, t *Trace) TraceReplayResult {
	return trace.Replay(eng, backend, t)
}

// SampledReplayTrace estimates what ReplayTrace would report by windowing
// the trace, clustering the windows by access-vector fingerprint, and
// replaying one representative window (plus probes) per cluster — the
// 10–100× cheaper application-profiling path. Deterministic: same trace
// and config produce byte-identical estimates. Pass the platform whose
// DRAM geometry should drive the row-locality fingerprint feature.
func SampledReplayTrace(mk MemBackendFactory, p Platform, t *Trace, cfg TraceSampleConfig) (*SampledReplayResult, error) {
	if cfg.BankRow == nil {
		m := dram.NewMapper(&p.DRAM)
		cfg.BankRow = m.BankRow
	}
	return trace.Sampled(mk, t, cfg)
}
