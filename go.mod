module github.com/mess-sim/mess

go 1.21
